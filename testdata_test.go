package disjunct_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"disjunct"
	"disjunct/internal/gen"
)

// TestSampleDatabasesLoad ensures the shipped sample databases parse
// and every applicable semantics can decide model existence on them.
func TestSampleDatabasesLoad(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	loaded := 0
	for _, e := range entries {
		name := e.Name()
		ext := filepath.Ext(name)
		if ext != ".ddb" && ext != ".dl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		var d *disjunct.DB
		if ext == ".dl" {
			d, err = disjunct.ParseProgram(string(src))
		} else {
			d, err = disjunct.Parse(string(src))
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		loaded++
		for _, sem := range disjunct.SemanticsNames() {
			s, _ := disjunct.NewSemantics(sem, disjunct.Options{})
			if _, err := s.HasModel(d); err != nil &&
				err != disjunct.ErrUnsupported && err != disjunct.ErrNotStratifiable {
				t.Errorf("%s under %s: %v", name, sem, err)
			}
		}
	}
	if loaded < 5 {
		t.Fatalf("expected ≥5 sample databases, loaded %d", loaded)
	}
}

// TestClauseOrderInvariance: permuting the clauses of a database must
// not change any semantics' verdicts (the model sets are set-theoretic
// objects).
func TestClauseOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(3)
		d1 := gen.Random(rng, gen.Normal(n, 2+rng.Intn(5)))
		// Rebuild with shuffled clauses over the same vocabulary order.
		d2 := d1.Clone()
		rng.Shuffle(len(d2.Clauses), func(i, j int) {
			d2.Clauses[i], d2.Clauses[j] = d2.Clauses[j], d2.Clauses[i]
		})
		q := disjunct.MustParseFormula(randomAtomName(d1, rng), d1.Voc)
		for _, sem := range []string{"GCWA", "EGCWA", "DSM", "PDSM"} {
			s1, _ := disjunct.NewSemantics(sem, disjunct.Options{})
			s2, _ := disjunct.NewSemantics(sem, disjunct.Options{})
			r1, err1 := s1.InferFormula(d1, q)
			r2, err2 := s2.InferFormula(d2, q)
			if (err1 == nil) != (err2 == nil) || r1 != r2 {
				t.Fatalf("%s: clause order changed verdict (%v/%v, %v/%v)\n%s",
					sem, r1, err1, r2, err2, d1.String())
			}
		}
	}
}

func randomAtomName(d *disjunct.DB, rng *rand.Rand) string {
	return d.Voc.Name(disjunct.Atom(rng.Intn(d.N())))
}

// TestVocabularyExtensionInvariance: interning extra (unused) atoms
// must not change verdicts about existing atoms, except that the new
// atoms are closed off.
func TestVocabularyExtensionInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(272))
	for iter := 0; iter < 40; iter++ {
		n := 2 + rng.Intn(3)
		d1 := gen.Random(rng, gen.Positive(n, 2+rng.Intn(5)))
		d2 := d1.Clone()
		d2.Voc.Intern("extra_one")
		d2.Voc.Intern("extra_two")
		name := randomAtomName(d1, rng)
		if strings.HasPrefix(name, "extra") {
			continue
		}
		for _, sem := range []string{"GCWA", "EGCWA", "DDR", "PWS"} {
			s1, _ := disjunct.NewSemantics(sem, disjunct.Options{})
			s2, _ := disjunct.NewSemantics(sem, disjunct.Options{})
			q1 := disjunct.MustParseFormula(name, d1.Voc)
			q2 := disjunct.MustParseFormula(name, d2.Voc)
			r1, _ := s1.InferFormula(d1, q1)
			r2, _ := s2.InferFormula(d2, q2)
			if r1 != r2 {
				t.Fatalf("%s: vocabulary extension changed verdict on %s\n%s", sem, name, d1.String())
			}
		}
	}
}
