// Command ddbbench regenerates the paper's evaluation: Tables 1 and 2
// of Eiter & Gottlob (PODS'93) as executable complexity evidence, plus
// the auxiliary experiments (UMINSAT, Example 3.1) and the structural
// audit.
//
// Usage:
//
//	ddbbench [-table 1|2|all|none] [-aux] [-audit] [-full] [-parallel] [-json file]
//
// Without -full the sweeps use the quick sizes (seconds); with -full
// the report sizes (minutes). -parallel runs the serial-vs-worker-pool
// comparison (asserting the model sets match and the NP-call count is
// worker-count-invariant); -json writes its structured report to a
// file.
//
// Setting any of -deadline, -conflictbudget or -faultrate additionally
// runs the graceful-degradation sweep: budgeted, fault-injected queries
// against the unbudgeted reference, reporting completed/interrupted
// counts and the typed interruption causes. A completed budgeted query
// whose verdict differs from the reference is a hard failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"disjunct/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, all or none")
	aux := flag.Bool("aux", true, "run the auxiliary experiments (UMINSAT, CWA, WFS, Example 3.1)")
	crossover := flag.Bool("crossover", true, "run the head-to-head comparison series")
	audit := flag.Bool("audit", true, "run the structural audit (oracle-call budgets, reductions)")
	full := flag.Bool("full", false, "use the full sweep sizes (slower)")
	claims := flag.Bool("claims", true, "print the reconstructed result tables first")
	parallel := flag.Bool("parallel", true, "run the serial vs parallel enumeration comparison")
	jsonPath := flag.String("json", "", "write the parallel/pool report as JSON to this file")
	deadline := flag.Duration("deadline", 0, "per-query wall-clock budget for the degradation sweep (0 = off)")
	conflictBudget := flag.Int64("conflictbudget", 0, "per-query SAT-conflict budget for the degradation sweep (0 = unlimited)")
	faultRate := flag.Float64("faultrate", 0, "injected fault rate for the degradation sweep (0 = none)")
	faultSeed := flag.Int64("faultseed", 1, "seed for the fault injector")
	flag.Parse()

	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	if *claims {
		bench.WriteClaims(os.Stdout)
	}

	var results []bench.CellResult
	if *table == "1" || *table == "all" {
		r, err := bench.RunTable1(scale)
		if err != nil {
			fatal(err)
		}
		results = append(results, r...)
	}
	if *table == "2" || *table == "all" {
		r, err := bench.RunTable2(scale)
		if err != nil {
			fatal(err)
		}
		results = append(results, r...)
	}
	if len(results) > 0 {
		bench.WriteReport(os.Stdout, results)
	}

	if *aux {
		if err := bench.RunAux(scale, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *crossover {
		if err := bench.RunCrossover(scale, os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *parallel || *jsonPath != "" {
		rep, err := bench.RunParallel(scale, os.Stdout)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if *jsonPath != "" {
			artefact := struct {
				GOMAXPROCS int                   `json:"gomaxprocs"`
				NumCPU     int                   `json:"num_cpu"`
				Scale      string                `json:"scale"`
				Report     *bench.ParallelReport `json:"report"`
			}{runtime.GOMAXPROCS(0), runtime.NumCPU(), map[bool]string{false: "quick", true: "full"}[*full], rep}
			data, err := json.MarshalIndent(artefact, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n\n", *jsonPath)
		}
	}

	if *deadline > 0 || *conflictBudget > 0 || *faultRate > 0 {
		err := bench.RunBudgeted(os.Stdout, bench.BudgetedOptions{
			Deadline:  *deadline,
			Conflicts: *conflictBudget,
			FaultRate: *faultRate,
			FaultSeed: *faultSeed,
			Seed:      1,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if *audit {
		fmt.Println("Structural audit")
		fmt.Println("================")
		if errs := bench.Audit(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Printf("  FAIL: %v\n", e)
			}
			os.Exit(1)
		}
		fmt.Println("  all oracle-call budgets and reduction equivalences hold")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddbbench:", err)
	os.Exit(1)
}
