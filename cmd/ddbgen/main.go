// Command ddbgen emits workload instances in the library's textual
// formats, for scripted experiments and for feeding other systems:
//
//	ddbgen -family positive -atoms 20 -clauses 40        random positive DDB
//	ddbgen -family ic -atoms 20 -clauses 40              DDDB with denials
//	ddbgen -family normal -atoms 20 -clauses 40          DNDB (negation + denials)
//	ddbgen -family stratified -atoms 20 -clauses 40      DSDB
//	ddbgen -family coloring -vertices 10 -colors 3 -p 0.4   k-colouring DB
//	ddbgen -family pigeonhole -pigeons 5 -holes 4        PHP as a DDDB
//	ddbgen -family qbf-literal -qbfsize 4                Theorem 3.1 instance
//	                                                     (prints the DB; the
//	                                                     query literal is -w)
//	ddbgen -family uminsat -vars 10 > f.cnf              Prop 5.4 DIMACS
//
// A -seed flag makes runs reproducible.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/qbf"
	"disjunct/internal/reduction"
)

func main() {
	family := flag.String("family", "positive", "positive | ic | normal | stratified | coloring | pigeonhole | qbf-literal | qbf-stable | uminsat")
	atoms := flag.Int("atoms", 20, "vocabulary size (random families)")
	clauses := flag.Int("clauses", 40, "clause count (random families)")
	layers := flag.Int("layers", 3, "strata (stratified family)")
	vertices := flag.Int("vertices", 10, "vertices (coloring family)")
	colors := flag.Int("colors", 3, "colours (coloring family)")
	p := flag.Float64("p", 0.4, "edge probability (coloring family)")
	pigeons := flag.Int("pigeons", 5, "pigeons (pigeonhole family)")
	holes := flag.Int("holes", 4, "holes (pigeonhole family)")
	qbfsize := flag.Int("qbfsize", 3, "#∃ = #∀ variables (qbf families)")
	vars := flag.Int("vars", 10, "CNF variables (uminsat family)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "rng seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	switch *family {
	case "positive":
		fmt.Print(gen.Random(rng, gen.Positive(*atoms, *clauses)).String())
	case "ic":
		fmt.Print(gen.Random(rng, gen.WithIntegrity(*atoms, *clauses)).String())
	case "normal":
		fmt.Print(gen.Random(rng, gen.Normal(*atoms, *clauses)).String())
	case "stratified":
		fmt.Print(gen.RandomStratified(rng, *atoms, *clauses, *layers).String())
	case "coloring":
		g := gen.RandomGraph(rng, *vertices, *p)
		fmt.Print(gen.ColoringDB(g, *colors).String())
	case "pigeonhole":
		fmt.Print(gen.PigeonholeDB(*pigeons, *holes).String())
	case "qbf-literal":
		q := qbf.Random3DNF(rng, *qbfsize, *qbfsize, 2**qbfsize)
		d, w, err := reduction.MMNegLiteralFromQBF(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%% query literal: -%s  (MM ⊨ ¬w ⟺ the hidden 2-QBF is false)\n", d.Voc.Name(w))
		fmt.Print(d.String())
	case "qbf-stable":
		q := qbf.Random3DNF(rng, *qbfsize, *qbfsize, 2**qbfsize)
		d, err := reduction.DSMExistsFromQBF(q)
		if err != nil {
			fatal(err)
		}
		fmt.Println("% DSM has a stable model ⟺ the hidden 2-QBF is true")
		fmt.Print(d.String())
	case "uminsat":
		cnf := reduction.RandomCNF(rng, *vars, int(4.2*float64(*vars)), 3)
		gamma, voc := reduction.UMINSATFromUNSAT(cnf, *vars)
		if err := logic.WriteDIMACS(os.Stdout, gamma, voc.Size()); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown family %q", *family))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddbgen:", err)
	os.Exit(1)
}
