// Command uminsat decides the UMINSAT problem of Proposition 5.4:
// does a CNF (read in DIMACS format) have a unique minimal model?
//
// Usage:
//
//	uminsat [-models] [-par n] file.cnf     (or - for stdin)
//
// Exit status: 0 if the minimal model is unique, 1 if not (or the
// formula is unsatisfiable), 2 on usage/parse errors — so the tool
// composes in shell pipelines. With -par the minimal models listed by
// -models are enumerated by the worker-pool engine (n workers, 0 =
// one per CPU); the model set is identical, the order is not.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/reduction"
)

func main() {
	showModels := flag.Bool("models", false, "also enumerate the minimal models (up to 16)")
	parWorkers := flag.Int("par", -1, "enumerate -models with this many workers (0 = NumCPU, -1 = serial)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: uminsat [-models] [-par n] file.cnf")
		os.Exit(2)
	}
	var r io.Reader
	if flag.Arg(0) == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "uminsat:", err)
			os.Exit(2)
		}
		defer f.Close()
		r = f
	}
	cnf, voc, err := logic.ParseDIMACS(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uminsat:", err)
		os.Exit(2)
	}
	d := reduction.CNFDB(cnf, voc)
	o := oracle.NewNP()
	eng := models.NewEngine(d, o)
	unique, m := eng.UniqueMinimalModel()
	if unique {
		fmt.Printf("UNIQUE minimal model: %s   [oracle: %s]\n", m.String(d.Voc), o.Counters())
	} else if ok, _ := eng.HasModel(); !ok {
		fmt.Printf("UNSATISFIABLE (no models at all)   [oracle: %s]\n", o.Counters())
	} else {
		fmt.Printf("NOT unique   [oracle: %s]\n", o.Counters())
	}
	if *showModels {
		print := func(mm logic.Interp) bool {
			fmt.Println("  minimal model:", mm.String(d.Voc))
			return true
		}
		if *parWorkers >= 0 {
			eng.MinimalModelsPar(16, print, models.ParOptions{Workers: *parWorkers})
		} else {
			eng.MinimalModels(16, print)
		}
	}
	if !unique {
		os.Exit(1)
	}
}
