// Command ddbrouter fronts a set of ddbserve workers with a
// consistent-hash cluster router: requests route on the compiled-DB
// fingerprint (so each worker keeps warm sessions for its keyspace
// slice), dead or draining workers are failed over with seeded
// full-jitter backoff, node health is probed continuously, and a
// graceful worker departure hands its warm state to the ring
// successors via /v1/cluster/drain before the ring flips, and a new
// worker warm-joins via /v1/cluster/join (its future keyspace slice is
// prewarmed from the current owners before the ring flips).
//
// With -peers, replica routers share one ring by gossiping
// epoch-tagged membership and node health (/v1/cluster/gossip):
// monotonic epoch wins, so any replica can orchestrate a join or drain
// and the others adopt it.
//
// The router is stateless: killing and restarting it loses nothing
// but the node-health counters. Exit is 0 on SIGTERM/SIGINT.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"disjunct/internal/cluster"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8090", "listen address (use :0 for an ephemeral port)")
		workersFlag = flag.String("workers", "", "comma-separated worker base URLs (required)")
		replicas    = flag.Int("replicas", 0, "virtual nodes per worker on the hash ring (0 = default)")
		failover    = flag.Int("failovermax", 2, "max ring successors a request may fail over to")
		probe       = flag.Duration("probeinterval", 250*time.Millisecond, "worker health-probe period (also the node_unavailable Retry-After hint)")
		threshold   = flag.Int("failthreshold", 3, "consecutive failures that mark a worker down until a probe succeeds")
		seed        = flag.Int64("seed", 1, "failover backoff and probe/gossip jitter seed (give each router replica its own)")
		keyCache    = flag.Int("keycache", 0, "DB-text → route-key LRU entries (0 = default 4096)")
		reqTimeout  = flag.Duration("requesttimeout", 30*time.Second, "per-attempt forwarding timeout (streams exempt)")
		peersFlag   = flag.String("peers", "", "comma-separated peer router base URLs for membership/health gossip")
		gossip      = flag.Duration("gossipinterval", 500*time.Millisecond, "gossip exchange period per peer")
	)
	flag.Parse()

	if *workersFlag == "" {
		log.Fatal("ddbrouter: -workers is required (comma-separated base URLs)")
	}
	var workers []string
	for _, w := range strings.Split(*workersFlag, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	if len(workers) == 0 {
		log.Fatal("ddbrouter: -workers parsed to an empty list")
	}

	r := cluster.NewRouter(cluster.RouterConfig{
		Replicas:       *replicas,
		FailoverMax:    *failover,
		ProbeInterval:  *probe,
		FailThreshold:  *threshold,
		Seed:           *seed,
		KeyCache:       *keyCache,
		RequestTimeout: *reqTimeout,
		GossipInterval: *gossip,
	}, workers)
	defer r.Close()
	npeers := 0
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			r.AddPeer(p)
			npeers++
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ddbrouter: listen %s: %v", *addr, err)
	}
	hs := &http.Server{Handler: r.Handler()}
	log.Printf("ddbrouter: listening on http://%s (workers=%d peers=%d failovermax=%d probe=%s seed=%d)",
		ln.Addr(), len(workers), npeers, *failover, *probe, *seed)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case s := <-sig:
		log.Printf("ddbrouter: %v: shutting down", s)
	case err := <-serveErr:
		log.Fatalf("ddbrouter: serve: %v", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutCtx)
	log.Printf("ddbrouter: bye")
}
