// Command ddb is an interactive query tool for propositional
// disjunctive databases: it loads a database file and answers the
// paper's three decision problems under any of the ten semantics.
//
// Usage:
//
//	ddb -db file.ddb [-datalog] [-sem GCWA] [-models] [-exists]
//	    [-classify] [-closure] [-wfs]
//	    [-infer "formula"] [-lit atom | -lit -atom]
//
// Examples:
//
//	ddb -db kb.ddb -classify
//	ddb -db kb.ddb -sem GCWA -lit -c
//	ddb -db kb.ddb -sem DSM -models
//	ddb -db kb.ddb -sem EGCWA -infer "-(a & b)"
//	ddb -db kb.ddb -sem GCWA -closure          # all inferred literals
//	ddb -db game.dl -datalog -infer "win(a)"   # ground, then query
//	ddb -db prog.ddb -wfs                      # well-founded model
//
// The database syntax (one clause per line, '%' comments):
//
//	a | b.              disjunctive fact
//	c :- a, b.          rule
//	d :- c, not e.      rule with default negation
//	:- a, d.            integrity clause
//
// With -datalog the input is a non-ground program (variables start
// upper-case, e.g. "path(X,Y) :- edge(X,Y).") grounded before
// querying; ground atoms are addressed as "path(a,b)" in queries.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"disjunct"
)

func main() {
	dbPath := flag.String("db", "", "database file (required)")
	datalog := flag.Bool("datalog", false, "treat the input as a non-ground datalog program and ground it")
	semName := flag.String("sem", "GCWA", "semantics: "+strings.Join(disjunct.SemanticsNames(), ", "))
	models := flag.Bool("models", false, "enumerate the semantics' model set")
	limit := flag.Int("limit", 32, "maximum models to print with -models")
	exists := flag.Bool("exists", false, "decide model existence")
	classify := flag.Bool("classify", false, "print the database class and statistics")
	infer := flag.String("infer", "", "formula to decide under the semantics")
	lit := flag.String("lit", "", "literal to decide (atom name, '-' prefix negates)")
	closure := flag.Bool("closure", false, "print every literal the semantics infers")
	wfsFlag := flag.Bool("wfs", false, "print the well-founded model (normal programs only)")
	flag.Parse()

	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*dbPath)
	if err != nil {
		fatal(err)
	}
	var d *disjunct.DB
	if *datalog {
		d, err = disjunct.ParseProgram(string(src))
	} else {
		d, err = disjunct.Parse(string(src))
	}
	if err != nil {
		fatal(err)
	}

	if *classify {
		st := d.Stats()
		fmt.Printf("atoms: %d  clauses: %d  facts: %d  integrity: %d  neg-literals: %d  max-head: %d\n",
			st.Atoms, st.Clauses, st.Facts, st.IntegrityClauses, st.NegativeLiterals, st.MaxHead)
		fmt.Println("class:", disjunct.Classify(d))
	}

	if *wfsFlag {
		if p, ok := disjunct.WellFounded(d); ok {
			fmt.Println("well-founded model:", p.String(d.Voc))
		} else {
			fmt.Println("well-founded model: n/a (not a normal logic program)")
		}
	}

	oracle := disjunct.NewOracle()
	sem, ok := disjunct.NewSemantics(*semName, disjunct.Options{Oracle: oracle})
	if !ok {
		fatal(fmt.Errorf("unknown semantics %q (known: %s)", *semName,
			strings.Join(disjunct.SemanticsNames(), ", ")))
	}

	if *exists {
		ok, err := sem.HasModel(d)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s(DB) nonempty: %v   [oracle: %s]\n", sem.Name(), ok, oracle.Counters())
	}

	if *models {
		fmt.Printf("%s(DB) models:\n", sem.Name())
		n, err := sem.Models(d, *limit, func(m disjunct.Interp) bool {
			fmt.Println(" ", m.String(d.Voc))
			return true
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("(%d models%s)\n", n, moreMarker(n, *limit))
	}

	if *lit != "" {
		name := *lit
		negated := strings.HasPrefix(name, "-")
		name = strings.TrimPrefix(name, "-")
		atom, ok := d.Voc.Lookup(name)
		if !ok {
			fatal(fmt.Errorf("unknown atom %q", name))
		}
		l := disjunct.PosLit(atom)
		if negated {
			l = disjunct.NegLit(atom)
		}
		res, err := sem.InferLiteral(d, l)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s(DB) ⊨ %s%s : %v   [oracle: %s]\n",
			sem.Name(), map[bool]string{true: "-", false: ""}[negated], name, res, oracle.Counters())
	}

	if *closure {
		fmt.Printf("%s literal closure:\n", sem.Name())
		var pos, neg []string
		for v := 0; v < d.N(); v++ {
			name := d.Voc.Name(disjunct.Atom(v))
			if ok, err := sem.InferLiteral(d, disjunct.PosLit(disjunct.Atom(v))); err != nil {
				fatal(err)
			} else if ok {
				pos = append(pos, name)
			}
			if ok, err := sem.InferLiteral(d, disjunct.NegLit(disjunct.Atom(v))); err != nil {
				fatal(err)
			} else if ok {
				neg = append(neg, name)
			}
		}
		fmt.Printf("  true : %s\n", strings.Join(pos, ", "))
		fmt.Printf("  false: %s\n", strings.Join(neg, ", "))
		fmt.Printf("  [oracle: %s]\n", oracle.Counters())
	}

	if *infer != "" {
		f, err := disjunct.ParseFormula(*infer, d.Voc)
		if err != nil {
			fatal(err)
		}
		res, err := sem.InferFormula(d, f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s(DB) ⊨ %s : %v   [oracle: %s]\n", sem.Name(), *infer, res, oracle.Counters())
	}
}

func moreMarker(n, limit int) string {
	if limit > 0 && n >= limit {
		return ", limit reached"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddb:", err)
	os.Exit(1)
}
