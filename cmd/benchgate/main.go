// Command benchgate is the bench-regression gate: it compares a
// freshly generated ddbbench JSON artefact against a committed
// baseline and fails if any audited NP-call total moved. Oracle-call
// counts are the repository's complexity-shape evidence — they are
// deterministic functions of the benchmark instances, so any drift
// means an algorithmic change, not noise. Wall-clock columns are
// reported for context but never gated.
//
// Sections present in the fresh artefact but absent from the baseline
// (e.g. a newly added sweep) are reported and ignored; a case present
// in the baseline but missing from the fresh run is a failure.
//
// Usage:
//
//	benchgate -baseline BENCH_pr1.json -fresh BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"disjunct/internal/bench"
)

// artefact mirrors the ddbbench -json envelope.
type artefact struct {
	GOMAXPROCS int                   `json:"gomaxprocs"`
	NumCPU     int                   `json:"num_cpu"`
	Scale      string                `json:"scale"`
	Report     *bench.ParallelReport `json:"report"`
}

func main() {
	basePath := flag.String("baseline", "", "committed baseline JSON (required)")
	freshPath := flag.String("fresh", "", "freshly generated JSON (required)")
	flag.Parse()
	if *basePath == "" || *freshPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fatal(err)
	}
	if base.Scale != fresh.Scale {
		fatal(fmt.Errorf("scale mismatch: baseline %q, fresh %q — counts are not comparable", base.Scale, fresh.Scale))
	}

	g := &gate{}
	comparePar(g, base.Report.Parallel, fresh.Report.Parallel)
	comparePool(g, base.Report.Pool, fresh.Report.Pool)
	compareCache(g, base.Report.Cache, fresh.Report.Cache)
	compareSession(g, base.Report.Session, fresh.Report.Session)
	compareBatch(g, base.Report.Batch, fresh.Report.Batch)
	compareStream(g, base.Report.Stream, fresh.Report.Stream)
	compareStore(g, base.Report.Store, fresh.Report.Store)
	compareCluster(g, base.Report.Cluster, fresh.Report.Cluster)
	comparePlanner(g, base.Report.Planner, fresh.Report.Planner)

	if g.failures > 0 {
		fmt.Printf("benchgate: %d audited counter(s) moved\n", g.failures)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d audited counter(s) unchanged\n", g.checked)
}

type gate struct {
	checked  int
	failures int
}

// eq gates one audited counter.
func (g *gate) eq(section, name, field string, want, got int64) {
	g.checked++
	if want != got {
		g.failures++
		fmt.Printf("  FAIL %s/%s: %s was %d, now %d\n", section, name, field, want, got)
	}
}

func (g *gate) missing(section, name string) {
	g.failures++
	fmt.Printf("  FAIL %s/%s: present in baseline, missing from fresh run\n", section, name)
}

func comparePar(g *gate, base, fresh []bench.ParallelCase) {
	byName := map[string]bench.ParallelCase{}
	for _, c := range fresh {
		byName[c.Name] = c
	}
	for _, b := range base {
		f, ok := byName[b.Name]
		if !ok {
			g.missing("parallel", b.Name)
			continue
		}
		g.eq("parallel", b.Name, "minimal_models", int64(b.Models), int64(f.Models))
		g.eq("parallel", b.Name, "serial_np_calls", b.SerialNP, f.SerialNP)
		g.eq("parallel", b.Name, "par_np_calls", b.ParNP, f.ParNP)
		fmt.Printf("  parallel/%s: serial %s, par1 %s, parN %s (wall-clock, not gated)\n",
			b.Name, ms(b.SerialMS, f.SerialMS), ms(b.Par1MS, f.Par1MS), ms(b.ParNMS, f.ParNMS))
	}
}

func comparePool(g *gate, base, fresh []bench.PoolCase) {
	byName := map[string]bench.PoolCase{}
	for _, c := range fresh {
		byName[c.Name] = c
	}
	for _, b := range base {
		f, ok := byName[b.Name]
		if !ok {
			g.missing("solver_pool", b.Name)
			continue
		}
		g.eq("solver_pool", b.Name, "np_calls", b.NPCalls, f.NPCalls)
	}
}

func compareCache(g *gate, base, fresh []bench.CacheCase) {
	if len(base) == 0 && len(fresh) > 0 {
		fmt.Printf("  cache: %d case(s) in fresh run, none in baseline — not gated\n", len(fresh))
		return
	}
	type key struct{ name, sem string }
	byKey := map[key]bench.CacheCase{}
	for _, c := range fresh {
		byKey[key{c.Name, c.Semantics}] = c
	}
	for _, b := range base {
		id := b.Name + "/" + b.Semantics
		f, ok := byKey[key{b.Name, b.Semantics}]
		if !ok {
			g.missing("cache", id)
			continue
		}
		g.eq("cache", id, "np_calls", b.NPCalls, f.NPCalls)
		g.eq("cache", id, "cache_hits", b.Hits, f.Hits)
		g.eq("cache", id, "cache_misses", b.Misses, f.Misses)
		g.eq("cache", id, "par_np_calls", b.ParNP, f.ParNP)
	}
}

// compareSession gates the warm-session sweep: the fresh-engine NP
// total is pinned to the baseline (the workload is deterministic), the
// fast path must stay at zero NP calls, and the session total must
// never exceed the fresh total. The session total itself is bounded
// rather than pinned — learned-clause retention inside a warm engine
// may legitimately shift the exact count between toolchain versions,
// but never above the fresh-path cost.
func compareSession(g *gate, base, fresh []bench.SessionCase) {
	if len(base) == 0 && len(fresh) > 0 {
		fmt.Printf("  session: %d case(s) in fresh run, none in baseline — not gated\n", len(fresh))
		return
	}
	type key struct{ name, sem string }
	byKey := map[key]bench.SessionCase{}
	for _, c := range fresh {
		byKey[key{c.Name, c.Semantics}] = c
	}
	for _, b := range base {
		id := b.Name + "/" + b.Semantics
		f, ok := byKey[key{b.Name, b.Semantics}]
		if !ok {
			g.missing("session", id)
			continue
		}
		g.eq("session", id, "fresh_np_calls", b.FreshNP, f.FreshNP)
		g.eq("session", id, "fast_np_calls", 0, f.FastNP)
		g.checked++
		if f.SessionNP > f.FreshNP {
			g.failures++
			fmt.Printf("  FAIL session/%s: session NP total %d exceeds fresh total %d\n", id, f.SessionNP, f.FreshNP)
		}
		fmt.Printf("  session/%s: fresh %s, session %s, %.1fx (wall-clock, not gated)\n",
			id, ms(b.FreshMS, f.FreshMS), ms(b.SessionMS, f.SessionMS), f.Speedup)
	}
}

// compareBatch gates the batch-execution sweep: the sequential NP
// total is pinned to the baseline, the batch total must equal the
// sequential total (identical oracle work is the replay-identity
// contract), and the compile amortization ratio must exceed 1 — the
// one ratio gated despite being wall-clock-derived, because it
// compares N repetitions of one operation against a single repetition
// and only an algorithmic regression (recompiling per query) can drag
// it to 1.
func compareBatch(g *gate, base, fresh []bench.BatchCase) {
	if len(base) == 0 && len(fresh) > 0 {
		fmt.Printf("  batch: %d case(s) in fresh run, none in baseline — not gated\n", len(fresh))
		for _, f := range fresh {
			auditBatch(g, f)
		}
		return
	}
	byName := map[string]bench.BatchCase{}
	for _, c := range fresh {
		byName[c.Name] = c
	}
	for _, b := range base {
		f, ok := byName[b.Name]
		if !ok {
			g.missing("batch", b.Name)
			continue
		}
		g.eq("batch", b.Name, "seq_np_calls", b.SeqNP, f.SeqNP)
		auditBatch(g, f)
		fmt.Printf("  batch/%s: seq %s, batch %s, %.1fx amortized (wall-clock, not gated except amort>1)\n",
			b.Name, ms(b.SeqMS, f.SeqMS), ms(b.BatchMS, f.BatchMS), f.Amortization)
	}
}

// auditBatch applies the baseline-free internal invariants of one
// batch case.
func auditBatch(g *gate, f bench.BatchCase) {
	g.eq("batch", f.Name, "batch_np_calls (vs sequential)", f.SeqNP, f.BatchNP)
	g.checked++
	if f.Amortization <= 1 {
		g.failures++
		fmt.Printf("  FAIL batch/%s: compile amortization %.2f not > 1\n", f.Name, f.Amortization)
	}
}

// compareStream gates the streaming sweep: the model count and push
// NP total are pinned to the baseline, and the drained iterator must
// report the exact NP total of the push enumerator. Time-to-first-
// model is reported, never gated.
func compareStream(g *gate, base, fresh []bench.StreamCase) {
	if len(base) == 0 && len(fresh) > 0 {
		fmt.Printf("  stream: %d case(s) in fresh run, none in baseline — not gated\n", len(fresh))
		for _, f := range fresh {
			g.eq("stream", f.Name, "iter_np_calls (vs push)", f.PushNP, f.IterNP)
		}
		return
	}
	byName := map[string]bench.StreamCase{}
	for _, c := range fresh {
		byName[c.Name] = c
	}
	for _, b := range base {
		f, ok := byName[b.Name]
		if !ok {
			g.missing("stream", b.Name)
			continue
		}
		g.eq("stream", b.Name, "models", int64(b.Models), int64(f.Models))
		g.eq("stream", b.Name, "push_np_calls", b.PushNP, f.PushNP)
		g.eq("stream", b.Name, "iter_np_calls (vs push)", f.PushNP, f.IterNP)
		fmt.Printf("  stream/%s: buffered %s, first model %s, TTFM %.1fx (wall-clock, not gated)\n",
			b.Name, ms(b.BufferedMS, f.BufferedMS), ms(b.FirstModelMS, f.FirstModelMS), f.TTFMSpeedup)
	}
}

// compareStore gates the persistence sweep: the cold store-backed NP
// total is pinned to the baseline, persistence must move nothing
// (store-on == store-off), and the pre-warmed restart must compile
// zero databases cold and never exceed the cold process's oracle
// work. Time-to-warm wall-clock is reported, never gated.
func compareStore(g *gate, base, fresh []bench.StoreCase) {
	if len(base) == 0 && len(fresh) > 0 {
		fmt.Printf("  store: %d case(s) in fresh run, none in baseline — not gated\n", len(fresh))
		for _, f := range fresh {
			auditStore(g, f)
		}
		return
	}
	type key struct{ name, sem string }
	byKey := map[key]bench.StoreCase{}
	for _, c := range fresh {
		byKey[key{c.Name, c.Semantics}] = c
	}
	for _, b := range base {
		id := b.Name + "/" + b.Semantics
		f, ok := byKey[key{b.Name, b.Semantics}]
		if !ok {
			g.missing("store", id)
			continue
		}
		g.eq("store", id, "store_on_np_calls", b.OnNP, f.OnNP)
		auditStore(g, f)
		fmt.Printf("  store/%s: cold %s, pre-warmed replay %s, %.1fx (wall-clock, not gated)\n",
			id, ms(b.ColdMS, f.ColdMS), ms(b.ReplayMS, f.ReplayMS), f.Speedup)
	}
}

// auditStore applies the baseline-free internal invariants of one
// store case.
func auditStore(g *gate, f bench.StoreCase) {
	id := f.Name + "/" + f.Semantics
	g.eq("store", id, "store_off_np_calls (vs store-on)", f.OnNP, f.OffNP)
	g.eq("store", id, "replay_cold_compiles", 0, f.ColdCompiles)
	g.checked++
	if f.ReplayNP > f.OnNP {
		g.failures++
		fmt.Printf("  FAIL store/%s: restart NP total %d exceeds cold total %d\n", id, f.ReplayNP, f.OnNP)
	}
}

// compareCluster gates the sharded-cluster sweep: the 1-node NP total
// is pinned to the baseline, and neither sharding nor router
// replication may move anything — the 3-node and 2-router totals must
// each equal the 1-node total, since consistent-hash routing keeps
// each compiled DB's warm session on exactly one worker no matter
// which router forwarded it. Wall-clock is reported, never gated.
func compareCluster(g *gate, base, fresh []bench.ClusterCase) {
	if len(base) == 0 && len(fresh) > 0 {
		fmt.Printf("  cluster: %d case(s) in fresh run, none in baseline — not gated\n", len(fresh))
		for _, f := range fresh {
			auditCluster(g, f)
		}
		return
	}
	type key struct{ name, sem string }
	byKey := map[key]bench.ClusterCase{}
	for _, c := range fresh {
		byKey[key{c.Name, c.Semantics}] = c
	}
	for _, b := range base {
		id := b.Name + "/" + b.Semantics
		f, ok := byKey[key{b.Name, b.Semantics}]
		if !ok {
			g.missing("cluster", id)
			continue
		}
		g.eq("cluster", id, "one_node_np_calls", b.OneNP, f.OneNP)
		auditCluster(g, f)
		fmt.Printf("  cluster/%s: 1-node %s, 3-node %s, 2-router %s (wall-clock, not gated)\n",
			id, ms(b.OneMS, f.OneMS), ms(b.ThreeMS, f.ThreeMS), ms(b.TwoRouterMS, f.TwoRouterMS))
	}
}

// auditCluster applies the baseline-free internal invariants of one
// cluster case. Both apply to the fresh run only, so a baseline file
// written before a deployment shape existed (its fields decode as 0)
// never fails the gate.
func auditCluster(g *gate, f bench.ClusterCase) {
	g.eq("cluster", f.Name+"/"+f.Semantics, "three_node_np_calls (vs 1-node)", f.OneNP, f.ThreeNP)
	g.eq("cluster", f.Name+"/"+f.Semantics, "two_router_np_calls (vs 1-node)", f.OneNP, f.TwoRouterNP)
}

// comparePlanner gates the cost-based-routing sweep: the planner-off
// NP total is pinned to the baseline (a fresh engine per query over a
// seeded workload is deterministic), while the planner-on side is
// bounded — routing must move nothing (zero divergent verdicts), the
// fast path must stay at zero NP calls, a portfolio race's total (both
// arms, including the canceled loser's partial) must never exceed the
// worst single procedure (the fresh-alone cost of the same queries).
// The on-side totals are bounded rather than pinned because a race's
// canceled arm stops at a timing-dependent point; the bounds are what
// the portfolio contract guarantees regardless of timing.
func comparePlanner(g *gate, base, fresh []bench.PlannerCase) {
	if len(base) == 0 && len(fresh) > 0 {
		fmt.Printf("  planner: %d case(s) in fresh run, none in baseline — not gated\n", len(fresh))
		for _, f := range fresh {
			auditPlanner(g, f)
		}
		return
	}
	type key struct{ name, sem string }
	byKey := map[key]bench.PlannerCase{}
	for _, c := range fresh {
		byKey[key{c.Name, c.Semantics}] = c
	}
	for _, b := range base {
		id := b.Name + "/" + b.Semantics
		f, ok := byKey[key{b.Name, b.Semantics}]
		if !ok {
			g.missing("planner", id)
			continue
		}
		g.eq("planner", id, "planner_off_np_calls", b.OffNP, f.OffNP)
		auditPlanner(g, f)
		fmt.Printf("  planner/%s: off %s, on %s, %.1fx (wall-clock, not gated)\n",
			id, ms(b.OffMS, f.OffMS), ms(b.OnMS, f.OnMS), f.Speedup)
	}
}

// auditPlanner applies the baseline-free internal invariants of one
// planner case.
func auditPlanner(g *gate, f bench.PlannerCase) {
	id := f.Name + "/" + f.Semantics
	g.eq("planner", id, "divergent", 0, int64(f.Divergent))
	g.eq("planner", id, "fast_np_calls", 0, f.FastNP)
	g.checked++
	if f.PortfolioNP > f.PortfolioWorstNP {
		g.failures++
		fmt.Printf("  FAIL planner/%s: portfolio total %d exceeds the worst single procedure %d\n",
			id, f.PortfolioNP, f.PortfolioWorstNP)
	}
}

// ms formats a wall-clock pair "baseline→fresh".
func ms(base, fresh float64) string {
	return fmt.Sprintf("%.1f→%.1fms", base, fresh)
}

func load(path string) (*artefact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artefact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.Report == nil {
		return nil, fmt.Errorf("%s: no report section", path)
	}
	return &a, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
