// Command ddbsoak is a standalone differential tester: it generates
// random databases forever and cross-checks every production semantics
// against the brute-force reference implementations, printing any
// divergence and exiting nonzero. It is the long-running complement of
// the unit suites' bounded cross-validation (run it for minutes or
// hours; `-iters` bounds the run for CI).
//
// Usage:
//
//	ddbsoak [-iters N] [-seed S] [-maxatoms 5] [-v]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"

	_ "disjunct/internal/semantics/ccwa"
	_ "disjunct/internal/semantics/cwa"
	_ "disjunct/internal/semantics/ddr"
	_ "disjunct/internal/semantics/dsm"
	_ "disjunct/internal/semantics/ecwa"
	_ "disjunct/internal/semantics/egcwa"
	_ "disjunct/internal/semantics/gcwa"
	_ "disjunct/internal/semantics/icwa"
	_ "disjunct/internal/semantics/pdsm"
	_ "disjunct/internal/semantics/perf"
	_ "disjunct/internal/semantics/pws"
)

func main() {
	iters := flag.Int("iters", 0, "iterations to run (0 = until interrupted)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "rng seed")
	maxAtoms := flag.Int("maxatoms", 5, "maximum vocabulary size (brute force is 2^n)")
	verbose := flag.Bool("v", false, "log progress every 500 iterations")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("ddbsoak: seed=%d maxatoms=%d\n", *seed, *maxAtoms)

	divergences := 0
	for i := 0; *iters == 0 || i < *iters; i++ {
		if *verbose && i%500 == 0 && i > 0 {
			fmt.Printf("  %d iterations, %d divergences\n", i, divergences)
		}
		n := 2 + rng.Intn(*maxAtoms-1)
		var d *db.DB
		switch i % 3 {
		case 0:
			d = gen.Random(rng, gen.Positive(n, 1+rng.Intn(6)))
		case 1:
			d = gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		default:
			d = gen.Random(rng, gen.NormalNoIC(n, 1+rng.Intn(6)))
		}
		if !check(d, rng) {
			divergences++
			fmt.Printf("DIVERGENCE at iteration %d (seed %d)\nDB:\n%s\n", i, *seed, d.String())
		}
	}
	if divergences > 0 {
		fmt.Printf("ddbsoak: %d divergences\n", divergences)
		os.Exit(1)
	}
	fmt.Println("ddbsoak: clean")
}

// check cross-validates one database across all applicable semantics.
func check(d *db.DB, rng *rand.Rand) bool {
	n := d.N()
	x := logic.Atom(rng.Intn(n))
	lit := logic.NegLit(x)
	ok := true

	type refFn func(*db.DB) []logic.Interp
	cases := []struct {
		sem      string
		ref      refFn
		positive bool // requires no negation
		noIC     bool // requires no integrity clauses
	}{
		{"GCWA", refsem.GCWA, false, false},
		{"EGCWA", refsem.EGCWA, false, false},
		{"DDR", refsem.DDR, true, false},
		{"PWS", refsem.PWS, true, false},
		{"DSM", refsem.DSM, false, false},
		{"PERF", refsem.PERF, false, true},
	}
	for _, c := range cases {
		if c.positive && d.HasNegation() {
			continue
		}
		if c.noIC && d.HasIntegrityClauses() {
			continue
		}
		s, _ := core.New(c.sem, core.Options{})
		want := refsem.Entails(c.ref(d), logic.LitF(lit))
		got, err := s.InferLiteral(d, lit)
		if err != nil {
			fmt.Printf("  %s: error %v\n", c.sem, err)
			ok = false
			continue
		}
		if got != want {
			fmt.Printf("  %s ⊨ %s: production=%v reference=%v\n",
				c.sem, d.Voc.LitString(lit), got, want)
			ok = false
		}
	}
	return ok
}
