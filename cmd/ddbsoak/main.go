// Command ddbsoak is a standalone differential tester: it generates
// random databases forever and cross-checks every production semantics
// against the brute-force reference implementations, printing any
// divergence and exiting nonzero. It is the long-running complement of
// the unit suites' bounded cross-validation (run it for minutes or
// hours; `-iters` bounds the run for CI).
//
// A random subset of iterations (-cachefrac) is additionally replayed
// with the oracle verdict cache attached, cross-checking that caching
// never moves a verdict, a model set, or the logical NP-call total.
//
// Setting -faultrate, -deadline or -conflictbudget switches on the
// chaos layer: every iteration is additionally replayed under the given
// budget with seeded fault injection, asserting the three-valued
// contract — a budgeted run either completes with the exact unbudgeted
// verdict (and model set, for the parallel enumerator) or surfaces a
// typed interruption; anything else (silent corruption, an untyped
// error, a leaked goroutine) is a divergence.
//
// A random subset of iterations (-servefrac) is additionally replayed
// through an in-process HTTP inference server, cross-checking the full
// wire path (encode, parse, clamp, admit, execute) against the same
// brute-force references; in chaos mode the server injects the same
// fault rate, so served answers must be complete-and-correct or carry
// a typed interruption cause.
//
// A random subset of iterations (-sessionfrac) is additionally replayed
// through a shared warm session manager (compiled-DB cache, fragment
// fast paths, warm incremental engines), cross-checking every handled
// verdict against the brute-force references, asserting repeats cost
// zero NP calls, and failing on any leaked checkout. When -sessionfrac
// and -servefrac are both set, the in-process server also runs with its
// session layer enabled, so the wire path exercises the warm routes.
//
// A random subset of iterations (-planfrac) is additionally replayed
// through an in-process server with the cost-based planner enabled, so
// the planner's routing (fast path, warm session, fresh enumeration,
// brute refsem, brute-vs-fresh portfolio race) carries real traffic:
// every completed verdict is cross-checked against the brute-force
// references, interruptions must carry typed causes, and after the
// soak the /healthz planner section must be populated — decisions,
// cost observations, served estimates, and the portfolio winner
// histogram — proving the planner actually planned rather than
// pass-through routing everything fresh.
//
// Setting -churnfrac runs a membership-churn sweep after the soak: a
// verified load through an in-process cluster while a seeded churn plan
// (warm joins, graceful drains, abrupt kills) fires mid-load, with every
// completed verdict cross-checked against the direct library and a
// goroutine-settle check after the ring stabilizes.
//
// Usage:
//
//	ddbsoak [-iters N] [-seed S] [-maxatoms 5] [-cachefrac 0.25] [-cachecap N]
//	        [-deadline D] [-conflictbudget N] [-faultrate F] [-faultseed S]
//	        [-servefrac F] [-sessionfrac F] [-planfrac F]
//	        [-clusternodes N] [-churnfrac F] [-v]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/cache"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/faults"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/refsem"
	"disjunct/internal/serve"
	"disjunct/internal/session"
	"disjunct/internal/store"

	_ "disjunct/internal/semantics/all"
)

func main() {
	iters := flag.Int("iters", 0, "iterations to run (0 = until interrupted)")
	seed := flag.Int64("seed", time.Now().UnixNano(), "rng seed")
	maxAtoms := flag.Int("maxatoms", 5, "maximum vocabulary size (brute force is 2^n)")
	cacheFrac := flag.Float64("cachefrac", 0.25, "fraction of iterations replayed with the oracle verdict cache")
	cacheCap := flag.Int("cachecap", 0, "verdict cache capacity (0 = default)")
	deadline := flag.Duration("deadline", 0, "chaos mode: per-query wall-clock budget (0 = off)")
	conflictBudget := flag.Int64("conflictbudget", 0, "chaos mode: per-query SAT-conflict budget (0 = unlimited)")
	faultRate := flag.Float64("faultrate", 0, "chaos mode: injected fault rate (0 = none)")
	faultSeed := flag.Int64("faultseed", 1, "chaos mode: fault injector seed (salted per iteration)")
	serveFrac := flag.Float64("servefrac", 0, "fraction of iterations replayed through an in-process HTTP server (0 = off)")
	batchFrac := flag.Float64("batchfrac", 0, "fraction of iterations additionally replayed through /v1/batch (0 = off; implies -servefrac machinery)")
	sessionFrac := flag.Float64("sessionfrac", 0, "fraction of iterations replayed through a shared warm session manager (0 = off)")
	planFrac := flag.Float64("planfrac", 0, "fraction of iterations replayed through an in-process server with the cost-based planner enabled, cross-checking planner-routed verdicts (fast/warm/fresh/brute/portfolio) against the brute-force references and asserting the /healthz planner section is populated (0 = off)")
	storeDir := flag.String("storedir", "", "back the session manager with a persistent store at this directory and, after the soak, reopen it in a pre-warmed second manager that must replay every recorded verdict identically with zero cold compiles (enables the session checker if -sessionfrac is 0)")
	clusterNodes := flag.Int("clusternodes", 0, "after the soak, run a verified load through an in-process N-worker cluster with seeded node chaos (kill/partition/slow of a seeded victim mid-load) and a graceful drain handoff; any divergent or untyped outcome fails the run (0 = off)")
	clusterReqs := flag.Int("clusterreqs", 240, "requests per cluster sweep phase (with -clusternodes)")
	churnFrac := flag.Float64("churnfrac", 0, "after the soak, run a verified load through an in-process cluster while a seeded membership-churn plan fires mid-load (churnfrac×requests warm joins / graceful drains / abrupt kills); any divergent or untyped outcome or goroutine leak fails the run (0 = off; 3 nodes unless -clusternodes is set)")
	verbose := flag.Bool("v", false, "log progress every 500 iterations")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("ddbsoak: seed=%d maxatoms=%d cachefrac=%g\n", *seed, *maxAtoms, *cacheFrac)

	cc := &cacheChecker{cache: cache.New(*cacheCap)}
	var chaos *chaosChecker
	if *deadline > 0 || *conflictBudget > 0 || *faultRate > 0 {
		chaos = &chaosChecker{
			limits:     budget.Limits{Conflicts: *conflictBudget, Deadline: *deadline},
			faultRate:  *faultRate,
			faultSeed:  *faultSeed,
			goroutines: runtime.NumGoroutine(),
		}
		fmt.Printf("chaos: deadline=%v conflictbudget=%d faultrate=%g faultseed=%d\n",
			*deadline, *conflictBudget, *faultRate, *faultSeed)
	}
	var sc *serveChecker
	if *serveFrac > 0 || *batchFrac > 0 {
		sc = newServeChecker(*faultRate, *faultSeed, *sessionFrac > 0)
		fmt.Printf("serve: servefrac=%g batchfrac=%g faultrate=%g sessions=%v\n",
			*serveFrac, *batchFrac, *faultRate, *sessionFrac > 0)
	}
	var sx *sessionChecker
	if *storeDir != "" && *sessionFrac == 0 {
		*sessionFrac = 0.25
	}
	if *sessionFrac > 0 {
		// The store opens after the chaos baseline is captured, so its
		// flusher goroutine counts against the settle check: a flusher
		// that outlives the store close shows up as a goroutine leak.
		var st *store.Store
		if *storeDir != "" {
			var rec store.Recovery
			var err error
			st, rec, err = store.Open(store.Config{Dir: *storeDir})
			if err != nil {
				fmt.Printf("ddbsoak: store open: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("store: dir=%s recovered artifacts=%d verdicts=%d interns=%d torntail=%v\n",
				*storeDir, rec.Artifacts, rec.Verdicts, rec.Interns, rec.TornTail)
		}
		sx = &sessionChecker{mgr: session.NewManager(session.Config{Store: st}), st: st, dir: *storeDir}
		fmt.Printf("session: sessionfrac=%g\n", *sessionFrac)
	}
	var px *plannerChecker
	if *planFrac > 0 {
		px = newPlannerChecker(*faultRate, *faultSeed)
		fmt.Printf("planner: planfrac=%g faultrate=%g\n", *planFrac, *faultRate)
	}
	divergences := 0
	for i := 0; *iters == 0 || i < *iters; i++ {
		if *verbose && i%500 == 0 && i > 0 {
			fmt.Printf("  %d iterations, %d divergences\n", i, divergences)
		}
		n := 2 + rng.Intn(*maxAtoms-1)
		var d *db.DB
		switch i % 3 {
		case 0:
			d = gen.Random(rng, gen.Positive(n, 1+rng.Intn(6)))
		case 1:
			d = gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		default:
			d = gen.Random(rng, gen.NormalNoIC(n, 1+rng.Intn(6)))
		}
		ok := check(d, rng)
		if *cacheFrac > 0 && rng.Float64() < *cacheFrac {
			ok = cc.check(d, rng) && ok
		}
		if chaos != nil {
			ok = chaos.check(d, rng, i) && ok
		}
		if sc != nil && rng.Float64() < *serveFrac {
			ok = sc.check(d, rng) && ok
		}
		if sc != nil && *batchFrac > 0 && rng.Float64() < *batchFrac {
			ok = sc.checkBatch(d, rng) && ok
		}
		if sx != nil && rng.Float64() < *sessionFrac {
			ok = sx.check(d, rng) && ok
		}
		if px != nil && rng.Float64() < *planFrac {
			ok = px.check(d, rng) && ok
		}
		if !ok {
			divergences++
			fmt.Printf("DIVERGENCE at iteration %d (seed %d)\nDB:\n%s\n", i, *seed, d.String())
		}
	}
	if cc.checked > 0 {
		rate := float64(cc.hits) / float64(cc.hits+cc.misses)
		fmt.Printf("cache cross-check: %d iterations, hits=%d misses=%d rate=%.1f%%\n",
			cc.checked, cc.hits, cc.misses, 100*rate)
	}
	// Drain the in-process server before the chaos goroutine-settle
	// check: its listener and idle keep-alive connections must be gone
	// for the leak check to see the true baseline.
	if sc != nil {
		if !sc.close() {
			divergences++
		}
		fmt.Printf("serve cross-check: %d queries, completed=%d interrupted=%d batches=%d batchqueries=%d\n",
			sc.queries, sc.completed, sc.interrupted, sc.batches, sc.batchQueries)
	}
	if sx != nil {
		if !sx.close() {
			divergences++
		}
		st := sx.mgr.Stats()
		fmt.Printf("session cross-check: %d queries, handled=%d fast=%d warm=%d memohits=%d retired=%d\n",
			sx.queries, sx.handled, st.FastQueries, st.WarmQueries, st.MemoHits, st.Retired)
		if sx.st != nil && !sx.replay() {
			divergences++
		}
	}
	if px != nil {
		if !px.close() {
			divergences++
		}
	}
	if chaos != nil {
		if !chaos.settle() {
			divergences++
		}
		fmt.Printf("chaos cross-check: %d queries, completed=%d interrupted=%d\n",
			chaos.queries, chaos.completed, chaos.interrupted)
	}
	if *clusterNodes > 1 {
		if !runClusterSweep(*seed, *clusterNodes, *clusterReqs) {
			divergences++
		}
	}
	if *churnFrac > 0 {
		churnNodes := *clusterNodes
		if churnNodes < 2 {
			churnNodes = 3
		}
		if !runChurnSweep(*seed, churnNodes, *clusterReqs, *churnFrac) {
			divergences++
		}
	}
	if divergences > 0 {
		fmt.Printf("ddbsoak: %d divergences\n", divergences)
		os.Exit(1)
	}
	fmt.Println("ddbsoak: clean")
}

// chaosChecker replays queries under a resource budget with seeded
// fault injection and enforces the three-valued contract: every
// budgeted run either completes with the exact unbudgeted verdict or
// is interrupted with a typed cause — never a silent corruption, an
// untyped error, a panic, or a leaked goroutine.
type chaosChecker struct {
	limits      budget.Limits
	faultRate   float64
	faultSeed   int64
	goroutines  int // baseline at startup
	queries     int
	completed   int
	interrupted int
}

// injector derives a per-query injector so chaos runs are reproducible
// from (-faultseed, iteration) but queries fault independently.
func (ch *chaosChecker) injector(iter, query int) *faults.Injector {
	return faults.NewInjector(ch.faultRate, ch.faultSeed+int64(iter)*1000003+int64(query))
}

func (ch *chaosChecker) oracle(iter, query int) (*oracle.NP, *budget.B) {
	b := budget.New(context.Background(), ch.limits)
	return oracle.NewNP().WithBudget(b).WithFaults(ch.injector(iter, query)), b
}

func (ch *chaosChecker) check(d *db.DB, rng *rand.Rand, iter int) bool {
	lit := logic.NegLit(logic.Atom(rng.Intn(d.N())))
	ok := true

	// Budgeted literal inference vs the unbudgeted production run.
	for q, sem := range []string{"GCWA", "EGCWA", "DSM"} {
		ref, _ := core.New(sem, core.Options{})
		want, refErr := ref.InferLiteral(d, lit)
		if refErr != nil {
			continue // not a budget concern; the plain checker reports it
		}
		o, _ := ch.oracle(iter, q)
		s, _ := core.New(sem, core.Options{Oracle: o})
		ch.queries++
		got, err := s.InferLiteral(d, lit)
		if err != nil {
			if !budget.Interrupted(err) {
				fmt.Printf("  chaos %s: untyped error %v\n", sem, err)
				ok = false
				continue
			}
			ch.interrupted++
			continue
		}
		ch.completed++
		if got != want {
			fmt.Printf("  chaos %s ⊨ %s: silent corruption — budgeted=%v unbudgeted=%v\n",
				sem, d.Voc.LitString(lit), got, want)
			ok = false
		}
		c := o.Counters()
		if c.CacheHits+c.CacheMisses != 0 {
			fmt.Printf("  chaos %s: cacheless oracle reported hits/misses %+v\n", sem, c)
			ok = false
		}
	}

	// Budgeted parallel enumeration vs the unbudgeted worker pool:
	// a completed run must produce exactly the reference minimal-model
	// set; an interrupted one must yield a subset.
	refSet := map[string]bool{}
	models.NewEngine(d, oracle.NewNP()).MinimalModels(0, func(m logic.Interp) bool {
		refSet[m.Key()] = true
		return true
	})
	o, _ := ch.oracle(iter, 3)
	eng := models.NewEngine(d, o)
	got := map[string]bool{}
	ch.queries++
	count, err := eng.MinimalModelsParBudgeted(0, func(m logic.Interp) bool {
		got[m.Key()] = true
		return true
	}, models.ParOptions{Workers: 4})
	for k := range got {
		if !refSet[k] {
			fmt.Printf("  chaos enumeration yielded a non-minimal model %s\n", k)
			ok = false
		}
	}
	if err != nil {
		if !budget.Interrupted(err) {
			fmt.Printf("  chaos enumeration: untyped error %v\n", err)
			ok = false
		} else {
			ch.interrupted++
		}
	} else {
		ch.completed++
		if count != len(refSet) || len(got) != len(refSet) {
			fmt.Printf("  chaos enumeration completed with %d models, reference has %d\n",
				len(got), len(refSet))
			ok = false
		}
	}
	return ok
}

// settle verifies the goroutine count has returned to the startup
// baseline (modulo runtime workers) once all chaos iterations finished.
func (ch *chaosChecker) settle() bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= ch.goroutines {
			return true
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("  chaos: goroutine leak — %d running, baseline %d\n",
		runtime.NumGoroutine(), ch.goroutines)
	return false
}

// serveChecker replays a subset of iterations through an in-process
// HTTP inference server and cross-checks the served verdicts against
// the brute-force reference semantics — the full wire path (JSON
// encode, parse, clamp, admit, execute, respond) must move nothing.
// When the soak runs in chaos mode the same fault rate is injected on
// the server's oracle path, so served answers must additionally obey
// the three-valued contract: complete-and-correct or interrupted with
// a typed cause from the closed taxonomy.
type serveChecker struct {
	srv          *serve.Server
	hs           *httptest.Server
	queries      int
	completed    int
	interrupted  int
	batches      int
	batchQueries int
}

func newServeChecker(faultRate float64, faultSeed int64, sessions bool) *serveChecker {
	srv := serve.New(serve.Config{FaultRate: faultRate, FaultSeed: faultSeed, RetryMax: 2, Sessions: sessions})
	return &serveChecker{srv: srv, hs: httptest.NewServer(srv.Handler())}
}

// close drains the server and reports whether the drain was clean.
func (sc *serveChecker) close() bool {
	err := sc.srv.Drain(context.Background())
	sc.hs.Close()
	if err != nil {
		fmt.Printf("  serve: drain after soak: %v\n", err)
		return false
	}
	return true
}

func (sc *serveChecker) post(path string, req serve.QueryRequest) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	resp, err := sc.hs.Client().Post(sc.hs.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

func (sc *serveChecker) check(d *db.DB, rng *rand.Rand) bool {
	// Queries are phrased against the textual form the server parses, so
	// the database must survive the round trip (atoms in no clause are
	// dropped by parsing).
	rt, err := db.Parse(d.String())
	if err != nil || rt.N() == 0 {
		return true
	}
	lit := logic.NegLit(logic.Atom(rng.Intn(rt.N())))
	litText := rt.Voc.LitString(lit)
	ok := true

	type refFn func(*db.DB) []logic.Interp
	cases := []struct {
		sem      string
		ref      refFn
		positive bool
		noIC     bool
	}{
		{"GCWA", refsem.GCWA, false, false},
		{"EGCWA", refsem.EGCWA, false, false},
		{"DDR", refsem.DDR, true, false},
		{"PWS", refsem.PWS, true, false},
		{"DSM", refsem.DSM, false, false},
		{"PERF", refsem.PERF, false, true},
	}
	for _, c := range cases {
		if c.positive && rt.HasNegation() {
			continue
		}
		if c.noIC && rt.HasIntegrityClauses() {
			continue
		}
		sc.queries++
		status, data, err := sc.post("/v1/infer/literal", serve.QueryRequest{
			Semantics: c.sem, DB: rt.String(), Literal: litText,
		})
		if err != nil {
			fmt.Printf("  serve %s: transport error %v\n", c.sem, err)
			ok = false
			continue
		}
		if status != http.StatusOK {
			fmt.Printf("  serve %s: status %d body %s\n", c.sem, status, data)
			ok = false
			continue
		}
		var qr serve.QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			fmt.Printf("  serve %s: unparseable 200 body %q: %v\n", c.sem, data, err)
			ok = false
			continue
		}
		if qr.Incomplete {
			if !serve.KnownCauseCodes[qr.CauseCode] {
				fmt.Printf("  serve %s: untyped interruption cause %q\n", c.sem, qr.CauseCode)
				ok = false
				continue
			}
			sc.interrupted++
			continue
		}
		sc.completed++
		want := refsem.Entails(c.ref(rt), logic.LitF(lit))
		if qr.Holds != want {
			fmt.Printf("  serve %s ⊨ %s: served=%v reference=%v\n", c.sem, litText, qr.Holds, want)
			ok = false
		}
	}
	return ok
}

// checkBatch replays negative-literal queries over every atom through
// one /v1/batch request and cross-checks each per-query verdict against
// the brute-force references — the batch pipeline (shared compile, warm
// checkout groups, fresh leftovers) must agree with sequential serving
// and with the reference semantics on every member.
func (sc *serveChecker) checkBatch(d *db.DB, rng *rand.Rand) bool {
	rt, err := db.Parse(d.String())
	if err != nil || rt.N() == 0 {
		return true
	}
	type batchCase struct {
		sem string
		ref func(*db.DB) []logic.Interp
		lit logic.Lit
	}
	var cases []batchCase
	for v := 0; v < rt.N(); v++ {
		lit := logic.NegLit(logic.Atom(v))
		cases = append(cases, batchCase{"GCWA", refsem.GCWA, lit}, batchCase{"EGCWA", refsem.EGCWA, lit})
		if !rt.HasNegation() {
			cases = append(cases, batchCase{"PWS", refsem.PWS, lit})
		}
	}
	breq := serve.BatchRequest{DB: rt.String()}
	for _, c := range cases {
		breq.Queries = append(breq.Queries, serve.BatchQuery{
			Kind: "literal", Semantics: c.sem, Literal: rt.Voc.LitString(c.lit),
		})
	}
	body, err := json.Marshal(breq)
	if err != nil {
		fmt.Printf("  batch: marshal: %v\n", err)
		return false
	}
	resp, err := sc.hs.Client().Post(sc.hs.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Printf("  batch: transport error %v\n", err)
		return false
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fmt.Printf("  batch: status %d body %s\n", resp.StatusCode, data)
		return false
	}
	var br serve.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		fmt.Printf("  batch: unparseable 200 body: %v\n", err)
		return false
	}
	if len(br.Results) != len(cases) {
		fmt.Printf("  batch: %d results for %d queries\n", len(br.Results), len(cases))
		return false
	}
	sc.batches++
	sc.batchQueries += len(cases)
	ok := true
	for i, item := range br.Results {
		c := cases[i]
		switch {
		case item.Error != nil:
			fmt.Printf("  batch %s ⊨ %s: unexpected error entry %q\n", c.sem, rt.Voc.LitString(c.lit), item.Error.Error)
			ok = false
		case item.Response == nil:
			fmt.Printf("  batch query %d: neither response nor error\n", i)
			ok = false
		case item.Response.Incomplete:
			if !serve.KnownCauseCodes[item.Response.CauseCode] {
				fmt.Printf("  batch %s: untyped cause %q\n", c.sem, item.Response.CauseCode)
				ok = false
			}
		default:
			want := refsem.Entails(c.ref(rt), logic.LitF(c.lit))
			if item.Response.Holds != want {
				fmt.Printf("  batch %s ⊨ %s: served=%v reference=%v\n",
					c.sem, rt.Voc.LitString(c.lit), item.Response.Holds, want)
				ok = false
			}
		}
	}
	return ok
}

// plannerChecker replays a subset of iterations through an in-process
// server with the cost-based planner enabled, shared across all
// iterations so the estimator warms up: first sight of a (database,
// semantics) key routes cold (portfolio for the tiny Σ₂ᵖ cases, warm
// or fast otherwise), the repeat is served from a calibrated estimate.
// Every completed verdict — whatever procedure the planner picked —
// must match the brute-force references, and interruptions must carry
// typed causes. close() asserts the /healthz planner section is
// populated: decisions, observations, served estimates, and at least
// one portfolio race when any query straddled the brute/fresh
// boundary.
type plannerChecker struct {
	srv         *serve.Server
	hs          *httptest.Server
	queries     int
	completed   int
	interrupted int
	portfolios  int // completed responses served via a portfolio race
	brutes      int // completed responses served via the brute procedure
}

func newPlannerChecker(faultRate float64, faultSeed int64) *plannerChecker {
	srv := serve.New(serve.Config{FaultRate: faultRate, FaultSeed: faultSeed, RetryMax: 2, Planner: true})
	return &plannerChecker{srv: srv, hs: httptest.NewServer(srv.Handler())}
}

func (px *plannerChecker) check(d *db.DB, rng *rand.Rand) bool {
	rt, err := db.Parse(d.String())
	if err != nil || rt.N() == 0 {
		return true
	}
	lit := logic.NegLit(logic.Atom(rng.Intn(rt.N())))
	litText := rt.Voc.LitString(lit)
	ok := true

	cases := []struct {
		sem      string
		ref      func(*db.DB) []logic.Interp
		positive bool
		noIC     bool
	}{
		{"GCWA", refsem.GCWA, false, false}, // warm-session route
		{"EGCWA", refsem.EGCWA, false, false},
		{"DDR", refsem.DDR, true, false}, // NP-class, brute-eligible
		{"PWS", refsem.PWS, true, false},
		{"DSM", refsem.DSM, false, false}, // Σ₂ᵖ-class, portfolio route
		{"PERF", refsem.PERF, false, true},
	}
	for _, c := range cases {
		if c.positive && rt.HasNegation() {
			continue
		}
		if c.noIC && rt.HasIntegrityClauses() {
			continue
		}
		want := refsem.Entails(c.ref(rt), logic.LitF(lit))
		// Twice per case: the first request may route cold (portfolio),
		// the second must see the estimate the first one calibrated.
		for rep := 0; rep < 2; rep++ {
			px.queries++
			body, _ := json.Marshal(serve.QueryRequest{Semantics: c.sem, DB: rt.String(), Literal: litText})
			resp, err := px.hs.Client().Post(px.hs.URL+"/v1/infer/literal", "application/json", bytes.NewReader(body))
			if err != nil {
				fmt.Printf("  planner %s: transport error %v\n", c.sem, err)
				ok = false
				continue
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fmt.Printf("  planner %s: status %d body %s\n", c.sem, resp.StatusCode, data)
				ok = false
				continue
			}
			var qr serve.QueryResponse
			if err := json.Unmarshal(data, &qr); err != nil {
				fmt.Printf("  planner %s: unparseable 200 body %q: %v\n", c.sem, data, err)
				ok = false
				continue
			}
			if qr.Incomplete {
				if !serve.KnownCauseCodes[qr.CauseCode] {
					fmt.Printf("  planner %s: untyped interruption cause %q\n", c.sem, qr.CauseCode)
					ok = false
					continue
				}
				px.interrupted++
				continue
			}
			px.completed++
			switch {
			case strings.HasPrefix(qr.Path, "portfolio:"):
				px.portfolios++
			case qr.Path == "brute":
				px.brutes++
			}
			if qr.Holds != want {
				fmt.Printf("  planner %s ⊨ %s (path %q): served=%v reference=%v\n",
					c.sem, litText, qr.Path, qr.Holds, want)
				ok = false
			}
		}
	}
	return ok
}

// close drains the planner server and asserts its /healthz planner
// section is populated — the planner must have decided, observed, and
// served estimates, and raced at least one portfolio whenever a
// completed response reported a portfolio path.
func (px *plannerChecker) close() bool {
	ok := true
	ps := map[string]int64{}
	if h, err := serve.FetchHealth(px.hs.Client(), px.hs.URL); err != nil {
		fmt.Printf("  planner: healthz fetch: %v\n", err)
		ok = false
	} else {
		ps = h.Planner
	}
	if err := px.srv.Drain(context.Background()); err != nil {
		fmt.Printf("  planner: drain after soak: %v\n", err)
		ok = false
	}
	px.hs.Close()
	if px.queries > 0 {
		if len(ps) == 0 {
			fmt.Println("  planner: /healthz planner section empty")
			return false
		}
		if ps["decisions"] == 0 {
			fmt.Println("  planner: zero decisions recorded for a nonzero query count")
			ok = false
		}
		if px.completed > 0 && ps["observations"] == 0 {
			fmt.Println("  planner: zero cost observations despite completed queries")
			ok = false
		}
		if px.completed > 0 && ps["estimates_served"] == 0 {
			fmt.Println("  planner: no estimate ever served despite repeated keys")
			ok = false
		}
		if px.portfolios > 0 && ps["portfolio_races"] == 0 {
			fmt.Println("  planner: portfolio paths served but zero races recorded")
			ok = false
		}
		if ps["portfolio_races"] != ps["portfolio_win_brute"]+ps["portfolio_win_fresh"] {
			fmt.Printf("  planner: winner histogram %d+%d does not sum to races %d\n",
				ps["portfolio_win_brute"], ps["portfolio_win_fresh"], ps["portfolio_races"])
			ok = false
		}
	}
	fmt.Printf("planner cross-check: %d queries, completed=%d interrupted=%d portfolio=%d brute=%d "+
		"(healthz: decisions=%d est_served=%d observations=%d races=%d wins brute/fresh=%d/%d shed_cost=%d)\n",
		px.queries, px.completed, px.interrupted, px.portfolios, px.brutes,
		ps["decisions"], ps["estimates_served"], ps["observations"],
		ps["portfolio_races"], ps["portfolio_win_brute"], ps["portfolio_win_fresh"], ps["shed_cost"])
	return ok
}

// sessionChecker replays literal queries through one warm session
// manager shared across all iterations — the compiled-DB cache, the
// fragment fast paths, and the warm incremental engines all accumulate
// state — and cross-checks every verdict the layer handles against the
// brute-force references. Repeats of a handled query must cost zero NP
// calls, and no checkout may leak by the end of the soak.
type sessionChecker struct {
	mgr      *session.Manager
	st       *store.Store
	dir      string
	queries  int
	handled  int
	recorded []soakVerdict
}

// soakVerdict is one handled verdict remembered for the post-soak
// restart replay. The database is kept as the exact interned text so
// the replay manager's store lookup hits the same artifact key.
type soakVerdict struct {
	dbText string
	sem    string
	atom   string
	holds  bool
}

// maxRecorded bounds replay memory on long unbounded soaks.
const maxRecorded = 2048

func (sx *sessionChecker) check(d *db.DB, rng *rand.Rand) bool {
	comp := sx.mgr.InternDB(d)
	lit := logic.NegLit(logic.Atom(rng.Intn(d.N())))
	ok := true
	ctx := context.Background()

	type refFn func(*db.DB) []logic.Interp
	cases := []struct {
		sem      string
		ref      refFn
		positive bool
		noIC     bool
	}{
		{"GCWA", refsem.GCWA, false, false},
		{"EGCWA", refsem.EGCWA, false, false},
		{"DDR", refsem.DDR, true, false},
		{"PWS", refsem.PWS, true, false},
		{"DSM", refsem.DSM, false, false},
		{"PERF", refsem.PERF, false, true},
	}
	for _, c := range cases {
		if c.positive && d.HasNegation() {
			continue
		}
		if c.noIC && d.HasIntegrityClauses() {
			continue
		}
		sx.queries++
		req := session.Request{Sem: c.sem, Kind: session.KindLiteral, Lit: lit, QueryText: d.Voc.LitString(lit)}
		res, handled := sx.mgr.Query(ctx, comp, req)
		if !handled {
			continue
		}
		if res.Err != nil {
			fmt.Printf("  session %s: unbudgeted query interrupted: %v\n", c.sem, res.Err)
			ok = false
			continue
		}
		sx.handled++
		if sx.st != nil && len(sx.recorded) < maxRecorded {
			sx.recorded = append(sx.recorded, soakVerdict{
				dbText: d.String(), sem: c.sem, atom: d.Voc.Name(lit.Atom()), holds: res.Holds,
			})
		}
		want := refsem.Entails(c.ref(d), logic.LitF(lit))
		if res.Holds != want {
			fmt.Printf("  session %s ⊨ %s (path %s): session=%v reference=%v\n",
				c.sem, d.Voc.LitString(lit), res.Path, res.Holds, want)
			ok = false
		}
		if res.Path == "fast" && res.Counters.NPCalls != 0 {
			fmt.Printf("  session %s: fast path consumed %d NP calls\n", c.sem, res.Counters.NPCalls)
			ok = false
		}
		res2, h2 := sx.mgr.Query(ctx, comp, req)
		if !h2 || res2.Err != nil || res2.Holds != want || res2.Counters.NPCalls != 0 {
			fmt.Printf("  session %s: repeat diverged (handled=%v err=%v holds=%v np=%d want=%v)\n",
				c.sem, h2, res2.Err, res2.Holds, res2.Counters.NPCalls, want)
			ok = false
		}
	}
	return ok
}

// close verifies no session is still checked out after the soak, and
// when a store is attached, flushes it and asserts its write-behind
// flusher goroutine actually exited — a clean drain contract, checked
// before the chaos goroutine-settle so a lingering flusher is caught
// by name here rather than as an anonymous leak there.
func (sx *sessionChecker) close() bool {
	ok := true
	if st := sx.mgr.Stats(); st.ActiveCheckouts != 0 {
		fmt.Printf("  session: checkout leak — %d outstanding\n", st.ActiveCheckouts)
		ok = false
	}
	if sx.st != nil {
		if err := sx.st.Close(); err != nil {
			fmt.Printf("  session: store close: %v\n", err)
			ok = false
		}
		if s := sx.st.Stats(); s.FlusherRunning {
			fmt.Println("  session: store flusher goroutine still running after close")
			ok = false
		} else if s.WriteErrors != 0 {
			fmt.Printf("  session: store reported %d write errors\n", s.WriteErrors)
			ok = false
		}
	}
	return ok
}

// replay is the restart half of the persistence contract: reopen the
// store directory in a second, pre-warmed manager — standing in for a
// restarted process — and require every recorded verdict to reproduce
// identically without a single cold compile. Recorded verdicts were
// already cross-checked against the brute-force references when they
// were handled, so identity here transitively proves identity between
// the cold process, the pre-warmed process, and direct library calls.
func (sx *sessionChecker) replay() bool {
	st2, rec, err := store.Open(store.Config{Dir: sx.dir})
	if err != nil {
		fmt.Printf("  store replay: reopen: %v\n", err)
		return false
	}
	defer st2.Close()
	mgr2 := session.NewManager(session.Config{Store: st2})
	warmed, err := mgr2.Prewarm()
	if err != nil {
		fmt.Printf("  store replay: prewarm: %v\n", err)
		return false
	}
	ok := true
	replayed := 0
	ctx := context.Background()
	for _, r := range sx.recorded {
		d, err := db.Parse(r.dbText)
		if err != nil {
			fmt.Printf("  store replay: recorded db no longer parses: %v\n", err)
			ok = false
			continue
		}
		a, found := d.Voc.Lookup(r.atom)
		if !found {
			continue // atom lost in the textual round trip: not comparable
		}
		lit := logic.NegLit(a)
		comp := mgr2.Intern(r.dbText, d)
		res, handled := mgr2.Query(ctx, comp, session.Request{
			Sem: r.sem, Kind: session.KindLiteral, Lit: lit, QueryText: d.Voc.LitString(lit),
		})
		if !handled {
			continue
		}
		if res.Err != nil {
			fmt.Printf("  store replay %s: query error: %v\n", r.sem, res.Err)
			ok = false
			continue
		}
		replayed++
		if res.Holds != r.holds {
			fmt.Printf("  store replay %s ⊨ %s: restarted=%v recorded=%v\nDB:\n%s\n",
				r.sem, d.Voc.LitString(lit), res.Holds, r.holds, r.dbText)
			ok = false
		}
	}
	st := mgr2.Stats()
	if st.ColdCompiles != 0 {
		fmt.Printf("  store replay: pre-warmed manager ran %d cold compiles, want 0\n", st.ColdCompiles)
		ok = false
	}
	if len(sx.recorded) > 0 && replayed == 0 {
		fmt.Printf("  store replay: compared zero of %d recorded verdicts\n", len(sx.recorded))
		ok = false
	}
	fmt.Printf("store replay: recovered artifacts=%d verdicts=%d, prewarmed=%d, replayed=%d/%d, coldcompiles=%d\n",
		rec.Artifacts, rec.Verdicts, warmed, replayed, len(sx.recorded), st.ColdCompiles)
	return ok
}

// cacheChecker replays production-semantics queries with the oracle
// verdict cache attached — shared across iterations, so hits
// accumulate across databases — and cross-checks the cached run
// against an uncached one: verdicts, model sets, and logical NP-call
// totals must all be identical, and the cached oracle's hit/miss split
// must account for every call.
type cacheChecker struct {
	cache   *cache.Cache
	checked int
	hits    int64
	misses  int64
}

func (cc *cacheChecker) check(d *db.DB, rng *rand.Rand) bool {
	cc.checked++
	lit := logic.NegLit(logic.Atom(rng.Intn(d.N())))
	ok := true
	for _, sem := range []string{"GCWA", "EGCWA", "ECWA", "CCWA", "DSM", "PERF"} {
		if sem == "PERF" && d.HasIntegrityClauses() {
			continue
		}
		plainOra := oracle.NewNP()
		cachedOra := oracle.NewNP().WithCache(cc.cache)
		plain, _ := core.New(sem, core.Options{Oracle: plainOra})
		cached, _ := core.New(sem, core.Options{Oracle: cachedOra})

		wantV, wantErr := plain.InferLiteral(d, lit)
		gotV, gotErr := cached.InferLiteral(d, lit)
		if wantV != gotV || (wantErr == nil) != (gotErr == nil) {
			fmt.Printf("  cache %s ⊨ %s: cached=%v/%v uncached=%v/%v\n",
				sem, d.Voc.LitString(lit), gotV, gotErr, wantV, wantErr)
			ok = false
		}

		wantM := map[string]bool{}
		gotM := map[string]bool{}
		plain.Models(d, 0, func(m logic.Interp) bool { wantM[m.Key()] = true; return true })
		cached.Models(d, 0, func(m logic.Interp) bool { gotM[m.Key()] = true; return true })
		if len(wantM) != len(gotM) {
			fmt.Printf("  cache %s models: cached=%d uncached=%d\n", sem, len(gotM), len(wantM))
			ok = false
		} else {
			for k := range wantM {
				if !gotM[k] {
					fmt.Printf("  cache %s models: model sets diverge\n", sem)
					ok = false
					break
				}
			}
		}

		p, c := plainOra.Counters(), cachedOra.Counters()
		if p.NPCalls != c.NPCalls {
			fmt.Printf("  cache %s: NP-call total moved (cached=%d uncached=%d)\n", sem, c.NPCalls, p.NPCalls)
			ok = false
		}
		if c.CacheHits+c.CacheMisses != c.NPCalls {
			fmt.Printf("  cache %s: hits(%d)+misses(%d) != NP calls(%d)\n",
				sem, c.CacheHits, c.CacheMisses, c.NPCalls)
			ok = false
		}
		cc.hits += c.CacheHits
		cc.misses += c.CacheMisses
	}
	return ok
}

// check cross-validates one database across all applicable semantics.
func check(d *db.DB, rng *rand.Rand) bool {
	n := d.N()
	x := logic.Atom(rng.Intn(n))
	lit := logic.NegLit(x)
	ok := true

	type refFn func(*db.DB) []logic.Interp
	cases := []struct {
		sem      string
		ref      refFn
		positive bool // requires no negation
		noIC     bool // requires no integrity clauses
	}{
		{"GCWA", refsem.GCWA, false, false},
		{"EGCWA", refsem.EGCWA, false, false},
		{"DDR", refsem.DDR, true, false},
		{"PWS", refsem.PWS, true, false},
		{"DSM", refsem.DSM, false, false},
		{"PERF", refsem.PERF, false, true},
	}
	for _, c := range cases {
		if c.positive && d.HasNegation() {
			continue
		}
		if c.noIC && d.HasIntegrityClauses() {
			continue
		}
		s, _ := core.New(c.sem, core.Options{})
		want := refsem.Entails(c.ref(d), logic.LitF(lit))
		got, err := s.InferLiteral(d, lit)
		if err != nil {
			fmt.Printf("  %s: error %v\n", c.sem, err)
			ok = false
			continue
		}
		if got != want {
			fmt.Printf("  %s ⊨ %s: production=%v reference=%v\n",
				c.sem, d.Voc.LitString(lit), got, want)
			ok = false
		}
	}
	return ok
}
