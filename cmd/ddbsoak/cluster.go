package main

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"disjunct/internal/cluster"
	"disjunct/internal/faults"
	"disjunct/internal/serve"
)

// runClusterSweep is the multi-node half of the soak: an in-process
// N-worker cluster behind the consistent-hash router takes a verified
// hot-DB load in four phases — a clean warmup, a pass with seeded node
// chaos (SIGKILL-equivalent listener close, partition, or slowdown of
// a seeded victim at a seeded point mid-load), a post-chaos pass after
// healing, and a graceful drain of one survivor with its warm state
// handed off. Every phase must finish with zero divergent and zero
// untyped outcomes; goroutines must settle afterwards.
func runClusterSweep(seed int64, nodes, requests int) bool {
	plan := faults.NodePlanFor(seed, nodes, requests)
	fmt.Printf("cluster: nodes=%d requests=%d victim=%d at=%d kind=%s\n",
		nodes, requests, plan.Victim, plan.At, plan.Kind)
	baseline := runtime.NumGoroutine()

	l := cluster.StartLocal(nodes, serve.Config{
		MaxConcurrent: 4, Sessions: true, RetryMax: 2,
	}, cluster.RouterConfig{
		Seed: seed, ProbeInterval: 25 * time.Millisecond, FailThreshold: 2,
	})

	cfg := serve.LoadConfig{
		BaseURL:  l.URL(),
		Rate:     400,
		Requests: requests,
		Workers:  8,
		Seed:     seed,
		MaxAtoms: 6,
		HotDBs:   6,
		Verify:   true,
		Limits:   serve.LimitsJSON{DeadlineMS: 10_000},
	}

	ok := true
	phase := func(name string, rep serve.LoadReport) {
		fmt.Printf("cluster %s: %s\n", name, rep.String())
		if !rep.Clean() {
			ok = false
			for _, n := range rep.UntypedNotes {
				fmt.Printf("  cluster %s: untyped outcome: %s\n", name, n)
			}
			for _, n := range rep.DivergeNotes {
				fmt.Printf("  cluster %s: verdict divergence: %s\n", name, n)
			}
		}
	}

	// Phase 1: clean warmup — routes every hot DB to its owner and
	// warms that owner's sessions.
	phase("warmup", serve.RunLoad(cfg))

	// Phase 2: seeded chaos lands mid-load. The victim and the point
	// are the plan's; the offered rate converts the request index into
	// a wall-clock delay.
	victimURL := l.Workers[plan.Victim].URL()
	victimHost := strings.TrimPrefix(victimURL, "http://")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Duration(float64(plan.At) / cfg.Rate * float64(time.Second)))
		switch plan.Kind {
		case faults.NodeKill:
			l.Workers[plan.Victim].Kill()
		default:
			l.Chaos.Afflict(victimHost, plan.Kind)
		}
	}()
	chaosCfg := cfg
	chaosCfg.Seed = seed + 1
	phase("chaos", serve.RunLoad(chaosCfg))
	wg.Wait()

	// Phase 3: heal a partition/slowdown (a killed worker stays dead —
	// the ring keeps failing its keys over) and replay.
	if plan.Kind != faults.NodeKill {
		l.Chaos.Heal()
	}
	postCfg := cfg
	postCfg.Seed = seed + 2
	phase("post-chaos", serve.RunLoad(postCfg))

	// Phase 4: gracefully drain one survivor; its warm state must hand
	// off and the shrunk ring must still serve a clean pass.
	drainIdx := (plan.Victim + 1) % nodes
	rep, err := l.Router.DrainNode(context.Background(), l.Workers[drainIdx].URL())
	if err != nil {
		fmt.Printf("  cluster drain: %v\n", err)
		ok = false
	} else {
		fmt.Printf("cluster drain: node=%s artifacts=%d verdicts=%d\n",
			rep.Node, rep.Artifacts, rep.Verdicts)
		l.Workers[drainIdx].Kill()
		drainedCfg := cfg
		drainedCfg.Seed = seed + 3
		phase("post-drain", serve.RunLoad(drainedCfg))
	}

	// Teardown, then the settle check: everything the sweep started
	// must exit.
	l.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+3 {
			return ok
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("  cluster: goroutine leak — %d running, baseline %d\n",
		runtime.NumGoroutine(), baseline)
	return false
}
