package main

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"disjunct/internal/cluster"
	"disjunct/internal/faults"
	"disjunct/internal/serve"
)

// runChurnSweep is the membership-churn half of the multi-node soak:
// where runClusterSweep breaks one node, this sweep changes the member
// set itself. A seeded ChurnPlan (warm joins, graceful drains, abrupt
// kills — never dropping below two live members, always at least one
// join) fires mid-load against an in-process cluster, interleaved with
// a verified hot-DB load. Every completed verdict is cross-checked
// against the direct library (Verify), every outcome must be typed,
// and after the ring stabilizes a final replay must be clean and all
// goroutines must settle back to baseline.
func runChurnSweep(seed int64, nodes, requests int, churnFrac float64) bool {
	events := int(churnFrac * float64(requests))
	if events < 1 {
		events = 1
	}
	plan := faults.ChurnPlanFor(seed, nodes, requests, events)
	fmt.Printf("churn: nodes=%d requests=%d events=%d\n", nodes, requests, len(plan))
	for _, ev := range plan {
		fmt.Printf("  churn plan: at=%d kind=%s victim=%d\n", ev.At, ev.Kind, ev.Victim)
	}
	baseline := runtime.NumGoroutine()

	l := cluster.StartLocal(nodes, serve.Config{
		MaxConcurrent: 4, Sessions: true, RetryMax: 2,
	}, cluster.RouterConfig{
		Seed: seed, ProbeInterval: 25 * time.Millisecond, FailThreshold: 2,
		GossipInterval: 50 * time.Millisecond,
	})

	cfg := serve.LoadConfig{
		BaseURL:  l.URL(),
		Rate:     400,
		Requests: requests,
		Workers:  8,
		Seed:     seed,
		MaxAtoms: 6,
		HotDBs:   6,
		Verify:   true,
		Limits:   serve.LimitsJSON{DeadlineMS: 10_000},
	}

	ok := true
	phase := func(name string, rep serve.LoadReport) {
		fmt.Printf("churn %s: %s\n", name, rep.String())
		if !rep.Clean() {
			ok = false
			for _, n := range rep.UntypedNotes {
				fmt.Printf("  churn %s: untyped outcome: %s\n", name, n)
			}
			for _, n := range rep.DivergeNotes {
				fmt.Printf("  churn %s: verdict divergence: %s\n", name, n)
			}
		}
	}

	// Phase 1: clean warmup, so joins during churn have warm donors.
	phase("warmup", serve.RunLoad(cfg))

	// Phase 2: the plan fires against the live cluster while a second
	// verified load runs. The live list mirrors the plan's bookkeeping
	// exactly: joins append, drains and kills delete in place, so each
	// event's Victim indexes the same node the plan meant.
	live := append([]*cluster.LocalWorker(nil), l.Workers[:nodes]...)
	var notes []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		for _, ev := range plan {
			due := time.Duration(float64(ev.At) / cfg.Rate * float64(time.Second))
			if d := due - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			switch ev.Kind {
			case faults.ChurnJoin:
				w := l.StartWorker()
				rep, err := l.Router.JoinNode(context.Background(), w.URL())
				if err != nil {
					notes = append(notes, fmt.Sprintf("join at %d: %v", ev.At, err))
					continue
				}
				fmt.Printf("  churn join: node=%s epoch=%d artifacts=%d imported=%d donors=%d\n",
					w.URL(), rep.Epoch, rep.Artifacts, rep.ImportedArtifacts, len(rep.Donors))
				live = append(live, w)
			case faults.ChurnDrain:
				victim := live[ev.Victim]
				rep, err := l.Router.DrainNode(context.Background(), victim.URL())
				if err != nil {
					notes = append(notes, fmt.Sprintf("drain at %d: %v", ev.At, err))
					continue
				}
				fmt.Printf("  churn drain: node=%s artifacts=%d verdicts=%d\n",
					rep.Node, rep.Artifacts, rep.Verdicts)
				victim.Kill()
				live = append(live[:ev.Victim], live[ev.Victim+1:]...)
			case faults.ChurnKill:
				victim := live[ev.Victim]
				fmt.Printf("  churn kill: node=%s\n", victim.URL())
				victim.Kill()
				live = append(live[:ev.Victim], live[ev.Victim+1:]...)
			}
		}
	}()
	churnCfg := cfg
	churnCfg.Seed = seed + 1
	phase("storm", serve.RunLoad(churnCfg))
	wg.Wait()
	for _, n := range notes {
		fmt.Printf("  churn: %s\n", n)
		ok = false
	}

	// Phase 3: the ring has stabilized on the post-churn member set; a
	// full replay must be clean with zero failed routes.
	postCfg := cfg
	postCfg.Seed = seed + 2
	phase("stabilized", serve.RunLoad(postCfg))
	fmt.Printf("churn: final ring size=%d epoch=%d\n", len(l.Router.Nodes()), l.Router.Epoch())

	// Teardown, then the settle check: joins, drains, kills, and gossip
	// must all leave nothing running.
	l.Close()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+3 {
			return ok
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("  churn: goroutine leak — %d running, baseline %d\n",
		runtime.NumGoroutine(), baseline)
	return false
}
