// Command ddbserve runs the disjunctive-database inference service:
// HTTP/JSON literal-inference, formula-inference, and model-existence
// queries over every registered semantics, behind a bounded admission
// queue, per-semantics circuit breakers, server-side budget ceilings,
// and a graceful SIGTERM/SIGINT drain.
//
// Exit status is 0 after a clean drain (all in-flight work finished
// inside the drain deadline) and 1 after a forced drain (the deadline
// expired and stragglers were interrupted with typed budget cancels).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/serve"
	"disjunct/internal/store"

	_ "disjunct/internal/semantics/all"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8091", "listen address")
		maxConcurrent = flag.Int("maxconcurrent", 0, "max queries solving at once (0 = GOMAXPROCS)")
		queueDepth    = flag.Int("queue", 0, "admission queue depth beyond the concurrency limit (0 = 8×concurrency)")
		drainTimeout  = flag.Duration("draintimeout", 5*time.Second, "grace period for in-flight work on SIGTERM")
		retryMax      = flag.Int("retrymax", 2, "max server-side retries of transient-class oracle failures")
		deadlineCap   = flag.Duration("deadlinecap", 30*time.Second, "ceiling on per-request deadlines (0 = unlimited)")
		conflictCap   = flag.Int64("conflictcap", 0, "ceiling on per-request conflict budgets (0 = unlimited)")
		propCap       = flag.Int64("propcap", 0, "ceiling on per-request propagation budgets (0 = unlimited)")
		npCap         = flag.Int64("npcallcap", 0, "ceiling on per-request NP-call budgets (0 = unlimited)")
		brkThreshold  = flag.Int("breakerthreshold", 5, "consecutive infrastructure failures that open a breaker (0 disables)")
		brkCooldown   = flag.Duration("breakercooldown", time.Second, "open-breaker cooldown before the half-open probe")
		faultRate     = flag.Float64("faultrate", 0, "injected oracle fault probability (chaos mode)")
		faultSeed     = flag.Int64("faultseed", 1, "fault injection seed")
		sessions      = flag.Bool("sessions", false, "enable warm query sessions: compiled-DB cache, fragment fast paths, request coalescing")
		sessBytes     = flag.Int64("sessionbytes", 0, "compiled-DB cache byte budget (0 = 64 MiB default)")
		sessMax       = flag.Int("sessionmax", 0, "max resident warm sessions (0 = default 64)")
		sessQueries   = flag.Int("sessionqueries", 0, "warm queries before an engine is retired (0 = default 512)")
		sessWindow    = flag.Duration("sessionwindow", 0, "micro-batch wait for a busy session before falling back fresh (0 = default 2ms)")
		batchMax      = flag.Int("batchmax", 0, "max queries per /v1/batch request (0 = default 256)")
		streamMax     = flag.Int("streammax", 0, "server-side cap on models per /v1/models/stream request (0 = uncapped)")
		storeDir      = flag.String("store", "", "persistent compiled-artifact & verdict store directory (implies -sessions; empty = no persistence)")
		storeBytes    = flag.Int64("storebytes", 0, "store log-size budget before compaction (0 = default 256 MiB)")
		planner       = flag.Bool("planner", false, "enable the cost-based query planner: cost-class routing, brute/portfolio procedures, cost-aware shedding (implies -sessions)")
		planBrute     = flag.Int("planbruteatoms", 0, "planner: max atoms for the brute-force refsem procedure (0 = default 8)")
		planNP        = flag.Int64("planexpnp", 0, "planner: mean NP-call estimate marking a query expensive (0 = default 8)")
		planOcc       = flag.Float64("planshedocc", 0, "planner: queue occupancy fraction above which cost-aware shedding engages (0 = default 0.5)")
	)
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		var rec store.Recovery
		var err error
		st, rec, err = store.Open(store.Config{Dir: *storeDir, MaxBytes: *storeBytes})
		if err != nil {
			log.Fatalf("ddbserve: store recovery error: %v", err)
		}
		if rec.TornTail {
			log.Printf("ddbserve: store: truncated torn tail (%d bytes) — crash recovery, re-deriving dropped entries on demand", rec.Dropped)
		}
		log.Printf("ddbserve: store: recovered %d artifacts, %d verdicts, %d interner entries from %s",
			rec.Artifacts, rec.Verdicts, rec.Interns, *storeDir)
	}

	srv := serve.New(serve.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		DrainTimeout:  *drainTimeout,
		RetryMax:      *retryMax,
		Ceilings: budget.Limits{
			Deadline:     *deadlineCap,
			Conflicts:    *conflictCap,
			Propagations: *propCap,
			NPCalls:      *npCap,
		},
		Breaker:              serve.BreakerConfig{Threshold: *brkThreshold, Cooldown: *brkCooldown},
		FaultRate:            *faultRate,
		FaultSeed:            *faultSeed,
		Sessions:             *sessions,
		SessionCacheBytes:    *sessBytes,
		SessionMaxSessions:   *sessMax,
		SessionMaxQueries:    *sessQueries,
		SessionBatchWindow:   *sessWindow,
		BatchMaxQueries:      *batchMax,
		StreamMaxModels:      *streamMax,
		Store:                st,
		Planner:              *planner,
		PlannerBruteAtoms:    *planBrute,
		PlannerExpensiveNP:   *planNP,
		PlannerShedOccupancy: *planOcc,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ddbserve: listen %s: %v", *addr, err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("ddbserve: listening on http://%s (faultrate=%g drain=%s sessions=%v store=%q planner=%v)", ln.Addr(), *faultRate, *drainTimeout, *sessions || st != nil || *planner, *storeDir, *planner)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case s := <-sig:
		log.Printf("ddbserve: %v: draining (deadline %s)", s, *drainTimeout)
	case err := <-serveErr:
		log.Fatalf("ddbserve: serve: %v", err)
	}

	// Stop accepting new connections first, then drain the query layer.
	// Shutdown's context bounds only the listener teardown; the query
	// drain deadline is the server's own DrainTimeout.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), *drainTimeout+time.Second)
	defer shutCancel()
	drainErr := srv.Drain(context.Background())
	_ = hs.Shutdown(shutCtx)

	if drainErr != nil {
		if errors.Is(drainErr, serve.ErrDrainForced) {
			fmt.Fprintln(os.Stderr, "ddbserve: forced drain: in-flight work interrupted with typed cancels")
			os.Exit(1)
		}
		log.Fatalf("ddbserve: drain: %v", drainErr)
	}
	if st != nil {
		fst := st.Stats()
		log.Printf("ddbserve: store flushed on drain (%d artifacts, %d verdicts, %d interns, %d bytes)",
			fst.Artifacts, fst.Verdicts, fst.Interns, fst.SizeBytes)
	}
	log.Printf("ddbserve: clean drain, bye")
}
