// Command ddbload drives a running ddbserve instance with a seeded,
// open-loop workload and verifies the robustness contract: every
// offered request must terminate as exactly one of completed (with a
// verdict byte-identical to a direct library call on the same input),
// incomplete with a typed budget cause, shed with a typed 429/503, or
// rejected with a typed 422. A single untyped outcome or diverging
// verdict fails the run.
//
// With -sweep, ddbload runs the same workload at several offered rates
// and prints a table of completed/shed/interrupted counts per rate —
// the load-shed sweep recorded in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"disjunct/internal/serve"

	_ "disjunct/internal/semantics/all"
)

func main() {
	var (
		baseURL  = flag.String("url", "http://127.0.0.1:8091", "ddbserve/ddbrouter base URL; a comma-separated list enables client-side router failover (sticky primary, next on transport failure)")
		rate     = flag.Float64("rate", 50, "offered requests/second")
		requests = flag.Int("requests", 200, "total requests to offer")
		workers  = flag.Int("workers", 16, "concurrent HTTP clients")
		seed     = flag.Int64("seed", 1, "workload seed")
		maxAtoms = flag.Int("maxatoms", 5, "vocabulary bound for generated databases")
		deadline = flag.Duration("deadline", 10*time.Second, "per-request client deadline ask")
		confl    = flag.Int64("conflictbudget", 0, "per-request conflict-budget ask (0 = none)")
		npcalls  = flag.Int64("npcallbudget", 0, "per-request NP-call-budget ask (0 = none)")
		verify   = flag.Bool("verify", true, "cross-check completed verdicts against direct library calls")
		hotDBs   = flag.Int("hotdbs", 0, "draw databases from a fixed pool of this size (repeat-DB workload; 0 = fresh db per request)")
		semList  = flag.String("semantics", "", "comma-separated semantics restriction (default: every registered semantics)")
		settle   = flag.Bool("settle", false, "after the run, require server goroutines to settle near idle baseline")
		sweep    = flag.String("sweep", "", "comma-separated offered rates; run the workload once per rate and print a table")
		batch    = flag.Int("batchsize", 0, "replay the workload through /v1/batch in chunks of this size instead of per-request (0 = off)")
		streams  = flag.Int("streams", 0, "verify this many /v1/models/stream enumerations against direct library runs (0 = off)")
		record   = flag.String("record", "", "write completed verdicts to this JSON file, keyed by deterministic job index")
		replay   = flag.String("replay", "", "compare completed verdicts against this recorded file; any divergence on a jointly-completed query fails the run")
		cluster  = flag.Bool("clustercheck", false, "after the run, require the target (a ddbrouter) to report failovers > 0 with a completion ratio >= -clustermin")
		clustMin = flag.Float64("clustermin", 0.95, "minimum failover_success/failovers ratio for -clustercheck")
		minComp  = flag.Float64("mincomplete", 0, "minimum completed/offered fraction; below it the run fails (0 = no floor)")
		abPlan   = flag.Bool("abplanner", false, "planner on/off A/B overload sweep against two in-process servers; -sweep values are saturation multipliers (default 1,2,4,8)")
		abSat    = flag.Float64("absatrate", 0, "assumed 1x saturation rate (req/s) for -abplanner (0 = calibrate with a FIFO leg)")
		abFloor  = flag.Float64("abfloor", 0, "minimum cost-aware/FIFO completed-throughput ratio at the highest shared multiplier >= 4 (0 = report only)")
	)
	flag.Parse()

	if *abPlan {
		os.Exit(runPlannerAB(*sweep, *requests, *seed, *verify, *abSat, *abFloor))
	}

	urls := splitList(*baseURL)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "ddbload: -url parsed to an empty list")
		os.Exit(2)
	}

	cfg := serve.LoadConfig{
		BaseURL:      urls[0],
		FallbackURLs: urls[1:],
		Rate:         *rate,
		Requests:     *requests,
		Workers:      *workers,
		Seed:         *seed,
		MaxAtoms:     *maxAtoms,
		Verify:       *verify,
		HotDBs:       *hotDBs,
		RecordPath:   *record,
		ReplayPath:   *replay,
		Semantics: func() []string {
			if *semList == "" {
				return nil
			}
			var out []string
			for _, s := range strings.Split(*semList, ",") {
				out = append(out, strings.TrimSpace(s))
			}
			return out
		}(),
		Limits: serve.LimitsJSON{
			DeadlineMS: deadline.Milliseconds(),
			Conflicts:  *confl,
			NPCalls:    *npcalls,
		},
	}

	client := &http.Client{Timeout: 5 * time.Second}
	baseline := -1
	if h, err := serve.FetchHealth(client, urls[0]); err == nil {
		baseline = h.Goroutines
	}

	fail := false
	if *batch > 0 {
		rep := serve.RunBatchReplay(cfg, *batch)
		fmt.Println(rep.String())
		if !rep.Clean() {
			fail = true
			for _, n := range rep.Notes {
				fmt.Fprintf(os.Stderr, "ddbload: batch: %s\n", n)
			}
		}
	}
	if *streams > 0 {
		rep := serve.RunStreamCheck(cfg, *streams)
		fmt.Println(rep.String())
		if !rep.Clean() {
			fail = true
			for _, n := range rep.Notes {
				fmt.Fprintf(os.Stderr, "ddbload: stream: %s\n", n)
			}
		}
	}
	if *batch > 0 || *streams > 0 {
		if *settle {
			settleCheck(client, urls[0], baseline, &fail)
		}
		if *cluster {
			clusterCheck(client, urls, *clustMin, &fail)
		}
		if fail {
			os.Exit(1)
		}
		return
	}
	if *sweep != "" {
		fmt.Printf("%10s %10s %10s %10s %10s %10s %10s %10s\n",
			"rate", "offered", "completed", "interrupt", "shed429", "shed503", "untyped", "divergent")
		for _, field := range strings.Split(*sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ddbload: bad -sweep rate %q: %v\n", field, err)
				os.Exit(2)
			}
			c := cfg
			c.Rate = r
			rep := serve.RunLoad(c)
			fmt.Printf("%10.0f %10d %10d %10d %10d %10d %10d %10d\n",
				r, rep.Offered, rep.Completed, rep.Incomplete, rep.Shed429, rep.Shed503, rep.Untyped, rep.Divergent)
			if !rep.Clean() {
				fail = true
				diagnose(rep)
			}
		}
	} else {
		rep := serve.RunLoad(cfg)
		fmt.Println(rep.String())
		if rep.RouterFailovers > 0 {
			fmt.Printf("router failovers: %d (over %d urls)\n", rep.RouterFailovers, len(urls))
		}
		if *replay != "" {
			fmt.Printf("replayed %d recorded verdicts, %d divergent\n", rep.Replayed, rep.Divergent)
			if rep.Replayed == 0 && rep.Completed > 0 {
				fmt.Fprintln(os.Stderr, "ddbload: replay compared zero verdicts despite completed queries")
				fail = true
			}
		}
		if !rep.Clean() {
			fail = true
			diagnose(rep)
		}
		if *minComp > 0 {
			frac := float64(rep.Completed) / float64(rep.Offered)
			fmt.Printf("completion: %d/%d = %.3f (floor %.2f)\n", rep.Completed, rep.Offered, frac, *minComp)
			if frac < *minComp {
				fmt.Fprintf(os.Stderr, "ddbload: completion %.3f below -mincomplete %.2f\n", frac, *minComp)
				fail = true
			}
		}
	}

	if *settle {
		settleCheck(client, urls[0], baseline, &fail)
	}
	if *cluster {
		clusterCheck(client, urls, *clustMin, &fail)
	}

	if fail {
		os.Exit(1)
	}
}

// runPlannerAB is the -abplanner mode: the same mixed cheap/expensive
// workload offered at saturation multiples against two in-process
// servers differing only in Config.Planner, FIFO vs cost-aware
// shedding side by side. Returns the process exit code.
func runPlannerAB(sweep string, requests int, seed int64, verify bool, satRate, floor float64) int {
	var mults []float64
	for _, field := range splitList(sweep) {
		m, err := strconv.ParseFloat(field, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddbload: bad -sweep multiplier %q: %v\n", field, err)
			return 2
		}
		mults = append(mults, m)
	}
	rows, sat := serve.RunPlannerAB(serve.PlannerABConfig{
		Multipliers: mults,
		Requests:    requests,
		Seed:        seed,
		Verify:      verify,
		SatRate:     satRate,
	})
	fmt.Printf("planner A/B (saturation = %.1f req/s)\n", sat)
	fmt.Printf("%6s %8s %10s %11s %9s %10s %8s %8s %10s\n",
		"mult", "rate", "fifo_done", "aware_done", "speedup", "shed_cost", "untyped", "divergent", "portfolio")
	fail := false
	var gateRow *serve.PlannerABRow
	for i := range rows {
		r := &rows[i]
		fmt.Printf("%6.1f %8.1f %10d %11d %9.2f %10d %8d %8d %10d\n",
			r.Multiplier, r.Rate, r.FIFO.Completed, r.CostAware.Completed, r.Speedup(),
			r.Planner["shed_cost"], r.FIFO.Untyped+r.CostAware.Untyped,
			r.FIFO.Divergent+r.CostAware.Divergent, r.Planner["portfolio_races"])
		if !r.FIFO.Clean() || !r.CostAware.Clean() {
			fail = true
			diagnose(r.FIFO)
			diagnose(r.CostAware)
		}
		if r.Multiplier >= 4 && (gateRow == nil || r.Multiplier < gateRow.Multiplier) {
			gateRow = r
		}
	}
	if floor > 0 && gateRow != nil {
		if sp := gateRow.Speedup(); sp < floor {
			fmt.Fprintf(os.Stderr, "ddbload: abplanner: speedup %.2f at %.0fx below floor %.2f\n",
				sp, gateRow.Multiplier, floor)
			fail = true
		}
	}
	if fail {
		return 1
	}
	return 0
}

// splitList parses a comma-separated flag value, dropping blanks.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// clusterCheck reads each reachable ddbrouter's /healthz stats and
// enforces the failover-completion contract on the aggregate: at least
// one failover happened somewhere (the caller is expected to have
// killed a worker mid-load) and the fraction a surviving node answered
// meets the floor. Unreachable routers are skipped — killing one is
// part of the replication scenario — but at least one must respond.
func clusterCheck(client *http.Client, urls []string, min float64, fail *bool) {
	var fo, okc int64
	reachable := 0
	for _, u := range urls {
		resp, err := client.Get(u + "/healthz")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddbload: clustercheck: %s unreachable (%v), skipping\n", u, err)
			continue
		}
		var h struct {
			Status string           `json:"status"`
			Stats  map[string]int64 `json:"stats"`
		}
		decErr := json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if decErr != nil {
			fmt.Fprintf(os.Stderr, "ddbload: clustercheck: decode %s healthz: %v\n", u, decErr)
			*fail = true
			return
		}
		f, isRouter := h.Stats["failovers"]
		if !isRouter {
			fmt.Fprintf(os.Stderr, "ddbload: clustercheck: %s healthz has no failover stats (not a ddbrouter?)\n", u)
			*fail = true
			return
		}
		reachable++
		fo += f
		okc += h.Stats["failover_success"]
	}
	if reachable == 0 {
		fmt.Fprintln(os.Stderr, "ddbload: clustercheck: no router reachable")
		*fail = true
		return
	}
	if fo == 0 {
		fmt.Fprintln(os.Stderr, "ddbload: clustercheck: zero failovers recorded; the kill never forced a reroute")
		*fail = true
		return
	}
	ratio := float64(okc) / float64(fo)
	fmt.Printf("cluster: routers=%d failovers=%d completed=%d ratio=%.3f (min %.2f)\n", reachable, fo, okc, ratio, min)
	if ratio < min {
		fmt.Fprintf(os.Stderr, "ddbload: clustercheck: failover completion %.3f below floor %.2f\n", ratio, min)
		*fail = true
	}
}

// settleCheck requires the server's goroutine count to return near its
// pre-run baseline; a miss flips fail.
func settleCheck(client *http.Client, baseURL string, baseline int, fail *bool) {
	if baseline < 0 {
		return
	}
	got, ok := serve.AwaitGoroutineSettle(client, baseURL, baseline, 4, 5*time.Second)
	if !ok {
		fmt.Fprintf(os.Stderr, "ddbload: goroutines did not settle: baseline=%d now=%d\n", baseline, got)
		*fail = true
	} else {
		fmt.Printf("goroutines settled: baseline=%d now=%d\n", baseline, got)
	}
}

func diagnose(rep serve.LoadReport) {
	for _, n := range rep.UntypedNotes {
		fmt.Fprintf(os.Stderr, "ddbload: untyped outcome: %s\n", n)
	}
	for _, n := range rep.DivergeNotes {
		fmt.Fprintf(os.Stderr, "ddbload: verdict divergence: %s\n", n)
	}
}
