package disjunct_test

// Edge-case hardening: every registered semantics must behave sanely
// (no panics, consistent verdicts) on degenerate inputs — the empty
// database, databases with unused vocabulary atoms, tautological and
// contradictory queries, and single-clause extremes.

import (
	"testing"

	"disjunct"
)

func allSemantics(t *testing.T) map[string]disjunct.Semantics {
	t.Helper()
	out := map[string]disjunct.Semantics{}
	for _, name := range disjunct.SemanticsNames() {
		s, ok := disjunct.NewSemantics(name, disjunct.Options{})
		if !ok {
			t.Fatalf("cannot instantiate %s", name)
		}
		out[name] = s
	}
	return out
}

func TestEmptyDatabase(t *testing.T) {
	d := disjunct.NewDB()
	for name, s := range allSemantics(t) {
		ok, err := s.HasModel(d)
		if err != nil {
			t.Errorf("%s: HasModel on empty DB: %v", name, err)
			continue
		}
		if !ok {
			t.Errorf("%s: the empty DB must have a model (the empty one)", name)
		}
		n, err := s.Models(d, 4, func(m disjunct.Interp) bool { return true })
		if err != nil {
			t.Errorf("%s: Models: %v", name, err)
		}
		if n != 1 {
			t.Errorf("%s: empty DB over empty vocabulary has %d models, want 1", name, n)
		}
	}
}

func TestUnusedVocabularyAtoms(t *testing.T) {
	// The paper fixes V independently of DB: atoms outside the clauses
	// must be closed off by every closed-world semantics.
	d := disjunct.MustParse("a.")
	ghost := d.Voc.Intern("ghost")
	for name, s := range allSemantics(t) {
		got, err := s.InferLiteral(d, disjunct.NegLit(ghost))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !got {
			t.Errorf("%s: ¬ghost must be inferred for an unused atom", name)
		}
	}
}

func TestTautologyAndContradictionQueries(t *testing.T) {
	d := disjunct.MustParse("a | b.")
	taut := disjunct.MustParseFormula("a | -a", d.Voc)
	contra := disjunct.MustParseFormula("a & -a", d.Voc)
	for name, s := range allSemantics(t) {
		if name == "PDSM" {
			continue // 3-valued: a ∨ ¬a is not a tautology (value ½)
		}
		if got, err := s.InferFormula(d, taut); err != nil || !got {
			t.Errorf("%s: tautology not inferred (%v, %v)", name, got, err)
		}
		if name == "CWA" {
			continue // CWA(a∨b) is inconsistent: entails everything
		}
		if got, err := s.InferFormula(d, contra); err != nil || got {
			t.Errorf("%s: contradiction inferred (%v, %v)", name, got, err)
		}
	}
}

func TestSingleFactDatabase(t *testing.T) {
	d := disjunct.MustParse("a.")
	a, _ := d.Voc.Lookup("a")
	for name, s := range allSemantics(t) {
		if got, err := s.InferLiteral(d, disjunct.PosLit(a)); err != nil || !got {
			t.Errorf("%s: fact not inferred (%v, %v)", name, got, err)
		}
		count, err := s.Models(d, 0, func(disjunct.Interp) bool { return true })
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if count != 1 {
			t.Errorf("%s: single-fact DB has %d models, want 1", name, count)
		}
	}
}

func TestInconsistentDatabaseEntailsEverything(t *testing.T) {
	d := disjunct.MustParse("a. :- a.")
	q := disjunct.MustParseFormula("a & -a", d.Voc)
	for name, s := range allSemantics(t) {
		got, err := s.InferFormula(d, q)
		if err == disjunct.ErrUnsupported || err == disjunct.ErrNotStratifiable {
			continue // PERF/ICWA reject denials by class
		}
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !got {
			t.Errorf("%s: inconsistent DB must entail everything (empty model set)", name)
		}
	}
}

func TestModelsLimitRespected(t *testing.T) {
	d := disjunct.MustParse("a | b. c | e.")
	for name, s := range allSemantics(t) {
		n, err := s.Models(d, 2, func(disjunct.Interp) bool { return true })
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if n > 2 {
			t.Errorf("%s: limit 2 ignored, yielded %d", name, n)
		}
	}
}

func TestYieldFalseStopsEnumeration(t *testing.T) {
	d := disjunct.MustParse("a | b. c | e.")
	for name, s := range allSemantics(t) {
		calls := 0
		if _, err := s.Models(d, 0, func(disjunct.Interp) bool {
			calls++
			return false
		}); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if calls > 1 {
			t.Errorf("%s: yield=false ignored (%d calls)", name, calls)
		}
	}
}
