// Package par is the small worker-pool substrate of the parallel
// oracle layer. The semantics algorithms decompose into batches of
// independent NP-oracle queries (per-atom closure tests, per-region
// minimal-model searches, per-candidate stability/perfection checks);
// this package runs such a batch across runtime.NumCPU() goroutines.
//
// The helpers deliberately know nothing about solvers or oracles: the
// determinism guarantees of the callers (identical oracle-call counts
// regardless of worker count) come from the *decomposition* being
// static — each work item performs the same queries no matter which
// worker runs it or when. par only supplies the scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values ≤ 0 mean
// runtime.NumCPU(), everything else is returned unchanged.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.NumCPU()
	}
	return requested
}

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns when all calls have completed. Work items are
// handed out dynamically (an atomic cursor), so uneven item costs are
// balanced. With workers == 1 (or n == 1) everything runs on the
// calling goroutine — the serial reference schedule.
//
// A panic inside fn (notably a budget.Interrupt raised by a tripped
// query budget) does not crash the process or leak goroutines: the
// first panic payload is captured, the remaining work items are
// drained without running fn, every worker exits, and the panic is
// re-raised on the calling goroutine — where the caller's deferred
// budget.Recover can translate it into a typed error.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var panicked atomic.Bool
	var payload atomic.Pointer[any]
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							p := r
							payload.CompareAndSwap(nil, &p)
							panicked.Store(true)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if p := payload.Load(); p != nil {
		panic(*p)
	}
}

// MapBool runs fn(i) for every i in [0, n) across workers goroutines
// and returns the results as a slice — the common "filter a batch of
// candidates with one oracle call each" shape.
func MapBool(workers, n int, fn func(i int) bool) []bool {
	out := make([]bool, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}
