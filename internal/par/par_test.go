package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Errorf("Workers(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		hits := make([]atomic.Int32, n)
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ForEach(4, -1, func(int) { t.Fatal("fn called for n<0") })
}

func TestMapBool(t *testing.T) {
	got := MapBool(4, 10, func(i int) bool { return i%3 == 0 })
	for i, b := range got {
		if b != (i%3 == 0) {
			t.Fatalf("MapBool[%d] = %v", i, b)
		}
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		if s, ok := r.(string); !ok || s != "item-3" {
			t.Fatalf("panic payload = %v, want item-3", r)
		}
	}()
	ForEach(4, 8, func(i int) {
		if i == 3 {
			panic("item-3")
		}
	})
}

func TestForEachPanicDrainsWithoutDeadlock(t *testing.T) {
	// Every item panics; exactly one payload must surface, the pool
	// must drain, and no goroutine may leak.
	before := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic surfaced")
				}
			}()
			ForEach(8, 64, func(i int) { panic(i) })
		}()
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d -> %d", before, runtime.NumGoroutine())
}

func TestForEachSingleWorkerPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("serial path swallowed the panic")
		}
	}()
	ForEach(1, 4, func(i int) {
		if i == 2 {
			panic("serial")
		}
	})
}
