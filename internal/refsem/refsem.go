// Package refsem provides brute-force reference implementations of
// every semantics in the library, straight from the definitions in the
// paper, with no SAT solving and no cleverness: model sets are computed
// by exhaustive enumeration of the 2ⁿ interpretations (3ⁿ partial
// interpretations for PDSM). The test suites of the semantics packages
// cross-validate the production implementations against these on
// thousands of random small databases.
package refsem

import (
	"errors"
	"fmt"

	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/strat"
)

// ErrTooLarge is returned when an instance exceeds the exhaustive-
// enumeration caps (2ⁿ interpretations, 3ⁿ partials). Reference
// implementations fail cleanly instead of attempting the blowup.
var ErrTooLarge = errors.New("refsem: instance too large for exhaustive enumeration")

// AllInterps enumerates every interpretation over n atoms (n ≤ 22);
// larger n yields ErrTooLarge.
func AllInterps(n int) ([]logic.Interp, error) {
	if n > 22 {
		return nil, fmt.Errorf("%w: AllInterps over %d atoms (max 22)", ErrTooLarge, n)
	}
	out := make([]logic.Interp, 0, 1<<uint(n))
	for bits := 0; bits < 1<<uint(n); bits++ {
		m := logic.NewInterp(n)
		for v := 0; v < n; v++ {
			if bits&(1<<uint(v)) != 0 {
				m.True.Set(v)
			}
		}
		out = append(out, m)
	}
	return out, nil
}

// allInterps is AllInterps for the in-package reference semantics,
// which keep their historical panic-free-on-small-inputs signatures;
// the panic still carries the typed ErrTooLarge.
func allInterps(n int) []logic.Interp {
	out, err := AllInterps(n)
	if err != nil {
		panic(err)
	}
	return out
}

// Models returns M(DB): all classical models.
func Models(d *db.DB) []logic.Interp {
	var out []logic.Interp
	for _, m := range allInterps(d.N()) {
		if d.Sat(m) {
			out = append(out, m)
		}
	}
	return out
}

// MinimalModels returns MM(DB).
func MinimalModels(d *db.DB) []logic.Interp {
	return MinimalModelsPZ(d, nil, nil)
}

// pzLess reports whether a <(P;Z) b: a∩Q = b∩Q and a∩P ⊊ b∩P.
// nil p means P = V (and q ignored).
func pzLess(a, b logic.Interp, p, q map[int]bool) bool {
	n := a.N()
	strictly := false
	for v := 0; v < n; v++ {
		av, bv := a.Holds(logic.Atom(v)), b.Holds(logic.Atom(v))
		switch {
		case p == nil || p[v]:
			if av && !bv {
				return false
			}
			if !av && bv {
				strictly = true
			}
		case q[v]:
			if av != bv {
				return false
			}
		}
	}
	return strictly
}

// MinimalModelsPZ returns MM(DB;P;Z) for the partition given as atom
// sets (nil p = minimise everything; q must be non-nil when p is).
func MinimalModelsPZ(d *db.DB, p, q map[int]bool) []logic.Interp {
	all := Models(d)
	var out []logic.Interp
	for _, m := range all {
		minimal := true
		for _, o := range all {
			if pzLess(o, m, p, q) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, m)
		}
	}
	return out
}

// Entails reports whether every model in set satisfies f.
func Entails(set []logic.Interp, f *logic.Formula) bool {
	for _, m := range set {
		if !f.Eval(m) {
			return false
		}
	}
	return true
}

// GCWA returns GCWA(DB): models M such that every atom false in all
// minimal models is false in M.
func GCWA(d *db.DB) []logic.Interp {
	return CCWA(d, nil, nil)
}

// CCWA returns CCWA(DB) for the partition (nil p = full minimisation).
func CCWA(d *db.DB, p, q map[int]bool) []logic.Interp {
	mm := MinimalModelsPZ(d, p, q)
	n := d.N()
	falseEverywhere := make([]bool, n)
	for v := 0; v < n; v++ {
		if p != nil && !p[v] {
			continue // only P atoms are closed
		}
		falseEverywhere[v] = true
		for _, m := range mm {
			if m.Holds(logic.Atom(v)) {
				falseEverywhere[v] = false
				break
			}
		}
	}
	var out []logic.Interp
	for _, m := range Models(d) {
		ok := true
		for v := 0; v < n; v++ {
			if falseEverywhere[v] && m.Holds(logic.Atom(v)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m)
		}
	}
	return out
}

// EGCWA returns EGCWA(DB) = MM(DB).
func EGCWA(d *db.DB) []logic.Interp { return MinimalModels(d) }

// ECWA returns ECWA_{P;Z}(DB) = MM(DB;P;Z).
func ECWA(d *db.DB, p, q map[int]bool) []logic.Interp {
	return MinimalModelsPZ(d, p, q)
}

// DDROccurring returns the atoms occurring in the (unreduced)
// hyperresolution closure T_DB↑ω, computed by naive saturation over
// explicit disjunction sets. Integrity clauses are ignored.
func DDROccurring(d *db.DB) map[int]bool {
	type disj = string // canonical key of a sorted atom set
	n := d.N()
	encode := func(set []bool) disj {
		b := make([]byte, n)
		for i, v := range set {
			if v {
				b[i] = 1
			}
		}
		return disj(b)
	}
	state := map[disj][]bool{}
	add := func(set []bool) bool {
		k := encode(set)
		if _, ok := state[k]; ok {
			return false
		}
		cp := make([]bool, n)
		copy(cp, set)
		state[k] = cp
		return true
	}
	var rules []db.Clause
	for _, c := range d.Clauses {
		if c.IsIntegrity() || len(c.NegBody) > 0 {
			continue
		}
		if c.IsFact() {
			set := make([]bool, n)
			for _, h := range c.Head {
				set[h] = true
			}
			add(set)
		} else {
			rules = append(rules, c)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			k := len(r.PosBody)
			// All tuples of state disjunctions covering the body.
			var keys []disj
			for key := range state {
				keys = append(keys, key)
			}
			if len(keys) == 0 {
				continue
			}
			idx := make([]int, k)
			for {
				ok := true
				derived := make([]bool, n)
				for _, h := range r.Head {
					derived[h] = true
				}
				for j := 0; j < k && ok; j++ {
					dset := state[keys[idx[j]]]
					if !dset[r.PosBody[j]] {
						ok = false
						break
					}
					for v := 0; v < n; v++ {
						if dset[v] && v != int(r.PosBody[j]) {
							derived[v] = true
						}
					}
				}
				if ok && add(derived) {
					changed = true
				}
				j := k - 1
				for ; j >= 0; j-- {
					idx[j]++
					if idx[j] < len(keys) {
						break
					}
					idx[j] = 0
				}
				if j < 0 || k == 0 {
					break
				}
			}
		}
	}
	occ := map[int]bool{}
	for _, set := range state {
		for v, b := range set {
			if b {
				occ[v] = true
			}
		}
	}
	return occ
}

// DDR returns DDR(DB): models of DB in which every atom not occurring
// in T_DB↑ω is false.
func DDR(d *db.DB) []logic.Interp {
	occ := DDROccurring(d)
	var out []logic.Interp
	for _, m := range Models(d) {
		ok := true
		for v := 0; v < d.N(); v++ {
			if m.Holds(logic.Atom(v)) && !occ[v] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m)
		}
	}
	return out
}

// PWS returns the possible models of DB satisfying its integrity
// clauses, by explicit enumeration of all split programs.
func PWS(d *db.DB) []logic.Interp {
	var definite, disjunctive, integrity []db.Clause
	for _, c := range d.Clauses {
		switch {
		case c.IsIntegrity():
			integrity = append(integrity, c)
		case len(c.Head) == 1:
			definite = append(definite, c)
		default:
			disjunctive = append(disjunctive, c)
		}
	}
	n := d.N()
	seen := map[string]bool{}
	var out []logic.Interp
	var rec func(i int, chosen []db.Clause)
	rec = func(i int, chosen []db.Clause) {
		if i == len(disjunctive) {
			split := db.NewWithVocab(d.Voc)
			split.Clauses = append(append([]db.Clause{}, definite...), chosen...)
			m := leastModel(split, n)
			for _, c := range integrity {
				if !c.Sat(m) {
					return
				}
			}
			if !seen[m.Key()] {
				seen[m.Key()] = true
				out = append(out, m)
			}
			return
		}
		c := disjunctive[i]
		for mask := 1; mask < 1<<uint(len(c.Head)); mask++ {
			next := append([]db.Clause{}, chosen...)
			for b := 0; b < len(c.Head); b++ {
				if mask&(1<<uint(b)) != 0 {
					next = append(next, db.Clause{Head: []logic.Atom{c.Head[b]}, PosBody: c.PosBody})
				}
			}
			rec(i+1, next)
		}
	}
	rec(0, nil)
	return out
}

func leastModel(d *db.DB, n int) logic.Interp {
	m := logic.NewInterp(n)
	for changed := true; changed; {
		changed = false
		for _, c := range d.Clauses {
			if m.Holds(c.Head[0]) {
				continue
			}
			fire := true
			for _, b := range c.PosBody {
				if !m.Holds(b) {
					fire = false
					break
				}
			}
			if fire {
				m.True.Set(int(c.Head[0]))
				changed = true
			}
		}
	}
	return m
}

// DSM returns the disjunctive stable models: interpretations M with
// M ∈ MM(DB^M), checked from the definition.
func DSM(d *db.DB) []logic.Interp {
	var out []logic.Interp
	for _, m := range allInterps(d.N()) {
		red := d.Reduct(m)
		if !red.Sat(m) {
			continue
		}
		stable := true
		for _, o := range Models(red) {
			if o.ProperSubsetOf(m) {
				stable = false
				break
			}
		}
		if stable {
			out = append(out, m)
		}
	}
	return out
}

// Preferable reports N ≺ M under priority pri: N ≠ M and every atom of
// N∖M is strictly below some atom of M∖N.
func Preferable(n, m logic.Interp, pri *strat.Priority) bool {
	if n.Equal(m) {
		return false
	}
	size := n.N()
	for a := 0; a < size; a++ {
		if !n.Holds(logic.Atom(a)) || m.Holds(logic.Atom(a)) {
			continue
		}
		found := false
		for b := 0; b < size; b++ {
			if m.Holds(logic.Atom(b)) && !n.Holds(logic.Atom(b)) && pri.Less(a, b) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// PERF returns the perfect models of DB (no integrity clauses).
func PERF(d *db.DB) []logic.Interp {
	pri := strat.NewPriority(d)
	all := Models(d)
	var out []logic.Interp
	for _, m := range all {
		perfect := true
		for _, n := range all {
			if Preferable(n, m, pri) {
				perfect = false
				break
			}
		}
		if perfect {
			out = append(out, m)
		}
	}
	return out
}

// ICWA returns ICWA(DB) for the default full-minimisation partition:
// the prioritised-minimal models of the head-shifted database along
// the canonical stratification. ok is false if DB is unstratifiable.
func ICWA(d *db.DB) (result []logic.Interp, ok bool) {
	st, ok := strat.Compute(d)
	if !ok {
		return nil, false
	}
	shifted := d.HeadShift()
	all := Models(shifted)
	less := func(a, b logic.Interp) bool {
		// a <p b: at the first stratum where the P-parts differ,
		// a's is a proper subset of b's.
		for i := 0; i < st.R; i++ {
			sub, equal := true, true
			for v := 0; v < d.N(); v++ {
				if st.Level[v] != i {
					continue
				}
				av, bv := a.Holds(logic.Atom(v)), b.Holds(logic.Atom(v))
				if av != bv {
					equal = false
				}
				if av && !bv {
					sub = false
				}
			}
			if !equal {
				return sub
			}
		}
		return false
	}
	for _, m := range all {
		minimal := true
		for _, o := range all {
			if less(o, m) {
				minimal = false
				break
			}
		}
		if minimal {
			result = append(result, m)
		}
	}
	return result, true
}

// AllPartials enumerates every 3-valued interpretation over n atoms
// (n ≤ 13); larger n yields ErrTooLarge.
func AllPartials(n int) ([]logic.Partial, error) {
	if n > 13 {
		return nil, fmt.Errorf("%w: AllPartials over %d atoms (max 13)", ErrTooLarge, n)
	}
	total := 1
	for i := 0; i < n; i++ {
		total *= 3
	}
	out := make([]logic.Partial, 0, total)
	for code := 0; code < total; code++ {
		p := logic.NewPartial(n)
		c := code
		for v := 0; v < n; v++ {
			p.SetValue(logic.Atom(v), logic.TruthValue(c%3))
			c /= 3
		}
		out = append(out, p)
	}
	return out, nil
}

// allPartials is AllPartials panicking with the typed error (see
// allInterps).
func allPartials(n int) []logic.Partial {
	out, err := AllPartials(n)
	if err != nil {
		panic(err)
	}
	return out
}

// sat3Reduct mirrors the 3-valued reduct satisfaction from the
// definition: q ⊨₃ DB^p.
func sat3Reduct(d *db.DB, p, q logic.Partial) bool {
	for _, c := range d.Clauses {
		body := logic.True
		for _, b := range c.PosBody {
			if w := q.Value(b); w < body {
				body = w
			}
		}
		for _, cn := range c.NegBody {
			if w := logic.True - p.Value(cn); w < body {
				body = w
			}
		}
		head := logic.False
		for _, h := range c.Head {
			if w := q.Value(h); w > head {
				head = w
			}
		}
		if head < body {
			return false
		}
	}
	return true
}

// PDSM returns the partial stable models, from the definition.
func PDSM(d *db.DB) []logic.Partial {
	all := allPartials(d.N())
	var out []logic.Partial
	for _, p := range all {
		if !sat3Reduct(d, p, p) {
			continue
		}
		minimal := true
		for _, q := range all {
			if q.Equal(p) || !q.TruthLeq(p) {
				continue
			}
			if sat3Reduct(d, p, q) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, p)
		}
	}
	return out
}

// SameModelSet reports whether the two model slices contain the same
// interpretations (as sets).
func SameModelSet(a, b []logic.Interp) bool {
	if len(a) != len(b) {
		return false
	}
	seen := map[string]int{}
	for _, m := range a {
		seen[m.Key()]++
	}
	for _, m := range b {
		if seen[m.Key()] == 0 {
			return false
		}
		seen[m.Key()]--
	}
	return true
}
