package refsem

import (
	"math/rand"
	"testing"

	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/strat"
)

func subsetOf(a, b []logic.Interp) bool {
	keys := map[string]bool{}
	for _, m := range b {
		keys[m.Key()] = true
	}
	for _, m := range a {
		if !keys[m.Key()] {
			return false
		}
	}
	return true
}

func TestMinimalModelsAreModels(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	for i := 0; i < 200; i++ {
		d := gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(7)))
		if !subsetOf(MinimalModels(d), Models(d)) {
			t.Fatalf("MM ⊄ M\n%s", d.String())
		}
	}
}

func TestEGCWAInsideGCWA(t *testing.T) {
	// EGCWA(DB) = MM(DB) ⊆ GCWA(DB): every minimal model survives the
	// GCWA closure.
	rng := rand.New(rand.NewSource(232))
	for i := 0; i < 200; i++ {
		d := gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(7)))
		if !subsetOf(EGCWA(d), GCWA(d)) {
			t.Fatalf("MM ⊄ GCWA\n%s", d.String())
		}
	}
}

func TestGCWAInsideDDR(t *testing.T) {
	// WGCWA/DDR is weaker than GCWA on positive DDBs without ICs: it
	// negates fewer atoms, so its model set is a superset.
	rng := rand.New(rand.NewSource(233))
	for i := 0; i < 200; i++ {
		d := gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(7)))
		if !subsetOf(GCWA(d), DDR(d)) {
			t.Fatalf("GCWA ⊄ DDR on positive DB\n%s", d.String())
		}
	}
}

func TestPossibleModelsAreModels(t *testing.T) {
	rng := rand.New(rand.NewSource(234))
	for i := 0; i < 200; i++ {
		d := gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(6)))
		all := Models(d)
		keys := map[string]bool{}
		for _, m := range all {
			keys[m.Key()] = true
		}
		for _, m := range PWS(d) {
			if !keys[m.Key()] {
				t.Fatalf("possible model is not a classical model\n%s", d.String())
			}
		}
	}
}

func TestMinimalModelsArePossible(t *testing.T) {
	// Sakama: every minimal model is a possible model (split with the
	// exact head choices of the minimal model).
	rng := rand.New(rand.NewSource(235))
	for i := 0; i < 200; i++ {
		d := gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(6)))
		if !subsetOf(MinimalModels(d), PWS(d)) {
			t.Fatalf("MM ⊄ PWS\n%s", d.String())
		}
	}
}

func TestPerfectAndStableAreMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(236))
	for i := 0; i < 200; i++ {
		d := gen.Random(rng, gen.NormalNoIC(2+rng.Intn(4), 1+rng.Intn(6)))
		mm := MinimalModels(d)
		if !subsetOf(PERF(d), mm) {
			t.Fatalf("PERF ⊄ MM\n%s", d.String())
		}
		if !subsetOf(DSM(d), mm) {
			t.Fatalf("DSM ⊄ MM\n%s", d.String())
		}
	}
}

func TestStratifiedStableEqualsPerfect(t *testing.T) {
	// Przymusinski: on stratified databases the disjunctive stable
	// models coincide with the perfect models.
	rng := rand.New(rand.NewSource(237))
	checked := 0
	for i := 0; i < 200; i++ {
		d := gen.RandomStratified(rng, 2+rng.Intn(4), 1+rng.Intn(6), 1+rng.Intn(3))
		if !SameModelSet(DSM(d), PERF(d)) {
			t.Fatalf("DSM ≠ PERF on stratified DB\nDSM=%d PERF=%d\n%s",
				len(DSM(d)), len(PERF(d)), d.String())
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("no stratified DBs checked")
	}
}

func TestStratifiedICWAEqualsPerfect(t *testing.T) {
	// The paper: ICWA was introduced "for capturing PERF under
	// stratified negation" — the model sets coincide on DSDBs.
	rng := rand.New(rand.NewSource(238))
	for i := 0; i < 200; i++ {
		d := gen.RandomStratified(rng, 2+rng.Intn(4), 1+rng.Intn(6), 1+rng.Intn(3))
		icwa, ok := ICWA(d)
		if !ok {
			t.Fatalf("stratified DB rejected")
		}
		if !SameModelSet(icwa, PERF(d)) {
			t.Fatalf("ICWA ≠ PERF on stratified DB\nICWA=%d PERF=%d\n%s",
				len(icwa), len(PERF(d)), d.String())
		}
	}
}

func TestTotalPDSMEqualsDSM(t *testing.T) {
	rng := rand.New(rand.NewSource(239))
	for i := 0; i < 150; i++ {
		d := gen.Random(rng, gen.Normal(2+rng.Intn(3), 1+rng.Intn(5)))
		var totals []logic.Interp
		for _, p := range PDSM(d) {
			if p.IsTotal() {
				totals = append(totals, p.Total())
			}
		}
		if !SameModelSet(totals, DSM(d)) {
			t.Fatalf("total PDSM ≠ DSM\n%s", d.String())
		}
	}
}

func TestSameModelSetSemantics(t *testing.T) {
	a := []logic.Interp{logic.InterpOf(2, 0)}
	b := []logic.Interp{logic.InterpOf(2, 0)}
	c := []logic.Interp{logic.InterpOf(2, 1)}
	if !SameModelSet(a, b) || SameModelSet(a, c) || SameModelSet(a, nil) {
		t.Fatalf("SameModelSet broken")
	}
}

func TestAllInterpsCount(t *testing.T) {
	all4, err := AllInterps(4)
	if err != nil {
		t.Fatalf("AllInterps(4): %v", err)
	}
	if got := len(all4); got != 16 {
		t.Fatalf("AllInterps(4) = %d", got)
	}
	part3, err := AllPartials(3)
	if err != nil {
		t.Fatalf("AllPartials(3): %v", err)
	}
	if got := len(part3); got != 27 {
		t.Fatalf("AllPartials(3) = %d", got)
	}
}

func TestPreferableGeneralizesSubset(t *testing.T) {
	d := dbtest.MustParse("a | b.")
	pri := strat.NewPriority(d)
	sub := logic.InterpOf(2, 0)
	sup := logic.InterpOf(2, 0, 1)
	if !Preferable(sub, sup, pri) {
		t.Fatalf("proper subset must be preferable")
	}
	if Preferable(sup, sub, pri) {
		t.Fatalf("superset must not be preferable")
	}
	if Preferable(sub, sub, pri) {
		t.Fatalf("a model is not preferable to itself")
	}
}
