package session

import (
	"fmt"

	"disjunct/internal/cache"
	"disjunct/internal/db"
	"disjunct/internal/store"
)

// Prewarm loads every persisted compiled-DB artifact from the store
// into the compile cache before the process starts taking traffic:
// each entry's database text is re-parsed (cheap, polynomial) and
// compiled with the persisted canonical key, skipping the expensive
// canonical labeling — so a pre-warmed restart answers hot-DB queries
// with zero cold compiles. Verdict memos are not materialized here;
// they seed lazily (and cheaply) when the first query creates each
// warm session.
//
// Damaged or stale entries are skipped, not fatal: the store's
// recovery already dropped torn records, and anything skipped here is
// simply re-derived on first use, exactly as on a cold start. The
// returned count is the number of artifacts loaded; the error is
// non-nil only when the manager has no store.
func (m *Manager) Prewarm() (int, error) {
	st := m.cfg.Store
	if st == nil {
		return 0, fmt.Errorf("session: Prewarm without a configured store")
	}
	loaded := 0
	for _, a := range st.Artifacts() {
		d, err := db.Parse(a.Text)
		if err != nil {
			continue // stale grammar or foreign record: re-derive on demand
		}
		comp := CompileWithKey(a.Text, d, cache.Key(a.Key))
		if uint8(comp.Frag) != a.Frag {
			continue // predates a compiler change: re-derive on demand
		}
		m.insert(a.Text, comp)
		m.prewarmedArtifacts.Add(1)
		loaded++
	}
	return loaded, nil
}

// Store returns the configured persistent tier (nil when disabled) —
// the serve layer uses it for drain flushing and health reporting.
func (m *Manager) Store() *store.Store {
	return m.cfg.Store
}
