package session_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/semtest"
	"disjunct/internal/session"

	_ "disjunct/internal/semantics/all"
)

// genDefinite builds a random definite program (one head atom, no
// negation, no integrity clauses).
func genDefinite(rng *rand.Rand, atoms, clauses int) *db.DB {
	d := db.New()
	var as []logic.Atom
	for i := 0; i < atoms; i++ {
		as = append(as, d.Voc.Intern(string(rune('a'+i))))
	}
	for i := 0; i < clauses; i++ {
		head := []logic.Atom{as[rng.Intn(atoms)]}
		var body []logic.Atom
		for _, a := range as {
			if rng.Intn(4) == 0 && a != head[0] {
				body = append(body, a)
			}
		}
		d.AddRule(head, body, nil)
	}
	return d
}

// genHorn adds random denials to a definite program.
func genHorn(rng *rand.Rand, atoms, clauses int) *db.DB {
	d := genDefinite(rng, atoms, clauses)
	denials := 1 + rng.Intn(2)
	for i := 0; i < denials; i++ {
		var body []logic.Atom
		for v := 0; v < atoms; v++ {
			if rng.Intn(3) == 0 {
				body = append(body, logic.Atom(v))
			}
		}
		if len(body) == 0 {
			body = append(body, logic.Atom(rng.Intn(atoms)))
		}
		d.AddRule(nil, body, nil)
	}
	return d
}

// mixedDB cycles fragment-targeted and general databases so every
// route of the session layer is exercised.
func mixedDB(iter int, rng *rand.Rand) *db.DB {
	n := 3 + rng.Intn(3)
	switch iter % 5 {
	case 0:
		return genDefinite(rng, n, 1+rng.Intn(5))
	case 1:
		return genHorn(rng, n, 1+rng.Intn(4))
	case 2:
		return gen.RandomStratified(rng, n, 1+rng.Intn(5), 2)
	case 3:
		return gen.Random(rng, gen.Positive(n, 1+rng.Intn(5)))
	default:
		return gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(5)))
	}
}

// Every registered semantics must agree with its fresh engine on every
// query the session layer handles, with the route coverage each name
// is entitled to.
func TestSessionCrossCheckAllSemantics(t *testing.T) {
	warm := map[string]bool{"GCWA": true, "CCWA": true, "EGCWA": true, "ECWA": true, "CIRC": true}
	fastCapable := map[string]bool{
		"GCWA": true, "CCWA": true, "EGCWA": true, "ECWA": true, "CIRC": true,
		"CWA": true, "DSM": true, "DDR": true, "WGCWA": true,
		"PWS": true, "PMS": true, "PERF": true, "ICWA": true,
	}
	for _, name := range core.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			stats := semtest.CrossCheckSession(t, name, 25, mixedDB)
			if stats.Queries == 0 {
				t.Fatalf("no queries issued")
			}
			if fastCapable[name] && stats.Fast == 0 {
				t.Fatalf("%s: no fast-path coverage over the fragment mix (stats %+v)", name, stats)
			}
			if warm[name] && stats.Warm == 0 {
				t.Fatalf("%s: no warm-session coverage (stats %+v)", name, stats)
			}
			if name == "PDSM" && stats.Handled != 0 {
				t.Fatalf("PDSM must never be handled by the session layer (stats %+v)", stats)
			}
		})
	}
}

// The manager must be safe for concurrent use: many goroutines, same
// hot databases, all routes.
func TestSessionManagerConcurrent(t *testing.T) {
	mgr := session.NewManager(session.Config{MaxSessions: 8})
	rng := rand.New(rand.NewSource(99))
	var dbs []*db.DB
	for i := 0; i < 4; i++ {
		dbs = append(dbs, mixedDB(i, rng))
	}
	type verdictKey struct {
		db, sem, q string
	}
	var mu sync.Mutex
	verdicts := map[verdictKey]bool{}
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				d := dbs[rng.Intn(len(dbs))]
				comp := mgr.InternDB(d)
				sem := []string{"GCWA", "ECWA", "DSM", "PWS"}[rng.Intn(4)]
				lit := logic.PosLit(logic.Atom(rng.Intn(d.N())))
				req := session.Request{Sem: sem, Kind: session.KindLiteral, Lit: lit, QueryText: d.Voc.LitString(lit)}
				res, handled := mgr.Query(ctx, comp, req)
				if !handled || res.Err != nil {
					continue
				}
				k := verdictKey{db: d.String(), sem: sem, q: req.QueryText}
				mu.Lock()
				if prev, ok := verdicts[k]; ok && prev != res.Holds {
					mu.Unlock()
					t.Errorf("verdict flapped for %+v", k)
					return
				}
				verdicts[k] = res.Holds
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	st := mgr.Stats()
	if st.ActiveCheckouts != 0 {
		t.Fatalf("checkout leak: %d sessions still checked out", st.ActiveCheckouts)
	}
}

// Artifact interning must hit on repeat text, account bytes, and evict
// under a tiny budget.
func TestArtifactCacheEviction(t *testing.T) {
	mgr := session.NewManager(session.Config{MaxBytes: 1})
	rng := rand.New(rand.NewSource(7))
	var comps []*session.Compiled
	for i := 0; i < 4; i++ {
		comps = append(comps, mgr.InternDB(genDefinite(rng, 3, 3)))
	}
	st := mgr.Stats()
	if st.CompiledEvictions == 0 {
		t.Fatalf("no evictions under a 1-byte budget: %+v", st)
	}
	if st.CompiledEntries != 1 {
		t.Fatalf("budget keeps one resident artifact, got %d", st.CompiledEntries)
	}
	_ = comps
}

// Fragment classification must match the syntactic definitions.
func TestFragmentClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	if c := session.Compile("", genDefinite(rng, 4, 4)); c.Frag != session.FragDefinite {
		t.Fatalf("definite program classified %v", c.Frag)
	}
	if c := session.Compile("", genHorn(rng, 4, 4)); c.Frag != session.FragHorn {
		t.Fatalf("horn program classified %v", c.Frag)
	}
	sn := gen.RandomStratified(rng, 4, 4, 2)
	c := session.Compile("", sn)
	if sn.HasNegation() && c.Frag != session.FragStratNormal && c.Frag != session.FragDefinite {
		t.Fatalf("stratified normal program classified %v\nDB:\n%s", c.Frag, sn.String())
	}
	gd := gen.Random(rng, gen.WithIntegrity(5, 6))
	if gc := session.Compile("", gd); gd.HasNegation() && gc.Frag == session.FragDefinite {
		t.Fatalf("general database classified definite")
	}
}
