package session_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/logic"
	"disjunct/internal/session"

	_ "disjunct/internal/semantics/all"
)

// batchQueries builds a mixed query stream against d: literals over
// every atom (both signs), a model query, and a formula query, across
// fast, warm, and unhandled semantics.
func batchQueries(dbIdx int, n int, voc func(logic.Lit) string) []session.Request {
	sems := []string{"GCWA", "ECWA", "CIRC", "DSM", "PWS"}
	var reqs []session.Request
	for v := 0; v < n; v++ {
		for _, pos := range []bool{true, false} {
			lit := logic.PosLit(logic.Atom(v))
			if !pos {
				lit = logic.NegLit(logic.Atom(v))
			}
			sem := sems[(dbIdx+v)%len(sems)]
			reqs = append(reqs, session.Request{
				Sem: sem, Kind: session.KindLiteral, Lit: lit, QueryText: voc(lit),
			})
		}
	}
	reqs = append(reqs, session.Request{Sem: "GCWA", Kind: session.KindModel})
	return reqs
}

// TestBatchMatchesSequential: Manager.Batch must produce the same
// verdicts, handled set, and NP-call totals as the same requests
// issued one at a time through Manager.Query, on separate managers.
func TestBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		d := mixedDB(i, rng)
		reqs := batchQueries(i, d.N(), d.Voc.LitString)

		seqMgr := session.NewManager(session.Config{})
		seqComp := seqMgr.InternDB(d)
		type ans struct {
			res     session.Result
			handled bool
		}
		seq := make([]ans, len(reqs))
		for j, req := range reqs {
			res, handled := seqMgr.Query(ctx, seqComp, req)
			seq[j] = ans{res, handled}
		}

		batchMgr := session.NewManager(session.Config{})
		batchComp := batchMgr.InternDB(d)
		out := batchMgr.Batch(ctx, batchComp, reqs)

		var seqNP, batchNP int64
		for j := range reqs {
			if out[j].Handled != seq[j].handled {
				t.Fatalf("db %d req %d: batch handled=%v, sequential %v", i, j, out[j].Handled, seq[j].handled)
			}
			if !out[j].Handled {
				continue
			}
			if out[j].Res.Err != nil || seq[j].res.Err != nil {
				t.Fatalf("db %d req %d: unexpected errs %v / %v", i, j, out[j].Res.Err, seq[j].res.Err)
			}
			if out[j].Res.Holds != seq[j].res.Holds {
				t.Fatalf("db %d req %d (%s %s): batch %v, sequential %v",
					i, j, reqs[j].Sem, reqs[j].QueryText, out[j].Res.Holds, seq[j].res.Holds)
			}
			if out[j].Res.Path != seq[j].res.Path {
				t.Fatalf("db %d req %d: batch path %q, sequential %q", i, j, out[j].Res.Path, seq[j].res.Path)
			}
			seqNP += seq[j].res.Counters.NPCalls
			batchNP += out[j].Res.Counters.NPCalls
		}
		if seqNP != batchNP {
			t.Fatalf("db %d: batch NP total %d != sequential %d", i, batchNP, seqNP)
		}
		if st := batchMgr.Stats(); st.ActiveCheckouts != 0 {
			t.Fatalf("db %d: checkout leak after batch: %d", i, st.ActiveCheckouts)
		}
	}
}

// TestBatchSingleCheckoutPerGroup: a batch with many warm queries for
// one (db, semantics) pair claims the session exactly once.
func TestBatchSingleCheckoutPerGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	d := mixedDB(3, rng) // positive general: warm territory
	mgr := session.NewManager(session.Config{})
	comp := mgr.InternDB(d)
	var reqs []session.Request
	for v := 0; v < d.N(); v++ {
		lit := logic.PosLit(logic.Atom(v))
		reqs = append(reqs, session.Request{
			Sem: "GCWA", Kind: session.KindLiteral, Lit: lit, QueryText: d.Voc.LitString(lit),
		})
	}
	out := mgr.Batch(context.Background(), comp, reqs)
	for j, o := range out {
		if !o.Handled || o.Res.Err != nil {
			t.Fatalf("req %d: handled=%v err=%v", j, o.Handled, o.Res.Err)
		}
	}
	st := mgr.Stats()
	if st.Checkouts != 1 {
		t.Fatalf("warm group of %d used %d checkouts, want 1", len(reqs), st.Checkouts)
	}
	if st.ActiveCheckouts != 0 {
		t.Fatalf("checkout leak: %d", st.ActiveCheckouts)
	}
}

// TestBatchBudgetTripRetiresAndContinues: a query interrupted by its
// budget must not poison the rest of the group — the engine is retired
// and rebuilt, and later queries still answer with verdicts identical
// to a sequential run.
func TestBatchBudgetTripRetiresAndContinues(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		d := mixedDB(3+5*i, rng) // positive general mixes
		var reqs []session.Request
		for v := 0; v < d.N(); v++ {
			lit := logic.PosLit(logic.Atom(v))
			b := (*budget.B)(nil)
			if v == 0 {
				b = budget.New(ctx, budget.Limits{NPCalls: 1, Deadline: time.Hour})
			}
			reqs = append(reqs, session.Request{
				Sem: "ECWA", Kind: session.KindLiteral, Lit: lit,
				QueryText: d.Voc.LitString(lit), Budget: b,
			})
		}
		mgr := session.NewManager(session.Config{})
		out := mgr.Batch(ctx, mgr.InternDB(d), reqs)

		ref := session.NewManager(session.Config{})
		refComp := ref.InternDB(d)
		for j := 1; j < len(reqs); j++ {
			if !out[j].Handled {
				continue
			}
			res, handled := ref.Query(ctx, refComp, session.Request{
				Sem: reqs[j].Sem, Kind: reqs[j].Kind, Lit: reqs[j].Lit, QueryText: reqs[j].QueryText,
			})
			if !handled {
				t.Fatalf("db %d req %d: reference unhandled", i, j)
			}
			if out[j].Res.Err == nil && res.Err == nil && out[j].Res.Holds != res.Holds {
				t.Fatalf("db %d req %d: post-trip verdict %v, reference %v", i, j, out[j].Res.Holds, res.Holds)
			}
		}
		if st := mgr.Stats(); st.ActiveCheckouts != 0 {
			t.Fatalf("db %d: checkout leak: %d", i, st.ActiveCheckouts)
		}
	}
}
