// Package session makes repeat traffic against the same database
// near-free. It layers three amortizations over the per-request
// pipeline of internal/serve:
//
//  1. A compiled-DB artifact cache: grounding, CNF construction,
//     canonical keying, and fragment classification are computed once
//     per distinct database text and shared by every later request
//     (sharded, goroutine-safe, byte-accounted LRU).
//  2. A fragment-aware fast path: databases the compiler classifies as
//     definite, Horn, or stratified-normal are decided by the
//     polynomial fixpoint algorithms (internal/fixpoint, internal/wfs)
//     with ZERO NP oracle calls — the executable form of the paper's
//     P-cell membership arguments — for exactly the semantics whose
//     model set provably collapses on the fragment.
//  3. Warm incremental solver sessions: for the minimal-model family
//     (GCWA/CCWA/EGCWA/ECWA/CIRC) a per-(DB, semantics) session keeps
//     one models.IncrementalEngine alive across requests; queries
//     attach through activation literals, learned clauses persist, and
//     completed verdicts are memoized so repeats cost zero NP calls.
//
// Verdicts are identical to the fresh path by construction (the
// semtest cross-check suite verifies all three routes against the
// fresh engines for every registered semantics); the counters the
// bench harness gates prove fast-path queries use 0 NP calls and
// session workloads never exceed the fresh totals.
package session

import (
	"disjunct/internal/cache"
	"disjunct/internal/db"
	"disjunct/internal/fixpoint"
	"disjunct/internal/logic"
	"disjunct/internal/strat"
	"disjunct/internal/wfs"
)

// Fragment is the compiler's syntactic classification of a database,
// in decreasing order of fast-path strength.
type Fragment int

const (
	// FragGeneral: no polynomial fast path applies.
	FragGeneral Fragment = iota
	// FragDefinite: every clause is definite (one head atom, no
	// negation, no integrity clause). The DB has the single least model
	// computed by unit propagation, and every registered semantics
	// except PDSM collapses to it.
	FragDefinite
	// FragHorn: at most one head atom per clause and no negation, with
	// at least one integrity clause. The definite subset has a least
	// model L; the DB is consistent iff L satisfies the denials, and
	// then {L} is the model set of every Horn-applicable semantics.
	FragHorn
	// FragStratNormal: a normal program (exactly one head per clause)
	// with negation that is stratifiable; its well-founded model is
	// total and equals the unique stable/perfect model.
	FragStratNormal
)

// String names the fragment for stats and bench output.
func (f Fragment) String() string {
	switch f {
	case FragDefinite:
		return "definite"
	case FragHorn:
		return "horn"
	case FragStratNormal:
		return "strat_normal"
	default:
		return "general"
	}
}

// Compiled is the per-database artifact: everything derivable from the
// database alone, computed once and shared by all requests that name
// the same database. All fields are immutable after Compile.
type Compiled struct {
	// D is the parsed database. Inference treats it as read-only, so
	// one instance serves concurrent requests.
	D *db.DB
	// N is the vocabulary size.
	N int
	// CNF is the grounded clausal form (db.ToCNF, built once).
	CNF logic.CNF
	// Raw is the exact fingerprint of (N, CNF) — the session key: equal
	// Raw means the indexed CNF is byte-identical, so verdicts and
	// variable maps transfer between requests verbatim.
	Raw string
	// Key is the canonical isomorphism-class key (PR 2 interner); used
	// for stats and cross-text dedup reporting, not for verdict reuse.
	Key cache.Key
	// HasNeg / HasIC are the applicability features of the database.
	HasNeg bool
	HasIC  bool
	// Frag is the fast-path classification.
	Frag Fragment
	// Least is the least model backing the definite/Horn fast path
	// (of the whole DB when definite, of the definite subset when Horn).
	Least logic.Interp
	// Consistent reports whether the Horn DB's least model satisfies
	// its denials (always true for definite DBs). When false the DB is
	// unsatisfiable and the fragment's model set is empty.
	Consistent bool
	// Stable is the total well-founded (= unique stable = perfect)
	// model backing the stratified-normal fast path.
	Stable logic.Interp
	// Bytes is the artifact's accounted size for the LRU budget.
	Bytes int64
}

// Compile builds the artifact for a database parsed from text (the
// text is only used for size accounting; the Manager keys artifacts by
// it).
func Compile(text string, d *db.DB) *Compiled {
	return compile(text, d, "", false)
}

// CompileWithKey builds the artifact reusing a canonical key persisted
// by a previous process, skipping the canonical labeling — the only
// super-polynomial-in-practice step of compilation. The caller (the
// store prewarm path) guarantees the key was computed from the same
// database text; everything else (grounding, fingerprint, fragment
// classification, fixpoint models) is re-derived here, so a stale or
// even wrong key can never change a verdict — it only mis-reports
// cross-text dedup stats.
func CompileWithKey(text string, d *db.DB, key cache.Key) *Compiled {
	return compile(text, d, key, true)
}

func compile(text string, d *db.DB, key cache.Key, haveKey bool) *Compiled {
	cnf := d.ToCNF()
	n := d.N()
	c := &Compiled{
		D:          d,
		N:          n,
		CNF:        cnf,
		Raw:        cache.RawKey(n, cnf),
		HasNeg:     d.HasNegation(),
		HasIC:      d.HasIntegrityClauses(),
		Consistent: true,
	}
	if haveKey {
		c.Key = key
	} else {
		c.Key = cache.Canonicalize(n, cnf).Key
	}
	c.classify()
	bytes := int64(len(text)) + int64(len(c.Raw)) + int64(len(c.Key)) + 256
	for _, cl := range cnf {
		bytes += 8 + 4*int64(len(cl))
	}
	bytes += int64(n) // interps, maps
	c.Bytes = bytes
	return c
}

// classify determines the fragment and precomputes its fixpoint model.
func (c *Compiled) classify() {
	definite, horn := true, true
	for _, cl := range c.D.Clauses {
		if !cl.IsDefinite() {
			definite = false
		}
		if len(cl.Head) > 1 || len(cl.NegBody) != 0 {
			horn = false
		}
	}
	switch {
	case definite:
		c.Frag = FragDefinite
		c.Least = fixpoint.LeastModel(c.D)
	case horn:
		// Least model of the definite subset; denials checked against it.
		sub := db.NewWithVocab(c.D.Voc)
		for _, cl := range c.D.Clauses {
			if !cl.IsIntegrity() {
				sub.Add(cl.Clone())
			}
		}
		c.Frag = FragHorn
		c.Least = fixpoint.LeastModel(sub)
		for _, cl := range c.D.Clauses {
			if cl.IsIntegrity() && !cl.Sat(c.Least) {
				// The least model violates a denial; since it is ≤ every
				// model of the definite subset and denials are
				// anti-monotone in their positive bodies, the whole DB is
				// unsatisfiable.
				c.Consistent = false
				break
			}
		}
	case c.HasNeg && wfs.IsNormal(c.D):
		if _, ok := strat.Compute(c.D); !ok {
			return
		}
		m, total := wfs.TotalStable(c.D)
		if !total {
			return
		}
		c.Frag = FragStratNormal
		c.Stable = m
	}
}
