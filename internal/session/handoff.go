package session

import (
	"disjunct/internal/cache"
	"disjunct/internal/db"
	"disjunct/internal/store"
)

// Cluster drain handoff: when a worker leaves the ring gracefully, its
// warm state — compiled artifacts and completed verdict memos — is
// worth shipping to the ring successors rather than discarding,
// because recomputing it costs NP/Σ₂ᵖ solver time. Export snapshots
// that state as plain data; Import rebuilds it on the successor:
// artifacts are recompiled from text with the exported canonical key
// (skipping the expensive labeling, exactly like Prewarm), and
// verdicts are staged as pending seeds that the next warm-session
// creation for their (fingerprint, semantics) pair folds into its
// memo. Handoff is an optimization with a safety net, never a
// correctness dependency: a dropped artifact recompiles cold, a
// dropped verdict recomputes — verdict identity is gated separately.

// HandoffArtifact is one compiled database in transit.
type HandoffArtifact struct {
	Text string `json:"text"`
	Raw  string `json:"raw"`
	Key  string `json:"key"`
	Frag uint8  `json:"frag"`
}

// HandoffVerdict is one completed warm verdict in transit.
type HandoffVerdict struct {
	Raw     string `json:"raw"`
	Sem     string `json:"sem"`
	MemoKey string `json:"memo_key"`
	Holds   bool   `json:"holds"`
}

// HandoffEstimate is one planner cost-model entry in transit: the
// commutative sums of the internal/plan estimator, mirrored as plain
// data here so the session layer needn't import the planner. The serve
// layer fills and consumes the slice; Export/Import below never touch
// it (the Manager holds no estimates).
type HandoffEstimate struct {
	Raw       string `json:"raw"`
	Sem       string `json:"sem"`
	Count     int64  `json:"count"`
	SumNP     int64  `json:"sum_np"`
	SumConfl  int64  `json:"sum_confl"`
	SumMicros int64  `json:"sum_micros"`
}

// Handoff is a worker's exportable warm state.
type Handoff struct {
	Artifacts []HandoffArtifact `json:"artifacts"`
	Verdicts  []HandoffVerdict  `json:"verdicts"`
	Estimates []HandoffEstimate `json:"estimates,omitempty"`
}

// Export snapshots the manager's warm state: every cached artifact,
// and every completed verdict reachable without blocking — resident
// session memos whose engine token is free right now, plus the whole
// persisted corpus when a store is configured. A session that is
// mid-query is skipped rather than waited on (its completed verdicts
// are already in the store if one exists; without one, those few
// verdicts recompute on the successor).
func (m *Manager) Export() Handoff {
	var h Handoff

	m.artMu.Lock()
	for el := m.artList.Front(); el != nil; el = el.Next() {
		an := el.Value.(*artNode)
		h.Artifacts = append(h.Artifacts, HandoffArtifact{
			Text: an.text,
			Raw:  an.comp.Raw,
			Key:  string(an.comp.Key),
			Frag: uint8(an.comp.Frag),
		})
	}
	m.artMu.Unlock()

	seen := make(map[string]bool)
	addVerdict := func(v HandoffVerdict) {
		k := v.Raw + "\x00" + v.Sem + "\x00" + v.MemoKey
		if !seen[k] {
			seen[k] = true
			h.Verdicts = append(h.Verdicts, v)
		}
	}

	m.sessMu.Lock()
	sessions := make([]*warmSession, 0, m.sessList.Len())
	for el := m.sessList.Front(); el != nil; el = el.Next() {
		sessions = append(sessions, el.Value.(*warmSession))
	}
	m.sessMu.Unlock()
	for _, s := range sessions {
		select {
		case st := <-s.slot:
			for memoKey, holds := range st.memo {
				addVerdict(HandoffVerdict{Raw: s.key.raw, Sem: s.key.sem, MemoKey: memoKey, Holds: holds})
			}
			s.slot <- st
		default:
			// busy mid-query: skip, don't block the drain
		}
	}

	if st := m.cfg.Store; st != nil {
		for _, v := range st.AllVerdicts() {
			addVerdict(HandoffVerdict{Raw: v.Raw, Sem: v.Sem, MemoKey: v.MemoKey, Holds: v.Holds})
		}
	}
	return h
}

// Import absorbs an exported slice of another worker's warm state.
// Artifacts re-parse and recompile with the shipped canonical key (the
// Prewarm path: cheap, with a fragment cross-check that rejects
// records from a different compiler vintage). Verdicts land in the
// pending-seed staging area keyed by (fingerprint, semantics); the
// next session() for that pair folds them into its memo. Both kinds
// are also written through to the local store when one is configured,
// so the handed-off state survives this process too. Returns the
// counts of artifacts and verdicts accepted.
func (m *Manager) Import(h Handoff) (arts, verds int) {
	for _, a := range h.Artifacts {
		d, err := db.Parse(a.Text)
		if err != nil {
			continue // foreign grammar vintage: successor re-derives on demand
		}
		comp := CompileWithKey(a.Text, d, cache.Key(a.Key))
		if uint8(comp.Frag) != a.Frag || comp.Raw != a.Raw {
			continue // stale record: re-derive on demand
		}
		m.insert(a.Text, comp)
		m.prewarmedArtifacts.Add(1)
		if st := m.cfg.Store; st != nil {
			st.PutArtifact(store.Artifact{Text: a.Text, Key: a.Key, Frag: a.Frag})
		}
		arts++
	}

	m.sessMu.Lock()
	if m.pendingSeeds == nil {
		m.pendingSeeds = make(map[sessKey]map[string]bool)
	}
	for _, v := range h.Verdicts {
		key := sessKey{raw: v.Raw, sem: v.Sem}
		if el, ok := m.sessions[key]; ok {
			// The pair already has a live session: merge directly if its
			// token is free; a busy session just recomputes the few
			// verdicts it never sees.
			s := el.Value.(*warmSession)
			select {
			case st := <-s.slot:
				if _, dup := st.memo[v.MemoKey]; !dup {
					st.memo[v.MemoKey] = v.Holds
					verds++
				}
				s.slot <- st
			default:
			}
		} else {
			pend := m.pendingSeeds[key]
			if pend == nil {
				pend = make(map[string]bool)
				m.pendingSeeds[key] = pend
			}
			if _, dup := pend[v.MemoKey]; !dup {
				pend[v.MemoKey] = v.Holds
				verds++
			}
		}
		if st := m.cfg.Store; st != nil {
			st.PutVerdict(store.Verdict{Raw: v.Raw, Sem: v.Sem, MemoKey: v.MemoKey, Holds: v.Holds})
		}
	}
	m.sessMu.Unlock()
	return arts, verds
}
