package session

import (
	"context"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/store"
)

func mustParse(t *testing.T, text string) *db.DB {
	t.Helper()
	d, err := db.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return d
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

// The workload: a general (non-fast-path) DB so queries go through the
// warm session and its memo, plus a definite DB exercising artifacts
// on the fast path.
const (
	generalDB  = "a | b. c :- a. c :- b.\n"
	definiteDB = "p. q :- p. r :- q.\n"
)

// litFor resolves a positive literal by atom name in the artifact's
// vocabulary.
func litFor(t *testing.T, comp *Compiled, name string) logic.Lit {
	t.Helper()
	a, ok := comp.D.Voc.Lookup(name)
	if !ok {
		t.Fatalf("atom %q not in vocabulary", name)
	}
	return logic.PosLit(a)
}

func runWorkload(t *testing.T, m *Manager) {
	t.Helper()
	gen := m.Intern(generalDB, mustParse(t, generalDB))
	def := m.Intern(definiteDB, mustParse(t, definiteDB))
	ctx := context.Background()
	for _, q := range []string{"c", "a", "b"} {
		lit := litFor(t, gen, q)
		if _, ok := m.Query(ctx, gen, Request{Sem: "GCWA", Kind: KindLiteral, Lit: lit, QueryText: q}); !ok {
			t.Fatalf("warm query %q unhandled", q)
		}
	}
	lit := litFor(t, def, "r")
	res, ok := m.Query(ctx, def, Request{Sem: "GCWA", Kind: KindLiteral, Lit: lit, QueryText: "r"})
	if !ok || !res.Holds || res.Path != "fast" {
		t.Fatalf("definite fast query = %+v ok=%v", res, ok)
	}
}

// TestStoreRoundTrip runs a workload against a store-backed manager,
// closes everything, reopens, and asserts the second process compiles
// nothing cold, seeds its memos from disk, and repeats every verdict
// with zero NP calls — matching a storeless manager's verdicts exactly.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Process 1: cold.
	s1 := openStore(t, dir)
	m1 := NewManager(Config{Store: s1})
	runWorkload(t, m1)
	st1 := m1.Stats()
	if st1.ColdCompiles != 2 || st1.StoreArtifactHits != 0 {
		t.Fatalf("cold process stats = %+v", st1)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Storeless reference for verdict identity.
	ref := NewManager(Config{})
	refVerdicts := collectVerdicts(t, ref)

	// Process 2: pre-warmed restart.
	s2 := openStore(t, dir)
	defer s2.Close()
	m2 := NewManager(Config{Store: s2})
	n, err := m2.Prewarm()
	if err != nil {
		t.Fatalf("Prewarm: %v", err)
	}
	if n != 2 {
		t.Fatalf("Prewarm loaded %d artifacts, want 2", n)
	}
	// The prewarmed cache must serve Lookup directly (the serve fast
	// path) without Intern.
	if _, ok := m2.Lookup(generalDB); !ok {
		t.Fatal("prewarmed artifact missing from Lookup")
	}
	got := collectVerdicts(t, m2)
	for q, want := range refVerdicts {
		if got[q] != want {
			t.Fatalf("verdict divergence after restart: %q = %v, storeless says %v", q, got[q], want)
		}
	}
	st2 := m2.Stats()
	if st2.ColdCompiles != 0 {
		t.Fatalf("pre-warmed process ran %d cold compiles, want 0 (stats %+v)", st2.ColdCompiles, st2)
	}
	if st2.PrewarmedArtifacts != 2 {
		t.Fatalf("prewarmed artifacts = %d, want 2", st2.PrewarmedArtifacts)
	}
	if st2.StoreVerdictSeeds == 0 {
		t.Fatal("no verdict memos seeded from the store")
	}
	if st2.MemoHits == 0 {
		t.Fatal("replayed warm queries missed the seeded memo")
	}
}

// collectVerdicts replays the workload queries and returns verdicts,
// asserting replayed warm queries on a seeded manager cost zero NP.
func collectVerdicts(t *testing.T, m *Manager) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	gen := m.Intern(generalDB, mustParse(t, generalDB))
	ctx := context.Background()
	for _, q := range []string{"c", "a", "b"} {
		lit := litFor(t, gen, q)
		res, ok := m.Query(ctx, gen, Request{Sem: "GCWA", Kind: KindLiteral, Lit: lit, QueryText: q})
		if !ok {
			t.Fatalf("query %q unhandled", q)
		}
		if res.Err != nil {
			t.Fatalf("query %q: %v", q, res.Err)
		}
		out[q] = res.Holds
	}
	return out
}

// TestStoreMemoSeededRepeatZeroNP asserts the core replay contract: a
// restarted manager answers previously completed warm queries from the
// persisted memo with zero NP calls.
func TestStoreMemoSeededRepeatZeroNP(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, dir)
	m1 := NewManager(Config{Store: s1})
	runWorkload(t, m1)
	s1.Close()

	s2 := openStore(t, dir)
	defer s2.Close()
	m2 := NewManager(Config{Store: s2})
	if _, err := m2.Prewarm(); err != nil {
		t.Fatal(err)
	}
	gen, ok := m2.Lookup(generalDB)
	if !ok {
		t.Fatal("prewarmed artifact missing")
	}
	lit := litFor(t, gen, "c")
	res, handled := m2.Query(context.Background(), gen, Request{Sem: "GCWA", Kind: KindLiteral, Lit: lit, QueryText: "c"})
	if !handled || res.Err != nil {
		t.Fatalf("replay = %+v handled=%v", res, handled)
	}
	if res.Counters.NPCalls != 0 {
		t.Fatalf("memo-seeded replay cost %d NP calls, want 0", res.Counters.NPCalls)
	}
	if m2.Stats().MemoHits != 1 {
		t.Fatalf("memo hits = %d, want 1", m2.Stats().MemoHits)
	}
}

// TestStoreFragMismatchRecompiles asserts the cross-check: a persisted
// artifact whose recorded fragment disagrees with re-derivation is
// discarded and the compile runs cold (and repairs the store).
func TestStoreFragMismatchRecompiles(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, dir)
	// A forged record: definite text recorded as general.
	s1.PutArtifact(store.Artifact{Text: definiteDB, Key: "bogus", Frag: uint8(FragGeneral)})
	s1.Flush()

	m := NewManager(Config{Store: s1})
	if n, err := m.Prewarm(); err != nil || n != 0 {
		t.Fatalf("Prewarm loaded %d (err %v), want 0 — forged record must be skipped", n, err)
	}
	comp := m.Intern(definiteDB, mustParse(t, definiteDB))
	if comp.Frag != FragDefinite {
		t.Fatalf("fragment = %v, want definite", comp.Frag)
	}
	st := m.Stats()
	if st.ColdCompiles != 1 || st.StoreArtifactHits != 0 {
		t.Fatalf("forged record was trusted: %+v", st)
	}
	s1.Flush()
	if a, ok := s1.Artifact(definiteDB); !ok || a.Key == "bogus" {
		t.Fatalf("store not repaired after cold recompile: %+v ok=%v", a, ok)
	}
	s1.Close()
}

// TestPrewarmWithoutStore errors rather than silently no-ops.
func TestPrewarmWithoutStore(t *testing.T) {
	if _, err := NewManager(Config{}).Prewarm(); err == nil {
		t.Fatal("Prewarm without store succeeded")
	}
}

// TestCompileWithKeyVerdictIdentity asserts a compile that skips
// canonical labeling produces an artifact whose fast-path and warm
// verdicts match the full compile (the key only affects stats).
func TestCompileWithKeyVerdictIdentity(t *testing.T) {
	for _, text := range []string{generalDB, definiteDB, "s :- not t. t :- not u.\n"} {
		d1 := mustParse(t, text)
		d2 := mustParse(t, text)
		full := Compile(text, d1)
		keyed := CompileWithKey(text, d2, full.Key)
		if keyed.Frag != full.Frag || keyed.Raw != full.Raw || keyed.Consistent != full.Consistent {
			t.Fatalf("%q: keyed artifact diverges: frag %v/%v raw equal=%v", text, keyed.Frag, full.Frag, keyed.Raw == full.Raw)
		}
		if keyed.Key != full.Key {
			t.Fatalf("%q: key not adopted", text)
		}
	}
}
