package session

import "disjunct/internal/logic"

// Per-fragment allowlists: the semantics whose model set provably
// collapses onto the fragment's fixpoint model, so their three
// decision problems are answered by evaluation — zero NP calls.
//
// PDSM is excluded everywhere: it rejects databases above its
// enumeration bound (ErrUnsupported), so a fast path answering for it
// would diverge from the fresh engine on large fragment instances.
// PERF and ICWA are excluded from the Horn fragment because they are
// undefined in the presence of integrity clauses (the fresh path
// returns ErrUnsupported); they join on the fragments they accept.
var (
	// fastDefinite: the unique minimal model IS the least model, every
	// closure/possible-world/stable/perfect construction yields exactly
	// it, and the DB is always consistent.
	fastDefinite = map[string]bool{
		"GCWA": true, "CCWA": true, "EGCWA": true, "ECWA": true, "CIRC": true,
		"CWA": true, "DSM": true, "DDR": true, "WGCWA": true,
		"PWS": true, "PMS": true, "PERF": true, "ICWA": true,
	}
	// fastHorn: single-head positive clauses plus denials — the model
	// set is {least model} when the denials hold there, ∅ otherwise.
	fastHorn = map[string]bool{
		"GCWA": true, "CCWA": true, "EGCWA": true, "ECWA": true, "CIRC": true,
		"CWA": true, "DSM": true, "DDR": true, "WGCWA": true,
		"PWS": true, "PMS": true,
	}
	// fastStrat: stratified normal programs have a total well-founded
	// model that is the unique stable model and the perfect model.
	fastStrat = map[string]bool{
		"DSM": true, "PERF": true, "ICWA": true,
	}
	// fastPosExistence: on a positive database without integrity
	// clauses the all-true interpretation is a model, every minimal /
	// stable / perfect / possible-world construction is nonempty, and
	// the iterated closures stay consistent — model existence is O(1)
	// ("existence O(1) positive" in the paper's cells; Truszczyński's
	// trichotomy pins the same collapse). Applies on the general
	// fragment, where the other allowlists don't. CWA is excluded (its
	// closure of a∨b is already inconsistent, existence is coNP-hard
	// even positive) and PDSM is excluded for its enumeration bound.
	fastPosExistence = map[string]bool{
		"GCWA": true, "CCWA": true, "EGCWA": true, "ECWA": true, "CIRC": true,
		"DSM": true, "DDR": true, "WGCWA": true,
		"PWS": true, "PMS": true, "PERF": true, "ICWA": true,
	}
)

// FastEligible reports whether fastVerdict would answer (comp, sem,
// kind) — the planner's polynomial-class membership probe. It mirrors
// fastVerdict's dispatch without evaluating the query.
func FastEligible(comp *Compiled, sem string, kind Kind) bool {
	switch comp.Frag {
	case FragDefinite:
		return fastDefinite[sem]
	case FragHorn:
		return fastHorn[sem]
	case FragStratNormal:
		return fastStrat[sem]
	default:
		return kind == KindModel && !comp.HasNeg && !comp.HasIC && fastPosExistence[sem]
	}
}

// fastVerdict answers a query from the compiled artifact alone when
// the (fragment, semantics) pair is allowlisted. The second return
// reports whether the fast path applied. No oracle is ever consulted.
func fastVerdict(comp *Compiled, sem string, kind Kind, lit logic.Lit, f *logic.Formula) (bool, bool) {
	var model logic.Interp
	consistent := true
	switch comp.Frag {
	case FragDefinite:
		if !fastDefinite[sem] {
			return false, false
		}
		model = comp.Least
	case FragHorn:
		if !fastHorn[sem] {
			return false, false
		}
		model, consistent = comp.Least, comp.Consistent
	case FragStratNormal:
		if !fastStrat[sem] {
			return false, false
		}
		model = comp.Stable
	default:
		if kind == KindModel && !comp.HasNeg && !comp.HasIC && fastPosExistence[sem] {
			return true, true
		}
		return false, false
	}
	switch kind {
	case KindModel:
		return consistent, true
	case KindLiteral:
		if !consistent {
			return true, true // the empty model set entails everything
		}
		if lit.IsPos() {
			return model.Holds(lit.Atom()), true
		}
		return !model.Holds(lit.Atom()), true
	case KindFormula:
		if !consistent {
			return true, true
		}
		return f.Eval(model), true
	}
	return false, false
}
