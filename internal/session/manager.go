package session

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/cache"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/store"
)

// Kind selects one of the three decision problems.
type Kind int

const (
	KindLiteral Kind = iota
	KindFormula
	KindModel
)

// String names the kind for memo keys and stats.
func (k Kind) String() string {
	switch k {
	case KindLiteral:
		return "literal"
	case KindFormula:
		return "formula"
	default:
		return "model"
	}
}

// warmSems is the minimal-model family served by warm incremental
// sessions (under the default full-minimisation partition): their
// literal queries — and for the E-family also formula queries — reduce
// to MM(DB) ⊨ F, which IncrementalEngine.MMEntails answers on the
// shared solver. GCWA/CCWA formula inference is closure-based and does
// NOT coincide with MMEntails (e.g. DB = {a∨b} minimally entails
// ¬a∨¬b but its GCWA closure does not), so those fall through fresh.
var warmSems = map[string]bool{
	"GCWA": true, "CCWA": true, "EGCWA": true, "ECWA": true, "CIRC": true,
}

var warmFormulaSems = map[string]bool{
	"EGCWA": true, "ECWA": true, "CIRC": true,
}

// Config tunes the manager. Zero values select the defaults.
type Config struct {
	// MaxBytes is the compiled-artifact LRU budget (default 64 MiB).
	MaxBytes int64
	// MaxSessions bounds the warm sessions kept across all (DB,
	// semantics) pairs (default 64).
	MaxSessions int
	// MaxQueriesPerSession retires a session's engine after this many
	// warm queries, bounding activation-variable and learned-clause
	// growth (default 512). The verdict memo survives retirement.
	MaxQueriesPerSession int
	// MaxVars retires the engine when the shared solver's variable
	// count exceeds it (default 1 << 16).
	MaxVars int
	// BatchWindow is the longest a request waits for a busy session
	// before falling back to the fresh path — the micro-batch window:
	// same-DB queries arriving within it execute back-to-back on one
	// checked-out engine (default 2ms).
	BatchWindow time.Duration
	// Store is the optional disk-backed tier: compile misses fall
	// through to it (reusing the persisted canonical key instead of
	// re-canonicalizing), fresh compiles and completed warm verdicts are
	// written behind, and Prewarm loads it wholesale. Nil disables
	// persistence.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxQueriesPerSession <= 0 {
		c.MaxQueriesPerSession = 512
	}
	if c.MaxVars <= 0 {
		c.MaxVars = 1 << 16
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	return c
}

// Stats is a snapshot of the manager's counters (all monotone except
// the gauges).
type Stats struct {
	CompiledHits      int64 // artifact lookups served from the cache
	CompiledMisses    int64 // artifact lookups that had to compile
	CompiledBytes     int64 // gauge: bytes accounted to cached artifacts
	CompiledEntries   int64 // gauge: artifacts cached
	CompiledEvictions int64 // artifacts evicted by the byte budget
	FastQueries       int64 // queries answered by the fragment fast path
	WarmQueries       int64 // queries answered on a warm session engine
	MemoHits          int64 // warm queries answered from the verdict memo
	Checkouts         int64 // successful session checkouts
	CheckoutTimeouts  int64 // batch-window expiries (fell back fresh)
	Retired           int64 // engines retired (staleness or interrupt)
	ActiveCheckouts   int64 // gauge: sessions currently checked out
	Sessions          int64 // gauge: warm sessions resident

	// Store-tier counters (all zero when no store is configured).
	ColdCompiles       int64 // compiles that ran full canonical labeling
	StoreArtifactHits  int64 // compile misses answered by the store's key
	PrewarmedArtifacts int64 // artifacts loaded wholesale by Prewarm
	StoreVerdictSeeds  int64 // memo entries seeded from persisted verdicts
}

// Result is the session layer's answer to a query it handled.
type Result struct {
	// Holds is the verdict (meaningful when Err is nil).
	Holds bool
	// Err is the typed interruption (budget trip) when the warm query
	// did not complete; never a semantic error — unsupported databases
	// are simply not handled by the layer.
	Err error
	// Counters is the oracle work of this query alone (zero on the
	// fast path and on memo hits).
	Counters oracle.Counters
	// Path reports which route answered: "fast" or "session".
	Path string
}

// Request is one query against the session layer.
type Request struct {
	Sem  string
	Kind Kind
	Lit  logic.Lit
	F    *logic.Formula
	// QueryText keys the verdict memo (the literal/formula in request
	// syntax; "" for model queries).
	QueryText string
	// Budget bounds the warm solve; nil means unlimited.
	Budget *budget.B
}

// Manager owns the compiled-artifact cache and the warm sessions.
type Manager struct {
	cfg Config

	artMu    sync.Mutex
	arts     map[string]*list.Element // db text → artifact node
	artList  *list.List               // front = most recently used
	artBytes int64

	sessMu   sync.Mutex
	sessions map[sessKey]*list.Element // (raw, sem) → session node
	sessList *list.List
	// pendingSeeds stages verdicts imported by a cluster handoff for
	// pairs with no live session yet; session() consumes an entry when
	// it creates the pair's warm session. Guarded by sessMu.
	pendingSeeds map[sessKey]map[string]bool

	compiledHits       atomic.Int64
	compiledMisses     atomic.Int64
	compiledEvictions  atomic.Int64
	coldCompiles       atomic.Int64
	storeArtifactHits  atomic.Int64
	prewarmedArtifacts atomic.Int64
	storeVerdictSeeds  atomic.Int64
	fastQueries        atomic.Int64
	warmQueries        atomic.Int64
	memoHits           atomic.Int64
	checkouts          atomic.Int64
	checkoutTimeouts   atomic.Int64
	retired            atomic.Int64
	activeCheckouts    atomic.Int64
}

type artNode struct {
	text string
	comp *Compiled
}

type sessKey struct {
	raw string
	sem string
}

// warmSession serializes access to one incremental engine through a
// capacity-1 channel (the checkout token). The engine may be nil —
// retired — in which case the next checkout rebuilds it.
type warmSession struct {
	key  sessKey
	comp *Compiled
	slot chan *engineState
}

// engineState is the token that travels through the slot channel.
type engineState struct {
	eng     *models.IncrementalEngine
	ora     *oracle.NP
	memo    map[string]bool // completed verdicts only
	queries int             // warm queries served by the current engine
}

// NewManager returns a manager with the given tuning.
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg:      cfg.withDefaults(),
		arts:     make(map[string]*list.Element),
		artList:  list.New(),
		sessions: make(map[sessKey]*list.Element),
		sessList: list.New(),
	}
}

// Lookup returns the compiled artifact for a database text, if cached.
func (m *Manager) Lookup(text string) (*Compiled, bool) {
	m.artMu.Lock()
	el, ok := m.arts[text]
	if !ok {
		m.artMu.Unlock()
		m.compiledMisses.Add(1)
		return nil, false
	}
	m.artList.MoveToFront(el)
	comp := el.Value.(*artNode).comp
	m.artMu.Unlock()
	m.compiledHits.Add(1)
	return comp, true
}

// Intern compiles (or returns the cached artifact for) a database that
// the caller already parsed from text. Compilation happens outside the
// cache lock; concurrent interns of the same text keep the first
// inserted artifact.
func (m *Manager) Intern(text string, d *db.DB) *Compiled {
	m.artMu.Lock()
	if el, ok := m.arts[text]; ok {
		m.artList.MoveToFront(el)
		comp := el.Value.(*artNode).comp
		m.artMu.Unlock()
		return comp
	}
	m.artMu.Unlock()
	comp := m.compileFor(text, d)
	return m.insert(text, comp)
}

// insert adds a compiled artifact to the LRU (keeping the winner when
// racing interns collide) and enforces the byte budget.
func (m *Manager) insert(text string, comp *Compiled) *Compiled {
	m.artMu.Lock()
	if el, ok := m.arts[text]; ok { // lost the race: keep the winner
		m.artList.MoveToFront(el)
		comp = el.Value.(*artNode).comp
		m.artMu.Unlock()
		return comp
	}
	el := m.artList.PushFront(&artNode{text: text, comp: comp})
	m.arts[text] = el
	m.artBytes += comp.Bytes
	for m.artBytes > m.cfg.MaxBytes && m.artList.Len() > 1 {
		victim := m.artList.Back()
		vn := victim.Value.(*artNode)
		m.artList.Remove(victim)
		delete(m.arts, vn.text)
		m.artBytes -= vn.comp.Bytes
		m.compiledEvictions.Add(1)
	}
	m.artMu.Unlock()
	return comp
}

// compileFor compiles a database text, falling through to the store on
// a cache miss: a persisted artifact for the exact text supplies the
// canonical key, skipping the expensive labeling (a "warm" compile).
// Cold compiles are written behind so the next process skips them.
func (m *Manager) compileFor(text string, d *db.DB) *Compiled {
	if st := m.cfg.Store; st != nil {
		if a, ok := st.Artifact(text); ok {
			comp := CompileWithKey(text, d, cache.Key(a.Key))
			// The fragment is re-derived; agreement with the persisted
			// record cross-checks that the text→key binding is current. A
			// mismatch means the record predates a compiler change — fall
			// through to a cold compile and repair the store.
			if uint8(comp.Frag) == a.Frag {
				m.storeArtifactHits.Add(1)
				return comp
			}
		}
	}
	m.coldCompiles.Add(1)
	comp := Compile(text, d)
	if st := m.cfg.Store; st != nil {
		st.PutArtifact(store.Artifact{Text: text, Key: string(comp.Key), Frag: uint8(comp.Frag)})
	}
	return comp
}

// InternDB is Intern keyed by the database's canonical surface syntax
// (d.String()) — the entry point for callers that hold a *db.DB rather
// than request text (soak, tests, bench).
func (m *Manager) InternDB(d *db.DB) *Compiled {
	return m.Intern(d.String(), d)
}

// Query answers a request from the session layer when it can: the
// fragment fast path first (zero NP calls), then a warm session for
// the minimal-model family. The boolean reports whether the layer
// handled the query — false means the caller must run the fresh path
// (the layer never returns semantic errors; only typed budget
// interruptions from warm solves).
func (m *Manager) Query(ctx context.Context, comp *Compiled, req Request) (Result, bool) {
	if holds, ok := fastVerdict(comp, req.Sem, req.Kind, req.Lit, req.F); ok {
		m.fastQueries.Add(1)
		return Result{Holds: holds, Path: "fast"}, true
	}
	if !warmEligible(req.Sem, req.Kind) {
		return Result{}, false
	}
	sess := m.session(comp, req.Sem)
	st, ok := m.checkout(ctx, sess)
	if !ok {
		m.checkoutTimeouts.Add(1)
		return Result{}, false
	}
	defer m.checkin(sess, st)
	return m.warmOne(st, comp, req), true
}

// warmEligible reports whether the warm-session family serves this
// (semantics, kind) pair at all.
func warmEligible(sem string, kind Kind) bool {
	if !warmSems[sem] {
		return false
	}
	return kind != KindFormula || warmFormulaSems[sem]
}

// WarmEligible exposes warmEligible to the query planner, which needs
// to know whether a warm session is a candidate procedure before it
// touches the Manager.
func WarmEligible(sem string, kind Kind) bool {
	return warmEligible(sem, kind)
}

// warmOne answers one warm-eligible query on an already checked-out
// engine token: memo lookup, lazy engine (re)build, per-query budget
// attach, counter delta, and retirement on interrupt or staleness.
func (m *Manager) warmOne(st *engineState, comp *Compiled, req Request) Result {
	memoKey := req.Kind.String() + "|" + req.QueryText
	if v, ok := st.memo[memoKey]; ok {
		m.memoHits.Add(1)
		m.warmQueries.Add(1)
		return Result{Holds: v, Path: "session"}
	}
	if st.eng == nil {
		st.ora = oracle.NewNP()
		st.eng = models.NewIncrementalEngine(comp.D, st.ora)
		st.queries = 0
	}
	st.ora.WithBudget(req.Budget)
	st.eng.SetBudget(req.Budget)
	before := st.ora.Counters()
	holds, err := m.runWarm(st, comp, req)
	st.ora.WithBudget(nil)
	st.eng.SetBudget(nil)
	after := st.ora.Counters()
	delta := oracle.Counters{
		NPCalls:     after.NPCalls - before.NPCalls,
		Sigma2Calls: after.Sigma2Calls - before.Sigma2Calls,
		SATConfl:    after.SATConfl - before.SATConfl,
	}
	m.warmQueries.Add(1)
	if err != nil {
		// Interrupted mid-query: the engine's solver may hold a
		// partially budget-tripped state — retire it (the memo, holding
		// only completed verdicts, survives).
		st.eng, st.ora = nil, nil
		m.retired.Add(1)
		return Result{Err: err, Counters: delta, Path: "session"}
	}
	st.memo[memoKey] = holds
	if ps := m.cfg.Store; ps != nil {
		ps.PutVerdict(store.Verdict{Raw: comp.Raw, Sem: req.Sem, MemoKey: memoKey, Holds: holds})
	}
	st.queries++
	if st.queries >= m.cfg.MaxQueriesPerSession || st.eng.Vars() > m.cfg.MaxVars {
		st.eng, st.ora = nil, nil
		m.retired.Add(1)
	}
	return Result{Holds: holds, Counters: delta, Path: "session"}
}

// BatchOutcome pairs one batch request's Result with whether the
// session layer handled it; unhandled entries must be run by the
// caller's fresh path.
type BatchOutcome struct {
	Res     Result
	Handled bool
}

// Batch answers many requests against one compiled database, paying
// the checkout cost once per (database, semantics) group instead of
// once per query — the public form of the micro-batch window. Fast-path
// queries are answered inline with zero NP calls; warm-eligible
// queries are grouped by semantics and executed back-to-back on a
// single checked-out engine, in request order within each group, so
// the NP-call total equals the same queries issued sequentially
// through Query. A checkout that cannot be claimed within the batch
// window leaves its whole group unhandled; a query interrupted by its
// budget retires the engine and the next query in the group rebuilds
// it, exactly as on the sequential path.
func (m *Manager) Batch(ctx context.Context, comp *Compiled, reqs []Request) []BatchOutcome {
	out := make([]BatchOutcome, len(reqs))
	var order []string
	groups := make(map[string][]int)
	for i, req := range reqs {
		if holds, ok := fastVerdict(comp, req.Sem, req.Kind, req.Lit, req.F); ok {
			m.fastQueries.Add(1)
			out[i] = BatchOutcome{Res: Result{Holds: holds, Path: "fast"}, Handled: true}
			continue
		}
		if !warmEligible(req.Sem, req.Kind) {
			continue
		}
		if _, seen := groups[req.Sem]; !seen {
			order = append(order, req.Sem)
		}
		groups[req.Sem] = append(groups[req.Sem], i)
	}
	for _, sem := range order {
		idxs := groups[sem]
		sess := m.session(comp, sem)
		st, ok := m.checkout(ctx, sess)
		if !ok {
			m.checkoutTimeouts.Add(1)
			continue // the whole group falls back to the caller's fresh path
		}
		for _, i := range idxs {
			out[i] = BatchOutcome{Res: m.warmOne(st, comp, reqs[i]), Handled: true}
		}
		m.checkin(sess, st)
	}
	return out
}

// FastVerdict exposes the fragment fast path for callers that hold a
// compiled artifact but no Manager (e.g. the serve batch planner with
// sessions disabled). The second return reports whether the
// (fragment, semantics) pair is allowlisted.
func FastVerdict(comp *Compiled, sem string, kind Kind, lit logic.Lit, f *logic.Formula) (bool, bool) {
	return fastVerdict(comp, sem, kind, lit, f)
}

// runWarm executes one warm query; budget trips surface as the typed
// error of the named return.
func (m *Manager) runWarm(st *engineState, comp *Compiled, req Request) (holds bool, err error) {
	defer budget.Recover(&err)
	part := models.FullMin(comp.N)
	switch req.Kind {
	case KindModel:
		if !comp.HasIC && !comp.HasNeg {
			// A positive database without denials always has a model —
			// the same zero-call shortcut the fresh engines take.
			return true, nil
		}
		ok, _ := st.eng.HasModel()
		return ok, nil
	case KindFormula:
		return st.eng.MMEntails(req.F, part), nil
	default:
		return st.eng.MMEntails(logic.LitF(req.Lit), part), nil
	}
}

// session returns (creating if needed) the warm session for the pair,
// evicting the least-recently-used session beyond the bound.
func (m *Manager) session(comp *Compiled, sem string) *warmSession {
	key := sessKey{raw: comp.Raw, sem: sem}
	m.sessMu.Lock()
	if el, ok := m.sessions[key]; ok {
		m.sessList.MoveToFront(el)
		s := el.Value.(*warmSession)
		m.sessMu.Unlock()
		return s
	}
	s := &warmSession{key: key, comp: comp, slot: make(chan *engineState, 1)}
	memo := make(map[string]bool)
	if pend, ok := m.pendingSeeds[key]; ok {
		// Verdicts handed off by a draining peer before this pair's
		// first query: fold them in and clear the staging entry.
		for k, v := range pend {
			memo[k] = v
		}
		delete(m.pendingSeeds, key)
		m.storeVerdictSeeds.Add(int64(len(memo)))
	}
	if st := m.cfg.Store; st != nil {
		// Seed the verdict memo from persisted completed verdicts: equal
		// Raw means the indexed CNF is byte-identical, so verdicts from a
		// previous process transfer verbatim and replays cost zero NP.
		pre := len(memo)
		for k, v := range st.Verdicts(comp.Raw, sem) {
			memo[k] = v
		}
		m.storeVerdictSeeds.Add(int64(len(memo) - pre))
	}
	s.slot <- &engineState{memo: memo}
	el := m.sessList.PushFront(s)
	m.sessions[key] = el
	for m.sessList.Len() > m.cfg.MaxSessions {
		victim := m.sessList.Back()
		vs := victim.Value.(*warmSession)
		m.sessList.Remove(victim)
		delete(m.sessions, vs.key)
		// An outstanding checkout of the evicted session finishes
		// normally and checks back into the orphaned slot, which is
		// then garbage-collected.
	}
	m.sessMu.Unlock()
	return s
}

// checkout claims the session's engine, waiting at most the batch
// window (or until ctx is done).
func (m *Manager) checkout(ctx context.Context, s *warmSession) (*engineState, bool) {
	select {
	case st := <-s.slot:
		m.checkouts.Add(1)
		m.activeCheckouts.Add(1)
		return st, true
	default:
	}
	t := time.NewTimer(m.cfg.BatchWindow)
	defer t.Stop()
	select {
	case st := <-s.slot:
		m.checkouts.Add(1)
		m.activeCheckouts.Add(1)
		return st, true
	case <-t.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}

// checkin returns the engine token.
func (m *Manager) checkin(s *warmSession, st *engineState) {
	m.activeCheckouts.Add(-1)
	s.slot <- st
}

// Stats returns a snapshot of the counters and gauges.
func (m *Manager) Stats() Stats {
	m.artMu.Lock()
	bytes, entries := m.artBytes, int64(m.artList.Len())
	m.artMu.Unlock()
	m.sessMu.Lock()
	sessions := int64(m.sessList.Len())
	m.sessMu.Unlock()
	return Stats{
		CompiledHits:      m.compiledHits.Load(),
		CompiledMisses:    m.compiledMisses.Load(),
		CompiledBytes:     bytes,
		CompiledEntries:   entries,
		CompiledEvictions: m.compiledEvictions.Load(),
		FastQueries:       m.fastQueries.Load(),
		WarmQueries:       m.warmQueries.Load(),
		MemoHits:          m.memoHits.Load(),
		Checkouts:         m.checkouts.Load(),
		CheckoutTimeouts:  m.checkoutTimeouts.Load(),
		Retired:           m.retired.Load(),
		ActiveCheckouts:   m.activeCheckouts.Load(),
		Sessions:          sessions,

		ColdCompiles:       m.coldCompiles.Load(),
		StoreArtifactHits:  m.storeArtifactHits.Load(),
		PrewarmedArtifacts: m.prewarmedArtifacts.Load(),
		StoreVerdictSeeds:  m.storeVerdictSeeds.Load(),
	}
}
