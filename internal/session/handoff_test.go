package session_test

import (
	"context"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
	"disjunct/internal/session"
	"disjunct/internal/store"

	_ "disjunct/internal/semantics/all"
)

// warmQueries drives a few warm-eligible GCWA literal queries so the
// manager has artifacts and memoized verdicts to export.
func warmQueries(t *testing.T, m *session.Manager, texts []string) map[string]bool {
	t.Helper()
	verdicts := map[string]bool{}
	for _, text := range texts {
		d, err := db.Parse(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		comp := m.Intern(text, d)
		for a := 0; a < d.N(); a++ {
			lit := logic.MkLit(logic.Atom(a), false) // negative literal: warm path under GCWA
			q := session.Request{
				Sem: "GCWA", Kind: session.KindLiteral,
				Lit: lit, QueryText: d.Voc.LitString(lit),
			}
			res, handled := m.Query(context.Background(), comp, q)
			if !handled || res.Err != nil {
				continue
			}
			verdicts[text+"|"+q.QueryText] = res.Holds
		}
	}
	if len(verdicts) == 0 {
		t.Fatal("no warm verdicts produced; handoff test has nothing to move")
	}
	return verdicts
}

// TestHandoffRoundTrip exports a warmed manager and imports into a
// fresh one: the successor must answer every handed-off query from
// its seeded memo with zero NP calls and identical verdicts.
func TestHandoffRoundTrip(t *testing.T) {
	texts := []string{"a | b. b | c.", "p | q. q.", "x | y. y | z. z."}
	src := session.NewManager(session.Config{})
	want := warmQueries(t, src, texts)

	h := src.Export()
	if len(h.Artifacts) != len(texts) {
		t.Fatalf("exported %d artifacts, want %d", len(h.Artifacts), len(texts))
	}
	if len(h.Verdicts) == 0 {
		t.Fatal("exported zero verdicts from a warmed manager")
	}

	dst := session.NewManager(session.Config{})
	arts, verds := dst.Import(h)
	if arts != len(texts) {
		t.Fatalf("imported %d artifacts, want %d", arts, len(texts))
	}
	if verds != len(h.Verdicts) {
		t.Fatalf("imported %d verdicts, want %d", verds, len(h.Verdicts))
	}

	// Replay every query on the successor: all answers must come from
	// the seeded memo (zero oracle counters) and agree.
	for _, text := range texts {
		d, _ := db.Parse(text)
		comp := dst.Intern(text, d)
		for a := 0; a < d.N(); a++ {
			lit := logic.MkLit(logic.Atom(a), false)
			q := session.Request{
				Sem: "GCWA", Kind: session.KindLiteral,
				Lit: lit, QueryText: d.Voc.LitString(lit),
			}
			key := text + "|" + q.QueryText
			wantHolds, known := want[key]
			if !known {
				continue
			}
			res, handled := dst.Query(context.Background(), comp, q)
			if !handled {
				t.Fatalf("successor did not handle %s", key)
			}
			if res.Err != nil {
				t.Fatalf("successor error on %s: %v", key, res.Err)
			}
			if res.Holds != wantHolds {
				t.Fatalf("handoff changed verdict on %s: %v -> %v", key, wantHolds, res.Holds)
			}
			if (res.Counters != oracle.Counters{}) {
				t.Fatalf("successor burned oracle calls on handed-off query %s: %+v", key, res.Counters)
			}
		}
	}
	if st := dst.Stats(); st.StoreVerdictSeeds == 0 {
		t.Fatalf("no verdicts seeded from the handoff: %+v", st)
	}
}

// TestHandoffImportWritesThroughStore checks that an import on a
// store-backed successor persists the received state: a third process
// opening the same store sees the artifacts and verdicts.
func TestHandoffImportWritesThroughStore(t *testing.T) {
	texts := []string{"a | b. b | c."}
	src := session.NewManager(session.Config{})
	warmQueries(t, src, texts)
	h := src.Export()

	dir := t.TempDir()
	st, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	dst := session.NewManager(session.Config{Store: st})
	arts, verds := dst.Import(h)
	if arts == 0 || verds == 0 {
		t.Fatalf("import accepted arts=%d verds=%d, want both > 0", arts, verds)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := len(st2.Artifacts()); got != len(h.Artifacts) {
		t.Fatalf("store after reopen has %d artifacts, want %d", got, len(h.Artifacts))
	}
	if got := len(st2.AllVerdicts()); got != len(h.Verdicts) {
		t.Fatalf("store after reopen has %d verdicts, want %d", got, len(h.Verdicts))
	}
}

// TestHandoffImportRejectsStaleArtifacts feeds an import a record whose
// fragment disagrees with what the text compiles to now: it must be
// skipped (re-derived on demand), never trusted.
func TestHandoffImportRejectsStaleArtifacts(t *testing.T) {
	text := "a | b."
	d, _ := db.Parse(text)
	comp := session.Compile(text, d)
	h := session.Handoff{Artifacts: []session.HandoffArtifact{{
		Text: text, Raw: comp.Raw, Key: string(comp.Key), Frag: uint8(comp.Frag) + 1,
	}}}
	dst := session.NewManager(session.Config{})
	arts, _ := dst.Import(h)
	if arts != 0 {
		t.Fatalf("stale artifact accepted: %d", arts)
	}
	h2 := session.Handoff{Artifacts: []session.HandoffArtifact{{
		Text: "not ( parseable", Raw: "junk", Key: "junk", Frag: 0,
	}}}
	if arts, _ := dst.Import(h2); arts != 0 {
		t.Fatalf("unparseable artifact accepted: %d", arts)
	}
}
