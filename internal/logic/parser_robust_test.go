package logic

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: the formula parser never panics on arbitrary input.
func TestFormulaParserNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		ParseFormula(input, NewVocabulary())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DIMACS parser never panics on arbitrary input.
func TestDIMACSParserNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		ParseDIMACS(strings.NewReader(input))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: parsing is insensitive to surrounding whitespace.
func TestFormulaParserWhitespace(t *testing.T) {
	v1 := NewVocabulary()
	v2 := NewVocabulary()
	f1 := MustParseFormula("a&(b|-c)->d", v1)
	f2 := MustParseFormula("  a & ( b | - c )  ->  d  ", v2)
	if f1.String(v1) != f2.String(v2) {
		t.Fatalf("whitespace sensitivity: %q vs %q", f1.String(v1), f2.String(v2))
	}
}

// Property: "-" never consumes the arrow "->".
func TestMinusVsArrow(t *testing.T) {
	v := NewVocabulary()
	f := MustParseFormula("a->b", v)
	if f.Op != OpImpl {
		t.Fatalf("a->b parsed as %v", f.Op)
	}
	// Identifiers cannot contain '-', so "a- ->b" must be a parse error
	// rather than an atom named "a-".
	if _, err := ParseFormula("a- ->b", v); err == nil {
		t.Fatalf("'a- ->b' should fail to parse")
	}
	if _, err := ParseFormula("-a", v); err != nil {
		t.Fatalf("unary minus broken: %v", err)
	}
}

// Ground first-order atoms parse as single propositional atoms.
func TestGroundAtomSyntax(t *testing.T) {
	v := NewVocabulary()
	f := MustParseFormula("edge(a,b) & -path( a , c )", v)
	if _, ok := v.Lookup("edge(a,b)"); !ok {
		t.Fatalf("edge(a,b) not interned as one atom")
	}
	if _, ok := v.Lookup("path(a,c)"); !ok {
		t.Fatalf("whitespace not canonicalised in path(a,c)")
	}
	if f.Op != OpAnd {
		t.Fatalf("structure wrong")
	}
	// Malformed applications must error, not panic.
	for _, bad := range []string{"p(", "p(a", "p(a,)", "p()"} {
		if _, err := ParseFormula(bad, NewVocabulary()); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
	// Render → parse round trip preserves the application atom.
	s := f.String(v)
	g := MustParseFormula(s, v)
	if g.String(v) != s {
		t.Fatalf("round trip changed %q to %q", s, g.String(v))
	}
}
