package logic

import (
	"sort"
	"strings"

	"disjunct/internal/bitset"
)

// Interp is a total two-valued interpretation over a vocabulary of n
// atoms, represented (Herbrand-style) as the set of true atoms.
type Interp struct {
	True *bitset.Set
}

// NewInterp returns the all-false interpretation over n atoms.
func NewInterp(n int) Interp { return Interp{True: bitset.New(n)} }

// InterpOf returns the interpretation over n atoms in which exactly the
// given atoms are true.
func InterpOf(n int, atoms ...Atom) Interp {
	m := NewInterp(n)
	for _, a := range atoms {
		m.True.Set(int(a))
	}
	return m
}

// N returns the number of atoms the interpretation ranges over.
func (m Interp) N() int { return m.True.Len() }

// Holds reports whether atom a is true in m.
func (m Interp) Holds(a Atom) bool { return m.True.Test(int(a)) }

// Sat reports whether literal l is satisfied by m.
func (m Interp) Sat(l Lit) bool { return m.Holds(l.Atom()) == l.IsPos() }

// Clone returns an independent copy.
func (m Interp) Clone() Interp { return Interp{True: m.True.Clone()} }

// Equal reports whether m and o make the same atoms true.
func (m Interp) Equal(o Interp) bool { return m.True.Equal(o.True) }

// SubsetOf reports whether the true atoms of m are a subset of those of o.
func (m Interp) SubsetOf(o Interp) bool { return m.True.SubsetOf(o.True) }

// ProperSubsetOf reports m ⊊ o on true atoms.
func (m Interp) ProperSubsetOf(o Interp) bool { return m.True.ProperSubsetOf(o.True) }

// Key returns a map key identifying the true-atom set.
func (m Interp) Key() string { return m.True.Key() }

// String renders the set of true atoms using vocabulary v, e.g. "{a, c}".
func (m Interp) String(v *Vocabulary) string {
	names := make([]string, 0, m.True.Count())
	m.True.ForEach(func(i int) { names = append(names, v.Name(Atom(i))) })
	sort.Strings(names)
	return "{" + strings.Join(names, ", ") + "}"
}

// TruthValue is a value of Przymusinski's 3-valued logic, used by the
// partial disjunctive stable model semantics (PDSM). The paper's values
// 0, 0.5, 1 are represented as False, Undefined, True.
type TruthValue uint8

// Truth values ordered by degree of truth: False < Undefined < True.
const (
	False TruthValue = iota
	Undefined
	True
)

// String returns "false", "undef" or "true".
func (t TruthValue) String() string {
	switch t {
	case False:
		return "false"
	case Undefined:
		return "undef"
	default:
		return "true"
	}
}

// Partial is a total 3-valued interpretation: every atom is assigned
// one of False, Undefined, True. It is represented by two bit sets,
// the true atoms and the undefined atoms (disjoint).
type Partial struct {
	T *bitset.Set // atoms assigned True
	U *bitset.Set // atoms assigned Undefined
}

// NewPartial returns the all-false partial interpretation over n atoms.
func NewPartial(n int) Partial {
	return Partial{T: bitset.New(n), U: bitset.New(n)}
}

// N returns the number of atoms.
func (p Partial) N() int { return p.T.Len() }

// Value returns the truth value of atom a.
func (p Partial) Value(a Atom) TruthValue {
	switch {
	case p.T.Test(int(a)):
		return True
	case p.U.Test(int(a)):
		return Undefined
	default:
		return False
	}
}

// SetValue assigns truth value t to atom a.
func (p Partial) SetValue(a Atom, t TruthValue) {
	p.T.SetTo(int(a), t == True)
	p.U.SetTo(int(a), t == Undefined)
}

// LitValue returns the truth value of literal l (3-valued negation
// swaps True and False and fixes Undefined).
func (p Partial) LitValue(l Lit) TruthValue {
	v := p.Value(l.Atom())
	if l.IsPos() {
		return v
	}
	return True - v
}

// Clone returns an independent copy.
func (p Partial) Clone() Partial { return Partial{T: p.T.Clone(), U: p.U.Clone()} }

// Equal reports whether p and q assign the same value to every atom.
func (p Partial) Equal(q Partial) bool { return p.T.Equal(q.T) && p.U.Equal(q.U) }

// IsTotal reports whether no atom is Undefined.
func (p Partial) IsTotal() bool { return p.U.IsEmpty() }

// Total returns the two-valued interpretation of a total p.
// It panics if p has undefined atoms.
func (p Partial) Total() Interp {
	if !p.IsTotal() {
		panic("logic: Total on partial interpretation with undefined atoms")
	}
	return Interp{True: p.T.Clone()}
}

// TruthLeq reports whether p ≤ q in the truth ordering extended
// pointwise: p(a) ≤ q(a) for every atom a. This is the ordering under
// which partial stable models are required to be minimal.
func (p Partial) TruthLeq(q Partial) bool {
	n := p.N()
	for i := 0; i < n; i++ {
		if p.Value(Atom(i)) > q.Value(Atom(i)) {
			return false
		}
	}
	return true
}

// Key returns a map key identifying the assignment.
func (p Partial) Key() string { return p.T.Key() + "|" + p.U.Key() }

// String renders the assignment using vocabulary v, e.g. "{a=true, b=undef}".
// False atoms are omitted.
func (p Partial) String(v *Vocabulary) string {
	var parts []string
	n := p.N()
	for i := 0; i < n; i++ {
		switch p.Value(Atom(i)) {
		case True:
			parts = append(parts, v.Name(Atom(i))+"=true")
		case Undefined:
			parts = append(parts, v.Name(Atom(i))+"=undef")
		}
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
