package logic

// Cardinality encodings (sequential counter, Sinz 2005). Used by the
// P^Σ₂ᵖ[O(log n)] inference algorithm, whose Σ₂ᵖ queries assert
// "at least k of these atoms are selected".

// AtLeastK returns clauses enforcing that at least k of the given
// literals are true, interning auxiliary counter atoms into voc.
// k ≤ 0 yields no clauses; k > len(lits) yields the empty clause
// (unsatisfiable).
func AtLeastK(lits []Lit, k int, voc *Vocabulary) CNF {
	if k <= 0 {
		return nil
	}
	if k > len(lits) {
		return CNF{{}}
	}
	// At-least-k over lits ⟺ at-most-(n-k) over negations.
	neg := make([]Lit, len(lits))
	for i, l := range lits {
		neg[i] = l.Neg()
	}
	return AtMostK(neg, len(lits)-k, voc)
}

// AtMostK returns clauses enforcing that at most k of the given
// literals are true (sequential counter encoding), interning auxiliary
// atoms into voc. k ≥ len(lits) yields no clauses; k < 0 yields the
// empty clause.
func AtMostK(lits []Lit, k int, voc *Vocabulary) CNF {
	n := len(lits)
	if k >= n {
		return nil
	}
	if k < 0 {
		return CNF{{}}
	}
	if k == 0 {
		out := make(CNF, n)
		for i, l := range lits {
			out[i] = Clause{l.Neg()}
		}
		return out
	}
	// r[i][j] ⇔ at least j+1 of lits[0..i] are true (j < k).
	r := make([][]Lit, n)
	for i := range r {
		r[i] = make([]Lit, k)
		for j := range r[i] {
			r[i][j] = PosLit(voc.FreshNamed("_card"))
		}
	}
	var out CNF
	// Base: lits[0] → r[0][0]; ¬r[0][j] for j ≥ 1.
	out = append(out, Clause{lits[0].Neg(), r[0][0]})
	for j := 1; j < k; j++ {
		out = append(out, Clause{r[0][j].Neg()})
	}
	for i := 1; i < n; i++ {
		// lits[i] → r[i][0]; r[i-1][j] → r[i][j]
		out = append(out, Clause{lits[i].Neg(), r[i][0]})
		for j := 0; j < k; j++ {
			out = append(out, Clause{r[i-1][j].Neg(), r[i][j]})
		}
		// lits[i] ∧ r[i-1][j-1] → r[i][j]
		for j := 1; j < k; j++ {
			out = append(out, Clause{lits[i].Neg(), r[i-1][j-1].Neg(), r[i][j]})
		}
		// Overflow: lits[i] ∧ r[i-1][k-1] → ⊥
		out = append(out, Clause{lits[i].Neg(), r[i-1][k-1].Neg()})
	}
	return out
}
