package logic

import (
	"fmt"
	"strings"
)

// Op identifies a formula node kind.
type Op uint8

// Formula node kinds.
const (
	OpAtom  Op = iota // leaf: propositional variable
	OpTrue            // constant ⊤
	OpFalse           // constant ⊥
	OpNot             // ¬φ
	OpAnd             // φ₁ ∧ … ∧ φₖ
	OpOr              // φ₁ ∨ … ∨ φₖ
	OpImpl            // φ → ψ
	OpEquiv           // φ ↔ ψ
)

// Formula is a node of a propositional formula AST. Formulas are
// immutable once built; the constructor functions below perform light
// simplification (flattening of nested ∧/∨, constant folding of ⊤/⊥).
type Formula struct {
	Op   Op
	A    Atom       // valid when Op == OpAtom
	Args []*Formula // operands for Not/And/Or/Impl/Equiv
}

var (
	trueFormula  = &Formula{Op: OpTrue}
	falseFormula = &Formula{Op: OpFalse}
)

// TrueF returns the constant-true formula.
func TrueF() *Formula { return trueFormula }

// FalseF returns the constant-false formula.
func FalseF() *Formula { return falseFormula }

// AtomF returns the formula consisting of the single atom a.
func AtomF(a Atom) *Formula { return &Formula{Op: OpAtom, A: a} }

// LitF returns the formula for literal l (an atom or its negation).
func LitF(l Lit) *Formula {
	if l.IsPos() {
		return AtomF(l.Atom())
	}
	return Not(AtomF(l.Atom()))
}

// Not returns ¬f, folding double negation and constants.
func Not(f *Formula) *Formula {
	switch f.Op {
	case OpTrue:
		return falseFormula
	case OpFalse:
		return trueFormula
	case OpNot:
		return f.Args[0]
	}
	return &Formula{Op: OpNot, Args: []*Formula{f}}
}

// And returns the conjunction of fs, flattening nested conjunctions and
// folding constants. And() is ⊤.
func And(fs ...*Formula) *Formula { return nary(OpAnd, fs) }

// Or returns the disjunction of fs, flattening nested disjunctions and
// folding constants. Or() is ⊥.
func Or(fs ...*Formula) *Formula { return nary(OpOr, fs) }

func nary(op Op, fs []*Formula) *Formula {
	var unit, zero *Formula
	if op == OpAnd {
		unit, zero = trueFormula, falseFormula
	} else {
		unit, zero = falseFormula, trueFormula
	}
	args := make([]*Formula, 0, len(fs))
	for _, f := range fs {
		switch {
		case f == nil || f.Op == unit.Op:
			continue
		case f.Op == zero.Op:
			return zero
		case f.Op == op:
			args = append(args, f.Args...)
		default:
			args = append(args, f)
		}
	}
	switch len(args) {
	case 0:
		return unit
	case 1:
		return args[0]
	}
	return &Formula{Op: op, Args: args}
}

// Implies returns f → g.
func Implies(f, g *Formula) *Formula {
	return &Formula{Op: OpImpl, Args: []*Formula{f, g}}
}

// Equiv returns f ↔ g.
func Equiv(f, g *Formula) *Formula {
	return &Formula{Op: OpEquiv, Args: []*Formula{f, g}}
}

// Eval returns the truth value of f under the total interpretation m.
func (f *Formula) Eval(m Interp) bool {
	switch f.Op {
	case OpAtom:
		return m.Holds(f.A)
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpNot:
		return !f.Args[0].Eval(m)
	case OpAnd:
		for _, g := range f.Args {
			if !g.Eval(m) {
				return false
			}
		}
		return true
	case OpOr:
		for _, g := range f.Args {
			if g.Eval(m) {
				return true
			}
		}
		return false
	case OpImpl:
		return !f.Args[0].Eval(m) || f.Args[1].Eval(m)
	case OpEquiv:
		return f.Args[0].Eval(m) == f.Args[1].Eval(m)
	}
	panic(fmt.Sprintf("logic: unknown formula op %d", f.Op))
}

// Eval3 returns the 3-valued (Kleene) truth value of f under the partial
// interpretation p. Used by PDSM formula inference.
func (f *Formula) Eval3(p Partial) TruthValue {
	switch f.Op {
	case OpAtom:
		return p.Value(f.A)
	case OpTrue:
		return True
	case OpFalse:
		return False
	case OpNot:
		return True - f.Args[0].Eval3(p)
	case OpAnd:
		v := True
		for _, g := range f.Args {
			if w := g.Eval3(p); w < v {
				v = w
			}
		}
		return v
	case OpOr:
		v := False
		for _, g := range f.Args {
			if w := g.Eval3(p); w > v {
				v = w
			}
		}
		return v
	case OpImpl:
		a, b := f.Args[0].Eval3(p), f.Args[1].Eval3(p)
		if na := True - a; na > b {
			b = na
		}
		return b
	case OpEquiv:
		a, b := f.Args[0].Eval3(p), f.Args[1].Eval3(p)
		if a == Undefined || b == Undefined {
			return Undefined
		}
		if a == b {
			return True
		}
		return False
	}
	panic(fmt.Sprintf("logic: unknown formula op %d", f.Op))
}

// Atoms adds every atom occurring in f to dst and returns dst
// (allocating it if nil).
func (f *Formula) Atoms(dst map[Atom]bool) map[Atom]bool {
	if dst == nil {
		dst = make(map[Atom]bool)
	}
	var walk func(g *Formula)
	walk = func(g *Formula) {
		if g.Op == OpAtom {
			dst[g.A] = true
			return
		}
		for _, h := range g.Args {
			walk(h)
		}
	}
	walk(f)
	return dst
}

// Size returns the number of AST nodes in f.
func (f *Formula) Size() int {
	n := 1
	for _, g := range f.Args {
		n += g.Size()
	}
	return n
}

// String renders the formula in the parser's concrete syntax using
// vocabulary v.
func (f *Formula) String(v *Vocabulary) string {
	var b strings.Builder
	f.render(&b, v, 0)
	return b.String()
}

// precedence levels: Equiv 1, Impl 2, Or 3, And 4, Not 5.
func (f *Formula) render(b *strings.Builder, v *Vocabulary, parent int) {
	paren := func(level int, inner func()) {
		if level < parent {
			b.WriteByte('(')
			inner()
			b.WriteByte(')')
		} else {
			inner()
		}
	}
	switch f.Op {
	case OpAtom:
		b.WriteString(v.Name(f.A))
	case OpTrue:
		b.WriteString("true")
	case OpFalse:
		b.WriteString("false")
	case OpNot:
		b.WriteString("-")
		f.Args[0].render(b, v, 5)
	case OpAnd:
		paren(4, func() { f.renderList(b, v, " & ", 4) })
	case OpOr:
		paren(3, func() { f.renderList(b, v, " | ", 3) })
	case OpImpl:
		paren(2, func() {
			f.Args[0].render(b, v, 3)
			b.WriteString(" -> ")
			f.Args[1].render(b, v, 2)
		})
	case OpEquiv:
		paren(1, func() {
			f.Args[0].render(b, v, 2)
			b.WriteString(" <-> ")
			f.Args[1].render(b, v, 2)
		})
	}
}

func (f *Formula) renderList(b *strings.Builder, v *Vocabulary, sep string, level int) {
	for i, g := range f.Args {
		if i > 0 {
			b.WriteString(sep)
		}
		g.render(b, v, level+1)
	}
}
