// Package logic provides the propositional substrate of the library:
// a vocabulary of named atoms, literals, (partial and total)
// interpretations, a formula AST with parser and evaluator, and clausal
// form conversion (including Tseitin encoding) for handing formulas to
// the SAT solver.
//
// Everything is propositional, matching the paper's setting: databases
// and formulas over a finite set V of propositional variables.
package logic

import (
	"fmt"
	"sort"
)

// Atom is the index of a propositional variable in a Vocabulary.
// Atoms are dense, starting at 0.
type Atom int

// Lit is a propositional literal: a positive or negated atom.
// Encoded as 2*atom for the positive literal and 2*atom+1 for the
// negative one (the usual solver encoding).
type Lit int

// PosLit returns the positive literal of a.
func PosLit(a Atom) Lit { return Lit(2 * a) }

// NegLit returns the negative literal of a.
func NegLit(a Atom) Lit { return Lit(2*a + 1) }

// MkLit returns the literal of a with the given sign (true = positive).
func MkLit(a Atom, positive bool) Lit {
	if positive {
		return PosLit(a)
	}
	return NegLit(a)
}

// Atom returns the atom of the literal.
func (l Lit) Atom() Atom { return Atom(l >> 1) }

// IsPos reports whether the literal is positive.
func (l Lit) IsPos() bool { return l&1 == 0 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Vocabulary maps atom names to dense atom indices and back.
// The zero value is empty and ready to use via New; a Vocabulary is
// append-only: atoms are never removed, so indices remain stable.
type Vocabulary struct {
	names []string
	index map[string]Atom
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]Atom)}
}

// Intern returns the atom for name, creating it if necessary.
func (v *Vocabulary) Intern(name string) Atom {
	if a, ok := v.index[name]; ok {
		return a
	}
	a := Atom(len(v.names))
	v.names = append(v.names, name)
	v.index[name] = a
	return a
}

// Lookup returns the atom for name and whether it exists.
func (v *Vocabulary) Lookup(name string) (Atom, bool) {
	a, ok := v.index[name]
	return a, ok
}

// Name returns the name of atom a. It panics if a is out of range.
func (v *Vocabulary) Name(a Atom) string { return v.names[a] }

// Size returns the number of atoms in the vocabulary.
func (v *Vocabulary) Size() int { return len(v.names) }

// Names returns the atom names in index order. The returned slice is a
// copy and may be modified by the caller.
func (v *Vocabulary) Names() []string {
	out := make([]string, len(v.names))
	copy(out, v.names)
	return out
}

// SortedNames returns the atom names in lexicographic order.
func (v *Vocabulary) SortedNames() []string {
	out := v.Names()
	sort.Strings(out)
	return out
}

// Clone returns an independent copy of the vocabulary.
func (v *Vocabulary) Clone() *Vocabulary {
	c := NewVocabulary()
	for _, n := range v.names {
		c.Intern(n)
	}
	return c
}

// LitString renders a literal using the vocabulary ("x" or "-x").
func (v *Vocabulary) LitString(l Lit) string {
	if l.IsPos() {
		return v.Name(l.Atom())
	}
	return "-" + v.Name(l.Atom())
}

// FreshNamed interns a new atom whose name is based on prefix and is
// guaranteed not to collide with an existing atom.
func (v *Vocabulary) FreshNamed(prefix string) Atom {
	name := prefix
	for i := 0; ; i++ {
		if _, ok := v.index[name]; !ok {
			return v.Intern(name)
		}
		name = fmt.Sprintf("%s_%d", prefix, i)
	}
}
