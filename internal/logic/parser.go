package logic

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseFormula parses a propositional formula in the library's concrete
// syntax and interns its atoms into v.
//
// Grammar (loosest-binding first):
//
//	formula := equiv
//	equiv   := impl ( "<->" impl )*
//	impl    := or ( "->" impl )?            (right associative)
//	or      := and ( "|" and )*
//	and     := unary ( ("&" | ",") unary )*
//	unary   := ("-" | "~" | "!" | "not") unary | primary
//	primary := "true" | "false" | atom | "(" formula ")"
//	atom    := ident [ "(" ident ("," ident)* ")" ]
//
// Identifiers start with a letter or underscore and continue with
// letters, digits, underscores, apostrophes and dots. An identifier
// immediately followed by "(" denotes a ground first-order atom such
// as "edge(a,b)" — the application is a single propositional atom
// under the grounder's naming convention.
func ParseFormula(input string, v *Vocabulary) (*Formula, error) {
	p := &formulaParser{src: input, voc: v}
	f, err := p.parseEquiv()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, p.errorf("unexpected trailing input %q", p.src[p.pos:])
	}
	return f, nil
}

// MustParseFormula is ParseFormula but panics on error; for tests and
// examples with literal formulas.
func MustParseFormula(input string, v *Vocabulary) *Formula {
	f, err := ParseFormula(input, v)
	if err != nil {
		panic(err)
	}
	return f
}

type formulaParser struct {
	src string
	pos int
	voc *Vocabulary
}

func (p *formulaParser) errorf(format string, args ...any) error {
	return fmt.Errorf("formula: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *formulaParser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

// peekOp reports whether the next token is the given operator and
// consumes it if so. Operators are matched longest-first by the caller.
func (p *formulaParser) eat(op string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], op) {
		// "-" must not consume the start of "->".
		if op == "-" && strings.HasPrefix(p.src[p.pos:], "->") {
			return false
		}
		p.pos += len(op)
		return true
	}
	return false
}

// eatWord consumes the given keyword if it appears as a whole word.
func (p *formulaParser) eatWord(w string) bool {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], w) {
		return false
	}
	end := p.pos + len(w)
	if end < len(p.src) && isIdentChar(rune(p.src[end])) {
		return false
	}
	p.pos = end
	return true
}

func (p *formulaParser) parseEquiv() (*Formula, error) {
	f, err := p.parseImpl()
	if err != nil {
		return nil, err
	}
	for p.eat("<->") {
		g, err := p.parseImpl()
		if err != nil {
			return nil, err
		}
		f = Equiv(f, g)
	}
	return f, nil
}

func (p *formulaParser) parseImpl() (*Formula, error) {
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.eat("->") {
		g, err := p.parseImpl()
		if err != nil {
			return nil, err
		}
		return Implies(f, g), nil
	}
	return f, nil
}

func (p *formulaParser) parseOr() (*Formula, error) {
	f, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	args := []*Formula{f}
	for p.eat("|") {
		g, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		args = append(args, g)
	}
	if len(args) == 1 {
		return f, nil
	}
	return Or(args...), nil
}

func (p *formulaParser) parseAnd() (*Formula, error) {
	f, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	args := []*Formula{f}
	for p.eat("&") || p.eat(",") {
		g, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		args = append(args, g)
	}
	if len(args) == 1 {
		return f, nil
	}
	return And(args...), nil
}

func (p *formulaParser) parseUnary() (*Formula, error) {
	if p.eat("-") || p.eat("~") || p.eat("!") || p.eatWord("not") {
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	}
	return p.parsePrimary()
}

func (p *formulaParser) parsePrimary() (*Formula, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, p.errorf("unexpected end of input")
	}
	if p.eat("(") {
		f, err := p.parseEquiv()
		if err != nil {
			return nil, err
		}
		if !p.eat(")") {
			return nil, p.errorf("missing ')'")
		}
		return f, nil
	}
	if p.eatWord("true") {
		return TrueF(), nil
	}
	if p.eatWord("false") {
		return FalseF(), nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Ground datalog atoms carry an argument list: "edge(a,b)". The
	// whole application is one propositional atom whose canonical name
	// strips interior whitespace, matching the grounder's convention.
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		args := []string{}
		for {
			arg, err := p.ident()
			if err != nil {
				return nil, p.errorf("expected argument in atom %s(...)", name)
			}
			args = append(args, arg)
			if p.eat(",") {
				continue
			}
			break
		}
		if !p.eat(")") {
			return nil, p.errorf("missing ')' in atom %s(...)", name)
		}
		name = name + "(" + strings.Join(args, ",") + ")"
	}
	return AtomF(p.voc.Intern(name)), nil
}

func (p *formulaParser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.pos >= len(p.src) || !isIdentStart(rune(p.src[p.pos])) {
		return "", p.errorf("expected identifier")
	}
	for p.pos < len(p.src) && isIdentChar(rune(p.src[p.pos])) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentChar(r rune) bool {
	return r == '_' || r == '\'' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
