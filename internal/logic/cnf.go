package logic

// CNF conversion. Two strategies are provided:
//
//   - ToCNFTseitin: equisatisfiable conversion introducing one fresh
//     definition atom per connective node. Linear size; this is what all
//     SAT-oracle membership algorithms use.
//   - ToCNFDirect: equivalent (no fresh atoms) conversion by NNF +
//     distribution. Exponential in the worst case; used by code that
//     needs formulas over the original vocabulary only (e.g. model
//     enumeration restricted to V) and by tests as an independent
//     reference for the Tseitin encoding.

// Clause is a disjunction of literals (SAT-solver clause, not a database
// clause — see package db for the latter).
type Clause []Lit

// CNF is a conjunction of clauses.
type CNF []Clause

// CloneCNF returns a deep copy of c.
func CloneCNF(c CNF) CNF {
	out := make(CNF, len(c))
	for i, cl := range c {
		out[i] = append(Clause(nil), cl...)
	}
	return out
}

// EvalClause reports whether m satisfies the clause (some literal true).
func EvalClause(c Clause, m Interp) bool {
	for _, l := range c {
		if m.Sat(l) {
			return true
		}
	}
	return false
}

// EvalCNF reports whether m satisfies every clause of c.
func EvalCNF(c CNF, m Interp) bool {
	for _, cl := range c {
		if !EvalClause(cl, m) {
			return false
		}
	}
	return true
}

// nnf converts f to negation normal form. neg indicates whether f is
// under an odd number of negations. Implications and equivalences are
// expanded.
func nnf(f *Formula, neg bool) *Formula {
	switch f.Op {
	case OpAtom:
		if neg {
			return Not(f)
		}
		return f
	case OpTrue:
		if neg {
			return FalseF()
		}
		return TrueF()
	case OpFalse:
		if neg {
			return TrueF()
		}
		return FalseF()
	case OpNot:
		return nnf(f.Args[0], !neg)
	case OpAnd, OpOr:
		op := f.Op
		if neg {
			if op == OpAnd {
				op = OpOr
			} else {
				op = OpAnd
			}
		}
		args := make([]*Formula, len(f.Args))
		for i, g := range f.Args {
			args[i] = nnf(g, neg)
		}
		return nary(op, args)
	case OpImpl:
		// f → g  ≡  ¬f ∨ g
		return nnf(Or(Not(f.Args[0]), f.Args[1]), neg)
	case OpEquiv:
		// f ↔ g  ≡  (f∧g) ∨ (¬f∧¬g)
		a, b := f.Args[0], f.Args[1]
		return nnf(Or(And(a, b), And(Not(a), Not(b))), neg)
	}
	panic("logic: nnf: unknown op")
}

// NNF returns the negation normal form of f (negations only on atoms,
// connectives only ∧/∨ and constants).
func NNF(f *Formula) *Formula { return nnf(f, false) }

// ToCNFDirect converts f to an equivalent CNF over the same vocabulary
// by NNF and distribution. Worst-case exponential; intended for
// formulas of modest size.
func ToCNFDirect(f *Formula) CNF {
	return distribute(NNF(f))
}

func distribute(f *Formula) CNF {
	switch f.Op {
	case OpTrue:
		return CNF{}
	case OpFalse:
		return CNF{{}} // the empty clause: unsatisfiable
	case OpAtom:
		return CNF{{PosLit(f.A)}}
	case OpNot: // in NNF the operand is an atom
		return CNF{{NegLit(f.Args[0].A)}}
	case OpAnd:
		var out CNF
		for _, g := range f.Args {
			out = append(out, distribute(g)...)
		}
		return out
	case OpOr:
		// Cross product of the operand CNFs.
		out := CNF{{}}
		for _, g := range f.Args {
			gc := distribute(g)
			next := make(CNF, 0, len(out)*len(gc))
			for _, a := range out {
				for _, b := range gc {
					cl := make(Clause, 0, len(a)+len(b))
					cl = append(cl, a...)
					cl = append(cl, b...)
					if c, taut := normalizeClause(cl); !taut {
						next = append(next, c)
					}
				}
			}
			out = next
		}
		return out
	}
	panic("logic: distribute: formula not in NNF")
}

// normalizeClause sorts and deduplicates the clause and reports whether
// it is a tautology (contains a literal and its negation).
func normalizeClause(c Clause) (Clause, bool) {
	seen := make(map[Lit]bool, len(c))
	out := c[:0]
	for _, l := range c {
		if seen[l.Neg()] {
			return nil, true
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out, false
}

// Tseitin converts f to an equisatisfiable CNF. Fresh atoms are
// interned into v with the prefix "_t"; the returned root literal is
// asserted as a unit clause, so the CNF is satisfiable iff f is, and
// every model of the CNF restricted to the original vocabulary is a
// model of f (and every model of f extends to a model of the CNF).
func Tseitin(f *Formula, v *Vocabulary) CNF {
	t := &tseitin{voc: v}
	root := t.lit(NNF(f))
	t.out = append(t.out, Clause{root})
	return t.out
}

// TseitinNeg returns a CNF equisatisfiable with ¬f (convenience for
// validity checking: f is valid iff TseitinNeg(f) is unsatisfiable).
func TseitinNeg(f *Formula, v *Vocabulary) CNF {
	return Tseitin(Not(f), v)
}

type tseitin struct {
	voc *Vocabulary
	out CNF
}

// lit returns a literal equivalent (in the defining theory) to the NNF
// formula g, emitting definition clauses as needed. Because g is in NNF
// only the ⇐ direction ("def → g") of each definition is required for
// equisatisfiability, which halves the clause count (Plaisted–Greenbaum).
func (t *tseitin) lit(g *Formula) Lit {
	switch g.Op {
	case OpAtom:
		return PosLit(g.A)
	case OpNot:
		return NegLit(g.Args[0].A)
	case OpTrue:
		a := t.voc.FreshNamed("_t")
		t.out = append(t.out, Clause{PosLit(a)})
		return PosLit(a)
	case OpFalse:
		a := t.voc.FreshNamed("_t")
		t.out = append(t.out, Clause{NegLit(a)})
		return PosLit(a)
	case OpAnd:
		d := PosLit(t.voc.FreshNamed("_t"))
		for _, h := range g.Args {
			t.out = append(t.out, Clause{d.Neg(), t.lit(h)})
		}
		return d
	case OpOr:
		d := PosLit(t.voc.FreshNamed("_t"))
		cl := Clause{d.Neg()}
		for _, h := range g.Args {
			cl = append(cl, t.lit(h))
		}
		t.out = append(t.out, cl)
		return d
	}
	panic("logic: tseitin: formula not in NNF")
}
