package logic

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	cnf, voc, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if voc.Size() != 3 || len(cnf) != 2 {
		t.Fatalf("parsed %d vars %d clauses", voc.Size(), len(cnf))
	}
	if cnf[0][0] != PosLit(0) || cnf[0][1] != NegLit(1) {
		t.Fatalf("first clause wrong: %v", cnf[0])
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, bad := range []string{
		"p cnf x 2\n1 0\n",
		"p dnf 2 2\n1 0\n",
		"p cnf 1 1\n2 0\n", // literal out of range
		"p cnf 2 1\nfoo 0\n",
	} {
		if _, _, err := ParseDIMACS(strings.NewReader(bad)); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestParseDIMACSWithoutHeader(t *testing.T) {
	cnf, voc, err := ParseDIMACS(strings.NewReader("1 2 0\n-1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if voc.Size() != 2 || len(cnf) != 2 {
		t.Fatalf("headerless parse wrong: %d vars %d clauses", voc.Size(), len(cnf))
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(8)
		var cnf CNF
		for i := 0; i < 1+rng.Intn(10); i++ {
			var cl Clause
			for j := 0; j < 1+rng.Intn(4); j++ {
				cl = append(cl, MkLit(Atom(rng.Intn(n)), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, cnf, n); err != nil {
			t.Fatal(err)
		}
		got, voc, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if voc.Size() != n || len(got) != len(cnf) {
			t.Fatalf("iter %d: round trip shape wrong", iter)
		}
		for i := range cnf {
			if len(got[i]) != len(cnf[i]) {
				t.Fatalf("iter %d: clause %d length changed", iter, i)
			}
			for j := range cnf[i] {
				if got[i][j] != cnf[i][j] {
					t.Fatalf("iter %d: clause %d literal %d changed", iter, i, j)
				}
			}
		}
	}
}
