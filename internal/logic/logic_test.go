package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("a")
	b := v.Intern("b")
	if a == b || v.Size() != 2 {
		t.Fatalf("intern broken")
	}
	if got := v.Intern("a"); got != a {
		t.Fatalf("re-intern must return same atom")
	}
	if _, ok := v.Lookup("zzz"); ok {
		t.Fatalf("lookup of unknown must fail")
	}
	if v.Name(a) != "a" {
		t.Fatalf("name wrong")
	}
	f := v.FreshNamed("a")
	if v.Name(f) == "a" {
		t.Fatalf("FreshNamed must avoid collisions")
	}
	c := v.Clone()
	c.Intern("new")
	if v.Size() == c.Size() {
		t.Fatalf("clone must be independent")
	}
}

func TestLitOps(t *testing.T) {
	a := Atom(3)
	p, n := PosLit(a), NegLit(a)
	if p.Atom() != a || n.Atom() != a {
		t.Fatalf("atom extraction wrong")
	}
	if !p.IsPos() || n.IsPos() {
		t.Fatalf("sign wrong")
	}
	if p.Neg() != n || n.Neg() != p {
		t.Fatalf("negation wrong")
	}
	if MkLit(a, true) != p || MkLit(a, false) != n {
		t.Fatalf("MkLit wrong")
	}
}

func TestInterp(t *testing.T) {
	m := InterpOf(4, 0, 2)
	if !m.Holds(0) || m.Holds(1) || !m.Holds(2) {
		t.Fatalf("holds wrong")
	}
	if !m.Sat(PosLit(0)) || !m.Sat(NegLit(1)) || m.Sat(NegLit(0)) {
		t.Fatalf("sat wrong")
	}
	o := m.Clone()
	o.True.Set(1)
	if m.Holds(1) {
		t.Fatalf("clone aliases")
	}
	if !InterpOf(3, 0).ProperSubsetOf(InterpOf(3, 0, 1)) {
		t.Fatalf("subset wrong")
	}
}

func TestInterpString(t *testing.T) {
	v := NewVocabulary()
	v.Intern("b")
	v.Intern("a")
	m := InterpOf(2, 0, 1)
	if got := m.String(v); got != "{a, b}" {
		t.Fatalf("String = %q", got)
	}
}

func TestParseAndEval(t *testing.T) {
	v := NewVocabulary()
	f := MustParseFormula("(a -> b) & (-b | c) & -(d <-> e)", v)
	cases := []struct {
		atoms []Atom
		want  bool
	}{
		{[]Atom{}, false},                  // d<->e both false → ¬(...)=false
		{atomsOf(v, "d"), true},            // a→b ✓ (¬a), ¬b ✓, d≠e ✓
		{atomsOf(v, "a", "d"), false},      // a→b fails
		{atomsOf(v, "a", "b", "d"), false}, // ¬b∨c fails
		{atomsOf(v, "a", "b", "c", "e"), true},
	}
	for i, c := range cases {
		m := InterpOf(v.Size(), c.atoms...)
		if got := f.Eval(m); got != c.want {
			t.Fatalf("case %d: eval = %v, want %v", i, got, c.want)
		}
	}
}

func atomsOf(v *Vocabulary, names ...string) []Atom {
	out := make([]Atom, len(names))
	for i, n := range names {
		a, ok := v.Lookup(n)
		if !ok {
			panic("unknown atom " + n)
		}
		out[i] = a
	}
	return out
}

func TestParseErrors(t *testing.T) {
	v := NewVocabulary()
	for _, bad := range []string{"", "(a", "a &", "a b", "->a", "a ->", "()"} {
		if _, err := ParseFormula(bad, v); err == nil {
			t.Fatalf("%q should fail to parse", bad)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	v := NewVocabulary()
	// -a & b | c -> d  ≡  (((-a & b) | c) -> d)
	f := MustParseFormula("-a & b | c -> d", v)
	if f.Op != OpImpl {
		t.Fatalf("top op should be ->, got %d", f.Op)
	}
	if f.Args[0].Op != OpOr {
		t.Fatalf("lhs should be |")
	}
}

func TestParseImplRightAssoc(t *testing.T) {
	v := NewVocabulary()
	f := MustParseFormula("a -> b -> c", v)
	if f.Op != OpImpl || f.Args[1].Op != OpImpl {
		t.Fatalf("-> must be right associative")
	}
}

func TestRenderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	v := NewVocabulary()
	for i := 0; i < 6; i++ {
		v.Intern(string(rune('a' + i)))
	}
	for iter := 0; iter < 300; iter++ {
		f := randomFormula(rng, 6, 4)
		s := f.String(v)
		g, err := ParseFormula(s, v)
		if err != nil {
			t.Fatalf("iter %d: rendered %q does not parse: %v", iter, s, err)
		}
		// Semantic round trip: equal truth tables.
		for bits := 0; bits < 1<<6; bits++ {
			m := NewInterp(v.Size())
			for j := 0; j < 6; j++ {
				m.True.SetTo(j, bits&(1<<uint(j)) != 0)
			}
			if f.Eval(m) != g.Eval(m) {
				t.Fatalf("iter %d: round trip changed semantics of %q", iter, s)
			}
		}
	}
}

func randomFormula(rng *rand.Rand, n, depth int) *Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		return AtomF(Atom(rng.Intn(n)))
	}
	l := randomFormula(rng, n, depth-1)
	r := randomFormula(rng, n, depth-1)
	switch rng.Intn(5) {
	case 0:
		return And(l, r)
	case 1:
		return Or(l, r)
	case 2:
		return Implies(l, r)
	case 3:
		return Equiv(l, r)
	default:
		return Not(l)
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	for iter := 0; iter < 300; iter++ {
		f := randomFormula(rng, 5, 4)
		g := NNF(f)
		assertOnlyNNFOps(t, g)
		for bits := 0; bits < 1<<5; bits++ {
			m := NewInterp(5)
			for j := 0; j < 5; j++ {
				m.True.SetTo(j, bits&(1<<uint(j)) != 0)
			}
			if f.Eval(m) != g.Eval(m) {
				t.Fatalf("iter %d: NNF changed semantics", iter)
			}
		}
	}
}

func assertOnlyNNFOps(t *testing.T, f *Formula) {
	t.Helper()
	switch f.Op {
	case OpAtom, OpTrue, OpFalse:
	case OpNot:
		if f.Args[0].Op != OpAtom {
			t.Fatalf("NNF has negation above non-atom")
		}
	case OpAnd, OpOr:
		for _, g := range f.Args {
			assertOnlyNNFOps(t, g)
		}
	default:
		t.Fatalf("NNF contains op %d", f.Op)
	}
}

func TestToCNFDirectEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	for iter := 0; iter < 300; iter++ {
		f := randomFormula(rng, 5, 3)
		cnf := ToCNFDirect(f)
		for bits := 0; bits < 1<<5; bits++ {
			m := NewInterp(5)
			for j := 0; j < 5; j++ {
				m.True.SetTo(j, bits&(1<<uint(j)) != 0)
			}
			if f.Eval(m) != EvalCNF(cnf, m) {
				t.Fatalf("iter %d: direct CNF not equivalent", iter)
			}
		}
	}
}

func TestTseitinEquisatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	for iter := 0; iter < 300; iter++ {
		f := randomFormula(rng, 4, 3)
		v := NewVocabulary()
		for i := 0; i < 4; i++ {
			v.Intern(string(rune('a' + i)))
		}
		cnf := Tseitin(f, v)
		n := v.Size()
		// Brute-force satisfiability of both.
		fSat := false
		for bits := 0; bits < 1<<4; bits++ {
			m := NewInterp(4)
			for j := 0; j < 4; j++ {
				m.True.SetTo(j, bits&(1<<uint(j)) != 0)
			}
			if f.Eval(m) {
				fSat = true
				break
			}
		}
		cnfSat := false
		if n <= 22 {
			for bits := 0; bits < 1<<uint(n); bits++ {
				m := NewInterp(n)
				for j := 0; j < n; j++ {
					m.True.SetTo(j, bits&(1<<uint(j)) != 0)
				}
				if EvalCNF(cnf, m) {
					cnfSat = true
					// Projection property: the original formula holds
					// under the model restricted to its atoms.
					if !f.Eval(m) {
						t.Fatalf("iter %d: Tseitin model does not satisfy formula", iter)
					}
					break
				}
			}
		} else {
			continue
		}
		if fSat != cnfSat {
			t.Fatalf("iter %d: equisatisfiability broken (f=%v cnf=%v)", iter, fSat, cnfSat)
		}
	}
}

func TestEval3KleeneTables(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("a")
	b := v.Intern("b")
	p := NewPartial(2)
	p.SetValue(a, Undefined)
	p.SetValue(b, True)
	if got := AtomF(a).Eval3(p); got != Undefined {
		t.Fatalf("atom eval3 = %v", got)
	}
	if got := Not(AtomF(a)).Eval3(p); got != Undefined {
		t.Fatalf("¬undef = %v", got)
	}
	if got := And(AtomF(a), AtomF(b)).Eval3(p); got != Undefined {
		t.Fatalf("undef ∧ true = %v", got)
	}
	if got := Or(AtomF(a), AtomF(b)).Eval3(p); got != True {
		t.Fatalf("undef ∨ true = %v", got)
	}
	if got := Implies(AtomF(a), AtomF(b)).Eval3(p); got != True {
		t.Fatalf("undef → true = %v", got)
	}
	if got := Equiv(AtomF(a), AtomF(b)).Eval3(p); got != Undefined {
		t.Fatalf("undef ↔ true = %v", got)
	}
	p.SetValue(b, False)
	if got := And(AtomF(a), AtomF(b)).Eval3(p); got != False {
		t.Fatalf("undef ∧ false = %v", got)
	}
}

func TestEval3AgreesWithEvalOnTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(155))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(rng, 4, 3)
		bits := rng.Intn(16)
		m := NewInterp(4)
		p := NewPartial(4)
		for j := 0; j < 4; j++ {
			val := bits&(1<<uint(j)) != 0
			m.True.SetTo(j, val)
			if val {
				p.SetValue(Atom(j), True)
			}
		}
		want := False
		if f.Eval(m) {
			want = True
		}
		if got := f.Eval3(p); got != want {
			t.Fatalf("iter %d: Eval3 on total interp = %v, Eval = %v", iter, got, want)
		}
	}
}

func TestPartialOrdering(t *testing.T) {
	p := NewPartial(2)
	q := NewPartial(2)
	q.SetValue(0, Undefined)
	if !p.TruthLeq(q) || q.TruthLeq(p) {
		t.Fatalf("F < U ordering broken")
	}
	q.SetValue(0, True)
	if !p.TruthLeq(q) {
		t.Fatalf("F < T ordering broken")
	}
	p.SetValue(1, True)
	if p.TruthLeq(q) {
		t.Fatalf("incomparable assignments compared")
	}
}

func TestPartialTotal(t *testing.T) {
	p := NewPartial(2)
	p.SetValue(0, True)
	if !p.IsTotal() {
		t.Fatalf("no undefined atoms → total")
	}
	m := p.Total()
	if !m.Holds(0) || m.Holds(1) {
		t.Fatalf("Total conversion wrong")
	}
	p.SetValue(1, Undefined)
	defer func() {
		if recover() == nil {
			t.Fatalf("Total on partial must panic")
		}
	}()
	p.Total()
}

func TestCardinalityAtLeastK(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for k := 0; k <= n+1; k++ {
			v := NewVocabulary()
			lits := make([]Lit, n)
			for i := 0; i < n; i++ {
				lits[i] = PosLit(v.Intern(string(rune('a' + i))))
			}
			cnf := AtLeastK(lits, k, v)
			total := v.Size()
			if total > 20 {
				t.Skip("encoding too large for brute force")
			}
			for bits := 0; bits < 1<<uint(n); bits++ {
				count := 0
				for i := 0; i < n; i++ {
					if bits&(1<<uint(i)) != 0 {
						count++
					}
				}
				want := count >= k
				// Check satisfiability of cnf with first n vars fixed.
				got := extensionExists(cnf, n, total, bits)
				if got != want {
					t.Fatalf("n=%d k=%d bits=%b: got %v want %v", n, k, bits, got, want)
				}
			}
		}
	}
}

// extensionExists brute-forces whether the aux vars can be set to
// satisfy the CNF given the first n vars.
func extensionExists(cnf CNF, n, total, bits int) bool {
	aux := total - n
	for abits := 0; abits < 1<<uint(aux); abits++ {
		m := NewInterp(total)
		for i := 0; i < n; i++ {
			m.True.SetTo(i, bits&(1<<uint(i)) != 0)
		}
		for i := 0; i < aux; i++ {
			m.True.SetTo(n+i, abits&(1<<uint(i)) != 0)
		}
		if EvalCNF(cnf, m) {
			return true
		}
	}
	return false
}

func TestFormulaHelpers(t *testing.T) {
	v := NewVocabulary()
	a := v.Intern("a")
	if And().Op != OpTrue || Or().Op != OpFalse {
		t.Fatalf("empty connectives wrong")
	}
	if f := Not(Not(AtomF(a))); f.Op != OpAtom || f.A != a {
		t.Fatalf("double negation not folded")
	}
	if And(TrueF(), AtomF(a)).Op != OpAtom {
		t.Fatalf("⊤ not folded in ∧")
	}
	if Or(TrueF(), AtomF(a)).Op != OpTrue {
		t.Fatalf("⊤ not folded in ∨")
	}
	atoms := MustParseFormula("a & (b | -c)", v).Atoms(nil)
	if len(atoms) != 3 {
		t.Fatalf("Atoms found %d", len(atoms))
	}
	if MustParseFormula("a & b", v).Size() != 3 {
		t.Fatalf("Size wrong")
	}
}

// Property: ToCNFDirect and Tseitin agree on satisfiability.
func TestQuickCNFAgreement(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomFormula(rng, 4, 3)
		direct := ToCNFDirect(f)
		directSat := false
		for bits := 0; bits < 16 && !directSat; bits++ {
			m := NewInterp(4)
			for j := 0; j < 4; j++ {
				m.True.SetTo(j, bits&(1<<uint(j)) != 0)
			}
			directSat = EvalCNF(direct, m)
		}
		v := NewVocabulary()
		for i := 0; i < 4; i++ {
			v.Intern(string(rune('a' + i)))
		}
		ts := Tseitin(f, v)
		n := v.Size()
		tsSat := false
		for bits := 0; bits < 1<<uint(n) && !tsSat; bits++ {
			m := NewInterp(n)
			for j := 0; j < n; j++ {
				m.True.SetTo(j, bits&(1<<uint(j)) != 0)
			}
			tsSat = EvalCNF(ts, m)
		}
		return directSat == tsSat
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
