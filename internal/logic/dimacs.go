package logic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DIMACS CNF interchange, for feeding external instances to the
// UMINSAT/∃MODEL experiments and exporting the oracle's queries.
// Variables 1..n map to atoms 0..n-1.

// ParseDIMACS reads a DIMACS CNF file. Atom names "v1".."vn" are
// interned into a fresh vocabulary, which is returned with the clause
// set.
func ParseDIMACS(r io.Reader) (CNF, *Vocabulary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	voc := NewVocabulary()
	var out CNF
	declared := -1
	var cur Clause
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, nil, fmt.Errorf("dimacs: malformed problem line %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("dimacs: bad variable count in %q", line)
			}
			declared = n
			for i := 1; i <= n; i++ {
				voc.Intern("v" + strconv.Itoa(i))
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, nil, fmt.Errorf("dimacs: bad literal %q", tok)
			}
			if v == 0 {
				out = append(out, cur)
				cur = nil
				continue
			}
			idx := v
			if idx < 0 {
				idx = -idx
			}
			if declared >= 0 && idx > declared {
				return nil, nil, fmt.Errorf("dimacs: literal %d exceeds declared %d variables", v, declared)
			}
			for voc.Size() < idx {
				voc.Intern("v" + strconv.Itoa(voc.Size()+1))
			}
			cur = append(cur, MkLit(Atom(idx-1), v > 0))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(cur) > 0 {
		out = append(out, cur) // tolerate a missing trailing 0
	}
	return out, voc, nil
}

// WriteDIMACS writes the CNF in DIMACS format. nVars must cover every
// atom in the CNF.
func WriteDIMACS(w io.Writer, cnf CNF, nVars int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", nVars, len(cnf))
	for _, cl := range cnf {
		for _, l := range cl {
			v := int(l.Atom()) + 1
			if !l.IsPos() {
				v = -v
			}
			fmt.Fprintf(bw, "%d ", v)
		}
		fmt.Fprintln(bw, "0")
	}
	return bw.Flush()
}
