package fixpoint

import (
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

func TestLeastModel(t *testing.T) {
	d := dbtest.MustParse("a. b :- a. c :- b, a. e :- f.")
	m := LeastModel(d)
	for _, name := range []string{"a", "b", "c"} {
		at, _ := d.Voc.Lookup(name)
		if !m.Holds(at) {
			t.Fatalf("%s must be in the least model", name)
		}
	}
	for _, name := range []string{"e", "f"} {
		at, _ := d.Voc.Lookup(name)
		if m.Holds(at) {
			t.Fatalf("%s must not be in the least model", name)
		}
	}
}

func TestLeastModelPanicsOnDisjunction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic on non-definite program")
		}
	}()
	LeastModel(dbtest.MustParse("a | b."))
}

func TestPossiblyTrueBasic(t *testing.T) {
	d := dbtest.MustParse("a | b. c :- a, b. e :- f.")
	pt := PossiblyTrue(d)
	for _, name := range []string{"a", "b", "c"} {
		at, _ := d.Voc.Lookup(name)
		if !pt.Test(int(at)) {
			t.Fatalf("%s should be possibly true", name)
		}
	}
	for _, name := range []string{"e", "f"} {
		at, _ := d.Voc.Lookup(name)
		if pt.Test(int(at)) {
			t.Fatalf("%s should not be possibly true", name)
		}
	}
}

func TestPossiblyTrueEqualsUnreducedClosureAtoms(t *testing.T) {
	// The polynomial fixpoint must agree with the brute-force
	// unreduced hyperresolution closure on occurrence.
	rng := rand.New(rand.NewSource(141))
	for iter := 0; iter < 200; iter++ {
		d := gen.Random(rng, gen.Positive(2+rng.Intn(4), 1+rng.Intn(6)))
		want := refsem.DDROccurring(d)
		got := PossiblyTrue(d)
		for v := 0; v < d.N(); v++ {
			if want[v] != got.Test(v) {
				t.Fatalf("iter %d: atom %s occurrence mismatch (fixpoint=%v brute=%v)\nDB:\n%s",
					iter, d.Voc.Name(logic.Atom(v)), got.Test(v), want[v], d.String())
			}
		}
	}
}

func TestTUpOmegaExample31(t *testing.T) {
	// {a∨b, c←a∧b}: derivations give c∨a∨b, but a∨b subsumes it, so
	// the REDUCED state is just {a∨b} — c does not occur there,
	// whereas it does occur in the unreduced closure (Example 3.1).
	d := dbtest.MustParse("a | b. c :- a, b.")
	st := TUpOmega(d, 0)
	c, _ := d.Voc.Lookup("c")
	if st.Atoms(d.N()).Test(int(c)) {
		t.Fatalf("c must not occur in the subsumption-reduced state")
	}
	if !PossiblyTrue(d).Test(int(c)) {
		t.Fatalf("c must occur in the unreduced closure")
	}
}

func TestTUpOmegaIsMinimalState(t *testing.T) {
	// The reduced closure equals the set of minimal positive clauses
	// entailed by the DB (Minker): cross-check by brute force.
	rng := rand.New(rand.NewSource(142))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(3)
		d := gen.Random(rng, gen.Positive(n, 1+rng.Intn(5)))
		st := TUpOmega(d, 0)
		want := bruteMinimalEntailedDisjunctions(d)
		got := map[string]bool{}
		for _, dis := range st.Disjunctions() {
			got[keyOf(dis, n)] = true
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: reduced state size %d, want %d\nDB:\n%s", iter, len(got), len(want), d.String())
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("iter %d: missing minimal entailed disjunction\nDB:\n%s", iter, d.String())
			}
		}
	}
}

func keyOf(d Disjunction, n int) string {
	b := make([]byte, n)
	for _, a := range d {
		b[a] = 1
	}
	return string(b)
}

// bruteMinimalEntailedDisjunctions enumerates all nonempty positive
// clauses entailed by d and keeps the subset-minimal ones.
func bruteMinimalEntailedDisjunctions(d *db.DB) map[string]bool {
	n := d.N()
	ms := refsem.Models(d)
	var entailed [][]byte
	for mask := 1; mask < 1<<uint(n); mask++ {
		holds := true
		for _, m := range ms {
			sat := false
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 && m.Holds(logic.Atom(v)) {
					sat = true
					break
				}
			}
			if !sat {
				holds = false
				break
			}
		}
		if holds {
			b := make([]byte, n)
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 {
					b[v] = 1
				}
			}
			entailed = append(entailed, b)
		}
	}
	out := map[string]bool{}
	for _, e := range entailed {
		minimal := true
		for _, f := range entailed {
			if subsetBytes(f, e) && !equalBytes(f, e) {
				minimal = false
				break
			}
		}
		if minimal {
			out[string(e)] = true
		}
	}
	return out
}

func subsetBytes(a, b []byte) bool {
	for i := range a {
		if a[i] == 1 && b[i] == 0 {
			return false
		}
	}
	return true
}

func equalBytes(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStateSubsumption(t *testing.T) {
	st := NewState()
	if !st.add(Disjunction{0, 1}) {
		t.Fatalf("first add must succeed")
	}
	if st.add(Disjunction{1, 0}) {
		t.Fatalf("duplicate (unordered) must be rejected")
	}
	if st.add(Disjunction{0, 1, 2}) {
		t.Fatalf("superset must be subsumed")
	}
	if !st.add(Disjunction{0}) {
		t.Fatalf("subset must be accepted")
	}
	if st.Len() != 1 {
		t.Fatalf("state should have collapsed to {0}: %d", st.Len())
	}
}
