// Package fixpoint implements the monotone operators used by the
// tractable entries of the paper's tables:
//
//   - TUpOmega: the disjunctive consequence (hyperresolution) closure
//     T_DB↑ω, kept subsumption-reduced. The reduced closure is Minker's
//     *minimal state*: exactly the minimal positive clauses entailed by
//     a positive DDB, which characterises GCWA (x is false in all
//     minimal models iff x occurs in no minimal entailed positive
//     clause) — the test suite cross-validates GCWA against it.
//     NOTE: the DDR/WGCWA semantics is defined over the UNREDUCED
//     closure (Example 3.1 requires the subsumed derivation c∨a∨b to
//     count as an occurrence of c); the atom set of the unreduced
//     closure equals the PossiblyTrue least fixpoint below, which is
//     what package ddr uses. The reduced state can be exponentially
//     large; TUpOmega is for analysis and tests, not the inference
//     fast path.
//
//   - LeastModel: the van Emden–Kowalski least model of a definite
//     program (used by PWS's split programs and by Chan's polynomial
//     literal-inference algorithms).
//
//   - PossiblyTrue: the polynomial "atom occurs in some possible model"
//     closure for positive databases without integrity clauses, the
//     basis of the tractable PWS literal-inference cell of Table 1.
package fixpoint

import (
	"sort"

	"disjunct/internal/bitset"
	"disjunct/internal/db"
	"disjunct/internal/logic"
)

// Disjunction is a sorted set of atoms representing a1 ∨ … ∨ an.
type Disjunction []logic.Atom

func (d Disjunction) key() string {
	b := make([]byte, 0, 4*len(d))
	for _, a := range d {
		b = append(b, byte(a), byte(a>>8), byte(a>>16), byte(a>>24))
	}
	return string(b)
}

// subsumes reports whether d ⊆ e (d subsumes e as a disjunction).
func (d Disjunction) subsumes(e Disjunction) bool {
	i := 0
	for _, a := range e {
		if i < len(d) && d[i] == a {
			i++
		}
	}
	return i == len(d)
}

// State is a set of disjunctions closed under subsumption reduction
// (no disjunction subsumed by a smaller one is kept).
type State struct {
	ds   []Disjunction
	seen map[string]bool
}

// NewState returns an empty state.
func NewState() *State {
	return &State{seen: make(map[string]bool)}
}

// Disjunctions returns the state's disjunctions.
func (s *State) Disjunctions() []Disjunction { return s.ds }

// Len returns the number of disjunctions.
func (s *State) Len() int { return len(s.ds) }

// add inserts a disjunction unless it is subsumed by an existing one;
// existing disjunctions subsumed by it are removed. Reports whether the
// state changed.
func (s *State) add(d Disjunction) bool {
	d = normalize(d)
	if s.seen[d.key()] {
		return false
	}
	for _, e := range s.ds {
		if e.subsumes(d) {
			return false
		}
	}
	kept := s.ds[:0]
	for _, e := range s.ds {
		if d.subsumes(e) {
			delete(s.seen, e.key())
		} else {
			kept = append(kept, e)
		}
	}
	s.ds = append(kept, d)
	s.seen[d.key()] = true
	return true
}

func normalize(d Disjunction) Disjunction {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	out := d[:0]
	for i, a := range d {
		if i == 0 || a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}

// Atoms returns the set of atoms occurring in some disjunction of the
// state — the set whose complement DDR declares false.
func (s *State) Atoms(n int) *bitset.Set {
	out := bitset.New(n)
	for _, d := range s.ds {
		for _, a := range d {
			out.Set(int(a))
		}
	}
	return out
}

// TUpOmega computes the subsumption-reduced hyperresolution closure
// (Minker's minimal state) of a positive database. Negative body
// literals and integrity clauses are ignored. maxWidth caps the length
// of derived disjunctions (0 = number of atoms, at which the cap never
// bites after deduplication).
func TUpOmega(d *db.DB, maxWidth int) *State {
	if maxWidth <= 0 {
		maxWidth = d.N()
	}
	st := NewState()
	// Seed: disjunctive facts.
	rules := make([]db.Clause, 0, len(d.Clauses))
	for _, c := range d.Clauses {
		if c.IsIntegrity() || len(c.NegBody) > 0 {
			continue // DDR ignores integrity clauses; negation unsupported
		}
		if c.IsFact() {
			st.add(append(Disjunction(nil), c.Head...))
		} else {
			rules = append(rules, c)
		}
	}
	// Hyperresolution to fixpoint: for a rule H ← b1∧…∧bk pick
	// disjunctions D1,…,Dk from the state with bj ∈ Dj and derive
	// H ∨ (D1−b1) ∨ … ∨ (Dk−bk).
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			if deriveRule(st, r, maxWidth) {
				changed = true
			}
		}
	}
	return st
}

// deriveRule applies one rule against all tuples of state disjunctions
// containing its body atoms. Returns whether the state grew.
func deriveRule(st *State, r db.Clause, maxWidth int) bool {
	k := len(r.PosBody)
	// Candidate disjunctions per body atom (indices into st.ds).
	choices := make([][]int, k)
	for j, b := range r.PosBody {
		for i, d := range st.ds {
			if containsAtom(d, b) {
				choices[j] = append(choices[j], i)
			}
		}
		if len(choices[j]) == 0 {
			return false
		}
	}
	changed := false
	idx := make([]int, k)
	// Snapshot length: only combine pre-existing disjunctions this
	// round; new ones are picked up in the next outer iteration.
	for {
		derived := append(Disjunction(nil), r.Head...)
		for j := 0; j < k; j++ {
			d := st.ds[choices[j][idx[j]]]
			for _, a := range d {
				if a != r.PosBody[j] {
					derived = append(derived, a)
				}
			}
		}
		derived = normalize(derived)
		if len(derived) <= maxWidth && st.add(derived) {
			changed = true
			// st.ds mutated: restart enumeration conservatively.
			return true
		}
		// Advance the index vector.
		j := k - 1
		for ; j >= 0; j-- {
			idx[j]++
			if idx[j] < len(choices[j]) {
				break
			}
			idx[j] = 0
		}
		if j < 0 {
			return changed
		}
	}
}

func containsAtom(d Disjunction, a logic.Atom) bool {
	for _, x := range d {
		if x == a {
			return true
		}
	}
	return false
}

// LeastModel computes the least Herbrand model of a definite positive
// program (every clause must have exactly one head atom and no
// negation; integrity clauses and wider heads cause a panic — callers
// split disjunctive heads first). Linear-time unit propagation.
func LeastModel(d *db.DB) logic.Interp {
	n := d.N()
	m := logic.NewInterp(n)
	for _, c := range d.Clauses {
		if len(c.Head) != 1 || len(c.NegBody) != 0 {
			panic("fixpoint: LeastModel requires a definite program")
		}
	}
	for changed := true; changed; {
		changed = false
		for _, c := range d.Clauses {
			if m.Holds(c.Head[0]) {
				continue
			}
			fire := true
			for _, b := range c.PosBody {
				if !m.Holds(b) {
					fire = false
					break
				}
			}
			if fire {
				m.True.Set(int(c.Head[0]))
				changed = true
			}
		}
	}
	return m
}

// PossiblyTrue computes, for a positive database without integrity
// clauses, the set of atoms true in at least one possible model
// (equivalently: the least model of the "all heads enabled" split
// program). An atom x is PWS-false — PWS(DB) ⊨ ¬x — iff x is outside
// this set; this is the polynomial literal-inference algorithm for the
// PWS cell of Table 1.
func PossiblyTrue(d *db.DB) *bitset.Set {
	n := d.N()
	m := logic.NewInterp(n)
	for changed := true; changed; {
		changed = false
		for _, c := range d.Clauses {
			if c.IsIntegrity() || len(c.NegBody) > 0 {
				continue
			}
			fire := true
			for _, b := range c.PosBody {
				if !m.Holds(b) {
					fire = false
					break
				}
			}
			if !fire {
				continue
			}
			for _, h := range c.Head {
				if !m.Holds(h) {
					m.True.Set(int(h))
					changed = true
				}
			}
		}
	}
	return m.True
}
