// Package bitset provides a dense, fixed-capacity bit set used throughout
// the library to represent propositional interpretations (sets of true
// atoms) and atom subsets (e.g. the P/Q/Z parts of a CCWA partition).
//
// The zero value is an empty set with capacity 0; use New to allocate a
// set able to hold n elements. All operations treat out-of-range bits as
// absent. Sets are mutable; Clone produces an independent copy.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the universe {0, …, n-1}.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for n elements.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity (universe size) of the set, not the number of
// elements; use Count for cardinality.
func (s *Set) Len() int { return s.n }

// Test reports whether element i is in the set.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set adds element i. Out-of-range indices are ignored.
func (s *Set) Set(i int) *Set {
	if i >= 0 && i < s.n {
		s.words[i/wordBits] |= 1 << uint(i%wordBits)
	}
	return s
}

// Clear removes element i. Out-of-range indices are ignored.
func (s *Set) Clear(i int) *Set {
	if i >= 0 && i < s.n {
		s.words[i/wordBits] &^= 1 << uint(i%wordBits)
	}
	return s
}

// SetTo adds or removes element i according to v.
func (s *Set) SetTo(i int, v bool) *Set {
	if v {
		return s.Set(i)
	}
	return s.Clear(i)
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of t. The sets must have the
// same capacity; CopyFrom panics otherwise.
func (s *Set) CopyFrom(t *Set) *Set {
	if s.n != t.n {
		panic("bitset: CopyFrom with mismatched capacity")
	}
	copy(s.words, t.words)
	return s
}

// Reset removes all elements.
func (s *Set) Reset() *Set {
	for i := range s.words {
		s.words[i] = 0
	}
	return s
}

// Fill adds every element of the universe.
func (s *Set) Fill() *Set {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears bits beyond the universe size.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// UnionWith adds every element of t to s. Capacities must match.
func (s *Set) UnionWith(t *Set) *Set {
	s.check(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
	return s
}

// IntersectWith removes from s every element not in t. Capacities must match.
func (s *Set) IntersectWith(t *Set) *Set {
	s.check(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
	return s
}

// DifferenceWith removes from s every element of t. Capacities must match.
func (s *Set) DifferenceWith(t *Set) *Set {
	s.check(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
	return s
}

func (s *Set) check(t *Set) {
	if s.n != t.n {
		panic("bitset: operation on sets with mismatched capacity")
	}
}

// Equal reports whether s and t contain exactly the same elements.
// Sets of different capacity are never equal.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t. Capacities must match.
func (s *Set) SubsetOf(t *Set) bool {
	s.check(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊊ t.
func (s *Set) ProperSubsetOf(t *Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	s.check(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// NextSet returns the smallest element ≥ i in the set, or -1 if none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls f for each element of the set in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		f(i)
	}
}

// Elements returns the elements of the set in increasing order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// FromElements returns a set of capacity n containing exactly the given
// elements (out-of-range elements are ignored).
func FromElements(n int, elems ...int) *Set {
	s := New(n)
	for _, e := range elems {
		s.Set(e)
	}
	return s
}

// String renders the set as "{0,3,7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}

// Key returns a compact string usable as a map key identifying the set's
// contents (capacity-sensitive).
func (s *Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for sh := 0; sh < 64; sh += 8 {
			b.WriteByte(byte(w >> uint(sh)))
		}
	}
	return b.String()
}
