package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.IsEmpty() || s.Len() != 130 {
		t.Fatalf("fresh set wrong")
	}
	s.Set(0).Set(64).Set(129)
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Test(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if s.Test(1) || s.Test(63) || s.Test(128) {
		t.Fatalf("unexpected bits set")
	}
	s.Clear(64)
	if s.Test(64) || s.Count() != 2 {
		t.Fatalf("clear failed")
	}
	s.SetTo(5, true)
	if !s.Test(5) {
		t.Fatalf("SetTo failed")
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Set(-1).Set(10).Set(100)
	if !s.IsEmpty() {
		t.Fatalf("out-of-range sets must be ignored")
	}
	if s.Test(-1) || s.Test(10) {
		t.Fatalf("out-of-range tests must be false")
	}
}

func TestFillAndReset(t *testing.T) {
	s := New(70)
	s.Fill()
	if s.Count() != 70 {
		t.Fatalf("fill count = %d", s.Count())
	}
	s.Reset()
	if !s.IsEmpty() {
		t.Fatalf("reset failed")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromElements(10, 1, 2, 3)
	b := FromElements(10, 3, 4)
	u := a.Clone().UnionWith(b)
	if u.Count() != 4 || !u.Test(4) {
		t.Fatalf("union wrong: %v", u)
	}
	i := a.Clone().IntersectWith(b)
	if i.Count() != 1 || !i.Test(3) {
		t.Fatalf("intersect wrong: %v", i)
	}
	d := a.Clone().DifferenceWith(b)
	if d.Count() != 2 || d.Test(3) {
		t.Fatalf("difference wrong: %v", d)
	}
}

func TestSubsetRelations(t *testing.T) {
	a := FromElements(8, 1, 2)
	b := FromElements(8, 1, 2, 3)
	if !a.SubsetOf(b) || !a.ProperSubsetOf(b) {
		t.Fatalf("subset relations wrong")
	}
	if b.SubsetOf(a) {
		t.Fatalf("reverse subset wrong")
	}
	if !a.SubsetOf(a) || a.ProperSubsetOf(a) {
		t.Fatalf("reflexivity wrong")
	}
	if !a.Intersects(b) {
		t.Fatalf("intersects wrong")
	}
	if a.Intersects(FromElements(8, 5)) {
		t.Fatalf("disjoint intersects wrong")
	}
}

func TestMismatchedCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic")
		}
	}()
	New(5).UnionWith(New(6))
}

func TestNextSetAndForEach(t *testing.T) {
	s := FromElements(200, 3, 64, 65, 199)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{3, 64, 65, 199}
	if len(got) != len(want) {
		t.Fatalf("ForEach: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: %v", got)
		}
	}
	if s.NextSet(66) != 199 {
		t.Fatalf("NextSet(66) = %d", s.NextSet(66))
	}
	if s.NextSet(200) != -1 || s.NextSet(-5) != 3 {
		t.Fatalf("NextSet boundary wrong")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := FromElements(100, 1, 99)
	b := FromElements(100, 1, 99)
	c := FromElements(100, 1)
	if !a.Equal(b) || a.Equal(c) {
		t.Fatalf("Equal wrong")
	}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Fatalf("Key wrong")
	}
	if a.Equal(FromElements(101, 1, 99)) {
		t.Fatalf("different capacity must not be equal")
	}
}

func TestString(t *testing.T) {
	if got := FromElements(10, 0, 3, 7).String(); got != "{0,3,7}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromElements(20, 5)
	b := New(20)
	b.CopyFrom(a)
	if !b.Test(5) {
		t.Fatalf("CopyFrom failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("CopyFrom with mismatched capacity must panic")
		}
	}()
	New(10).CopyFrom(a)
}

// Property: Elements round-trips through FromElements.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(n8)
		s := New(n)
		for i := 0; i < n/2; i++ {
			s.Set(rng.Intn(n))
		}
		return FromElements(n, s.Elements()...).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and count-consistent with
// inclusion–exclusion.
func TestQuickUnionInclusionExclusion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		u1 := a.Clone().UnionWith(b)
		u2 := b.Clone().UnionWith(a)
		i := a.Clone().IntersectWith(b)
		return u1.Equal(u2) && u1.Count() == a.Count()+b.Count()-i.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
