// Package budget provides cancellation and resource budgets for the
// solve path. A *B is shared by every solver, oracle, and enumerator
// participating in one logical query; it is concurrency-safe (all
// counters are atomics) and sticky: the first limit that trips is
// recorded and every subsequent check reports that same typed error,
// so a query interrupted deep inside a worker pool surfaces exactly
// one cause.
//
// A nil *B is valid everywhere and means "unlimited": every method is
// nil-safe, so call sites never need to guard.
//
// Interruption travels through deep call chains (solver → oracle →
// enumerator → semantics) as a panic carrying an Interrupt payload,
// raised by Trip and converted back into an ordinary typed error by a
// deferred Recover at each public API boundary. This keeps the dozens
// of internal signatures unchanged while guaranteeing an interrupted
// computation can never be mistaken for a completed one.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Typed interruption causes. Callers match with errors.Is.
var (
	// ErrCanceled reports that the context attached to the budget was
	// canceled (or a fault injector issued a spurious cancellation).
	ErrCanceled = errors.New("budget: canceled")
	// ErrDeadline reports that the wall-clock deadline passed.
	ErrDeadline = errors.New("budget: deadline exceeded")
	// ErrConflictBudget reports that the SAT conflict budget ran out.
	ErrConflictBudget = errors.New("budget: conflict budget exhausted")
	// ErrPropagationBudget reports that the unit-propagation budget
	// ran out.
	ErrPropagationBudget = errors.New("budget: propagation budget exhausted")
	// ErrNPCallBudget reports that the NP oracle-call budget ran out.
	ErrNPCallBudget = errors.New("budget: NP-call budget exhausted")
)

// Limits bounds one logical query. Zero values mean unlimited.
type Limits struct {
	Conflicts    int64         // total SAT conflicts across all oracle calls
	Propagations int64         // total unit propagations across all oracle calls
	NPCalls      int64         // total NP oracle invocations
	Deadline     time.Duration // wall-clock allowance from New
}

// B is a sticky, concurrency-safe budget. Create with New; share one
// *B across however many goroutines cooperate on a query.
type B struct {
	ctx       context.Context
	deadline  time.Time // zero = none
	conflicts atomic.Int64
	props     atomic.Int64
	npcalls   atomic.Int64
	hasConfl  bool
	hasProps  bool
	hasNP     bool
	tripped   atomic.Pointer[error]
}

// New builds a budget from a context and limits. The effective
// deadline is the earlier of ctx's deadline and lim.Deadline (measured
// from now); either may be absent.
func New(ctx context.Context, lim Limits) *B {
	if ctx == nil {
		ctx = context.Background()
	}
	b := &B{ctx: ctx}
	if lim.Conflicts > 0 {
		b.hasConfl = true
		b.conflicts.Store(lim.Conflicts)
	}
	if lim.Propagations > 0 {
		b.hasProps = true
		b.props.Store(lim.Propagations)
	}
	if lim.NPCalls > 0 {
		b.hasNP = true
		b.npcalls.Store(lim.NPCalls)
	}
	if lim.Deadline > 0 {
		b.deadline = time.Now().Add(lim.Deadline)
	}
	if cd, ok := ctx.Deadline(); ok && (b.deadline.IsZero() || cd.Before(b.deadline)) {
		b.deadline = cd
	}
	return b
}

// trip records err as the cause if none is recorded yet and returns
// the recorded cause (which may be an earlier one).
func (b *B) trip(err error) error {
	b.tripped.CompareAndSwap(nil, &err)
	return *b.tripped.Load()
}

// Cause returns the recorded interruption cause, or nil if the budget
// has not tripped.
func (b *B) Cause() error {
	if b == nil {
		return nil
	}
	if p := b.tripped.Load(); p != nil {
		return *p
	}
	return nil
}

// Err reports whether the budget is exhausted: it returns the sticky
// cause if one is recorded, otherwise checks the context and the
// wall-clock deadline. It is the cheap poll used at solver restart and
// conflict boundaries.
func (b *B) Err() error {
	if b == nil {
		return nil
	}
	if p := b.tripped.Load(); p != nil {
		return *p
	}
	if b.ctx != nil {
		select {
		case <-b.ctx.Done():
			return b.trip(fmt.Errorf("%w: %v", ErrCanceled, context.Cause(b.ctx)))
		default:
		}
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return b.trip(ErrDeadline)
	}
	return nil
}

// ChargeConflicts debits n SAT conflicts and returns the typed error
// if the conflict budget is exhausted (now or previously).
func (b *B) ChargeConflicts(n int64) error {
	if b == nil {
		return nil
	}
	if b.hasConfl && b.conflicts.Add(-n) < 0 {
		return b.trip(ErrConflictBudget)
	}
	return b.Err()
}

// ChargeProps debits n unit propagations.
func (b *B) ChargeProps(n int64) error {
	if b == nil {
		return nil
	}
	if b.hasProps && b.props.Add(-n) < 0 {
		return b.trip(ErrPropagationBudget)
	}
	return nil
}

// ChargeNPCall debits one NP oracle call and returns the typed error
// if the call budget is exhausted.
func (b *B) ChargeNPCall() error {
	if b == nil {
		return nil
	}
	if b.hasNP && b.npcalls.Add(-1) < 0 {
		return b.trip(ErrNPCallBudget)
	}
	return b.Err()
}

// RemainingConflicts reports the conflict budget left, or -1 if
// unlimited. Never negative.
func (b *B) RemainingConflicts() int64 {
	if b == nil || !b.hasConfl {
		return -1
	}
	if r := b.conflicts.Load(); r > 0 {
		return r
	}
	return 0
}

// RemainingNPCalls reports the NP-call budget left, or -1 if
// unlimited. Never negative.
func (b *B) RemainingNPCalls() int64 {
	if b == nil || !b.hasNP {
		return -1
	}
	if r := b.npcalls.Load(); r > 0 {
		return r
	}
	return 0
}

// Interrupt is the panic payload raised by Trip. It never escapes the
// package's public API: every budget-aware entry point runs
// `defer budget.Recover(&err)` and converts it back to Err.
type Interrupt struct{ Err error }

func (i Interrupt) Error() string { return i.Err.Error() }

// Trip panics with an Interrupt carrying err. Call it when a budget
// check fails deep inside a call chain whose signatures cannot carry
// an error.
func Trip(err error) {
	if err == nil {
		err = ErrCanceled
	}
	panic(Interrupt{Err: err})
}

// Recover converts an in-flight Interrupt panic into *errp. Use as
//
//	defer budget.Recover(&err)
//
// at every public budget-aware API boundary. Non-Interrupt panics are
// re-raised untouched.
func Recover(errp *error) {
	switch r := recover().(type) {
	case nil:
	case Interrupt:
		*errp = r.Err
	default:
		panic(r)
	}
}

// Interrupted reports whether err is one of the typed interruption
// causes (directly or wrapped).
func Interrupted(err error) bool {
	return err != nil && (errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrConflictBudget) ||
		errors.Is(err, ErrPropagationBudget) ||
		errors.Is(err, ErrNPCallBudget))
}
