package budget

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *B
	if err := b.Err(); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
	if err := b.ChargeConflicts(1 << 40); err != nil {
		t.Fatalf("nil ChargeConflicts: %v", err)
	}
	if err := b.ChargeProps(1 << 40); err != nil {
		t.Fatalf("nil ChargeProps: %v", err)
	}
	if err := b.ChargeNPCall(); err != nil {
		t.Fatalf("nil ChargeNPCall: %v", err)
	}
	if b.Cause() != nil {
		t.Fatal("nil Cause must be nil")
	}
	if b.RemainingConflicts() != -1 || b.RemainingNPCalls() != -1 {
		t.Fatal("nil budget must report unlimited")
	}
}

func TestConflictBudgetTrips(t *testing.T) {
	b := New(context.Background(), Limits{Conflicts: 10})
	if err := b.ChargeConflicts(10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := b.ChargeConflicts(1)
	if !errors.Is(err, ErrConflictBudget) {
		t.Fatalf("got %v, want ErrConflictBudget", err)
	}
	// Sticky: every later check reports the same cause.
	if err := b.Err(); !errors.Is(err, ErrConflictBudget) {
		t.Fatalf("Err after trip: %v", err)
	}
	if err := b.ChargeNPCall(); !errors.Is(err, ErrConflictBudget) {
		t.Fatalf("ChargeNPCall after trip: %v", err)
	}
	if b.RemainingConflicts() != 0 {
		t.Fatalf("RemainingConflicts = %d", b.RemainingConflicts())
	}
}

func TestNPCallBudgetTrips(t *testing.T) {
	b := New(context.Background(), Limits{NPCalls: 2})
	for i := 0; i < 2; i++ {
		if err := b.ChargeNPCall(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if err := b.ChargeNPCall(); !errors.Is(err, ErrNPCallBudget) {
		t.Fatalf("got %v, want ErrNPCallBudget", err)
	}
}

func TestPropagationBudgetTrips(t *testing.T) {
	b := New(context.Background(), Limits{Propagations: 5})
	if err := b.ChargeProps(5); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := b.ChargeProps(1); !errors.Is(err, ErrPropagationBudget) {
		t.Fatalf("got %v, want ErrPropagationBudget", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Limits{})
	if err := b.Err(); err != nil {
		t.Fatalf("before cancel: %v", err)
	}
	cancel()
	if err := b.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestDeadline(t *testing.T) {
	b := New(context.Background(), Limits{Deadline: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if err := b.Err(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
}

func TestContextDeadlineTakesEffect(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	b := New(ctx, Limits{Deadline: time.Hour})
	time.Sleep(time.Millisecond)
	// Either the ctx Done fires (ErrCanceled) or the min-deadline path
	// (ErrDeadline); both are interruptions.
	if err := b.Err(); !Interrupted(err) {
		t.Fatalf("got %v, want an interruption", err)
	}
}

func TestFirstCauseWinsConcurrently(t *testing.T) {
	b := New(context.Background(), Limits{Conflicts: 1, NPCalls: 1})
	var wg sync.WaitGroup
	errs := make([]error, 64)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				errs[i] = b.ChargeConflicts(100)
			} else {
				for j := 0; j < 3; j++ {
					errs[i] = b.ChargeNPCall()
				}
			}
		}(i)
	}
	wg.Wait()
	cause := b.Cause()
	if cause == nil {
		t.Fatal("budget must have tripped")
	}
	for i, err := range errs {
		if err != nil && !errors.Is(err, cause) {
			t.Fatalf("goroutine %d saw %v, sticky cause is %v", i, err, cause)
		}
	}
}

func TestTripRecoverRoundTrip(t *testing.T) {
	run := func() (err error) {
		defer Recover(&err)
		Trip(fmt.Errorf("wrapped: %w", ErrDeadline))
		return nil
	}
	err := run()
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want wrapped ErrDeadline", err)
	}
}

func TestRecoverPassesForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("foreign panic payload lost: %v", r)
		}
	}()
	var err error
	defer Recover(&err)
	panic("boom")
}

func TestInterrupted(t *testing.T) {
	for _, err := range []error{
		ErrCanceled, ErrDeadline, ErrConflictBudget,
		ErrPropagationBudget, ErrNPCallBudget,
		fmt.Errorf("deep: %w", ErrCanceled),
	} {
		if !Interrupted(err) {
			t.Errorf("Interrupted(%v) = false", err)
		}
	}
	if Interrupted(nil) || Interrupted(errors.New("other")) {
		t.Error("Interrupted must reject nil and unrelated errors")
	}
}
