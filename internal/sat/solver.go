// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver from scratch: two-watched-literal propagation, first-UIP
// conflict analysis with clause minimisation, VSIDS-style activity
// ordering, Luby restarts, phase saving, and solving under assumptions.
//
// The solver is the NP oracle of this library: every membership
// algorithm for an NP/coNP/Σ₂ᵖ/Π₂ᵖ table cell bottoms out in calls to
// Solver.Solve. Literals use the same encoding as package logic
// (2*v for positive, 2*v+1 for negative).
package sat

import (
	"errors"

	"disjunct/internal/budget"
)

// Lit is a solver literal, 2*v (positive) or 2*v+1 (negative).
type Lit int32

// MkLit builds a literal from a variable index and sign.
func MkLit(v int, positive bool) Lit {
	l := Lit(2 * v)
	if !positive {
		l++
	}
	return l
}

// Var returns the variable index of l.
func (l Lit) Var() int { return int(l >> 1) }

// IsPos reports whether l is positive.
func (l Lit) IsPos() bool { return l&1 == 0 }

// Neg returns the complement of l.
func (l Lit) Neg() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// clause is a learnt or problem clause stored in the solver.
type clause struct {
	lits     []Lit
	activity float64
	learnt   bool
}

// watcher pairs a clause reference with a "blocker" literal that is
// checked before touching the clause (cache-friendly early exit).
type watcher struct {
	cref    *clause
	blocker Lit
}

// Status is the result of a Solve call.
type Status int8

// Solve outcomes.
const (
	// Unknown means the solver stopped before reaching a verdict
	// (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is
	// unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrBudget is returned by Solve when the conflict budget set with
// SetConflictBudget is exhausted.
var ErrBudget = errors.New("sat: conflict budget exhausted")

// Stats holds cumulative solver statistics.
type Stats struct {
	Solves       int64 // number of Solve calls
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Learnt       int64 // clauses learnt
	Restarts     int64
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// instances with New. A Solver is not safe for concurrent use.
type Solver struct {
	nVars   int
	clauses []*clause // problem clauses
	learnts []*clause

	watches [][]watcher // indexed by literal

	assign  []lbool // indexed by variable
	level   []int32 // decision level of assignment
	reason  []*clause
	trail   []Lit
	trailLn []int32 // trail length at each decision level (index = level)
	qhead   int

	activity  []float64
	varInc    float64
	order     *varHeap
	phase     []bool // saved phase
	seen      []bool // scratch for analyze
	claInc    float64
	maxLearnt float64

	okay bool // false once a top-level conflict is found

	model     []lbool // snapshot of the last satisfying assignment
	finalConf []Lit   // failed assumptions of the last Unsat-under-assumptions

	budget     int64 // remaining conflicts before Unknown; <0 = unlimited
	bres       *budget.B
	stopErr    error // typed cause of the last Unknown result
	propsDebit int64 // stats.Propagations already charged to bres
	noRestarts bool
	stats      Stats
	scratch    struct {
		learnt  []Lit
		toClear []int
	}
}

// New returns a solver over nVars variables (indices 0..nVars-1).
func New(nVars int) *Solver {
	s := &Solver{
		varInc:    1,
		claInc:    1,
		maxLearnt: 4000,
		okay:      true,
		budget:    -1,
	}
	s.order = newVarHeap(&s.activity)
	s.grow(nVars)
	return s
}

// grow extends the solver to at least n variables.
func (s *Solver) grow(n int) {
	if n <= s.nVars {
		return
	}
	for len(s.watches) < 2*n {
		s.watches = append(s.watches, nil)
	}
	for v := s.nVars; v < n; v++ {
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, false)
		s.seen = append(s.seen, false)
	}
	s.nVars = n
	if s.order == nil {
		s.order = newVarHeap(&s.activity)
	}
	for v := 0; v < n; v++ {
		s.order.insert(v)
	}
}

// Reset returns the solver to the state of a fresh New(nVars) while
// keeping every allocation it has accumulated: the watcher buckets,
// the per-variable arrays (assignment, level, reason, activity, phase,
// seen), the trail, the activity heap, and the analysis scratch all
// retain their capacity. Problem and learnt clauses are dropped.
//
// Reset is the reuse path of the oracle's solver pool: loading a CNF
// into a Reset solver touches only already-warm memory instead of
// reallocating watcher lists per query. It restores the default
// conflict budget and restart policy.
func (s *Solver) Reset(nVars int) {
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	s.clauses = s.clauses[:0]
	s.learnts = s.learnts[:0]
	s.assign = s.assign[:0]
	s.level = s.level[:0]
	s.reason = s.reason[:0]
	s.activity = s.activity[:0]
	s.phase = s.phase[:0]
	s.seen = s.seen[:0]
	s.trail = s.trail[:0]
	s.trailLn = s.trailLn[:0]
	s.qhead = 0
	s.varInc = 1
	s.claInc = 1
	s.maxLearnt = 4000
	s.okay = true
	s.model = s.model[:0]
	s.finalConf = s.finalConf[:0]
	s.budget = -1
	s.bres = nil
	s.stopErr = nil
	s.propsDebit = 0
	s.noRestarts = false
	s.stats = Stats{}
	s.order.clear()
	s.nVars = 0
	s.grow(nVars)
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return s.nVars }

// NewVar adds a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := s.nVars
	s.grow(v + 1)
	return v
}

// Stats returns a copy of the cumulative statistics.
func (s *Solver) Stats() Stats { return s.stats }

// SetConflictBudget limits the total number of conflicts across
// subsequent Solve calls; pass a negative value for no limit.
func (s *Solver) SetConflictBudget(n int64) { s.budget = n }

// SetBudget attaches a shared query budget. Solve polls it at
// conflict, restart, and (sampled) decision boundaries and returns
// Unknown with StopCause set when it trips. A nil budget (the
// default) imposes no limit.
func (s *Solver) SetBudget(b *budget.B) {
	s.bres = b
	s.propsDebit = s.stats.Propagations
}

// StopCause returns the typed reason the most recent Solve call
// returned Unknown (budget.ErrCanceled, budget.ErrDeadline,
// budget.ErrConflictBudget, budget.ErrPropagationBudget, or the
// legacy ErrBudget), or nil if the last call reached a verdict.
func (s *Solver) StopCause() error { return s.stopErr }

// chargeProps debits propagations performed since the last charge
// against the attached budget.
func (s *Solver) chargeProps() error {
	if s.bres == nil {
		return nil
	}
	d := s.stats.Propagations - s.propsDebit
	if d == 0 {
		return nil
	}
	s.propsDebit = s.stats.Propagations
	return s.bres.ChargeProps(d)
}

// SetRestartsEnabled toggles the Luby restart policy (enabled by
// default). Disabling it is the restart ablation of the benchmark
// suite; the solver remains complete either way.
func (s *Solver) SetRestartsEnabled(on bool) { s.noRestarts = !on }

// value returns the current value of a literal.
func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.IsPos() == (v == lTrue) {
		return lTrue
	}
	return lFalse
}

// decisionLevel returns the current decision level.
func (s *Solver) decisionLevel() int { return len(s.trailLn) }

// AddClause adds a problem clause. Adding is only allowed at decision
// level 0 (i.e. outside Solve). It returns false if the solver is
// already in an unsatisfiable top-level state.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.okay {
		return false
	}
	// Normalise: sort out duplicates, tautologies, satisfied/false lits.
	seen := make(map[Lit]bool, len(lits))
	cl := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l.Var() >= s.nVars {
			s.grow(l.Var() + 1)
		}
		switch s.value(l) {
		case lTrue:
			return true // clause already satisfied at top level
		case lFalse:
			continue // literal can never help
		}
		if seen[l.Neg()] {
			return true // tautology
		}
		if !seen[l] {
			seen[l] = true
			cl = append(cl, l)
		}
	}
	switch len(cl) {
	case 0:
		s.okay = false
		return false
	case 1:
		s.uncheckedEnqueue(cl[0], nil)
		if s.propagate() != nil {
			s.okay = false
			return false
		}
		return true
	}
	c := &clause{lits: cl}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watcher{c, l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watcher{c, l0})
}

// uncheckedEnqueue records the assignment l=true with the given reason.
func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assign[v] = boolToLbool(l.IsPos())
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting
// clause, or nil if no conflict was found.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		out := ws[:0]
		n := len(ws)
	nextWatcher:
		for i := 0; i < n; i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				out = append(out, w)
				continue
			}
			c := w.cref
			// Ensure the false literal (¬p) is at position 1.
			np := p.Neg()
			if c.lits[0] == np {
				c.lits[0], c.lits[1] = c.lits[1], np
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				out = append(out, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nl := c.lits[1].Neg()
					s.watches[nl] = append(s.watches[nl], watcher{c, first})
					continue nextWatcher
				}
			}
			// No new watch: clause is unit or conflicting.
			out = append(out, watcher{c, first})
			if s.value(first) == lFalse {
				// Conflict: copy the remaining watchers back.
				for i++; i < n; i++ {
					out = append(out, ws[i])
				}
				s.watches[p] = out
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = out
	}
	return nil
}

// analyze performs first-UIP conflict analysis, filling
// s.scratch.learnt with the learnt clause (asserting literal first) and
// returning the backtrack level.
func (s *Solver) analyze(confl *clause) int {
	learnt := s.scratch.learnt[:0]
	learnt = append(learnt, 0) // placeholder for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		s.bumpClause(confl)
		for _, q := range confl.lits {
			if p >= 0 && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to look at.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		pathC--
		if pathC == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Clause minimisation: drop literals implied by the rest.
	s.scratch.toClear = s.scratch.toClear[:0]
	for _, l := range learnt {
		s.seen[l.Var()] = true
		s.scratch.toClear = append(s.scratch.toClear, l.Var())
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		if r := s.reason[learnt[i].Var()]; r == nil || !s.redundant(r) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	// Compute backtrack level = second-highest level in the clause.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].Var()])
	}

	// Clear every seen flag set in this analysis, including those of
	// literals dropped by minimisation.
	for _, v := range s.scratch.toClear {
		s.seen[v] = false
	}
	s.scratch.toClear = s.scratch.toClear[:0]
	s.scratch.learnt = learnt
	return bt
}

// redundant reports whether every literal of the reason clause r (other
// than its asserting literal) is already marked seen or implied at level
// 0 — a cheap, local version of recursive minimisation.
func (s *Solver) redundant(r *clause) bool {
	for _, q := range r.lits[1:] {
		v := q.Var()
		if !s.seen[v] && s.level[v] != 0 {
			return false
		}
	}
	return true
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := int(s.trailLn[level])
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:lim]
	s.trailLn = s.trailLn[:level]
	s.qhead = lim
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	if !c.learnt {
		return
	}
	c.activity += s.claInc
	if c.activity > 1e20 {
		for _, lc := range s.learnts {
			lc.activity *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= 0.95
	s.claInc /= 0.999
}

// pickBranchVar returns the unassigned variable with highest activity,
// or -1 if all variables are assigned.
func (s *Solver) pickBranchVar() int {
	for !s.order.empty() {
		v := s.order.pop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return -1
}

// reduceDB removes roughly half of the learnt clauses, lowest activity
// first, keeping reasons and binary clauses.
func (s *Solver) reduceDB() {
	if len(s.learnts) == 0 {
		return
	}
	// Partial selection: find median activity by simple nth-element scan.
	acts := make([]float64, len(s.learnts))
	for i, c := range s.learnts {
		acts[i] = c.activity
	}
	med := quickMedian(acts)
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if len(c.lits) <= 2 || c.activity >= med || s.isReason(c) {
			kept = append(kept, c)
		} else {
			s.detach(c)
		}
	}
	s.learnts = kept
}

func (s *Solver) isReason(c *clause) bool {
	v := c.lits[0].Var()
	return s.assign[v] != lUndef && s.reason[v] == c
}

func (s *Solver) detach(c *clause) {
	for _, l := range []Lit{c.lits[0], c.lits[1]} {
		ws := s.watches[l.Neg()]
		for i, w := range ws {
			if w.cref == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l.Neg()] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func quickMedian(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	// Simple in-place quickselect for the median.
	k := len(xs) / 2
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}

// luby returns the i-th element (1-based) of the Luby restart sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// On Sat, Model reports the found assignment; on Unsat under
// assumptions, FinalConflict lists a subset of assumptions that is
// jointly unsatisfiable with the formula.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.stats.Solves++
	s.stopErr = nil
	if !s.okay {
		return Unsat
	}
	if err := s.bres.Err(); err != nil {
		s.stopErr = err
		return Unknown
	}
	for _, a := range assumptions {
		if a.Var() >= s.nVars {
			s.grow(a.Var() + 1)
		}
	}
	defer s.cancelUntil(0)
	s.finalConf = s.finalConf[:0]

	var restarts int64
	conflictsAtRestart := int64(0)
	limit := luby(1) * 64

	for {
		confl := s.propagate()
		if err := s.chargeProps(); err != nil {
			s.stopErr = err
			return Unknown
		}
		if confl != nil {
			s.stats.Conflicts++
			conflictsAtRestart++
			if s.budget == 0 {
				s.stopErr = ErrBudget
				return Unknown
			}
			if s.budget > 0 {
				s.budget--
			}
			if err := s.bres.ChargeConflicts(1); err != nil {
				s.stopErr = err
				return Unknown
			}
			if s.decisionLevel() <= len(assumptions) {
				// Conflict at assumption level: analyse which
				// assumptions are to blame, then fail.
				if s.decisionLevel() == 0 {
					s.okay = false
				} else {
					s.analyzeFinal(confl, assumptions)
				}
				return Unsat
			}
			bt := s.analyze(confl)
			if bt < len(assumptions) {
				bt = len(assumptions)
			}
			s.cancelUntil(bt)
			learnt := s.scratch.learnt
			if len(learnt) == 1 {
				// Unit learnt clause: enqueue directly. At level 0 this
				// is a permanent fact; above (clamped to the assumption
				// level) it holds for the rest of this Solve call.
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: append([]Lit(nil), learnt...), learnt: true}
				s.learnts = append(s.learnts, c)
				s.stats.Learnt++
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayActivities()
			if float64(len(s.learnts)) > s.maxLearnt {
				s.reduceDB()
				s.maxLearnt *= 1.1
			}
			continue
		}

		// No conflict: restart?
		if !s.noRestarts && conflictsAtRestart >= limit && s.decisionLevel() > len(assumptions) {
			restarts++
			s.stats.Restarts++
			conflictsAtRestart = 0
			limit = luby(restarts+1) * 64
			if err := s.bres.Err(); err != nil {
				s.stopErr = err
				return Unknown
			}
			s.cancelUntil(len(assumptions))
			continue
		}

		// Enqueue pending assumptions as decisions.
		if dl := s.decisionLevel(); dl < len(assumptions) {
			a := assumptions[dl]
			switch s.value(a) {
			case lTrue:
				// Already satisfied: open an empty level so that
				// decisionLevel tracks assumption count.
				s.trailLn = append(s.trailLn, int32(len(s.trail)))
			case lFalse:
				s.analyzeFinalLit(a, assumptions)
				return Unsat
			default:
				s.trailLn = append(s.trailLn, int32(len(s.trail)))
				s.uncheckedEnqueue(a, nil)
			}
			continue
		}

		v := s.pickBranchVar()
		if v < 0 {
			s.model = append(s.model[:0], s.assign...)
			return Sat
		}
		s.stats.Decisions++
		// Conflict-free searches never reach the boundary checks above,
		// so poll ctx/deadline on a sampled subset of decisions too.
		if s.stats.Decisions&255 == 0 {
			if err := s.bres.Err(); err != nil {
				s.stopErr = err
				return Unknown
			}
		}
		s.trailLn = append(s.trailLn, int32(len(s.trail)))
		s.uncheckedEnqueue(MkLit(v, s.phase[v]), nil)
	}
}

// analyzeFinal computes the subset of assumptions responsible for the
// conflict clause confl, storing it in s.finalConf.
func (s *Solver) analyzeFinal(confl *clause, assumptions []Lit) {
	s.finalConf = s.finalConf[:0]
	if s.decisionLevel() == 0 {
		return
	}
	isAssumption := make(map[int]bool, len(assumptions))
	for _, a := range assumptions {
		isAssumption[a.Var()] = true
	}
	for _, l := range confl.lits {
		if s.level[l.Var()] > 0 {
			s.seen[l.Var()] = true
		}
	}
	for i := len(s.trail) - 1; i >= int(s.trailLn[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if r := s.reason[v]; r == nil {
			if isAssumption[v] {
				s.finalConf = append(s.finalConf, s.trail[i].Neg())
			}
		} else {
			for _, q := range r.lits {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
}

// analyzeFinalLit handles the case where an assumption is directly
// falsified by earlier assumptions/propagation.
func (s *Solver) analyzeFinalLit(a Lit, assumptions []Lit) {
	s.finalConf = s.finalConf[:0]
	isAssumption := make(map[int]bool, len(assumptions))
	for _, x := range assumptions {
		isAssumption[x.Var()] = true
	}
	s.finalConf = append(s.finalConf, a)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[a.Var()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLn[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if r := s.reason[v]; r == nil {
			if isAssumption[v] && v != a.Var() {
				s.finalConf = append(s.finalConf, s.trail[i].Neg())
			}
		} else {
			for _, q := range r.lits {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
}

// FinalConflict returns the failed-assumption set of the most recent
// Unsat-under-assumptions result: a subset A' of the assumptions such
// that the formula together with A' is unsatisfiable.
func (s *Solver) FinalConflict() []Lit {
	return append([]Lit(nil), s.finalConf...)
}

// Model returns the value of variable v in the most recent Sat result.
func (s *Solver) Model(v int) bool {
	return v < len(s.model) && s.model[v] == lTrue
}

// ModelLit reports whether literal l is true in the last model.
func (s *Solver) ModelLit(l Lit) bool {
	v := s.Model(l.Var())
	return v == l.IsPos()
}

// Okay reports whether the solver is still in a consistent top-level
// state (false after a clause set has been proven unsatisfiable).
func (s *Solver) Okay() bool { return s.okay }
