package sat

// EnumerateModels enumerates satisfying assignments projected onto the
// variables 0..projectTo-1, invoking yield for each distinct projected
// model (as a bool slice of length projectTo). Enumeration proceeds by
// adding a blocking clause over the projection variables after each
// model, so models differing only in auxiliary (Tseitin) variables are
// reported once.
//
// If yield returns false, enumeration stops early. limit bounds the
// number of models enumerated (≤0 means unlimited). The blocking
// clauses remain in the solver afterwards; callers that need the solver
// again should enumerate on a throwaway instance.
//
// The number of yields is returned. If a budget attached with
// SetBudget trips mid-enumeration, Solve returns Unknown and the loop
// stops with the enumeration incomplete; budget-aware callers must
// check StopCause afterwards to distinguish exhaustion from
// interruption.
func (s *Solver) EnumerateModels(projectTo int, limit int, yield func(model []bool) bool) int {
	count := 0
	block := make([]Lit, 0, projectTo)
	model := make([]bool, projectTo)
	for limit <= 0 || count < limit {
		if s.Solve() != Sat {
			break
		}
		for v := 0; v < projectTo; v++ {
			model[v] = s.Model(v)
		}
		count++
		if !yield(model) {
			break
		}
		block = block[:0]
		for v := 0; v < projectTo; v++ {
			block = append(block, MkLit(v, !model[v]))
		}
		if !s.AddClause(block...) {
			break // blocked the last model: formula exhausted
		}
	}
	return count
}

// SolveWithModel is a convenience wrapper: it solves under assumptions
// and, when satisfiable, returns the assignment of variables
// 0..projectTo-1.
func (s *Solver) SolveWithModel(projectTo int, assumptions ...Lit) (Status, []bool) {
	st := s.Solve(assumptions...)
	if st != Sat {
		return st, nil
	}
	model := make([]bool, projectTo)
	for v := 0; v < projectTo; v++ {
		model[v] = s.Model(v)
	}
	return st, model
}
