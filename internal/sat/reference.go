package sat

import (
	"errors"
	"fmt"
)

// ErrTooLarge is returned by the reference brute-forcers when the
// instance exceeds their exhaustive-enumeration cap. It is a typed
// error (not a panic): reference implementations are library code and
// must fail cleanly on oversized input.
var ErrTooLarge = errors.New("sat: instance too large for brute force")

// Reference solvers used for cross-validation in tests and as ablation
// baselines in the benchmark harness:
//
//   - BruteForce: exhaustive 2^n enumeration (ground truth for tiny
//     instances);
//   - DPLL: chronological-backtracking DPLL with unit propagation but
//     no clause learning, no activity heuristic, no restarts (the
//     "CDCL vs DPLL" ablation of DESIGN.md §8).

// BruteForce reports satisfiability of the clauses over nVars variables
// by exhaustive enumeration, returning a model if satisfiable. Intended
// for nVars ≤ ~20 in tests; above 30 variables it returns ErrTooLarge.
func BruteForce(nVars int, clauses [][]Lit) (bool, []bool, error) {
	if nVars > 30 {
		return false, nil, fmt.Errorf("%w: BruteForce limited to 30 variables, got %d", ErrTooLarge, nVars)
	}
	model := make([]bool, nVars)
	for bits := 0; bits < 1<<uint(nVars); bits++ {
		for v := 0; v < nVars; v++ {
			model[v] = bits&(1<<uint(v)) != 0
		}
		if evalClauses(clauses, model) {
			return true, model, nil
		}
	}
	return false, nil, nil
}

// CountModels counts satisfying assignments by exhaustive enumeration;
// above 30 variables it returns ErrTooLarge.
func CountModels(nVars int, clauses [][]Lit) (int, error) {
	if nVars > 30 {
		return 0, fmt.Errorf("%w: CountModels limited to 30 variables, got %d", ErrTooLarge, nVars)
	}
	model := make([]bool, nVars)
	count := 0
	for bits := 0; bits < 1<<uint(nVars); bits++ {
		for v := 0; v < nVars; v++ {
			model[v] = bits&(1<<uint(v)) != 0
		}
		if evalClauses(clauses, model) {
			count++
		}
	}
	return count, nil
}

func evalClauses(clauses [][]Lit, model []bool) bool {
	for _, c := range clauses {
		sat := false
		for _, l := range c {
			if model[l.Var()] == l.IsPos() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// DPLL decides satisfiability with plain DPLL (unit propagation +
// chronological backtracking, first unassigned variable, no learning).
// It returns the status and, if Sat, a model. maxDecisions bounds the
// search (≤0 = unlimited); on exhaustion it returns Unknown.
func DPLL(nVars int, clauses [][]Lit, maxDecisions int64) (Status, []bool) {
	d := &dpll{
		nVars:   nVars,
		clauses: clauses,
		assign:  make([]lbool, nVars),
		budget:  maxDecisions,
	}
	st := d.search()
	if st != Sat {
		return st, nil
	}
	model := make([]bool, nVars)
	for v := 0; v < nVars; v++ {
		model[v] = d.assign[v] == lTrue
	}
	return Sat, model
}

type dpll struct {
	nVars   int
	clauses [][]Lit
	assign  []lbool
	trail   []int
	budget  int64
}

func (d *dpll) value(l Lit) lbool {
	v := d.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.IsPos() == (v == lTrue) {
		return lTrue
	}
	return lFalse
}

func (d *dpll) set(l Lit) {
	d.assign[l.Var()] = boolToLbool(l.IsPos())
	d.trail = append(d.trail, l.Var())
}

// propagate applies unit propagation to fixpoint. It returns false on
// conflict.
func (d *dpll) propagate() bool {
	for changed := true; changed; {
		changed = false
		for _, c := range d.clauses {
			var unit Lit = -1
			unassigned, satisfied := 0, false
			for _, l := range c {
				switch d.value(l) {
				case lTrue:
					satisfied = true
				case lUndef:
					unassigned++
					unit = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch unassigned {
			case 0:
				return false
			case 1:
				d.set(unit)
				changed = true
			}
		}
	}
	return true
}

func (d *dpll) search() Status {
	base := len(d.trail)
	if !d.propagate() {
		d.undo(base)
		return Unsat
	}
	v := -1
	for u := 0; u < d.nVars; u++ {
		if d.assign[u] == lUndef {
			v = u
			break
		}
	}
	if v < 0 {
		return Sat
	}
	if d.budget == 0 {
		d.undo(base)
		return Unknown
	}
	if d.budget > 0 {
		d.budget--
	}
	for _, sign := range []bool{true, false} {
		mark := len(d.trail)
		d.set(MkLit(v, sign))
		switch st := d.search(); st {
		case Sat:
			return Sat
		case Unknown:
			d.undo(base)
			return Unknown
		}
		d.undo(mark)
	}
	d.undo(base)
	return Unsat
}

func (d *dpll) undo(to int) {
	for len(d.trail) > to {
		v := d.trail[len(d.trail)-1]
		d.trail = d.trail[:len(d.trail)-1]
		d.assign[v] = lUndef
	}
}
