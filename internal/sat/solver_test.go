package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lits(xs ...int) []Lit {
	// positive int i means variable i-1 positive, negative means negated.
	out := make([]Lit, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = MkLit(x-1, true)
		} else {
			out[i] = MkLit(-x-1, false)
		}
	}
	return out
}

func addAll(s *Solver, clauses [][]Lit) bool {
	for _, c := range clauses {
		if !s.AddClause(c...) {
			return false
		}
	}
	return true
}

func TestLitEncoding(t *testing.T) {
	l := MkLit(5, true)
	if l.Var() != 5 || !l.IsPos() {
		t.Fatalf("MkLit(5,true) = %v", l)
	}
	n := l.Neg()
	if n.Var() != 5 || n.IsPos() {
		t.Fatalf("Neg broken: %v", n)
	}
	if n.Neg() != l {
		t.Fatalf("double negation broken")
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New(3)
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty formula: got %v, want Sat", st)
	}
}

func TestUnitPropagation(t *testing.T) {
	s := New(2)
	s.AddClause(lits(1)...)
	s.AddClause(lits(-1, 2)...)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
	if !s.Model(0) || !s.Model(1) {
		t.Fatalf("model = %v %v, want true true", s.Model(0), s.Model(1))
	}
}

func TestTriviallyUnsat(t *testing.T) {
	s := New(1)
	s.AddClause(lits(1)...)
	if ok := s.AddClause(lits(-1)...); ok {
		t.Fatalf("AddClause should report top-level conflict")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
}

func TestSimpleUnsat(t *testing.T) {
	// (a∨b) ∧ (a∨¬b) ∧ (¬a∨b) ∧ (¬a∨¬b)
	s := New(2)
	addAll(s, [][]Lit{lits(1, 2), lits(1, -2), lits(-1, 2), lits(-1, -2)})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
}

func TestAssumptions(t *testing.T) {
	s := New(3)
	addAll(s, [][]Lit{lits(-1, 2), lits(-2, 3)})
	if st := s.Solve(lits(1)...); st != Sat {
		t.Fatalf("sat under a: got %v", st)
	}
	if !s.Model(2) {
		t.Fatalf("c should be forced true under assumption a")
	}
	// Now make it unsat under assumptions.
	s.AddClause(lits(-3)...)
	if st := s.Solve(lits(1)...); st != Unsat {
		t.Fatalf("got %v, want Unsat under a", st)
	}
	fc := s.FinalConflict()
	if len(fc) == 0 {
		t.Fatalf("final conflict should mention the failed assumption")
	}
	// Solver must remain reusable without the assumption.
	if st := s.Solve(); st != Sat {
		t.Fatalf("still sat without assumptions: got %v", st)
	}
	if s.Model(0) {
		t.Fatalf("a must be false now")
	}
}

func TestFinalConflictSubset(t *testing.T) {
	// x1 ∧ x2 unsat with clause (¬x1 ∨ ¬x2); assumption x3 is irrelevant.
	s := New(3)
	s.AddClause(lits(-1, -2)...)
	if st := s.Solve(lits(3, 1, 2)...); st != Unsat {
		t.Fatalf("want Unsat")
	}
	for _, l := range s.FinalConflict() {
		if l.Var() == 2 {
			t.Fatalf("irrelevant assumption x3 in final conflict %v", s.FinalConflict())
		}
	}
}

// randomCNF produces a random k-CNF instance.
func randomCNF(rng *rand.Rand, nVars, nClauses, k int) [][]Lit {
	cls := make([][]Lit, nClauses)
	for i := range cls {
		c := make([]Lit, k)
		for j := range c {
			c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		cls[i] = c
	}
	return cls
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 1 + rng.Intn(4*nVars)
		cls := randomCNF(rng, nVars, nClauses, 2+rng.Intn(2))
		want, _, _ := BruteForce(nVars, cls)

		s := New(nVars)
		okAdd := addAll(s, cls)
		got := s.Solve()
		if want && got != Sat {
			t.Fatalf("iter %d: brute force SAT, solver %v (addOK=%v)\nclauses=%v", iter, got, okAdd, cls)
		}
		if !want && got != Unsat {
			t.Fatalf("iter %d: brute force UNSAT, solver %v\nclauses=%v", iter, got, cls)
		}
		if got == Sat {
			model := make([]bool, nVars)
			for v := 0; v < nVars; v++ {
				model[v] = s.Model(v)
			}
			if !evalClauses(cls, model) {
				t.Fatalf("iter %d: returned model does not satisfy formula", iter)
			}
		}
	}
}

func TestRandomAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 1000; iter++ {
		nVars := 3 + rng.Intn(7)
		cls := randomCNF(rng, nVars, 1+rng.Intn(3*nVars), 3)
		nAssume := rng.Intn(3)
		assume := make([]Lit, 0, nAssume)
		used := map[int]bool{}
		for len(assume) < nAssume {
			v := rng.Intn(nVars)
			if used[v] {
				continue
			}
			used[v] = true
			assume = append(assume, MkLit(v, rng.Intn(2) == 0))
		}
		// Ground truth: add assumptions as unit clauses.
		ref := append([][]Lit{}, cls...)
		for _, a := range assume {
			ref = append(ref, []Lit{a})
		}
		want, _, _ := BruteForce(nVars, ref)

		s := New(nVars)
		addAll(s, cls)
		got := s.Solve(assume...)
		if (got == Sat) != want {
			t.Fatalf("iter %d: want sat=%v got %v (assume=%v)", iter, want, got, assume)
		}
		// Solver must be reusable: repeat without assumptions.
		want2, _, _ := BruteForce(nVars, cls)
		if got2 := s.Solve(); (got2 == Sat) != want2 {
			t.Fatalf("iter %d: reuse after assumptions broken: want sat=%v got %v", iter, want2, got2)
		}
	}
}

func TestDPLLAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 800; iter++ {
		nVars := 3 + rng.Intn(7)
		cls := randomCNF(rng, nVars, 1+rng.Intn(4*nVars), 3)
		want, _, _ := BruteForce(nVars, cls)
		got, model := DPLL(nVars, cls, -1)
		if (got == Sat) != want {
			t.Fatalf("iter %d: DPLL=%v, brute=%v", iter, got, want)
		}
		if got == Sat && !evalClauses(cls, model) {
			t.Fatalf("iter %d: DPLL model invalid", iter)
		}
	}
}

func TestEnumerateModelsComplete(t *testing.T) {
	// a∨b over 2 vars: exactly 3 models.
	s := New(2)
	s.AddClause(lits(1, 2)...)
	var got [][]bool
	n := s.EnumerateModels(2, 0, func(m []bool) bool {
		got = append(got, append([]bool(nil), m...))
		return true
	})
	if n != 3 || len(got) != 3 {
		t.Fatalf("enumerated %d models, want 3: %v", n, got)
	}
	seen := map[[2]bool]bool{}
	for _, m := range got {
		seen[[2]bool{m[0], m[1]}] = true
	}
	if seen[[2]bool{false, false}] || len(seen) != 3 {
		t.Fatalf("wrong model set: %v", got)
	}
}

func TestEnumerateModelsCountsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		nVars := 2 + rng.Intn(6)
		cls := randomCNF(rng, nVars, 1+rng.Intn(3*nVars), 2)
		want, _ := CountModels(nVars, cls)
		s := New(nVars)
		addAll(s, cls)
		got := s.EnumerateModels(nVars, 0, func([]bool) bool { return true })
		if got != want {
			t.Fatalf("iter %d: enumerated %d, brute force %d\nclauses=%v", iter, got, want, cls)
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	s := New(4) // unconstrained: 16 models
	if n := s.EnumerateModels(4, 5, func([]bool) bool { return true }); n != 5 {
		t.Fatalf("limit ignored: %d", n)
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard unsat pigeonhole-ish instance would take many conflicts;
	// with budget 0 conflicts the solver must give up as soon as a
	// conflict occurs.
	s := New(2)
	addAll(s, [][]Lit{lits(1, 2), lits(1, -2), lits(-1, 2), lits(-1, -2)})
	s.SetConflictBudget(0)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("got %v, want Unknown under zero budget", st)
	}
	s.SetConflictBudget(-1)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat with unlimited budget", st)
	}
}

func TestNewVarGrowth(t *testing.T) {
	s := New(0)
	a := s.NewVar()
	b := s.NewVar()
	if a != 0 || b != 1 {
		t.Fatalf("NewVar sequence wrong: %d %d", a, b)
	}
	s.AddClause(MkLit(a, true), MkLit(b, false))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v", st)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes — classically unsat and
	// requires real search. Keep n small for test speed.
	for n := 2; n <= 5; n++ {
		s := New((n + 1) * n)
		v := func(p, h int) int { return p*n + h }
		for p := 0; p <= n; p++ {
			c := make([]Lit, n)
			for h := 0; h < n; h++ {
				c[h] = MkLit(v(p, h), true)
			}
			s.AddClause(c...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					s.AddClause(MkLit(v(p1, h), false), MkLit(v(p2, h), false))
				}
			}
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d): got %v, want Unsat", n+1, n, st)
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if g := luby(int64(i + 1)); g != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, g, w)
		}
	}
}

func TestQuickMedian(t *testing.T) {
	if m := quickMedian([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("median = %v", m)
	}
	if m := quickMedian([]float64{5}); m != 5 {
		t.Fatalf("median = %v", m)
	}
	if m := quickMedian(nil); m != 0 {
		t.Fatalf("median of empty = %v", m)
	}
}

// Property: for any CNF, if the solver says Sat the model satisfies the
// CNF; solver verdict always equals brute force.
func TestQuickCheckSolverSound(t *testing.T) {
	f := func(seed int64, nv uint8, nc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 2 + int(nv%8)
		cls := randomCNF(rng, nVars, 1+int(nc%24), 3)
		want, _, _ := BruteForce(nVars, cls)
		s := New(nVars)
		addAll(s, cls)
		return (s.Solve() == Sat) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New(3)
	addAll(s, [][]Lit{lits(1, 2), lits(-1, 3)})
	s.Solve()
	st := s.Stats()
	if st.Solves != 1 {
		t.Fatalf("Solves = %d", st.Solves)
	}
	s.Solve()
	if s.Stats().Solves != 2 {
		t.Fatalf("Solves = %d", s.Stats().Solves)
	}
}

func TestZeroVariableSolver(t *testing.T) {
	s := New(0)
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty solver must be Sat, got %v", st)
	}
	if n := s.EnumerateModels(0, 0, func([]bool) bool { return true }); n != 1 {
		t.Fatalf("empty solver has %d models, want 1 (the empty one)", n)
	}
}

func TestRestartsToggleStillComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 500; iter++ {
		nVars := 3 + rng.Intn(7)
		cls := randomCNF(rng, nVars, 1+rng.Intn(4*nVars), 3)
		want, _, _ := BruteForce(nVars, cls)
		s := New(nVars)
		s.SetRestartsEnabled(false)
		addAll(s, cls)
		if got := s.Solve(); (got == Sat) != want {
			t.Fatalf("iter %d: no-restart solver wrong: %v vs %v", iter, got, want)
		}
	}
}

func TestHardInstanceExercisesReduceDB(t *testing.T) {
	// PHP(8,7) forces enough conflicts to trigger learnt-clause
	// reduction; the verdict must stay Unsat and the stats sane.
	if testing.Short() {
		t.Skip("hard instance")
	}
	n := 7
	s := New((n + 1) * n)
	v := func(p, h int) int { return p*n + h }
	for p := 0; p <= n; p++ {
		c := make([]Lit, n)
		for h := 0; h < n; h++ {
			c[h] = MkLit(v(p, h), true)
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v(p1, h), false), MkLit(v(p2, h), false))
			}
		}
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(8,7) must be Unsat, got %v", st)
	}
	stats := s.Stats()
	if stats.Conflicts == 0 || stats.Learnt == 0 {
		t.Fatalf("expected real search: %+v", stats)
	}
}

func TestSolverStressRandomSequence(t *testing.T) {
	// A long interleaving of AddClause / Solve / assumptions on one
	// solver instance, cross-checked against brute force at each step.
	rng := rand.New(rand.NewSource(301))
	nVars := 8
	s := New(nVars)
	var clauses [][]Lit
	for step := 0; step < 300; step++ {
		if rng.Intn(2) == 0 {
			c := make([]Lit, 1+rng.Intn(3))
			for i := range c {
				c[i] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		var assume []Lit
		if rng.Intn(3) == 0 {
			assume = append(assume, MkLit(rng.Intn(nVars), rng.Intn(2) == 0))
		}
		ref := append([][]Lit{}, clauses...)
		for _, a := range assume {
			ref = append(ref, []Lit{a})
		}
		want, _, _ := BruteForce(nVars, ref)
		if got := s.Solve(assume...); (got == Sat) != want {
			t.Fatalf("step %d: got %v want sat=%v (assume=%v, %d clauses)",
				step, got, want, assume, len(clauses))
		}
	}
}
