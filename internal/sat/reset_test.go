package sat

import (
	"math/rand"
	"testing"
)

// randClauses generates a random 3-ish-CNF over n variables.
func randClauses(rng *rand.Rand, n, m int) [][]Lit {
	out := make([][]Lit, m)
	for i := range out {
		k := 1 + rng.Intn(3)
		cl := make([]Lit, k)
		for j := range cl {
			cl[j] = MkLit(rng.Intn(n), rng.Intn(2) == 0)
		}
		out[i] = cl
	}
	return out
}

// TestResetMatchesFresh solves a stream of random instances on one
// Reset-reused solver and on fresh solvers, expecting identical
// verdicts (and a model verifying each Sat verdict).
func TestResetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	reused := New(0)
	for round := 0; round < 200; round++ {
		n := 3 + rng.Intn(12)
		cls := randClauses(rng, n, 2+rng.Intn(4*n))

		reused.Reset(n)
		okR := true
		for _, cl := range cls {
			if !reused.AddClause(cl...) {
				okR = false
				break
			}
		}
		stR := Unsat
		if okR {
			stR = reused.Solve()
		}

		fresh := New(n)
		okF := true
		for _, cl := range cls {
			if !fresh.AddClause(cl...) {
				okF = false
				break
			}
		}
		stF := Unsat
		if okF {
			stF = fresh.Solve()
		}

		if stR != stF {
			t.Fatalf("round %d: reused=%v fresh=%v", round, stR, stF)
		}
		if stR == Sat {
			// Verify the reused solver's model against the clause set.
			for ci, cl := range cls {
				sat := false
				for _, l := range cl {
					if reused.ModelLit(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("round %d: reused model violates clause %d", round, ci)
				}
			}
		}
	}
}

// TestResetClearsState checks that facts and budgets from one use do
// not leak into the next.
func TestResetClearsState(t *testing.T) {
	s := New(2)
	s.AddClause(MkLit(0, true))
	s.AddClause(MkLit(0, false)) // top-level conflict: solver dead
	if s.Okay() {
		t.Fatal("expected top-level conflict")
	}
	s.SetConflictBudget(0)
	s.SetRestartsEnabled(false)

	s.Reset(1)
	if !s.Okay() {
		t.Fatal("Reset did not clear the conflict state")
	}
	if got := s.NumVars(); got != 1 {
		t.Fatalf("NumVars after Reset = %d, want 1", got)
	}
	if !s.AddClause(MkLit(0, false)) {
		t.Fatal("AddClause failed after Reset")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("Solve after Reset = %v (budget/unit leak?)", st)
	}
	if s.Model(0) {
		t.Fatal("unit ¬x0 not respected after Reset")
	}
	if got := s.Stats().Solves; got != 1 {
		t.Fatalf("stats not reset: Solves = %d", got)
	}
}

// TestResetGrowAndShrink reuses one solver across very different sizes.
func TestResetGrowAndShrink(t *testing.T) {
	s := New(4)
	for _, n := range []int{100, 3, 50, 1, 200} {
		s.Reset(n)
		// chain x0 → x1 → … → x_{n-1}, assert x0
		for v := 0; v+1 < n; v++ {
			s.AddClause(MkLit(v, false), MkLit(v+1, true))
		}
		s.AddClause(MkLit(0, true))
		if st := s.Solve(); st != Sat {
			t.Fatalf("n=%d: %v", n, st)
		}
		for v := 0; v < n; v++ {
			if !s.Model(v) {
				t.Fatalf("n=%d: implication chain broken at %d", n, v)
			}
		}
	}
}
