package sat

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"disjunct/internal/budget"
)

// php builds the pigeonhole principle PHP(n+1, n): unsatisfiable and
// search-heavy — the canonical budget-tripping workload.
func php(n int) *Solver {
	s := New((n + 1) * n)
	v := func(p, h int) int { return p*n + h }
	for p := 0; p <= n; p++ {
		c := make([]Lit, n)
		for h := 0; h < n; h++ {
			c[h] = MkLit(v(p, h), true)
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(MkLit(v(p1, h), false), MkLit(v(p2, h), false))
			}
		}
	}
	return s
}

func TestBudgetConflictTrip(t *testing.T) {
	s := php(7)
	s.SetBudget(budget.New(context.Background(), budget.Limits{Conflicts: 5}))
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if err := s.StopCause(); !errors.Is(err, budget.ErrConflictBudget) {
		t.Fatalf("StopCause = %v, want ErrConflictBudget", err)
	}
}

func TestBudgetPropagationTrip(t *testing.T) {
	s := php(7)
	s.SetBudget(budget.New(context.Background(), budget.Limits{Propagations: 3}))
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if err := s.StopCause(); !errors.Is(err, budget.ErrPropagationBudget) {
		t.Fatalf("StopCause = %v, want ErrPropagationBudget", err)
	}
}

func TestBudgetContextCancel(t *testing.T) {
	s := php(6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetBudget(budget.New(ctx, budget.Limits{}))
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if err := s.StopCause(); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("StopCause = %v, want ErrCanceled", err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	s := php(6)
	s.SetBudget(budget.New(context.Background(), budget.Limits{Deadline: time.Nanosecond}))
	time.Sleep(time.Millisecond)
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	if err := s.StopCause(); !errors.Is(err, budget.ErrDeadline) {
		t.Fatalf("StopCause = %v, want ErrDeadline", err)
	}
}

// TestBudgetedCompleteMatchesUnbudgeted: when the budget is generous
// enough for the search to finish, the verdict and the model are
// byte-identical to the unbudgeted run (the budget machinery never
// perturbs search order).
func TestBudgetedCompleteMatchesUnbudgeted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		nVars := 3 + rng.Intn(10)
		clauses := randomCNF(rng, nVars, 2+rng.Intn(3*nVars), 3)

		plain := New(nVars)
		addAll(plain, clauses)
		wantSt := plain.Solve()

		bud := New(nVars)
		addAll(bud, clauses)
		bud.SetBudget(budget.New(context.Background(), budget.Limits{
			Conflicts: 1 << 30, Propagations: 1 << 40, Deadline: time.Hour,
		}))
		gotSt := bud.Solve()

		if gotSt != wantSt {
			t.Fatalf("iter %d: budgeted %v, unbudgeted %v", iter, gotSt, wantSt)
		}
		if err := bud.StopCause(); err != nil {
			t.Fatalf("iter %d: completed solve has StopCause %v", iter, err)
		}
		if wantSt == Sat {
			for v := 0; v < nVars; v++ {
				if plain.Model(v) != bud.Model(v) {
					t.Fatalf("iter %d: model differs at %d", iter, v)
				}
			}
		}
	}
}

// TestBudgetResume: a solver whose budget tripped can be re-budgeted
// (after Reset the stop cause clears) — the enumerator pool depends on
// this.
func TestBudgetResetClearsStopCause(t *testing.T) {
	s := php(7)
	s.SetBudget(budget.New(context.Background(), budget.Limits{Conflicts: 2}))
	if st := s.Solve(); st != Unknown {
		t.Fatalf("status = %v, want Unknown", st)
	}
	s.Reset(4)
	if err := s.StopCause(); err != nil {
		t.Fatalf("StopCause after Reset = %v", err)
	}
	s.AddClause(MkLit(0, true))
	if st := s.Solve(); st != Sat {
		t.Fatalf("fresh solve after Reset = %v, want Sat", st)
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	_, _, err := BruteForce(31, nil)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("BruteForce(31): %v, want ErrTooLarge", err)
	}
	_, err = CountModels(64, nil)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("CountModels(64): %v, want ErrTooLarge", err)
	}
	// Within the cap everything still works.
	ok, model, err := BruteForce(2, [][]Lit{{MkLit(0, true)}, {MkLit(1, false)}})
	if err != nil || !ok || !model[0] || model[1] {
		t.Fatalf("BruteForce small: ok=%v model=%v err=%v", ok, model, err)
	}
}
