package sat

// varHeap is a binary max-heap of variable indices ordered by activity,
// with position tracking so that activities can be bumped in place.
type varHeap struct {
	act   *[]float64
	heap  []int
	index []int // index[v] = position of v in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(a, b int) bool {
	return (*h.act)[h.heap[a]] > (*h.act)[h.heap[b]]
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) contains(v int) bool {
	return v < len(h.index) && h.index[v] >= 0
}

// insert adds v if absent.
func (h *varHeap) insert(v int) {
	for len(h.index) <= v {
		h.index = append(h.index, -1)
	}
	if h.index[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

// clear empties the heap, keeping the backing arrays for reuse.
func (h *varHeap) clear() {
	h.heap = h.heap[:0]
	for i := range h.index {
		h.index[i] = -1
	}
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v int) {
	if h.contains(v) {
		h.up(h.index[v])
	}
}

// pop removes and returns the maximum-activity variable.
func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.index[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.index[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.index[h.heap[i]] = i
	h.index[h.heap[j]] = j
}
