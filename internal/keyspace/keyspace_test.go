package keyspace

import (
	"math/rand"
	"testing"
)

func TestHashKeyStable(t *testing.T) {
	// The placement function is part of the cluster's wire contract:
	// routers and workers in different processes must agree. Pin a few
	// values so an accidental hash change fails loudly instead of
	// silently unwarming every slice.
	if HashKey("") != Splitmix64(14695981039346656037) {
		t.Fatal("HashKey(\"\") drifted from splitmix64(fnv-offset-basis)")
	}
	if HashKey("abc") != HashKey("abc") {
		t.Fatal("HashKey not deterministic")
	}
	if HashKey("abc") == HashKey("abd") {
		t.Fatal("suspicious collision on adjacent keys")
	}
}

func TestRangeContains(t *testing.T) {
	plain := Range{Lo: 100, Hi: 200}
	for h, want := range map[uint64]bool{100: false, 101: true, 200: true, 201: false, 50: false} {
		if plain.Contains(h) != want {
			t.Fatalf("plain.Contains(%d) = %v, want %v", h, !want, want)
		}
	}
	wrap := Range{Lo: ^uint64(0) - 10, Hi: 10}
	for h, want := range map[uint64]bool{^uint64(0) - 10: false, ^uint64(0): true, 0: true, 10: true, 11: false, 500: false} {
		if wrap.Contains(h) != want {
			t.Fatalf("wrap.Contains(%d) = %v, want %v", h, !want, want)
		}
	}
	// Lo == Hi is the full circle: the single-member ring owns all keys.
	full := Range{Lo: 42, Hi: 42}
	for _, h := range []uint64{0, 41, 42, 43, ^uint64(0)} {
		if !full.Contains(h) {
			t.Fatalf("full-circle range should contain %d", h)
		}
	}
}

func TestRangesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var rs Ranges
	for i := 0; i < 100; i++ {
		rs = append(rs, Range{Lo: rng.Uint64(), Hi: rng.Uint64()})
	}
	back, err := ParseRanges(rs.String())
	if err != nil {
		t.Fatalf("ParseRanges(String): %v", err)
	}
	if len(back) != len(rs) {
		t.Fatalf("round trip length %d, want %d", len(back), len(rs))
	}
	for i := range rs {
		if back[i] != rs[i] {
			t.Fatalf("range %d: %+v round-tripped to %+v", i, rs[i], back[i])
		}
	}
	if got, err := ParseRanges(""); err != nil || len(got) != 0 {
		t.Fatalf("empty input should parse to empty slice, got %v, %v", got, err)
	}
	for _, bad := range []string{"zz", "1-2-3", "g-1", "1-", "-1", "1,2"} {
		if _, err := ParseRanges(bad); err == nil {
			t.Fatalf("ParseRanges(%q) should fail", bad)
		}
	}
}
