// Package keyspace is the one shared definition of where a routing
// key lives on the cluster's hash circle. The consistent-hash ring
// (internal/cluster), the serve layer's handoff slicing, and the join
// orchestration all need to agree byte-for-byte on the same placement
// function — a worker exporting "the slice a joining node will own"
// computes membership of exactly the hash ranges the router derived
// from its ring — so the hash and the range arithmetic live in this
// leaf package instead of being duplicated per layer.
//
// Keys are compiled-database fingerprints (cache.RawKey output), but
// nothing here depends on that: any string key hashes to a point on
// the 64-bit circle, and a Range is a half-open arc (Lo, Hi] of that
// circle, wrapping through zero when Lo >= Hi.
package keyspace

import (
	"fmt"
	"strconv"
	"strings"
)

// FNV64a is FNV-1a: stable across processes (unlike Go's map
// iteration or maphash seeds), cheap, and well distributed once spread
// through Splitmix64.
func FNV64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Splitmix64 finishes the avalanche; FNV alone clusters similar keys.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashKey places a routing key on the circle.
func HashKey(key string) uint64 { return Splitmix64(FNV64a(key)) }

// Range is the half-open arc (Lo, Hi] of the hash circle: a point h
// is inside when Lo < h <= Hi, walking clockwise (increasing hash,
// wrapping through zero when Lo >= Hi). A ring member's keyspace is
// the union of the arcs ending at its virtual nodes — exactly the
// keys whose clockwise successor point is one of the member's.
type Range struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// Contains reports whether a hash point lies on the arc. A range with
// Lo == Hi is the full circle (the single-member ring owns
// everything), which the wrap rule covers for free.
func (r Range) Contains(h uint64) bool {
	if r.Lo < r.Hi {
		return h > r.Lo && h <= r.Hi
	}
	return h > r.Lo || h <= r.Hi
}

// Ranges is a keyspace slice: the union of arcs.
type Ranges []Range

// Contains reports whether any arc holds the point.
func (rs Ranges) Contains(h uint64) bool {
	for _, r := range rs {
		if r.Contains(h) {
			return true
		}
	}
	return false
}

// ContainsKey hashes the key and tests membership.
func (rs Ranges) ContainsKey(key string) bool { return rs.Contains(HashKey(key)) }

// String renders the slice as "lo-hi,lo-hi,…" in hex — compact enough
// for a query parameter even at 64 virtual nodes per member.
func (rs Ranges) String() string {
	var b strings.Builder
	for i, r := range rs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%x-%x", r.Lo, r.Hi)
	}
	return b.String()
}

// ParseRanges inverts String. An empty input is an empty slice (which
// contains nothing); a malformed arc is an error, never a guess — a
// worker must not silently export the wrong slice.
func ParseRanges(s string) (Ranges, error) {
	if s == "" {
		return nil, nil
	}
	var rs Ranges
	for _, part := range strings.Split(s, ",") {
		lo, hi, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("keyspace: range %q is not lo-hi", part)
		}
		l, err := strconv.ParseUint(lo, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("keyspace: range %q: %v", part, err)
		}
		h, err := strconv.ParseUint(hi, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("keyspace: range %q: %v", part, err)
		}
		rs = append(rs, Range{Lo: l, Hi: h})
	}
	return rs, nil
}
