// Package models implements the model-theoretic machinery the paper's
// semantics are defined with: models M(DB), minimal models MM(DB), and
// (P;Z)-minimal models MM(DB;P;Z) for a partition ⟨P;Q;Z⟩ of the
// vocabulary, plus minimality checking, minimal-model enumeration, and
// the UMINSAT (unique minimal model) problem of Proposition 5.4.
//
// The minimality check is the NP-oracle workhorse: M is (P;Z)-minimal
// iff DB has no model N with N∩P ⊊ M∩P and N∩Q = M∩Q — one SAT call.
package models

import (
	"disjunct/internal/bitset"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

// Partition is a partition ⟨P;Q;Z⟩ of the vocabulary: P atoms are
// minimised, Q atoms are fixed, Z atoms are allowed to vary. The paper
// writes MM(DB;P;Z); GCWA/EGCWA correspond to P = V, Q = Z = ∅.
type Partition struct {
	P *bitset.Set
	Q *bitset.Set
	Z *bitset.Set
}

// FullMin returns the partition minimising every atom (Q = Z = ∅).
func FullMin(n int) Partition {
	return Partition{
		P: bitset.New(n).Fill(),
		Q: bitset.New(n),
		Z: bitset.New(n),
	}
}

// NewPartition builds a partition from explicit atom lists; atoms not
// mentioned default to Q (fixed).
func NewPartition(n int, p, z []logic.Atom) Partition {
	part := Partition{P: bitset.New(n), Q: bitset.New(n), Z: bitset.New(n)}
	for _, a := range p {
		part.P.Set(int(a))
	}
	for _, a := range z {
		part.Z.Set(int(a))
	}
	part.Q.Fill()
	part.Q.DifferenceWith(part.P)
	part.Q.DifferenceWith(part.Z)
	return part
}

// Valid reports whether P, Q, Z indeed partition {0..n-1}.
func (p Partition) Valid() bool {
	if p.P.Intersects(p.Q) || p.P.Intersects(p.Z) || p.Q.Intersects(p.Z) {
		return false
	}
	u := p.P.Clone()
	u.UnionWith(p.Q)
	u.UnionWith(p.Z)
	return u.Count() == u.Len()
}

// Engine bundles a database with an NP oracle and caches its CNF.
type Engine struct {
	DB  *db.DB
	Ora *oracle.NP
	cnf logic.CNF
}

// NewEngine returns an engine for d using oracle o (a fresh one if nil).
func NewEngine(d *db.DB, o *oracle.NP) *Engine {
	if o == nil {
		o = oracle.NewNP()
	}
	return &Engine{DB: d, Ora: o, cnf: d.ToCNF()}
}

// NewEngineCNF returns an engine reusing an already-built clausal form
// (e.g. a compiled artifact's CNF) instead of recomputing d.ToCNF().
// The engine treats cnf as read-only (searches work on clones), so one
// CNF may back many engines concurrently.
func NewEngineCNF(d *db.DB, o *oracle.NP, cnf logic.CNF) *Engine {
	if o == nil {
		o = oracle.NewNP()
	}
	return &Engine{DB: d, Ora: o, cnf: cnf}
}

// CNF returns the database's cached clausal form.
func (e *Engine) CNF() logic.CNF { return e.cnf }

// HasModel reports whether the database is satisfiable (one NP call)
// and returns a model if so.
func (e *Engine) HasModel() (bool, logic.Interp) {
	return e.Ora.Sat(e.DB.N(), e.cnf)
}

// IsModel reports whether m satisfies the database (polynomial, no
// oracle call).
func (e *Engine) IsModel(m logic.Interp) bool { return e.DB.Sat(m) }

// IsMinimal reports whether model m is minimal: no model N ⊊ M
// (on all atoms). One NP call. The caller must ensure m is a model.
func (e *Engine) IsMinimal(m logic.Interp) bool {
	return e.IsMinimalPZ(m, FullMin(e.DB.N()))
}

// IsMinimalPZ reports whether model m is (P;Z)-minimal: there is no
// model N of DB with N∩Q = M∩Q and N∩P ⊊ M∩P. One NP call: the query
// CNF is DB ∧ (Q fixed as in M) ∧ (¬p for p ∈ P\M) ∧ (∨_{p ∈ P∩M} ¬p).
func (e *Engine) IsMinimalPZ(m logic.Interp, part Partition) bool {
	n := e.DB.N()
	query := logic.CloneCNF(e.cnf)
	var shrink logic.Clause
	for v := 0; v < n; v++ {
		a := logic.Atom(v)
		switch {
		case part.Q.Test(v):
			if m.Holds(a) {
				query = append(query, logic.Clause{logic.PosLit(a)})
			} else {
				query = append(query, logic.Clause{logic.NegLit(a)})
			}
		case part.P.Test(v):
			if m.Holds(a) {
				shrink = append(shrink, logic.NegLit(a))
			} else {
				query = append(query, logic.Clause{logic.NegLit(a)})
			}
		}
	}
	if len(shrink) == 0 {
		// M∩P is already empty: nothing can shrink.
		return true
	}
	query = append(query, shrink)
	sat, _ := e.Ora.Sat(n, query)
	return !sat
}

// Minimize shrinks a model m to a minimal model below it by repeated
// SAT calls (each call either finds a strictly smaller model or proves
// minimality). At most |m| + 1 NP calls.
func (e *Engine) Minimize(m logic.Interp) logic.Interp {
	return e.MinimizePZ(m, FullMin(e.DB.N()))
}

// MinimizePZ shrinks m to a (P;Z)-minimal model N with N∩P ⊆ M∩P and
// N∩Q = M∩Q.
func (e *Engine) MinimizePZ(m logic.Interp, part Partition) logic.Interp {
	n := e.DB.N()
	cur := m.Clone()
	for {
		query := logic.CloneCNF(e.cnf)
		var shrink logic.Clause
		for v := 0; v < n; v++ {
			a := logic.Atom(v)
			switch {
			case part.Q.Test(v):
				if cur.Holds(a) {
					query = append(query, logic.Clause{logic.PosLit(a)})
				} else {
					query = append(query, logic.Clause{logic.NegLit(a)})
				}
			case part.P.Test(v):
				if cur.Holds(a) {
					shrink = append(shrink, logic.NegLit(a))
				} else {
					query = append(query, logic.Clause{logic.NegLit(a)})
				}
			}
		}
		if len(shrink) == 0 {
			return cur
		}
		query = append(query, shrink)
		sat, smaller := e.Ora.Sat(n, query)
		if !sat {
			return cur
		}
		cur = smaller
	}
}

// EnumerateModels yields every model of the database over the original
// vocabulary, in no particular order. limit ≤ 0 means unlimited.
// Each enumerated model costs one NP call (blocked solver reuse is an
// implementation detail of the sat package; calls are counted per model
// plus one final unsat call).
func (e *Engine) EnumerateModels(limit int, yield func(logic.Interp) bool) int {
	es := &enumSearch{e: e}
	count := 0
	for limit <= 0 || count < limit {
		m, ok := es.step()
		if !ok {
			break
		}
		count++
		if !yield(m) {
			break
		}
	}
	return count
}

// MinimalModels computes MM(DB), the set of minimal models, by
// iterative SAT: find a model, minimise it, yield it, then block it by
// the clause ∨_{a ∈ M} ¬a ("some atom of M must be false"). Every
// other minimal model satisfies that clause (minimal models are
// pairwise ⊆-incomparable) and every model violating it is a superset
// of M, hence non-minimal — so nothing is lost and nothing above M is
// revisited. For M = ∅ the blocking clause would be empty: ∅ is then
// the unique minimal model and enumeration stops. limit ≤ 0 means
// unlimited.
func (e *Engine) MinimalModels(limit int, yield func(logic.Interp) bool) int {
	return e.MinimalModelsPZ(FullMin(e.DB.N()), limit, yield)
}

// MinimalModelsPZ computes MM(DB;P;Z), yielding one representative per
// (P,Q)-signature. After yielding a (P;Z)-minimal model M it blocks
// the clause "some atom of M∩P false, or some Q atom differs from M":
// minimal models with distinct signatures are incomparable under
// (⊆ on P, = on Q) and so survive; models agreeing with M on Q with
// P-part ⊇ M∩P are either non-minimal or Z-variants of M's signature.
// Z-variants (models equal to M on P and Q but different on Z) are
// themselves (P;Z)-minimal exactly when M is; callers that must reason
// over them (formula inference) do so via MMEntails, which checks
// Z-variants with a dedicated SAT call before blocking a signature.
func (e *Engine) MinimalModelsPZ(part Partition, limit int, yield func(logic.Interp) bool) int {
	count := 0
	e.minimalSignatures(logic.CloneCNF(e.cnf), part, func(min logic.Interp) bool {
		count++
		if !yield(min) {
			return false
		}
		return limit <= 0 || count < limit
	})
	return count
}

// sigSearch is the signature-blocking search over an arbitrary base
// clause set (the database CNF possibly strengthened by unit
// constraints — the parallel enumerator's region queries — or
// previously published blocking clauses), unrolled into a pull-based
// step function. Each step finds one base-(P;Z)-minimal signature and
// installs its blocking clause before returning, so the oracle-call
// sequence is identical whether the caller continues or stops (the
// clause only influences later steps). The base is appended to in
// place.
type sigSearch struct {
	e     *Engine
	query logic.CNF
	part  Partition
	done  bool
}

// step finds the next base-(P;Z)-minimal signature representative.
func (s *sigSearch) step() (logic.Interp, bool) {
	if s.done {
		return logic.Interp{}, false
	}
	n := s.e.DB.N()
	sat, m := s.e.Ora.Sat(n, s.query)
	if !sat {
		s.done = true
		return logic.Interp{}, false
	}
	min := s.e.minimizeAgainst(s.query, m, s.part)
	// Block every model with the same Q part and P part ⊇ min∩P.
	block := signatureBlock(min, s.part, n)
	if len(block) == 0 {
		s.done = true // unique signature (∅ on P, no Q): done after min
	} else {
		s.query = append(s.query, block)
	}
	return min, true
}

// minimalSignatures is the push adapter over sigSearch, invoking visit
// once per signature found; visit returning false stops the search.
func (e *Engine) minimalSignatures(query logic.CNF, part Partition, visit func(logic.Interp) bool) {
	s := &sigSearch{e: e, query: query, part: part}
	for {
		min, ok := s.step()
		if !ok || !visit(min) {
			return
		}
	}
}

// signatureBlock returns the clause excluding the (⊆ on P, = on Q)
// cone of m's signature: some atom of m∩P false, or some Q atom
// different from m. An empty clause means the signature is the unique
// one (∅ on P, no Q atoms) and nothing remains to search.
func signatureBlock(m logic.Interp, part Partition, n int) logic.Clause {
	var block logic.Clause
	for v := 0; v < n; v++ {
		a := logic.Atom(v)
		switch {
		case part.P.Test(v):
			if m.Holds(a) {
				block = append(block, logic.NegLit(a))
			}
		case part.Q.Test(v):
			if m.Holds(a) {
				block = append(block, logic.NegLit(a))
			} else {
				block = append(block, logic.PosLit(a))
			}
		}
	}
	return block
}

// minimizeAgainst minimises m within the constraint set query (which
// may contain blocking clauses) — the blocking clauses only exclude
// supersets of already-yielded minimal models, so minimising within
// query still yields a model of DB minimal w.r.t. DB (any strictly
// smaller model of DB below a query-model is itself a query-model:
// blocking clauses are negative on P, hence closed under shrinking P).
func (e *Engine) minimizeAgainst(query logic.CNF, m logic.Interp, part Partition) logic.Interp {
	n := e.DB.N()
	cur := m
	for {
		q2 := logic.CloneCNF(query)
		var shrink logic.Clause
		for v := 0; v < n; v++ {
			a := logic.Atom(v)
			switch {
			case part.Q.Test(v):
				if cur.Holds(a) {
					q2 = append(q2, logic.Clause{logic.PosLit(a)})
				} else {
					q2 = append(q2, logic.Clause{logic.NegLit(a)})
				}
			case part.P.Test(v):
				if cur.Holds(a) {
					shrink = append(shrink, logic.NegLit(a))
				} else {
					q2 = append(q2, logic.Clause{logic.NegLit(a)})
				}
			}
		}
		if len(shrink) == 0 {
			return cur
		}
		q2 = append(q2, shrink)
		sat, smaller := e.Ora.Sat(n, q2)
		if !sat {
			return cur
		}
		cur = smaller
	}
}

// MMEntails reports whether every minimal model of DB satisfies F —
// the EGCWA/ECWA inference core, and via P=V also GCWA's minimal-model
// component. It realises the Π₂ᵖ upper bound: co-search over models
// with one NP (minimality) call per candidate. Candidates are found by
// SAT on DB ∧ ¬F; each non-minimal candidate is minimised (its
// minimisation may satisfy F, in which case it is blocked and the
// search continues).
func (e *Engine) MMEntails(f *logic.Formula, part Partition) bool {
	n := e.DB.N()
	voc := e.DB.Voc.Clone()
	neg := logic.TseitinNeg(f, voc)
	query := logic.CloneCNF(e.cnf)
	query = append(query, neg...)
	for {
		sat, m := e.Ora.Sat(voc.Size(), query)
		if !sat {
			return true
		}
		// Restrict to original vocabulary.
		mv := logic.NewInterp(n)
		for v := 0; v < n; v++ {
			mv.True.SetTo(v, m.Holds(logic.Atom(v)))
		}
		min := e.MinimizePZ(mv, part)
		if !f.Eval(min) {
			return false // a (P;Z)-minimal model violating F
		}
		// min satisfies F but the non-minimal candidate did not.
		// Exclude all models N ⊇ min (on P, equal on Q): they are
		// non-minimal (or Z-variants of min; Z-variants that violate F
		// must still be considered!). Z-variants of min share min's
		// P,Q signature and are (P;Z)-minimal iff min is — and min is.
		// So if some Z-variant of min violates F, the answer is false:
		// check with one SAT call before blocking.
		if !part.Z.IsEmpty() {
			zq := logic.CloneCNF(query)
			for v := 0; v < n; v++ {
				a := logic.Atom(v)
				if part.Z.Test(v) {
					continue
				}
				if min.Holds(a) {
					zq = append(zq, logic.Clause{logic.PosLit(a)})
				} else {
					zq = append(zq, logic.Clause{logic.NegLit(a)})
				}
			}
			if zsat, _ := e.Ora.Sat(voc.Size(), zq); zsat {
				return false // Z-variant of min violates F
			}
		}
		block := signatureBlock(min, part, n)
		if len(block) == 0 {
			return true // unique minimal signature, already satisfies F
		}
		query = append(query, block)
	}
}

// AtomFalseInAllMinimal reports whether atom x is false in every
// (P;Z)-minimal model of DB (the GCWA/CCWA test "MM(DB;P;Z) ⊨ ¬x"),
// via the generic minimal-model co-search.
func (e *Engine) AtomFalseInAllMinimal(x logic.Atom, part Partition) bool {
	return e.MMEntails(logic.Not(logic.AtomF(x)), part)
}

// ExistsMinimalWithAtom reports whether some (P;Z)-minimal model of DB
// contains x (the Σ₂ᵖ companion of the GCWA literal test) — an
// alternative search strategy confined to the x-containing space:
// every (P;Z)-minimal model of DB that contains x is also (P;Z)-
// minimal within DB ∧ x, so candidates are drawn there and verified
// with one DB-minimality call each. Which strategy wins is instance-
// dependent (this one pays off when x-containing minimal models are
// rare but the DB has many minimal models elsewhere; the generic
// co-search of AtomFalseInAllMinimal wins in the opposite regime) —
// both are exact, and the test suite cross-validates them.
func (e *Engine) ExistsMinimalWithAtom(x logic.Atom, part Partition) bool {
	n := e.DB.N()
	withX := logic.CloneCNF(e.cnf)
	withX = append(withX, logic.Clause{logic.PosLit(x)})
	query := logic.CloneCNF(withX)
	for {
		sat, m := e.Ora.Sat(n, query)
		if !sat {
			return false
		}
		// Minimise within DB ∧ x (the shrink queries carry the unit x,
		// so x survives minimisation).
		min := e.minimizeCNF(withX, m, part)
		// One DB-minimality call decides whether min is minimal for DB
		// itself (a smaller DB-model would necessarily lack x).
		if e.IsMinimalPZ(min, part) {
			return true
		}
		// Block min's signature cone within the DB∧x space and retry.
		block := signatureBlock(min, part, n)
		if len(block) == 0 {
			return false
		}
		query = append(query, block)
	}
}

// minimizeCNF is MinimizePZ against an arbitrary base CNF (instead of
// the database CNF), used to minimise within constrained spaces.
func (e *Engine) minimizeCNF(base logic.CNF, m logic.Interp, part Partition) logic.Interp {
	n := e.DB.N()
	cur := m
	for {
		query := logic.CloneCNF(base)
		var shrink logic.Clause
		for v := 0; v < n; v++ {
			a := logic.Atom(v)
			switch {
			case part.Q.Test(v):
				if cur.Holds(a) {
					query = append(query, logic.Clause{logic.PosLit(a)})
				} else {
					query = append(query, logic.Clause{logic.NegLit(a)})
				}
			case part.P.Test(v):
				if cur.Holds(a) {
					shrink = append(shrink, logic.NegLit(a))
				} else {
					query = append(query, logic.Clause{logic.NegLit(a)})
				}
			}
		}
		if len(shrink) == 0 {
			return cur
		}
		query = append(query, shrink)
		sat, smaller := e.Ora.Sat(n, query)
		if !sat {
			return cur
		}
		cur = smaller
	}
}

// MMEntailsWitness is MMEntails returning, when the entailment FAILS,
// a concrete countermodel: a (P;Z)-minimal model of DB violating f.
// The witness makes non-inference explainable ("here is the minimal
// world in which your formula is false").
func (e *Engine) MMEntailsWitness(f *logic.Formula, part Partition) (bool, logic.Interp) {
	n := e.DB.N()
	voc := e.DB.Voc.Clone()
	neg := logic.TseitinNeg(f, voc)
	query := logic.CloneCNF(e.cnf)
	query = append(query, neg...)
	for {
		sat, m := e.Ora.Sat(voc.Size(), query)
		if !sat {
			return true, logic.Interp{}
		}
		mv := logic.NewInterp(n)
		for v := 0; v < n; v++ {
			mv.True.SetTo(v, m.Holds(logic.Atom(v)))
		}
		min := e.MinimizePZ(mv, part)
		if !f.Eval(min) {
			return false, min
		}
		if !part.Z.IsEmpty() {
			zq := logic.CloneCNF(query)
			for v := 0; v < n; v++ {
				a := logic.Atom(v)
				if part.Z.Test(v) {
					continue
				}
				if min.Holds(a) {
					zq = append(zq, logic.Clause{logic.PosLit(a)})
				} else {
					zq = append(zq, logic.Clause{logic.NegLit(a)})
				}
			}
			if zsat, zm := e.Ora.Sat(voc.Size(), zq); zsat {
				wv := logic.NewInterp(n)
				for v := 0; v < n; v++ {
					wv.True.SetTo(v, zm.Holds(logic.Atom(v)))
				}
				return false, wv
			}
		}
		block := signatureBlock(min, part, n)
		if len(block) == 0 {
			return true, logic.Interp{}
		}
		query = append(query, block)
	}
}

// UniqueMinimalModel decides UMINSAT: does DB have exactly one minimal
// model? (Proposition 5.4: coNP-hard; our procedure uses at most
// |V|+3 NP calls: find a model, minimise, then ask for a model not
// above it and minimise that.)
func (e *Engine) UniqueMinimalModel() (bool, logic.Interp) {
	ok, m := e.HasModel()
	if !ok {
		return false, logic.Interp{}
	}
	min := e.Minimize(m)
	// Any other minimal model is not a superset of min: require some
	// atom of min false ∨ … actually require N ⊉ min: ∨_{a∈min} ¬a.
	n := e.DB.N()
	query := logic.CloneCNF(e.cnf)
	var notAbove logic.Clause
	min.True.ForEach(func(i int) {
		notAbove = append(notAbove, logic.NegLit(logic.Atom(i)))
	})
	if len(notAbove) == 0 {
		// min = ∅ is contained in every model: unique.
		return true, min
	}
	query = append(query, notAbove)
	sat, _ := e.Ora.Sat(n, query)
	if !sat {
		return true, min
	}
	return false, min
}
