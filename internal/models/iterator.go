package models

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"disjunct/internal/budget"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
	"disjunct/internal/sat"
)

// This file is the pull-based surface of the model engine. Every
// enumerator variant — serial or worker-pool, all-models or
// (P;Z)-minimal — is exposed as a ModelIterator, and the historical
// yield-callback entry points (the *Budgeted wrappers in budget.go)
// are thin Drain adapters over these iterators. Pull composition is
// what the streaming endpoint and the batch planner build on: a
// consumer controls pacing, can stop after any model without paying
// for the rest, and receives the interruption cause as a typed error
// instead of a recovered panic.
//
// Iterator contract:
//
//   - Next returns (model, nil) for each model, in the same order (or,
//     for the parallel variants, the same set) as the corresponding
//     push enumerator, with identical NP-oracle charging.
//   - The terminal error is sticky and typed: io.EOF means the
//     enumeration COMPLETED; ErrLimit means the constructor's limit
//     was reached; any other error is a budget-class interruption
//     (budget.ErrCanceled, ErrDeadline, ErrConflictBudget,
//     ErrPropagationBudget, ErrNPCallBudget, possibly wrapped). Models
//     returned before a non-EOF terminal are genuine models — partial
//     prefixes are valid, just not exhaustive.
//   - A ctx passed to Next is polled before each step; cancellation
//     surfaces as an error wrapping budget.ErrCanceled.
//   - Close is idempotent, releases any producer goroutine, and never
//     loses a budget trip (the trip is recorded as the terminal error,
//     not re-raised). Iterators are not safe for concurrent use.

// ModelIterator is a pull-based model enumeration in progress.
type ModelIterator interface {
	// Next returns the next model, or a sticky terminal error.
	Next(ctx context.Context) (logic.Interp, error)
	// Close releases the iterator's resources. Safe to call multiple
	// times and concurrently with nothing (not with Next).
	Close() error
}

// ErrLimit is the terminal error of an iterator whose constructor
// limit was reached: the enumeration stopped by request, with the
// model set possibly non-exhausted.
var ErrLimit = errors.New("models: enumeration limit reached")

// ctxErr converts a context's cancellation into the typed budget
// taxonomy (the same classification budget.New applies).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		cause := context.Cause(ctx)
		if errors.Is(cause, context.DeadlineExceeded) {
			return fmt.Errorf("%w: %v", budget.ErrDeadline, cause)
		}
		return fmt.Errorf("%w: %v", budget.ErrCanceled, cause)
	default:
		return nil
	}
}

// stepIter adapts a serial step function — one (model, more) probe per
// call, raising budget.Interrupt panics on trips — into the iterator
// contract. Zero goroutines: the producer runs inside Next.
type stepIter struct {
	step  func() (logic.Interp, bool)
	limit int
	count int
	err   error
}

func (it *stepIter) Next(ctx context.Context) (logic.Interp, error) {
	if it.err != nil {
		return logic.Interp{}, it.err
	}
	if cerr := ctxErr(ctx); cerr != nil {
		it.err = cerr
		return logic.Interp{}, it.err
	}
	if it.limit > 0 && it.count >= it.limit {
		it.err = ErrLimit
		return logic.Interp{}, it.err
	}
	var (
		m   logic.Interp
		ok  bool
		err error
	)
	func() {
		defer budget.Recover(&err)
		m, ok = it.step()
	}()
	switch {
	case err != nil:
		it.err = err
	case !ok:
		it.err = io.EOF
	default:
		it.count++
		return m, nil
	}
	return logic.Interp{}, it.err
}

func (it *stepIter) Close() error {
	if it.err == nil {
		it.err = io.EOF
	}
	return nil
}

// pumpIter adapts a push enumerator (the worker-pool variants) into
// the iterator contract: one producer goroutine runs the enumerator
// with a yield that hands models over an unbuffered channel, so the
// pool never runs ahead of the consumer by more than the workers'
// in-flight items. Close (or a yield refusal after stop) drains the
// producer — no goroutine is ever leaked, and a budget trip inside a
// worker becomes the terminal error rather than a re-raised panic.
type pumpIter struct {
	ch    chan logic.Interp
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
	perr  error // producer's terminal error; readable after done closes
	limit int
	count int
	err   error
}

// newPumpIter starts the producer. run must invoke yield once per
// model and respect yield returning false (the enumerators do, via
// their emitter).
func newPumpIter(limit int, run func(yield func(logic.Interp) bool)) *pumpIter {
	p := &pumpIter{
		ch:    make(chan logic.Interp),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		limit: limit,
	}
	go func() {
		var err error
		func() {
			defer budget.Recover(&err)
			run(func(m logic.Interp) bool {
				select {
				case p.ch <- m:
					return true
				case <-p.stop:
					return false
				}
			})
		}()
		p.perr = err
		close(p.ch)
		close(p.done)
	}()
	return p
}

func (p *pumpIter) Next(ctx context.Context) (logic.Interp, error) {
	if p.err != nil {
		return logic.Interp{}, p.err
	}
	// A dead ctx wins over a ready model: poll it first so
	// cancellation is deterministic rather than racing the select.
	if cerr := ctxErr(ctx); cerr != nil {
		p.err = cerr
		return logic.Interp{}, p.err
	}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	select {
	case m, ok := <-p.ch:
		if ok {
			p.count++
			return m, nil
		}
		<-p.done
		switch {
		case p.perr != nil:
			p.err = p.perr
		case p.limit > 0 && p.count >= p.limit:
			p.err = ErrLimit
		default:
			p.err = io.EOF
		}
		return logic.Interp{}, p.err
	case <-cancel:
		p.err = ctxErr(ctx)
		return logic.Interp{}, p.err
	}
}

func (p *pumpIter) Close() error {
	p.once.Do(func() { close(p.stop) })
	for range p.ch {
		// Discard in-flight models until the producer exits; each
		// worker's next yield sees stop closed and unwinds.
	}
	<-p.done
	if p.err == nil {
		p.err = io.EOF
	}
	return nil
}

// enumSearch is the pull-based core of all-models enumeration: the
// blocked-clause solver loop of sat.Solver.EnumerateModels unrolled
// into a step function, with the oracle charged identically to the
// push path (one call for the solver build, one per model found).
type enumSearch struct {
	e     *Engine
	s     *sat.Solver
	block []sat.Lit
	done  bool
}

// step finds the next model. The solver is built lazily so that a
// budget trip during construction surfaces from the first step (inside
// the iterator's Recover) rather than from the constructor.
func (es *enumSearch) step() (logic.Interp, bool) {
	if es.done {
		return logic.Interp{}, false
	}
	n := es.e.DB.N()
	if es.s == nil {
		es.s = es.e.Ora.SatSolver(n, es.e.cnf)
	}
	if es.s.Solve() != sat.Sat {
		es.done = true
		// Distinguish exhaustion from a mid-enumeration budget trip.
		oracle.CheckEnumerate(es.s)
		return logic.Interp{}, false
	}
	es.e.Ora.CountCall()
	m := logic.NewInterp(n)
	es.block = es.block[:0]
	for v := 0; v < n; v++ {
		val := es.s.Model(v)
		m.True.SetTo(v, val)
		es.block = append(es.block, sat.MkLit(v, !val))
	}
	if !es.s.AddClause(es.block...) {
		es.done = true // blocked the last model: formula exhausted
	}
	return m, true
}

// IterateModels returns a pull-based enumeration of every model of the
// database (the iterator form of EnumerateModels). limit ≤ 0 means
// unlimited.
func (e *Engine) IterateModels(limit int) ModelIterator {
	es := &enumSearch{e: e}
	return &stepIter{step: es.step, limit: limit}
}

// IterateModelsPar is IterateModels across the cube-decomposed worker
// pool (the iterator form of EnumerateModelsPar): same model set,
// nondeterministic order, worker-count-invariant oracle totals.
func (e *Engine) IterateModelsPar(limit int, opt ParOptions) ModelIterator {
	return newPumpIter(limit, func(yield func(logic.Interp) bool) {
		e.EnumerateModelsPar(limit, yield, opt)
	})
}

// IterateMinimalModels returns a pull-based enumeration of MM(DB).
func (e *Engine) IterateMinimalModels(limit int) ModelIterator {
	return e.IterateMinimalModelsPZ(FullMin(e.DB.N()), limit)
}

// IterateMinimalModelsPZ returns a pull-based enumeration of
// MM(DB;P;Z) — one representative per signature, in the serial
// signature-blocking order of MinimalModelsPZ.
func (e *Engine) IterateMinimalModelsPZ(part Partition, limit int) ModelIterator {
	s := &sigSearch{e: e, query: logic.CloneCNF(e.cnf), part: part}
	return &stepIter{step: s.step, limit: limit}
}

// IterateMinimalModelsPar is IterateMinimalModels across the
// region-decomposed worker pool.
func (e *Engine) IterateMinimalModelsPar(limit int, opt ParOptions) ModelIterator {
	return e.IterateMinimalModelsPZPar(FullMin(e.DB.N()), limit, opt)
}

// IterateMinimalModelsPZPar is IterateMinimalModelsPZ across the
// region-decomposed worker pool: same signature set, nondeterministic
// order and Z-representatives.
func (e *Engine) IterateMinimalModelsPZPar(part Partition, limit int, opt ParOptions) ModelIterator {
	return newPumpIter(limit, func(yield func(logic.Interp) bool) {
		e.MinimalModelsPZPar(part, limit, yield, opt)
	})
}

// Drain pulls it dry, feeding each model to yield, and maps the
// terminal taxonomy back onto the push contract: io.EOF and ErrLimit
// (and a yield refusal) are completion (nil error); anything else is
// the typed interruption cause. Drain closes the iterator.
func Drain(it ModelIterator, yield func(logic.Interp) bool) (count int, err error) {
	defer it.Close()
	for {
		m, nerr := it.Next(nil)
		switch {
		case nerr == nil:
			count++
			if !yield(m) {
				return count, nil
			}
		case errors.Is(nerr, io.EOF), errors.Is(nerr, ErrLimit):
			return count, nil
		default:
			return count, nerr
		}
	}
}
