package models

import (
	"fmt"
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
)

// benchDBs returns generator instances with nontrivial minimal-model
// sets: random positive DDBs and a 3-colouring cycle.
func benchDBs() map[string]*db.DB {
	rng := rand.New(rand.NewSource(1))
	return map[string]*db.DB{
		"rand-n30": gen.Random(rng, gen.Positive(30, 45)),
		"rand-n40": gen.Random(rng, gen.Positive(40, 60)),
		"col-cyc7": gen.ColoringDB(gen.Cycle(7), 3),
	}
}

func benchMinimalModels(b *testing.B, run func(e *Engine) int) {
	for name, d := range benchDBs() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := NewEngine(d, nil)
				run(e)
			}
		})
	}
}

func BenchmarkMinimalModelsSerial(b *testing.B) {
	benchMinimalModels(b, func(e *Engine) int {
		return e.MinimalModels(0, func(logic.Interp) bool { return true })
	})
}

func BenchmarkMinimalModelsPar(b *testing.B) {
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=NumCPU"
		}
		b.Run(name, func(b *testing.B) {
			benchMinimalModels(b, func(e *Engine) int {
				return e.MinimalModelsPar(0, func(logic.Interp) bool { return true },
					ParOptions{Workers: workers})
			})
		})
	}
}

func BenchmarkEnumerateModelsPar(b *testing.B) {
	d := gen.ColoringDB(gen.Cycle(7), 3)
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=NumCPU"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := NewEngine(d, nil)
				e.EnumerateModelsPar(0, func(logic.Interp) bool { return true },
					ParOptions{Workers: workers})
			}
		})
	}
}
