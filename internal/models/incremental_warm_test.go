package models

import (
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

// Warm MMEntails must return the same verdict as the fresh engine for
// a stream of queries against ONE shared solver — the per-query
// activation guards must fully isolate each query's ¬F and blocking
// clauses from the next.
func TestIncrementalMMEntailsMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 120; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(7)))
		part := FullMin(d.N())
		warm := NewIncrementalEngine(d, nil)
		for q := 0; q < 5; q++ {
			f := randomFormula(rng, d.Voc, n, 3)
			want := refsem.Entails(refsem.MinimalModels(d), f)
			fresh := NewEngine(d, nil).MMEntails(f, part)
			got := warm.MMEntails(f, part)
			if got != want || fresh != want {
				t.Fatalf("iter %d query %d: warm=%v fresh=%v want %v\nDB:\n%sF: %s",
					iter, q, got, fresh, want, d.String(), f.String(d.Voc))
			}
		}
	}
}

// Same cross-validation for general (P;Q;Z) partitions, exercising the
// assumption-based Z-variant check.
func TestIncrementalMMEntailsPZMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 120; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		p, q := randomPartition(rng, n)
		part := partitionOf(n, p, q)
		warm := NewIncrementalEngine(d, nil)
		for k := 0; k < 4; k++ {
			f := randomFormula(rng, d.Voc, n, 3)
			want := refsem.Entails(refsem.MinimalModelsPZ(d, p, q), f)
			got := warm.MMEntails(f, part)
			if got != want {
				t.Fatalf("iter %d query %d: warm MMEntails(P;Z)=%v want %v\nDB:\n%sF: %s\nP=%v Q=%v",
					iter, k, got, want, d.String(), f.String(d.Voc), p, q)
			}
		}
	}
}

// A warm query stream mixing MMEntails with the other engine entry
// points (HasModel, IsMinimal/Minimize) must not cross-contaminate.
func TestIncrementalWarmMixedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 60; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		part := FullMin(d.N())
		warm := NewIncrementalEngine(d, nil)
		mm := refsem.MinimalModels(d)
		for k := 0; k < 6; k++ {
			switch k % 3 {
			case 0:
				f := randomFormula(rng, d.Voc, n, 2)
				if got, want := warm.MMEntails(f, part), refsem.Entails(mm, f); got != want {
					t.Fatalf("iter %d step %d: MMEntails=%v want %v\nDB:\n%s", iter, k, got, want, d.String())
				}
			case 1:
				ok, m := warm.HasModel()
				if ok != satisfiable(d) {
					t.Fatalf("iter %d step %d: HasModel=%v minimal models=%d\nDB:\n%s", iter, k, ok, len(mm), d.String())
				}
				if ok && !logic.EvalCNF(d.ToCNF(), m) {
					t.Fatalf("iter %d step %d: HasModel witness is not a model\nDB:\n%s", iter, k, d.String())
				}
			case 2:
				if ok, m := warm.HasModel(); ok {
					min := warm.Minimize(m)
					if !warm.IsMinimal(min) {
						t.Fatalf("iter %d step %d: Minimize result not minimal\nDB:\n%s", iter, k, d.String())
					}
				}
			}
		}
	}
}

// satisfiable is a brute-force satisfiability check for tiny DBs.
func satisfiable(d *db.DB) bool {
	interps, err := refsem.AllInterps(d.N())
	if err != nil {
		panic(err)
	}
	cnf := d.ToCNF()
	for _, m := range interps {
		if logic.EvalCNF(cnf, m) {
			return true
		}
	}
	return false
}
