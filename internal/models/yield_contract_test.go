package models

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/dbtest"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

// The yield contract, enforced for all six enumerator variants:
//
//  1. yield is never invoked again after it first returns false;
//  2. yield is never invoked after the budgeted wrapper has returned
//     with a budget-trip error — including from in-flight parallel
//     workers that were mid-search when a sibling tripped.
//
// The emitter's mutex (and its halt hook on the worker unwind path)
// is what makes (2) hold for the pool variants; these tests are the
// regression net for that ordering.

// variant names one enumerator entry point under test.
type variant struct {
	name string
	run  func(e *Engine, limit int, yield func(logic.Interp) bool) (int, error)
}

func allVariants() []variant {
	opt := ParOptions{Workers: 4}
	return []variant{
		{"EnumerateModels", func(e *Engine, limit int, y func(logic.Interp) bool) (int, error) {
			return e.EnumerateModelsBudgeted(limit, y)
		}},
		{"MinimalModels", func(e *Engine, limit int, y func(logic.Interp) bool) (int, error) {
			return e.MinimalModelsBudgeted(limit, y)
		}},
		{"MinimalModelsPZ", func(e *Engine, limit int, y func(logic.Interp) bool) (int, error) {
			return e.MinimalModelsPZBudgeted(FullMin(e.DB.N()), limit, y)
		}},
		{"EnumerateModelsPar", func(e *Engine, limit int, y func(logic.Interp) bool) (int, error) {
			return e.EnumerateModelsParBudgeted(limit, y, opt)
		}},
		{"MinimalModelsPar", func(e *Engine, limit int, y func(logic.Interp) bool) (int, error) {
			return e.MinimalModelsParBudgeted(limit, y, opt)
		}},
		{"MinimalModelsPZPar", func(e *Engine, limit int, y func(logic.Interp) bool) (int, error) {
			return e.MinimalModelsPZParBudgeted(FullMin(e.DB.N()), limit, y, opt)
		}},
	}
}

// TestYieldNeverInvokedAfterFalse: once yield returns false, no
// variant may call it again — not even a pool worker already holding a
// model.
func TestYieldNeverInvokedAfterFalse(t *testing.T) {
	d := dbtest.MustParse("a | b. c | d. e | f. g | h.")
	for _, v := range allVariants() {
		var calls, after int32
		var refused atomic.Bool
		_, err := v.run(NewEngine(d, nil), 0, func(logic.Interp) bool {
			if refused.Load() {
				atomic.AddInt32(&after, 1)
				return false
			}
			atomic.AddInt32(&calls, 1)
			refused.Store(true)
			return false
		})
		if err != nil {
			t.Fatalf("%s: unexpected error %v", v.name, err)
		}
		// Let any straggler worker surface before judging.
		time.Sleep(20 * time.Millisecond)
		if got := atomic.LoadInt32(&after); got != 0 {
			t.Fatalf("%s: yield invoked %d time(s) after returning false", v.name, got)
		}
		if atomic.LoadInt32(&calls) != 1 {
			t.Fatalf("%s: yield accepted %d calls, want exactly 1", v.name, calls)
		}
	}
}

// TestYieldNeverInvokedAfterBudgetTrip: after a budgeted wrapper has
// returned with a trip, no late worker may deliver another model.
func TestYieldNeverInvokedAfterBudgetTrip(t *testing.T) {
	for _, d := range randomDBs(307, 6) {
		for _, v := range allVariants() {
			o := oracle.NewNP().WithBudget(budget.New(context.Background(),
				budget.Limits{NPCalls: 3, Deadline: time.Hour}))
			var returned atomic.Bool
			var late int32
			_, err := v.run(NewEngine(d, o), 0, func(logic.Interp) bool {
				if returned.Load() {
					atomic.AddInt32(&late, 1)
				}
				return true
			})
			returned.Store(true)
			if err != nil && !budget.Interrupted(err) {
				t.Fatalf("%s: untyped error %v", v.name, err)
			}
			time.Sleep(20 * time.Millisecond)
			if got := atomic.LoadInt32(&late); got != 0 {
				t.Fatalf("%s: yield invoked %d time(s) after the wrapper returned", v.name, got)
			}
		}
	}
}

// TestYieldStopsAtLimit: the limit is exact for every variant.
func TestYieldStopsAtLimit(t *testing.T) {
	d := dbtest.MustParse("a | b. c | d. e | f.")
	for _, v := range allVariants() {
		var calls int32
		count, err := v.run(NewEngine(d, nil), 2, func(logic.Interp) bool {
			atomic.AddInt32(&calls, 1)
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		time.Sleep(10 * time.Millisecond)
		if count != 2 || atomic.LoadInt32(&calls) != 2 {
			t.Fatalf("%s: count=%d calls=%d, want 2/2", v.name, count, calls)
		}
	}
}
