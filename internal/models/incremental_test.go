package models

import (
	"fmt"
	"math/rand"
	"testing"

	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
	"disjunct/internal/refsem"
)

func TestIncrementalMinimalityAgainstEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(281))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(7)))
		p, q := randomPartition(rng, n)
		part := partitionOf(n, p, q)
		eng := NewEngine(d, nil)
		inc := NewIncrementalEngine(d, nil)
		for _, m := range refsem.Models(d) {
			want := eng.IsMinimalPZ(m, part)
			got := inc.IsMinimalPZ(m, part)
			if got != want {
				t.Fatalf("iter %d: incremental IsMinimalPZ(%s)=%v, engine=%v\nDB:\n%s",
					iter, m.String(d.Voc), got, want, d.String())
			}
		}
	}
}

func TestIncrementalMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(282))
	for iter := 0; iter < 200; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(3+rng.Intn(4), 1+rng.Intn(6)))
		inc := NewIncrementalEngine(d, nil)
		ok, m := inc.HasModel()
		if !ok {
			continue
		}
		min := inc.Minimize(m)
		if !d.Sat(min) || !min.SubsetOf(m) {
			t.Fatalf("iter %d: Minimize broken", iter)
		}
		// Verify against the stateless engine.
		if !NewEngine(d, nil).IsMinimal(min) {
			t.Fatalf("iter %d: incremental Minimize returned non-minimal model", iter)
		}
	}
}

func TestIncrementalMinimalModels(t *testing.T) {
	rng := rand.New(rand.NewSource(283))
	for iter := 0; iter < 150; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(7)))
		want := refsem.MinimalModels(d)
		var got []logic.Interp
		NewIncrementalEngine(d, nil).MinimalModels(0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		})
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: incremental MM mismatch (want %d got %d)\nDB:\n%s",
				iter, len(want), len(got), d.String())
		}
	}
}

func TestIncrementalQueriesDoNotInterfere(t *testing.T) {
	// Many interleaved minimality queries on one engine must agree
	// with fresh-engine answers (no residue from deactivated clauses).
	rng := rand.New(rand.NewSource(284))
	d := gen.Random(rng, gen.WithIntegrity(6, 12))
	inc := NewIncrementalEngine(d, nil)
	part := FullMin(d.N())
	all := refsem.Models(d)
	for round := 0; round < 5; round++ {
		for _, m := range all {
			want := NewEngine(d, nil).IsMinimalPZ(m, part)
			if got := inc.IsMinimalPZ(m, part); got != want {
				t.Fatalf("round %d: interference detected on %s", round, m.String(d.Voc))
			}
		}
	}
}

// The ablation of DESIGN.md §8: fresh-solver oracle vs incremental
// solver reuse, on repeated minimality checks over one database.
func BenchmarkEngineVsIncremental(b *testing.B) {
	for _, n := range []int{20, 40} {
		rng := rand.New(rand.NewSource(int64(n)))
		d := gen.Random(rng, gen.Positive(n, 3*n))
		part := FullMin(n)
		// Pre-compute a pool of models to check.
		eng := NewEngine(d, nil)
		var pool []logic.Interp
		eng.EnumerateModels(16, func(m logic.Interp) bool {
			pool = append(pool, m.Clone())
			return true
		})
		if len(pool) == 0 {
			b.Fatal("no models")
		}
		b.Run(fmt.Sprintf("fresh/n=%d", n), func(b *testing.B) {
			e := NewEngine(d, nil)
			for i := 0; i < b.N; i++ {
				e.IsMinimalPZ(pool[i%len(pool)], part)
			}
		})
		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			e := NewIncrementalEngine(d, nil)
			for i := 0; i < b.N; i++ {
				e.IsMinimalPZ(pool[i%len(pool)], part)
			}
		})
	}
}

func TestIncrementalMinimalModelsPZ(t *testing.T) {
	// One representative per (P,Q)-signature, same signature set as the
	// stateless engine's MinimalModelsPZ.
	rng := rand.New(rand.NewSource(285))
	for iter := 0; iter < 120; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(7)))
		p, q := randomPartition(rng, n)
		part := partitionOf(n, p, q)
		want := map[string]bool{}
		NewEngine(d, nil).MinimalModelsPZ(part, 0, func(m logic.Interp) bool {
			want[pqKey(m, part, n)] = true
			return true
		})
		got := map[string]bool{}
		NewIncrementalEngine(d, nil).MinimalModelsPZ(part, 0, func(m logic.Interp) bool {
			k := pqKey(m, part, n)
			if got[k] {
				t.Fatalf("iter %d: signature %q yielded twice", iter, k)
			}
			got[k] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d signatures, engine %d\nDB:\n%s", iter, len(got), len(want), d.String())
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("iter %d: signature %q missing\nDB:\n%s", iter, k, d.String())
			}
		}
	}
}

func TestIncrementalReportsConflicts(t *testing.T) {
	// The shared solver's conflict deltas must flow into the oracle's
	// SATConfl audit counter, like the fresh-solver path's do.
	rng := rand.New(rand.NewSource(286))
	d := gen.Random(rng, gen.WithIntegrity(10, 40))
	o := oracle.NewNP()
	inc := NewIncrementalEngine(d, o)
	inc.MinimalModels(0, func(logic.Interp) bool { return true })
	c := o.Counters()
	if c.NPCalls == 0 {
		t.Fatalf("no NP calls recorded")
	}
	if c.SATConfl != inc.solver.Stats().Conflicts {
		t.Fatalf("oracle SATConfl=%d, solver conflicts=%d", c.SATConfl, inc.solver.Stats().Conflicts)
	}
}

func TestIncrementalUnsatDB(t *testing.T) {
	d := dbtest.MustParse("a. :- a.")
	inc := NewIncrementalEngine(d, nil)
	if ok, _ := inc.HasModel(); ok {
		t.Fatalf("unsat DB reported satisfiable")
	}
	if n := inc.MinimalModels(0, func(logic.Interp) bool { return true }); n != 0 {
		t.Fatalf("unsat DB yielded %d minimal models", n)
	}
}
