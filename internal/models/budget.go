package models

import (
	"disjunct/internal/budget"
	"disjunct/internal/logic"
)

// This file is the budget-aware surface of the model engine. The
// budget itself lives on the oracle (oracle.NP.WithBudget): every NP
// call charges it and every solver polls it, raising a
// budget.Interrupt panic the moment a limit trips. The *Budgeted
// wrappers here are the API boundary that converts that panic back
// into a typed error while preserving the partial result produced
// before the interruption.
//
// Contract (the "three-valued" enumeration contract):
//
//   - err == nil: the enumeration COMPLETED; the yielded set is
//     exactly what the unbudgeted method yields (byte-identical —
//     the budget machinery never changes search order).
//   - err != nil: the enumeration is INCOMPLETE; err is one of the
//     typed causes (budget.ErrCanceled, ErrDeadline,
//     ErrConflictBudget, ErrPropagationBudget, ErrNPCallBudget, or a
//     fault-injection error wrapping one of these). Every model
//     yielded before the trip is a genuine model — partial results
//     are valid, just not exhaustive. The count returned is the
//     number of yields that actually happened.

// EnumerateModelsBudgeted is EnumerateModels under the oracle's
// attached budget; see the file comment for the completeness
// contract.
func (e *Engine) EnumerateModelsBudgeted(limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	e.EnumerateModels(limit, func(m logic.Interp) bool {
		count++
		return yield(m)
	})
	return count, nil
}

// MinimalModelsBudgeted is MinimalModels under the oracle's attached
// budget.
func (e *Engine) MinimalModelsBudgeted(limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	e.MinimalModels(limit, func(m logic.Interp) bool {
		count++
		return yield(m)
	})
	return count, nil
}

// MinimalModelsPZBudgeted is MinimalModelsPZ under the oracle's
// attached budget.
func (e *Engine) MinimalModelsPZBudgeted(part Partition, limit int, yield func(logic.Interp) bool) (count int, err error) {
	defer budget.Recover(&err)
	e.MinimalModelsPZ(part, limit, func(m logic.Interp) bool {
		count++
		return yield(m)
	})
	return count, nil
}

// MinimalModelsParBudgeted is MinimalModelsPar under the oracle's
// attached budget: a trip inside any worker drains the pool (no
// goroutine leaks, no lost panics — see par.ForEach) and surfaces
// here as the typed cause.
func (e *Engine) MinimalModelsParBudgeted(limit int, yield func(logic.Interp) bool, opt ParOptions) (count int, err error) {
	defer budget.Recover(&err)
	e.MinimalModelsPar(limit, func(m logic.Interp) bool {
		count++
		return yield(m)
	}, opt)
	return count, nil
}

// MinimalModelsPZParBudgeted is MinimalModelsPZPar under the oracle's
// attached budget.
func (e *Engine) MinimalModelsPZParBudgeted(part Partition, limit int, yield func(logic.Interp) bool, opt ParOptions) (count int, err error) {
	defer budget.Recover(&err)
	e.MinimalModelsPZPar(part, limit, func(m logic.Interp) bool {
		count++
		return yield(m)
	}, opt)
	return count, nil
}

// EnumerateModelsParBudgeted is EnumerateModelsPar under the oracle's
// attached budget.
func (e *Engine) EnumerateModelsParBudgeted(limit int, yield func(logic.Interp) bool, opt ParOptions) (count int, err error) {
	defer budget.Recover(&err)
	e.EnumerateModelsPar(limit, func(m logic.Interp) bool {
		count++
		return yield(m)
	}, opt)
	return count, nil
}

// MMEntailsBudgeted is MMEntails under the oracle's attached budget.
// When err is non-nil the boolean carries no information (the
// entailment question is unknown-out-of-budget).
func (e *Engine) MMEntailsBudgeted(f *logic.Formula, part Partition) (ok bool, err error) {
	defer budget.Recover(&err)
	return e.MMEntails(f, part), nil
}

// HasModelBudgeted is HasModel under the oracle's attached budget.
func (e *Engine) HasModelBudgeted() (ok bool, m logic.Interp, err error) {
	defer budget.Recover(&err)
	ok, m = e.HasModel()
	return ok, m, nil
}
