package models

import (
	"disjunct/internal/budget"
	"disjunct/internal/logic"
)

// This file is the budget-aware surface of the model engine. The
// budget itself lives on the oracle (oracle.NP.WithBudget): every NP
// call charges it and every solver polls it, raising a
// budget.Interrupt panic the moment a limit trips. The *Budgeted
// wrappers here are the API boundary that converts that panic back
// into a typed error while preserving the partial result produced
// before the interruption.
//
// Contract (the "three-valued" enumeration contract):
//
//   - err == nil: the enumeration COMPLETED; the yielded set is
//     exactly what the unbudgeted method yields (byte-identical —
//     the budget machinery never changes search order).
//   - err != nil: the enumeration is INCOMPLETE; err is one of the
//     typed causes (budget.ErrCanceled, ErrDeadline,
//     ErrConflictBudget, ErrPropagationBudget, ErrNPCallBudget, or a
//     fault-injection error wrapping one of these). Every model
//     yielded before the trip is a genuine model — partial results
//     are valid, just not exhaustive. The count returned is the
//     number of yields that actually happened.

// The six enumeration wrappers are Drain adapters over the pull-based
// iterators of iterator.go: the iterator's step cores perform exactly
// the NP-call sequence of the historical push enumerators, Recover the
// budget panic into the typed error, and Drain maps the iterator
// taxonomy (io.EOF / ErrLimit / typed cause) back onto this contract.

// EnumerateModelsBudgeted is EnumerateModels under the oracle's
// attached budget; see the file comment for the completeness
// contract.
func (e *Engine) EnumerateModelsBudgeted(limit int, yield func(logic.Interp) bool) (count int, err error) {
	return Drain(e.IterateModels(limit), yield)
}

// MinimalModelsBudgeted is MinimalModels under the oracle's attached
// budget.
func (e *Engine) MinimalModelsBudgeted(limit int, yield func(logic.Interp) bool) (count int, err error) {
	return Drain(e.IterateMinimalModels(limit), yield)
}

// MinimalModelsPZBudgeted is MinimalModelsPZ under the oracle's
// attached budget.
func (e *Engine) MinimalModelsPZBudgeted(part Partition, limit int, yield func(logic.Interp) bool) (count int, err error) {
	return Drain(e.IterateMinimalModelsPZ(part, limit), yield)
}

// MinimalModelsParBudgeted is MinimalModelsPar under the oracle's
// attached budget: a trip inside any worker drains the pool (no
// goroutine leaks, no lost panics — see par.ForEach), halts the
// emitter so no in-flight sibling yields after the trip, and surfaces
// here as the typed cause.
func (e *Engine) MinimalModelsParBudgeted(limit int, yield func(logic.Interp) bool, opt ParOptions) (count int, err error) {
	return Drain(e.IterateMinimalModelsPar(limit, opt), yield)
}

// MinimalModelsPZParBudgeted is MinimalModelsPZPar under the oracle's
// attached budget.
func (e *Engine) MinimalModelsPZParBudgeted(part Partition, limit int, yield func(logic.Interp) bool, opt ParOptions) (count int, err error) {
	return Drain(e.IterateMinimalModelsPZPar(part, limit, opt), yield)
}

// EnumerateModelsParBudgeted is EnumerateModelsPar under the oracle's
// attached budget.
func (e *Engine) EnumerateModelsParBudgeted(limit int, yield func(logic.Interp) bool, opt ParOptions) (count int, err error) {
	return Drain(e.IterateModelsPar(limit, opt), yield)
}

// MMEntailsBudgeted is MMEntails under the oracle's attached budget.
// When err is non-nil the boolean carries no information (the
// entailment question is unknown-out-of-budget).
func (e *Engine) MMEntailsBudgeted(f *logic.Formula, part Partition) (ok bool, err error) {
	defer budget.Recover(&err)
	return e.MMEntails(f, part), nil
}

// HasModelBudgeted is HasModel under the oracle's attached budget.
func (e *Engine) HasModelBudgeted() (ok bool, m logic.Interp, err error) {
	defer budget.Recover(&err)
	ok, m = e.HasModel()
	return ok, m, nil
}
