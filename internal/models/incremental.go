package models

import (
	"disjunct/internal/budget"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
	"disjunct/internal/sat"
)

// IncrementalEngine is an alternative minimal-model engine that keeps
// ONE CDCL solver alive across queries instead of building a fresh
// solver per NP-oracle call. Query-specific constraints are attached
// through activation literals and assumptions, so learned clauses are
// reused between minimality checks — the standard incremental-SAT
// architecture of production circumscription/ASP checkers.
//
// The engine answers the same questions as Engine (the test suite
// cross-validates them); BenchmarkEngineVsIncremental measures the
// difference. Every Solve on the shared solver is counted as one NP
// call on the oracle — and its conflict delta is reported too — so the
// complexity accounting matches the fresh-solver path. Assumption and
// shrink-clause buffers are reused across queries (no per-check slice
// churn).
//
// Unlike Engine, an IncrementalEngine is NOT safe for concurrent use:
// it owns one stateful solver. The parallel layer (parallel.go) gives
// each worker its own engine when incremental minimality checking is
// wanted alongside worker-pool search.
type IncrementalEngine struct {
	DB  *db.DB
	Ora *oracle.NP

	solver *sat.Solver
	nBase  int // atoms of the database vocabulary
	nVars  int // next free solver variable

	lastConfl int64     // solver conflicts already reported to Ora
	assumps   []sat.Lit // scratch: assumption literals of the current query
	scratch   []sat.Lit // scratch: shrink/blocking clause under construction
}

// NewIncrementalEngine builds the engine and loads the database CNF
// into the shared solver.
func NewIncrementalEngine(d *db.DB, o *oracle.NP) *IncrementalEngine {
	if o == nil {
		o = oracle.NewNP()
	}
	e := &IncrementalEngine{DB: d, Ora: o, nBase: d.N(), nVars: d.N()}
	e.solver = sat.New(d.N())
	e.solver.SetBudget(o.Budget())
	for _, cl := range d.ToCNF() {
		lits := make([]sat.Lit, len(cl))
		for i, l := range cl {
			lits[i] = sat.MkLit(int(l.Atom()), l.IsPos())
		}
		e.solver.AddClause(lits...)
	}
	return e
}

// fresh allocates a new solver variable (activation literals).
func (e *IncrementalEngine) fresh() int {
	v := e.nVars
	e.nVars++
	return v
}

// solve runs one counted query on the shared solver, reporting the
// call and its conflict delta to the oracle.
func (e *IncrementalEngine) solve(assumptions ...sat.Lit) sat.Status {
	e.Ora.CountCall()
	st := e.solver.Solve(assumptions...)
	c := e.solver.Stats().Conflicts
	e.Ora.CountConflicts(c - e.lastConfl)
	e.lastConfl = c
	// A budget trip surfaces as Unknown; raise it so the callers'
	// status checks never mistake an interrupted query for Unsat.
	return oracle.CheckSolve(e.solver, st)
}

// HasModel reports satisfiability of the database.
func (e *IncrementalEngine) HasModel() (bool, logic.Interp) {
	if e.solve() != sat.Sat {
		return false, logic.Interp{}
	}
	return true, e.model()
}

func (e *IncrementalEngine) model() logic.Interp {
	m := logic.NewInterp(e.nBase)
	for v := 0; v < e.nBase; v++ {
		m.True.SetTo(v, e.solver.Model(v))
	}
	return m
}

// IsMinimalPZ reports whether m is (P;Z)-minimal, reusing the shared
// solver: the "shrink" clause is guarded by a fresh activation literal
// and the Q/P fixings travel as assumptions.
func (e *IncrementalEngine) IsMinimalPZ(m logic.Interp, part Partition) bool {
	assumptions := e.assumps[:0]
	shrink := e.scratch[:0]
	act := e.fresh()
	shrink = append(shrink, sat.MkLit(act, false)) // ¬act ∨ ⋁ ¬p
	for v := 0; v < e.nBase; v++ {
		a := logic.Atom(v)
		switch {
		case part.Q.Test(v):
			assumptions = append(assumptions, sat.MkLit(v, m.Holds(a)))
		case part.P.Test(v):
			if m.Holds(a) {
				shrink = append(shrink, sat.MkLit(v, false))
			} else {
				assumptions = append(assumptions, sat.MkLit(v, false))
			}
		}
	}
	e.assumps, e.scratch = assumptions, shrink
	if len(shrink) == 1 {
		e.deactivate(act)
		return true // M∩P empty: nothing to shrink
	}
	e.solver.AddClause(shrink...)
	assumptions = append(assumptions, sat.MkLit(act, true))
	e.assumps = assumptions
	res := e.solve(assumptions...)
	e.deactivate(act)
	return res != sat.Sat
}

// MinimizePZ shrinks m to a (P;Z)-minimal model below it.
func (e *IncrementalEngine) MinimizePZ(m logic.Interp, part Partition) logic.Interp {
	cur := m.Clone()
	for {
		assumptions := e.assumps[:0]
		shrink := e.scratch[:0]
		act := e.fresh()
		shrink = append(shrink, sat.MkLit(act, false))
		for v := 0; v < e.nBase; v++ {
			a := logic.Atom(v)
			switch {
			case part.Q.Test(v):
				assumptions = append(assumptions, sat.MkLit(v, cur.Holds(a)))
			case part.P.Test(v):
				if cur.Holds(a) {
					shrink = append(shrink, sat.MkLit(v, false))
				} else {
					assumptions = append(assumptions, sat.MkLit(v, false))
				}
			}
		}
		e.assumps, e.scratch = assumptions, shrink
		if len(shrink) == 1 {
			e.deactivate(act)
			return cur
		}
		e.solver.AddClause(shrink...)
		assumptions = append(assumptions, sat.MkLit(act, true))
		e.assumps = assumptions
		res := e.solve(assumptions...)
		if res != sat.Sat {
			e.deactivate(act)
			return cur
		}
		next := e.model()
		e.deactivate(act)
		cur = next
	}
}

// Minimize is MinimizePZ with full minimisation.
func (e *IncrementalEngine) Minimize(m logic.Interp) logic.Interp {
	return e.MinimizePZ(m, FullMin(e.nBase))
}

// IsMinimal is IsMinimalPZ with full minimisation.
func (e *IncrementalEngine) IsMinimal(m logic.Interp) bool {
	return e.IsMinimalPZ(m, FullMin(e.nBase))
}

// deactivate permanently satisfies the guarded clause so it never
// constrains future queries.
func (e *IncrementalEngine) deactivate(act int) {
	e.solver.AddClause(sat.MkLit(act, false))
}

// Vars returns the current solver variable count (base atoms plus all
// activation and auxiliary variables allocated so far) — the staleness
// measure warm sessions retire engines on.
func (e *IncrementalEngine) Vars() int { return e.nVars }

// SetBudget (re)attaches a query budget to the shared solver. The
// oracle's own budget is attached separately (oracle.WithBudget); warm
// sessions swap both per request.
func (e *IncrementalEngine) SetBudget(b *budget.B) { e.solver.SetBudget(b) }

// MMEntails reports MM(DB;P;Z) ⊨ F on the shared solver — the warm
// counterpart of Engine.MMEntails with identical verdicts (the test
// suite cross-validates them). The ¬F Tseitin clauses and the
// signature-blocking clauses of the candidate loop are guarded by one
// per-query activation literal, so they vanish for later queries while
// every learned clause survives. Candidate minimisation reuses
// MinimizePZ unchanged: like the fresh path, candidates are minimised
// against the database alone, and the unguarded base clauses are
// exactly that.
func (e *IncrementalEngine) MMEntails(f *logic.Formula, part Partition) bool {
	n := e.nBase
	voc := e.DB.Voc.Clone()
	neg := logic.TseitinNeg(f, voc)
	qact := e.fresh()
	defer e.deactivate(qact)
	// Tseitin auxiliary atoms are numbered from n upward in the cloned
	// vocabulary; on the shared solver those indices were consumed long
	// ago by activation variables of earlier queries (some forced false
	// by deactivation units), so the auxiliaries are remapped onto a
	// freshly reserved variable block.
	auxBase := e.nVars
	e.nVars += voc.Size() - n
	remap := func(a int) int {
		if a >= n {
			return auxBase + (a - n)
		}
		return a
	}
	lits := e.scratch[:0]
	for _, cl := range neg {
		lits = lits[:0]
		lits = append(lits, sat.MkLit(qact, false)) // ¬qact ∨ clause
		for _, l := range cl {
			lits = append(lits, sat.MkLit(remap(int(l.Atom())), l.IsPos()))
		}
		e.solver.AddClause(lits...)
	}
	e.scratch = lits
	for {
		if e.solve(sat.MkLit(qact, true)) != sat.Sat {
			return true
		}
		min := e.MinimizePZ(e.model(), part)
		if !f.Eval(min) {
			return false // a (P;Z)-minimal model violating F
		}
		// Same Z-variant subtlety as the fresh path: Z-variants of min
		// share its signature and are minimal because min is, so one of
		// them violating F decides the query. Fix every non-Z atom to
		// min's value by assumption and re-ask the guarded query.
		if !part.Z.IsEmpty() {
			assumptions := e.assumps[:0]
			assumptions = append(assumptions, sat.MkLit(qact, true))
			for v := 0; v < n; v++ {
				if part.Z.Test(v) {
					continue
				}
				assumptions = append(assumptions, sat.MkLit(v, min.Holds(logic.Atom(v))))
			}
			e.assumps = assumptions
			if e.solve(assumptions...) == sat.Sat {
				return false
			}
		}
		block := signatureBlock(min, part, n)
		if len(block) == 0 {
			return true // unique minimal signature, already satisfies F
		}
		lits := e.scratch[:0]
		lits = append(lits, sat.MkLit(qact, false))
		for _, l := range block {
			lits = append(lits, sat.MkLit(int(l.Atom()), l.IsPos()))
		}
		e.scratch = lits
		e.solver.AddClause(lits...)
	}
}

// MinimalModels enumerates MM(DB) on the shared solver; blocking
// clauses are permanent (they only exclude non-minimal territory), so
// the engine must not be used for other queries afterwards — callers
// needing both use separate engines.
func (e *IncrementalEngine) MinimalModels(limit int, yield func(logic.Interp) bool) int {
	return e.MinimalModelsPZ(FullMin(e.nBase), limit, yield)
}

// MinimalModelsPZ enumerates MM(DB;P;Z) — one representative per
// (P,Q)-signature, matching Engine.MinimalModelsPZ — entirely on the
// shared solver: candidate search, assumption-based minimisation, and
// permanent signature blocking all reuse the same learned-clause
// store. The same post-enumeration caveat as MinimalModels applies.
func (e *IncrementalEngine) MinimalModelsPZ(part Partition, limit int, yield func(logic.Interp) bool) int {
	count := 0
	for limit <= 0 || count < limit {
		if e.solve() != sat.Sat {
			return count
		}
		min := e.MinimizePZ(e.model(), part)
		count++
		if !yield(min) {
			return count
		}
		block := signatureBlock(min, part, e.nBase)
		if len(block) == 0 {
			return count // unique signature: done
		}
		lits := e.scratch[:0]
		for _, l := range block {
			lits = append(lits, sat.MkLit(int(l.Atom()), l.IsPos()))
		}
		e.scratch = lits
		e.solver.AddClause(lits...)
	}
	return count
}
