package models

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/dbtest"
	"disjunct/internal/faults"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

// settleGoroutines waits for the goroutine count to fall back to at
// most base, tolerating the runtime's background workers.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d > %d", runtime.NumGoroutine(), base)
}

func sortedKeys(ms []logic.Interp) []string {
	keys := make([]string, len(ms))
	for i, m := range ms {
		keys[i] = m.Key()
	}
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBudgetedCompleteIsByteIdentical: under a generous budget every
// budgeted enumerator completes and yields exactly the unbudgeted
// enumerator's model set; the serial one in the identical order.
func TestBudgetedCompleteIsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 60; iter++ {
		d := gen.Random(rng, gen.Config{Atoms: 3 + rng.Intn(5), Clauses: 2 + rng.Intn(8), MaxHead: 3, MaxBody: 2, FactProb: 0.4})

		ref := NewEngine(d, oracle.NewNP())
		var want []logic.Interp
		ref.MinimalModels(0, func(m logic.Interp) bool {
			want = append(want, m.Clone())
			return true
		})

		o := oracle.NewNP().WithBudget(budget.New(context.Background(), budget.Limits{NPCalls: 1 << 30, Deadline: time.Hour}))
		eng := NewEngine(d, o)
		var got []logic.Interp
		count, err := eng.MinimalModelsBudgeted(0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		})
		if err != nil {
			t.Fatalf("iter %d: generous budget tripped: %v", iter, err)
		}
		if count != len(want) || len(got) != len(want) {
			t.Fatalf("iter %d: count %d, want %d", iter, count, len(want))
		}
		for i := range want {
			if want[i].Key() != got[i].Key() {
				t.Fatalf("iter %d: order/content diverges at %d", iter, i)
			}
		}

		// Parallel budgeted: same set (order is nondeterministic).
		o2 := oracle.NewNP().WithBudget(budget.New(context.Background(), budget.Limits{NPCalls: 1 << 30}))
		eng2 := NewEngine(d, o2)
		var gotPar []logic.Interp
		_, err = eng2.MinimalModelsParBudgeted(0, func(m logic.Interp) bool {
			gotPar = append(gotPar, m.Clone())
			return true
		}, ParOptions{Workers: 4})
		if err != nil {
			t.Fatalf("iter %d: parallel generous budget tripped: %v", iter, err)
		}
		if !equalKeys(sortedKeys(want), sortedKeys(gotPar)) {
			t.Fatalf("iter %d: parallel model set diverges", iter)
		}
	}
}

// TestNPCallBudgetYieldsPartialResult: a tight NP-call budget
// interrupts the enumeration with the typed cause; models yielded
// before the trip are genuine (a prefix of the reference set) and the
// counter is exact.
func TestNPCallBudgetYieldsPartialResult(t *testing.T) {
	d := dbtest.MustParse("a | b. c | d. e | f. g | h.")
	ref := NewEngine(d, oracle.NewNP())
	refSet := map[string]bool{}
	ref.MinimalModels(0, func(m logic.Interp) bool {
		refSet[m.Key()] = true
		return true
	})

	const limit = 4
	o := oracle.NewNP().WithBudget(budget.New(context.Background(), budget.Limits{NPCalls: limit}))
	eng := NewEngine(d, o)
	var got []logic.Interp
	count, err := eng.MinimalModelsBudgeted(0, func(m logic.Interp) bool {
		got = append(got, m.Clone())
		return true
	})
	if !errors.Is(err, budget.ErrNPCallBudget) {
		t.Fatalf("err = %v, want ErrNPCallBudget", err)
	}
	if count != len(got) {
		t.Fatalf("count %d != yields %d", count, len(got))
	}
	if count >= len(refSet) {
		t.Fatalf("enumeration was not actually cut short (%d of %d)", count, len(refSet))
	}
	for _, m := range got {
		if !refSet[m.Key()] {
			t.Fatalf("partial result %s is not a reference minimal model", m.Key())
		}
	}
	if calls := o.Counters().NPCalls; calls != limit {
		t.Fatalf("NPCalls = %d, want exactly %d", calls, limit)
	}
}

// cancelMidEnumeration cancels the context from inside the first yield
// and asserts the enumerator returns promptly with ErrCanceled, the
// pool drains, and counters stay consistent. Run under -race.
func cancelMidEnumeration(t *testing.T, run func(eng *Engine, yield func(logic.Interp) bool) (int, error)) {
	t.Helper()
	d := dbtest.MustParse("a | b. c | d. e | f. g | h. i | j.")
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := oracle.NewNP().WithBudget(budget.New(ctx, budget.Limits{}))
	eng := NewEngine(d, o)

	yields := 0
	start := time.Now()
	count, err := run(eng, func(logic.Interp) bool {
		yields++
		if yields == 1 {
			cancel()
		}
		return true
	})
	elapsed := time.Since(start)

	if err != nil && !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled (or a pre-cancel completion)", err)
	}
	if err == nil && yields == 0 {
		t.Fatal("no yields and no error: enumeration vanished")
	}
	if count != yields {
		t.Fatalf("count %d != yields %d after cancellation", count, yields)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation not prompt: %v", elapsed)
	}
	settleGoroutines(t, base)

	c := o.Counters()
	if c.NPCalls < 0 || (c.CacheHits+c.CacheMisses) > c.NPCalls && o.Cache() != nil {
		t.Fatalf("inconsistent counters after cancel: %+v", c)
	}
}

func TestCancelMidMinimalModelsPar(t *testing.T) {
	cancelMidEnumeration(t, func(eng *Engine, yield func(logic.Interp) bool) (int, error) {
		return eng.MinimalModelsParBudgeted(0, yield, ParOptions{Workers: 4})
	})
}

func TestCancelMidEnumerateModelsPar(t *testing.T) {
	cancelMidEnumeration(t, func(eng *Engine, yield func(logic.Interp) bool) (int, error) {
		return eng.EnumerateModelsParBudgeted(0, yield, ParOptions{Workers: 4})
	})
}

func TestCancelMidSerialEnumeration(t *testing.T) {
	cancelMidEnumeration(t, func(eng *Engine, yield func(logic.Interp) bool) (int, error) {
		return eng.MinimalModelsBudgeted(0, yield)
	})
}

// TestPreCanceledContextFailsFast: enumeration on an already-canceled
// context yields nothing and returns ErrCanceled immediately.
func TestPreCanceledContextFailsFast(t *testing.T) {
	d := dbtest.MustParse("a | b. c | d.")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := oracle.NewNP().WithBudget(budget.New(ctx, budget.Limits{}))
	eng := NewEngine(d, o)
	count, err := eng.MinimalModelsParBudgeted(0, func(logic.Interp) bool { return true }, ParOptions{Workers: 4})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if count != 0 {
		t.Fatalf("count = %d on pre-canceled context", count)
	}
}

// TestFaultInjectionWorkerPool: with faults injected into the oracle
// under the worker pool, every run either completes with the reference
// model set or surfaces a typed interruption — and never leaks
// goroutines. Run under -race.
func TestFaultInjectionWorkerPool(t *testing.T) {
	d := dbtest.MustParse("a | b. b | c. c | a. d | e.")
	ref := NewEngine(d, oracle.NewNP())
	var want []logic.Interp
	ref.MinimalModels(0, func(m logic.Interp) bool {
		want = append(want, m.Clone())
		return true
	})
	wantKeys := sortedKeys(want)

	base := runtime.NumGoroutine()
	completed, interrupted := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		o := oracle.NewNP().WithFaults(faults.NewInjector(0.2, seed))
		eng := NewEngine(d, o)
		var got []logic.Interp
		_, err := eng.MinimalModelsParBudgeted(0, func(m logic.Interp) bool {
			got = append(got, m.Clone())
			return true
		}, ParOptions{Workers: 4})
		if err != nil {
			if !budget.Interrupted(err) {
				t.Fatalf("seed %d: untyped error %v", seed, err)
			}
			interrupted++
			continue
		}
		if !equalKeys(wantKeys, sortedKeys(got)) {
			t.Fatalf("seed %d: silent corruption — completed run diverges from reference", seed)
		}
		completed++
	}
	if completed == 0 {
		t.Fatal("no seed completed at rate 0.2")
	}
	if interrupted == 0 {
		t.Log("note: no seed was interrupted at rate 0.2 (distribution drift)")
	}
	settleGoroutines(t, base)
}
