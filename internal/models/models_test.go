package models

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
	"disjunct/internal/refsem"
)

func collectMinimal(e *Engine) []logic.Interp {
	var out []logic.Interp
	e.MinimalModels(0, func(m logic.Interp) bool {
		out = append(out, m.Clone())
		return true
	})
	return out
}

func TestMinimalModelsSimple(t *testing.T) {
	d := dbtest.MustParse("a | b.")
	e := NewEngine(d, nil)
	mm := collectMinimal(e)
	if len(mm) != 2 {
		t.Fatalf("MM(a|b) has %d models, want 2", len(mm))
	}
	for _, m := range mm {
		if m.True.Count() != 1 {
			t.Fatalf("minimal model %s not a singleton", m.String(d.Voc))
		}
	}
}

func TestMinimalModelsPaperExample(t *testing.T) {
	// §2 of the paper: DB with M(DB) as listed and MM(DB) = {{a},{b}}.
	d := dbtest.MustParse("a | b.")
	d.Voc.Intern("c")
	e := NewEngine(d, nil)
	mm := collectMinimal(e)
	if len(mm) != 2 {
		t.Fatalf("got %d minimal models, want 2", len(mm))
	}
	want := map[string]bool{"{a}": true, "{b}": true}
	for _, m := range mm {
		if !want[m.String(d.Voc)] {
			t.Fatalf("unexpected minimal model %s", m.String(d.Voc))
		}
	}
}

func TestMinimalModelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 400; iter++ {
		var d *db.DB
		if iter%2 == 0 {
			d = gen.Random(rng, gen.Positive(2+rng.Intn(5), 1+rng.Intn(8)))
		} else {
			d = gen.Random(rng, gen.WithIntegrity(2+rng.Intn(5), 1+rng.Intn(8)))
		}
		want := refsem.MinimalModels(d)
		got := collectMinimal(NewEngine(d, nil))
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: MM mismatch\nDB:\n%swant %d models, got %d", iter, d.String(), len(want), len(got))
		}
	}
}

func TestMinimalModelsPZMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(7)))
		p, q := randomPartition(rng, d.N())
		part := partitionOf(d.N(), p, q)
		want := refsem.MinimalModelsPZ(d, p, q)
		var got []logic.Interp
		eng := NewEngine(d, nil)
		// MinimalModelsPZ yields one representative per signature;
		// reconstruct the full set by filtering all models.
		eng.EnumerateModels(0, func(m logic.Interp) bool {
			if eng.IsMinimalPZ(m, part) {
				got = append(got, m.Clone())
			}
			return true
		})
		if !refsem.SameModelSet(want, got) {
			t.Fatalf("iter %d: MM(P;Z) mismatch\nDB:\n%swant %d, got %d", iter, d.String(), len(want), len(got))
		}
	}
}

// randomPartition returns P and Q as maps (Z = complement).
func randomPartition(rng *rand.Rand, n int) (p, q map[int]bool) {
	p, q = map[int]bool{}, map[int]bool{}
	for v := 0; v < n; v++ {
		switch rng.Intn(3) {
		case 0:
			p[v] = true
		case 1:
			q[v] = true
		}
	}
	return p, q
}

func partitionOf(n int, p, q map[int]bool) Partition {
	var ps, zs []logic.Atom
	for v := 0; v < n; v++ {
		if p[v] {
			ps = append(ps, logic.Atom(v))
		} else if !q[v] {
			zs = append(zs, logic.Atom(v))
		}
	}
	return NewPartition(n, ps, zs)
}

func TestPartitionValid(t *testing.T) {
	part := NewPartition(5, []logic.Atom{0, 1}, []logic.Atom{4})
	if !part.Valid() {
		t.Fatalf("partition should be valid")
	}
	if part.P.Count() != 2 || part.Q.Count() != 2 || part.Z.Count() != 1 {
		t.Fatalf("partition sizes wrong: P=%v Q=%v Z=%v", part.P, part.Q, part.Z)
	}
	bad := Partition{P: part.P, Q: part.P, Z: part.Z}
	if bad.Valid() {
		t.Fatalf("overlapping partition should be invalid")
	}
}

func TestFullMin(t *testing.T) {
	part := FullMin(4)
	if !part.Valid() || part.P.Count() != 4 {
		t.Fatalf("FullMin wrong: %v", part.P)
	}
}

func TestMMEntailsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(7)))
		f := randomFormula(rng, d.Voc, n, 3)
		want := refsem.Entails(refsem.MinimalModels(d), f)
		eng := NewEngine(d, nil)
		got := eng.MMEntails(f, FullMin(d.N()))
		if got != want {
			t.Fatalf("iter %d: MMEntails=%v want %v\nDB:\n%sF: %s", iter, got, want, d.String(), f.String(d.Voc))
		}
	}
}

func TestMMEntailsPZMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		p, q := randomPartition(rng, n)
		part := partitionOf(n, p, q)
		f := randomFormula(rng, d.Voc, n, 3)
		want := refsem.Entails(refsem.MinimalModelsPZ(d, p, q), f)
		got := NewEngine(d, nil).MMEntails(f, part)
		if got != want {
			t.Fatalf("iter %d: MMEntails(P;Z)=%v want %v\nDB:\n%sF: %s\nP=%v Q=%v",
				iter, got, want, d.String(), f.String(d.Voc), p, q)
		}
	}
}

// randomFormula builds a random formula over the first n atoms of voc.
func randomFormula(rng *rand.Rand, voc *logic.Vocabulary, n, depth int) *logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := randomFormula(rng, voc, n, depth-1)
	r := randomFormula(rng, voc, n, depth-1)
	switch rng.Intn(4) {
	case 0:
		return logic.And(l, r)
	case 1:
		return logic.Or(l, r)
	case 2:
		return logic.Implies(l, r)
	default:
		return logic.Not(l)
	}
}

func TestMinimizeProducesMinimalModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(3+rng.Intn(4), 1+rng.Intn(6)))
		eng := NewEngine(d, nil)
		ok, m := eng.HasModel()
		if !ok {
			continue
		}
		min := eng.Minimize(m)
		if !d.Sat(min) {
			t.Fatalf("iter %d: Minimize returned a non-model", iter)
		}
		if !eng.IsMinimal(min) {
			t.Fatalf("iter %d: Minimize returned a non-minimal model", iter)
		}
		if !min.SubsetOf(m) {
			t.Fatalf("iter %d: Minimize grew the model", iter)
		}
	}
}

func TestUniqueMinimalModelMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	agreeUnique, agreeMulti := 0, 0
	for iter := 0; iter < 300; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(3+rng.Intn(4), 1+rng.Intn(6)))
		mm := refsem.MinimalModels(d)
		want := len(mm) == 1
		got, _ := NewEngine(d, nil).UniqueMinimalModel()
		if got != want {
			t.Fatalf("iter %d: UMINSAT=%v want %v (|MM|=%d)\nDB:\n%s", iter, got, want, len(mm), d.String())
		}
		if want {
			agreeUnique++
		} else {
			agreeMulti++
		}
	}
	if agreeUnique == 0 || agreeMulti == 0 {
		t.Fatalf("test corpus degenerate: unique=%d multi=%d", agreeUnique, agreeMulti)
	}
}

func TestUniqueMinimalModelUnsat(t *testing.T) {
	d := dbtest.MustParse("a. :- a.")
	ok, _ := NewEngine(d, nil).UniqueMinimalModel()
	if ok {
		t.Fatalf("unsatisfiable DB cannot have a unique minimal model")
	}
}

func TestEnumerateModelsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 150; iter++ {
		d := gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(6)))
		want := len(refsem.Models(d))
		got := NewEngine(d, nil).EnumerateModels(0, func(logic.Interp) bool { return true })
		if got != want {
			t.Fatalf("iter %d: enumerated %d models, reference %d\nDB:\n%s", iter, got, want, d.String())
		}
	}
}

func TestOracleCountersAdvance(t *testing.T) {
	d := dbtest.MustParse("a | b. c :- a.")
	o := oracle.NewNP()
	eng := NewEngine(d, o)
	eng.MMEntails(logic.MustParseFormula("a | b", d.Voc), FullMin(d.N()))
	if o.Counters().NPCalls == 0 {
		t.Fatalf("MMEntails should consume NP-oracle calls")
	}
}

// Property: for any DB and formula, MMEntails is monotone with respect
// to weakening the formula by disjunction.
func TestQuickMMEntailsWeakening(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(5)))
		g := randomFormula(rng, d.Voc, n, 2)
		h := randomFormula(rng, d.Voc, n, 2)
		eng := NewEngine(d, nil)
		part := FullMin(d.N())
		if eng.MMEntails(g, part) && !eng.MMEntails(logic.Or(g, h), part) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: every minimal model yielded by the engine is a model and
// is minimal according to the brute-force definition.
func TestQuickMinimalModelsSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := gen.Random(rng, gen.WithIntegrity(2+rng.Intn(4), 1+rng.Intn(6)))
		all := refsem.Models(d)
		ok := true
		NewEngine(d, nil).MinimalModels(0, func(m logic.Interp) bool {
			if !d.Sat(m) {
				ok = false
				return false
			}
			for _, o := range all {
				if o.ProperSubsetOf(m) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMinimalityCheckSATvsNaive(b *testing.B) {
	// Ablation (DESIGN.md §8): one SAT-based minimality check vs naive
	// subset enumeration over the model's true atoms.
	for _, n := range []int{8, 12, 16} {
		rng := rand.New(rand.NewSource(42))
		d := gen.Random(rng, gen.Positive(n, 2*n))
		eng := NewEngine(d, nil)
		ok, m := eng.HasModel()
		if !ok {
			b.Fatal("positive DB must be satisfiable")
		}
		b.Run(fmt.Sprintf("sat/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.IsMinimal(m)
			}
		})
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naiveIsMinimal(d, m)
			}
		})
	}
}

// naiveIsMinimal enumerates all proper subsets of m's true atoms.
func naiveIsMinimal(d *db.DB, m logic.Interp) bool {
	atoms := m.True.Elements()
	k := len(atoms)
	if k > 24 {
		return true
	}
	for mask := 0; mask < 1<<uint(k)-1; mask++ {
		sub := logic.NewInterp(d.N())
		for i, a := range atoms {
			if mask&(1<<uint(i)) != 0 {
				sub.True.Set(a)
			}
		}
		if d.Sat(sub) {
			return false
		}
	}
	return true
}

func TestMMEntailsWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	failures := 0
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(6)))
		f := randomFormula(rng, d.Voc, n, 3)
		eng := NewEngine(d, nil)
		part := FullMin(d.N())
		holds, w := eng.MMEntailsWitness(f, part)
		if holds != eng.MMEntails(f, part) {
			t.Fatalf("iter %d: witness variant disagrees with MMEntails", iter)
		}
		if holds {
			continue
		}
		failures++
		// The witness must be a minimal model of DB violating f.
		if !d.Sat(w) {
			t.Fatalf("iter %d: witness is not a model", iter)
		}
		if f.Eval(w) {
			t.Fatalf("iter %d: witness satisfies the formula", iter)
		}
		if !eng.IsMinimal(w) {
			t.Fatalf("iter %d: witness is not minimal", iter)
		}
	}
	if failures == 0 {
		t.Fatalf("corpus produced no failed entailments")
	}
}

func TestExistsMinimalWithAtomAgreesWithCoSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(291))
	for iter := 0; iter < 250; iter++ {
		n := 3 + rng.Intn(4)
		d := gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(7)))
		p, q := randomPartition(rng, n)
		part := partitionOf(n, p, q)
		eng := NewEngine(d, nil)
		x := logic.Atom(rng.Intn(n))
		viaCoSearch := !eng.AtomFalseInAllMinimal(x, part)
		viaXSpace := eng.ExistsMinimalWithAtom(x, part)
		if viaCoSearch != viaXSpace {
			t.Fatalf("iter %d: strategies disagree on atom %s (cosearch=%v xspace=%v)\nDB:\n%s",
				iter, d.Voc.Name(x), viaCoSearch, viaXSpace, d.String())
		}
	}
}
