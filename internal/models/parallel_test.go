package models

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"disjunct/internal/bitset"
	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

// keySet collects the Key of every yielded interpretation.
func keySet(yields []logic.Interp) map[string]bool {
	out := make(map[string]bool, len(yields))
	for _, m := range yields {
		out[m.Key()] = true
	}
	return out
}

func collectPar(e *Engine, opt ParOptions) []logic.Interp {
	var out []logic.Interp
	e.MinimalModelsPar(0, func(m logic.Interp) bool {
		out = append(out, m.Clone())
		return true
	}, opt)
	return out
}

func randomDBs(seed int64, count int) []*db.DB {
	rng := rand.New(rand.NewSource(seed))
	var dbs []*db.DB
	for i := 0; i < count; i++ {
		switch i % 3 {
		case 0:
			dbs = append(dbs, gen.Random(rng, gen.Positive(6+rng.Intn(6), 10+rng.Intn(10))))
		case 1:
			dbs = append(dbs, gen.Random(rng, gen.WithIntegrity(6+rng.Intn(6), 10+rng.Intn(10))))
		default:
			dbs = append(dbs, gen.Random(rng, gen.Normal(5+rng.Intn(5), 8+rng.Intn(8))))
		}
	}
	return dbs
}

func TestMinimalModelsParMatchesSerial(t *testing.T) {
	for i, d := range randomDBs(7, 30) {
		serial := keySet(collectMinimal(NewEngine(d, nil)))
		for _, opt := range []ParOptions{
			{Workers: 1}, {Workers: 4}, {Workers: 4, Share: true}, {Workers: 0},
		} {
			got := keySet(collectPar(NewEngine(d, nil), opt))
			if len(got) != len(serial) {
				t.Fatalf("db %d opt %+v: %d minimal models, serial %d", i, opt, len(got), len(serial))
			}
			for k := range serial {
				if !got[k] {
					t.Fatalf("db %d opt %+v: serial minimal model %s missing from parallel set", i, opt, k)
				}
			}
		}
	}
}

// TestMinimalModelsParCountDeterministic asserts the complexity-shape
// invariant: with Share off and no limit, the NP-call total of the
// parallel enumerator does not depend on the worker count.
func TestMinimalModelsParCountDeterministic(t *testing.T) {
	for i, d := range randomDBs(11, 20) {
		var want oracle.Counters
		for wi, workers := range []int{1, 2, 4, 8} {
			o := oracle.NewNP()
			e := NewEngine(d, o)
			e.MinimalModelsPar(0, func(logic.Interp) bool { return true }, ParOptions{Workers: workers})
			got := o.Counters()
			got.SATConfl = 0 // conflicts are a solver statistic, not part of the call-count shape
			if wi == 0 {
				want = got
			} else if got != want {
				t.Fatalf("db %d: workers=%d counters %+v, workers=1 %+v", i, workers, got, want)
			}
		}
	}
}

// pqKey projects an interpretation onto the P∪Q atoms — the signature
// identity the PZ enumerators guarantee one representative of.
func pqKey(m logic.Interp, part Partition, n int) string {
	pq := bitset.New(n)
	pq.UnionWith(part.P)
	pq.UnionWith(part.Q)
	proj := m.True.Clone()
	proj.IntersectWith(pq)
	return proj.Key()
}

func TestMinimalModelsPZParSignaturesMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i, d := range randomDBs(5, 20) {
		n := d.N()
		var p, z []logic.Atom
		for v := 0; v < n; v++ {
			switch rng.Intn(3) {
			case 0:
				p = append(p, logic.Atom(v))
			case 1:
				z = append(z, logic.Atom(v))
			}
		}
		part := NewPartition(n, p, z)

		serial := map[string]bool{}
		NewEngine(d, nil).MinimalModelsPZ(part, 0, func(m logic.Interp) bool {
			serial[pqKey(m, part, n)] = true
			return true
		})
		for _, opt := range []ParOptions{{Workers: 1}, {Workers: 4}, {Workers: 4, Share: true}} {
			got := map[string]bool{}
			NewEngine(d, nil).MinimalModelsPZPar(part, 0, func(m logic.Interp) bool {
				got[pqKey(m, part, n)] = true
				return true
			}, opt)
			if len(got) != len(serial) {
				t.Fatalf("db %d opt %+v: %d signatures, serial %d", i, opt, len(got), len(serial))
			}
			for k := range serial {
				if !got[k] {
					t.Fatalf("db %d opt %+v: signature %q missing", i, opt, k)
				}
			}
		}
	}
}

func TestEnumerateModelsParMatchesSerial(t *testing.T) {
	for i, d := range randomDBs(31, 20) {
		var serial []logic.Interp
		NewEngine(d, nil).EnumerateModels(0, func(m logic.Interp) bool {
			serial = append(serial, m.Clone())
			return true
		})
		for _, workers := range []int{1, 4, 0} {
			var got []logic.Interp
			NewEngine(d, nil).EnumerateModelsPar(0, func(m logic.Interp) bool {
				got = append(got, m.Clone())
				return true
			}, ParOptions{Workers: workers})
			sk, gk := keySet(serial), keySet(got)
			if len(got) != len(serial) || len(gk) != len(sk) {
				t.Fatalf("db %d workers=%d: %d models (%d distinct), serial %d (%d)",
					i, workers, len(got), len(gk), len(serial), len(sk))
			}
			for k := range sk {
				if !gk[k] {
					t.Fatalf("db %d workers=%d: model %q missing", i, workers, k)
				}
			}
		}
	}
}

func TestEnumerateModelsParCountDeterministic(t *testing.T) {
	for i, d := range randomDBs(43, 10) {
		var want int64
		for wi, workers := range []int{1, 3, 8} {
			o := oracle.NewNP()
			NewEngine(d, o).EnumerateModelsPar(0, func(logic.Interp) bool { return true },
				ParOptions{Workers: workers})
			if np := o.Counters().NPCalls; wi == 0 {
				want = np
			} else if np != want {
				t.Fatalf("db %d: workers=%d NP=%d, workers=1 NP=%d", i, workers, np, want)
			}
		}
	}
}

func TestParallelLimitAndEarlyStop(t *testing.T) {
	d := dbtest.MustParse("a | b. c | d. e | f.")
	e := NewEngine(d, nil)
	count := e.MinimalModelsPar(3, func(logic.Interp) bool { return true }, ParOptions{Workers: 4})
	if count != 3 {
		t.Fatalf("limit=3 yielded %d", count)
	}
	seen := 0
	e2 := NewEngine(d, nil)
	e2.EnumerateModelsPar(0, func(logic.Interp) bool {
		seen++
		return seen < 2 // abort from the callback
	}, ParOptions{Workers: 4})
	if seen != 2 {
		t.Fatalf("early stop saw %d yields, want 2", seen)
	}
}

// TestParallelYieldsAreMinimalModels sanity-checks every parallel
// yield: a model of the database with no strictly smaller model.
func TestParallelYieldsAreMinimalModels(t *testing.T) {
	for i, d := range randomDBs(59, 15) {
		e := NewEngine(d, nil)
		check := NewEngine(d, oracle.NewNP())
		var bad []string
		e.MinimalModelsPar(0, func(m logic.Interp) bool {
			if !d.Sat(m) {
				bad = append(bad, fmt.Sprintf("non-model %s", m.Key()))
			} else if !check.IsMinimal(m) {
				bad = append(bad, fmt.Sprintf("non-minimal %s", m.Key()))
			}
			return true
		}, ParOptions{Workers: 4})
		sort.Strings(bad)
		if len(bad) > 0 {
			t.Fatalf("db %d: %v", i, bad)
		}
	}
}
