package models

import (
	"sync"

	"disjunct/internal/logic"
	"disjunct/internal/oracle"
	"disjunct/internal/par"
	"disjunct/internal/sat"
)

// This file is the worker-pool layer of the minimal-model engine. The
// parallel enumerators decompose the search space STATICALLY — into
// regions (minimal models) or cubes (all models) — so that each piece
// performs the same NP-oracle queries regardless of how many workers
// run it or in which order. Consequence: with Share disabled and no
// limit/early-stop, the total oracle-call count is a function of the
// database alone, identical for 1 worker and NumCPU workers — the
// complexity-shape evidence the bench harness reports stays exact
// while wall-clock drops. bench.RunParallel asserts this.
//
// Region decomposition for minimal models: each (P,Q)-signature has a
// unique least true P-atom (or none), so the regions
//
//	R_v = "P-atoms before v false, p_v true"   (v ∈ P, ascending)
//	R_∅ = "every P-atom false"
//
// partition the signature space. Within R_v the engine runs the usual
// signature-blocking search against DB ∧ R_v's units; a region-minimal
// signature need not be globally minimal (a smaller model may drop
// p_v into a later region), so each one is verified with one global
// minimality call before being yielded. Blocking a region-minimal
// cone never hides a globally minimal signature: anything strictly
// inside the cone has a region model strictly below it on P.

// ParOptions configures the parallel enumerators.
type ParOptions struct {
	// Workers is the goroutine count; ≤ 0 means runtime.NumCPU().
	Workers int
	// Share lets regions seed their query with the blocking clauses
	// other workers have already published (the mutex-guarded store),
	// pruning territory opportunistically. Sound — published cones
	// contain no unreported minimal signature — but the pruning a
	// region receives depends on timing, so oracle-call counts are no
	// longer run-to-run reproducible. Leave it off when counts are the
	// point (the bench harness does); turn it on when wall-clock is.
	Share bool
}

// blockStore is the mutex-guarded store of globally valid blocking
// clauses learned by the workers. Every yielded signature's cone
// clause is published; regions consume a snapshot only when
// ParOptions.Share is set.
type blockStore struct {
	mu      sync.Mutex
	clauses []logic.Clause
}

func (b *blockStore) publish(cl logic.Clause) {
	if len(cl) == 0 {
		return
	}
	b.mu.Lock()
	b.clauses = append(b.clauses, cl)
	b.mu.Unlock()
}

func (b *blockStore) snapshot() []logic.Clause {
	b.mu.Lock()
	out := b.clauses[:len(b.clauses):len(b.clauses)]
	b.mu.Unlock()
	return out
}

// emitter serialises yields from concurrent workers and implements
// limit / early-stop. User callbacks never run concurrently.
type emitter struct {
	mu      sync.Mutex
	yield   func(logic.Interp) bool
	limit   int
	count   int
	stopped bool
}

// emit delivers m; it reports whether the caller should keep working.
func (em *emitter) emit(m logic.Interp) bool {
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.stopped {
		return false
	}
	em.count++
	if !em.yield(m) || (em.limit > 0 && em.count >= em.limit) {
		em.stopped = true
	}
	return !em.stopped
}

func (em *emitter) done() bool {
	em.mu.Lock()
	defer em.mu.Unlock()
	return em.stopped
}

// halt stops emission unconditionally. Workers call it (under recover)
// the moment a budget trip unwinds them, so that no in-flight sibling
// invokes the user callback after the trip: emit and halt linearise on
// the mutex, and any emit that starts after halt returns false without
// touching yield.
func (em *emitter) halt() {
	em.mu.Lock()
	em.stopped = true
	em.mu.Unlock()
}

// MinimalModelsPar is MinimalModels across a worker pool: same model
// set (minimal models ARE their signatures under full minimisation),
// deterministic oracle-call count for any worker count when limit ≤ 0
// and Share is off. Yields arrive in nondeterministic order.
func (e *Engine) MinimalModelsPar(limit int, yield func(logic.Interp) bool, opt ParOptions) int {
	return e.MinimalModelsPZPar(FullMin(e.DB.N()), limit, yield, opt)
}

// MinimalModelsPZPar computes MM(DB;P;Z) — one representative per
// (P,Q)-signature, like MinimalModelsPZ — with region-decomposed
// worker-pool search. The signature set is identical to the serial
// enumerator's; representatives may differ on Z atoms (any Z-variant
// is as (P;Z)-minimal as another).
func (e *Engine) MinimalModelsPZPar(part Partition, limit int, yield func(logic.Interp) bool, opt ParOptions) int {
	n := e.DB.N()
	pAtoms := part.P.Elements()
	em := &emitter{yield: yield, limit: limit}
	store := &blockStore{}

	runRegion := func(i int) {
		if em.done() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				em.halt() // budget trip: silence siblings before unwinding
				panic(r)
			}
		}()
		// Region query: DB ∧ ¬p_w (w before i) ∧ p_i (omitted for R_∅).
		query := logic.CloneCNF(e.cnf)
		for j := 0; j < i && j < len(pAtoms); j++ {
			query = append(query, logic.Clause{logic.NegLit(logic.Atom(pAtoms[j]))})
		}
		if i < len(pAtoms) {
			query = append(query, logic.Clause{logic.PosLit(logic.Atom(pAtoms[i]))})
		}
		if opt.Share {
			query = append(query, store.snapshot()...)
		}
		e.minimalSignatures(query, part, func(min logic.Interp) bool {
			if em.done() {
				return false
			}
			// Region-minimal; globally minimal? One NP call.
			if !e.IsMinimalPZ(min, part) {
				return true
			}
			store.publish(signatureBlock(min, part, n))
			return em.emit(min)
		})
	}

	par.ForEach(opt.Workers, len(pAtoms)+1, runRegion)
	return em.count
}

// enumCubeBits is the static cube width of EnumerateModelsPar: the
// model space splits on the first min(n, enumCubeBits) variables into
// up to 2^enumCubeBits disjoint cubes. Fixed (not worker-derived) so
// the oracle-call count never depends on the machine's core count.
const enumCubeBits = 6

// EnumerateModelsPar yields every model of the database across a
// worker pool, one cube of the (statically split) assignment space per
// work item. Model set matches EnumerateModels exactly; the call count
// is deterministic for any worker count when limit ≤ 0 (one SatSolver
// build per cube plus one CountCall per model, against the serial
// path's single build — wall-clock, not the count shape, is what
// changes). Yield order is nondeterministic.
func (e *Engine) EnumerateModelsPar(limit int, yield func(logic.Interp) bool, opt ParOptions) int {
	n := e.DB.N()
	k := enumCubeBits
	if k > n {
		k = n
	}
	if k == 0 {
		return e.EnumerateModels(limit, yield)
	}
	em := &emitter{yield: yield, limit: limit}

	runCube := func(c int) {
		if em.done() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				em.halt() // budget trip: silence siblings before unwinding
				panic(r)
			}
		}()
		s := e.Ora.SatSolver(n, e.cnf)
		for b := 0; b < k; b++ {
			if !s.AddClause(sat.MkLit(b, c>>b&1 == 1)) {
				return // cube contradicts the database at level 0
			}
		}
		s.EnumerateModels(n, 0, func(model []bool) bool {
			e.Ora.CountCall()
			m := logic.NewInterp(n)
			for v := 0; v < n; v++ {
				m.True.SetTo(v, model[v])
			}
			return em.emit(m)
		})
		oracle.CheckEnumerate(s)
	}

	par.ForEach(opt.Workers, 1<<k, runCube)
	return em.count
}
