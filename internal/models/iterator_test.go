package models

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/dbtest"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

// pull drains an iterator via Next(ctx) without Close, returning the
// models and the terminal error.
func pull(t *testing.T, it ModelIterator, ctx context.Context) ([]logic.Interp, error) {
	t.Helper()
	var out []logic.Interp
	for {
		m, err := it.Next(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, m.Clone())
	}
}

// TestIterateModelsMatchesPush: the serial pull enumerator returns the
// same models in the same order with the same NP-call total as the
// push path.
func TestIterateModelsMatchesPush(t *testing.T) {
	for i, d := range randomDBs(101, 20) {
		oPush := oracle.NewNP()
		var want []logic.Interp
		NewEngine(d, oPush).EnumerateModels(0, func(m logic.Interp) bool {
			want = append(want, m.Clone())
			return true
		})

		oPull := oracle.NewNP()
		it := NewEngine(d, oPull).IterateModels(0)
		got, err := pull(t, it, nil)
		if !errors.Is(err, io.EOF) {
			t.Fatalf("db %d: terminal %v, want io.EOF", i, err)
		}
		if !equalKeys(sortedKeys(got), sortedKeys(want)) || len(got) != len(want) {
			t.Fatalf("db %d: pull %d models, push %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].Key() != want[j].Key() {
				t.Fatalf("db %d: order diverges at %d", i, j)
			}
		}
		if a, b := oPull.Counters().NPCalls, oPush.Counters().NPCalls; a != b {
			t.Fatalf("db %d: pull NP=%d push NP=%d", i, a, b)
		}
		it.Close()
		if _, err := it.Next(nil); !errors.Is(err, io.EOF) {
			t.Fatalf("db %d: Next after Close = %v", i, err)
		}
	}
}

// TestIterateMinimalModelsMatchesPush: serial minimal-model pull vs
// push — identical order and NP totals.
func TestIterateMinimalModelsMatchesPush(t *testing.T) {
	for i, d := range randomDBs(103, 20) {
		oPush := oracle.NewNP()
		var want []logic.Interp
		NewEngine(d, oPush).MinimalModels(0, func(m logic.Interp) bool {
			want = append(want, m.Clone())
			return true
		})

		oPull := oracle.NewNP()
		got, err := pull(t, NewEngine(d, oPull).IterateMinimalModels(0), nil)
		if !errors.Is(err, io.EOF) {
			t.Fatalf("db %d: terminal %v, want io.EOF", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("db %d: pull %d minimal models, push %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].Key() != want[j].Key() {
				t.Fatalf("db %d: order diverges at %d", i, j)
			}
		}
		if a, b := oPull.Counters().NPCalls, oPush.Counters().NPCalls; a != b {
			t.Fatalf("db %d: pull NP=%d push NP=%d", i, a, b)
		}
	}
}

// TestIterateParMatchesPush: the pump-backed parallel iterators return
// the same model set and NP totals as their push counterparts, and
// leak no producer goroutine.
func TestIterateParMatchesPush(t *testing.T) {
	base := runtime.NumGoroutine()
	for i, d := range randomDBs(107, 12) {
		for _, minimal := range []bool{false, true} {
			oPush := oracle.NewNP()
			var want []logic.Interp
			add := func(m logic.Interp) bool { want = append(want, m.Clone()); return true }
			if minimal {
				NewEngine(d, oPush).MinimalModelsPar(0, add, ParOptions{Workers: 4})
			} else {
				NewEngine(d, oPush).EnumerateModelsPar(0, add, ParOptions{Workers: 4})
			}

			oPull := oracle.NewNP()
			var it ModelIterator
			if minimal {
				it = NewEngine(d, oPull).IterateMinimalModelsPar(0, ParOptions{Workers: 4})
			} else {
				it = NewEngine(d, oPull).IterateModelsPar(0, ParOptions{Workers: 4})
			}
			got, err := pull(t, it, nil)
			if !errors.Is(err, io.EOF) {
				t.Fatalf("db %d minimal=%v: terminal %v, want io.EOF", i, minimal, err)
			}
			it.Close()
			if !equalKeys(sortedKeys(got), sortedKeys(want)) {
				t.Fatalf("db %d minimal=%v: pull set %d != push set %d", i, minimal, len(got), len(want))
			}
			if a, b := oPull.Counters().NPCalls, oPush.Counters().NPCalls; a != b {
				t.Fatalf("db %d minimal=%v: pull NP=%d push NP=%d", i, minimal, a, b)
			}
		}
	}
	settleGoroutines(t, base)
}

// TestIteratorLimit: the limit terminal is ErrLimit, sticky, with
// exactly limit models delivered — serial and parallel.
func TestIteratorLimit(t *testing.T) {
	base := runtime.NumGoroutine()
	d := dbtest.MustParse("a | b. c | d. e | f.")
	for name, mk := range map[string]func() ModelIterator{
		"serial":     func() ModelIterator { return NewEngine(d, nil).IterateModels(3) },
		"serial-min": func() ModelIterator { return NewEngine(d, nil).IterateMinimalModels(3) },
		"par":        func() ModelIterator { return NewEngine(d, nil).IterateModelsPar(3, ParOptions{Workers: 4}) },
		"par-min":    func() ModelIterator { return NewEngine(d, nil).IterateMinimalModelsPar(3, ParOptions{Workers: 4}) },
	} {
		it := mk()
		got, err := pull(t, it, nil)
		if !errors.Is(err, ErrLimit) {
			t.Fatalf("%s: terminal %v, want ErrLimit", name, err)
		}
		if len(got) != 3 {
			t.Fatalf("%s: %d models, want 3", name, len(got))
		}
		if _, err2 := it.Next(nil); !errors.Is(err2, ErrLimit) {
			t.Fatalf("%s: terminal not sticky: %v", name, err2)
		}
		it.Close()
	}
	settleGoroutines(t, base)
}

// TestIteratorBudgetTrip: a tight NP budget surfaces as a typed
// terminal error from Next, not a panic, serial and parallel alike.
func TestIteratorBudgetTrip(t *testing.T) {
	base := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(211))
	_ = rng
	for i, d := range randomDBs(211, 8) {
		for _, par := range []bool{false, true} {
			o := oracle.NewNP().WithBudget(budget.New(context.Background(),
				budget.Limits{NPCalls: 2, Deadline: time.Hour}))
			e := NewEngine(d, o)
			var it ModelIterator
			if par {
				it = e.IterateMinimalModelsPar(0, ParOptions{Workers: 4})
			} else {
				it = e.IterateMinimalModels(0)
			}
			_, err := pull(t, it, nil)
			it.Close()
			if errors.Is(err, io.EOF) || errors.Is(err, ErrLimit) {
				continue // tiny DB finished within budget — fine
			}
			if !budget.Interrupted(err) {
				t.Fatalf("db %d par=%v: terminal %v is not a typed budget cause", i, par, err)
			}
		}
	}
	settleGoroutines(t, base)
}

// TestIteratorContextCancel: cancelling the ctx passed to Next
// surfaces budget.ErrCanceled and Close reclaims the producer.
func TestIteratorContextCancel(t *testing.T) {
	base := runtime.NumGoroutine()
	d := dbtest.MustParse("a | b. c | d. e | f. g | h.")
	ctx, cancel := context.WithCancel(context.Background())
	it := NewEngine(d, nil).IterateModelsPar(0, ParOptions{Workers: 2})
	if _, err := it.Next(ctx); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	cancel()
	if _, err := it.Next(ctx); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("Next after cancel = %v, want ErrCanceled", err)
	}
	it.Close()
	settleGoroutines(t, base)

	// Serial variant honours ctx too.
	it2 := NewEngine(d, nil).IterateModels(0)
	if _, err := it2.Next(ctx); !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("serial Next on dead ctx = %v, want ErrCanceled", err)
	}
	it2.Close()
}

// TestIteratorCloseEarly: closing after one model reclaims all
// producer goroutines and later Next calls return the terminal.
func TestIteratorCloseEarly(t *testing.T) {
	base := runtime.NumGoroutine()
	d := dbtest.MustParse("a | b. c | d. e | f. g | h. i | j.")
	for i := 0; i < 20; i++ {
		it := NewEngine(d, nil).IterateModelsPar(0, ParOptions{Workers: 4})
		if _, err := it.Next(nil); err != nil {
			t.Fatalf("iter %d: first Next: %v", i, err)
		}
		if err := it.Close(); err != nil {
			t.Fatalf("iter %d: Close: %v", i, err)
		}
		if err := it.Close(); err != nil {
			t.Fatalf("iter %d: second Close: %v", i, err)
		}
	}
	settleGoroutines(t, base)
}

// TestDrainMapsTerminals: Drain converts io.EOF/ErrLimit to nil and
// passes budget causes through.
func TestDrainMapsTerminals(t *testing.T) {
	d := dbtest.MustParse("a | b. c | d.")
	count, err := Drain(NewEngine(d, nil).IterateModels(0), func(logic.Interp) bool { return true })
	if err != nil || count == 0 {
		t.Fatalf("complete drain: count=%d err=%v", count, err)
	}
	count, err = Drain(NewEngine(d, nil).IterateModels(2), func(logic.Interp) bool { return true })
	if err != nil || count != 2 {
		t.Fatalf("limited drain: count=%d err=%v", count, err)
	}
	count, err = Drain(NewEngine(d, nil).IterateModels(0), func(logic.Interp) bool { return false })
	if err != nil || count != 1 {
		t.Fatalf("refused drain: count=%d err=%v", count, err)
	}
}
