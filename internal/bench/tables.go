package bench

import (
	"fmt"
	"math/rand"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/qbf"
	"disjunct/internal/reduction"
	"disjunct/internal/semantics/ccwa"
	"disjunct/internal/semantics/gcwa"

	// Register the remaining semantics with the core registry.
	_ "disjunct/internal/semantics/ddr"
	_ "disjunct/internal/semantics/dsm"
	_ "disjunct/internal/semantics/ecwa"
	_ "disjunct/internal/semantics/egcwa"
	_ "disjunct/internal/semantics/icwa"
	_ "disjunct/internal/semantics/pdsm"
	_ "disjunct/internal/semantics/perf"
	_ "disjunct/internal/semantics/pws"
)

// Scale tunes how large the sweeps run.
type Scale int

// Sweep scales.
const (
	// Quick keeps every sweep small enough for CI (≈ seconds).
	Quick Scale = iota
	// Full runs the paper-report sweeps (≈ minutes).
	Full
)

func (s Scale) pick(quick, full []int) []int {
	if s == Quick {
		return quick
	}
	return full
}

func (s Scale) reps(quick, full int) int {
	if s == Quick {
		return quick
	}
	return full
}

// claimed complexity classes (reconstructed Tables 1 and 2; DESIGN.md §4).
const (
	cPi2   = "Πᵖ₂-complete"
	cPi2DL = "Πᵖ₂-hard, in P^Σᵖ₂[O(log n)]"
	cInP   = "in P (Chan)"
	cCoNP  = "coNP-complete"
	cNP    = "NP-complete"
	cSig2  = "Σᵖ₂-complete"
	cO1    = "O(1)"
)

// RunTable1 collects every Table 1 cell.
func RunTable1(scale Scale) ([]CellResult, error) {
	var out []CellResult
	add := func(r CellResult, err error) error {
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}

	reps := scale.reps(2, 5)

	// --- literal inference -------------------------------------------------
	// Π₂ᵖ rows: QBF-reduction family (Theorem 3.1) for GCWA, EGCWA,
	// ECWA, CCWA, ICWA, PERF, DSM; smaller sizes for PDSM.
	pi2Lit := func(sem string, sizes []int) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(1, sem, TaskLiteral, cPi2,
			"InferLiteral(¬w) on the Theorem 3.1 QBF family (size = #∃ = #∀ vars)", o, Runner{
				Sizes: sizes, Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					q := qbf.Random3DNF(rng, size, size, 2*size)
					d, w, err := reduction.MMNegLiteralFromQBF(q)
					if err != nil {
						panic(err)
					}
					return Instance{DB: d, Lit: logic.NegLit(w)}
				},
				Decide: func(inst Instance) error {
					_, err := s.InferLiteral(inst.DB, inst.Lit)
					return err
				},
			}))
	}
	mid := scale.pick([]int{2, 3}, []int{2, 3, 4, 5, 6})
	tiny := scale.pick([]int{1, 2}, []int{1, 2})
	for _, sem := range []string{"GCWA", "EGCWA", "ECWA", "CCWA", "ICWA", "PERF", "DSM"} {
		if err := pi2Lit(sem, mid); err != nil {
			return nil, err
		}
	}
	if err := pi2Lit("PDSM", tiny); err != nil {
		return nil, err
	}
	// mark hardness validation on the reduction rows
	for i := range out {
		out[i].Hardness = "QBF→¬w reduction validated against reference solver (see reduction tests)"
	}

	// P rows: DDR and PWS negative-literal inference, zero oracle calls.
	polyLit := func(sem string) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(1, sem, TaskLiteral, cInP,
			"InferLiteral(¬x) on random positive DDBs — polynomial fixpoint, zero oracle calls", o, Runner{
				Sizes: scale.pick([]int{50, 100}, []int{100, 200, 400, 800, 1600}), Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					d := gen.Random(rng, gen.Positive(size, 2*size))
					return Instance{DB: d, Lit: logic.NegLit(logic.Atom(rng.Intn(size)))}
				},
				Decide: func(inst Instance) error {
					_, err := s.InferLiteral(inst.DB, inst.Lit)
					return err
				},
			}))
	}
	if err := polyLit("DDR"); err != nil {
		return nil, err
	}
	if err := polyLit("PWS"); err != nil {
		return nil, err
	}

	// --- formula inference -------------------------------------------------
	// Δ-log rows: GCWA and CCWA via the O(log n)-Σ₂ᵖ-call algorithm.
	if err := add(runDeltaLog(1, "GCWA", scale, reps, func(rng *rand.Rand, size int) *db.DB {
		return gen.Random(rng, gen.Positive(size, 2*size))
	})); err != nil {
		return nil, err
	}
	if err := add(runDeltaLog(1, "CCWA", scale, reps, func(rng *rand.Rand, size int) *db.DB {
		return gen.Random(rng, gen.Positive(size, 2*size))
	})); err != nil {
		return nil, err
	}

	// Π₂ᵖ-complete formula rows.
	pi2Form := func(sem string, sizes []int) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(1, sem, TaskFormula, cPi2,
			"InferFormula (minimal/stable/perfect-model co-search) on random positive DDBs", o, Runner{
				Sizes: sizes, Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					d := gen.Random(rng, gen.Positive(size, 2*size))
					return Instance{DB: d, Formula: randomQuery(rng, d, 3)}
				},
				Decide: func(inst Instance) error {
					_, err := s.InferFormula(inst.DB, inst.Formula)
					return err
				},
			}))
	}
	for _, sem := range []string{"EGCWA", "ECWA", "ICWA", "PERF", "DSM"} {
		if err := pi2Form(sem, scale.pick([]int{8, 12}, []int{8, 12, 16, 20})); err != nil {
			return nil, err
		}
	}
	if err := pi2Form("PDSM", scale.pick([]int{4, 6}, []int{4, 6, 8})); err != nil {
		return nil, err
	}

	// coNP formula rows: DDR/PWS on the UNSAT-reduction family.
	coNPForm := func(sem string, sizes []int) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(1, sem, TaskFormula, cCoNP,
			"InferFormula on the UNSAT-reduction family (size = #CNF vars)", o, Runner{
				Sizes: sizes, Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					cnf := reduction.RandomCNF(rng, size, 4*size, 3)
					d, f := reduction.FormulaInferenceFromUNSAT(cnf, size)
					return Instance{DB: d, Formula: f}
				},
				Decide: func(inst Instance) error {
					_, err := s.InferFormula(inst.DB, inst.Formula)
					return err
				},
			}))
	}
	if err := coNPForm("DDR", scale.pick([]int{8, 12}, []int{8, 16, 32, 64})); err != nil {
		return nil, err
	}
	if err := coNPForm("PWS", scale.pick([]int{4, 6}, []int{4, 6, 8})); err != nil {
		return nil, err
	}

	// --- model existence ---------------------------------------------------
	// Every Table 1 cell is O(1): positive DDBs are always consistent
	// under each semantics; the evidence is zero oracle calls at any
	// size.
	for _, sem := range []string{"GCWA", "DDR", "PWS", "EGCWA", "CCWA", "ECWA", "ICWA", "PERF", "DSM", "PDSM"} {
		s, o := newSem(sem, core.Options{})
		if err := add(RunCell(1, sem, TaskExists, cO1,
			"HasModel on random positive DDBs — constantly true, zero oracle calls", o, Runner{
				Sizes: scale.pick([]int{50, 200}, []int{100, 400, 1600}), Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					return Instance{DB: gen.Random(rng, gen.Positive(size, 2*size))}
				},
				Decide: func(inst Instance) error {
					ok, err := s.HasModel(inst.DB)
					if err != nil {
						return err
					}
					if !ok {
						return fmt.Errorf("positive DDB reported inconsistent under %s", sem)
					}
					return nil
				},
			})); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runDeltaLog measures the P^Σ₂ᵖ[O(log n)] formula-inference algorithm
// for GCWA/CCWA; the Σ₂ᵖ-call column must stay ≤ ⌈log₂(n+1)⌉ + 1.
func runDeltaLog(table int, sem string, scale Scale, reps int, mk func(*rand.Rand, int) *db.DB) (CellResult, error) {
	var gsem interface {
		InferFormulaDeltaLog(*db.DB, *logic.Formula) (bool, error)
	}
	o := coreOracle()
	switch sem {
	case "GCWA":
		gsem = gcwa.New(core.Options{Oracle: o})
	case "CCWA":
		gsem = ccwa.New(core.Options{Oracle: o})
	default:
		panic("deltalog: " + sem)
	}
	return RunCell(table, sem, TaskFormula, cPi2DL,
		"InferFormulaDeltaLog: binary search with O(log n) Σ₂ᵖ-oracle calls", o, Runner{
			Sizes: scale.pick([]int{4, 6}, []int{4, 6, 8, 10, 12, 14}), Instances: reps,
			MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
				d := mk(rng, size)
				return Instance{DB: d, Formula: randomQuery(rng, d, 2)}
			},
			Decide: func(inst Instance) error {
				_, err := gsem.InferFormulaDeltaLog(inst.DB, inst.Formula)
				return err
			},
		})
}

// RunTable2 collects every Table 2 cell.
func RunTable2(scale Scale) ([]CellResult, error) {
	var out []CellResult
	add := func(r CellResult, err error) error {
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}
	reps := scale.reps(2, 5)

	// --- literal inference -------------------------------------------------
	pi2Lit := func(sem string, mk func(*rand.Rand, int) *db.DB, sizes []int) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(2, sem, TaskLiteral, cPi2,
			"InferLiteral on random DBs of the semantics' class", o, Runner{
				Sizes: sizes, Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					d := mk(rng, size)
					return Instance{DB: d, Lit: logic.NegLit(logic.Atom(rng.Intn(d.N())))}
				},
				Decide: func(inst Instance) error {
					_, err := s.InferLiteral(inst.DB, inst.Lit)
					return err
				},
			}))
	}
	withIC := func(rng *rand.Rand, size int) *db.DB {
		return gen.Random(rng, gen.WithIntegrity(size, 2*size))
	}
	noICNeg := func(rng *rand.Rand, size int) *db.DB {
		return gen.Random(rng, gen.NormalNoIC(size, 2*size))
	}
	stratified := func(rng *rand.Rand, size int) *db.DB {
		return gen.RandomStratified(rng, size, 2*size, 3)
	}
	midSizes := scale.pick([]int{8, 12}, []int{8, 12, 16, 20})
	for _, sem := range []string{"GCWA", "EGCWA", "ECWA", "CCWA"} {
		if err := pi2Lit(sem, withIC, midSizes); err != nil {
			return nil, err
		}
	}
	if err := pi2Lit("ICWA", stratified, scale.pick([]int{8, 12}, []int{8, 12, 16})); err != nil {
		return nil, err
	}
	if err := pi2Lit("PERF", noICNeg, scale.pick([]int{6, 9}, []int{6, 9, 12})); err != nil {
		return nil, err
	}
	if err := pi2Lit("DSM", noICNeg, scale.pick([]int{6, 9}, []int{6, 9, 12})); err != nil {
		return nil, err
	}
	if err := pi2Lit("PDSM", noICNeg, scale.pick([]int{4, 6}, []int{4, 6, 8})); err != nil {
		return nil, err
	}

	// coNP literal rows: DDR/PWS on Chan's IC reduction.
	coNPLit := func(sem string, sizes []int) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(2, sem, TaskLiteral, cCoNP,
			"InferLiteral(¬w) on the UNSAT-with-ICs family (size = #CNF vars)", o, Runner{
				Sizes: sizes, Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					cnf := reduction.RandomCNF(rng, size, 4*size, 3)
					d, w := reduction.LiteralInferenceFromUNSATWithICs(cnf, size)
					return Instance{DB: d, Lit: logic.NegLit(w)}
				},
				Decide: func(inst Instance) error {
					_, err := s.InferLiteral(inst.DB, inst.Lit)
					return err
				},
			}))
	}
	if err := coNPLit("DDR", scale.pick([]int{8, 12}, []int{8, 16, 24, 32})); err != nil {
		return nil, err
	}
	if err := coNPLit("PWS", scale.pick([]int{3, 5}, []int{3, 5, 7})); err != nil {
		return nil, err
	}

	// --- formula inference -------------------------------------------------
	if err := add(runDeltaLog(2, "GCWA", scale, reps, withIC)); err != nil {
		return nil, err
	}
	if err := add(runDeltaLog(2, "CCWA", scale, reps, withIC)); err != nil {
		return nil, err
	}
	pi2Form := func(sem string, mk func(*rand.Rand, int) *db.DB, sizes []int) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(2, sem, TaskFormula, cPi2,
			"InferFormula on random DBs of the semantics' class", o, Runner{
				Sizes: sizes, Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					d := mk(rng, size)
					return Instance{DB: d, Formula: randomQuery(rng, d, 3)}
				},
				Decide: func(inst Instance) error {
					_, err := s.InferFormula(inst.DB, inst.Formula)
					return err
				},
			}))
	}
	for _, sem := range []string{"EGCWA", "ECWA"} {
		if err := pi2Form(sem, withIC, midSizes); err != nil {
			return nil, err
		}
	}
	if err := pi2Form("ICWA", stratified, scale.pick([]int{8, 12}, []int{8, 12, 16})); err != nil {
		return nil, err
	}
	if err := pi2Form("PERF", noICNeg, scale.pick([]int{6, 9}, []int{6, 9, 12})); err != nil {
		return nil, err
	}
	if err := pi2Form("DSM", noICNeg, scale.pick([]int{6, 9}, []int{6, 9, 12})); err != nil {
		return nil, err
	}
	if err := pi2Form("PDSM", noICNeg, scale.pick([]int{4, 6}, []int{4, 6, 8})); err != nil {
		return nil, err
	}
	coNPForm := func(sem string, sizes []int) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(2, sem, TaskFormula, cCoNP,
			"InferFormula on random DDDBs with integrity clauses", o, Runner{
				Sizes: sizes, Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					d := gen.Random(rng, gen.WithIntegrity(size, 2*size))
					return Instance{DB: d, Formula: randomQuery(rng, d, 3)}
				},
				Decide: func(inst Instance) error {
					_, err := s.InferFormula(inst.DB, inst.Formula)
					return err
				},
			}))
	}
	if err := coNPForm("DDR", scale.pick([]int{10, 20}, []int{10, 20, 40})); err != nil {
		return nil, err
	}
	if err := coNPForm("PWS", scale.pick([]int{4, 6}, []int{4, 6, 8})); err != nil {
		return nil, err
	}

	// --- model existence ---------------------------------------------------
	npExists := func(sem string, sizes []int) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(2, sem, TaskExists, cNP,
			"HasModel on the SAT-reduction family (size = #CNF vars, clause ratio 4.2)", o, Runner{
				Sizes: sizes, Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					cnf := reduction.RandomCNF(rng, size, int(4.2*float64(size)), 3)
					return Instance{DB: reduction.ExistsModelFromSAT(cnf, size)}
				},
				Decide: func(inst Instance) error {
					_, err := s.HasModel(inst.DB)
					return err
				},
			}))
	}
	for _, sem := range []string{"GCWA", "EGCWA", "CCWA", "ECWA", "DDR"} {
		if err := npExists(sem, scale.pick([]int{10, 20}, []int{10, 20, 40})); err != nil {
			return nil, err
		}
	}
	if err := npExists("PWS", scale.pick([]int{3, 5}, []int{3, 5, 7})); err != nil {
		return nil, err
	}

	// ICWA: O(1).
	{
		s, o := newSem("ICWA", core.Options{})
		if err := add(RunCell(2, "ICWA", TaskExists, cO1,
			"HasModel on random stratified DSDBs — stratifiability asserts consistency", o, Runner{
				Sizes: scale.pick([]int{20, 50}, []int{20, 50, 100, 200}), Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					return Instance{DB: gen.RandomStratified(rng, size, 2*size, 4)}
				},
				Decide: func(inst Instance) error {
					ok, err := s.HasModel(inst.DB)
					if err != nil {
						return err
					}
					if !ok {
						return fmt.Errorf("stratified DB reported inconsistent")
					}
					return nil
				},
			})); err != nil {
			return nil, err
		}
	}

	// DSM: Σ₂ᵖ on the saturation reduction.
	{
		s, o := newSem("DSM", core.Options{})
		if err := add(func() (CellResult, error) {
			r, err := RunCell(2, "DSM", TaskExists, cSig2,
				"HasModel on the QBF saturation family (size = #∃ = #∀ vars)", o, Runner{
					Sizes: scale.pick([]int{2, 3}, []int{2, 3, 4, 5}), Instances: reps,
					MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
						q := qbf.Random3DNF(rng, size, size, 2*size)
						d, err := reduction.DSMExistsFromQBF(q)
						if err != nil {
							panic(err)
						}
						return Instance{DB: d}
					},
					Decide: func(inst Instance) error {
						_, err := s.HasModel(inst.DB)
						return err
					},
				})
			r.Hardness = "QBF→stable-model reduction validated against reference solver"
			return r, err
		}()); err != nil {
			return nil, err
		}
	}

	// PERF, PDSM: Σ₂ᵖ existence on random DNDBs without ICs.
	sigExists := func(sem string, sizes []int) error {
		s, o := newSem(sem, core.Options{})
		return add(RunCell(2, sem, TaskExists, cSig2,
			"HasModel on random DNDBs (negation, no integrity clauses)", o, Runner{
				Sizes: sizes, Instances: reps,
				MakeInstance: func(rng *rand.Rand, size, rep int) Instance {
					return Instance{DB: gen.Random(rng, gen.NormalNoIC(size, 2*size))}
				},
				Decide: func(inst Instance) error {
					_, err := s.HasModel(inst.DB)
					return err
				},
			}))
	}
	if err := sigExists("PERF", scale.pick([]int{6, 9}, []int{6, 9, 12})); err != nil {
		return nil, err
	}
	if err := sigExists("PDSM", scale.pick([]int{4, 6}, []int{4, 6, 8})); err != nil {
		return nil, err
	}
	return out, nil
}

// randomQuery builds a random query formula over d's vocabulary.
func randomQuery(rng *rand.Rand, d *db.DB, depth int) *logic.Formula {
	n := d.N()
	var rec func(depth int) *logic.Formula
	rec = func(depth int) *logic.Formula {
		if depth == 0 || rng.Intn(3) == 0 {
			a := logic.Atom(rng.Intn(n))
			if rng.Intn(2) == 0 {
				return logic.Not(logic.AtomF(a))
			}
			return logic.AtomF(a)
		}
		l, r := rec(depth-1), rec(depth-1)
		switch rng.Intn(3) {
		case 0:
			return logic.And(l, r)
		case 1:
			return logic.Or(l, r)
		default:
			return logic.Implies(l, r)
		}
	}
	return rec(depth)
}
