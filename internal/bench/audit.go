package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/qbf"
	"disjunct/internal/reduction"
	"disjunct/internal/semantics/cwa"
	"disjunct/internal/wfs"
)

func coreOracle() *oracle.NP { return oracle.NewNP() }

// Audit asserts the structural properties that make the cell results
// *evidence* rather than mere timings:
//
//  1. the P cells (DDR/PWS literal inference, Table 1) make zero
//     oracle calls;
//  2. the O(1) cells (∃MODEL on Table 1; ICWA ∃MODEL on Table 2) make
//     zero oracle calls;
//  3. the Δ-log cells stay within ⌈log₂(n+1)⌉ + 1 Σ₂ᵖ calls;
//  4. the hardness reductions answer identically to independent
//     reference solvers on fresh random instances;
//  5. Example 3.1 behaves as printed in the paper.
//
// It returns the list of violated properties (nil = all hold).
func Audit() []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	rng := rand.New(rand.NewSource(20260705))

	// (1) P cells: zero oracle calls.
	for _, name := range []string{"DDR", "PWS"} {
		s, o := newSem(name, core.Options{})
		d := randPositive(rng, 40)
		if _, err := s.InferLiteral(d, logic.NegLit(logic.Atom(rng.Intn(d.N())))); err != nil {
			report("%s literal inference failed: %v", name, err)
			continue
		}
		if c := o.Counters(); c.NPCalls != 0 || c.Sigma2Calls != 0 {
			report("%s tractable cell used oracle calls: %v", name, c)
		}
	}

	// (2) O(1) cells.
	for _, name := range []string{"GCWA", "DDR", "PWS", "EGCWA", "CCWA", "ECWA", "ICWA", "PERF", "DSM", "PDSM"} {
		s, o := newSem(name, core.Options{})
		d := randPositive(rng, 30)
		ok, err := s.HasModel(d)
		if err != nil || !ok {
			report("%s ∃MODEL on positive DDB: ok=%v err=%v", name, ok, err)
			continue
		}
		if c := o.Counters(); c.NPCalls != 0 || c.Sigma2Calls != 0 {
			report("%s O(1) ∃MODEL cell used oracle calls: %v", name, c)
		}
	}

	// (3) Δ-log budget.
	for _, n := range []int{6, 10} {
		s, o := newSem("GCWA", core.Options{})
		g := s.(interface {
			InferFormulaDeltaLog(*db.DB, *logic.Formula) (bool, error)
		})
		d := randPositive(rng, n)
		f := randomQuery(rng, d, 2)
		if _, err := g.InferFormulaDeltaLog(d, f); err != nil {
			report("Δ-log inference failed: %v", err)
			continue
		}
		budget := int64(ceilLog2(n+1) + 1)
		if c := o.Counters().Sigma2Calls; c > budget {
			report("Δ-log used %d Σ₂ᵖ calls for n=%d (budget %d)", c, n, budget)
		}
	}

	// (4) Reductions vs reference solvers.
	for iter := 0; iter < 10; iter++ {
		q := qbf.Random3DNF(rng, 2, 2, 3)
		want, err := qbf.SolveBrute(q)
		if err != nil {
			report("QBF brute reference: %v", err)
			continue
		}
		d, w, err := reduction.MMNegLiteralFromQBF(q)
		if err != nil {
			report("QBF reduction: %v", err)
			continue
		}
		s, _ := newSem("GCWA", core.Options{})
		got, err := s.InferLiteral(d, logic.NegLit(w))
		if err != nil {
			report("QBF reduction inference: %v", err)
			continue
		}
		if got != !want {
			report("Theorem 3.1 reduction mismatch: GCWA ⊨ ¬w = %v, QBF = %v", got, want)
		}

		ds, err := reduction.DSMExistsFromQBF(q)
		if err != nil {
			report("DSM reduction: %v", err)
			continue
		}
		dsm, _ := newSem("DSM", core.Options{})
		if got, _ := dsm.HasModel(ds); got != want {
			report("DSM saturation reduction mismatch: ∃stable = %v, QBF = %v", got, want)
		}
	}

	// (5) Example 3.1.
	ex, err := db.Parse("a | b. :- a, b. c :- a, b.")
	if err != nil {
		report("Example 3.1 parse: %v", err)
		return errs
	}
	c, _ := ex.Voc.Lookup("c")
	ddr, _ := newSem("DDR", core.Options{})
	if got, _ := ddr.InferLiteral(ex, logic.NegLit(c)); got {
		report("Example 3.1: DDR must not infer ¬c")
	}
	pws, _ := newSem("PWS", core.Options{})
	if got, _ := pws.InferLiteral(ex, logic.NegLit(c)); !got {
		report("Example 3.1: PWS must infer ¬c")
	}
	g, _ := newSem("GCWA", core.Options{})
	if got, _ := g.InferLiteral(ex, logic.NegLit(c)); !got {
		report("Example 3.1: GCWA must infer ¬c")
	}
	return errs
}

func randPositive(rng *rand.Rand, n int) *db.DB {
	d := db.New()
	atoms := make([]logic.Atom, n)
	for i := range atoms {
		atoms[i] = d.Voc.Intern(fmt.Sprintf("p%d", i))
	}
	for i := 0; i < 2*n; i++ {
		var c db.Clause
		for j := 0; j <= rng.Intn(3); j++ {
			c.Head = append(c.Head, atoms[rng.Intn(n)])
		}
		for j := 0; j < rng.Intn(3); j++ {
			c.PosBody = append(c.PosBody, atoms[rng.Intn(n)])
		}
		d.Add(c)
	}
	return d
}

func ceilLog2(x int) int {
	c, v := 0, 1
	for v < x {
		v *= 2
		c++
	}
	return c
}

// RunAux runs the auxiliary experiments outside the two tables:
// Proposition 5.4 (UMINSAT) and the Example 3.1 contrast.
func RunAux(scale Scale, w io.Writer) error {
	fmt.Fprintln(w, "Auxiliary experiments")
	fmt.Fprintln(w, "=====================")

	// UMINSAT sweep: the reduction family (unique minimal model ⟺
	// underlying CNF unsatisfiable).
	fmt.Fprintln(w, "\nUMINSAT (Prop. 5.4): unique-minimal-model test on the UNSAT-reduction family")
	fmt.Fprintf(w, "  %8s %10s %12s %8s\n", "size", "time", "NP-calls", "unique%")
	rng := rand.New(rand.NewSource(54))
	reps := scale.reps(3, 8)
	for _, n := range scale.pick([]int{6, 10}, []int{6, 10, 14, 18}) {
		var total time.Duration
		var np int64
		unique := 0
		for rep := 0; rep < reps; rep++ {
			cnf := reduction.RandomCNF(rng, n, int(4.2*float64(n)), 3)
			gamma, voc := reduction.UMINSATFromUNSAT(cnf, n)
			d := reduction.CNFDB(gamma, voc)
			o := oracle.NewNP()
			eng := models.NewEngine(d, o)
			start := time.Now()
			ok, _ := eng.UniqueMinimalModel()
			total += time.Since(start)
			np += o.Counters().NPCalls
			if ok {
				unique++
			}
		}
		fmt.Fprintf(w, "  %8d %10s %12.1f %7.0f%%\n",
			n, fmtDuration(total/time.Duration(reps)), float64(np)/float64(reps),
			100*float64(unique)/float64(reps))
	}

	// Reiter's CWA consistency: the P^NP[O(log n)] aside of §3.1.
	fmt.Fprintln(w, "\nCWA consistency (the §3.1 aside): direct (n+1 NP calls) vs O(log n) NP calls")
	fmt.Fprintf(w, "  %8s %12s %12s %10s\n", "size", "direct-NP", "logcall-NP", "agree")
	for _, n := range scale.pick([]int{8, 16}, []int{8, 16, 32, 64}) {
		d := gen.Random(rng, gen.WithIntegrity(n, 2*n))
		s1 := cwa.New(core.Options{})
		direct, err := s1.HasModel(d)
		if err != nil {
			return err
		}
		directCalls := s1.Oracle().Counters().NPCalls
		s2 := cwa.New(core.Options{})
		logcall, err := s2.HasModelLogCalls(d)
		if err != nil {
			return err
		}
		logCalls := s2.Oracle().Counters().NPCalls
		fmt.Fprintf(w, "  %8d %12d %12d %10v\n", n, directCalls, logCalls, direct == logcall)
	}

	// Well-founded semantics: the polynomial NLP substrate of PDSM.
	fmt.Fprintln(w, "\nWell-founded semantics (NLP fragment; polynomial — no oracle at all)")
	fmt.Fprintf(w, "  %8s %10s\n", "size", "time")
	for _, n := range scale.pick([]int{200, 800}, []int{200, 800, 3200}) {
		d := gen.Random(rng, gen.Config{Atoms: n, Clauses: 3 * n, MaxHead: 1, MaxBody: 2, NegProb: 0.4, FactProb: 0.3})
		start := time.Now()
		wfs.Compute(d)
		fmt.Fprintf(w, "  %8d %10s\n", n, fmtDuration(time.Since(start)))
	}

	// Example 3.1.
	fmt.Fprintln(w, "\nExample 3.1: DB = {a∨b, ←a∧b, c←a∧b}")
	ex, err := db.Parse("a | b. :- a, b. c :- a, b.")
	if err != nil {
		return err
	}
	c, _ := ex.Voc.Lookup("c")
	for _, name := range []string{"DDR", "PWS", "GCWA"} {
		s, _ := newSem(name, core.Options{})
		got, err := s.InferLiteral(ex, logic.NegLit(c))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-5s ⊨ ¬c : %v\n", name, got)
	}
	fmt.Fprintln(w, "  (paper: DDR ⊭ ¬c — integrity clauses are ignored by the fixpoint;")
	fmt.Fprintln(w, "   Chan's PWS and the GCWA respect them)")
	return nil
}
