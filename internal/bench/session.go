package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
	"disjunct/internal/session"
)

// SessionCase is one (instance family × semantics) fresh-vs-session
// comparison. The workload (literal inference over every atom both
// polarities, model existence, one formula entailment where the route
// supports it — each issued TWICE, the repeat-DB traffic shape the
// session layer amortizes) runs once against a fresh engine per query
// and once through a session.Manager holding the compiled artifact.
// runSessionSweep asserts that every verdict is identical, that the
// fast path consumed zero NP calls, and that the session workload
// total never exceeds the fresh total; wall-clock is reported, never
// gated.
type SessionCase struct {
	Name        string  `json:"name"`
	Semantics   string  `json:"semantics"`
	Fragment    string  `json:"fragment"`
	Atoms       int     `json:"atoms"`
	Queries     int     `json:"queries"`
	FastQueries int     `json:"fast_queries"`
	WarmQueries int     `json:"warm_queries"`
	MemoHits    int64   `json:"memo_hits"`
	FreshNP     int64   `json:"fresh_np_calls"`
	SessionNP   int64   `json:"session_np_calls"`
	FastNP      int64   `json:"fast_np_calls"`
	FreshMS     float64 `json:"fresh_ms"`
	SessionMS   float64 `json:"session_ms"`
	Speedup     float64 `json:"speedup"`
}

// sessionDBs builds the seeded instance families of the sweep: one
// per fast-path fragment plus a general disjunctive family that
// exercises the warm incremental route.
func sessionDBs(scale Scale) []struct {
	name string
	db   *db.DB
	sems []string
} {
	rng := rand.New(rand.NewSource(73))
	defN, stratN, posN := 14, 10, 10
	if scale == Full {
		defN, stratN, posN = 20, 14, 13
	}

	// Definite program: single positive head, no denials.
	def := db.New()
	var as []logic.Atom
	for i := 0; i < defN; i++ {
		as = append(as, def.Voc.Intern(fmt.Sprintf("p%d", i)))
	}
	for i := 0; i < 3*defN/2; i++ {
		head := as[rng.Intn(defN)]
		var body []logic.Atom
		for _, a := range as {
			if a != head && rng.Intn(4) == 0 {
				body = append(body, a)
			}
		}
		def.AddRule([]logic.Atom{head}, body, nil)
	}

	// Stratified normal program: regenerate until the compiler
	// classifies it (a draw can be non-stratifiable or degenerate).
	var strat *db.DB
	for {
		strat = gen.RandomStratified(rng, stratN, 3*stratN/2, 3)
		if session.Compile("", strat).Frag == session.FragStratNormal {
			break
		}
	}

	// General disjunctive positive database: regenerate until no fast
	// path applies, so the warm route is what gets measured.
	var pos *db.DB
	for {
		pos = gen.Random(rng, gen.Positive(posN, 3*posN/2))
		if session.Compile("", pos).Frag == session.FragGeneral {
			break
		}
	}

	return []struct {
		name string
		db   *db.DB
		sems []string
	}{
		{fmt.Sprintf("definite-n%d", defN), def, []string{"GCWA", "DSM"}},
		{fmt.Sprintf("strat-n%d", stratN), strat, []string{"DSM", "PERF"}},
		{fmt.Sprintf("rand-pos-n%d", posN), pos, []string{"GCWA", "ECWA", "CIRC"}},
	}
}

// sessionFormulaRoutes: the routes that answer formula queries — every
// fast-path fragment (evaluation on the fixpoint model) and the warm
// minimal-model-entailment engines.
var sessionFormulaRoutes = map[string]bool{"EGCWA": true, "ECWA": true, "CIRC": true}

// runSessionWorkload drives the doubled query stream for one
// (instance, semantics) pair through both routes and audits the
// session contract.
func runSessionWorkload(name string, d *db.DB, semName string) (SessionCase, error) {
	sc := SessionCase{Name: name, Semantics: semName, Atoms: d.N()}

	freshOra := oracle.NewNP()
	fresh, ok := core.New(semName, core.Options{Oracle: freshOra})
	if !ok {
		return sc, fmt.Errorf("session %s: semantics %q not registered", name, semName)
	}
	mgr := session.NewManager(session.Config{})
	comp := mgr.InternDB(d)
	sc.Fragment = comp.Frag.String()

	type query struct {
		kind session.Kind
		lit  logic.Lit
		f    *logic.Formula
		text string
	}
	var qs []query
	for a := 0; a < d.N(); a++ {
		for _, l := range []logic.Lit{logic.PosLit(logic.Atom(a)), logic.NegLit(logic.Atom(a))} {
			qs = append(qs, query{kind: session.KindLiteral, lit: l, text: d.Voc.LitString(l)})
		}
	}
	qs = append(qs, query{kind: session.KindModel})
	if comp.Frag != session.FragGeneral || sessionFormulaRoutes[semName] {
		f := logic.Or(logic.And(logic.AtomF(0), logic.Not(logic.AtomF(1))), logic.AtomF(2))
		qs = append(qs, query{kind: session.KindFormula, f: f, text: f.String(d.Voc)})
	}

	ctx := context.Background()
	var freshT, sessT time.Duration
	for round := 0; round < 2; round++ {
		for _, q := range qs {
			sc.Queries++

			before := freshOra.Counters().NPCalls
			t0 := time.Now()
			var want bool
			var err error
			switch q.kind {
			case session.KindLiteral:
				want, err = fresh.InferLiteral(d, q.lit)
			case session.KindFormula:
				want, err = fresh.InferFormula(d, q.f)
			default:
				want, err = fresh.HasModel(d)
			}
			freshT += time.Since(t0)
			if err != nil {
				return sc, fmt.Errorf("session %s/%s: fresh %s %q: %v", name, semName, q.kind, q.text, err)
			}
			sc.FreshNP += freshOra.Counters().NPCalls - before

			t0 = time.Now()
			res, handled := mgr.Query(ctx, comp, session.Request{
				Sem: semName, Kind: q.kind, Lit: q.lit, F: q.f, QueryText: q.text,
			})
			sessT += time.Since(t0)
			if !handled {
				return sc, fmt.Errorf("session %s/%s: %s %q not handled by the session layer", name, semName, q.kind, q.text)
			}
			if res.Err != nil {
				return sc, fmt.Errorf("session %s/%s: warm %s %q: %v", name, semName, q.kind, q.text, res.Err)
			}
			if res.Holds != want {
				return sc, fmt.Errorf("session %s/%s: %s %q verdict diverged: fresh %v, session %v",
					name, semName, q.kind, q.text, want, res.Holds)
			}
			sc.SessionNP += res.Counters.NPCalls
			if res.Path == "fast" {
				sc.FastQueries++
				sc.FastNP += res.Counters.NPCalls
			} else {
				sc.WarmQueries++
			}
			// The second issue of a session-handled query is memoized:
			// it must consume zero oracle calls.
			if round == 1 && res.Counters.NPCalls != 0 {
				return sc, fmt.Errorf("session %s/%s: repeat of %s %q consumed %d NP calls, want 0 (memo)",
					name, semName, q.kind, q.text, res.Counters.NPCalls)
			}
		}
	}

	st := mgr.Stats()
	sc.MemoHits = st.MemoHits
	if st.ActiveCheckouts != 0 {
		return sc, fmt.Errorf("session %s/%s: %d checkouts leaked", name, semName, st.ActiveCheckouts)
	}
	if sc.FastNP != 0 {
		return sc, fmt.Errorf("session %s/%s: fast path consumed %d NP calls, want 0", name, semName, sc.FastNP)
	}
	if sc.SessionNP > sc.FreshNP {
		return sc, fmt.Errorf("session %s/%s: session NP total %d exceeds fresh total %d",
			name, semName, sc.SessionNP, sc.FreshNP)
	}
	if sc.WarmQueries > 0 && sc.MemoHits == 0 {
		return sc, fmt.Errorf("session %s/%s: warm repeats never hit the memo", name, semName)
	}
	sc.FreshMS = float64(freshT.Microseconds()) / 1e3
	sc.SessionMS = float64(sessT.Microseconds()) / 1e3
	if sessT > 0 {
		sc.Speedup = float64(freshT) / float64(sessT)
	}
	return sc, nil
}

// runSessionSweep is the fresh-vs-session section of RunParallel: the
// repeat-DB workload on both routes, with the zero-NP fast-path and
// session-never-exceeds-fresh invariants enforced inline.
func runSessionSweep(scale Scale, w io.Writer, rep *ParallelReport) error {
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  warm sessions (doubled workload, fresh engines vs session layer):\n")
	fmt.Fprintf(w, "  %-14s %-5s %-12s %4s %5s %5s %5s %9s %8s %10s %10s %8s\n",
		"instance", "sem", "fragment", "q", "fast", "warm", "memo", "NP-fresh", "NP-sess", "fresh", "session", "speedup")

	for _, fam := range sessionDBs(scale) {
		for _, semName := range fam.sems {
			sc, err := runSessionWorkload(fam.name, fam.db, semName)
			if err != nil {
				return err
			}
			rep.Session = append(rep.Session, sc)
			fmt.Fprintf(w, "  %-14s %-5s %-12s %4d %5d %5d %5d %9d %8d %10s %10s %7.1fx\n",
				sc.Name, sc.Semantics, sc.Fragment, sc.Queries, sc.FastQueries, sc.WarmQueries,
				sc.MemoHits, sc.FreshNP, sc.SessionNP,
				fmtDuration(time.Duration(sc.FreshMS*float64(time.Millisecond))),
				fmtDuration(time.Duration(sc.SessionMS*float64(time.Millisecond))),
				sc.Speedup)
		}
	}
	return nil
}
