package bench

import (
	"fmt"
	"io"
)

// claim is one cell of the reconstructed tables.
type claim struct {
	sem                   string
	literal, formula, exi string
}

// The reconstructed Tables 1 and 2 (DESIGN.md §4) as data, so the
// claims the harness tests against are printable next to the
// measurements (ddbbench -claims).
var (
	table1Claims = []claim{
		{"GCWA", cPi2, cPi2DL, cO1},
		{"DDR (≡WGCWA)", cInP, cCoNP, cO1},
		{"PWS (≡PMS)", cInP, cCoNP, cO1},
		{"EGCWA", cPi2, cPi2, cO1},
		{"CCWA", cPi2, cPi2DL, cO1},
		{"ECWA (≡CIRC)", cPi2, cPi2, cO1},
		{"ICWA", cPi2, cPi2, cO1},
		{"PERF", cPi2, cPi2, cO1},
		{"DSM, PDSM", cPi2, cPi2, cO1},
	}
	table2Claims = []claim{
		{"GCWA", cPi2, cPi2DL, cNP},
		{"DDR (≡WGCWA)", cCoNP, cCoNP, cNP},
		{"PWS (≡PMS)", cCoNP, cCoNP, cNP},
		{"EGCWA", cPi2, cPi2, cNP},
		{"CCWA", cPi2, cPi2DL, cNP},
		{"ECWA (≡CIRC)", cPi2, cPi2, cNP},
		{"ICWA", cPi2, cPi2, cO1},
		{"PERF", cPi2, cPi2, cSig2},
		{"DSM, PDSM", cPi2, cPi2, cSig2},
	}
)

// WriteClaims renders the reconstructed result tables in the paper's
// layout.
func WriteClaims(w io.Writer) {
	render := func(title string, claims []claim) {
		fmt.Fprintf(w, "%s\n", title)
		fmt.Fprintf(w, "%-16s %-28s %-28s %-16s\n", "Semantics", "Inference of literal", "Inference of formula", "∃ model")
		for _, c := range claims {
			fmt.Fprintf(w, "%-16s %-28s %-28s %-16s\n", c.sem, c.literal, c.formula, c.exi)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Reconstructed result tables (Eiter & Gottlob, PODS'93; see DESIGN.md §4 for")
	fmt.Fprintln(w, "the reconstruction notes — the OCR of the original garbles the class")
	fmt.Fprintln(w, "subscripts, and cells marked (r) in EXPERIMENTS.md rest on the theorem")
	fmt.Fprintln(w, "statements plus the follow-up literature).")
	fmt.Fprintln(w)
	render("Table 1: positive propositional DDBs (no integrity clauses, no negation)", table1Claims)
	render("Table 2: propositional DDBs with integrity clauses (negation where defined)", table2Claims)
}
