package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/faults"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

// BudgetedOptions configures the graceful-degradation sweep.
type BudgetedOptions struct {
	// Deadline is the per-query wall-clock allowance (0 = none).
	Deadline time.Duration
	// Conflicts is the per-query SAT-conflict budget (0 = unlimited).
	Conflicts int64
	// FaultRate injects faults into the budgeted oracle (0 = none).
	FaultRate float64
	// FaultSeed seeds the injector; per-query salting keeps runs
	// reproducible but queries independent.
	FaultSeed int64
	// Seed drives the instance generator.
	Seed int64
	// Queries is the number of budgeted queries per cell (default 40).
	Queries int
}

// RunBudgeted measures graceful degradation: GCWA literal inference
// (the Π₂ᵖ-complete cell) across growing instance sizes, each query run
// twice — unbudgeted reference, then under the configured budget and
// fault injection. It reports, per size, how many budgeted queries
// completed, how many were interrupted, and the breakdown of typed
// causes — and fails loudly on the one forbidden outcome: a budgeted
// query that completes with a verdict different from the reference.
func RunBudgeted(w io.Writer, opt BudgetedOptions) error {
	if opt.Queries <= 0 {
		opt.Queries = 40
	}
	fmt.Fprintln(w, "Graceful degradation under budgets and fault injection")
	fmt.Fprintln(w, "======================================================")
	fmt.Fprintf(w, "deadline=%v conflictbudget=%d faultrate=%g faultseed=%d\n\n",
		opt.Deadline, opt.Conflicts, opt.FaultRate, opt.FaultSeed)
	fmt.Fprintf(w, "  %6s %10s %12s %10s  %s\n", "atoms", "completed", "interrupted", "divergent", "causes")

	rng := rand.New(rand.NewSource(opt.Seed))
	divergentTotal := 0
	for _, n := range []int{4, 6, 8, 10} {
		completed, interrupted, divergent := 0, 0, 0
		causes := map[string]int{}
		for q := 0; q < opt.Queries; q++ {
			d := gen.Random(rng, gen.Config{Atoms: n, Clauses: 2 * n, MaxHead: 3, MaxBody: 2, FactProb: 0.3})
			lit := logic.NegLit(logic.Atom(rng.Intn(n)))

			ref, _ := newSem("GCWA", core.Options{})
			want, err := ref.InferLiteral(d, lit)
			if err != nil {
				continue // semantic error (not budget-related); skip
			}

			b := budget.New(context.Background(), budget.Limits{
				Conflicts: opt.Conflicts, Deadline: opt.Deadline,
			})
			o := oracle.NewNP().WithBudget(b).
				WithFaults(faults.NewInjector(opt.FaultRate, opt.FaultSeed+int64(q)*1000003+int64(n)))
			s, _ := core.New("GCWA", core.Options{Oracle: o})
			got, err := s.InferLiteral(d, lit)
			if err != nil {
				if !budget.Interrupted(err) {
					return fmt.Errorf("size %d query %d: untyped interruption %w", n, q, err)
				}
				interrupted++
				causes[causeLabel(err)]++
				continue
			}
			if got != want {
				divergent++
				continue
			}
			completed++
		}
		divergentTotal += divergent
		fmt.Fprintf(w, "  %6d %10d %12d %10d  %s\n", n, completed, interrupted, divergent, causeSummary(causes))
	}
	if divergentTotal > 0 {
		return fmt.Errorf("budgeted sweep: %d completed queries diverged from the unbudgeted reference", divergentTotal)
	}
	fmt.Fprintln(w, "\n  every completed budgeted verdict matched the unbudgeted reference")
	return nil
}

// causeLabel maps a typed interruption to its short display name.
func causeLabel(err error) string {
	switch {
	case errors.Is(err, budget.ErrConflictBudget):
		return "conflicts"
	case errors.Is(err, budget.ErrPropagationBudget):
		return "propagations"
	case errors.Is(err, budget.ErrNPCallBudget):
		return "npcalls"
	case errors.Is(err, budget.ErrDeadline):
		return "deadline"
	case errors.Is(err, faults.ErrTransient):
		return "transient"
	case errors.Is(err, budget.ErrCanceled):
		return "canceled"
	default:
		return "other"
	}
}

func causeSummary(causes map[string]int) string {
	if len(causes) == 0 {
		return "-"
	}
	out := ""
	for _, k := range []string{"conflicts", "propagations", "npcalls", "deadline", "transient", "canceled", "other"} {
		if causes[k] > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s:%d", k, causes[k])
		}
	}
	return out
}
