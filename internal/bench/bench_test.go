package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAuditClean(t *testing.T) {
	if errs := Audit(); len(errs) != 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
}

func TestRunTable1Quick(t *testing.T) {
	res, err := RunTable1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Every semantics must contribute a literal, a formula and an
	// exists cell.
	counts := map[Task]int{}
	for _, r := range res {
		counts[r.Task]++
		if len(r.Sweep) == 0 {
			t.Errorf("cell %s/%s has no measurements", r.Semantics, r.Task)
		}
	}
	if counts[TaskLiteral] != 10 || counts[TaskFormula] != 10 || counts[TaskExists] != 10 {
		t.Fatalf("cell counts wrong: %v", counts)
	}
	// Tractable cells: zero oracle usage.
	for _, r := range res {
		if r.Claimed == cInP || r.Claimed == cO1 {
			for _, m := range r.Sweep {
				if m.NPCalls != 0 || m.Sigma2 != 0 {
					t.Errorf("cell %s/%s claims %s but used oracle calls (%v NP, %v Σ₂)",
						r.Semantics, r.Task, r.Claimed, m.NPCalls, m.Sigma2)
				}
			}
		}
	}
	var buf bytes.Buffer
	WriteReport(&buf, res)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatalf("report missing header")
	}
}

func TestRunTable2Quick(t *testing.T) {
	res, err := RunTable2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Task]int{}
	for _, r := range res {
		counts[r.Task]++
	}
	if counts[TaskLiteral] != 10 || counts[TaskFormula] != 10 || counts[TaskExists] != 10 {
		t.Fatalf("cell counts wrong: %v", counts)
	}
	// The Δ-log cells must respect the Σ₂ᵖ-call budget.
	for _, r := range res {
		if r.Claimed != cPi2DL {
			continue
		}
		for _, m := range r.Sweep {
			budget := float64(ceilLog2(m.Size+1) + 1)
			if m.Sigma2 > budget {
				t.Errorf("Δ-log cell %s size %d: %.1f Σ₂ᵖ calls (budget %.0f)",
					r.Semantics, m.Size, m.Sigma2, budget)
			}
		}
	}
}

func TestRunAux(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAux(Quick, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"UMINSAT", "Example 3.1", "DDR", "PWS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("aux report missing %q:\n%s", want, out)
		}
	}
}

func TestRunCrossover(t *testing.T) {
	var buf bytes.Buffer
	if err := RunCrossover(Quick, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"[1]", "[2]", "[3]", "GCWA", "Δ-log"} {
		if !strings.Contains(out, want) {
			t.Fatalf("crossover report missing %q", want)
		}
	}
}

func TestWriteClaims(t *testing.T) {
	var buf bytes.Buffer
	WriteClaims(&buf)
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "GCWA", "PDSM", "∃ model", "Σᵖ₂-complete"} {
		if !strings.Contains(out, want) {
			t.Fatalf("claims table missing %q", want)
		}
	}
}

func TestRunParallel(t *testing.T) {
	// RunParallel itself enforces the two invariants (parallel model
	// set == serial, NP-call count worker-count-invariant) and returns
	// an error on violation.
	var buf bytes.Buffer
	rep, err := RunParallel(Quick, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Parallel) == 0 || len(rep.Pool) == 0 {
		t.Fatalf("empty parallel report: %+v", rep)
	}
	for _, c := range rep.Parallel {
		if c.Models == 0 || c.SerialNP == 0 || c.ParNP == 0 {
			t.Fatalf("degenerate case %+v", c)
		}
	}
	for _, c := range rep.Pool {
		if c.NPCalls == 0 {
			t.Fatalf("degenerate pool case %+v", c)
		}
	}
}
