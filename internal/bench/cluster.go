package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"disjunct/internal/cluster"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/serve"
)

// ClusterCase is one (instance family × semantics) comparison of the
// same sequential workload driven through a 1-worker and a 3-worker
// in-process cluster (real HTTP through the consistent-hash router),
// plus the same 3-worker set behind TWO replicated routers with the
// requests alternating between them. runClusterSweep asserts that
// neither sharding nor router replication moves ANYTHING logical: the
// verdict vector and the summed NP-call total must be identical across
// all three deployments — consistent-hash routing pins each compiled
// DB to exactly one worker regardless of which router forwarded it, so
// its warm-session memo is exactly as warm as in the single-node
// deployment. Wall-clock is reported, never gated.
type ClusterCase struct {
	Name        string  `json:"name"`
	Semantics   string  `json:"semantics"`
	Queries     int     `json:"queries"`
	OneNP       int64   `json:"one_node_np_calls"`
	ThreeNP     int64   `json:"three_node_np_calls"`
	TwoRouterNP int64   `json:"two_router_np_calls"`
	OneMS       float64 `json:"one_node_ms"`
	ThreeMS     float64 `json:"three_node_ms"`
	TwoRouterMS float64 `json:"two_router_ms"`
}

// clusterNodes is the sharded side of the comparison.
const clusterNodes = 3

// driveCluster replays the family's literal workload (every atom, both
// polarities) through the router, strictly sequentially so coalescing
// and retry jitter cannot blur the oracle totals. With more than one
// URL the requests alternate round-robin across the routers — the
// replicated-routing side of the comparison. It returns the verdict
// vector and the summed NP-call count from the workers' own response
// counters.
func driveCluster(client *http.Client, urls []string, d *db.DB, semName string) ([]bool, int64, time.Duration, error) {
	var (
		verdicts []bool
		np       int64
	)
	t0 := time.Now()
	for a := 0; a < d.N(); a++ {
		for _, l := range []logic.Lit{logic.PosLit(logic.Atom(a)), logic.NegLit(logic.Atom(a))} {
			body, err := json.Marshal(serve.QueryRequest{
				Semantics: semName,
				DB:        d.String(),
				Literal:   d.Voc.LitString(l),
				Limits:    serve.LimitsJSON{DeadlineMS: 30_000},
			})
			if err != nil {
				return nil, 0, 0, err
			}
			resp, err := client.Post(urls[len(verdicts)%len(urls)]+"/v1/infer/literal", "application/json", bytes.NewReader(body))
			if err != nil {
				return nil, 0, 0, err
			}
			var qr serve.QueryResponse
			derr := json.NewDecoder(resp.Body).Decode(&qr)
			resp.Body.Close()
			if derr != nil {
				return nil, 0, 0, fmt.Errorf("decode %s: %v", d.Voc.LitString(l), derr)
			}
			if resp.StatusCode != http.StatusOK {
				return nil, 0, 0, fmt.Errorf("%s: status %d", d.Voc.LitString(l), resp.StatusCode)
			}
			if qr.Incomplete {
				return nil, 0, 0, fmt.Errorf("%s: incomplete (%s)", d.Voc.LitString(l), qr.CauseCode)
			}
			verdicts = append(verdicts, qr.Holds)
			np += qr.Counters.NPCalls
		}
	}
	return verdicts, np, time.Since(t0), nil
}

// runClusterSweep is the sharded-cluster section of RunParallel: the
// session sweep's instance families, each replayed through a 1-node
// and a 3-node cluster, with the sharding-moves-nothing invariant
// enforced inline. This is the benchgate "cluster" section's data.
func runClusterSweep(scale Scale, w io.Writer, rep *ParallelReport) error {
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  sharded cluster (same sequential workload, 1 node vs %d nodes vs %d nodes + 2 routers):\n",
		clusterNodes, clusterNodes)
	fmt.Fprintf(w, "  %-14s %-5s %4s %8s %8s %8s %10s %10s %10s\n",
		"instance", "sem", "q", "NP-1", fmt.Sprintf("NP-%d", clusterNodes), "NP-2r",
		"1-node", fmt.Sprintf("%d-node", clusterNodes), "2-router")

	workerCfg := serve.Config{MaxConcurrent: 4, Sessions: true}
	one := cluster.StartLocal(1, workerCfg, cluster.RouterConfig{Seed: 1})
	defer one.Close()
	three := cluster.StartLocal(clusterNodes, workerCfg, cluster.RouterConfig{Seed: 1})
	defer three.Close()
	// The replicated deployment: a fresh worker set (so it starts as
	// cold as the others) behind two peered routers sharing one ring;
	// the workload alternates routers request by request.
	repl := cluster.StartLocal(clusterNodes, workerCfg, cluster.RouterConfig{Seed: 1})
	defer repl.Close()
	_, replPeer := repl.AddRouterPeer(cluster.RouterConfig{Seed: 2})
	replURLs := []string{repl.URL(), replPeer.URL}
	client := &http.Client{Timeout: 60 * time.Second}

	for _, fam := range sessionDBs(scale) {
		// Round-trip once so literal texts match the parse-order
		// vocabulary the workers build from the wire DB text.
		d, err := db.Parse(fam.db.String())
		if err != nil {
			return fmt.Errorf("cluster %s: round trip: %v", fam.name, err)
		}
		for _, semName := range fam.sems {
			oneV, oneNP, oneT, err := driveCluster(client, []string{one.URL()}, d, semName)
			if err != nil {
				return fmt.Errorf("cluster %s/%s: 1-node: %v", fam.name, semName, err)
			}
			threeV, threeNP, threeT, err := driveCluster(client, []string{three.URL()}, d, semName)
			if err != nil {
				return fmt.Errorf("cluster %s/%s: %d-node: %v", fam.name, semName, clusterNodes, err)
			}
			twoRV, twoRNP, twoRT, err := driveCluster(client, replURLs, d, semName)
			if err != nil {
				return fmt.Errorf("cluster %s/%s: 2-router: %v", fam.name, semName, err)
			}
			if len(oneV) != len(threeV) || len(oneV) != len(twoRV) {
				return fmt.Errorf("cluster %s/%s: verdict streams differ in length", fam.name, semName)
			}
			for i := range oneV {
				if oneV[i] != threeV[i] {
					return fmt.Errorf("cluster %s/%s: verdict %d diverged between cluster sizes", fam.name, semName, i)
				}
				if oneV[i] != twoRV[i] {
					return fmt.Errorf("cluster %s/%s: verdict %d diverged under router replication", fam.name, semName, i)
				}
			}
			if oneNP != threeNP {
				return fmt.Errorf("cluster %s/%s: sharding moved the NP total (1-node %d, %d-node %d)",
					fam.name, semName, oneNP, clusterNodes, threeNP)
			}
			if oneNP != twoRNP {
				return fmt.Errorf("cluster %s/%s: router replication moved the NP total (1-router %d, 2-router %d)",
					fam.name, semName, oneNP, twoRNP)
			}
			cc := ClusterCase{
				Name:        fam.name,
				Semantics:   semName,
				Queries:     len(oneV),
				OneNP:       oneNP,
				ThreeNP:     threeNP,
				TwoRouterNP: twoRNP,
				OneMS:       float64(oneT.Microseconds()) / 1e3,
				ThreeMS:     float64(threeT.Microseconds()) / 1e3,
				TwoRouterMS: float64(twoRT.Microseconds()) / 1e3,
			}
			rep.Cluster = append(rep.Cluster, cc)
			fmt.Fprintf(w, "  %-14s %-5s %4d %8d %8d %8d %10s %10s %10s\n",
				cc.Name, cc.Semantics, cc.Queries, cc.OneNP, cc.ThreeNP, cc.TwoRouterNP,
				fmtDuration(oneT), fmtDuration(threeT), fmtDuration(twoRT))
		}
	}
	return nil
}
