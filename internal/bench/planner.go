package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
	"disjunct/internal/plan"
	"disjunct/internal/session"
)

// PlannerCase is one (instance family × semantics) planner-off vs
// planner-on comparison. The planner-off leg answers every query with
// a fresh engine; the planner-on leg routes each query through the
// serve layer's procedure ladder — warm session (fast paths and warm
// engines), brute refsem for tiny instances the cost model has read as
// expensive, a brute-vs-fresh portfolio race for cold boundary keys,
// and the fresh path otherwise. runPlannerSweep asserts that routing
// never moves a verdict, that fast-path and brute answers consume zero
// oracle calls, that a portfolio race's total (both arms, including
// the canceled loser's partial) never exceeds the worst single
// procedure — the fresh-alone cost of the same queries. The planner-on
// total is reported but not bounded: a cold warm-engine pass may
// legitimately spend a few more oracle calls than fresh engines before
// memoization pays it back. Wall-clock is reported, never gated; the
// planner-off NP total is the deterministic counter benchgate pins.
type PlannerCase struct {
	Name      string `json:"name"`
	Semantics string `json:"semantics"`
	Fragment  string `json:"fragment"`
	Atoms     int    `json:"atoms"`
	Queries   int    `json:"queries"`

	// Actual executed routes (from each answer's path, not the
	// decision): fast + warm are session-handled, the rest planner-routed.
	Fast      int `json:"fast_queries"`
	Warm      int `json:"warm_queries"`
	Fresh     int `json:"fresh_queries"`
	Brute     int `json:"brute_queries"`
	Portfolio int `json:"portfolio_queries"`

	OffNP  int64 `json:"planner_off_np_calls"` // pinned by benchgate
	OnNP   int64 `json:"planner_on_np_calls"`  // reported, not gated
	FastNP int64 `json:"fast_np_calls"`        // bounded: zero

	// PortfolioNP sums the races' totals (both arms); PortfolioWorstNP
	// is the fresh-alone cost of the same queries — the worst single
	// procedure the race replaces.
	PortfolioNP      int64 `json:"portfolio_np_calls"`
	PortfolioWorstNP int64 `json:"portfolio_worst_np_calls"`

	Divergent int `json:"divergent"` // bounded: zero (also a hard sweep failure)

	OffMS   float64 `json:"planner_off_ms"`
	OnMS    float64 `json:"planner_on_ms"`
	Speedup float64 `json:"speedup"`
}

// plannerQuery is one literal or model-existence probe. Formula
// queries stay out of this sweep: their route support differs per
// semantics and the session sweep already audits them.
type plannerQuery struct {
	kind session.Kind
	lit  logic.Lit
	text string
}

func plannerQueries(d *db.DB) []plannerQuery {
	var qs []plannerQuery
	for a := 0; a < d.N(); a++ {
		for _, l := range []logic.Lit{logic.PosLit(logic.Atom(a)), logic.NegLit(logic.Atom(a))} {
			qs = append(qs, plannerQuery{kind: session.KindLiteral, lit: l, text: d.Voc.LitString(l)})
		}
	}
	return append(qs, plannerQuery{kind: session.KindModel})
}

// plannerDBs builds the seeded instance families: a definite program
// (fast path), a general positive database too large for brute
// construction (warm sessions), and a tiny general positive database
// inside the brute cap (portfolio races cold, estimate-driven routing
// warm, brute once the cost model reads the key as expensive; CWA on
// the same instance pins the NP-class fresh route the planner must
// leave alone).
func plannerDBs(scale Scale) []struct {
	name string
	db   *db.DB
	sems []string
} {
	rng := rand.New(rand.NewSource(101))
	defN, warmN := 10, 9
	if scale == Full {
		defN, warmN = 14, 12
	}

	def := db.New()
	var as []logic.Atom
	for i := 0; i < defN; i++ {
		as = append(as, def.Voc.Intern(fmt.Sprintf("p%d", i)))
	}
	for i := 0; i < 3*defN/2; i++ {
		head := as[rng.Intn(defN)]
		var body []logic.Atom
		for _, a := range as {
			if a != head && rng.Intn(4) == 0 {
				body = append(body, a)
			}
		}
		def.AddRule([]logic.Atom{head}, body, nil)
	}

	// Warm and tiny families: regenerate until no fast-path fragment
	// applies, so the measured routes are the ones named above.
	var warm *db.DB
	for {
		warm = gen.Random(rng, gen.Positive(warmN, 3*warmN/2))
		if session.Compile("", warm).Frag == session.FragGeneral {
			break
		}
	}
	var tiny *db.DB
	for {
		tiny = gen.Random(rng, gen.Positive(6, 9))
		if session.Compile("", tiny).Frag == session.FragGeneral {
			break
		}
	}

	return []struct {
		name string
		db   *db.DB
		sems []string
	}{
		{fmt.Sprintf("definite-n%d", defN), def, []string{"GCWA"}},
		{fmt.Sprintf("warm-pos-n%d", warmN), warm, []string{"GCWA", "CIRC"}},
		{"tiny-pos-n6", tiny, []string{"DSM", "CWA"}},
	}
}

// plannerFresh answers one query with a fresh engine and oracle — the
// planner-off procedure and the portfolio's fresh arm. The unlimited
// budget exists only to observe ctx: a race loser is canceled
// mid-search, exactly as the serve layer cancels it.
func plannerFresh(ctx context.Context, d *db.DB, semName string, q plannerQuery) (bool, oracle.Counters, error) {
	o := oracle.NewNP().WithBudget(budget.New(ctx, budget.Limits{}))
	s, ok := core.New(semName, core.Options{Oracle: o})
	if !ok {
		return false, oracle.Counters{}, fmt.Errorf("semantics %q not registered", semName)
	}
	var holds bool
	var err error
	switch q.kind {
	case session.KindLiteral:
		holds, err = s.InferLiteral(d, q.lit)
	default:
		holds, err = s.HasModel(d)
	}
	return holds, o.Counters(), err
}

// plannerRoute is the serve layer's procedure ladder in library form:
// the warm session first, then the planner's routed procedure, then
// the fresh path. Every finished query's counters feed the cost model,
// exactly as the server observes them.
func plannerRoute(ctx context.Context, planner *plan.Planner, mgr *session.Manager, comp *session.Compiled, d *db.DB, semName string, q plannerQuery) (holds bool, np int64, path string, err error) {
	dec := planner.Decide(comp, semName, q.kind)
	start := time.Now()
	observe := func(c oracle.Counters) {
		planner.Observe(comp.Raw, semName, plan.Cost{
			NPCalls:  c.NPCalls,
			SATConfl: c.SATConfl,
			Micros:   time.Since(start).Microseconds(),
		})
	}

	if res, handled := mgr.Query(ctx, comp, session.Request{
		Sem: semName, Kind: q.kind, Lit: q.lit, QueryText: q.text,
	}); handled {
		if res.Err != nil {
			return false, 0, "", fmt.Errorf("session %s: %v", q.text, res.Err)
		}
		observe(res.Counters)
		return res.Holds, res.Counters.NPCalls, res.Path, nil
	}

	switch dec.Proc {
	case plan.ProcBrute:
		if h, ok := plan.Brute(ctx, comp, semName, q.kind, q.lit, nil, planner.BruteMaxAtoms()); ok {
			observe(oracle.Counters{})
			return h, 0, "brute", nil
		}
	case plan.ProcPortfolio:
		if plan.BruteEligible(comp, semName, planner.BruteMaxAtoms()) {
			bruteArm := plan.Arm{Name: "brute", Run: func(actx context.Context) plan.Outcome {
				h, ok := plan.Brute(actx, comp, semName, q.kind, q.lit, nil, planner.BruteMaxAtoms())
				if !ok {
					e := actx.Err()
					if e == nil {
						e = context.Canceled
					}
					return plan.Outcome{Err: e}
				}
				return plan.Outcome{Holds: h}
			}}
			freshArm := plan.Arm{Name: "fresh", Run: func(actx context.Context) plan.Outcome {
				h, c, e := plannerFresh(actx, d, semName, q)
				return plan.Outcome{Holds: h, Err: e, Counters: c}
			}}
			res := plan.Race(ctx, bruteArm, freshArm)
			planner.CountRace(res.Winner)
			if res.Out.Err != nil {
				return false, 0, "", fmt.Errorf("portfolio %s: %v", q.text, res.Out.Err)
			}
			observe(res.Total)
			return res.Out.Holds, res.Total.NPCalls, "portfolio:" + res.Winner, nil
		}
	}

	h, c, ferr := plannerFresh(ctx, d, semName, q)
	if ferr != nil {
		return false, 0, "", ferr
	}
	observe(c)
	return h, c.NPCalls, "", nil
}

// runPlannerCase drives the doubled query stream for one (instance,
// semantics) pair through both legs — plus, when the pair is inside
// the brute cap, a third round after inflating the key's estimate, in
// which every planner-routed query must go brute and answer for zero
// oracle calls.
func runPlannerCase(name string, d *db.DB, semName string) (PlannerCase, error) {
	pc := PlannerCase{Name: name, Semantics: semName, Atoms: d.N()}
	ctx := context.Background()
	qs := plannerQueries(d)

	planner := plan.New(plan.Config{})
	mgr := session.NewManager(session.Config{})
	comp := mgr.InternDB(d)
	pc.Fragment = comp.Frag.String()
	forced := plan.BruteEligible(comp, semName, planner.BruteMaxAtoms())
	rounds := 2
	if forced {
		rounds = 3
	}

	// Planner-off leg: a fresh engine per query, every round. The
	// per-query verdicts and NP counts double as the on-leg reference.
	want := make([]bool, len(qs))
	freshNP := make([]int64, len(qs))
	offStart := time.Now()
	for round := 0; round < rounds; round++ {
		for i, q := range qs {
			h, c, err := plannerFresh(ctx, d, semName, q)
			if err != nil {
				return pc, fmt.Errorf("planner %s/%s: fresh %q: %v", name, semName, q.text, err)
			}
			pc.OffNP += c.NPCalls
			if round == 0 {
				want[i], freshNP[i] = h, c.NPCalls
			} else if h != want[i] {
				return pc, fmt.Errorf("planner %s/%s: fresh leg is non-deterministic on %q", name, semName, q.text)
			}
		}
	}
	pc.OffMS = float64(time.Since(offStart).Microseconds()) / 1e3

	onStart := time.Now()
	for round := 0; round < rounds; round++ {
		if forced && round == 2 {
			// Teach the cost model the key is expensive: from here every
			// planner-routed decision for it must pick brute.
			planner.Observe(comp.Raw, semName, plan.Cost{NPCalls: 10_000})
		}
		for i, q := range qs {
			h, np, path, err := plannerRoute(ctx, planner, mgr, comp, d, semName, q)
			if err != nil {
				return pc, fmt.Errorf("planner %s/%s: %v", name, semName, err)
			}
			pc.Queries++
			pc.OnNP += np
			if h != want[i] {
				pc.Divergent++
				return pc, fmt.Errorf("planner %s/%s: %s %q verdict diverged: off %v, on %v (path %q)",
					name, semName, q.kind, q.text, want[i], h, path)
			}
			switch {
			case path == "fast":
				pc.Fast++
				pc.FastNP += np
			case path == "brute":
				pc.Brute++
				if np != 0 {
					return pc, fmt.Errorf("planner %s/%s: brute answer for %q consumed %d NP calls, want 0", name, semName, q.text, np)
				}
			case strings.HasPrefix(path, "portfolio:"):
				pc.Portfolio++
				pc.PortfolioNP += np
				pc.PortfolioWorstNP += freshNP[i]
			case path == "":
				pc.Fresh++
			default:
				pc.Warm++
			}
			// Expensive-estimate round: every answer must be free — the
			// session's zero-NP routes or the oracle-free brute set.
			if forced && round == 2 && path != "brute" && np != 0 {
				return pc, fmt.Errorf("planner %s/%s: expensive-estimate round routed %q via %q for %d NP calls, want brute",
					name, semName, q.text, path, np)
			}
		}
	}
	pc.OnMS = float64(time.Since(onStart).Microseconds()) / 1e3

	if st := mgr.Stats(); st.ActiveCheckouts != 0 {
		return pc, fmt.Errorf("planner %s/%s: %d checkouts leaked", name, semName, st.ActiveCheckouts)
	}
	if pc.FastNP != 0 {
		return pc, fmt.Errorf("planner %s/%s: fast path consumed %d NP calls, want 0", name, semName, pc.FastNP)
	}
	if pc.PortfolioNP > pc.PortfolioWorstNP {
		return pc, fmt.Errorf("planner %s/%s: portfolio total %d exceeds the worst single procedure %d",
			name, semName, pc.PortfolioNP, pc.PortfolioWorstNP)
	}
	if pc.OnMS > 0 {
		pc.Speedup = pc.OffMS / pc.OnMS
	}
	return pc, nil
}

// runPlannerSweep is the cost-based-routing section of RunParallel:
// the planner-off vs planner-on comparison with the verdict-identity,
// zero-NP, and portfolio-bound invariants enforced inline, plus route
// coverage so the identity claim is non-vacuous.
func runPlannerSweep(scale Scale, w io.Writer, rep *ParallelReport) error {
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  cost-based planner (same workload, planner off vs on):\n")
	fmt.Fprintf(w, "  %-14s %-5s %-12s %4s %5s %5s %6s %6s %5s %8s %8s %10s %10s %8s\n",
		"instance", "sem", "fragment", "q", "fast", "warm", "fresh", "brute", "race", "NP-off", "NP-on", "off", "on", "speedup")

	for _, fam := range plannerDBs(scale) {
		for _, semName := range fam.sems {
			pc, err := runPlannerCase(fam.name, fam.db, semName)
			if err != nil {
				return err
			}
			// Route coverage: the family each route was designed around
			// must actually exercise it.
			switch {
			case pc.Fragment == "definite" && pc.Fast == 0:
				return fmt.Errorf("planner %s/%s: definite family never hit the fast path", pc.Name, pc.Semantics)
			case strings.HasPrefix(fam.name, "warm") && pc.Warm == 0:
				return fmt.Errorf("planner %s/%s: warm family never hit a warm session", pc.Name, pc.Semantics)
			case strings.HasPrefix(fam.name, "tiny") && pc.Semantics == "DSM" && (pc.Portfolio == 0 || pc.Brute == 0):
				return fmt.Errorf("planner %s/%s: tiny family skipped portfolio (%d) or brute (%d) coverage",
					pc.Name, pc.Semantics, pc.Portfolio, pc.Brute)
			case pc.Semantics == "CWA" && pc.Fresh == 0:
				return fmt.Errorf("planner %s/%s: NP-class family never took the fresh path", pc.Name, pc.Semantics)
			}
			rep.Planner = append(rep.Planner, pc)
			fmt.Fprintf(w, "  %-14s %-5s %-12s %4d %5d %5d %6d %6d %5d %8d %8d %10s %10s %7.1fx\n",
				pc.Name, pc.Semantics, pc.Fragment, pc.Queries, pc.Fast, pc.Warm, pc.Fresh, pc.Brute, pc.Portfolio,
				pc.OffNP, pc.OnNP,
				fmtDuration(time.Duration(pc.OffMS*float64(time.Millisecond))),
				fmtDuration(time.Duration(pc.OnMS*float64(time.Millisecond))),
				pc.Speedup)
		}
	}
	return nil
}
