// Package bench is the experiment harness regenerating the paper's
// evaluation — Tables 1 and 2 — as executable evidence. For every
// (semantics × task × regime) cell it runs
//
//   - a membership algorithm over a size sweep, recording wall time
//     and instrumented oracle usage (NP calls, Σ₂ᵖ calls); and
//   - where the paper proves hardness, the executable reduction from
//     the canonical complete problem, cross-checked against an
//     independent solver.
//
// The harness does not try to match 1993 wall-clock numbers (there are
// none in the paper); what it reproduces is the SHAPE of each cell:
// which problems are polynomial (zero oracle calls, polynomial
// scaling), which are NP/coNP (one oracle call), which are Π₂ᵖ/Σ₂ᵖ
// (oracle-verified co-search, exponential worst case on the reduction
// families), and which sit in P^Σ₂ᵖ[O(log n)] (logarithmically many
// Σ₂ᵖ calls).
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

// Task is one of the paper's three decision problems.
type Task string

// The three columns of Tables 1 and 2.
const (
	TaskLiteral Task = "literal"
	TaskFormula Task = "formula"
	TaskExists  Task = "exists"
)

// Measurement is one point of a size sweep.
type Measurement struct {
	Size      int           // instance size parameter (atoms, or QBF vars)
	Instances int           // instances measured
	Time      time.Duration // mean wall time per instance
	NPCalls   float64       // mean NP-oracle calls per instance
	Sigma2    float64       // mean Σ₂ᵖ-oracle calls per instance
}

// CellResult is the evidence collected for one table cell.
type CellResult struct {
	Table     int    // 1 or 2
	Semantics string // paper abbreviation
	Task      Task
	Claimed   string // the complexity class from the (reconstructed) table
	Evidence  string // one-line summary of what was run
	Sweep     []Measurement
	Hardness  string // reduction-validation summary ("" if none)
}

// Runner produces the instance stream and decision procedure for a
// cell sweep.
type Runner struct {
	// Sizes is the sweep; for each size, Instances databases are
	// generated with MakeInstance and decided with Decide.
	Sizes     []int
	Instances int
	// MakeInstance returns a database (and optional query payload)
	// for the given size and repetition.
	MakeInstance func(rng *rand.Rand, size, rep int) Instance
	// Decide runs the decision procedure; oracle usage is read from
	// the oracle the semantics was constructed with.
	Decide func(inst Instance) error
}

// Instance is one generated workload item.
type Instance struct {
	DB      *db.DB
	Lit     logic.Lit
	Formula *logic.Formula
	Want    *bool // expected answer when the generator knows it
}

// RunCell executes the sweep and assembles the result row.
func RunCell(table int, sem string, task Task, claimed, evidence string, o *oracle.NP, r Runner) (CellResult, error) {
	res := CellResult{Table: table, Semantics: sem, Task: task, Claimed: claimed, Evidence: evidence}
	rng := rand.New(rand.NewSource(int64(table)*1009 + int64(len(sem))*31 + int64(len(task))))
	for _, size := range r.Sizes {
		var total time.Duration
		var np, s2 int64
		for rep := 0; rep < r.Instances; rep++ {
			inst := r.MakeInstance(rng, size, rep)
			before := o.Counters()
			start := time.Now()
			if err := r.Decide(inst); err != nil {
				return res, fmt.Errorf("%s/%s size %d: %w", sem, task, size, err)
			}
			total += time.Since(start)
			after := o.Counters()
			np += after.NPCalls - before.NPCalls
			s2 += after.Sigma2Calls - before.Sigma2Calls
		}
		res.Sweep = append(res.Sweep, Measurement{
			Size:      size,
			Instances: r.Instances,
			Time:      total / time.Duration(r.Instances),
			NPCalls:   float64(np) / float64(r.Instances),
			Sigma2:    float64(s2) / float64(r.Instances),
		})
	}
	return res, nil
}

// newSem instantiates a registered semantics with a fresh oracle and
// returns both.
func newSem(name string, opts core.Options) (core.Semantics, *oracle.NP) {
	o := oracle.NewNP()
	opts.Oracle = o
	s, ok := core.New(name, opts)
	if !ok {
		panic("bench: unknown semantics " + name)
	}
	return s, o
}

// WriteReport renders cell results grouped by table.
func WriteReport(w io.Writer, results []CellResult) {
	for _, table := range []int{1, 2} {
		header := "Table 1: positive propositional DDBs (no integrity clauses, no negation)"
		if table == 2 {
			header = "Table 2: propositional DDBs with integrity clauses (negation where defined)"
		}
		fmt.Fprintf(w, "%s\n%s\n", header, strings.Repeat("=", len(header)))
		for _, r := range results {
			if r.Table != table {
				continue
			}
			fmt.Fprintf(w, "\n%-6s %-8s claimed: %s\n", r.Semantics, r.Task, r.Claimed)
			fmt.Fprintf(w, "       evidence: %s\n", r.Evidence)
			if r.Hardness != "" {
				fmt.Fprintf(w, "       hardness: %s\n", r.Hardness)
			}
			fmt.Fprintf(w, "       %8s %10s %12s %10s\n", "size", "time", "NP-calls", "Σ₂ᵖ-calls")
			for _, m := range r.Sweep {
				fmt.Fprintf(w, "       %8d %10s %12.1f %10.1f\n",
					m.Size, fmtDuration(m.Time), m.NPCalls, m.Sigma2)
			}
		}
		fmt.Fprintln(w)
	}
}

func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
