package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/session"
	"disjunct/internal/store"
)

// StoreCase is one (instance family × semantics) persistence
// comparison across three processes over the same workload: a cold
// store-backed manager (which writes the store), a storeless reference
// manager, and a pre-warmed manager reopened on the store directory —
// standing in for a restarted process. runStoreSweep asserts that all
// three produce identical verdicts, that persistence never moves the
// NP-call total (store-on == store-off), and that the restarted
// manager compiles nothing cold and never exceeds the cold process's
// oracle work. Wall-clock is reported, never gated.
type StoreCase struct {
	Name         string  `json:"name"`
	Semantics    string  `json:"semantics"`
	Queries      int     `json:"queries"`
	OnNP         int64   `json:"store_on_np_calls"`
	OffNP        int64   `json:"store_off_np_calls"`
	ReplayNP     int64   `json:"replay_np_calls"`
	ColdCompiles int64   `json:"replay_cold_compiles"`
	Prewarmed    int64   `json:"prewarmed_artifacts"`
	VerdictSeeds int64   `json:"verdict_seeds"`
	ColdMS       float64 `json:"cold_ms"`
	ReplayMS     float64 `json:"replay_ms"`
	Speedup      float64 `json:"speedup"`
}

// storeQuery is one workload item of the persistence sweep — the same
// shape as the session sweep's stream (all literals both polarities,
// model existence, one formula where the route supports it).
type storeQuery struct {
	kind session.Kind
	lit  logic.Lit
	f    *logic.Formula
	text string
}

func storeQueries(d *db.DB, semName string) []storeQuery {
	var qs []storeQuery
	for a := 0; a < d.N(); a++ {
		for _, l := range []logic.Lit{logic.PosLit(logic.Atom(a)), logic.NegLit(logic.Atom(a))} {
			qs = append(qs, storeQuery{kind: session.KindLiteral, lit: l, text: d.Voc.LitString(l)})
		}
	}
	qs = append(qs, storeQuery{kind: session.KindModel})
	if session.Compile("", d).Frag != session.FragGeneral || sessionFormulaRoutes[semName] {
		f := logic.Or(logic.And(logic.AtomF(0), logic.Not(logic.AtomF(1))), logic.AtomF(2))
		qs = append(qs, storeQuery{kind: session.KindFormula, f: f, text: f.String(d.Voc)})
	}
	return qs
}

// driveStore runs the workload through one manager and returns the
// verdict vector, the NP-call total, and the wall-clock.
func driveStore(mgr *session.Manager, d *db.DB, semName string, qs []storeQuery) ([]bool, int64, time.Duration, error) {
	comp := mgr.InternDB(d)
	ctx := context.Background()
	verdicts := make([]bool, 0, len(qs))
	var np int64
	t0 := time.Now()
	for _, q := range qs {
		res, handled := mgr.Query(ctx, comp, session.Request{
			Sem: semName, Kind: q.kind, Lit: q.lit, F: q.f, QueryText: q.text,
		})
		if !handled {
			return nil, 0, 0, fmt.Errorf("%s %q not handled by the session layer", q.kind, q.text)
		}
		if res.Err != nil {
			return nil, 0, 0, fmt.Errorf("%s %q: %v", q.kind, q.text, res.Err)
		}
		verdicts = append(verdicts, res.Holds)
		np += res.Counters.NPCalls
	}
	return verdicts, np, time.Since(t0), nil
}

// runStoreWorkload runs one (instance, semantics) pair through the
// three processes and audits the persistence contract.
func runStoreWorkload(name string, d *db.DB, semName string) (StoreCase, error) {
	sc := StoreCase{Name: name, Semantics: semName}
	// Round-trip the instance once: the pre-warmed manager compiles from
	// the persisted artifact TEXT, and queries are phrased against atom
	// indices, so all three managers must see the parse-order vocabulary.
	rt, err := db.Parse(d.String())
	if err != nil {
		return sc, fmt.Errorf("store %s/%s: round trip: %v", name, semName, err)
	}
	d = rt
	dir, err := os.MkdirTemp("", "ddbbench-store-*")
	if err != nil {
		return sc, err
	}
	defer os.RemoveAll(dir)

	qs := storeQueries(d, semName)
	sc.Queries = len(qs)
	id := name + "/" + semName

	// Cold store-backed process: compiles everything, writes the store.
	st1, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		return sc, err
	}
	mgrOn := session.NewManager(session.Config{Store: st1})
	onV, onNP, onT, err := driveStore(mgrOn, d, semName, qs)
	if err != nil {
		return sc, fmt.Errorf("store %s: cold: %v", id, err)
	}
	if err := st1.Close(); err != nil {
		return sc, fmt.Errorf("store %s: close: %v", id, err)
	}
	sc.OnNP = onNP
	sc.ColdMS = float64(onT.Microseconds()) / 1e3

	// Storeless reference: persistence must not move the oracle shape.
	offV, offNP, _, err := driveStore(session.NewManager(session.Config{}), d, semName, qs)
	if err != nil {
		return sc, fmt.Errorf("store %s: storeless: %v", id, err)
	}
	sc.OffNP = offNP
	if onNP != offNP {
		return sc, fmt.Errorf("store %s: persistence moved the NP total (on=%d off=%d)", id, onNP, offNP)
	}
	for i := range onV {
		if onV[i] != offV[i] {
			return sc, fmt.Errorf("store %s: verdict %d diverged between store-on and store-off", id, i)
		}
	}

	// Pre-warmed restart: reopen the directory, prewarm, replay.
	st2, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		return sc, fmt.Errorf("store %s: reopen: %v", id, err)
	}
	mgr2 := session.NewManager(session.Config{Store: st2})
	if _, err := mgr2.Prewarm(); err != nil {
		st2.Close()
		return sc, fmt.Errorf("store %s: prewarm: %v", id, err)
	}
	repV, repNP, repT, err := driveStore(mgr2, d, semName, qs)
	if cerr := st2.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return sc, fmt.Errorf("store %s: replay: %v", id, err)
	}
	sc.ReplayNP = repNP
	sc.ReplayMS = float64(repT.Microseconds()) / 1e3
	stats := mgr2.Stats()
	sc.ColdCompiles = stats.ColdCompiles
	sc.Prewarmed = stats.PrewarmedArtifacts
	sc.VerdictSeeds = stats.StoreVerdictSeeds
	if stats.ColdCompiles != 0 {
		return sc, fmt.Errorf("store %s: pre-warmed restart ran %d cold compiles, want 0", id, stats.ColdCompiles)
	}
	if repNP > onNP {
		return sc, fmt.Errorf("store %s: restart NP total %d exceeds cold total %d", id, repNP, onNP)
	}
	for i := range onV {
		if onV[i] != repV[i] {
			return sc, fmt.Errorf("store %s: verdict %d diverged after restart", id, i)
		}
	}
	if repT > 0 {
		sc.Speedup = float64(onT) / float64(repT)
	}
	return sc, nil
}

// runStoreSweep is the persistence section of RunParallel: the same
// instance families as the session sweep, each run cold-with-store,
// storeless, and pre-warmed-after-restart, with the
// persistence-moves-nothing and zero-cold-compile invariants enforced
// inline.
func runStoreSweep(scale Scale, w io.Writer, rep *ParallelReport) error {
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  persistent store (cold store-backed vs storeless vs pre-warmed restart):\n")
	fmt.Fprintf(w, "  %-14s %-5s %4s %8s %8s %9s %5s %6s %10s %10s %8s\n",
		"instance", "sem", "q", "NP-cold", "NP-off", "NP-replay", "warm", "seeds", "cold", "replay", "speedup")

	for _, fam := range sessionDBs(scale) {
		for _, semName := range fam.sems {
			sc, err := runStoreWorkload(fam.name, fam.db, semName)
			if err != nil {
				return err
			}
			rep.Store = append(rep.Store, sc)
			fmt.Fprintf(w, "  %-14s %-5s %4d %8d %8d %9d %5d %6d %10s %10s %7.1fx\n",
				sc.Name, sc.Semantics, sc.Queries, sc.OnNP, sc.OffNP, sc.ReplayNP,
				sc.Prewarmed, sc.VerdictSeeds,
				fmtDuration(time.Duration(sc.ColdMS*float64(time.Millisecond))),
				fmtDuration(time.Duration(sc.ReplayMS*float64(time.Millisecond))),
				sc.Speedup)
		}
	}
	return nil
}
