package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/qbf"
	"disjunct/internal/reduction"
	"disjunct/internal/semantics/gcwa"
)

// RunCrossover prints head-to-head series: the same task on the same
// instances under several semantics, showing WHO WINS and by what
// factor — the qualitative shape a complexity table predicts. Three
// series:
//
//  1. Negative-literal inference on growing positive DDBs: the
//     tractable DDR/PWS stay polynomial and flat; the Π₂ᵖ semantics
//     (GCWA, EGCWA) pay oracle calls that grow with instance size.
//  2. The same on the Theorem 3.1 QBF family, where the Π₂ᵖ engines
//     face their worst case while DDR/PWS remain indifferent.
//  3. Formula inference under GCWA, direct closure computation vs the
//     Δ-log algorithm: wall-clock crossover vs oracle-call trade.
func RunCrossover(scale Scale, w io.Writer) error {
	fmt.Fprintln(w, "Head-to-head series (who wins, and by how much)")
	fmt.Fprintln(w, "===============================================")

	reps := scale.reps(3, 6)

	// --- Series 1: random positive DDBs --------------------------------
	fmt.Fprintln(w, "\n[1] ¬x inference on random positive DDBs (mean per query)")
	sems := []string{"DDR", "PWS", "GCWA", "EGCWA"}
	fmt.Fprintf(w, "  %6s", "n")
	for _, s := range sems {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, n := range scale.pick([]int{20, 40}, []int{20, 40, 60}) {
		rng := rand.New(rand.NewSource(int64(n)))
		dbs := make([]*dbWithLit, reps)
		for i := range dbs {
			d := gen.Random(rng, gen.Positive(n, 2*n))
			dbs[i] = &dbWithLit{d: d, l: logic.NegLit(logic.Atom(rng.Intn(n)))}
		}
		fmt.Fprintf(w, "  %6d", n)
		for _, name := range sems {
			s, _ := newSem(name, core.Options{})
			start := time.Now()
			for _, in := range dbs {
				if _, err := s.InferLiteral(in.d, in.l); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, " %12s", fmtDuration(time.Since(start)/time.Duration(reps)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  shape: DDR/PWS polynomial and oracle-free; GCWA/EGCWA pay the")
	fmt.Fprintln(w, "  minimal-model co-search — the Table 1 literal column.")

	// --- Series 2: the QBF reduction family ----------------------------
	fmt.Fprintln(w, "\n[2] ¬w inference on the Theorem 3.1 family (size = #∃ = #∀ vars)")
	fmt.Fprintf(w, "  %6s %12s %12s %12s\n", "size", "DDR", "GCWA", "DSM")
	for _, k := range scale.pick([]int{2, 3}, []int{2, 3, 4, 5}) {
		rng := rand.New(rand.NewSource(int64(k)))
		insts := make([]*dbWithLit, reps)
		for i := range insts {
			q := qbf.Random3DNF(rng, k, k, 2*k)
			d, wAtom, err := reduction.MMNegLiteralFromQBF(q)
			if err != nil {
				return err
			}
			insts[i] = &dbWithLit{d: d, l: logic.NegLit(wAtom)}
		}
		fmt.Fprintf(w, "  %6d", k)
		for _, name := range []string{"DDR", "GCWA", "DSM"} {
			s, _ := newSem(name, core.Options{})
			start := time.Now()
			for _, in := range insts {
				if _, err := s.InferLiteral(in.d, in.l); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, " %12s", fmtDuration(time.Since(start)/time.Duration(reps)))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  shape: DDR's verdict is cheap AND different — it never infers ¬w")
	fmt.Fprintln(w, "  on this family (w always occurs), which is exactly why its cell")
	fmt.Fprintln(w, "  is tractable: it answers a weaker question.")

	// --- Series 3: GCWA formula inference, direct vs Δ-log -------------
	fmt.Fprintln(w, "\n[3] GCWA formula inference: direct closure vs Δ-log")
	fmt.Fprintf(w, "  %6s %12s %14s %12s %14s\n", "n", "direct", "direct-NP", "Δ-log", "Δ-log-Σ₂ᵖ")
	for _, n := range scale.pick([]int{6, 10}, []int{6, 10, 14}) {
		rng := rand.New(rand.NewSource(int64(n)))
		d := gen.Random(rng, gen.Positive(n, 2*n))
		f := randomQuery(rng, d, 2)

		sd, od := newSem("GCWA", core.Options{})
		start := time.Now()
		if _, err := sd.InferFormula(d, f); err != nil {
			return err
		}
		directT := time.Since(start)
		directNP := od.Counters().NPCalls

		ol := coreOracle()
		gl := gcwa.New(core.Options{Oracle: ol})
		start = time.Now()
		if _, err := gl.InferFormulaDeltaLog(d, f); err != nil {
			return err
		}
		dlT := time.Since(start)
		dlS2 := ol.Counters().Sigma2Calls

		fmt.Fprintf(w, "  %6d %12s %14d %12s %14d\n",
			n, fmtDuration(directT), directNP, fmtDuration(dlT), dlS2)
	}
	fmt.Fprintln(w, "  shape: the Δ-log algorithm trades wall-clock for a logarithmic")
	fmt.Fprintln(w, "  Σ₂ᵖ-oracle budget — the complexity-theoretic resource of the cell.")
	return nil
}

type dbWithLit struct {
	d *db.DB
	l logic.Lit
}
