package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/session"
)

// BatchCase is one hot-database batch-vs-sequential comparison. The
// same query set (the session sweep's instance families, every
// registered-and-eligible semantics of the family combined into one
// mixed batch) runs (a) sequentially — paying a database compile per
// query, the cost shape of N standalone requests against a cold
// server — and (b) through Manager.Batch with ONE shared compile and
// one session checkout per (database, semantics) group. runBatchSweep
// asserts that every per-query verdict is identical, that the batch
// NP-call total equals the sequential total, and that the compile
// amortization ratio (N compiles vs one) exceeds 1; wall-clock is
// reported, never gated.
type BatchCase struct {
	Name           string  `json:"name"`
	Atoms          int     `json:"atoms"`
	Queries        int     `json:"queries"`
	Semantics      int     `json:"semantics_groups"`
	SeqNP          int64   `json:"seq_np_calls"`
	BatchNP        int64   `json:"batch_np_calls"`
	SeqCompileMS   float64 `json:"seq_compile_ms"`
	BatchCompileMS float64 `json:"batch_compile_ms"`
	Amortization   float64 `json:"compile_amortization"`
	SeqMS          float64 `json:"seq_ms"`
	BatchMS        float64 `json:"batch_ms"`
	Speedup        float64 `json:"speedup"`
}

// StreamCase is one buffered-vs-iterator enumeration comparison on a
// seeded instance: the push enumerator collecting every model (the
// time a buffered response makes the client wait before the FIRST
// model is visible) against the pull iterator's time-to-first-model.
// runStreamSweep asserts that the drained iterator yields the exact
// model set, count, and NP-call total of the push run and terminates
// with the typed completion error; the TTFM ratio is reported, never
// gated.
type StreamCase struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	Atoms        int     `json:"atoms"`
	Models       int     `json:"models"`
	PushNP       int64   `json:"push_np_calls"`
	IterNP       int64   `json:"iter_np_calls"`
	BufferedMS   float64 `json:"buffered_ms"`
	FirstModelMS float64 `json:"first_model_ms"`
	IterTotalMS  float64 `json:"iter_total_ms"`
	TTFMSpeedup  float64 `json:"ttfm_speedup"`
}

// batchQuery is one entry of the mixed workload, tagged with the
// semantics it targets (the batch planner groups by this).
type batchQuery struct {
	sem  string
	kind session.Kind
	lit  logic.Lit
	f    *logic.Formula
	text string
}

// batchWorkload builds the mixed query set for one instance family:
// per-atom literals of both polarities plus a model-existence query
// for every semantics, and a formula query where the route supports
// it — ordered semantics-by-semantics so the per-engine query order is
// identical on the sequential and batched routes.
func batchWorkload(d *db.DB, frag session.Fragment, sems []string) []batchQuery {
	var qs []batchQuery
	for _, sem := range sems {
		for a := 0; a < d.N(); a++ {
			for _, l := range []logic.Lit{logic.PosLit(logic.Atom(a)), logic.NegLit(logic.Atom(a))} {
				qs = append(qs, batchQuery{sem: sem, kind: session.KindLiteral, lit: l, text: d.Voc.LitString(l)})
			}
		}
		qs = append(qs, batchQuery{sem: sem, kind: session.KindModel})
		if frag != session.FragGeneral || sessionFormulaRoutes[sem] {
			f := logic.Or(logic.And(logic.AtomF(0), logic.Not(logic.AtomF(1))), logic.AtomF(2))
			qs = append(qs, batchQuery{sem: sem, kind: session.KindFormula, f: f, text: f.String(d.Voc)})
		}
	}
	return qs
}

// runBatchWorkload drives one instance family through both routes and
// audits the batch contract.
func runBatchWorkload(name string, d *db.DB, sems []string) (BatchCase, error) {
	bc := BatchCase{Name: name, Atoms: d.N(), Semantics: len(sems)}
	text := d.String()
	frag := session.Compile(text, d).Frag
	qs := batchWorkload(d, frag, sems)
	bc.Queries = len(qs)
	ctx := context.Background()

	// Sequential route: every query pays its own database compile (the
	// cost N standalone requests pay on a server without a warm
	// compiled-DB hit), then runs through Manager.Query one at a time.
	var seqCompileT time.Duration
	for range qs {
		t0 := time.Now()
		session.Compile(text, d)
		seqCompileT += time.Since(t0)
	}
	mgrSeq := session.NewManager(session.Config{})
	compSeq := mgrSeq.InternDB(d)
	verdicts := make([]bool, len(qs))
	var seqQueryT time.Duration
	for i, q := range qs {
		t0 := time.Now()
		res, handled := mgrSeq.Query(ctx, compSeq, session.Request{
			Sem: q.sem, Kind: q.kind, Lit: q.lit, F: q.f, QueryText: q.text,
		})
		seqQueryT += time.Since(t0)
		if !handled {
			return bc, fmt.Errorf("batch %s: sequential %s/%s %q not handled by the session layer", name, q.sem, q.kind, q.text)
		}
		if res.Err != nil {
			return bc, fmt.Errorf("batch %s: sequential %s/%s %q: %v", name, q.sem, q.kind, q.text, res.Err)
		}
		verdicts[i] = res.Holds
		bc.SeqNP += res.Counters.NPCalls
	}

	// Batched route: one compile, one Manager.Batch call, one checkout
	// per semantics group.
	t0 := time.Now()
	session.Compile(text, d)
	batchCompileT := time.Since(t0)
	mgrB := session.NewManager(session.Config{})
	compB := mgrB.InternDB(d)
	reqs := make([]session.Request, len(qs))
	for i, q := range qs {
		reqs[i] = session.Request{Sem: q.sem, Kind: q.kind, Lit: q.lit, F: q.f, QueryText: q.text}
	}
	t0 = time.Now()
	outs := mgrB.Batch(ctx, compB, reqs)
	batchQueryT := time.Since(t0)
	for i, out := range outs {
		q := qs[i]
		if !out.Handled {
			return bc, fmt.Errorf("batch %s: %s/%s %q not handled by Manager.Batch", name, q.sem, q.kind, q.text)
		}
		if out.Res.Err != nil {
			return bc, fmt.Errorf("batch %s: %s/%s %q: %v", name, q.sem, q.kind, q.text, out.Res.Err)
		}
		if out.Res.Holds != verdicts[i] {
			return bc, fmt.Errorf("batch %s: %s/%s %q verdict diverged: sequential %v, batch %v",
				name, q.sem, q.kind, q.text, verdicts[i], out.Res.Holds)
		}
		bc.BatchNP += out.Res.Counters.NPCalls
	}

	// The two audited invariants: identical oracle work, amortized
	// compile cost.
	if bc.BatchNP != bc.SeqNP {
		return bc, fmt.Errorf("batch %s: NP total diverged: sequential %d, batch %d", name, bc.SeqNP, bc.BatchNP)
	}
	if batchCompileT <= 0 {
		batchCompileT = time.Nanosecond
	}
	bc.Amortization = float64(seqCompileT) / float64(batchCompileT)
	if bc.Amortization <= 1 {
		return bc, fmt.Errorf("batch %s: compile amortization %.2f not > 1 (seq %v over %d queries, batch %v)",
			name, bc.Amortization, seqCompileT, len(qs), batchCompileT)
	}
	bc.SeqCompileMS = float64(seqCompileT.Microseconds()) / 1e3
	bc.BatchCompileMS = float64(batchCompileT.Microseconds()) / 1e3
	bc.SeqMS = float64((seqCompileT + seqQueryT).Microseconds()) / 1e3
	bc.BatchMS = float64((batchCompileT + batchQueryT).Microseconds()) / 1e3
	if batchCompileT+batchQueryT > 0 {
		bc.Speedup = float64(seqCompileT+seqQueryT) / float64(batchCompileT+batchQueryT)
	}
	return bc, nil
}

// runBatchSweep is the batch-amortization section of RunParallel,
// reusing the session sweep's instance families so the numbers sit on
// known ground.
func runBatchSweep(scale Scale, w io.Writer, rep *ParallelReport) error {
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  batched execution (per-query compiles + sequential vs one compile + Manager.Batch):\n")
	fmt.Fprintf(w, "  %-14s %4s %4s %9s %9s %10s %10s %8s %10s %10s %8s\n",
		"instance", "q", "sems", "NP-seq", "NP-batch", "compile×N", "compile×1", "amort", "seq", "batch", "speedup")

	for _, fam := range sessionDBs(scale) {
		bc, err := runBatchWorkload(fam.name, fam.db, fam.sems)
		if err != nil {
			return err
		}
		rep.Batch = append(rep.Batch, bc)
		fmt.Fprintf(w, "  %-14s %4d %4d %9d %9d %10s %10s %7.1fx %10s %10s %7.1fx\n",
			bc.Name, bc.Queries, bc.Semantics, bc.SeqNP, bc.BatchNP,
			fmtDuration(time.Duration(bc.SeqCompileMS*float64(time.Millisecond))),
			fmtDuration(time.Duration(bc.BatchCompileMS*float64(time.Millisecond))),
			bc.Amortization,
			fmtDuration(time.Duration(bc.SeqMS*float64(time.Millisecond))),
			fmtDuration(time.Duration(bc.BatchMS*float64(time.Millisecond))),
			bc.Speedup)
	}
	return nil
}

// streamDBs builds the seeded instance set of the TTFM sweep: minimal
// enumeration on NP-heavy instances (where per-model minimization work
// makes buffering expensive) and all-models enumeration on a smaller
// instance with a dense model space.
func streamDBs(scale Scale) []struct {
	name string
	kind string
	db   *db.DB
} {
	rng := rand.New(rand.NewSource(91))
	minN, allN, cyc := 20, 12, 6
	if scale == Full {
		minN, allN, cyc = 28, 14, 8
	}
	return []struct {
		name string
		kind string
		db   *db.DB
	}{
		{fmt.Sprintf("min-rand-n%d", minN), "minimal", gen.Random(rng, gen.Positive(minN, 3*minN/2))},
		{fmt.Sprintf("min-col-cyc%d", cyc), "minimal", gen.ColoringDB(gen.Cycle(cyc), 3)},
		{fmt.Sprintf("all-rand-n%d", allN), "models", gen.Random(rng, gen.Positive(allN, 2*allN))},
	}
}

// runStreamWorkload enumerates one instance through the push API
// (buffered: all models collected before anything is visible) and the
// pull iterator, auditing set/count/NP identity and measuring
// time-to-first-model.
func runStreamWorkload(name, kind string, d *db.DB) (StreamCase, error) {
	sc := StreamCase{Name: name, Kind: kind, Atoms: d.N()}
	ctx := context.Background()

	pushOra := oracle.NewNP()
	pushEng := models.NewEngine(d, pushOra)
	pushKeys := map[string]bool{}
	t0 := time.Now()
	if kind == "minimal" {
		pushEng.MinimalModels(0, func(m logic.Interp) bool { pushKeys[m.Key()] = true; return true })
	} else {
		pushEng.EnumerateModels(0, func(m logic.Interp) bool { pushKeys[m.Key()] = true; return true })
	}
	bufferedT := time.Since(t0)
	sc.Models = len(pushKeys)
	sc.PushNP = pushOra.Counters().NPCalls

	iterOra := oracle.NewNP()
	iterEng := models.NewEngine(d, iterOra)
	var it models.ModelIterator
	if kind == "minimal" {
		it = iterEng.IterateMinimalModels(0)
	} else {
		it = iterEng.IterateModels(0)
	}
	defer it.Close()
	iterKeys := map[string]bool{}
	var firstT time.Duration
	t0 = time.Now()
	for {
		m, err := it.Next(ctx)
		if err != nil {
			if err != io.EOF {
				return sc, fmt.Errorf("stream %s: iterator terminated %v, want io.EOF", name, err)
			}
			break
		}
		if len(iterKeys) == 0 {
			firstT = time.Since(t0)
		}
		iterKeys[m.Key()] = true
	}
	iterT := time.Since(t0)
	sc.IterNP = iterOra.Counters().NPCalls

	if len(iterKeys) != len(pushKeys) {
		return sc, fmt.Errorf("stream %s: iterator yielded %d models, push %d", name, len(iterKeys), len(pushKeys))
	}
	for k := range pushKeys {
		if !iterKeys[k] {
			return sc, fmt.Errorf("stream %s: model missing from iterator enumeration", name)
		}
	}
	if sc.IterNP != sc.PushNP {
		return sc, fmt.Errorf("stream %s: NP total diverged: push %d, iterator %d", name, sc.PushNP, sc.IterNP)
	}

	sc.BufferedMS = float64(bufferedT.Microseconds()) / 1e3
	sc.FirstModelMS = float64(firstT.Microseconds()) / 1e3
	sc.IterTotalMS = float64(iterT.Microseconds()) / 1e3
	if firstT > 0 {
		sc.TTFMSpeedup = float64(bufferedT) / float64(firstT)
	}
	return sc, nil
}

// runStreamSweep is the time-to-first-model section of RunParallel:
// buffered push enumeration vs the pull iterator, with the
// set/count/NP-identity invariants enforced inline.
func runStreamSweep(scale Scale, w io.Writer, rep *ParallelReport) error {
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  streaming enumeration (buffered push vs pull iterator, time to first model):\n")
	fmt.Fprintf(w, "  %-14s %-8s %6s %8s %9s %10s %10s %10s %8s\n",
		"instance", "kind", "atoms", "models", "NP-calls", "buffered", "first", "drain", "TTFM")

	for _, fam := range streamDBs(scale) {
		sc, err := runStreamWorkload(fam.name, fam.kind, fam.db)
		if err != nil {
			return err
		}
		rep.Stream = append(rep.Stream, sc)
		fmt.Fprintf(w, "  %-14s %-8s %6d %8d %9d %10s %10s %10s %7.1fx\n",
			sc.Name, sc.Kind, sc.Atoms, sc.Models, sc.PushNP,
			fmtDuration(time.Duration(sc.BufferedMS*float64(time.Millisecond))),
			fmtDuration(time.Duration(sc.FirstModelMS*float64(time.Millisecond))),
			fmtDuration(time.Duration(sc.IterTotalMS*float64(time.Millisecond))),
			sc.TTFMSpeedup)
	}
	return nil
}
