package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"disjunct/internal/cache"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/par"
)

// ParallelCase is one instance family's serial-vs-parallel
// minimal-model enumeration comparison. The NP-call counts are the
// complexity-shape evidence: SerialNP is the strictly sequential
// signature-blocking algorithm's count; ParNP is the region-decomposed
// enumerator's count, which RunParallel asserts to be IDENTICAL for
// one worker and for Workers workers — parallelism moves wall-clock,
// never the oracle-call shape.
type ParallelCase struct {
	Name     string  `json:"name"`
	Atoms    int     `json:"atoms"`
	Models   int     `json:"minimal_models"`
	SerialMS float64 `json:"serial_ms"`
	Par1MS   float64 `json:"par1_ms"`
	ParNMS   float64 `json:"parN_ms"`
	SerialNP int64   `json:"serial_np_calls"`
	ParNP    int64   `json:"par_np_calls"`
}

// PoolCase compares repeated oracle workloads with SAT-solver pooling
// off (a fresh solver allocated per NP call) and on (solvers recycled
// through sync.Pool via Solver.Reset). Verdicts and call counts are
// identical by construction; only allocation behaviour differs.
type PoolCase struct {
	Name     string  `json:"name"`
	NPCalls  int64   `json:"np_calls"`
	FreshMS  float64 `json:"fresh_ms"`
	PooledMS float64 `json:"pooled_ms"`
}

// CacheCase is one (instance family × semantics) cached-vs-uncached
// comparison. The workload (HasModel, literal inference over every
// atom, one formula entailment, minimal-model enumeration — all pure
// one-shot-Sat paths) runs once on an uncached oracle and once on an
// oracle with a fresh verdict cache; RunParallel asserts that
// verdicts, model sets and logical NP-call totals are identical and
// that Hits+Misses == NPCalls with Hits > 0. Conflict counts are the
// solver-work-drop evidence; wall-clock is reported, never gated.
type CacheCase struct {
	Name          string  `json:"name"`
	Semantics     string  `json:"semantics"`
	Atoms         int     `json:"atoms"`
	NPCalls       int64   `json:"np_calls"` // logical total, identical cached/uncached
	Hits          int64   `json:"cache_hits"`
	Misses        int64   `json:"cache_misses"`
	HitRate       float64 `json:"hit_rate"`
	UncachedMS    float64 `json:"uncached_ms"`
	CachedMS      float64 `json:"cached_ms"`
	UncachedConfl int64   `json:"uncached_confl"`
	CachedConfl   int64   `json:"cached_confl"`
	// ParNP is the logical NP-call total of the cached worker-pool
	// minimal-model enumeration, asserted identical for 1 and N
	// workers (the cache layer preserves PR 1's worker invariance).
	ParNP int64 `json:"par_np_calls"`
}

// ParallelReport is the data behind the "Parallel oracle layer"
// section of the report (and the -json artefact).
type ParallelReport struct {
	Workers  int            `json:"workers"`
	Parallel []ParallelCase `json:"parallel"`
	Pool     []PoolCase     `json:"solver_pool"`
	Cache    []CacheCase    `json:"cache"`
	Session  []SessionCase  `json:"session,omitempty"`
	Batch    []BatchCase    `json:"batch,omitempty"`
	Stream   []StreamCase   `json:"stream,omitempty"`
	Store    []StoreCase    `json:"store,omitempty"`
	Cluster  []ClusterCase  `json:"cluster,omitempty"`
	Planner  []PlannerCase  `json:"planner,omitempty"`
}

func parallelDBs(scale Scale) []struct {
	name string
	db   *db.DB
} {
	rng := rand.New(rand.NewSource(17))
	sizes := []int{20, 28}
	cyc := 6
	if scale == Full {
		sizes = []int{30, 40}
		cyc = 8
	}
	var out []struct {
		name string
		db   *db.DB
	}
	for _, n := range sizes {
		out = append(out, struct {
			name string
			db   *db.DB
		}{fmt.Sprintf("rand-pos-n%d", n), gen.Random(rng, gen.Positive(n, 3*n/2))})
	}
	out = append(out, struct {
		name string
		db   *db.DB
	}{fmt.Sprintf("col-cyc%d", cyc), gen.ColoringDB(gen.Cycle(cyc), 3)})
	return out
}

// RunParallel measures serial vs worker-pool minimal-model enumeration
// and fresh vs pooled solver allocation, writing a human-readable
// section to w and returning the structured report. It FAILS (returns
// an error) if the parallel path's model set deviates from the serial
// one or its NP-call total varies with the worker count — the
// invariants EXPERIMENTS.md documents.
func RunParallel(scale Scale, w io.Writer) (*ParallelReport, error) {
	workers := par.Workers(0)
	rep := &ParallelReport{Workers: workers}

	fmt.Fprintln(w, "Parallel oracle layer")
	fmt.Fprintln(w, "=====================")
	fmt.Fprintf(w, "  %d worker(s) available; par1 = pool pinned to one worker\n\n", workers)
	fmt.Fprintf(w, "  %-14s %6s %8s %10s %10s %10s %10s %8s\n",
		"instance", "atoms", "|MM|", "serial", "par1", "parN", "NP-serial", "NP-par")

	collect := func(d *db.DB, run func(e *models.Engine, keys map[string]bool) int) (map[string]bool, int64, time.Duration) {
		o := oracle.NewNP()
		e := models.NewEngine(d, o)
		keys := map[string]bool{}
		start := time.Now()
		run(e, keys)
		return keys, o.Counters().NPCalls, time.Since(start)
	}

	for _, pc := range parallelDBs(scale) {
		d := pc.db
		serialKeys, serialNP, serialT := collect(d, func(e *models.Engine, keys map[string]bool) int {
			return e.MinimalModels(0, func(m logic.Interp) bool {
				keys[m.Key()] = true
				return true
			})
		})
		parRun := func(workers int) (map[string]bool, int64, time.Duration) {
			return collect(d, func(e *models.Engine, keys map[string]bool) int {
				return e.MinimalModelsPar(0, func(m logic.Interp) bool {
					keys[m.Key()] = true
					return true
				}, models.ParOptions{Workers: workers})
			})
		}
		par1Keys, par1NP, par1T := parRun(1)
		parNKeys, parNNP, parNT := parRun(workers)

		// The two harness-enforced invariants.
		if len(par1Keys) != len(serialKeys) || len(parNKeys) != len(serialKeys) {
			return rep, fmt.Errorf("parallel %s: model sets diverge (serial %d, par1 %d, parN %d)",
				pc.name, len(serialKeys), len(par1Keys), len(parNKeys))
		}
		for k := range serialKeys {
			if !par1Keys[k] || !parNKeys[k] {
				return rep, fmt.Errorf("parallel %s: minimal model missing from parallel enumeration", pc.name)
			}
		}
		if par1NP != parNNP {
			return rep, fmt.Errorf("parallel %s: NP-call count depends on worker count (par1 %d, par%d %d)",
				pc.name, par1NP, workers, parNNP)
		}

		rep.Parallel = append(rep.Parallel, ParallelCase{
			Name:     pc.name,
			Atoms:    d.N(),
			Models:   len(serialKeys),
			SerialMS: float64(serialT.Microseconds()) / 1e3,
			Par1MS:   float64(par1T.Microseconds()) / 1e3,
			ParNMS:   float64(parNT.Microseconds()) / 1e3,
			SerialNP: serialNP,
			ParNP:    par1NP,
		})
		fmt.Fprintf(w, "  %-14s %6d %8d %10s %10s %10s %10d %8d\n",
			pc.name, d.N(), len(serialKeys),
			fmtDuration(serialT), fmtDuration(par1T), fmtDuration(parNT), serialNP, par1NP)
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "  solver pool (same workload, pooling off vs on):\n")
	fmt.Fprintf(w, "  %-14s %10s %10s %10s\n", "instance", "NP-calls", "fresh", "pooled")
	for _, pc := range parallelDBs(scale) {
		d := pc.db
		runOnce := func(pooled bool) (int64, time.Duration) {
			o := oracle.NewNP()
			o.SetPooling(pooled)
			e := models.NewEngine(d, o)
			start := time.Now()
			e.MinimalModels(0, func(logic.Interp) bool { return true })
			return o.Counters().NPCalls, time.Since(start)
		}
		calls, freshT := runOnce(false)
		calls2, pooledT := runOnce(true)
		if calls != calls2 {
			return rep, fmt.Errorf("pool %s: pooling changed the NP-call count (%d vs %d)", pc.name, calls, calls2)
		}
		rep.Pool = append(rep.Pool, PoolCase{
			Name:     pc.name,
			NPCalls:  calls,
			FreshMS:  float64(freshT.Microseconds()) / 1e3,
			PooledMS: float64(pooledT.Microseconds()) / 1e3,
		})
		fmt.Fprintf(w, "  %-14s %10d %10s %10s\n", pc.name, calls, fmtDuration(freshT), fmtDuration(pooledT))
	}

	if err := runCacheSweep(scale, workers, w, rep); err != nil {
		return rep, err
	}
	if err := runSessionSweep(scale, w, rep); err != nil {
		return rep, err
	}
	if err := runBatchSweep(scale, w, rep); err != nil {
		return rep, err
	}
	if err := runStreamSweep(scale, w, rep); err != nil {
		return rep, err
	}
	if err := runStoreSweep(scale, w, rep); err != nil {
		return rep, err
	}
	if err := runClusterSweep(scale, w, rep); err != nil {
		return rep, err
	}
	if err := runPlannerSweep(scale, w, rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// cacheDBs is the instance set of the cached-vs-uncached sweep —
// slightly smaller than parallelDBs because the workload multiplies
// each instance by a per-atom literal-inference pass.
func cacheDBs(scale Scale) []struct {
	name string
	db   *db.DB
} {
	rng := rand.New(rand.NewSource(41))
	sizes := []int{18, 22}
	cyc := 6
	if scale == Full {
		sizes = []int{26, 32}
		cyc = 8
	}
	var out []struct {
		name string
		db   *db.DB
	}
	for _, n := range sizes {
		out = append(out, struct {
			name string
			db   *db.DB
		}{fmt.Sprintf("rand-pos-n%d", n), gen.Random(rng, gen.Positive(n, 3*n/2))})
	}
	out = append(out, struct {
		name string
		db   *db.DB
	}{fmt.Sprintf("col-cyc%d", cyc), gen.ColoringDB(gen.Cycle(cyc), 3)})
	return out
}

// cacheRun is one execution of the cache-sweep workload.
type cacheRun struct {
	verdicts []bool
	models   map[string]bool
	counters oracle.Counters
	elapsed  time.Duration
}

// runCacheWorkload runs the pure one-shot-Sat workload — HasModel,
// literal inference for every atom, one formula entailment, serial
// minimal-model enumeration — on a fresh oracle, cached or not. Every
// oracle call flows through NP.Sat, so with the cache attached
// CacheHits+CacheMisses accounts for the complete logical call total.
func runCacheWorkload(d *db.DB, part models.Partition, withCache bool) cacheRun {
	o := oracle.NewNP()
	if withCache {
		o.WithCache(cache.New(0))
	}
	e := models.NewEngine(d, o)
	start := time.Now()
	var verdicts []bool
	ok, _ := e.HasModel()
	verdicts = append(verdicts, ok)
	for v := 0; v < d.N(); v++ {
		verdicts = append(verdicts, e.AtomFalseInAllMinimal(logic.Atom(v), part))
	}
	f := logic.Or(logic.AtomF(0), logic.AtomF(1), logic.AtomF(2))
	verdicts = append(verdicts, e.MMEntails(f, part))
	keys := map[string]bool{}
	e.MinimalModelsPZ(part, 0, func(m logic.Interp) bool {
		keys[m.Key()] = true
		return true
	})
	return cacheRun{verdicts, keys, o.Counters(), time.Since(start)}
}

// signatureSet enumerates MM(DB;P;Z) with the worker-pool enumerator
// on a cache-backed (or plain) oracle and returns the (P,Q)-signature
// set plus the logical NP-call total. Signatures (not full models) are
// collected because parallel representatives may differ on Z atoms.
func signatureSet(d *db.DB, part models.Partition, workers int, withCache bool) (map[string]bool, int64) {
	o := oracle.NewNP()
	if withCache {
		o.WithCache(cache.New(0))
	}
	e := models.NewEngine(d, o)
	pq := part.P.Clone()
	pq.UnionWith(part.Q)
	keys := map[string]bool{}
	e.MinimalModelsPZPar(part, 0, func(m logic.Interp) bool {
		keys[m.True.Clone().IntersectWith(pq).Key()] = true
		return true
	}, models.ParOptions{Workers: workers})
	return keys, o.Counters().NPCalls
}

// runCacheSweep is the cached-vs-uncached section of RunParallel: for
// each instance family it runs the GCWA workload (full minimisation)
// and an ECWA workload (a ⟨P;Q;Z⟩ partition with all three parts
// non-empty) with and without the verdict cache, asserting the audit
// invariants and recording the comparison.
func runCacheSweep(scale Scale, workers int, w io.Writer, rep *ParallelReport) error {
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  verdict cache (same workload, cache off vs on):\n")
	fmt.Fprintf(w, "  %-14s %-5s %9s %6s %6s %7s %10s %10s %9s %9s\n",
		"instance", "sem", "NP-calls", "hits", "miss", "rate", "uncached", "cached", "confl-u", "confl-c")

	for _, pc := range cacheDBs(scale) {
		d := pc.db
		n := d.N()
		for _, sem := range []struct {
			name string
			part models.Partition
		}{
			{"GCWA", models.FullMin(n)},
			{"ECWA", models.NewPartition(n, atomRange(0, 2*n/3), atomRange(5*n/6, n))},
		} {
			plain := runCacheWorkload(d, sem.part, false)
			cached := runCacheWorkload(d, sem.part, true)

			// Audit invariants: enabling the cache must not move any
			// verdict, any model, or the logical NP-call total, and the
			// hit/miss split must account for every call.
			if len(plain.verdicts) != len(cached.verdicts) {
				return fmt.Errorf("cache %s/%s: verdict streams differ in length", pc.name, sem.name)
			}
			for i := range plain.verdicts {
				if plain.verdicts[i] != cached.verdicts[i] {
					return fmt.Errorf("cache %s/%s: verdict %d flipped with cache on", pc.name, sem.name, i)
				}
			}
			if len(plain.models) != len(cached.models) {
				return fmt.Errorf("cache %s/%s: model sets diverge (%d uncached, %d cached)",
					pc.name, sem.name, len(plain.models), len(cached.models))
			}
			for k := range plain.models {
				if !cached.models[k] {
					return fmt.Errorf("cache %s/%s: minimal model missing from cached enumeration", pc.name, sem.name)
				}
			}
			if plain.counters.NPCalls != cached.counters.NPCalls {
				return fmt.Errorf("cache %s/%s: logical NP-call total moved (%d uncached, %d cached)",
					pc.name, sem.name, plain.counters.NPCalls, cached.counters.NPCalls)
			}
			hits, misses := cached.counters.CacheHits, cached.counters.CacheMisses
			if hits+misses != cached.counters.NPCalls {
				return fmt.Errorf("cache %s/%s: hits(%d)+misses(%d) != NP calls(%d)",
					pc.name, sem.name, hits, misses, cached.counters.NPCalls)
			}
			if hits == 0 {
				return fmt.Errorf("cache %s/%s: zero cache hits on a workload with built-in redundancy", pc.name, sem.name)
			}

			// Worker-pool enumeration on a cached oracle: logical totals
			// stay worker-count-invariant and match the uncached pool.
			sig1, np1 := signatureSet(d, sem.part, 1, true)
			sigN, npN := signatureSet(d, sem.part, workers, true)
			_, npU := signatureSet(d, sem.part, 1, false)
			if np1 != npN {
				return fmt.Errorf("cache %s/%s: cached parallel NP total depends on workers (par1 %d, par%d %d)",
					pc.name, sem.name, np1, workers, npN)
			}
			if np1 != npU {
				return fmt.Errorf("cache %s/%s: cache moved the parallel NP total (%d cached, %d uncached)",
					pc.name, sem.name, np1, npU)
			}
			if len(sig1) != len(sigN) {
				return fmt.Errorf("cache %s/%s: cached parallel signature sets diverge", pc.name, sem.name)
			}
			for k := range sig1 {
				if !sigN[k] {
					return fmt.Errorf("cache %s/%s: signature missing at %d workers", pc.name, sem.name, workers)
				}
			}

			rate := float64(hits) / float64(hits+misses)
			rep.Cache = append(rep.Cache, CacheCase{
				Name:          pc.name,
				Semantics:     sem.name,
				Atoms:         n,
				NPCalls:       cached.counters.NPCalls,
				Hits:          hits,
				Misses:        misses,
				HitRate:       rate,
				UncachedMS:    float64(plain.elapsed.Microseconds()) / 1e3,
				CachedMS:      float64(cached.elapsed.Microseconds()) / 1e3,
				UncachedConfl: plain.counters.SATConfl,
				CachedConfl:   cached.counters.SATConfl,
				ParNP:         np1,
			})
			fmt.Fprintf(w, "  %-14s %-5s %9d %6d %6d %6.1f%% %10s %10s %9d %9d\n",
				pc.name, sem.name, cached.counters.NPCalls, hits, misses, 100*rate,
				fmtDuration(plain.elapsed), fmtDuration(cached.elapsed),
				plain.counters.SATConfl, cached.counters.SATConfl)
		}
	}
	return nil
}

// atomRange returns the atoms [lo, hi).
func atomRange(lo, hi int) []logic.Atom {
	var out []logic.Atom
	for a := lo; a < hi; a++ {
		out = append(out, logic.Atom(a))
	}
	return out
}
