package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/par"
)

// ParallelCase is one instance family's serial-vs-parallel
// minimal-model enumeration comparison. The NP-call counts are the
// complexity-shape evidence: SerialNP is the strictly sequential
// signature-blocking algorithm's count; ParNP is the region-decomposed
// enumerator's count, which RunParallel asserts to be IDENTICAL for
// one worker and for Workers workers — parallelism moves wall-clock,
// never the oracle-call shape.
type ParallelCase struct {
	Name     string  `json:"name"`
	Atoms    int     `json:"atoms"`
	Models   int     `json:"minimal_models"`
	SerialMS float64 `json:"serial_ms"`
	Par1MS   float64 `json:"par1_ms"`
	ParNMS   float64 `json:"parN_ms"`
	SerialNP int64   `json:"serial_np_calls"`
	ParNP    int64   `json:"par_np_calls"`
}

// PoolCase compares repeated oracle workloads with SAT-solver pooling
// off (a fresh solver allocated per NP call) and on (solvers recycled
// through sync.Pool via Solver.Reset). Verdicts and call counts are
// identical by construction; only allocation behaviour differs.
type PoolCase struct {
	Name     string  `json:"name"`
	NPCalls  int64   `json:"np_calls"`
	FreshMS  float64 `json:"fresh_ms"`
	PooledMS float64 `json:"pooled_ms"`
}

// ParallelReport is the data behind the "Parallel oracle layer"
// section of the report (and the -json artefact).
type ParallelReport struct {
	Workers  int            `json:"workers"`
	Parallel []ParallelCase `json:"parallel"`
	Pool     []PoolCase     `json:"solver_pool"`
}

func parallelDBs(scale Scale) []struct {
	name string
	db   *db.DB
} {
	rng := rand.New(rand.NewSource(17))
	sizes := []int{20, 28}
	cyc := 6
	if scale == Full {
		sizes = []int{30, 40}
		cyc = 8
	}
	var out []struct {
		name string
		db   *db.DB
	}
	for _, n := range sizes {
		out = append(out, struct {
			name string
			db   *db.DB
		}{fmt.Sprintf("rand-pos-n%d", n), gen.Random(rng, gen.Positive(n, 3*n/2))})
	}
	out = append(out, struct {
		name string
		db   *db.DB
	}{fmt.Sprintf("col-cyc%d", cyc), gen.ColoringDB(gen.Cycle(cyc), 3)})
	return out
}

// RunParallel measures serial vs worker-pool minimal-model enumeration
// and fresh vs pooled solver allocation, writing a human-readable
// section to w and returning the structured report. It FAILS (returns
// an error) if the parallel path's model set deviates from the serial
// one or its NP-call total varies with the worker count — the
// invariants EXPERIMENTS.md documents.
func RunParallel(scale Scale, w io.Writer) (*ParallelReport, error) {
	workers := par.Workers(0)
	rep := &ParallelReport{Workers: workers}

	fmt.Fprintln(w, "Parallel oracle layer")
	fmt.Fprintln(w, "=====================")
	fmt.Fprintf(w, "  %d worker(s) available; par1 = pool pinned to one worker\n\n", workers)
	fmt.Fprintf(w, "  %-14s %6s %8s %10s %10s %10s %10s %8s\n",
		"instance", "atoms", "|MM|", "serial", "par1", "parN", "NP-serial", "NP-par")

	collect := func(d *db.DB, run func(e *models.Engine, keys map[string]bool) int) (map[string]bool, int64, time.Duration) {
		o := oracle.NewNP()
		e := models.NewEngine(d, o)
		keys := map[string]bool{}
		start := time.Now()
		run(e, keys)
		return keys, o.Counters().NPCalls, time.Since(start)
	}

	for _, pc := range parallelDBs(scale) {
		d := pc.db
		serialKeys, serialNP, serialT := collect(d, func(e *models.Engine, keys map[string]bool) int {
			return e.MinimalModels(0, func(m logic.Interp) bool {
				keys[m.Key()] = true
				return true
			})
		})
		parRun := func(workers int) (map[string]bool, int64, time.Duration) {
			return collect(d, func(e *models.Engine, keys map[string]bool) int {
				return e.MinimalModelsPar(0, func(m logic.Interp) bool {
					keys[m.Key()] = true
					return true
				}, models.ParOptions{Workers: workers})
			})
		}
		par1Keys, par1NP, par1T := parRun(1)
		parNKeys, parNNP, parNT := parRun(workers)

		// The two harness-enforced invariants.
		if len(par1Keys) != len(serialKeys) || len(parNKeys) != len(serialKeys) {
			return rep, fmt.Errorf("parallel %s: model sets diverge (serial %d, par1 %d, parN %d)",
				pc.name, len(serialKeys), len(par1Keys), len(parNKeys))
		}
		for k := range serialKeys {
			if !par1Keys[k] || !parNKeys[k] {
				return rep, fmt.Errorf("parallel %s: minimal model missing from parallel enumeration", pc.name)
			}
		}
		if par1NP != parNNP {
			return rep, fmt.Errorf("parallel %s: NP-call count depends on worker count (par1 %d, par%d %d)",
				pc.name, par1NP, workers, parNNP)
		}

		rep.Parallel = append(rep.Parallel, ParallelCase{
			Name:     pc.name,
			Atoms:    d.N(),
			Models:   len(serialKeys),
			SerialMS: float64(serialT.Microseconds()) / 1e3,
			Par1MS:   float64(par1T.Microseconds()) / 1e3,
			ParNMS:   float64(parNT.Microseconds()) / 1e3,
			SerialNP: serialNP,
			ParNP:    par1NP,
		})
		fmt.Fprintf(w, "  %-14s %6d %8d %10s %10s %10s %10d %8d\n",
			pc.name, d.N(), len(serialKeys),
			fmtDuration(serialT), fmtDuration(par1T), fmtDuration(parNT), serialNP, par1NP)
	}

	fmt.Fprintln(w)
	fmt.Fprintf(w, "  solver pool (same workload, pooling off vs on):\n")
	fmt.Fprintf(w, "  %-14s %10s %10s %10s\n", "instance", "NP-calls", "fresh", "pooled")
	for _, pc := range parallelDBs(scale) {
		d := pc.db
		runOnce := func(pooled bool) (int64, time.Duration) {
			o := oracle.NewNP()
			o.SetPooling(pooled)
			e := models.NewEngine(d, o)
			start := time.Now()
			e.MinimalModels(0, func(logic.Interp) bool { return true })
			return o.Counters().NPCalls, time.Since(start)
		}
		calls, freshT := runOnce(false)
		calls2, pooledT := runOnce(true)
		if calls != calls2 {
			return rep, fmt.Errorf("pool %s: pooling changed the NP-call count (%d vs %d)", pc.name, calls, calls2)
		}
		rep.Pool = append(rep.Pool, PoolCase{
			Name:     pc.name,
			NPCalls:  calls,
			FreshMS:  float64(freshT.Microseconds()) / 1e3,
			PooledMS: float64(pooledT.Microseconds()) / 1e3,
		})
		fmt.Fprintf(w, "  %-14s %10d %10s %10s\n", pc.name, calls, fmtDuration(freshT), fmtDuration(pooledT))
	}
	return rep, nil
}
