// Package oracle provides instrumented complexity oracles.
//
// The paper locates problems in the polynomial hierarchy; the
// executable counterpart of "membership in Π₂ᵖ" is an algorithm whose
// only super-polynomial ingredient is calls to an NP oracle (and for
// P^Σ₂ᵖ[O(log n)], O(log n) calls to a Σ₂ᵖ oracle). This package wraps
// the SAT solver (the NP oracle) and the 2-QBF solver (the Σ₂ᵖ oracle)
// behind counters, so that every semantics algorithm can *report* its
// oracle usage and the benchmark harness can verify the shape of each
// table cell: 0 NP calls for the P cells, O(1)/O(n) NP calls for the
// (co)NP cells, and O(log n) Σ₂ᵖ calls for the Δ-log cells.
package oracle

import (
	"fmt"

	"disjunct/internal/logic"
	"disjunct/internal/sat"
)

// Counters tallies oracle usage for one inference task.
type Counters struct {
	NPCalls     int64 // SAT-oracle invocations
	Sigma2Calls int64 // Σ₂ᵖ-oracle invocations
	SATConfl    int64 // total SAT conflicts inside NP calls
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.NPCalls += other.NPCalls
	c.Sigma2Calls += other.Sigma2Calls
	c.SATConfl += other.SATConfl
}

// String renders the counters compactly.
func (c Counters) String() string {
	return fmt.Sprintf("NP=%d Σ2=%d confl=%d", c.NPCalls, c.Sigma2Calls, c.SATConfl)
}

// NP is an instrumented NP oracle over a fixed propositional
// vocabulary. Each query is an independent satisfiability question
// about a CNF; a fresh solver is built per query (simple and stateless;
// the CNFs the semantics algorithms build share little structure
// between queries).
type NP struct {
	counters Counters
}

// NewNP returns a fresh NP oracle.
func NewNP() *NP { return &NP{} }

// Counters returns the usage counters so far.
func (o *NP) Counters() Counters { return o.counters }

// Reset zeroes the counters.
func (o *NP) Reset() { o.counters = Counters{} }

// convert translates a logic.CNF into solver clauses.
func convert(c logic.CNF) [][]sat.Lit {
	out := make([][]sat.Lit, len(c))
	for i, cl := range c {
		sc := make([]sat.Lit, len(cl))
		for j, l := range cl {
			sc[j] = sat.MkLit(int(l.Atom()), l.IsPos())
		}
		out[i] = sc
	}
	return out
}

// Sat reports whether the CNF over nVars variables is satisfiable and,
// if so, returns one model restricted to variables 0..nVars-1. nVars
// must cover every atom occurring in the CNF (including Tseitin atoms).
func (o *NP) Sat(nVars int, cnf logic.CNF) (bool, logic.Interp) {
	o.counters.NPCalls++
	s := sat.New(nVars)
	for _, cl := range convert(cnf) {
		if !s.AddClause(cl...) {
			o.counters.SATConfl += s.Stats().Conflicts
			return false, logic.Interp{}
		}
	}
	st := s.Solve()
	o.counters.SATConfl += s.Stats().Conflicts
	if st != sat.Sat {
		return false, logic.Interp{}
	}
	m := logic.NewInterp(nVars)
	for v := 0; v < nVars; v++ {
		m.True.SetTo(v, s.Model(v))
	}
	return true, m
}

// SatSolver builds an incremental solver preloaded with the CNF and
// counts its construction as one NP call; additional Solve calls on the
// returned solver should be counted by the caller via CountCall.
func (o *NP) SatSolver(nVars int, cnf logic.CNF) *sat.Solver {
	o.counters.NPCalls++
	s := sat.New(nVars)
	for _, cl := range convert(cnf) {
		if !s.AddClause(cl...) {
			break
		}
	}
	return s
}

// CountCall records one additional NP-oracle invocation (for callers
// driving an incremental solver directly).
func (o *NP) CountCall() { o.counters.NPCalls++ }

// CountSigma2 records one Σ₂ᵖ-oracle invocation.
func (o *NP) CountSigma2() { o.counters.Sigma2Calls++ }

// Valid reports whether formula f is valid over vocabulary voc
// (one NP call on the negation).
func (o *NP) Valid(f *logic.Formula, voc *logic.Vocabulary) bool {
	w := voc.Clone()
	cnf := logic.TseitinNeg(f, w)
	isSat, _ := o.Sat(w.Size(), cnf)
	return !isSat
}

// Entails reports whether every model of the CNF (over the first
// nOrig variables) satisfies formula f: one NP call on CNF ∧ ¬f.
func (o *NP) Entails(nOrig int, cnf logic.CNF, f *logic.Formula, voc *logic.Vocabulary) bool {
	w := voc.Clone()
	neg := logic.TseitinNeg(f, w)
	all := make(logic.CNF, 0, len(cnf)+len(neg))
	all = append(all, cnf...)
	all = append(all, neg...)
	isSat, _ := o.Sat(w.Size(), all)
	return !isSat
}
