// Package oracle provides instrumented complexity oracles.
//
// The paper locates problems in the polynomial hierarchy; the
// executable counterpart of "membership in Π₂ᵖ" is an algorithm whose
// only super-polynomial ingredient is calls to an NP oracle (and for
// P^Σ₂ᵖ[O(log n)], O(log n) calls to a Σ₂ᵖ oracle). This package wraps
// the SAT solver (the NP oracle) and the 2-QBF solver (the Σ₂ᵖ oracle)
// behind counters, so that every semantics algorithm can *report* its
// oracle usage and the benchmark harness can verify the shape of each
// table cell: 0 NP calls for the P cells, O(1)/O(n) NP calls for the
// (co)NP cells, and O(log n) Σ₂ᵖ calls for the Δ-log cells.
//
// The oracle is safe for concurrent use: the counters are atomic, so
// one instrumented oracle can be shared by a pool of workers (package
// par and the parallel enumerators of package models) without losing
// the per-cell call-count audit. Solvers for one-shot Sat queries are
// drawn from a process-wide sync.Pool and recycled via Solver.Reset,
// amortising watcher-list and arena allocations across queries.
//
// An opt-in memoization layer (WithCache) interns each one-shot Sat
// query into a canonical structural key (package cache) and reuses
// verdicts across structurally equivalent queries. The layer is
// replay-identical: a cache hit returns exactly the (verdict, model)
// pair a fresh solve would have produced — UNSAT verdicts are shared
// across the whole isomorphism class (any solve of an unsatisfiable
// CNF returns false), while SAT witnesses are replayed only for
// byte-identical repeat queries (the CDCL solver is deterministic).
// Consequently enabling the cache never changes any caller's control
// flow: NPCalls totals, verdicts, and enumerated model sets are
// identical with the cache on or off, and CacheHits + CacheMisses
// equals the number of one-shot Sat queries — the audit invariant the
// bench harness asserts. Hits skip the solver entirely, so SATConfl
// (solver work) and wall-clock drop while the logical call counts
// stand still.
package oracle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/cache"
	"disjunct/internal/faults"
	"disjunct/internal/logic"
	"disjunct/internal/sat"
)

// Counters is a snapshot of oracle usage for one inference task.
type Counters struct {
	NPCalls     int64 // SAT-oracle invocations (logical count: hits included)
	Sigma2Calls int64 // Σ₂ᵖ-oracle invocations
	SATConfl    int64 // total SAT conflicts inside NP calls
	CacheHits   int64 // one-shot Sat queries answered from the verdict cache
	CacheMisses int64 // one-shot Sat queries that reached the solver (cache enabled)
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.NPCalls += other.NPCalls
	c.Sigma2Calls += other.Sigma2Calls
	c.SATConfl += other.SATConfl
	c.CacheHits += other.CacheHits
	c.CacheMisses += other.CacheMisses
}

// String renders the counters compactly.
func (c Counters) String() string {
	if c.CacheHits+c.CacheMisses > 0 {
		return fmt.Sprintf("NP=%d Σ2=%d confl=%d hit=%d miss=%d",
			c.NPCalls, c.Sigma2Calls, c.SATConfl, c.CacheHits, c.CacheMisses)
	}
	return fmt.Sprintf("NP=%d Σ2=%d confl=%d", c.NPCalls, c.Sigma2Calls, c.SATConfl)
}

// NP is an instrumented NP oracle over a fixed propositional
// vocabulary. Each query is an independent satisfiability question
// about a CNF; solvers are recycled through a pool (see Sat), so
// repeated queries reuse watcher lists and per-variable arrays rather
// than reallocating them.
//
// All methods are safe for concurrent use. The counters are updated
// atomically; Counters() returns a consistent-enough snapshot for the
// harness' before/after deltas (each worker's calls land exactly once,
// so totals over a quiesced oracle are exact).
type NP struct {
	npCalls     atomic.Int64
	sigma2Calls atomic.Int64
	satConfl    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	noPool      atomic.Bool
	cache       atomic.Pointer[cache.Cache]
	bres        atomic.Pointer[budget.B]
	inj         atomic.Pointer[faults.Injector]
}

// NewNP returns a fresh NP oracle.
func NewNP() *NP { return &NP{} }

// WithCache attaches a verdict cache to the oracle's one-shot Sat
// path and returns the oracle (chainable: oracle.NewNP().WithCache(c)).
// A nil cache detaches the layer. The cache may be shared between any
// number of oracles — keys are canonical, so structurally equivalent
// queries from different semantics (or different databases) reuse each
// other's verdicts; hit/miss accounting stays per-oracle.
//
// Caching is replay-identical (see the package comment): it never
// changes verdicts, witness models, or logical NP-call totals — only
// how much solver work backs them.
func (o *NP) WithCache(c *cache.Cache) *NP {
	o.cache.Store(c)
	return o
}

// Cache returns the attached verdict cache, nil when caching is off.
func (o *NP) Cache() *cache.Cache { return o.cache.Load() }

// WithBudget attaches a shared query budget and returns the oracle
// (chainable). Every subsequent oracle call charges the budget: one
// NP call per Sat/SatSolver/CountCall, plus conflicts/propagations/
// deadline polled inside the solver. When a limit trips, the call
// raises a budget.Interrupt panic, converted into a typed error by
// the `defer budget.Recover(&err)` at the semantics/enumerator API
// boundary — counters reflect exactly the work performed before the
// interruption. A nil budget (the default) imposes no limits.
func (o *NP) WithBudget(b *budget.B) *NP {
	o.bres.Store(b)
	return o
}

// Budget returns the attached budget, nil when unlimited.
func (o *NP) Budget() *budget.B { return o.bres.Load() }

// WithFaults attaches a seeded fault injector to the one-shot solve
// path and returns the oracle (chainable). Injected faults are
// deterministic in (seed, draw sequence): latency sleeps briefly
// before solving, transient failures are retried with bounded backoff
// (promoted to faults.ErrExhausted when retries run out), and
// spurious cancellations surface as budget.ErrCanceled. Counters are
// unaffected by retries — a query is one logical NP call no matter
// how many injected attempts it takes — so a faulted run that
// completes is counter-identical to a faultless one. Callers must
// reach the oracle through a budget-aware API boundary (all semantics
// packages and budgeted enumerators), which converts injected trips
// into typed errors. A nil injector (the default) injects nothing.
func (o *NP) WithFaults(in *faults.Injector) *NP {
	o.inj.Store(in)
	return o
}

// Faults returns the attached fault injector, nil when off.
func (o *NP) Faults() *faults.Injector { return o.inj.Load() }

// chargeCall debits one NP call from the attached budget, raising a
// budget.Interrupt if the budget is exhausted. Called before the
// counters record the call, so interrupted queries are never counted.
func (o *NP) chargeCall() {
	if err := o.bres.Load().ChargeNPCall(); err != nil {
		budget.Trip(err)
	}
}

// Counters returns the usage counters so far.
func (o *NP) Counters() Counters {
	return Counters{
		NPCalls:     o.npCalls.Load(),
		Sigma2Calls: o.sigma2Calls.Load(),
		SATConfl:    o.satConfl.Load(),
		CacheHits:   o.cacheHits.Load(),
		CacheMisses: o.cacheMisses.Load(),
	}
}

// Reset zeroes the counters (not the attached cache — detach with
// WithCache(nil) or create a fresh cache to drop memoised verdicts).
func (o *NP) Reset() {
	o.npCalls.Store(0)
	o.sigma2Calls.Store(0)
	o.satConfl.Store(0)
	o.cacheHits.Store(0)
	o.cacheMisses.Store(0)
}

// SetPooling toggles solver reuse for Sat queries (on by default).
// Disabling it makes every query build a fresh solver — the baseline
// of BenchmarkOracleSatFresh; answers and call counts are identical
// either way.
func (o *NP) SetPooling(on bool) { o.noPool.Store(!on) }

// solverPool recycles CDCL solvers across one-shot Sat queries,
// process-wide: the pool is keyed by nothing (Solver.Reset regrows to
// any size), so all oracles share the warm instances.
var solverPool = sync.Pool{New: func() any { return sat.New(0) }}

// litScratch pools the per-clause literal buffer used when loading a
// logic.CNF into a solver (Solver.AddClause copies its argument, so
// the buffer is safe to reuse immediately).
var litScratch = sync.Pool{New: func() any { s := make([]sat.Lit, 0, 64); return &s }}

// getSolver returns a solver ready for nVars variables, pooled unless
// pooling is disabled.
func (o *NP) getSolver(nVars int) *sat.Solver {
	if o.noPool.Load() {
		return sat.New(nVars)
	}
	s := solverPool.Get().(*sat.Solver)
	s.Reset(nVars)
	return s
}

// putSolver returns a pooled solver after a query.
func (o *NP) putSolver(s *sat.Solver) {
	if o.noPool.Load() {
		return
	}
	solverPool.Put(s)
}

// load translates a logic.CNF into solver clauses clause-by-clause
// through a pooled scratch buffer (no per-query [][]Lit allocation).
// It returns false on an UNSAT-at-level-0 conflict.
func load(s *sat.Solver, cnf logic.CNF) bool {
	bufp := litScratch.Get().(*[]sat.Lit)
	buf := *bufp
	ok := true
	for _, cl := range cnf {
		buf = buf[:0]
		for _, l := range cl {
			buf = append(buf, sat.MkLit(int(l.Atom()), l.IsPos()))
		}
		if !s.AddClause(buf...) {
			ok = false
			break
		}
	}
	*bufp = buf
	litScratch.Put(bufp)
	return ok
}

// Sat reports whether the CNF over nVars variables is satisfiable and,
// if so, returns one model restricted to variables 0..nVars-1. nVars
// must cover every atom occurring in the CNF (including Tseitin atoms).
//
// With a cache attached (WithCache) the query is first interned: an
// UNSAT verdict memoised for any structurally equivalent CNF, or a SAT
// witness memoised for this exact query, is returned without touching
// the solver. Either way the answer is bit-identical to what solving
// would produce, and NPCalls counts the query exactly once.
func (o *NP) Sat(nVars int, cnf logic.CNF) (bool, logic.Interp) {
	o.chargeCall()
	o.npCalls.Add(1)
	c := o.cache.Load()
	if c == nil {
		return o.solveSat(nVars, cnf)
	}
	raw := cache.RawKey(nVars, cnf)
	if e, ok := c.FastGet(raw); ok {
		// Byte-identical repeat of a parked first sighting: replay its
		// verdict (and witness) exactly as the canonical store would.
		o.cacheHits.Add(1)
		if !e.Sat {
			return false, logic.Interp{}
		}
		return true, logic.Interp{True: e.Model.Clone()}
	}
	fp, lits := cache.Fingerprint(nVars, cnf)
	seen := c.SeenClass(fp)
	if !seen && lits <= cache.LazyRetainLimit {
		// First sighting of a small structural class: skip the expensive
		// canonical labeling, solve as a miss (exactly what the canonical
		// path would do on a cold key), and park the verdict for promotion
		// if the class ever repeats.
		o.cacheMisses.Add(1)
		isSat, m := o.solveSat(nVars, cnf)
		ent := cache.Entry{Sat: isSat, Raw: raw}
		if isSat {
			ent.Model = m.True.Clone()
		}
		c.PutLazy(fp, raw, nVars, cnf, lits, ent)
		return isSat, m
	}
	if seen {
		// The class has been sighted before: move any parked records into
		// the canonical store first, so the lookup below sees exactly the
		// entries an always-canonical cache would hold.
		c.Promote(fp)
	}
	cn := cache.Canonicalize(nVars, cnf)
	if e, ok := c.Get(cn.Key); ok {
		if !e.Sat {
			// UNSAT is renaming-invariant: any CNF in the key's
			// isomorphism class is unsatisfiable.
			o.cacheHits.Add(1)
			return false, logic.Interp{}
		}
		if e.Raw == cn.Raw {
			// Exact repeat of the producing query: replay the witness
			// the (deterministic) solver returned for it.
			o.cacheHits.Add(1)
			return true, logic.Interp{True: e.Model.Clone()}
		}
		// Isomorphic to a known-SAT query but not byte-identical: the
		// verdict is known, but replaying the witness could hand the
		// caller a different model than a fresh solve — solve and count
		// a miss so hits+misses keeps matching solver-equivalent work.
	}
	o.cacheMisses.Add(1)
	isSat, m := o.solveSat(nVars, cnf)
	ent := cache.Entry{Sat: isSat, Raw: cn.Raw}
	if isSat {
		ent.Model = m.True.Clone()
	}
	c.Put(cn.Key, ent)
	return isSat, m
}

// solveSat is the uncached one-shot satisfiability path. With a fault
// injector attached, each solve attempt may draw an injected fault:
// latency delays the attempt, a transient failure aborts it and is
// retried with bounded backoff (each retry is the same logical NP
// call — counters are charged once, by Sat), and a cancellation or
// exhausted retry budget raises a budget.Interrupt.
func (o *NP) solveSat(nVars int, cnf logic.CNF) (bool, logic.Interp) {
	if in := o.inj.Load(); in != nil {
	attempts:
		for attempt := 0; ; attempt++ {
			kind, n := in.Draw()
			switch kind {
			case faults.Latency:
				in.SleepFor(n)
			case faults.Transient:
				if attempt >= faults.MaxRetries {
					budget.Trip(faults.ErrExhausted)
				}
				// Full-jitter backoff keyed to this draw: concurrent
				// retries spread out instead of hammering the solver
				// pool in lockstep.
				time.Sleep(in.BackoffFor(n, attempt))
				continue attempts
			case faults.Cancel:
				budget.Trip(faults.ErrInjectedCancel)
			}
			break
		}
	}
	s := o.getSolver(nVars)
	s.SetBudget(o.bres.Load())
	if !load(s, cnf) {
		// UNSAT detected while adding (a top-level conflict): count it
		// as one conflict — the solver's own statistic only tracks
		// conflicts found during search.
		o.satConfl.Add(s.Stats().Conflicts + 1)
		o.putSolver(s)
		return false, logic.Interp{}
	}
	st := s.Solve()
	o.satConfl.Add(s.Stats().Conflicts)
	if st == sat.Unknown {
		err := s.StopCause()
		o.putSolver(s)
		if err == nil {
			err = budget.ErrCanceled
		}
		budget.Trip(err)
	}
	if st != sat.Sat {
		o.putSolver(s)
		return false, logic.Interp{}
	}
	m := logic.NewInterp(nVars)
	for v := 0; v < nVars; v++ {
		m.True.SetTo(v, s.Model(v))
	}
	o.putSolver(s)
	return true, m
}

// SatSolver builds an incremental solver preloaded with the CNF and
// counts its construction as one NP call; additional Solve calls on the
// returned solver should be counted by the caller via CountCall.
//
// Contract on UNSAT-at-level-0: if adding a clause yields a top-level
// conflict, loading stops, the conflict is recorded in the counters
// (SATConfl), and the returned solver is in the dead state — Okay()
// reports false and every subsequent Solve returns Unsat immediately.
//
// The returned solver is owned by the caller and is NOT pooled (the
// oracle cannot know when the caller is done with it); it is also not
// safe for concurrent use — parallel workers each build their own.
func (o *NP) SatSolver(nVars int, cnf logic.CNF) *sat.Solver {
	o.chargeCall()
	o.npCalls.Add(1)
	o.countBypass()
	s := sat.New(nVars)
	s.SetBudget(o.bres.Load())
	if !load(s, cnf) {
		o.satConfl.Add(s.Stats().Conflicts + 1)
	}
	return s
}

// CountCall records one additional NP-oracle invocation (for callers
// driving an incremental solver directly).
func (o *NP) CountCall() {
	o.chargeCall()
	o.npCalls.Add(1)
	o.countBypass()
}

// countBypass keeps the audit invariant hits+misses == NPCalls exact
// on oracles with a cache attached: incremental-solver calls
// (SatSolver, CountCall) never consult the interner — their clause
// state is built up across Solve calls — so each is accounted as a
// miss.
func (o *NP) countBypass() {
	if o.cache.Load() != nil {
		o.cacheMisses.Add(1)
	}
}

// CheckSolve inspects the status of a Solve call on an incremental
// solver (from SatSolver) and raises a budget.Interrupt when the
// solver stopped because an attached query budget tripped. Statuses
// other than Unknown — and Unknown caused by the legacy per-solver
// conflict budget (sat.ErrBudget), which callers set deliberately —
// pass through unchanged.
func CheckSolve(s *sat.Solver, st sat.Status) sat.Status {
	if st == sat.Unknown {
		if err := s.StopCause(); budget.Interrupted(err) {
			budget.Trip(err)
		}
	}
	return st
}

// CheckEnumerate raises a budget.Interrupt when an EnumerateModels
// loop on s stopped because the attached budget tripped (the solver's
// enumeration loop treats Unknown as exhaustion, so without this
// check an interrupted enumeration would be indistinguishable from a
// complete one). Call it immediately after EnumerateModels returns.
func CheckEnumerate(s *sat.Solver) {
	if err := s.StopCause(); budget.Interrupted(err) {
		budget.Trip(err)
	}
}

// CountConflicts records delta additional SAT conflicts (for callers
// driving an incremental solver directly).
func (o *NP) CountConflicts(delta int64) { o.satConfl.Add(delta) }

// CountSigma2 records one Σ₂ᵖ-oracle invocation.
func (o *NP) CountSigma2() { o.sigma2Calls.Add(1) }

// Valid reports whether formula f is valid over vocabulary voc
// (one NP call on the negation).
func (o *NP) Valid(f *logic.Formula, voc *logic.Vocabulary) bool {
	w := voc.Clone()
	cnf := logic.TseitinNeg(f, w)
	isSat, _ := o.Sat(w.Size(), cnf)
	return !isSat
}

// Entails reports whether every model of the CNF (over the first
// nOrig variables) satisfies formula f: one NP call on CNF ∧ ¬f.
func (o *NP) Entails(nOrig int, cnf logic.CNF, f *logic.Formula, voc *logic.Vocabulary) bool {
	w := voc.Clone()
	neg := logic.TseitinNeg(f, w)
	all := make(logic.CNF, 0, len(cnf)+len(neg))
	all = append(all, cnf...)
	all = append(all, neg...)
	isSat, _ := o.Sat(w.Size(), all)
	return !isSat
}
