package oracle

import (
	"math/rand"
	"testing"

	"disjunct/internal/logic"
)

func TestSatAndCounting(t *testing.T) {
	o := NewNP()
	v := logic.NewVocabulary()
	a := v.Intern("a")
	b := v.Intern("b")
	cnf := logic.CNF{{logic.PosLit(a), logic.PosLit(b)}, {logic.NegLit(a)}}
	ok, m := o.Sat(2, cnf)
	if !ok {
		t.Fatalf("satisfiable CNF reported unsat")
	}
	if m.Holds(a) || !m.Holds(b) {
		t.Fatalf("model wrong: %v", m)
	}
	if o.Counters().NPCalls != 1 {
		t.Fatalf("counter = %d, want 1", o.Counters().NPCalls)
	}
	cnf = append(cnf, logic.Clause{logic.NegLit(b)})
	if ok, _ := o.Sat(2, cnf); ok {
		t.Fatalf("unsat CNF reported sat")
	}
	if o.Counters().NPCalls != 2 {
		t.Fatalf("counter = %d, want 2", o.Counters().NPCalls)
	}
	o.Reset()
	if o.Counters().NPCalls != 0 {
		t.Fatalf("reset failed")
	}
}

func TestValid(t *testing.T) {
	o := NewNP()
	v := logic.NewVocabulary()
	f := logic.MustParseFormula("a | -a", v)
	if !o.Valid(f, v) {
		t.Fatalf("tautology not recognised")
	}
	g := logic.MustParseFormula("a & -a", v)
	if o.Valid(g, v) {
		t.Fatalf("contradiction reported valid")
	}
	h := logic.MustParseFormula("a -> a & a", v)
	if !o.Valid(h, v) {
		t.Fatalf("valid implication not recognised")
	}
}

func TestEntails(t *testing.T) {
	o := NewNP()
	v := logic.NewVocabulary()
	a := v.Intern("a")
	b := v.Intern("b")
	cnf := logic.CNF{{logic.PosLit(a)}, {logic.NegLit(a), logic.PosLit(b)}}
	if !o.Entails(2, cnf, logic.MustParseFormula("b", v), v) {
		t.Fatalf("a ∧ (a→b) must entail b")
	}
	if o.Entails(2, cnf, logic.MustParseFormula("-b", v), v) {
		t.Fatalf("must not entail ¬b")
	}
}

func TestCountersAddAndString(t *testing.T) {
	var c Counters
	c.Add(Counters{NPCalls: 2, Sigma2Calls: 1, SATConfl: 5})
	c.Add(Counters{NPCalls: 1})
	if c.NPCalls != 3 || c.Sigma2Calls != 1 || c.SATConfl != 5 {
		t.Fatalf("Add wrong: %+v", c)
	}
	if c.String() == "" {
		t.Fatalf("String empty")
	}
}

func TestSatSolverIncremental(t *testing.T) {
	o := NewNP()
	v := logic.NewVocabulary()
	a := v.Intern("a")
	cnf := logic.CNF{{logic.PosLit(a)}}
	s := o.SatSolver(1, cnf)
	if got := s.Solve(); got.String() != "SAT" {
		t.Fatalf("solver wrong: %v", got)
	}
	if !s.Model(0) {
		t.Fatalf("a should be true")
	}
}

func TestRandomAgreesWithEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for iter := 0; iter < 300; iter++ {
		n := 2 + rng.Intn(5)
		v := logic.NewVocabulary()
		for i := 0; i < n; i++ {
			v.Intern(string(rune('a' + i)))
		}
		var cnf logic.CNF
		for i := 0; i < 1+rng.Intn(3*n); i++ {
			var cl logic.Clause
			for j := 0; j < 1+rng.Intn(3); j++ {
				cl = append(cl, logic.MkLit(logic.Atom(rng.Intn(n)), rng.Intn(2) == 0))
			}
			cnf = append(cnf, cl)
		}
		want := false
		for bits := 0; bits < 1<<uint(n) && !want; bits++ {
			m := logic.NewInterp(n)
			for j := 0; j < n; j++ {
				m.True.SetTo(j, bits&(1<<uint(j)) != 0)
			}
			want = logic.EvalCNF(cnf, m)
		}
		o := NewNP()
		got, model := o.Sat(n, cnf)
		if got != want {
			t.Fatalf("iter %d: oracle=%v brute=%v", iter, got, want)
		}
		if got && !logic.EvalCNF(cnf, model) {
			t.Fatalf("iter %d: oracle model invalid", iter)
		}
	}
}
