package oracle

import (
	"context"
	"errors"
	"testing"

	"disjunct/internal/budget"
	"disjunct/internal/faults"
	"disjunct/internal/logic"
)

// chain builds the satisfiable CNF (x0) ∧ (¬x0 ∨ x1) ∧ … over n vars.
func chain(n int) logic.CNF {
	cnf := logic.CNF{{logic.PosLit(0)}}
	for v := 1; v < n; v++ {
		cnf = append(cnf, logic.Clause{logic.NegLit(logic.Atom(v - 1)), logic.PosLit(logic.Atom(v))})
	}
	return cnf
}

// satCall runs one Sat query converting a budget trip back to an error.
func satCall(o *NP, n int, cnf logic.CNF) (ok bool, err error) {
	defer budget.Recover(&err)
	ok, _ = o.Sat(n, cnf)
	return ok, nil
}

// TestNPCallBudgetExactCounters: with an NP-call budget of k, exactly k
// calls are served and the counter reads exactly k at the trip — exact
// up to the interruption point.
func TestNPCallBudgetExactCounters(t *testing.T) {
	const k = 3
	o := NewNP().WithBudget(budget.New(context.Background(), budget.Limits{NPCalls: k}))
	for i := 0; i < k; i++ {
		ok, err := satCall(o, 4, chain(4))
		if err != nil || !ok {
			t.Fatalf("call %d: ok=%v err=%v", i, ok, err)
		}
	}
	_, err := satCall(o, 4, chain(4))
	if !errors.Is(err, budget.ErrNPCallBudget) {
		t.Fatalf("call %d: err=%v, want ErrNPCallBudget", k, err)
	}
	if got := o.Counters().NPCalls; got != k {
		t.Fatalf("NPCalls = %d, want exactly %d (no count for the interrupted call)", got, k)
	}
}

// TestConflictBudgetAcrossCalls: the conflict budget is shared across
// oracle calls — once the cumulative conflicts exceed it, the next
// search trips with the typed cause.
func TestConflictBudgetAcrossCalls(t *testing.T) {
	o := NewNP().WithBudget(budget.New(context.Background(), budget.Limits{Conflicts: 3}))
	// Pigeonhole PHP(5,4) forces far more than 3 conflicts.
	n := 4
	nv := (n + 1) * n
	var cnf logic.CNF
	v := func(p, h int) logic.Atom { return logic.Atom(p*n + h) }
	for p := 0; p <= n; p++ {
		var c logic.Clause
		for h := 0; h < n; h++ {
			c = append(c, logic.PosLit(v(p, h)))
		}
		cnf = append(cnf, c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				cnf = append(cnf, logic.Clause{logic.NegLit(v(p1, h)), logic.NegLit(v(p2, h))})
			}
		}
	}
	_, err := satCall(o, nv, cnf)
	if !errors.Is(err, budget.ErrConflictBudget) {
		t.Fatalf("err = %v, want ErrConflictBudget", err)
	}
	// Sticky: the next call reports the same cause without solving.
	before := o.Counters().NPCalls
	_, err = satCall(o, 4, chain(4))
	if !errors.Is(err, budget.ErrConflictBudget) {
		t.Fatalf("subsequent call: %v", err)
	}
	if got := o.Counters().NPCalls; got != before {
		t.Fatalf("interrupted call was counted: %d -> %d", before, got)
	}
}

// TestFaultsDeterministicOutcome: two oracles with identical injector
// seeds produce the identical sequence of verdicts/errors and end with
// identical counters.
func TestFaultsDeterministicOutcome(t *testing.T) {
	run := func() ([]error, Counters) {
		o := NewNP().WithFaults(faults.NewInjector(0.5, 1234))
		var errs []error
		for i := 0; i < 40; i++ {
			_, err := satCall(o, 5, chain(5))
			errs = append(errs, err)
		}
		return errs, o.Counters()
	}
	errsA, cA := run()
	errsB, cB := run()
	if cA != cB {
		t.Fatalf("counters diverge: %+v vs %+v", cA, cB)
	}
	for i := range errsA {
		a, b := errsA[i], errsB[i]
		if (a == nil) != (b == nil) || (a != nil && a.Error() != b.Error()) {
			t.Fatalf("call %d: %v vs %v", i, a, b)
		}
	}
}

// TestFaultsOnlyTypedErrors: every fault-induced failure surfaces as a
// typed interruption (never a bare panic, never an untyped error), and
// completed calls return correct verdicts.
func TestFaultsOnlyTypedErrors(t *testing.T) {
	o := NewNP().WithFaults(faults.NewInjector(0.9, 77))
	completed, interrupted := 0, 0
	for i := 0; i < 200; i++ {
		ok, err := satCall(o, 5, chain(5))
		if err != nil {
			if !budget.Interrupted(err) {
				t.Fatalf("call %d: untyped error %v", i, err)
			}
			interrupted++
			continue
		}
		if !ok {
			t.Fatalf("call %d: chain CNF is satisfiable, got UNSAT", i)
		}
		completed++
	}
	if interrupted == 0 {
		t.Fatal("rate-0.9 injector never interrupted in 200 calls")
	}
	if completed == 0 {
		t.Fatal("latency/retried-transient calls should still complete some of the time")
	}
}

// TestTransientRetryCountsOnce: a retried transient failure is one
// logical NP call — NPCalls increments once per Sat invocation no
// matter how many injected retries it absorbed.
func TestTransientRetryCountsOnce(t *testing.T) {
	o := NewNP().WithFaults(faults.NewInjector(0.5, 42))
	served := int64(0)
	for i := 0; i < 60; i++ {
		if _, err := satCall(o, 3, chain(3)); err == nil {
			served++
		}
	}
	// Interrupted calls charge the NP counter too (the call was
	// admitted before solving began), so NPCalls equals total
	// invocations, not total solver attempts: retries never inflate it.
	if got := o.Counters().NPCalls; got != 60 {
		t.Fatalf("NPCalls = %d, want 60 (one per logical call, retries uncounted)", got)
	}
	if served == 0 {
		t.Fatal("no call survived at rate 0.5")
	}
}

// TestBudgetAndFaultsCompose: both attached; every outcome is either a
// correct verdict or a typed interruption.
func TestBudgetAndFaultsCompose(t *testing.T) {
	o := NewNP().
		WithBudget(budget.New(context.Background(), budget.Limits{NPCalls: 30})).
		WithFaults(faults.NewInjector(0.3, 9))
	for i := 0; i < 60; i++ {
		ok, err := satCall(o, 4, chain(4))
		if err != nil {
			if !budget.Interrupted(err) {
				t.Fatalf("untyped: %v", err)
			}
			continue
		}
		if !ok {
			t.Fatal("wrong verdict on satisfiable CNF")
		}
	}
	if got := o.Counters().NPCalls; got > 30 {
		t.Fatalf("NPCalls = %d exceeds budget 30", got)
	}
}
