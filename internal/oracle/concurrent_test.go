package oracle

import (
	"sync"
	"testing"

	"disjunct/internal/logic"
)

// workload returns the CNFs worker w queries: a mix of satisfiable
// chains, unsatisfiable cores (exercising SATConfl), and top-level
// conflicts (exercising the UNSAT-at-level-0 path).
func workload(w int) []struct {
	n   int
	cnf logic.CNF
} {
	a := func(v int) logic.Atom { return logic.Atom(v) }
	pos := func(v int) logic.Lit { return logic.PosLit(a(v)) }
	neg := func(v int) logic.Lit { return logic.NegLit(a(v)) }
	var out []struct {
		n   int
		cnf logic.CNF
	}
	for rep := 0; rep < 8+w; rep++ {
		// Satisfiable: implication chain.
		chain := logic.CNF{{pos(0)}}
		for v := 0; v+1 < 5; v++ {
			chain = append(chain, logic.Clause{neg(v), pos(v + 1)})
		}
		out = append(out, struct {
			n   int
			cnf logic.CNF
		}{5, chain})
		// Unsatisfiable with search: (x∨y)(x∨¬y)(¬x∨y)(¬x∨¬y).
		out = append(out, struct {
			n   int
			cnf logic.CNF
		}{2, logic.CNF{
			{pos(0), pos(1)}, {pos(0), neg(1)}, {neg(0), pos(1)}, {neg(0), neg(1)},
		}})
		// Top-level conflict: unit x, unit ¬x.
		out = append(out, struct {
			n   int
			cnf logic.CNF
		}{1, logic.CNF{{pos(0)}, {neg(0)}}})
	}
	return out
}

// TestCountersConcurrent runs N goroutines against ONE shared oracle
// and asserts the final totals equal the sum of the counters each
// worker's workload produces on a private oracle — i.e. no increment
// is lost under concurrency.
func TestCountersConcurrent(t *testing.T) {
	const workers = 8

	// Expected totals: run each worker's workload serially on its own
	// oracle and sum the counters.
	var want Counters
	for w := 0; w < workers; w++ {
		o := NewNP()
		for _, q := range workload(w) {
			o.Sat(q.n, q.cnf)
		}
		o.CountCall()
		o.CountSigma2()
		o.CountConflicts(3)
		c := o.Counters()
		want.Add(c)
	}

	shared := NewNP()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for _, q := range workload(w) {
				shared.Sat(q.n, q.cnf)
			}
			shared.CountCall()
			shared.CountSigma2()
			shared.CountConflicts(3)
		}(w)
	}
	wg.Wait()

	got := shared.Counters()
	if got != want {
		t.Fatalf("shared counters %+v != sum of per-worker counters %+v", got, want)
	}
}

// TestSatSolverRecordsTopLevelConflict covers the SatSolver satellite:
// a CNF whose clauses conflict at level 0 must bump SATConfl and
// return a dead solver.
func TestSatSolverRecordsTopLevelConflict(t *testing.T) {
	o := NewNP()
	x := logic.Atom(0)
	s := o.SatSolver(1, logic.CNF{{logic.PosLit(x)}, {logic.NegLit(x)}})
	if s.Okay() {
		t.Fatal("solver should be dead after a top-level conflict")
	}
	c := o.Counters()
	if c.NPCalls != 1 {
		t.Fatalf("NPCalls = %d, want 1", c.NPCalls)
	}
	if c.SATConfl < 1 {
		t.Fatalf("SATConfl = %d, want ≥ 1 (top-level conflict must be recorded)", c.SATConfl)
	}
}

// TestSatPoolingEquivalence checks pooled and fresh-solver paths give
// identical answers and counter deltas.
func TestSatPoolingEquivalence(t *testing.T) {
	for _, q := range workload(0) {
		pooled, fresh := NewNP(), NewNP()
		fresh.SetPooling(false)
		okP, _ := pooled.Sat(q.n, q.cnf)
		okF, _ := fresh.Sat(q.n, q.cnf)
		if okP != okF {
			t.Fatalf("pooled=%v fresh=%v on %v", okP, okF, q.cnf)
		}
		if pooled.Counters().NPCalls != fresh.Counters().NPCalls {
			t.Fatalf("NP-call mismatch pooled=%v fresh=%v", pooled.Counters(), fresh.Counters())
		}
	}
}
