package oracle

import (
	"math/rand"
	"sync"
	"testing"

	"disjunct/internal/cache"
	"disjunct/internal/logic"
)

// randMixedCNF generates a random CNF over n atoms with m clauses of
// 1–3 literals (short clauses, unlike bench_test's fixed-width
// randCNF, so both SAT and UNSAT verdicts occur).
func randMixedCNF(rng *rand.Rand, n, m int) logic.CNF {
	out := make(logic.CNF, m)
	for i := range out {
		k := 1 + rng.Intn(3)
		c := make(logic.Clause, k)
		for j := range c {
			c[j] = logic.MkLit(logic.Atom(rng.Intn(n)), rng.Intn(2) == 0)
		}
		out[i] = c
	}
	return out
}

// TestCachedSatReplayIdentical drives a query stream — with repeats —
// through a cached and an uncached oracle and requires bit-identical
// verdicts AND models, plus the audit invariant hits+misses == NPCalls.
func TestCachedSatReplayIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cached := NewNP().WithCache(cache.New(0))
	plain := NewNP()

	// Build a stream with guaranteed exact repeats and guaranteed
	// structural (renamed / reordered) variants.
	type query struct {
		n   int
		cnf logic.CNF
	}
	var stream []query
	for i := 0; i < 60; i++ {
		n := 3 + rng.Intn(8)
		q := query{n, randMixedCNF(rng, n, 2+rng.Intn(3*n))}
		stream = append(stream, q)
		if i%3 == 0 {
			stream = append(stream, q) // exact repeat
		}
		if i%4 == 0 {
			// clause-reversed variant: same key, different Raw
			rev := make(logic.CNF, len(q.cnf))
			for j, c := range q.cnf {
				rev[len(rev)-1-j] = c
			}
			stream = append(stream, query{q.n, rev})
		}
	}

	for i, q := range stream {
		okC, mC := cached.Sat(q.n, q.cnf)
		okP, mP := plain.Sat(q.n, q.cnf)
		if okC != okP {
			t.Fatalf("query %d: cached verdict %v, uncached %v", i, okC, okP)
		}
		if okC && !mC.Equal(mP) {
			t.Fatalf("query %d: cached model differs from uncached model", i)
		}
	}

	cc, pc := cached.Counters(), plain.Counters()
	if cc.NPCalls != pc.NPCalls || cc.NPCalls != int64(len(stream)) {
		t.Fatalf("NPCalls: cached %d, uncached %d, want %d", cc.NPCalls, pc.NPCalls, len(stream))
	}
	if cc.CacheHits+cc.CacheMisses != cc.NPCalls {
		t.Fatalf("hits(%d)+misses(%d) != NPCalls(%d)", cc.CacheHits, cc.CacheMisses, cc.NPCalls)
	}
	if cc.CacheHits == 0 {
		t.Fatal("no cache hits on a stream with built-in repeats")
	}
	if pc.CacheHits != 0 || pc.CacheMisses != 0 {
		t.Fatalf("uncached oracle reports cache traffic: %v", pc)
	}
	if cc.SATConfl > pc.SATConfl {
		t.Errorf("cache increased solver work: confl %d > %d", cc.SATConfl, pc.SATConfl)
	}
}

// TestCachedUnsatSharedAcrossRenamings checks that an UNSAT verdict
// memoised under one variable naming is served to a renamed variant of
// the same query without solver work.
func TestCachedUnsatSharedAcrossRenamings(t *testing.T) {
	o := NewNP().WithCache(cache.New(0))
	// x ∧ ¬x over atoms {0}, then the same contradiction over atom 3.
	a := logic.CNF{{logic.PosLit(0)}, {logic.NegLit(0)}}
	b := logic.CNF{{logic.PosLit(3)}, {logic.NegLit(3)}}
	if ok, _ := o.Sat(1, a); ok {
		t.Fatal("contradiction reported satisfiable")
	}
	before := o.Counters()
	if ok, _ := o.Sat(4, b); ok {
		t.Fatal("renamed contradiction reported satisfiable")
	}
	after := o.Counters()
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("renamed UNSAT variant missed the cache (hits %d → %d)", before.CacheHits, after.CacheHits)
	}
	if after.SATConfl != before.SATConfl {
		t.Errorf("UNSAT hit still did solver work (%d conflicts)", after.SATConfl-before.SATConfl)
	}
}

// TestCachedSatStructuralVariantSolves checks the conservative half of
// the replay rule: a SAT verdict is NOT replayed for a merely
// isomorphic (non-identical) query — it is re-solved and counted as a
// miss, keeping cached control flow identical to uncached.
func TestCachedSatStructuralVariantSolves(t *testing.T) {
	o := NewNP().WithCache(cache.New(0))
	a := logic.CNF{{logic.PosLit(0), logic.PosLit(1)}}
	b := logic.CNF{{logic.PosLit(1), logic.PosLit(0)}} // same key, different Raw
	if ok, _ := o.Sat(2, a); !ok {
		t.Fatal("satisfiable clause reported UNSAT")
	}
	ok, m := o.Sat(2, b)
	if !ok {
		t.Fatal("reordered variant reported UNSAT")
	}
	c := o.Counters()
	if c.CacheMisses != 2 || c.CacheHits != 0 {
		t.Fatalf("want 2 misses, 0 hits for distinct-Raw SAT queries; got %v", c)
	}
	// And the model must be what a fresh solve of b returns.
	ok2, m2 := NewNP().Sat(2, b)
	if !ok2 || !m.Equal(m2) {
		t.Fatal("structural-variant solve returned a non-fresh model")
	}
	// The exact repeat now hits and replays that model.
	ok3, m3 := o.Sat(2, b)
	if !ok3 || !m3.Equal(m2) {
		t.Fatal("exact repeat did not replay the stored witness")
	}
	if o.Counters().CacheHits != 1 {
		t.Fatalf("exact repeat did not hit: %v", o.Counters())
	}
}

// TestCachedOracleConcurrent hammers one shared cached oracle from
// many goroutines (race-detector coverage for the oracle/cache seam)
// and cross-checks every answer against an uncached oracle.
func TestCachedOracleConcurrent(t *testing.T) {
	shared := cache.New(1024)
	o := NewNP().WithCache(shared)
	rng := rand.New(rand.NewSource(23))
	type query struct {
		n   int
		cnf logic.CNF
	}
	queries := make([]query, 40)
	for i := range queries {
		n := 3 + rng.Intn(6)
		queries[i] = query{n, randMixedCNF(rng, n, 2+rng.Intn(2*n))}
	}
	want := make([]bool, len(queries))
	ref := NewNP()
	for i, q := range queries {
		want[i], _ = ref.Sat(q.n, q.cnf)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				qi := r.Intn(len(queries))
				q := queries[qi]
				ok, m := o.Sat(q.n, q.cnf)
				if ok != want[qi] {
					t.Errorf("query %d: concurrent cached verdict %v, want %v", qi, ok, want[qi])
					return
				}
				if ok && !logic.EvalCNF(q.cnf, m) {
					t.Errorf("query %d: returned model does not satisfy the query", qi)
					return
				}
			}
		}(int64(g) + 100)
	}
	wg.Wait()
	c := o.Counters()
	if c.CacheHits+c.CacheMisses != c.NPCalls {
		t.Fatalf("hits(%d)+misses(%d) != NPCalls(%d) under concurrency",
			c.CacheHits, c.CacheMisses, c.NPCalls)
	}
	if c.CacheHits == 0 {
		t.Error("no hits despite heavy query repetition")
	}
}

// TestWithCacheNilDetaches verifies WithCache(nil) restores the
// uncached path.
func TestWithCacheNilDetaches(t *testing.T) {
	o := NewNP().WithCache(cache.New(0))
	cnf := logic.CNF{{logic.PosLit(0)}}
	o.Sat(1, cnf)
	o.WithCache(nil)
	if o.Cache() != nil {
		t.Fatal("cache still attached after WithCache(nil)")
	}
	o.Sat(1, cnf)
	c := o.Counters()
	if c.CacheMisses != 1 {
		t.Fatalf("detached oracle still touches the cache: %v", c)
	}
}
