package oracle

import (
	"fmt"
	"math/rand"
	"testing"

	"disjunct/internal/logic"
)

// randCNF builds a random 3-CNF at the given clause/variable ratio.
func randCNF(rng *rand.Rand, n int, ratio float64) logic.CNF {
	m := int(float64(n) * ratio)
	cnf := make(logic.CNF, m)
	for i := range cnf {
		cl := make(logic.Clause, 3)
		for j := range cl {
			cl[j] = logic.MkLit(logic.Atom(rng.Intn(n)), rng.Intn(2) == 0)
		}
		cnf[i] = cl
	}
	return cnf
}

// benchOracleSat measures repeated one-shot Sat queries; the pooled
// variant reuses solvers through the sync.Pool + Reset path, the fresh
// variant allocates a solver per query (the pre-pooling baseline).
func benchOracleSat(b *testing.B, pooled bool) {
	for _, n := range []int{50, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		cnfs := make([]logic.CNF, 16)
		for i := range cnfs {
			cnfs[i] = randCNF(rng, n, 3.0)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			o := NewNP()
			o.SetPooling(pooled)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Sat(n, cnfs[i%len(cnfs)])
			}
		})
	}
}

func BenchmarkOracleSatFresh(b *testing.B)  { benchOracleSat(b, false) }
func BenchmarkOracleSatPooled(b *testing.B) { benchOracleSat(b, true) }
