package strat

import (
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
)

func TestStratifyPositive(t *testing.T) {
	d := dbtest.MustParse("a | b. c :- a.")
	s, ok := Compute(d)
	if !ok {
		t.Fatalf("positive DB must stratify")
	}
	if !Check(d, s) {
		t.Fatalf("Check rejects computed stratification")
	}
	if s.R != 1 {
		t.Fatalf("positive DB should be a single stratum, got %d", s.R)
	}
}

func TestStratifyLayered(t *testing.T) {
	d := dbtest.MustParse("b. a :- not b. c :- not a.")
	s, ok := Compute(d)
	if !ok {
		t.Fatalf("must stratify")
	}
	if !Check(d, s) {
		t.Fatalf("invalid stratification")
	}
	a, _ := d.Voc.Lookup("a")
	b, _ := d.Voc.Lookup("b")
	c, _ := d.Voc.Lookup("c")
	if !(s.Level[b] < s.Level[a] && s.Level[a] < s.Level[c]) {
		t.Fatalf("levels wrong: b=%d a=%d c=%d", s.Level[b], s.Level[a], s.Level[c])
	}
	if s.R != 3 {
		t.Fatalf("want 3 strata, got %d", s.R)
	}
}

func TestUnstratifiable(t *testing.T) {
	for _, src := range []string{
		"a :- not a.",
		"a :- not b. b :- not a.",
		"a :- b. b :- not c. c :- a.",
	} {
		d := dbtest.MustParse(src)
		if _, ok := Compute(d); ok {
			t.Fatalf("%q should not stratify", src)
		}
	}
}

func TestHeadAtomsShareStratum(t *testing.T) {
	// a and b share a head; b is negated below c; a must sit with b.
	d := dbtest.MustParse("a | b. c :- not b.")
	s, ok := Compute(d)
	if !ok {
		t.Fatalf("must stratify")
	}
	a, _ := d.Voc.Lookup("a")
	b, _ := d.Voc.Lookup("b")
	if s.Level[a] != s.Level[b] {
		t.Fatalf("head atoms must share a stratum: a=%d b=%d", s.Level[a], s.Level[b])
	}
	if !Check(d, s) {
		t.Fatalf("invalid stratification")
	}
}

func TestDisjunctiveHeadCycleThroughNegation(t *testing.T) {
	// Head sharing forces a,b together; b :- not a then needs
	// level(b) > level(a) = level(b): unstratifiable.
	d := dbtest.MustParse("a | b. b :- not a.")
	if _, ok := Compute(d); ok {
		t.Fatalf("should not stratify: negation inside a head-equivalence class")
	}
}

func TestCheckRejectsBadStratification(t *testing.T) {
	d := dbtest.MustParse("b. a :- not b.")
	a, _ := d.Voc.Lookup("a")
	b, _ := d.Voc.Lookup("b")
	bad := Stratification{Level: make([]int, d.N()), R: 1}
	if Check(d, bad) {
		t.Fatalf("flat stratification must be rejected (negation inside stratum)")
	}
	good := Stratification{Level: make([]int, d.N()), R: 2}
	good.Level[a] = 1
	good.Level[b] = 0
	if !Check(d, good) {
		t.Fatalf("valid stratification rejected")
	}
}

func TestGeneratedStratifiedAlwaysStratifies(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for iter := 0; iter < 300; iter++ {
		d := gen.RandomStratified(rng, 2+rng.Intn(6), 1+rng.Intn(10), 1+rng.Intn(4))
		s, ok := Compute(d)
		if !ok {
			t.Fatalf("iter %d: generator output must stratify\nDB:\n%s", iter, d.String())
		}
		if !Check(d, s) {
			t.Fatalf("iter %d: computed stratification invalid\nDB:\n%s", iter, d.String())
		}
	}
}

func TestLayers(t *testing.T) {
	d := dbtest.MustParse("b. a :- not b. c :- not a.")
	s, _ := Compute(d)
	layers := Layers(d, s)
	if len(layers) != s.R {
		t.Fatalf("layer count %d != R %d", len(layers), s.R)
	}
	total := 0
	for _, l := range layers {
		total += len(l.Clauses)
	}
	if total != len(d.Clauses) {
		t.Fatalf("layers lost clauses: %d != %d", total, len(d.Clauses))
	}
}

func TestPriorityTransitivity(t *testing.T) {
	d := dbtest.MustParse("a :- not b. b :- not c.")
	p := NewPriority(d)
	a, _ := d.Voc.Lookup("a")
	b, _ := d.Voc.Lookup("b")
	c, _ := d.Voc.Lookup("c")
	if !p.Less(int(a), int(b)) || !p.Less(int(b), int(c)) {
		t.Fatalf("direct priorities missing")
	}
	if !p.Less(int(a), int(c)) {
		t.Fatalf("priority must be transitive")
	}
}

func TestPriorityHeadEquivalence(t *testing.T) {
	d := dbtest.MustParse("a | b.")
	p := NewPriority(d)
	a, _ := d.Voc.Lookup("a")
	b, _ := d.Voc.Lookup("b")
	if !p.Leq(int(a), int(b)) || !p.Leq(int(b), int(a)) {
		t.Fatalf("head atoms must be priority-equivalent")
	}
	if p.Less(int(a), int(b)) || p.Less(int(b), int(a)) {
		t.Fatalf("equivalence must not be strict")
	}
}

func TestPriorityReflexive(t *testing.T) {
	d := dbtest.MustParse("a.")
	p := NewPriority(d)
	if !p.Leq(0, 0) || p.Less(0, 0) {
		t.Fatalf("reflexivity broken")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		src  string
		want db.Class
	}{
		{"a | b.", db.ClassPositiveDDB},
		{"a. :- a, b.", db.ClassDDDB},
		{"b. a :- not b.", db.ClassDSDB},
		{"a :- not a.", db.ClassDNDB},
	}
	for _, tc := range cases {
		if got := Classify(dbtest.MustParse(tc.src)); got != tc.want {
			t.Fatalf("%q: Classify = %v, want %v", tc.src, got, tc.want)
		}
	}
}
