package strat

import (
	"disjunct/internal/db"
)

// Priority is Przymusinski's priority relation on atoms (§5.1): a
// reflexive-transitive preorder ≤ whose strict part < drives the
// preference relation between models. "x < y means that y has higher
// priority than x."
//
// For each clause a1∨…∨an ← b1∧…∧bk∧¬c1∧…∧¬cm of the database:
//
//	(i)   ai < cj        for all i, j  (heads strictly below negated body)
//	(ii)  ai ≤ bj        for all i, j  (heads at most the positive body)
//	(iii) ai ≈ aj        for all i, j  (head atoms equivalent)
//
// ≤ is then closed under reflexivity and transitivity, and
// x < y iff x ≤ y ∧ ¬(y ≤ x).
type Priority struct {
	n   int
	leq []bool // leq[x*n+y] = (x ≤ y)
}

// NewPriority computes the priority relation of d. The construction is
// O(n³) (Floyd–Warshall style transitive closure), fine for the
// propositional databases of the benchmarks.
func NewPriority(d *db.DB) *Priority {
	n := d.N()
	p := &Priority{n: n, leq: make([]bool, n*n)}
	set := func(x, y int) { p.leq[x*n+y] = true }
	for i := 0; i < n; i++ {
		set(i, i)
	}
	for _, c := range d.Clauses {
		for _, h := range c.Head {
			for _, cn := range c.NegBody {
				set(int(h), int(cn))
			}
			for _, b := range c.PosBody {
				set(int(h), int(b))
			}
			for _, h2 := range c.Head {
				set(int(h), int(h2))
				set(int(h2), int(h))
			}
		}
	}
	// Transitive closure.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !p.leq[i*n+k] {
				continue
			}
			row := p.leq[k*n : k*n+n]
			for j, v := range row {
				if v {
					p.leq[i*n+j] = true
				}
			}
		}
	}
	return p
}

// Leq reports x ≤ y.
func (p *Priority) Leq(x, y int) bool { return p.leq[x*p.n+y] }

// Less reports x < y (strictly lower priority).
func (p *Priority) Less(x, y int) bool {
	return p.leq[x*p.n+y] && !p.leq[y*p.n+x]
}
