// Package strat implements stratification of disjunctive databases
// (§4 of the paper) and Przymusinski's priority relation on atoms used
// by the perfect model semantics (§5.1).
//
// A stratification of DB is a partition ⟨S1,…,Sr⟩ of the vocabulary
// such that for every clause a1∨…∨an ← b1∧…∧bk∧¬c1∧…∧¬cm with head
// atoms in stratum i: every positive body atom lies in a stratum ≤ i,
// every negated body atom in a stratum < i, and all head atoms lie in
// the same stratum. A DB admitting one is a DSDB; a stratification can
// be found efficiently (the paper: "Notice that a stratification of DB
// can be efficiently found") — we compute the canonical least one via
// the dependency graph's strongly connected components.
package strat

import (
	"disjunct/internal/db"
	"disjunct/internal/logic"
)

// Stratification assigns each atom a stratum index 0..R-1.
type Stratification struct {
	Level []int // Level[atom] = stratum
	R     int   // number of strata
}

// Strata returns the atom lists per stratum, lowest first.
func (s Stratification) Strata() [][]logic.Atom {
	out := make([][]logic.Atom, s.R)
	for a, l := range s.Level {
		out[l] = append(out[l], logic.Atom(a))
	}
	return out
}

// depEdge is an edge of the dependency graph with a flag for negative
// or disjunctive ("same stratum" constraint is handled separately).
type depEdge struct {
	to  int
	neg bool // through negation: strictly higher stratum required
}

// Compute attempts to stratify d. It returns the canonical
// stratification and true, or a zero value and false if d is not
// stratifiable (some cycle passes through negation, or head atoms
// cannot be placed consistently).
//
// Construction: build a graph on atoms where for each clause
// a1∨…∨an ← b1∧…∧bk∧¬c1∧…∧¬cm we add
//
//	bj → ai   (non-negative: stratum(ai) ≥ stratum(bj))
//	cl →¬ ai  (negative:     stratum(ai) > stratum(cl))
//	ai ↔ aj   (head atoms share a stratum)
//
// Integrity clauses impose no constraints (they have no head).
// The DB is stratifiable iff no cycle of the graph contains a negative
// edge; strata are then the longest-negative-path indices of the
// condensation (SCC) DAG.
func Compute(d *db.DB) (Stratification, bool) {
	n := d.N()
	adj := make([][]depEdge, n)
	addEdge := func(from, to logic.Atom, neg bool) {
		adj[from] = append(adj[from], depEdge{int(to), neg})
	}
	for _, c := range d.Clauses {
		for _, h := range c.Head {
			for _, b := range c.PosBody {
				addEdge(b, h, false)
			}
			for _, cn := range c.NegBody {
				addEdge(cn, h, true)
			}
		}
		// Head atoms must share a stratum: bidirectional zero edges.
		for i := 1; i < len(c.Head); i++ {
			addEdge(c.Head[0], c.Head[i], false)
			addEdge(c.Head[i], c.Head[0], false)
		}
	}

	comp, nComp := tarjanSCC(n, adj)

	// A negative edge inside one SCC makes the DB unstratifiable.
	for u := 0; u < n; u++ {
		for _, e := range adj[u] {
			if e.neg && comp[u] == comp[e.to] {
				return Stratification{}, false
			}
		}
	}

	// Longest path by negative-edge count over the condensation DAG.
	// Components are produced by Tarjan in reverse topological order,
	// so process them from last to first.
	compLevel := make([]int, nComp)
	order := make([][]int, nComp) // atoms per component
	for u := 0; u < n; u++ {
		order[comp[u]] = append(order[comp[u]], u)
	}
	for ci := nComp - 1; ci >= 0; ci-- {
		for _, u := range order[ci] {
			for _, e := range adj[u] {
				cj := comp[e.to]
				if cj == ci {
					continue
				}
				need := compLevel[ci]
				if e.neg {
					need++
				}
				if compLevel[cj] < need {
					compLevel[cj] = need
				}
			}
		}
	}
	level := make([]int, n)
	r := 1
	for u := 0; u < n; u++ {
		level[u] = compLevel[comp[u]]
		if level[u]+1 > r {
			r = level[u] + 1
		}
	}
	return Stratification{Level: level, R: r}, true
}

// Check verifies that s is a valid stratification of d.
func Check(d *db.DB, s Stratification) bool {
	if len(s.Level) != d.N() {
		return false
	}
	for _, l := range s.Level {
		if l < 0 || l >= s.R {
			return false
		}
	}
	for _, c := range d.Clauses {
		if len(c.Head) == 0 {
			continue
		}
		h0 := s.Level[c.Head[0]]
		for _, h := range c.Head[1:] {
			if s.Level[h] != h0 {
				return false
			}
		}
		for _, b := range c.PosBody {
			if s.Level[b] > h0 {
				return false
			}
		}
		for _, n := range c.NegBody {
			if s.Level[n] >= h0 {
				return false
			}
		}
	}
	return true
}

// Layers splits the clause set by head stratum: Layers(d,s)[i] contains
// the clauses whose head atoms lie in stratum i. Integrity clauses are
// assigned to the highest stratum of any atom they mention (they must
// be respected once all their atoms are available).
func Layers(d *db.DB, s Stratification) []*db.DB {
	out := make([]*db.DB, s.R)
	for i := range out {
		out[i] = db.NewWithVocab(d.Voc)
	}
	for _, c := range d.Clauses {
		idx := 0
		if len(c.Head) > 0 {
			idx = s.Level[c.Head[0]]
		} else {
			for _, part := range [][]logic.Atom{c.PosBody, c.NegBody} {
				for _, a := range part {
					if s.Level[a] > idx {
						idx = s.Level[a]
					}
				}
			}
		}
		out[idx].Clauses = append(out[idx].Clauses, c)
	}
	return out
}

// tarjanSCC computes strongly connected components; comp[v] is the
// component index of v, and components are numbered in reverse
// topological order (Tarjan's invariant).
func tarjanSCC(n int, adj [][]depEdge) (comp []int, nComp int) {
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var counter int

	// Iterative Tarjan to avoid deep recursion on large graphs.
	type frame struct {
		v, ei int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{start, 0}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei].to
				f.ei++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Post-process v.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp, nComp
}

// Classify returns the full classification of d per the paper's
// hierarchy (Fernández–Minker): positive DDB ⊂ DDDB ⊂ DSDB ⊂ DNDB.
// A database with negation is a DSDB exactly when it stratifies.
func Classify(d *db.DB) db.Class {
	c := d.SyntacticClass()
	if c != db.ClassDNDB {
		return c
	}
	if _, ok := Compute(d); ok {
		return db.ClassDSDB
	}
	return db.ClassDNDB
}
