package semtest

import (
	"context"
	"math/rand"
	"testing"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
	"disjunct/internal/session"
)

// SessionCheckStats summarises one CrossCheckSession run so callers
// can assert route coverage (which queries the session layer handled,
// and how) per semantics and generator mix.
type SessionCheckStats struct {
	Queries   int   // queries issued
	Handled   int   // queries the session layer answered
	Fast      int   // of those, fragment fast path (0 NP calls each)
	Warm      int   // of those, warm incremental sessions
	SessionNP int64 // NP calls spent by the session layer (all queries)
	FreshNP   int64 // NP calls the fresh path spent on the SAME handled queries
	Trips     int   // injected mid-session budget trips observed
}

// CrossCheckSession runs the named semantics over iters databases from
// dbFor and cross-checks the session layer (fragment fast path + warm
// incremental sessions, one shared Manager across all iterations)
// against the fresh engines: identical verdicts on every handled
// query, zero NP calls on fast-path and memoized queries, and — over
// the whole workload — session NP totals never exceeding what the
// fresh path spent on the same queries. Every handled query is issued
// twice (the repeat must be free), and warm sessions are periodically
// interrupted by a one-NP-call budget to verify that verdicts after a
// mid-session trip still match the fresh engine.
func CrossCheckSession(t *testing.T, semName string, iters int, dbFor func(iter int, rng *rand.Rand) *db.DB) SessionCheckStats {
	t.Helper()
	rng := rand.New(rand.NewSource(733))
	mgr := session.NewManager(session.Config{})
	ctx := context.Background()
	var stats SessionCheckStats

	check := func(iter int, d *db.DB, comp *session.Compiled, req session.Request,
		fresh core.Semantics, freshOra *oracle.NP, run func() (bool, error)) {
		t.Helper()
		stats.Queries++
		before := freshOra.Counters().NPCalls
		want, wantErr := run()
		freshDelta := freshOra.Counters().NPCalls - before
		res, handled := mgr.Query(ctx, comp, req)
		if !handled {
			return
		}
		if wantErr != nil {
			t.Fatalf("iter %d: %s %s %q: session handled a query the fresh path rejects (%v)\nDB:\n%s",
				iter, semName, req.Kind, req.QueryText, wantErr, d.String())
		}
		if res.Err != nil {
			t.Fatalf("iter %d: %s %s %q: unexpected session interruption: %v\nDB:\n%s",
				iter, semName, req.Kind, req.QueryText, res.Err, d.String())
		}
		if res.Holds != want {
			t.Fatalf("iter %d: %s %s %q: session=%v (path %s) fresh=%v\nDB:\n%s",
				iter, semName, req.Kind, req.QueryText, res.Holds, res.Path, want, d.String())
		}
		stats.Handled++
		stats.SessionNP += res.Counters.NPCalls
		// The workload issues every query twice (see below); the fresh
		// path — deterministic, stateless across requests — would pay
		// the same NP cost on each issue, while the session pays once
		// and answers the repeat from the memo or the fragment model.
		stats.FreshNP += 2 * freshDelta
		switch res.Path {
		case "fast":
			stats.Fast++
			if res.Counters.NPCalls != 0 {
				t.Fatalf("iter %d: %s %s %q: fast path consumed %d NP calls",
					iter, semName, req.Kind, req.QueryText, res.Counters.NPCalls)
			}
		case "session":
			stats.Warm++
		default:
			t.Fatalf("iter %d: unknown session path %q", iter, res.Path)
		}
		// A repeat of a handled query must be free: fast paths never
		// consult the oracle, warm sessions answer from the memo.
		res2, handled2 := mgr.Query(ctx, comp, req)
		if !handled2 || res2.Err != nil || res2.Holds != want {
			t.Fatalf("iter %d: %s %s %q: repeat diverged (handled=%v err=%v holds=%v want=%v)",
				iter, semName, req.Kind, req.QueryText, handled2, res2.Err, res2.Holds, want)
		}
		stats.SessionNP += res2.Counters.NPCalls
		if res2.Counters.NPCalls != 0 {
			t.Fatalf("iter %d: %s %s %q: repeat consumed %d NP calls (want 0)",
				iter, semName, req.Kind, req.QueryText, res2.Counters.NPCalls)
		}
	}

	for iter := 0; iter < iters; iter++ {
		d := dbFor(iter, rng)
		comp := mgr.InternDB(d)
		freshOra := oracle.NewNP()
		fresh, ok := core.New(semName, core.Options{Oracle: freshOra})
		if !ok {
			t.Fatalf("semantics %q not registered", semName)
		}

		for a := 0; a < d.N(); a++ {
			for _, lit := range []logic.Lit{logic.PosLit(logic.Atom(a)), logic.NegLit(logic.Atom(a))} {
				lit := lit
				req := session.Request{Sem: semName, Kind: session.KindLiteral, Lit: lit, QueryText: d.Voc.LitString(lit)}
				check(iter, d, comp, req, fresh, freshOra, func() (bool, error) { return fresh.InferLiteral(d, lit) })
			}
		}
		f := sessionRandomFormula(rng, d.N(), 2)
		freq := session.Request{Sem: semName, Kind: session.KindFormula, F: f, QueryText: f.String(d.Voc)}
		check(iter, d, comp, freq, fresh, freshOra, func() (bool, error) { return fresh.InferFormula(d, f) })
		mreq := session.Request{Sem: semName, Kind: session.KindModel}
		check(iter, d, comp, mreq, fresh, freshOra, func() (bool, error) { return fresh.HasModel(d) })

		// Mid-session budget trip: interrupt a warm query with a 1-NP-call
		// budget, then verify the session still answers correctly after
		// the trip (the interrupted engine is retired, the memo survives).
		if iter%3 == 0 && d.N() > 0 {
			lit := logic.PosLit(logic.Atom(rng.Intn(d.N())))
			text := "trip:" + d.Voc.LitString(lit)
			b := budget.New(context.Background(), budget.Limits{NPCalls: 1})
			req := session.Request{Sem: semName, Kind: session.KindLiteral, Lit: lit, QueryText: text, Budget: b}
			res, handled := mgr.Query(ctx, comp, req)
			if handled && res.Err != nil {
				if !budget.Interrupted(res.Err) {
					t.Fatalf("iter %d: %s: untyped session interruption: %v", iter, semName, res.Err)
				}
				stats.Trips++
				want, wantErr := fresh.InferLiteral(d, lit)
				res2, handled2 := mgr.Query(ctx, comp, session.Request{Sem: semName, Kind: session.KindLiteral, Lit: lit, QueryText: text})
				if !handled2 || res2.Err != nil || wantErr != nil || res2.Holds != want {
					t.Fatalf("iter %d: %s: post-trip divergence (handled=%v err=%v holds=%v want=%v wantErr=%v)\nDB:\n%s",
						iter, semName, handled2, res2.Err, res2.Holds, want, wantErr, d.String())
				}
			}
		}
	}

	if stats.Handled > 0 && stats.SessionNP > stats.FreshNP {
		t.Fatalf("%s: session layer spent %d NP calls where the fresh path spent %d on the same queries",
			semName, stats.SessionNP, stats.FreshNP)
	}
	return stats
}

// sessionRandomFormula builds a random formula over the first n atoms.
func sessionRandomFormula(rng *rand.Rand, n, depth int) *logic.Formula {
	if n == 0 {
		n = 1
	}
	if depth == 0 || rng.Intn(3) == 0 {
		a := logic.Atom(rng.Intn(n))
		if rng.Intn(2) == 0 {
			return logic.Not(logic.AtomF(a))
		}
		return logic.AtomF(a)
	}
	l := sessionRandomFormula(rng, n, depth-1)
	r := sessionRandomFormula(rng, n, depth-1)
	if rng.Intn(2) == 0 {
		return logic.And(l, r)
	}
	return logic.Or(l, r)
}
