// Package semtest provides the shared cached-oracle cross-check
// harness used by the semantics packages' tests: every semantics must
// produce bit-identical verdicts, model sets, and logical NP-call
// totals whether or not the oracle verdict cache (internal/cache) is
// attached. This is the per-semantics refinement of the bench suite's
// audit invariant — hits + misses must account for every oracle call,
// and reuse must actually occur (hits > 0 over the run).
package semtest

import (
	"math/rand"
	"testing"

	"disjunct/internal/cache"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/oracle"
)

// CrossCheckCached runs the named semantics over iters databases drawn
// from dbFor, once on an uncached oracle and once on an oracle whose
// verdict cache is SHARED across all iterations (so structural reuse
// across databases is exercised, not just within one query stream).
// For each database it compares InferLiteral over every literal,
// HasModel, and the full model set, and checks the counter invariants.
func CrossCheckCached(t *testing.T, semName string, iters int, dbFor func(iter int, rng *rand.Rand) *db.DB) {
	t.Helper()
	rng := rand.New(rand.NewSource(331))
	shared := cache.New(0)
	var hits int64
	for iter := 0; iter < iters; iter++ {
		d := dbFor(iter, rng)
		plainOra := oracle.NewNP()
		cachedOra := oracle.NewNP().WithCache(shared)
		plain, ok := core.New(semName, core.Options{Oracle: plainOra})
		if !ok {
			t.Fatalf("semantics %q not registered", semName)
		}
		cached, _ := core.New(semName, core.Options{Oracle: cachedOra})

		for a := 0; a < d.N(); a++ {
			for _, lit := range []logic.Lit{logic.PosLit(logic.Atom(a)), logic.NegLit(logic.Atom(a))} {
				want, wantErr := plain.InferLiteral(d, lit)
				got, gotErr := cached.InferLiteral(d, lit)
				if want != got || (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("iter %d: %s ⊨ %s: cached=%v (err %v), uncached=%v (err %v)\nDB:\n%s",
						iter, semName, d.Voc.LitString(lit), got, gotErr, want, wantErr, d.String())
				}
			}
		}

		wantHas, wantErr := plain.HasModel(d)
		gotHas, gotErr := cached.HasModel(d)
		if wantHas != gotHas || (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("iter %d: %s HasModel: cached=%v (err %v), uncached=%v (err %v)\nDB:\n%s",
				iter, semName, gotHas, gotErr, wantHas, wantErr, d.String())
		}

		wantM := map[string]bool{}
		gotM := map[string]bool{}
		_, wantErr = plain.Models(d, 0, func(m logic.Interp) bool { wantM[m.Key()] = true; return true })
		_, gotErr = cached.Models(d, 0, func(m logic.Interp) bool { gotM[m.Key()] = true; return true })
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("iter %d: %s Models error divergence: cached %v, uncached %v", iter, semName, gotErr, wantErr)
		}
		if len(wantM) != len(gotM) {
			t.Fatalf("iter %d: %s model sets: cached %d, uncached %d\nDB:\n%s",
				iter, semName, len(gotM), len(wantM), d.String())
		}
		for k := range wantM {
			if !gotM[k] {
				t.Fatalf("iter %d: %s: model %q missing from cached enumeration\nDB:\n%s",
					iter, semName, k, d.String())
			}
		}

		p, c := plainOra.Counters(), cachedOra.Counters()
		if p.NPCalls != c.NPCalls {
			t.Fatalf("iter %d: %s: logical NP-call total moved (cached %d, uncached %d)\nDB:\n%s",
				iter, semName, c.NPCalls, p.NPCalls, d.String())
		}
		if c.CacheHits+c.CacheMisses != c.NPCalls {
			t.Fatalf("iter %d: %s: hits(%d)+misses(%d) != NP calls(%d)",
				iter, semName, c.CacheHits, c.CacheMisses, c.NPCalls)
		}
		hits += c.CacheHits
	}
	if hits == 0 {
		t.Fatalf("%s: zero cache hits across %d iterations — the cache never engaged", semName, iters)
	}
}
