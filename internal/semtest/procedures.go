package semtest

import (
	"context"
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/plan"
	"disjunct/internal/session"
)

// ProcedureStats summarises one CrossCheckProcedures run so callers
// can assert route coverage: a fragment family whose fast path never
// fired, or a tiny-instance family the brute procedure never answered,
// is a harness bug (the identity claim would be vacuous).
type ProcedureStats struct {
	Queries int // (db, kind, query) triples compared
	Fast    int // answered by the fragment fast path
	Warm    int // handled by the warm session layer
	Brute   int // answered by brute refsem construction
}

// CrossCheckProcedures is the planner's verdict-identity harness: for
// every database the generator produces it runs each literal-inference
// and model-existence query through all four procedures the planner
// routes between — the fresh engines (core.New, the reference for this
// check), the fragment fast path (session.FastVerdict), a warm session
// (session.Manager.Query, shared across iterations so memo hits and
// engine reuse are exercised), and brute refsem construction
// (plan.Brute) — and requires every procedure that answers to return
// the identical verdict. Queries the fresh path refuses (ErrUnsupported
// outside the semantics' class) must be refused or unanswered by every
// other procedure too: routing must never turn a typed semantic
// refusal into a verdict.
func CrossCheckProcedures(t *testing.T, semName string, iters int, dbFor func(iter int, rng *rand.Rand) *db.DB) ProcedureStats {
	t.Helper()
	rng := rand.New(rand.NewSource(977))
	mgr := session.NewManager(session.Config{})
	ctx := context.Background()
	var stats ProcedureStats

	sem, ok := core.New(semName, core.Options{})
	if !ok {
		t.Fatalf("semantics %q not registered", semName)
	}

	for iter := 0; iter < iters; iter++ {
		d := dbFor(iter, rng)
		comp := mgr.InternDB(d)

		type query struct {
			kind session.Kind
			lit  logic.Lit
			text string
		}
		queries := []query{{kind: session.KindModel}}
		for a := 0; a < d.N(); a++ {
			for _, lit := range []logic.Lit{logic.PosLit(logic.Atom(a)), logic.NegLit(logic.Atom(a))} {
				queries = append(queries, query{session.KindLiteral, lit, d.Voc.LitString(lit)})
			}
		}

		for _, q := range queries {
			var want bool
			var wantErr error
			if q.kind == session.KindModel {
				want, wantErr = sem.HasModel(d)
			} else {
				want, wantErr = sem.InferLiteral(d, q.lit)
			}
			if wantErr != nil {
				// Outside the semantics' class: no other procedure may
				// answer where the reference refuses.
				if holds, ok := plan.Brute(ctx, comp, semName, q.kind, q.lit, nil, 16); ok {
					t.Fatalf("iter %d: %s %v: fresh refused (%v) but brute answered %v\nDB:\n%s",
						iter, semName, q.kind, wantErr, holds, d.String())
				}
				if holds, ok := session.FastVerdict(comp, semName, q.kind, q.lit, nil); ok {
					t.Fatalf("iter %d: %s %v: fresh refused (%v) but fast path answered %v\nDB:\n%s",
						iter, semName, q.kind, wantErr, holds, d.String())
				}
				continue
			}
			stats.Queries++

			if got, ok := session.FastVerdict(comp, semName, q.kind, q.lit, nil); ok {
				stats.Fast++
				if got != want {
					t.Fatalf("iter %d: %s %v %s: fast=%v fresh=%v\nDB:\n%s",
						iter, semName, q.kind, q.text, got, want, d.String())
				}
			}

			res, handled := mgr.Query(ctx, comp, session.Request{
				Sem: semName, Kind: q.kind, Lit: q.lit, QueryText: q.text,
			})
			if handled {
				if res.Err != nil {
					t.Fatalf("iter %d: %s %v %s: unbudgeted warm query interrupted: %v",
						iter, semName, q.kind, q.text, res.Err)
				}
				stats.Warm++
				if res.Holds != want {
					t.Fatalf("iter %d: %s %v %s (path %s): warm=%v fresh=%v\nDB:\n%s",
						iter, semName, q.kind, q.text, res.Path, res.Holds, want, d.String())
				}
			}

			if got, ok := plan.Brute(ctx, comp, semName, q.kind, q.lit, nil, 16); ok {
				stats.Brute++
				if got != want {
					t.Fatalf("iter %d: %s %v %s: brute=%v fresh=%v\nDB:\n%s",
						iter, semName, q.kind, q.text, got, want, d.String())
				}
			}
		}
	}
	if st := mgr.Stats(); st.ActiveCheckouts != 0 {
		t.Fatalf("%s: %d session checkouts leaked", semName, st.ActiveCheckouts)
	}
	return stats
}
