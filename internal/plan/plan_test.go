package plan

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/session"
	"disjunct/internal/store"

	_ "disjunct/internal/semantics/all"
)

func compile(t *testing.T, text string) *session.Compiled {
	t.Helper()
	d, err := db.Parse(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	return session.NewManager(session.Config{}).InternDB(d)
}

// wideDB builds a positive disjunctive database over n atoms — above
// the brute cap it forces the fresh route.
func wideDB(t *testing.T, n int) *session.Compiled {
	t.Helper()
	var b strings.Builder
	for i := 0; i+1 < n; i += 2 {
		fmt.Fprintf(&b, "x%d | x%d. ", i, i+1)
	}
	return compile(t, b.String())
}

func TestClassOf(t *testing.T) {
	definite := compile(t, "a. b :- a.")
	disj := compile(t, "a | b.")
	cases := []struct {
		comp *session.Compiled
		sem  string
		kind session.Kind
		want Class
	}{
		{definite, "GCWA", session.KindLiteral, ClassPoly}, // fast path collapses the Πᵖ₂ cell
		{disj, "GCWA", session.KindLiteral, ClassSigma2},   // general fragment, Πᵖ₂ cell
		{disj, "GCWA", session.KindModel, ClassPoly},       // positive-existence fast path
		{disj, "CWA", session.KindLiteral, ClassNP},        // coNP cell
		{disj, "DDR", session.KindLiteral, ClassNP},
		{disj, "DDR", session.KindModel, ClassPoly},    // P existence cell
		{disj, "DSM", session.KindModel, ClassPoly},    // Σᵖ₂ cell, but positive-existence fast path applies
		{disj, "PDSM", session.KindModel, ClassSigma2}, // no fast path: the Σᵖ₂ cell stands
	}
	for _, c := range cases {
		if got := ClassOf(c.comp, c.sem, c.kind); got != c.want {
			t.Errorf("ClassOf(%q, %s, %v) = %v, want %v", c.comp.D.String(), c.sem, c.kind, got, c.want)
		}
	}
	if got := ClassOf(disj, "NO-SUCH-SEMANTICS", session.KindLiteral); got != ClassSigma2 {
		t.Errorf("unknown semantics classed %v, want worst-case %v", got, ClassSigma2)
	}
}

func TestDecideLadder(t *testing.T) {
	definite := compile(t, "a. b :- a.")
	disj := compile(t, "a | b.")
	wide := wideDB(t, 20)

	p := New(Config{})
	if d := p.Decide(definite, "GCWA", session.KindLiteral); d.Proc != ProcFast {
		t.Errorf("definite GCWA literal routed %v, want fast", d.Proc)
	}
	if d := p.Decide(disj, "DDR", session.KindModel); d.Proc != ProcFast {
		t.Errorf("positive DDR existence routed %v, want fast", d.Proc)
	}
	// A polynomial cell without a fast path (DDR existence once a denial
	// disables the positive-existence shortcut) goes fresh: the engine
	// answers it without search, no warm state or race needed.
	denial := compile(t, "a | b. :- a, b.")
	if d := p.Decide(denial, "DDR", session.KindModel); d.Proc != ProcFresh || d.Class != ClassPoly {
		t.Errorf("DDR existence with IC routed %v class %v, want fresh/poly", d.Proc, d.Class)
	}
	if d := p.Decide(disj, "GCWA", session.KindLiteral); d.Proc != ProcWarm {
		t.Errorf("disjunctive GCWA literal routed %v, want warm", d.Proc)
	}
	if d := p.Decide(wide, "DSM", session.KindLiteral); d.Proc != ProcFresh {
		t.Errorf("20-atom DSM literal routed %v, want fresh (above brute cap)", d.Proc)
	}
	if d := p.Decide(disj, "CWA", session.KindLiteral); d.Proc != ProcFresh {
		t.Errorf("CWA literal routed %v, want fresh (no brute reference)", d.Proc)
	}

	// The brute/fresh boundary on a tiny Σ₂ᵖ query: cold races the
	// portfolio; a cheap calibrated estimate goes fresh; a
	// boundary-straddling one races; a clearly-expensive one goes brute.
	d := p.Decide(disj, "DSM", session.KindLiteral)
	if d.Proc != ProcPortfolio || d.HaveEst {
		t.Fatalf("cold tiny DSM literal routed %v (haveEst=%v), want portfolio cold", d.Proc, d.HaveEst)
	}
	p.Observe(disj.Raw, "DSM", Cost{NPCalls: 2, Micros: 10})
	if d := p.Decide(disj, "DSM", session.KindLiteral); d.Proc != ProcFresh || !d.HaveEst || d.EstNP != 2 {
		t.Errorf("cheap-estimate DSM routed %v (est %d), want fresh", d.Proc, d.EstNP)
	}
	p2 := New(Config{})
	p2.Observe(disj.Raw, "DSM", Cost{NPCalls: 6})
	if d := p2.Decide(disj, "DSM", session.KindLiteral); d.Proc != ProcPortfolio {
		t.Errorf("boundary-estimate DSM routed %v, want portfolio", d.Proc)
	}
	p3 := New(Config{})
	p3.Observe(disj.Raw, "DSM", Cost{NPCalls: 40})
	if d := p3.Decide(disj, "DSM", session.KindLiteral); d.Proc != ProcBrute {
		t.Errorf("expensive-estimate DSM routed %v, want brute", d.Proc)
	}

	st := p.Stats()
	if st["decisions"] == 0 || st["routed_fast"] == 0 || st["routed_warm"] == 0 ||
		st["routed_fresh"] == 0 || st["routed_portfolio"] == 0 {
		t.Errorf("routing counters not maintained: %v", st)
	}
}

func TestShouldShed(t *testing.T) {
	disj := compile(t, "a | b.")
	definite := compile(t, "a. b :- a.")
	p := New(Config{})

	cold := p.Decide(disj, "DSM", session.KindLiteral) // Σ₂ᵖ, cold, portfolio
	if p.ShouldShed(cold, 3, 8) {
		t.Error("shed below the occupancy threshold")
	}
	if !p.ShouldShed(cold, 4, 8) {
		t.Error("cold Σ₂ᵖ query not shed at 50% occupancy")
	}
	if p.ShouldShed(cold, 4, 0) {
		t.Error("shed with a zero queue bound")
	}
	if fast := p.Decide(definite, "GCWA", session.KindLiteral); p.ShouldShed(fast, 8, 8) {
		t.Error("fast-path query shed under full queue")
	}
	if np := p.Decide(disj, "DDR", session.KindLiteral); p.ShouldShed(np, 8, 8) {
		t.Error("NP-class query shed (only the Σ₂ᵖ tier sheds)")
	}

	// A calibrated-cheap estimate exempts the key; a calibrated-expensive
	// one keeps it shed-first.
	p.Observe(disj.Raw, "DSM", Cost{NPCalls: 2})
	if d := p.Decide(disj, "DSM", session.KindLiteral); p.ShouldShed(d, 8, 8) {
		t.Error("calibrated-cheap Σ₂ᵖ query shed")
	}
	// A calibrated-expensive key sheds only where brute can't rescue it:
	// on a wide instance (above the brute cap) the expensive Σ₂ᵖ query
	// is the first to go.
	wide := wideDB(t, 20)
	p4 := New(Config{})
	p4.Observe(wide.Raw, "DSM", Cost{NPCalls: 100})
	if d := p4.Decide(wide, "DSM", session.KindLiteral); d.Proc != ProcFresh || !p4.ShouldShed(d, 8, 8) {
		t.Errorf("calibrated-expensive wide Σ₂ᵖ query (proc %v) not shed under overload", d.Proc)
	}

	// On a tiny instance the same expensive estimate routes brute
	// instead — and brute-routed queries never shed: answering is
	// cheaper than queuing.
	p4.Observe(disj.Raw, "DSM", Cost{NPCalls: 100})
	if d := p4.Decide(disj, "DSM", session.KindLiteral); d.Proc != ProcBrute || p4.ShouldShed(d, 8, 8) {
		t.Errorf("brute-routed query (proc %v) shed under overload", d.Proc)
	}
}

// TestEstimatorDeterminism pins the commutative-sums design: any
// interleaving of the same multiset of observations must produce the
// identical estimate. Under -race this also proves the locking.
func TestEstimatorDeterminism(t *testing.T) {
	keys := []string{"k0", "k1", "k2", "k3"}
	type obs struct {
		key string
		c   Cost
	}
	var all []obs
	for i := 0; i < 800; i++ {
		all = append(all, obs{keys[i%len(keys)], Cost{
			NPCalls: int64(i % 17), SATConfl: int64(i % 5), Micros: int64(i),
		}})
	}

	seq := newEstimator(nil)
	for _, o := range all {
		seq.observe(o.key, "DSM", o.c)
	}

	conc := newEstimator(nil)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(all); i += workers {
				conc.observe(all[i].key, "DSM", all[i].c)
			}
		}(w)
	}
	wg.Wait()

	for _, k := range keys {
		want, ok1 := seq.estimate(k, "DSM")
		got, ok2 := conc.estimate(k, "DSM")
		if !ok1 || !ok2 || want != got {
			t.Errorf("key %s: sequential %+v (ok=%v) vs concurrent %+v (ok=%v)", k, want, ok1, got, ok2)
		}
	}
	if seq.observations.Load() != conc.observations.Load() {
		t.Errorf("observation counts diverge: %d vs %d", seq.observations.Load(), conc.observations.Load())
	}
}

// TestMergeSemilattice pins the handoff-import rule: max-by-count is
// idempotent (re-importing a slice accepts nothing), monotone (a
// smaller count never clobbers a larger one), and a seed followed by
// an import of the same snapshot cannot double-count.
func TestMergeSemilattice(t *testing.T) {
	src := newEstimator(nil)
	src.observe("db1", "DSM", Cost{NPCalls: 4, Micros: 100})
	src.observe("db1", "DSM", Cost{NPCalls: 6, Micros: 200})
	src.observe("db2", "GCWA", Cost{NPCalls: 1, Micros: 10})
	snap := src.export()

	dst := newEstimator(nil)
	if got := dst.merge(snap); got != 2 {
		t.Fatalf("first import accepted %d entries, want 2", got)
	}
	if got := dst.merge(snap); got != 0 {
		t.Errorf("re-import accepted %d entries, want 0 (idempotence)", got)
	}
	for _, s := range snap {
		want, _ := src.estimate(s.Raw, s.Sem)
		got, ok := dst.estimate(s.Raw, s.Sem)
		if !ok || want != got {
			t.Errorf("%s/%s: imported %+v, want %+v", s.Raw, s.Sem, got, want)
		}
	}

	// A stale slice (smaller count) must not clobber newer sums.
	dst.observe("db1", "DSM", Cost{NPCalls: 100})
	before, _ := dst.estimate("db1", "DSM")
	if got := dst.merge(snap); got != 0 {
		t.Errorf("stale import accepted %d entries, want 0 (monotonicity)", got)
	}
	if after, _ := dst.estimate("db1", "DSM"); after != before {
		t.Errorf("stale import moved the estimate: %+v -> %+v", before, after)
	}
}

// TestEstimatePersistence proves the write-behind/seed loop: estimates
// observed against a store survive a close/reopen into a fresh
// planner, and re-seeding plus re-importing the same snapshot is a
// no-op (the restart path cannot double-count).
func TestEstimatePersistence(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	p := New(Config{Store: st})
	p.Observe("dbX", "DSM", Cost{NPCalls: 9, SATConfl: 3, Micros: 500})
	p.Observe("dbX", "DSM", Cost{NPCalls: 11, SATConfl: 5, Micros: 700})
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	p2 := New(Config{Store: st2})
	e, ok := p2.est.estimate("dbX", "DSM")
	if !ok {
		t.Fatal("estimate did not survive the restart")
	}
	if e.count != 2 || e.sumNP != 20 || e.sumConfl != 8 || e.sumMicros != 1200 {
		t.Errorf("recovered estimate %+v, want count=2 sumNP=20 sumConfl=8 sumMicros=1200", e)
	}
	if got := p2.Import(p2.Export()); got != 0 {
		t.Errorf("self re-import accepted %d entries, want 0", got)
	}
}
