package plan

import (
	"sync"
	"sync/atomic"

	"disjunct/internal/store"
)

// Cost is one completed query's measured cost — the exact counters the
// execution paths already produce.
type Cost struct {
	NPCalls  int64
	SATConfl int64
	Micros   int64
}

// entry accumulates commutative sums per (fingerprint, semantics) key.
// Sums instead of an EWMA so that concurrent observations are
// order-independent: any interleaving of the same multiset of
// observations yields the same final estimate (the determinism the
// -race suite asserts), and the means derive on read.
type entry struct {
	count     int64
	sumNP     int64
	sumConfl  int64
	sumMicros int64
}

func (e entry) meanNP() int64 {
	if e.count == 0 {
		return 0
	}
	return e.sumNP / e.count
}

func (e entry) meanUS() int64 {
	if e.count == 0 {
		return 0
	}
	return e.sumMicros / e.count
}

// Estimator is the per-(fingerprint, semantics) cost model. A single
// mutex over the map is enough: observations are a handful of integer
// adds, far cheaper than the NP search they describe.
type Estimator struct {
	mu      sync.Mutex
	entries map[estKey]*entry
	st      *store.Store // write-behind target, may be nil

	observations atomic.Int64
}

// estKey is a composite struct key: the raw fingerprint is binary
// (varint bytes, NULs included), so no in-string separator is safe.
type estKey struct {
	raw, sem string
}

func newEstimator(st *store.Store) *Estimator {
	return &Estimator{entries: make(map[estKey]*entry), st: st}
}

// observe folds one measured cost into the key's sums and writes the
// snapshot behind to the store (the store's flusher batches the I/O).
func (e *Estimator) observe(raw, sem string, c Cost) {
	e.observations.Add(1)
	e.mu.Lock()
	en := e.entries[estKey{raw, sem}]
	if en == nil {
		en = &entry{}
		e.entries[estKey{raw, sem}] = en
	}
	en.count++
	en.sumNP += c.NPCalls
	en.sumConfl += c.SATConfl
	en.sumMicros += c.Micros
	snap := *en
	e.mu.Unlock()
	if e.st != nil {
		e.st.PutEstimate(store.Estimate{
			Raw: raw, Sem: sem,
			Count: snap.count, SumNP: snap.sumNP,
			SumConfl: snap.sumConfl, SumMicros: snap.sumMicros,
		})
	}
}

// estimate returns the key's accumulated entry; ok is false when no
// observation has ever landed (a cold query).
func (e *Estimator) estimate(raw, sem string) (entry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.entries[estKey{raw, sem}]
	if en == nil || en.count == 0 {
		return entry{}, false
	}
	return *en, true
}

// seed loads persisted estimates at construction. Same merge rule as
// handoff import so a store seed followed by an import of the same
// snapshot cannot double-count.
func (e *Estimator) seed(list []store.Estimate) { e.merge(list) }

// merge absorbs shipped estimates: for each key the entry with the
// larger observation count wins. Max-by-count is commutative,
// idempotent, and monotone — the same join-semilattice discipline the
// cluster gossip uses — so re-importing a slice, or importing after a
// store seed of the same snapshot, changes nothing.
func (e *Estimator) merge(list []store.Estimate) int {
	accepted := 0
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, s := range list {
		if s.Count <= 0 {
			continue
		}
		k := estKey{s.Raw, s.Sem}
		if en := e.entries[k]; en != nil && en.count >= s.Count {
			continue
		}
		e.entries[k] = &entry{count: s.Count, sumNP: s.SumNP, sumConfl: s.SumConfl, sumMicros: s.SumMicros}
		accepted++
	}
	return accepted
}

// export snapshots every entry for handoff/join slices.
func (e *Estimator) export() []store.Estimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]store.Estimate, 0, len(e.entries))
	for k, en := range e.entries {
		out = append(out, store.Estimate{
			Raw: k.raw, Sem: k.sem,
			Count: en.count, SumNP: en.sumNP,
			SumConfl: en.sumConfl, SumMicros: en.sumMicros,
		})
	}
	return out
}

func (e *Estimator) len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.entries)
}
