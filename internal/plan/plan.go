// Package plan is the cost-based query planner: it classifies each
// incoming query into a cost class before admission — from the
// semantics' complexity cells (core.Info.Cells), the PR 5 fragment
// classifier, and compiled-DB size features — maintains a
// per-(fingerprint, semantics) moving-average cost model calibrated
// online from the oracle/conflict/wall-clock counters every completed
// query produces, and picks the cheapest correct procedure: the
// fixpoint fast path, a warm session, the fresh parallel enumeration,
// or brute-force refsem construction for tiny instances. Queries whose
// estimate straddles the fresh/brute boundary race a two-procedure
// portfolio under a shared budget with first-completion-wins
// cancellation (portfolio.go). Estimates feed the serve layer's
// admission control so overload sheds expensive (Σ₂ᵖ-class, cold,
// high-estimate) queries first instead of FIFO.
package plan

import (
	"sync/atomic"

	"disjunct/internal/core"
	"disjunct/internal/session"
	"disjunct/internal/store"
)

// Class is the planner's cost tier for one (query kind, semantics,
// fragment) combination — the machine-readable complexity cells
// collapsed onto the three levels that matter for routing and
// shedding.
type Class int

const (
	// ClassPoly: answered in polynomial time — a fragment fast path
	// applies, or the general-fragment cell is P.
	ClassPoly Class = iota
	// ClassNP: one NP-oracle level (NP or coNP cell).
	ClassNP
	// ClassSigma2: second level of the polynomial hierarchy (Σᵖ₂/Πᵖ₂
	// cell) — the shed-first tier under overload.
	ClassSigma2
)

// String returns the wire name used in /healthz and bench reports.
func (c Class) String() string {
	switch c {
	case ClassPoly:
		return "poly"
	case ClassNP:
		return "np"
	default:
		return "sigma2"
	}
}

// Proc is the procedure the planner routes a query to.
type Proc int

const (
	// ProcFast: the fragment fixpoint fast path (zero NP calls).
	ProcFast Proc = iota
	// ProcWarm: the warm-session layer (memo + incremental engine).
	ProcWarm
	// ProcFresh: the fresh parallel enumeration engine.
	ProcFresh
	// ProcBrute: explicit refsem model-set construction — no oracle at
	// all; correct and fast only on tiny instances.
	ProcBrute
	// ProcPortfolio: race brute against fresh under a shared budget,
	// first definite completion wins.
	ProcPortfolio
)

// String returns the wire name used in /healthz and bench reports.
func (p Proc) String() string {
	switch p {
	case ProcFast:
		return "fast"
	case ProcWarm:
		return "warm"
	case ProcFresh:
		return "fresh"
	case ProcBrute:
		return "brute"
	default:
		return "portfolio"
	}
}

// Decision is the planner's verdict for one query, computed before
// admission: the cost class (drives cost-aware shedding), the chosen
// procedure (drives execution routing), and the estimate it was based
// on, if one existed.
type Decision struct {
	Class   Class
	Proc    Proc
	HaveEst bool  // a calibrated estimate existed for (fingerprint, semantics)
	EstNP   int64 // mean NP calls per query, when HaveEst
	EstUS   int64 // mean wall-clock microseconds per query, when HaveEst
}

// Config tunes the planner. Zero values pick the defaults.
type Config struct {
	// BruteMaxAtoms caps the instance size (ground atoms) for the brute
	// procedure and the portfolio. Default 8: 2⁸ interpretations
	// enumerate in microseconds; beyond that the solver-backed paths
	// win. Hard-capped at 16 regardless of configuration.
	BruteMaxAtoms int
	// ExpensiveNP is the mean-NP-calls threshold that marks an
	// estimate expensive: ≥ 2× routes to brute outright (when
	// eligible), > ½× straddles the boundary and races the portfolio,
	// and > 1× marks the query shed-eligible under overload. Default 8.
	ExpensiveNP int64
	// ShedOccupancy is the queue-occupancy fraction above which
	// cost-aware shedding engages; below it the planner never sheds.
	// Default 0.5.
	ShedOccupancy float64
	// Store, when set, seeds the estimator at construction and
	// receives a write-behind snapshot after every observation so
	// estimates survive restarts.
	Store *store.Store
}

func (c Config) withDefaults() Config {
	if c.BruteMaxAtoms == 0 {
		c.BruteMaxAtoms = 8
	}
	if c.BruteMaxAtoms > bruteHardCap {
		c.BruteMaxAtoms = bruteHardCap
	}
	if c.ExpensiveNP == 0 {
		c.ExpensiveNP = 8
	}
	if c.ShedOccupancy == 0 {
		c.ShedOccupancy = 0.5
	}
	return c
}

// Planner holds the cost model and decision counters for one server.
type Planner struct {
	cfg Config
	est *Estimator

	decisions      atomic.Int64
	estServed      atomic.Int64
	routedFast     atomic.Int64
	routedWarm     atomic.Int64
	routedFresh    atomic.Int64
	routedBrute    atomic.Int64
	routedPortfol  atomic.Int64
	portfolioRaces atomic.Int64
	winsBrute      atomic.Int64
	winsFresh      atomic.Int64
	shedCost       atomic.Int64
}

// New builds a planner, seeding its estimator from cfg.Store when one
// is configured.
func New(cfg Config) *Planner {
	cfg = cfg.withDefaults()
	p := &Planner{cfg: cfg, est: newEstimator(cfg.Store)}
	if cfg.Store != nil {
		p.est.seed(cfg.Store.Estimates())
	}
	return p
}

// ClassOf maps a query onto its cost tier: the fragment fast path
// collapses everything it answers to polynomial; otherwise the
// semantics' complexity cell for the query kind decides, degrading to
// Σ₂ᵖ (worst case) for unknown semantics or unpopulated cells.
func ClassOf(comp *session.Compiled, sem string, kind session.Kind) Class {
	if session.FastEligible(comp, sem, kind) {
		return ClassPoly
	}
	info, ok := core.InfoFor(sem)
	if !ok {
		return ClassSigma2
	}
	switch info.Cell(kind.String()) {
	case core.CellP:
		return ClassPoly
	case core.CellNP, core.CellCoNP:
		return ClassNP
	default:
		return ClassSigma2
	}
}

// Decide picks the cheapest correct procedure for one query. The
// ladder, cheapest first:
//
//   - fragment fast path when the allowlist answers (zero NP calls);
//   - fresh for remaining polynomial cells (no solver races needed);
//   - warm session for the minimal-model family (memo + incremental
//     engine beat any cold procedure on hot keys);
//   - for the rest, the brute/fresh boundary: tiny supported instances
//     with an expensive estimate go brute, clearly-cheap estimates go
//     fresh, and cold or boundary-straddling estimates race the
//     portfolio — learning the true cost either way.
func (p *Planner) Decide(comp *session.Compiled, sem string, kind session.Kind) Decision {
	p.decisions.Add(1)
	d := Decision{Class: ClassOf(comp, sem, kind)}
	if e, ok := p.est.estimate(comp.Raw, sem); ok {
		d.HaveEst, d.EstNP, d.EstUS = true, e.meanNP(), e.meanUS()
		p.estServed.Add(1)
	}
	switch {
	case session.FastEligible(comp, sem, kind):
		d.Proc = ProcFast
	case d.Class == ClassPoly:
		// Polynomial cell without a fast path (e.g. DDR existence):
		// the fresh engine answers it without search.
		d.Proc = ProcFresh
	case session.WarmEligible(sem, kind):
		d.Proc = ProcWarm
	case !BruteEligible(comp, sem, p.cfg.BruteMaxAtoms):
		d.Proc = ProcFresh
	case !d.HaveEst:
		// Cold tiny instance: race and calibrate.
		d.Proc = ProcPortfolio
	case d.EstNP >= 2*p.cfg.ExpensiveNP:
		d.Proc = ProcBrute
	case d.EstNP > p.cfg.ExpensiveNP/2:
		// Straddling the boundary: race the portfolio.
		d.Proc = ProcPortfolio
	default:
		d.Proc = ProcFresh
	}
	switch d.Proc {
	case ProcFast:
		p.routedFast.Add(1)
	case ProcWarm:
		p.routedWarm.Add(1)
	case ProcFresh:
		p.routedFresh.Add(1)
	case ProcBrute:
		p.routedBrute.Add(1)
	case ProcPortfolio:
		p.routedPortfol.Add(1)
	}
	return d
}

// ShouldShed reports whether a query should be cost-shed given the
// admission queue's current occupancy (queued of bound). Below the
// occupancy threshold nothing sheds — cost-aware admission only
// changes behavior under overload. Above it, the expensive tier goes
// first: Σ₂ᵖ-class queries that are cold or whose estimate exceeds
// ExpensiveNP. Polynomial and brute-routed queries are never shed —
// they cost (nearly) nothing and shedding them can only lose
// throughput. The caller records the planner's shed count via
// CountShed when it acts on a true return.
func (p *Planner) ShouldShed(d Decision, queued, bound int) bool {
	if bound <= 0 || float64(queued) < p.cfg.ShedOccupancy*float64(bound) {
		return false
	}
	return p.Expensive(d)
}

// Expensive reports whether a decision falls in the expensive tier:
// Σ₂ᵖ-class work that is cold or whose estimate exceeds ExpensiveNP,
// with no cheap procedure (fast path or brute reference) to rescue it.
// This is the tier ShouldShed sheds under queue pressure and the tier
// the admission layer's bulkhead caps concurrently — an expensive
// query holds an execution slot for seconds, so letting the tier take
// every slot starves the microsecond traffic behind it.
func (p *Planner) Expensive(d Decision) bool {
	if d.Proc == ProcFast || d.Proc == ProcBrute || d.Class == ClassPoly {
		return false
	}
	if d.Class != ClassSigma2 {
		return false
	}
	return !d.HaveEst || d.EstNP > p.cfg.ExpensiveNP
}

// CountShed records one cost shed acted upon by the admission layer.
func (p *Planner) CountShed() { p.shedCost.Add(1) }

// BruteMaxAtoms exposes the configured (defaulted, hard-capped) brute
// instance bound for the execution layer's eligibility re-checks.
func (p *Planner) BruteMaxAtoms() int { return p.cfg.BruteMaxAtoms }

// Observe folds one completed query's measured cost into the moving
// average for its (fingerprint, semantics) key and write-behinds the
// snapshot to the store when one is configured.
func (p *Planner) Observe(raw, sem string, c Cost) { p.est.observe(raw, sem, c) }

// CountRace records one portfolio race and its winner for /healthz.
func (p *Planner) CountRace(winner string) {
	p.portfolioRaces.Add(1)
	if winner == "brute" {
		p.winsBrute.Add(1)
	} else {
		p.winsFresh.Add(1)
	}
}

// Export snapshots the estimator for handoff/join slices.
func (p *Planner) Export() []store.Estimate { return p.est.export() }

// Import merges shipped estimates (max-observation-count wins, so
// repeated imports are idempotent) and returns how many were accepted.
func (p *Planner) Import(list []store.Estimate) int { return p.est.merge(list) }

// Stats is the /healthz planner section.
func (p *Planner) Stats() map[string]int64 {
	return map[string]int64{
		"decisions":           p.decisions.Load(),
		"estimates_served":    p.estServed.Load(),
		"estimate_entries":    int64(p.est.len()),
		"observations":        p.est.observations.Load(),
		"routed_fast":         p.routedFast.Load(),
		"routed_warm":         p.routedWarm.Load(),
		"routed_fresh":        p.routedFresh.Load(),
		"routed_brute":        p.routedBrute.Load(),
		"routed_portfolio":    p.routedPortfol.Load(),
		"portfolio_races":     p.portfolioRaces.Load(),
		"portfolio_win_brute": p.winsBrute.Load(),
		"portfolio_win_fresh": p.winsFresh.Load(),
		"shed_cost":           p.shedCost.Load(),
	}
}
