package plan_test

import (
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/semtest"

	_ "disjunct/internal/semantics/all"
)

// TestProcedureIdentityAcrossFragments is the planner's end-to-end
// verdict-identity gate: for every fragment family the router can see,
// every procedure it chooses between — fresh engines, fragment fast
// path, warm session, brute refsem — must return the identical verdict
// on every literal-inference and model-existence query. Coverage
// assertions make the identity claim non-vacuous: the definite family
// must actually exercise the fast path, and the tiny general family
// must actually exercise brute construction and warm sessions.
func TestProcedureIdentityAcrossFragments(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-checking every procedure is slow")
	}
	families := []struct {
		name  string
		dbFor func(iter int, rng *rand.Rand) *db.DB
	}{
		{"definite", func(iter int, rng *rand.Rand) *db.DB {
			return gen.Random(rng, gen.Config{Atoms: 4 + iter%2, Clauses: 5, MaxHead: 1, MaxBody: 2, FactProb: 0.4})
		}},
		{"horn", func(iter int, rng *rand.Rand) *db.DB {
			return gen.Random(rng, gen.Config{Atoms: 4 + iter%2, Clauses: 5, MaxHead: 1, MaxBody: 2, FactProb: 0.4, IntegrityPr: 0.25})
		}},
		{"stratified", func(iter int, rng *rand.Rand) *db.DB {
			return gen.RandomStratified(rng, 4+iter%2, 5, 2)
		}},
		{"positive", func(iter int, rng *rand.Rand) *db.DB {
			return gen.Random(rng, gen.Positive(4+iter%2, 5))
		}},
		{"general", func(iter int, rng *rand.Rand) *db.DB {
			return gen.Random(rng, gen.Normal(4+iter%2, 5))
		}},
	}
	sems := []string{"GCWA", "CCWA", "EGCWA", "ECWA", "CIRC", "CWA",
		"DDR", "WGCWA", "PWS", "PMS", "DSM", "PERF", "ICWA"}

	stats := map[string]semtest.ProcedureStats{}
	for _, fam := range families {
		for _, sem := range sems {
			t.Run(fam.name+"/"+sem, func(t *testing.T) {
				stats[fam.name+"/"+sem] = semtest.CrossCheckProcedures(t, sem, 3, fam.dbFor)
			})
		}
	}

	// Route coverage: each procedure must have answered somewhere.
	if s := stats["definite/GCWA"]; s.Fast == 0 {
		t.Errorf("definite/GCWA never hit the fast path: %+v", s)
	}
	if s := stats["positive/GCWA"]; s.Warm == 0 || s.Brute == 0 {
		t.Errorf("positive/GCWA skipped warm or brute coverage: %+v", s)
	}
	if s := stats["positive/DSM"]; s.Brute == 0 {
		t.Errorf("positive/DSM never exercised brute construction: %+v", s)
	}
	if s := stats["general/DSM"]; s.Queries == 0 {
		t.Errorf("general/DSM compared zero queries")
	}
}
