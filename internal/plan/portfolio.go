package plan

import (
	"context"

	"disjunct/internal/oracle"
)

// Portfolio execution: two procedures race under one shared budget —
// the query's single budget allocation, not one per arm — with
// first-completion-wins cancellation. The first arm to return a
// definite verdict cancels the other; the loser's budget trip (it was
// interrupted mid-search by the cancellation) is discarded and never
// surfaces to the caller. Race always waits for both arms to return
// before it does, so a settled Race leaks no goroutines. Verdict
// identity between the arms is a test-asserted invariant, never
// assumed here: Race reports the first definite answer, whichever arm
// produced it.

// Outcome is one arm's result: a verdict, or a typed error (budget
// interruption, cancellation, semantic refusal).
type Outcome struct {
	Holds    bool
	Err      error
	Counters oracle.Counters
}

// Arm is one racing procedure. Run must honor ctx cancellation — that
// is what makes first-completion-wins cancellation settle.
type Arm struct {
	Name string
	Run  func(ctx context.Context) Outcome
}

// RaceResult is the settled outcome of a two-arm race.
type RaceResult struct {
	// Winner names the arm whose outcome was adopted.
	Winner string
	// Out is the adopted outcome. Err is nil unless every arm failed.
	Out Outcome
	// Total sums both arms' counters — the portfolio's full account,
	// including the canceled loser's partial work, for the benchgate
	// "portfolio total ≤ worst single procedure" audit.
	Total oracle.Counters
}

// Race runs both arms concurrently under derived contexts and adopts
// the first definite (Err == nil) completion, canceling and then
// draining the other arm. If the first finisher failed, the race
// waits for the second: a definite second answer wins and the first
// arm's error never surfaces. If both fail, the outcome of arm b (by
// convention the canonical fresh procedure, whose errors carry the
// serve layer's taxonomy) is adopted.
func Race(ctx context.Context, a, b Arm) RaceResult {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type done struct {
		arm Arm
		out Outcome
	}
	ch := make(chan done, 2)
	for _, arm := range []Arm{a, b} {
		arm := arm
		go func() { ch <- done{arm, arm.Run(rctx)} }()
	}

	first := <-ch
	if first.out.Err == nil {
		cancel() // first definite completion wins: interrupt the loser
	}
	second := <-ch // settle: both arms have returned

	total := sumCounters(first.out.Counters, second.out.Counters)
	switch {
	case first.out.Err == nil:
		return RaceResult{Winner: first.arm.Name, Out: first.out, Total: total}
	case second.out.Err == nil:
		return RaceResult{Winner: second.arm.Name, Out: second.out, Total: total}
	default:
		// Both failed. Adopt arm b's outcome (the canonical procedure's
		// typed error), whichever order they finished in.
		failed := second
		if failed.arm.Name != b.Name {
			failed = first
		}
		return RaceResult{Winner: failed.arm.Name, Out: failed.out, Total: total}
	}
}

func sumCounters(x, y oracle.Counters) oracle.Counters {
	return oracle.Counters{
		NPCalls:     x.NPCalls + y.NPCalls,
		Sigma2Calls: x.Sigma2Calls + y.Sigma2Calls,
		SATConfl:    x.SATConfl + y.SATConfl,
	}
}
