package plan

import (
	"context"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
	"disjunct/internal/session"
)

// The brute procedure answers a query by explicit refsem model-set
// construction — 2ⁿ enumeration straight from the paper's definitions,
// no oracle, no search. On tiny instances that is microseconds of pure
// CPU, cheaper than a single SAT call, and immune to budget trips. The
// dispatch collapses the registry's alias/partition pairs onto the
// reference constructions that the serve layer's default (nil
// partition = full minimisation) makes equivalent: CCWA with P = all
// atoms is GCWA; ECWA and CIRC collapse onto EGCWA's minimal models;
// WGCWA shares DDR's model set; PMS shares PWS's possible worlds.
// CWA has no reference construction, PDSM enumerates partial models
// (a different answer shape), and ICWA's stratifiability is dynamic —
// all three fall through to the fresh path.
var bruteRefs = map[string]func(*db.DB) []logic.Interp{
	"GCWA":  refsem.GCWA,
	"CCWA":  refsem.GCWA,
	"EGCWA": refsem.EGCWA,
	"ECWA":  refsem.EGCWA,
	"CIRC":  refsem.EGCWA,
	"DDR":   refsem.DDR,
	"WGCWA": refsem.DDR,
	"PWS":   refsem.PWS,
	"PMS":   refsem.PWS,
	"DSM":   refsem.DSM,
	"PERF":  refsem.PERF,
}

// bruteHardCap bounds the instance size regardless of configuration:
// 2¹⁶ interpretations is the most the "tiny instance" claim tolerates.
const bruteHardCap = 16

// BruteEligible reports whether the brute procedure can answer sem on
// comp within the configured atom bound: a reference construction
// exists and the semantics is applicable to the database's syntactic
// features (an inapplicable pair must surface the fresh path's typed
// ErrUnsupported, not a brute verdict).
func BruteEligible(comp *session.Compiled, sem string, maxAtoms int) bool {
	if maxAtoms > bruteHardCap {
		maxAtoms = bruteHardCap
	}
	if comp.N > maxAtoms {
		return false
	}
	if bruteRefs[sem] == nil {
		return false
	}
	info, ok := core.InfoFor(sem)
	return ok && info.Applicable(comp.HasNeg, comp.HasIC)
}

// Brute answers one query by reference model-set construction. ok is
// false when the pair is ineligible or the context is already done —
// the caller falls back to the fresh path. A brute answer is always
// definite: no oracle, no budget, no faults.
func Brute(ctx context.Context, comp *session.Compiled, sem string, kind session.Kind, lit logic.Lit, f *logic.Formula, maxAtoms int) (holds, ok bool) {
	if !BruteEligible(comp, sem, maxAtoms) {
		return false, false
	}
	if ctx != nil && ctx.Err() != nil {
		return false, false
	}
	set := bruteRefs[sem](comp.D)
	switch kind {
	case session.KindModel:
		return len(set) > 0, true
	case session.KindLiteral:
		return refsem.Entails(set, logic.LitF(lit)), true
	case session.KindFormula:
		return refsem.Entails(set, f), true
	}
	return false, false
}
