package plan

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"disjunct/internal/oracle"
)

var errTrip = errors.New("budget: conflicts exhausted (test)")

// blockingArm returns an arm that waits for cancellation, records the
// ctx error it observed, and fails with a budget trip — the canceled
// loser of a race.
func blockingArm(name string, sawCancel *atomic.Bool) Arm {
	return Arm{Name: name, Run: func(ctx context.Context) Outcome {
		<-ctx.Done()
		sawCancel.Store(true)
		return Outcome{Err: errTrip, Counters: oracle.Counters{NPCalls: 5, SATConfl: 7}}
	}}
}

// TestRaceFirstDefiniteWinsAndCancelsLoser pins the portfolio
// contract: the first definite completion wins, the loser is canceled
// and drained, its budget trip never surfaces, and the total counters
// account for both arms' work.
func TestRaceFirstDefiniteWinsAndCancelsLoser(t *testing.T) {
	var canceled atomic.Bool
	fast := Arm{Name: "brute", Run: func(ctx context.Context) Outcome {
		return Outcome{Holds: true, Counters: oracle.Counters{NPCalls: 1}}
	}}
	res := Race(context.Background(), fast, blockingArm("fresh", &canceled))
	if res.Winner != "brute" || res.Out.Err != nil || !res.Out.Holds {
		t.Fatalf("race adopted %q err=%v holds=%v, want clean brute win", res.Winner, res.Out.Err, res.Out.Holds)
	}
	if !canceled.Load() {
		t.Error("loser was not canceled (Race returned before the loser settled)")
	}
	if res.Total.NPCalls != 6 || res.Total.SATConfl != 7 {
		t.Errorf("total counters %+v, want both arms summed (np=6 confl=7)", res.Total)
	}
}

// TestRaceSecondDefiniteWins: a first-finisher error must not decide
// the race — the slower arm's clean verdict wins and the error never
// surfaces.
func TestRaceSecondDefiniteWins(t *testing.T) {
	failFast := Arm{Name: "brute", Run: func(ctx context.Context) Outcome {
		return Outcome{Err: errTrip}
	}}
	slowClean := Arm{Name: "fresh", Run: func(ctx context.Context) Outcome {
		time.Sleep(5 * time.Millisecond)
		if ctx.Err() != nil {
			t.Error("survivor was canceled by the loser's failure")
		}
		return Outcome{Holds: false, Counters: oracle.Counters{NPCalls: 3}}
	}}
	res := Race(context.Background(), failFast, slowClean)
	if res.Winner != "fresh" || res.Out.Err != nil || res.Out.Holds {
		t.Fatalf("race adopted %q err=%v holds=%v, want clean fresh win", res.Winner, res.Out.Err, res.Out.Holds)
	}
}

// TestRaceBothFailAdoptsCanonicalArm: when every arm fails, arm b's
// outcome (the canonical fresh procedure with the serve layer's typed
// errors) is adopted regardless of finishing order.
func TestRaceBothFailAdoptsCanonicalArm(t *testing.T) {
	errA := errors.New("brute: synthetic cancel")
	errB := errors.New("budget: deadline exceeded (test)")
	for _, delayA := range []time.Duration{0, 3 * time.Millisecond} {
		a := Arm{Name: "brute", Run: func(ctx context.Context) Outcome {
			time.Sleep(delayA)
			return Outcome{Err: errA}
		}}
		b := Arm{Name: "fresh", Run: func(ctx context.Context) Outcome {
			time.Sleep(3*time.Millisecond - delayA)
			return Outcome{Err: errB}
		}}
		res := Race(context.Background(), a, b)
		if res.Winner != "fresh" || !errors.Is(res.Out.Err, errB) {
			t.Errorf("delayA=%v: both-fail race adopted %q err=%v, want fresh's typed error", delayA, res.Winner, res.Out.Err)
		}
	}
}

// TestRaceGoroutineSettle: a settled Race leaks nothing, even when the
// loser only returns on cancellation.
func TestRaceGoroutineSettle(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		var canceled atomic.Bool
		winner := Arm{Name: "brute", Run: func(ctx context.Context) Outcome {
			return Outcome{Holds: i%2 == 0}
		}}
		res := Race(context.Background(), winner, blockingArm("fresh", &canceled))
		if res.Out.Err != nil {
			t.Fatalf("race %d failed: %v", i, res.Out.Err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutine leak after 50 races: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestRaceHonorsParentCancel: cancelling the caller's context fails
// both arms and the race settles with arm b's (typed) error.
func TestRaceHonorsParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	arm := func(name string) Arm {
		return Arm{Name: name, Run: func(ctx context.Context) Outcome {
			<-ctx.Done()
			return Outcome{Err: fmt.Errorf("%s: %w", name, ctx.Err())}
		}}
	}
	res := Race(ctx, arm("brute"), arm("fresh"))
	if res.Winner != "fresh" || !errors.Is(res.Out.Err, context.Canceled) {
		t.Fatalf("parent-canceled race adopted %q err=%v, want fresh's cancellation", res.Winner, res.Out.Err)
	}
}
