package wfs

import (
	"math/rand"
	"testing"

	"disjunct/internal/db"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"
)

func TestClassics(t *testing.T) {
	cases := []struct {
		src  string
		want map[string]logic.TruthValue
	}{
		{"a :- not b.", map[string]logic.TruthValue{"a": logic.True, "b": logic.False}},
		{"a :- not a.", map[string]logic.TruthValue{"a": logic.Undefined}},
		{"a :- not b. b :- not a.", map[string]logic.TruthValue{"a": logic.Undefined, "b": logic.Undefined}},
		{"a. b :- a, not c.", map[string]logic.TruthValue{"a": logic.True, "b": logic.True, "c": logic.False}},
		// p depends negatively on an undefined loop: undefined.
		{"a :- not b. b :- not a. p :- not a.", map[string]logic.TruthValue{"p": logic.Undefined}},
		// Positive loop with no external support: false.
		{"a :- b. b :- a.", map[string]logic.TruthValue{"a": logic.False, "b": logic.False}},
	}
	for _, tc := range cases {
		d := dbtest.MustParse(tc.src)
		p := Compute(d)
		for name, want := range tc.want {
			a, ok := d.Voc.Lookup(name)
			if !ok {
				t.Fatalf("%q: unknown atom %s", tc.src, name)
			}
			if got := p.Value(a); got != want {
				t.Fatalf("%q: wfs(%s) = %v, want %v", tc.src, name, got, want)
			}
		}
	}
}

func TestNotNormalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic on disjunctive program")
		}
	}()
	Compute(dbtest.MustParse("a | b."))
}

func TestIsNormal(t *testing.T) {
	if !IsNormal(dbtest.MustParse("a :- not b. b.")) {
		t.Fatalf("NLP misclassified")
	}
	if IsNormal(dbtest.MustParse("a | b.")) {
		t.Fatalf("disjunctive head accepted")
	}
	if IsNormal(dbtest.MustParse("a. :- a.")) {
		t.Fatalf("integrity clause accepted")
	}
}

// randomNLP generates a random normal logic program.
func randomNLP(rng *rand.Rand, atoms, clauses int) *db.DB {
	cfg := gen.Config{Atoms: atoms, Clauses: clauses, MaxHead: 1, MaxBody: 2, NegProb: 0.4, FactProb: 0.3}
	return gen.Random(rng, cfg)
}

func TestWFSIsPartialStable(t *testing.T) {
	// The well-founded model of an NLP is a partial stable model —
	// cross-validate against the brute-force PDSM reference.
	rng := rand.New(rand.NewSource(191))
	for iter := 0; iter < 200; iter++ {
		d := randomNLP(rng, 2+rng.Intn(4), 1+rng.Intn(7))
		wf := Compute(d)
		found := false
		for _, p := range refsem.PDSM(d) {
			if p.Equal(wf) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("iter %d: WFS model %s is not among the partial stable models\nDB:\n%s",
				iter, wf.String(d.Voc), d.String())
		}
	}
}

func TestWFSIsKnowledgeLeastPSM(t *testing.T) {
	// Every partial stable model refines the well-founded model: it
	// agrees on every atom the WFS decides (true stays true, false
	// stays false).
	rng := rand.New(rand.NewSource(192))
	for iter := 0; iter < 200; iter++ {
		d := randomNLP(rng, 2+rng.Intn(4), 1+rng.Intn(6))
		wf := Compute(d)
		for _, p := range refsem.PDSM(d) {
			for v := 0; v < d.N(); v++ {
				a := logic.Atom(v)
				if wv := wf.Value(a); wv != logic.Undefined && p.Value(a) != wv {
					t.Fatalf("iter %d: PSM %s contradicts WFS %s on %s\nDB:\n%s",
						iter, p.String(d.Voc), wf.String(d.Voc), d.Voc.Name(a), d.String())
				}
			}
		}
	}
}

func TestTotalStableMatchesDSM(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	totals := 0
	for iter := 0; iter < 200; iter++ {
		d := randomNLP(rng, 2+rng.Intn(4), 1+rng.Intn(6))
		m, total := TotalStable(d)
		if !total {
			continue
		}
		totals++
		stable := refsem.DSM(d)
		if len(stable) != 1 || !stable[0].Equal(m) {
			t.Fatalf("iter %d: total WFS %s but DSM = %d models\nDB:\n%s",
				iter, m.String(d.Voc), len(stable), d.String())
		}
	}
	if totals == 0 {
		t.Fatalf("corpus produced no total well-founded models")
	}
}

func TestPolynomialScaling(t *testing.T) {
	// Sanity: WFS on a sizeable program terminates fast (polynomial).
	rng := rand.New(rand.NewSource(194))
	d := randomNLP(rng, 300, 900)
	p := Compute(d)
	if p.N() != 300 {
		t.Fatalf("wrong width")
	}
}
