// Package wfs implements the Well-Founded Semantics of van Gelder,
// Ross, and Schlipf for normal (non-disjunctive) logic programs — the
// semantics PDSM extends to disjunctive databases ("[PDSM] extends the
// Well-Founded Semantics of van Gelder, Ross, and Schlipf", §5.2).
//
// The implementation uses the alternating-fixpoint characterisation:
// with Γ(I) = least model of the GL reduct P^I,
//
//	T₀ = ∅,  U₀ = HB;   Tᵢ₊₁ = Γ(Uᵢ),  Uᵢ₊₁ = Γ(Tᵢ)
//
// converges to the well-founded partial model: atoms in T∞ are true,
// atoms outside U∞ are false, the rest undefined. Γ is antitone, so
// (Tᵢ) increases, (Uᵢ) decreases, and the fixpoint is reached in at
// most |HB| rounds — the whole computation is polynomial, unlike
// every semantics in the paper's tables.
//
// The package serves two roles: a practical polynomial semantics for
// the NLP fragment, and an independent cross-check of PDSM — the
// well-founded model of an NLP is its knowledge-least partial stable
// model (tested in wfs_test.go and pdsm's suite).
package wfs

import (
	"disjunct/internal/bitset"
	"disjunct/internal/db"
	"disjunct/internal/logic"
)

// IsNormal reports whether d is a normal logic program: every clause
// has exactly one head atom (no disjunction, no integrity clauses).
func IsNormal(d *db.DB) bool {
	for _, c := range d.Clauses {
		if len(c.Head) != 1 {
			return false
		}
	}
	return true
}

// Compute returns the well-founded partial model of a normal logic
// program. It panics if d is not normal (callers check IsNormal).
func Compute(d *db.DB) logic.Partial {
	if !IsNormal(d) {
		panic("wfs: Compute requires a normal logic program")
	}
	n := d.N()
	t := bitset.New(n)        // true atoms, grows
	u := bitset.New(n).Fill() // possibly-true atoms, shrinks
	for {
		nt := gamma(d, u)
		nu := gamma(d, t)
		if nt.Equal(t) && nu.Equal(u) {
			break
		}
		t, u = nt, nu
	}
	p := logic.NewPartial(n)
	for v := 0; v < n; v++ {
		switch {
		case t.Test(v):
			p.SetValue(logic.Atom(v), logic.True)
		case u.Test(v):
			p.SetValue(logic.Atom(v), logic.Undefined)
		}
	}
	return p
}

// gamma computes the least model of the GL reduct of d with respect to
// the atom set i (treated as the true atoms of a total interpretation).
func gamma(d *db.DB, i *bitset.Set) *bitset.Set {
	n := d.N()
	out := bitset.New(n)
	for changed := true; changed; {
		changed = false
		for _, c := range d.Clauses {
			h := int(c.Head[0])
			if out.Test(h) {
				continue
			}
			fire := true
			for _, b := range c.PosBody {
				if !out.Test(int(b)) {
					fire = false
					break
				}
			}
			if fire {
				for _, neg := range c.NegBody {
					if i.Test(int(neg)) {
						fire = false
						break
					}
				}
			}
			if fire {
				out.Set(h)
				changed = true
			}
		}
	}
	return out
}

// TotalStable reports whether the well-founded model is total; if so,
// it is the unique stable model of the program.
func TotalStable(d *db.DB) (logic.Interp, bool) {
	p := Compute(d)
	if !p.IsTotal() {
		return logic.Interp{}, false
	}
	return p.Total(), true
}
