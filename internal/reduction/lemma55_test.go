package reduction

import (
	"math/rand"
	"testing"

	"disjunct/internal/models"
	"disjunct/internal/refsem"
)

func TestNLPUniqueMinimalFromUNSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(117))
	uniques, multis := 0, 0
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(3)
		cnf := RandomCNF(rng, n, 1+rng.Intn(3*n), 3)
		want := !cnfSat(cnf, n) // unique minimal model ⟺ UNSAT
		d := NLPUniqueMinimalFromUNSAT(cnf, n)

		// The output must be a normal logic program.
		for _, c := range d.Clauses {
			if len(c.Head) != 1 {
				t.Fatalf("iter %d: clause with %d head atoms — not an NLP", iter, len(c.Head))
			}
		}

		mm := refsem.MinimalModels(d)
		if got := len(mm) == 1; got != want {
			t.Fatalf("iter %d: |MM|=%d, want unique=%v\nDB:\n%s", iter, len(mm), want, d.String())
		}
		// Production engine agrees.
		eng := models.NewEngine(d, nil)
		if got, _ := eng.UniqueMinimalModel(); got != want {
			t.Fatalf("iter %d: UniqueMinimalModel=%v want %v", iter, got, want)
		}
		if want {
			uniques++
		} else {
			multis++
		}
	}
	if uniques == 0 || multis == 0 {
		t.Fatalf("degenerate corpus: unique=%d multi=%d", uniques, multis)
	}
}
