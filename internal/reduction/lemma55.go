package reduction

import (
	"fmt"

	"disjunct/internal/db"
	"disjunct/internal/logic"
)

// NLPUniqueMinimalFromUNSAT realises the Lemma 5.5 device: UMINSAT is
// polynomially transformable to deciding whether a NORMAL logic
// program (single-atom heads, default negation allowed, no integrity
// clauses) has a unique minimal (classical) model. Composed with the
// UNSAT→UMINSAT reduction this yields, from a DIMACS CNF ψ, an NLP
// with
//
//	NLP has a unique minimal model  ⟺  ψ is UNSATISFIABLE.
//
// Construction (fresh atoms w, a, b — the paper's lemma introduces
// three new atoms as well):
//
//	xᵢ ← ¬x̄ᵢ        x̄ᵢ ← ¬xᵢ        (assignment pairs)
//	a ← ¬b          b ← ¬a          (the duplicator pair)
//	w ← σ(¬l₁) ∧ … ∧ σ(¬lₖ)         (for each ψ-clause: its
//	                                 falsifying pattern implies w)
//	xᵢ ← w   x̄ᵢ ← w   a ← w   b ← w (w saturates everything)
//
// Classically: without w a model must choose at least one atom per
// pair and may not falsify any ψ-clause (else w fires); minimal such
// models are exact assignments satisfying ψ crossed with the a/b
// choice — at least two when ψ is satisfiable. With w everything is
// forced, giving the single model M_w = HB, which is minimal exactly
// when no w-free model exists, i.e. when ψ is unsatisfiable.
func NLPUniqueMinimalFromUNSAT(cnf [][]int, n int) *db.DB {
	d := db.New()
	pos := make([]logic.Atom, n+1)
	neg := make([]logic.Atom, n+1)
	for i := 1; i <= n; i++ {
		pos[i] = d.Voc.Intern(fmt.Sprintf("x%d", i))
		neg[i] = d.Voc.Intern(fmt.Sprintf("xbar%d", i))
	}
	w := d.Voc.Intern("w")
	a := d.Voc.Intern("a")
	b := d.Voc.Intern("b")

	for i := 1; i <= n; i++ {
		d.AddRule([]logic.Atom{pos[i]}, nil, []logic.Atom{neg[i]})
		d.AddRule([]logic.Atom{neg[i]}, nil, []logic.Atom{pos[i]})
		d.AddRule([]logic.Atom{pos[i]}, []logic.Atom{w}, nil)
		d.AddRule([]logic.Atom{neg[i]}, []logic.Atom{w}, nil)
	}
	d.AddRule([]logic.Atom{a}, nil, []logic.Atom{b})
	d.AddRule([]logic.Atom{b}, nil, []logic.Atom{a})
	d.AddRule([]logic.Atom{a}, []logic.Atom{w}, nil)
	d.AddRule([]logic.Atom{b}, []logic.Atom{w}, nil)

	for _, c := range cnf {
		body := make([]logic.Atom, 0, len(c))
		for _, l := range c {
			body = append(body, litAtom(-l, pos, neg))
		}
		d.AddRule([]logic.Atom{w}, body, nil)
	}
	return d
}
