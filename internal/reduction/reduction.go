// Package reduction implements the paper's hardness reductions as
// executable translations. Each reduction maps instances of a
// canonical complete problem (SAT/UNSAT for the NP/coNP cells, 2-QBF
// for the Σ₂ᵖ/Π₂ᵖ cells) to inference/model-existence instances for
// the disjunctive semantics; the test suite validates every
// translation against an independent reference solver, and the
// benchmark harness scales them up to exhibit each table cell's
// worst-case behaviour.
//
// DIMACS-style convention for CNF inputs: a clause is a slice of
// non-zero ints, positive i meaning variable i, negative meaning its
// negation; variables are 1..n.
package reduction

import (
	"fmt"

	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/qbf"
)

// MMNegLiteralFromQBF translates a 2-QBF instance ∃X ∀Y φ (φ must be
// in DNF: an OR of ANDs of literals) into a positive disjunctive
// database T (no negation, no integrity clauses) and an atom w such
// that
//
//	MM(T) ⊨ ¬w   ⟺   ∃X ∀Y φ is FALSE.
//
// This is the Theorem 3.1 device: literal inference under every
// minimal-model based semantics (GCWA, EGCWA, CCWA, ECWA/CIRC, and —
// since T is positive — ICWA, PERF, DSM, PDSM) is Π₂ᵖ-hard, already
// on positive databases.
//
// Construction: atoms x, x̄ per existential variable, y, ȳ per
// universal variable, plus w.
//
//	x ∨ x̄.                 (choose an X assignment)
//	y ∨ ȳ.                 (choose a Y assignment…)
//	y ← w.   ȳ ← w.        (…unless w saturates Y)
//	w ← σ(l₁) ∧ … ∧ σ(lₖ)  (for every DNF term, σ mapping v ↦ v-atom,
//	                        ¬v ↦ v̄-atom)
//
// A minimal model containing w exists iff some X choice makes φ true
// under every Y choice.
func MMNegLiteralFromQBF(q *qbf.Instance) (*db.DB, logic.Atom, error) {
	terms, err := dnfTerms(q.Matrix)
	if err != nil {
		return nil, 0, err
	}
	d := db.New()
	pos := make([]logic.Atom, q.NX+q.NY)
	neg := make([]logic.Atom, q.NX+q.NY)
	for i := 0; i < q.NX+q.NY; i++ {
		name := q.Voc.Name(logic.Atom(i))
		pos[i] = d.Voc.Intern(name)
		neg[i] = d.Voc.Intern(name + "_bar")
	}
	w := d.Voc.Intern("w")
	for i := 0; i < q.NX+q.NY; i++ {
		d.AddFact(pos[i], neg[i])
	}
	for j := 0; j < q.NY; j++ {
		i := q.NX + j
		d.AddRule([]logic.Atom{pos[i]}, []logic.Atom{w}, nil)
		d.AddRule([]logic.Atom{neg[i]}, []logic.Atom{w}, nil)
	}
	for _, term := range terms {
		body := make([]logic.Atom, 0, len(term))
		for _, l := range term {
			if l.IsPos() {
				body = append(body, pos[int(l.Atom())])
			} else {
				body = append(body, neg[int(l.Atom())])
			}
		}
		d.AddRule([]logic.Atom{w}, body, nil)
	}
	return d, w, nil
}

// dnfTerms decomposes a formula that must be an OR of ANDs of literals
// (single literals and single terms allowed).
func dnfTerms(f *logic.Formula) ([][]logic.Lit, error) {
	var terms [][]logic.Lit
	var asTerm func(g *logic.Formula) ([]logic.Lit, error)
	asLit := func(g *logic.Formula) (logic.Lit, error) {
		switch {
		case g.Op == logic.OpAtom:
			return logic.PosLit(g.A), nil
		case g.Op == logic.OpNot && g.Args[0].Op == logic.OpAtom:
			return logic.NegLit(g.Args[0].A), nil
		}
		return 0, fmt.Errorf("reduction: matrix not in DNF (unexpected %v)", g.Op)
	}
	asTerm = func(g *logic.Formula) ([]logic.Lit, error) {
		if g.Op == logic.OpAnd {
			var out []logic.Lit
			for _, h := range g.Args {
				l, err := asLit(h)
				if err != nil {
					return nil, err
				}
				out = append(out, l)
			}
			return out, nil
		}
		l, err := asLit(g)
		if err != nil {
			return nil, err
		}
		return []logic.Lit{l}, nil
	}
	switch f.Op {
	case logic.OpOr:
		for _, g := range f.Args {
			t, err := asTerm(g)
			if err != nil {
				return nil, err
			}
			terms = append(terms, t)
		}
	case logic.OpFalse:
		// empty DNF: no terms
	default:
		t, err := asTerm(f)
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return terms, nil
}

// assignmentGadget adds, for each variable 1..n of a DIMACS CNF, the
// pair atoms p_i ("variable true") and n_i ("variable false") with the
// disjunctive fact p_i ∨ n_i, returning the two atom slices (index 0
// unused).
func assignmentGadget(d *db.DB, n int) (pos, neg []logic.Atom) {
	pos = make([]logic.Atom, n+1)
	neg = make([]logic.Atom, n+1)
	for i := 1; i <= n; i++ {
		pos[i] = d.Voc.Intern(fmt.Sprintf("p%d", i))
		neg[i] = d.Voc.Intern(fmt.Sprintf("n%d", i))
		d.AddFact(pos[i], neg[i])
	}
	return pos, neg
}

// exactlyOneICs adds integrity clauses ← p_i ∧ n_i.
func exactlyOneICs(d *db.DB, pos, neg []logic.Atom) {
	for i := 1; i < len(pos); i++ {
		d.AddRule(nil, []logic.Atom{pos[i], neg[i]}, nil)
	}
}

// litAtom maps a DIMACS literal to its gadget atom.
func litAtom(l int, pos, neg []logic.Atom) logic.Atom {
	if l > 0 {
		return pos[l]
	}
	return neg[-l]
}

// FormulaInferenceFromUNSAT translates a DIMACS CNF ψ over n variables
// into a positive DDB (no integrity clauses!) and a formula F with
//
//	DDR(DB) ⊨ F  ⟺  PWS(DB) ⊨ F  ⟺  ψ is UNSATISFIABLE
//
// — the coNP-hardness of formula inference in Table 1's DDR/PWS rows.
// DB is just the assignment gadget; F says "the model is not an exact
// satisfying assignment of ψ":
//
//	F = ⋁ᵢ (pᵢ ∧ nᵢ) ∨ ¬ψ̂
//
// where ψ̂ replaces each literal by its gadget atom.
func FormulaInferenceFromUNSAT(cnf [][]int, n int) (*db.DB, *logic.Formula) {
	d := db.New()
	pos, neg := assignmentGadget(d, n)
	var both []*logic.Formula
	for i := 1; i <= n; i++ {
		both = append(both, logic.And(logic.AtomF(pos[i]), logic.AtomF(neg[i])))
	}
	var hat []*logic.Formula
	for _, c := range cnf {
		var lits []*logic.Formula
		for _, l := range c {
			lits = append(lits, logic.AtomF(litAtom(l, pos, neg)))
		}
		hat = append(hat, logic.Or(lits...))
	}
	f := logic.Or(logic.Or(both...), logic.Not(logic.And(hat...)))
	return d, f
}

// LiteralInferenceFromUNSATWithICs translates a DIMACS CNF ψ into a
// DDDB with integrity clauses and an atom w such that
//
//	DDR(DB) ⊨ ¬w  ⟺  PWS(DB) ⊨ ¬w  ⟺  ψ is UNSATISFIABLE
//
// — Chan's coNP-complete literal-inference cells of Table 2.
// The gadget encodes exact assignments through integrity clauses and
// guards each ψ-clause denial with w, so the database stays consistent
// for every ψ (models without w always exist): w rides along in a
// disjunctive fact (w ∨ d), hence occurs in T_DB↑ω and is a
// possible-world member, and a DDR/PWS model containing w exists iff
// ψ has a satisfying assignment.
func LiteralInferenceFromUNSATWithICs(cnf [][]int, n int) (*db.DB, logic.Atom) {
	d := db.New()
	pos, neg := assignmentGadget(d, n)
	exactlyOneICs(d, pos, neg)
	w := d.Voc.Intern("w")
	dummy := d.Voc.Intern("d")
	d.AddFact(w, dummy)
	for _, c := range cnf {
		body := make([]logic.Atom, 0, len(c)+1)
		for _, l := range c {
			body = append(body, litAtom(-l, pos, neg))
		}
		body = append(body, w)
		d.AddRule(nil, body, nil)
	}
	return d, w
}

// ExistsModelFromSAT translates a DIMACS CNF ψ into a DDDB with
// integrity clauses that is classically satisfiable iff ψ is — the
// NP-complete ∃MODEL cells of Table 2 (GCWA, CCWA, EGCWA, ECWA, DDR,
// PWS model existence all coincide with satisfiability here, since
// the database is positive).
func ExistsModelFromSAT(cnf [][]int, n int) *db.DB {
	d := db.New()
	pos, neg := assignmentGadget(d, n)
	exactlyOneICs(d, pos, neg)
	for _, c := range cnf {
		body := make([]logic.Atom, 0, len(c))
		for _, l := range c {
			body = append(body, litAtom(-l, pos, neg))
		}
		d.AddRule(nil, body, nil)
	}
	return d
}

// DSMExistsFromQBF translates ∃X ∀Y φ (φ in DNF) into a DNDB without
// integrity clauses such that
//
//	DSM(DB) ≠ ∅  ⟺  ∃X ∀Y φ is TRUE
//
// — the Σ₂ᵖ-complete ∃MODEL cell for DSM (and PDSM existence of a
// TOTAL model). The construction extends MMNegLiteralFromQBF with the
// saturation rule w ← ¬w, which forbids stable models without w.
func DSMExistsFromQBF(q *qbf.Instance) (*db.DB, error) {
	d, w, err := MMNegLiteralFromQBF(q)
	if err != nil {
		return nil, err
	}
	d.AddRule([]logic.Atom{w}, nil, []logic.Atom{w})
	return d, nil
}

// UMINSATFromUNSAT translates a DIMACS CNF ψ into a CNF Γ (over a
// fresh vocabulary, returned with it) such that Γ has a UNIQUE minimal
// model iff ψ is unsatisfiable — the Proposition 5.4 coNP-hardness of
// UMINSAT.
//
// Construction (over atoms xᵢ, x̄ᵢ, w):
//
//	C ∨ w              for every clause C of ψ (literals mapped to
//	                   the xᵢ/x̄ᵢ atoms)
//	xᵢ ∨ x̄ᵢ ∨ w        (pairs active unless w)
//	¬xᵢ ∨ ¬x̄ᵢ          (exclusivity)
//	¬w ∨ ¬xᵢ, ¬w ∨ ¬x̄ᵢ (w kills the pairs)
//
// {w} is always a minimal model; a second minimal model exists iff ψ
// has a satisfying assignment.
func UMINSATFromUNSAT(cnf [][]int, n int) (logic.CNF, *logic.Vocabulary) {
	voc := logic.NewVocabulary()
	pos := make([]logic.Atom, n+1)
	neg := make([]logic.Atom, n+1)
	for i := 1; i <= n; i++ {
		pos[i] = voc.Intern(fmt.Sprintf("x%d", i))
		neg[i] = voc.Intern(fmt.Sprintf("xbar%d", i))
	}
	w := voc.Intern("w")
	var out logic.CNF
	for _, c := range cnf {
		cl := logic.Clause{logic.PosLit(w)}
		for _, l := range c {
			if l > 0 {
				cl = append(cl, logic.PosLit(pos[l]))
			} else {
				cl = append(cl, logic.PosLit(neg[-l]))
			}
		}
		out = append(out, cl)
	}
	for i := 1; i <= n; i++ {
		out = append(out,
			logic.Clause{logic.PosLit(pos[i]), logic.PosLit(neg[i]), logic.PosLit(w)},
			logic.Clause{logic.NegLit(pos[i]), logic.NegLit(neg[i])},
			logic.Clause{logic.NegLit(w), logic.NegLit(pos[i])},
			logic.Clause{logic.NegLit(w), logic.NegLit(neg[i])},
		)
	}
	return out, voc
}

// CNFDB wraps a raw CNF (e.g. from UMINSATFromUNSAT) as a database so
// the minimal-model engine can run on it: each CNF clause becomes a
// database clause with the positive literals in the head and the
// negated atoms in the positive body.
func CNFDB(cnf logic.CNF, voc *logic.Vocabulary) *db.DB {
	d := db.NewWithVocab(voc.Clone())
	for _, cl := range cnf {
		var c db.Clause
		for _, l := range cl {
			if l.IsPos() {
				c.Head = append(c.Head, l.Atom())
			} else {
				c.PosBody = append(c.PosBody, l.Atom())
			}
		}
		d.Add(c)
	}
	return d
}

// RandomCNF generates a random DIMACS k-CNF for the reduction tests
// and benches.
func RandomCNF(rnd interface{ Intn(int) int }, nVars, nClauses, k int) [][]int {
	out := make([][]int, nClauses)
	for i := range out {
		c := make([]int, k)
		for j := range c {
			v := 1 + rnd.Intn(nVars)
			if rnd.Intn(2) == 0 {
				v = -v
			}
			c[j] = v
		}
		out[i] = c
	}
	return out
}
