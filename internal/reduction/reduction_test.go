package reduction

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/qbf"
	"disjunct/internal/refsem"
	"disjunct/internal/sat"
	"disjunct/internal/semantics/dsm"
	"disjunct/internal/semantics/egcwa"
	"disjunct/internal/semantics/gcwa"
)

// cnfSat decides a DIMACS CNF with the brute-force reference.
func cnfSat(cnf [][]int, n int) bool {
	cls := make([][]sat.Lit, len(cnf))
	for i, c := range cnf {
		sc := make([]sat.Lit, len(c))
		for j, l := range c {
			if l > 0 {
				sc[j] = sat.MkLit(l-1, true)
			} else {
				sc[j] = sat.MkLit(-l-1, false)
			}
		}
		cls[i] = sc
	}
	ok, _, _ := sat.BruteForce(n, cls)
	return ok
}

func TestMMNegLiteralFromQBF(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	trues, falses := 0, 0
	for iter := 0; iter < 150; iter++ {
		nx, ny := 1+rng.Intn(3), 1+rng.Intn(3)
		q := qbf.Random3DNF(rng, nx, ny, 1+rng.Intn(5))
		want, _ := qbf.SolveBrute(q) // ∃X ∀Y φ
		d, w, err := MMNegLiteralFromQBF(q)
		if err != nil {
			t.Fatal(err)
		}
		if d.HasNegation() || d.HasIntegrityClauses() {
			t.Fatalf("reduction must produce a positive DDB")
		}
		// MM(T) ⊨ ¬w ⟺ QBF false — check against the brute-force
		// minimal models.
		negW := logic.Not(logic.AtomF(w))
		got := refsem.Entails(refsem.MinimalModels(d), negW)
		if got != !want {
			t.Fatalf("iter %d: MM ⊨ ¬w = %v, QBF = %v\nDB:\n%s", iter, got, want, d.String())
		}
		// And via the production GCWA/EGCWA engines.
		g := gcwa.New(core.Options{})
		if inf, _ := g.InferLiteral(d, logic.NegLit(w)); inf != !want {
			t.Fatalf("iter %d: GCWA InferLiteral(¬w)=%v, QBF=%v", iter, inf, want)
		}
		e := egcwa.New(core.Options{})
		if inf, _ := e.InferLiteral(d, logic.NegLit(w)); inf != !want {
			t.Fatalf("iter %d: EGCWA InferLiteral(¬w)=%v, QBF=%v", iter, inf, want)
		}
		if want {
			trues++
		} else {
			falses++
		}
	}
	if trues == 0 || falses == 0 {
		t.Fatalf("degenerate QBF corpus: true=%d false=%d", trues, falses)
	}
}

func TestFormulaInferenceFromUNSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	sats, unsats := 0, 0
	for iter := 0; iter < 150; iter++ {
		n := 2 + rng.Intn(3)
		cnf := RandomCNF(rng, n, 1+rng.Intn(4*n), 3)
		want := !cnfSat(cnf, n) // expect inference ⟺ UNSAT
		d, f := FormulaInferenceFromUNSAT(cnf, n)
		if d.HasIntegrityClauses() || d.HasNegation() {
			t.Fatalf("reduction must be positive without ICs")
		}
		gotDDR := refsem.Entails(refsem.DDR(d), f)
		gotPWS := refsem.Entails(refsem.PWS(d), f)
		if gotDDR != want || gotPWS != want {
			t.Fatalf("iter %d: DDR=%v PWS=%v want %v", iter, gotDDR, gotPWS, want)
		}
		if want {
			unsats++
		} else {
			sats++
		}
	}
	if sats == 0 || unsats == 0 {
		t.Fatalf("degenerate CNF corpus: sat=%d unsat=%d", sats, unsats)
	}
}

func TestLiteralInferenceFromUNSATWithICs(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(3)
		cnf := RandomCNF(rng, n, 1+rng.Intn(3*n), 3)
		want := !cnfSat(cnf, n)
		d, w := LiteralInferenceFromUNSATWithICs(cnf, n)
		negW := logic.Not(logic.AtomF(w))
		if got := refsem.Entails(refsem.DDR(d), negW); got != want {
			t.Fatalf("iter %d: DDR ⊨ ¬w = %v, want %v\nDB:\n%s", iter, got, want, d.String())
		}
		if got := refsem.Entails(refsem.PWS(d), negW); got != want {
			t.Fatalf("iter %d: PWS ⊨ ¬w = %v, want %v", iter, got, want)
		}
		// The DB must stay consistent regardless of ψ.
		if len(refsem.Models(d)) == 0 {
			t.Fatalf("iter %d: reduction produced an inconsistent DB", iter)
		}
	}
}

func TestExistsModelFromSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(3)
		cnf := RandomCNF(rng, n, 1+rng.Intn(4*n), 3)
		want := cnfSat(cnf, n)
		d := ExistsModelFromSAT(cnf, n)
		if got := len(refsem.Models(d)) > 0; got != want {
			t.Fatalf("iter %d: ∃model=%v want %v", iter, got, want)
		}
	}
}

func TestDSMExistsFromQBF(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	trues, falses := 0, 0
	s := dsm.New(core.Options{})
	for iter := 0; iter < 120; iter++ {
		nx, ny := 1+rng.Intn(2), 1+rng.Intn(2)
		q := qbf.Random3DNF(rng, nx, ny, 1+rng.Intn(4))
		want, _ := qbf.SolveBrute(q)
		d, err := DSMExistsFromQBF(q)
		if err != nil {
			t.Fatal(err)
		}
		if d.HasIntegrityClauses() {
			t.Fatalf("DSM reduction must avoid integrity clauses")
		}
		// Reference check.
		if got := len(refsem.DSM(d)) > 0; got != want {
			t.Fatalf("iter %d: ref DSM ∃=%v, QBF=%v\nDB:\n%s", iter, got, want, d.String())
		}
		// Production check.
		if got, _ := s.HasModel(d); got != want {
			t.Fatalf("iter %d: dsm.HasModel=%v, QBF=%v", iter, got, want)
		}
		if want {
			trues++
		} else {
			falses++
		}
	}
	if trues == 0 || falses == 0 {
		t.Fatalf("degenerate corpus: true=%d false=%d", trues, falses)
	}
}

func TestUMINSATFromUNSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(116))
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(3)
		cnf := RandomCNF(rng, n, 1+rng.Intn(3*n), 3)
		want := !cnfSat(cnf, n) // unique minimal model ⟺ UNSAT
		gamma, voc := UMINSATFromUNSAT(cnf, n)
		d := CNFDB(gamma, voc)
		mm := refsem.MinimalModels(d)
		if got := len(mm) == 1; got != want {
			t.Fatalf("iter %d: |MM|=%d (unique=%v), want unique=%v", iter, len(mm), len(mm) == 1, want)
		}
		// Production UMINSAT procedure agrees.
		eng := models.NewEngine(d, nil)
		if got, _ := eng.UniqueMinimalModel(); got != want {
			t.Fatalf("iter %d: UniqueMinimalModel=%v want %v", iter, got, want)
		}
	}
}

func TestCNFDBRoundTrip(t *testing.T) {
	voc := logic.NewVocabulary()
	a := voc.Intern("a")
	b := voc.Intern("b")
	cnf := logic.CNF{{logic.PosLit(a), logic.NegLit(b)}}
	d := CNFDB(cnf, voc)
	if len(d.Clauses) != 1 {
		t.Fatalf("clause count")
	}
	m := logic.InterpOf(2, b)
	if d.Sat(m) {
		t.Fatalf("{b} must violate a ∨ ¬b")
	}
	if !d.Sat(logic.InterpOf(2, a, b)) {
		t.Fatalf("{a,b} must satisfy a ∨ ¬b")
	}
}

func TestDNFTermsErrors(t *testing.T) {
	voc := logic.NewVocabulary()
	a := voc.Intern("a")
	notDNF := logic.And(logic.Or(logic.AtomF(a), logic.AtomF(a)), logic.AtomF(a))
	q := &qbf.Instance{NX: 1, NY: 0, Matrix: notDNF, Voc: voc}
	if _, _, err := MMNegLiteralFromQBF(q); err == nil {
		t.Fatalf("non-DNF matrix must be rejected")
	}
}
