// Package faults provides deterministic, seeded fault injection for
// the oracle layer. An Injector decides — purely from (seed, sequence
// number) via splitmix64, so runs are reproducible and independent of
// goroutine scheduling — whether a given oracle call experiences
// injected latency, a transient solver failure (retried with bounded
// backoff by the caller), or a spurious cancellation.
//
// Every per-draw quantity (the fault kind, the injected latency, the
// jittered retry backoff) is a pure function of (seed, draw sequence
// number): Draw hands the caller its draw's own sequence number, and
// LatencyFor/BackoffFor derive durations from it, so concurrent draws
// on a shared injector never perturb each other's outcomes.
package faults

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"disjunct/internal/budget"
)

// Kind classifies the fault injected into one oracle call.
type Kind int

const (
	None      Kind = iota // no fault
	Latency               // sleep briefly before solving
	Transient             // fail once; caller retries with backoff
	Cancel                // spurious cancellation; surfaces as ErrCanceled
)

// ErrTransient is the retryable failure an Injector raises. Callers
// retry up to MaxRetries with jittered backoff (BackoffFor) between
// attempts; if retries are exhausted the failure is promoted to a
// permanent ErrExhausted.
var ErrTransient = errors.New("faults: transient solver failure (injected)")

// ErrExhausted wraps ErrTransient once the retry budget is spent. It
// also wraps budget.ErrCanceled so the exhaustion registers as a typed
// interruption under budget.Interrupted, like every other injected
// terminal outcome.
var ErrExhausted = fmt.Errorf("%w: retries exhausted (%w)", ErrTransient, budget.ErrCanceled)

// ErrInjectedCancel is a spurious cancellation. It wraps
// budget.ErrCanceled so callers' errors.Is(err, budget.ErrCanceled)
// matching treats injected and genuine cancellations uniformly.
var ErrInjectedCancel = fmt.Errorf("%w (injected)", budget.ErrCanceled)

// MaxRetries bounds how many times a transient failure is retried.
const MaxRetries = 3

// MaxLatency bounds a single injected sleep.
const MaxLatency = 2 * time.Millisecond

// MaxBackoff bounds a single retry pause (jitter included).
const MaxBackoff = 2 * time.Millisecond

// Injector is a seeded deterministic fault source, safe for
// concurrent use. The zero value and a nil *Injector inject nothing.
type Injector struct {
	rate uint64 // faults per 2^64 draws
	seed uint64
	seq  atomic.Uint64
}

// NewInjector returns an injector that faults a `rate` fraction of
// calls (clamped to [0,1]) using the given seed. rate 0 returns nil,
// which injects nothing.
func NewInjector(rate float64, seed int64) *Injector {
	if rate <= 0 {
		return nil
	}
	r := rate * (1 << 63) * 2
	if rate >= 1 || r >= float64(^uint64(0)) {
		return &Injector{rate: ^uint64(0), seed: uint64(seed)}
	}
	return &Injector{rate: uint64(r), seed: uint64(seed)}
}

// splitmix64 is the standard 64-bit mixer; (seed, seq) → uniform u64.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Draw allocates the next sequence number and returns the fault kind
// for it together with the draw's own sequence number. The sequence
// number is what makes per-draw randomness race-free: pass it to
// SleepFor/LatencyFor/BackoffFor and the derived durations depend only
// on (seed, n), never on how many other goroutines have drawn since.
// The mapping within faulting draws is 40% latency, 40% transient,
// 20% cancel. A nil injector returns (None, 0).
func (in *Injector) Draw() (Kind, uint64) {
	if in == nil || in.rate == 0 {
		return None, 0
	}
	n := in.seq.Add(1)
	return in.kindFor(n), n
}

// kindFor is the pure (seed, n) → Kind mapping behind Draw.
func (in *Injector) kindFor(n uint64) Kind {
	h := splitmix64(in.seed + n*0x9e3779b97f4a7c15)
	if h >= in.rate {
		return None
	}
	// A second independent hash picks the kind.
	switch k := splitmix64(h) % 10; {
	case k < 4:
		return Latency
	case k < 8:
		return Transient
	default:
		return Cancel
	}
}

// LatencyFor returns the injected latency for draw n: a small
// deterministic duration in [1µs, MaxLatency), a pure function of
// (seed, n). A nil injector returns 0.
func (in *Injector) LatencyFor(n uint64) time.Duration {
	if in == nil {
		return 0
	}
	return time.Duration(splitmix64(in.seed^n)%uint64(MaxLatency-time.Microsecond)) + time.Microsecond
}

// SleepFor performs the injected latency for draw n (as returned by
// Draw). Unlike reading the injector's latest sequence number — which
// races under concurrent draws — the duration slept is exactly
// LatencyFor(n) no matter what other goroutines are doing.
func (in *Injector) SleepFor(n uint64) {
	if d := in.LatencyFor(n); d > 0 {
		time.Sleep(d)
	}
}

// BackoffFor returns the jittered pause before retry attempt
// (0-based) of draw n: full jitter over (0, Backoff(attempt)],
// deterministic in (seed, n, attempt). Distinct draws jitter
// independently, so concurrent retries against the shared solver pool
// don't synchronize into thundering-herd waves. A nil injector falls
// back to the deterministic ceiling Backoff(attempt).
func (in *Injector) BackoffFor(n uint64, attempt int) time.Duration {
	if in == nil {
		return Backoff(attempt)
	}
	return FullJitter(splitmix64(in.seed^n), attempt)
}

// Backoff returns the maximum pause before retry attempt i (0-based):
// exponential and bounded by MaxBackoff. It is the jitter ceiling —
// callers with a seed should prefer FullJitter/BackoffFor so
// concurrent retries spread out instead of marching in lockstep.
func Backoff(attempt int) time.Duration {
	d := 50 * time.Microsecond << uint(attempt)
	if d > MaxBackoff {
		d = MaxBackoff
	}
	return d
}

// FullJitter returns a pause drawn uniformly from (0, Backoff(attempt)]
// — AWS-style "full jitter", deterministic in (h, attempt). h is any
// caller-chosen hash (a request id, an injector draw hash); equal
// inputs give equal pauses, so tests stay reproducible while distinct
// concurrent retriers decorrelate.
func FullJitter(h uint64, attempt int) time.Duration {
	bound := Backoff(attempt)
	return time.Duration(splitmix64(h+uint64(attempt)*0x9e3779b97f4a7c15)%uint64(bound)) + 1
}
