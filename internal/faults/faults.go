// Package faults provides deterministic, seeded fault injection for
// the oracle layer. An Injector decides — purely from (seed, sequence
// number) via splitmix64, so runs are reproducible and independent of
// goroutine scheduling — whether a given oracle call experiences
// injected latency, a transient solver failure (retried with bounded
// backoff by the caller), or a spurious cancellation.
package faults

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"disjunct/internal/budget"
)

// Kind classifies the fault injected into one oracle call.
type Kind int

const (
	None      Kind = iota // no fault
	Latency               // sleep briefly before solving
	Transient             // fail once; caller retries with backoff
	Cancel                // spurious cancellation; surfaces as ErrCanceled
)

// ErrTransient is the retryable failure an Injector raises. Callers
// retry up to MaxRetries with Backoff between attempts; if retries are
// exhausted the failure is promoted to a permanent ErrExhausted.
var ErrTransient = errors.New("faults: transient solver failure (injected)")

// ErrExhausted wraps ErrTransient once the retry budget is spent. It
// also wraps budget.ErrCanceled so the exhaustion registers as a typed
// interruption under budget.Interrupted, like every other injected
// terminal outcome.
var ErrExhausted = fmt.Errorf("%w: retries exhausted (%w)", ErrTransient, budget.ErrCanceled)

// ErrInjectedCancel is a spurious cancellation. It wraps
// budget.ErrCanceled so callers' errors.Is(err, budget.ErrCanceled)
// matching treats injected and genuine cancellations uniformly.
var ErrInjectedCancel = fmt.Errorf("%w (injected)", budget.ErrCanceled)

// MaxRetries bounds how many times a transient failure is retried.
const MaxRetries = 3

// MaxLatency bounds a single injected sleep.
const MaxLatency = 2 * time.Millisecond

// Injector is a seeded deterministic fault source, safe for
// concurrent use. The zero value and a nil *Injector inject nothing.
type Injector struct {
	rate uint64 // faults per 2^64 draws
	seed uint64
	seq  atomic.Uint64
}

// NewInjector returns an injector that faults a `rate` fraction of
// calls (clamped to [0,1]) using the given seed. rate 0 returns nil,
// which injects nothing.
func NewInjector(rate float64, seed int64) *Injector {
	if rate <= 0 {
		return nil
	}
	r := rate * (1 << 63) * 2
	if rate >= 1 || r >= float64(^uint64(0)) {
		return &Injector{rate: ^uint64(0), seed: uint64(seed)}
	}
	return &Injector{rate: uint64(r), seed: uint64(seed)}
}

// splitmix64 is the standard 64-bit mixer; (seed, seq) → uniform u64.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Draw allocates the next sequence number and returns the fault kind
// for it. The mapping within faulting draws is 40% latency, 40%
// transient, 20% cancel.
func (in *Injector) Draw() Kind {
	if in == nil || in.rate == 0 {
		return None
	}
	n := in.seq.Add(1)
	h := splitmix64(in.seed + n*0x9e3779b97f4a7c15)
	if h >= in.rate {
		return None
	}
	// A second independent hash picks the kind.
	switch k := splitmix64(h) % 10; {
	case k < 4:
		return Latency
	case k < 8:
		return Transient
	default:
		return Cancel
	}
}

// Sleep performs the injected latency for draw n (a small deterministic
// duration derived from the sequence).
func (in *Injector) Sleep() {
	if in == nil {
		return
	}
	n := in.seq.Load()
	d := time.Duration(splitmix64(in.seed^n)%uint64(MaxLatency-time.Microsecond)) + time.Microsecond
	time.Sleep(d)
}

// Backoff returns the pause before retry attempt i (0-based),
// exponential and bounded.
func Backoff(attempt int) time.Duration {
	d := 50 * time.Microsecond << uint(attempt)
	if d > 2*time.Millisecond {
		d = 2 * time.Millisecond
	}
	return d
}
