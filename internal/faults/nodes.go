package faults

import "time"

// Node-level chaos: while Injector perturbs individual oracle calls,
// NodePlan perturbs whole workers — kill, partition, or slow one node
// at a seeded point in a multi-node load run. The plan is pure data,
// computed up front from (seed, nodes, requests); the cluster drivers
// (ddbsoak's in-process harness, cluster_smoke.sh's SIGKILL) apply it
// at the transport or process level. Keeping the plan here, next to
// the call-level injector, keeps every source of injected failure in
// one seeded, reproducible namespace.

// NodeKind classifies a node-level fault.
type NodeKind int

const (
	// NodeKill terminates the victim abruptly (SIGKILL or abrupt
	// listener close): in-flight requests see torn connections, warm
	// sessions and unflushed store tail are lost.
	NodeKill NodeKind = iota
	// NodePartition makes the victim unreachable (dial/refuse errors)
	// without killing it; state survives for when it heals.
	NodePartition
	// NodeSlow delays every byte to/from the victim, long enough to
	// trip client deadlines but not the node breaker immediately.
	NodeSlow
)

func (k NodeKind) String() string {
	switch k {
	case NodeKill:
		return "kill"
	case NodePartition:
		return "partition"
	case NodeSlow:
		return "slow"
	default:
		return "unknown"
	}
}

// NodeSlowDelay is the per-round-trip delay a NodeSlow fault injects.
const NodeSlowDelay = 50 * time.Millisecond

// NodePlan schedules one node-level fault within a load run.
type NodePlan struct {
	Victim int      // index into the driver's node list
	At     int      // 0-based request index at which the fault fires
	Kind   NodeKind // what happens to the victim
}

// NodePlanFor derives the node fault for a seeded run: which of the
// nodes is hit, at which request offset within [requests/4, 3*requests/4)
// (mid-load — late enough that warm state exists, early enough that
// plenty of traffic lands after the fault), and how. Pure in its
// arguments; the same (seed, nodes, requests) always yields the same
// plan, so a failing sweep replays exactly. nodes ≤ 1 or requests ≤ 0
// yields a plan that drivers should treat as disabled (At < 0).
func NodePlanFor(seed int64, nodes, requests int) NodePlan {
	if nodes <= 1 || requests <= 0 {
		return NodePlan{Victim: -1, At: -1}
	}
	h := splitmix64(uint64(seed) ^ 0xddb5c1a57e4f0d2b)
	victim := int(h % uint64(nodes))
	lo := requests / 4
	span := requests/2 + 1
	at := lo + int(splitmix64(h)%uint64(span))
	kind := NodeKind(splitmix64(h^0xa5a5a5a5) % 3)
	return NodePlan{Victim: victim, At: at, Kind: kind}
}

// Membership churn: where NodePlan breaks a node, ChurnPlan changes
// the member set itself — warm joins, graceful drains, abrupt kills —
// interleaved through a load run. Like NodePlan it is pure data from
// (seed, nodes, requests, events); the driver owns the mechanics
// (starting processes, calling /v1/cluster/join or /drain).

// ChurnKind classifies one membership event.
type ChurnKind int

const (
	// ChurnJoin warm-joins a brand-new worker into the ring.
	ChurnJoin ChurnKind = iota
	// ChurnDrain gracefully drains an existing worker out (handoff to
	// successors, then ring flip).
	ChurnDrain
	// ChurnKill removes an existing worker abruptly — the membership
	// version of NodeKill: no handoff, failovers pick up its keys.
	ChurnKill
)

func (k ChurnKind) String() string {
	switch k {
	case ChurnJoin:
		return "join"
	case ChurnDrain:
		return "drain"
	case ChurnKill:
		return "kill"
	default:
		return "unknown"
	}
}

// ChurnEvent is one scheduled membership change. Victim indexes the
// driver's live-node list at the moment the event fires for drains and
// kills; it is -1 for joins (the driver starts a fresh node).
type ChurnEvent struct {
	At     int // 0-based request index at which the event fires
	Kind   ChurnKind
	Victim int
}

// ChurnPlanFor derives a seeded membership-churn schedule: `events`
// changes spread through the middle half of the run, in firing order.
// Invariants the plan guarantees (so drivers need no defensive logic):
// at least one event is a ChurnJoin, and no drain/kill is scheduled
// when it would leave fewer than two live members. Victim indices are
// relative to the live set at fire time under this plan's own
// bookkeeping (joins append to the end of the list, removals delete in
// place), which is also the bookkeeping the drivers use. Pure in its
// arguments: the same inputs always yield the same plan. nodes ≤ 1,
// requests ≤ 0, or events ≤ 0 yields nil (churn disabled).
func ChurnPlanFor(seed int64, nodes, requests, events int) []ChurnEvent {
	if nodes <= 1 || requests <= 0 || events <= 0 {
		return nil
	}
	h := splitmix64(uint64(seed) ^ 0xc0a1e5ce5a7b91d3)
	lo := requests / 4
	span := requests/2 + 1
	// Fire points: distinct-ish offsets in [lo, lo+span), sorted.
	ats := make([]int, events)
	for i := range ats {
		h = splitmix64(h)
		ats[i] = lo + int(h%uint64(span))
	}
	// Insertion sort keeps this dependency-free and stable for the
	// tiny event counts churn uses.
	for i := 1; i < len(ats); i++ {
		for j := i; j > 0 && ats[j] < ats[j-1]; j-- {
			ats[j], ats[j-1] = ats[j-1], ats[j]
		}
	}
	live := nodes
	plan := make([]ChurnEvent, 0, events)
	joins := 0
	for i := 0; i < events; i++ {
		h = splitmix64(h)
		kind := ChurnKind(h % 3)
		// Force the guaranteed join on the last slot if none happened,
		// and demote removals that would drop the cluster below two.
		if kind != ChurnJoin && live <= 2 {
			kind = ChurnJoin
		}
		if i == events-1 && joins == 0 {
			kind = ChurnJoin
		}
		ev := ChurnEvent{At: ats[i], Kind: kind, Victim: -1}
		if kind == ChurnJoin {
			joins++
			live++
		} else {
			h = splitmix64(h)
			ev.Victim = int(h % uint64(live))
			live--
		}
		plan = append(plan, ev)
	}
	return plan
}
