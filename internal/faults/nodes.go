package faults

import "time"

// Node-level chaos: while Injector perturbs individual oracle calls,
// NodePlan perturbs whole workers — kill, partition, or slow one node
// at a seeded point in a multi-node load run. The plan is pure data,
// computed up front from (seed, nodes, requests); the cluster drivers
// (ddbsoak's in-process harness, cluster_smoke.sh's SIGKILL) apply it
// at the transport or process level. Keeping the plan here, next to
// the call-level injector, keeps every source of injected failure in
// one seeded, reproducible namespace.

// NodeKind classifies a node-level fault.
type NodeKind int

const (
	// NodeKill terminates the victim abruptly (SIGKILL or abrupt
	// listener close): in-flight requests see torn connections, warm
	// sessions and unflushed store tail are lost.
	NodeKill NodeKind = iota
	// NodePartition makes the victim unreachable (dial/refuse errors)
	// without killing it; state survives for when it heals.
	NodePartition
	// NodeSlow delays every byte to/from the victim, long enough to
	// trip client deadlines but not the node breaker immediately.
	NodeSlow
)

func (k NodeKind) String() string {
	switch k {
	case NodeKill:
		return "kill"
	case NodePartition:
		return "partition"
	case NodeSlow:
		return "slow"
	default:
		return "unknown"
	}
}

// NodeSlowDelay is the per-round-trip delay a NodeSlow fault injects.
const NodeSlowDelay = 50 * time.Millisecond

// NodePlan schedules one node-level fault within a load run.
type NodePlan struct {
	Victim int      // index into the driver's node list
	At     int      // 0-based request index at which the fault fires
	Kind   NodeKind // what happens to the victim
}

// NodePlanFor derives the node fault for a seeded run: which of the
// nodes is hit, at which request offset within [requests/4, 3*requests/4)
// (mid-load — late enough that warm state exists, early enough that
// plenty of traffic lands after the fault), and how. Pure in its
// arguments; the same (seed, nodes, requests) always yields the same
// plan, so a failing sweep replays exactly. nodes ≤ 1 or requests ≤ 0
// yields a plan that drivers should treat as disabled (At < 0).
func NodePlanFor(seed int64, nodes, requests int) NodePlan {
	if nodes <= 1 || requests <= 0 {
		return NodePlan{Victim: -1, At: -1}
	}
	h := splitmix64(uint64(seed) ^ 0xddb5c1a57e4f0d2b)
	victim := int(h % uint64(nodes))
	lo := requests / 4
	span := requests/2 + 1
	at := lo + int(splitmix64(h)%uint64(span))
	kind := NodeKind(splitmix64(h^0xa5a5a5a5) % 3)
	return NodePlan{Victim: victim, At: at, Kind: kind}
}
