package faults

import (
	"fmt"
	"testing"
)

func TestChurnPlanForDeterministic(t *testing.T) {
	a := ChurnPlanFor(42, 3, 400, 5)
	b := ChurnPlanFor(42, 3, 400, 5)
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("same inputs gave different plans:\n%+v\n%+v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("plan has %d events, want 5", len(a))
	}
}

// TestChurnPlanForInvariants replays each plan's own bookkeeping over
// many seeds and shapes, checking every guarantee drivers rely on:
// events fire sorted within the middle half of the run, at least one is
// a join, removals never drop the live count below two, and Victim is
// -1 exactly for joins and otherwise a valid live index.
func TestChurnPlanForInvariants(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		for _, shape := range []struct{ nodes, reqs, events int }{
			{3, 400, 4}, {2, 100, 6}, {5, 1000, 3}, {4, 200, 1},
		} {
			plan := ChurnPlanFor(seed, shape.nodes, shape.reqs, shape.events)
			if len(plan) != shape.events {
				t.Fatalf("seed %d %+v: %d events, want %d", seed, shape, len(plan), shape.events)
			}
			lo, hi := shape.reqs/4, shape.reqs/4+shape.reqs/2+1
			live, joins := shape.nodes, 0
			prev := -1
			for i, ev := range plan {
				if ev.At < lo || ev.At >= hi {
					t.Fatalf("seed %d %+v: event %d fires at %d outside [%d,%d)", seed, shape, i, ev.At, lo, hi)
				}
				if ev.At < prev {
					t.Fatalf("seed %d %+v: events out of firing order: %+v", seed, shape, plan)
				}
				prev = ev.At
				switch ev.Kind {
				case ChurnJoin:
					if ev.Victim != -1 {
						t.Fatalf("seed %d %+v: join carries victim %d", seed, shape, ev.Victim)
					}
					joins++
					live++
				case ChurnDrain, ChurnKill:
					if ev.Victim < 0 || ev.Victim >= live {
						t.Fatalf("seed %d %+v: event %d victim %d with %d live", seed, shape, i, ev.Victim, live)
					}
					live--
					if live < 2 {
						t.Fatalf("seed %d %+v: plan drops the cluster to %d live members", seed, shape, live)
					}
				default:
					t.Fatalf("seed %d %+v: unknown kind %v", seed, shape, ev.Kind)
				}
			}
			if joins == 0 {
				t.Fatalf("seed %d %+v: plan has no join: %+v", seed, shape, plan)
			}
		}
	}
}

func TestChurnPlanForSeedsDiffer(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(0); seed < 32; seed++ {
		seen[fmt.Sprintf("%+v", ChurnPlanFor(seed, 3, 400, 4))] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d distinct plans across 32 seeds; mixing too weak", len(seen))
	}
}

func TestChurnPlanForDisabled(t *testing.T) {
	for _, tc := range []struct{ nodes, reqs, events int }{
		{1, 100, 3}, {0, 100, 3}, {3, 0, 3}, {3, 100, 0}, {3, 100, -1},
	} {
		if p := ChurnPlanFor(7, tc.nodes, tc.reqs, tc.events); p != nil {
			t.Fatalf("ChurnPlanFor(7,%d,%d,%d) = %+v, want nil", tc.nodes, tc.reqs, tc.events, p)
		}
	}
}

func TestChurnKindString(t *testing.T) {
	for k, want := range map[ChurnKind]string{
		ChurnJoin: "join", ChurnDrain: "drain", ChurnKill: "kill", ChurnKind(9): "unknown",
	} {
		if got := k.String(); got != want {
			t.Fatalf("ChurnKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
