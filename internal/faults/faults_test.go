package faults

import (
	"errors"
	"testing"
	"time"

	"disjunct/internal/budget"
)

func TestZeroRateInjectsNothing(t *testing.T) {
	if in := NewInjector(0, 1); in != nil {
		t.Fatal("rate 0 must return nil")
	}
	if in := NewInjector(-0.5, 1); in != nil {
		t.Fatal("negative rate must return nil")
	}
	var in *Injector
	for i := 0; i < 100; i++ {
		if k := in.Draw(); k != None {
			t.Fatalf("nil injector drew %v", k)
		}
	}
}

func TestFullRateAlwaysFaults(t *testing.T) {
	in := NewInjector(1.0, 7)
	for i := 0; i < 200; i++ {
		if k := in.Draw(); k == None {
			t.Fatalf("draw %d: rate-1 injector drew None", i)
		}
	}
}

func TestDrawsAreDeterministic(t *testing.T) {
	a := NewInjector(0.3, 42)
	b := NewInjector(0.3, 42)
	for i := 0; i < 1000; i++ {
		if ka, kb := a.Draw(), b.Draw(); ka != kb {
			t.Fatalf("draw %d: %v != %v with identical seed", i, ka, kb)
		}
	}
}

func TestSeedChangesSequence(t *testing.T) {
	a := NewInjector(0.5, 1)
	b := NewInjector(0.5, 2)
	same := 0
	const n = 500
	for i := 0; i < n; i++ {
		if a.Draw() == b.Draw() {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestRateIsRoughlyHonoured(t *testing.T) {
	in := NewInjector(0.2, 99)
	faults := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if in.Draw() != None {
			faults++
		}
	}
	frac := float64(faults) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("rate 0.2 produced fault fraction %.3f", frac)
	}
}

func TestAllKindsOccur(t *testing.T) {
	in := NewInjector(1.0, 3)
	seen := map[Kind]int{}
	for i := 0; i < 500; i++ {
		seen[in.Draw()]++
	}
	for _, k := range []Kind{Latency, Transient, Cancel} {
		if seen[k] == 0 {
			t.Errorf("kind %v never drawn at rate 1", k)
		}
	}
}

func TestBackoffBoundedAndMonotone(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i <= MaxRetries+3; i++ {
		d := Backoff(i)
		if d <= 0 || d > 2*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v out of bounds", i, d)
		}
		if d < prev {
			t.Fatalf("Backoff(%d) = %v < Backoff(%d) = %v", i, d, i-1, prev)
		}
		prev = d
	}
}

func TestErrorTyping(t *testing.T) {
	if !errors.Is(ErrExhausted, ErrTransient) {
		t.Error("ErrExhausted must wrap ErrTransient")
	}
	if !errors.Is(ErrInjectedCancel, budget.ErrCanceled) {
		t.Error("ErrInjectedCancel must wrap budget.ErrCanceled")
	}
	if !budget.Interrupted(ErrInjectedCancel) {
		t.Error("injected cancel must register as an interruption")
	}
}

func TestExhaustedIsInterruption(t *testing.T) {
	if !budget.Interrupted(ErrExhausted) {
		t.Error("retry exhaustion must register as a typed interruption")
	}
}
