package faults

import (
	"errors"
	"sync"
	"testing"
	"time"

	"disjunct/internal/budget"
)

func TestZeroRateInjectsNothing(t *testing.T) {
	if in := NewInjector(0, 1); in != nil {
		t.Fatal("rate 0 must return nil")
	}
	if in := NewInjector(-0.5, 1); in != nil {
		t.Fatal("negative rate must return nil")
	}
	var in *Injector
	for i := 0; i < 100; i++ {
		if k, n := in.Draw(); k != None || n != 0 {
			t.Fatalf("nil injector drew %v (seq %d)", k, n)
		}
	}
	if d := in.LatencyFor(7); d != 0 {
		t.Fatalf("nil injector latency %v", d)
	}
	if d := in.BackoffFor(7, 1); d != Backoff(1) {
		t.Fatalf("nil injector backoff %v, want ceiling %v", d, Backoff(1))
	}
}

func TestFullRateAlwaysFaults(t *testing.T) {
	in := NewInjector(1.0, 7)
	for i := 0; i < 200; i++ {
		if k, _ := in.Draw(); k == None {
			t.Fatalf("draw %d: rate-1 injector drew None", i)
		}
	}
}

func TestDrawsAreDeterministic(t *testing.T) {
	a := NewInjector(0.3, 42)
	b := NewInjector(0.3, 42)
	for i := 0; i < 1000; i++ {
		ka, na := a.Draw()
		kb, nb := b.Draw()
		if ka != kb || na != nb {
			t.Fatalf("draw %d: (%v,%d) != (%v,%d) with identical seed", i, ka, na, kb, nb)
		}
	}
}

func TestSeedChangesSequence(t *testing.T) {
	a := NewInjector(0.5, 1)
	b := NewInjector(0.5, 2)
	same := 0
	const n = 500
	for i := 0; i < n; i++ {
		ka, _ := a.Draw()
		kb, _ := b.Draw()
		if ka == kb {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestRateIsRoughlyHonoured(t *testing.T) {
	in := NewInjector(0.2, 99)
	faults := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if k, _ := in.Draw(); k != None {
			faults++
		}
	}
	frac := float64(faults) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("rate 0.2 produced fault fraction %.3f", frac)
	}
}

func TestAllKindsOccur(t *testing.T) {
	in := NewInjector(1.0, 3)
	seen := map[Kind]int{}
	for i := 0; i < 500; i++ {
		k, _ := in.Draw()
		seen[k]++
	}
	for _, k := range []Kind{Latency, Transient, Cancel} {
		if seen[k] == 0 {
			t.Errorf("kind %v never drawn at rate 1", k)
		}
	}
}

// TestConcurrentDrawDeterminism is the regression test for the Sleep
// determinism race: per-draw quantities must be pure functions of
// (seed, draw seq) even when many goroutines draw concurrently. Each
// goroutine records (seq → kind, latency, backoff) for its own draws;
// the union must cover every sequence number exactly once and agree
// with a serial replay under the same seed.
func TestConcurrentDrawDeterminism(t *testing.T) {
	const workers = 8
	const perWorker = 250
	in := NewInjector(0.5, 1234)

	type obs struct {
		kind    Kind
		latency time.Duration
		backoff time.Duration
	}
	results := make([]map[uint64]obs, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		results[w] = make(map[uint64]obs, perWorker)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k, n := in.Draw()
				results[w][n] = obs{k, in.LatencyFor(n), in.BackoffFor(n, 1)}
			}
		}()
	}
	wg.Wait()

	merged := make(map[uint64]obs, workers*perWorker)
	for _, m := range results {
		for n, o := range m {
			if _, dup := merged[n]; dup {
				t.Fatalf("sequence number %d allocated twice", n)
			}
			merged[n] = o
		}
	}
	if len(merged) != workers*perWorker {
		t.Fatalf("observed %d distinct draws, want %d", len(merged), workers*perWorker)
	}

	serial := NewInjector(0.5, 1234)
	for i := 0; i < workers*perWorker; i++ {
		k, n := serial.Draw()
		o, ok := merged[n]
		if !ok {
			t.Fatalf("sequence number %d never drawn concurrently", n)
		}
		if o.kind != k {
			t.Fatalf("draw %d: concurrent kind %v, serial kind %v", n, o.kind, k)
		}
		if o.latency != serial.LatencyFor(n) {
			t.Fatalf("draw %d: concurrent latency %v, serial %v", n, o.latency, serial.LatencyFor(n))
		}
		if o.backoff != serial.BackoffFor(n, 1) {
			t.Fatalf("draw %d: concurrent backoff %v, serial %v", n, o.backoff, serial.BackoffFor(n, 1))
		}
	}
}

func TestBackoffBoundedAndMonotone(t *testing.T) {
	prev := time.Duration(0)
	for i := 0; i <= MaxRetries+3; i++ {
		d := Backoff(i)
		if d <= 0 || d > MaxBackoff {
			t.Fatalf("Backoff(%d) = %v out of bounds", i, d)
		}
		if d < prev {
			t.Fatalf("Backoff(%d) = %v < Backoff(%d) = %v", i, d, i-1, prev)
		}
		prev = d
	}
}

func TestFullJitterBoundedAndDeterministic(t *testing.T) {
	for attempt := 0; attempt <= MaxRetries+2; attempt++ {
		for h := uint64(0); h < 500; h++ {
			d := FullJitter(h, attempt)
			if d <= 0 || d > Backoff(attempt) {
				t.Fatalf("FullJitter(%d, %d) = %v outside (0, %v]", h, attempt, d, Backoff(attempt))
			}
			if d != FullJitter(h, attempt) {
				t.Fatalf("FullJitter(%d, %d) not deterministic", h, attempt)
			}
		}
	}
}

// TestFullJitterSpreads checks that distinct hashes decorrelate: over
// many hashes the jittered pauses must not collapse onto a handful of
// values (the thundering-herd failure mode the jitter exists to avoid).
func TestFullJitterSpreads(t *testing.T) {
	distinct := map[time.Duration]bool{}
	for h := uint64(0); h < 1000; h++ {
		distinct[FullJitter(h, MaxRetries)] = true
	}
	if len(distinct) < 100 {
		t.Fatalf("only %d distinct jitter values over 1000 hashes", len(distinct))
	}
}

func TestBackoffForMatchesJitterContract(t *testing.T) {
	in := NewInjector(0.5, 77)
	for n := uint64(1); n < 200; n++ {
		for attempt := 0; attempt <= MaxRetries; attempt++ {
			d := in.BackoffFor(n, attempt)
			if d <= 0 || d > Backoff(attempt) {
				t.Fatalf("BackoffFor(%d, %d) = %v outside (0, %v]", n, attempt, d, Backoff(attempt))
			}
			if d != in.BackoffFor(n, attempt) {
				t.Fatalf("BackoffFor(%d, %d) not deterministic", n, attempt)
			}
		}
	}
}

func TestErrorTyping(t *testing.T) {
	if !errors.Is(ErrExhausted, ErrTransient) {
		t.Error("ErrExhausted must wrap ErrTransient")
	}
	if !errors.Is(ErrInjectedCancel, budget.ErrCanceled) {
		t.Error("ErrInjectedCancel must wrap budget.ErrCanceled")
	}
	if !budget.Interrupted(ErrInjectedCancel) {
		t.Error("injected cancel must register as an interruption")
	}
}

func TestExhaustedIsInterruption(t *testing.T) {
	if !budget.Interrupted(ErrExhausted) {
		t.Error("retry exhaustion must register as a typed interruption")
	}
}
