package faults

import "testing"

func TestNodePlanForDeterministic(t *testing.T) {
	a := NodePlanFor(42, 3, 200)
	b := NodePlanFor(42, 3, 200)
	if a != b {
		t.Fatalf("same inputs gave different plans: %+v vs %+v", a, b)
	}
	if a.Victim < 0 || a.Victim >= 3 {
		t.Fatalf("victim %d out of range", a.Victim)
	}
	if a.At < 50 || a.At >= 151 {
		t.Fatalf("fault offset %d outside mid-load window [50,151)", a.At)
	}
	if a.Kind != NodeKill && a.Kind != NodePartition && a.Kind != NodeSlow {
		t.Fatalf("unknown kind %v", a.Kind)
	}
}

func TestNodePlanForSeedsDiffer(t *testing.T) {
	seen := map[NodePlan]bool{}
	for seed := int64(0); seed < 32; seed++ {
		seen[NodePlanFor(seed, 3, 400)] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d distinct plans across 32 seeds; mixing too weak", len(seen))
	}
}

func TestNodePlanForDisabled(t *testing.T) {
	for _, tc := range []struct{ nodes, reqs int }{{1, 100}, {0, 100}, {3, 0}} {
		p := NodePlanFor(7, tc.nodes, tc.reqs)
		if p.At >= 0 || p.Victim >= 0 {
			t.Fatalf("NodePlanFor(7,%d,%d) = %+v, want disabled", tc.nodes, tc.reqs, p)
		}
	}
}

func TestNodeKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{
		NodeKill: "kill", NodePartition: "partition", NodeSlow: "slow", NodeKind(9): "unknown",
	} {
		if got := k.String(); got != want {
			t.Fatalf("NodeKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
