package db

// MustParse is a test-only wrapper over Parse; the production API
// returns errors (no panics on malformed input).
func MustParse(input string) *DB {
	d, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return d
}
