package db

// Classify is implemented in package strat (it needs stratifiability);
// this file holds the pure syntactic part so that db stays free of the
// dependency: SyntacticClass returns the class ignoring
// stratifiability — callers that need the DSDB/DNDB split use
// strat.Classify.

// SyntacticClass returns the class of d based on syntax alone:
// ClassPositiveDDB (no negation, no integrity clauses), ClassDDDB (no
// negation), or ClassDNDB (negation present; whether it is a DSDB
// additionally requires a stratifiability check — see strat.Classify).
func (d *DB) SyntacticClass() Class {
	switch {
	case !d.HasNegation() && !d.HasIntegrityClauses():
		return ClassPositiveDDB
	case !d.HasNegation():
		return ClassDDDB
	default:
		return ClassDNDB
	}
}
