// Package db defines propositional disjunctive databases (DDBs) in the
// sense of the paper: finite sets of clauses
//
//	a1 ∨ … ∨ an ← b1 ∧ … ∧ bk ∧ ¬c1 ∧ … ∧ ¬cm     (n, k, m ≥ 0)
//
// together with their classification (positive / deductive /
// stratified / normal), the standard program transforms (Gelfond–
// Lifschitz reduct, head-shift of negative body literals), and
// translation to CNF for the SAT oracle.
package db

import (
	"fmt"
	"sort"
	"strings"

	"disjunct/internal/logic"
)

// Clause is a disjunctive database clause. A clause with an empty Head
// is an integrity clause (denial); a clause with empty body parts is a
// (disjunctive) fact.
type Clause struct {
	Head    []logic.Atom // a1 ∨ … ∨ an
	PosBody []logic.Atom // b1 ∧ … ∧ bk
	NegBody []logic.Atom // ¬c1 ∧ … ∧ ¬cm
}

// IsIntegrity reports whether the clause has an empty head.
func (c Clause) IsIntegrity() bool { return len(c.Head) == 0 }

// IsFact reports whether the clause has an empty body.
func (c Clause) IsFact() bool { return len(c.PosBody) == 0 && len(c.NegBody) == 0 }

// IsPositive reports whether the clause has no negative body literals.
func (c Clause) IsPositive() bool { return len(c.NegBody) == 0 }

// IsDefinite reports whether the clause has exactly one head atom and
// no negation.
func (c Clause) IsDefinite() bool { return len(c.Head) == 1 && c.IsPositive() }

// Clone returns a deep copy of the clause.
func (c Clause) Clone() Clause {
	return Clause{
		Head:    append([]logic.Atom(nil), c.Head...),
		PosBody: append([]logic.Atom(nil), c.PosBody...),
		NegBody: append([]logic.Atom(nil), c.NegBody...),
	}
}

// Normalize sorts and deduplicates each part of the clause in place and
// returns the clause.
func (c Clause) Normalize() Clause {
	c.Head = dedupAtoms(c.Head)
	c.PosBody = dedupAtoms(c.PosBody)
	c.NegBody = dedupAtoms(c.NegBody)
	return c
}

func dedupAtoms(as []logic.Atom) []logic.Atom {
	if len(as) < 2 {
		return as
	}
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	out := as[:1]
	for _, a := range as[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}

// Sat reports whether interpretation m satisfies the clause: if every
// positive body atom is true and every negative body atom is false in
// m, then some head atom must be true.
func (c Clause) Sat(m logic.Interp) bool {
	for _, b := range c.PosBody {
		if !m.Holds(b) {
			return true
		}
	}
	for _, n := range c.NegBody {
		if m.Holds(n) {
			return true
		}
	}
	for _, h := range c.Head {
		if m.Holds(h) {
			return true
		}
	}
	return false
}

// Class is the syntactic class of a database per the paper's
// classification (following Fernández & Minker).
type Class int

// Database classes, from most to least restricted.
const (
	// ClassPositiveDDB: no negation and no integrity clauses — the
	// regime of Table 1.
	ClassPositiveDDB Class = iota
	// ClassDDDB: disjunctive deductive DB — no negation, integrity
	// clauses allowed.
	ClassDDDB
	// ClassDSDB: disjunctive stratified DB — negation occurs but the
	// database admits a stratification.
	ClassDSDB
	// ClassDNDB: disjunctive normal DB — arbitrary clauses.
	ClassDNDB
)

func (c Class) String() string {
	switch c {
	case ClassPositiveDDB:
		return "positive DDB"
	case ClassDDDB:
		return "DDDB"
	case ClassDSDB:
		return "DSDB"
	default:
		return "DNDB"
	}
}

// DB is a propositional disjunctive database: a clause set over a
// vocabulary. The vocabulary may contain atoms not occurring in any
// clause (the paper's V is fixed independently of DB); inference is
// relative to the vocabulary.
type DB struct {
	Voc     *logic.Vocabulary
	Clauses []Clause
}

// New returns an empty database over a fresh vocabulary.
func New() *DB {
	return &DB{Voc: logic.NewVocabulary()}
}

// NewWithVocab returns an empty database over the given vocabulary.
func NewWithVocab(v *logic.Vocabulary) *DB {
	return &DB{Voc: v}
}

// Add appends a clause (normalised).
func (d *DB) Add(c Clause) {
	d.Clauses = append(d.Clauses, c.Normalize())
}

// AddRule is a convenience constructor from atom slices.
func (d *DB) AddRule(head, posBody, negBody []logic.Atom) {
	d.Add(Clause{Head: head, PosBody: posBody, NegBody: negBody})
}

// AddFact adds the disjunctive fact a1 ∨ … ∨ an.
func (d *DB) AddFact(atoms ...logic.Atom) {
	d.Add(Clause{Head: atoms})
}

// N returns the vocabulary size.
func (d *DB) N() int { return d.Voc.Size() }

// Clone returns a deep copy sharing no mutable state with d.
func (d *DB) Clone() *DB {
	out := &DB{Voc: d.Voc.Clone(), Clauses: make([]Clause, len(d.Clauses))}
	for i, c := range d.Clauses {
		out.Clauses[i] = c.Clone()
	}
	return out
}

// HasNegation reports whether any clause uses negation.
func (d *DB) HasNegation() bool {
	for _, c := range d.Clauses {
		if !c.IsPositive() {
			return true
		}
	}
	return false
}

// HasIntegrityClauses reports whether any clause has an empty head.
func (d *DB) HasIntegrityClauses() bool {
	for _, c := range d.Clauses {
		if c.IsIntegrity() {
			return true
		}
	}
	return false
}

// IsPositive reports whether no clause uses negation.
func (d *DB) IsPositive() bool { return !d.HasNegation() }

// Sat reports whether m is a model of the database.
func (d *DB) Sat(m logic.Interp) bool {
	for _, c := range d.Clauses {
		if !c.Sat(m) {
			return false
		}
	}
	return true
}

// ToCNF translates the database to a CNF over its vocabulary: each
// clause a1∨…∨an ← b1∧…∧bk∧¬c1∧…∧¬cm becomes the SAT clause
// a1 ∨ … ∨ an ∨ ¬b1 ∨ … ∨ ¬bk ∨ c1 ∨ … ∨ cm.
func (d *DB) ToCNF() logic.CNF {
	out := make(logic.CNF, 0, len(d.Clauses))
	for _, c := range d.Clauses {
		cl := make(logic.Clause, 0, len(c.Head)+len(c.PosBody)+len(c.NegBody))
		for _, h := range c.Head {
			cl = append(cl, logic.PosLit(h))
		}
		for _, b := range c.PosBody {
			cl = append(cl, logic.NegLit(b))
		}
		for _, n := range c.NegBody {
			cl = append(cl, logic.PosLit(n))
		}
		out = append(out, cl)
	}
	return out
}

// Reduct returns the Gelfond–Lifschitz reduct DB^M: clauses whose
// negative body is compatible with M (no ¬c with c ∈ M) with the
// negative body removed. The result is positive.
func (d *DB) Reduct(m logic.Interp) *DB {
	out := &DB{Voc: d.Voc}
	for _, c := range d.Clauses {
		blocked := false
		for _, n := range c.NegBody {
			if m.Holds(n) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		out.Clauses = append(out.Clauses, Clause{
			Head:    append([]logic.Atom(nil), c.Head...),
			PosBody: append([]logic.Atom(nil), c.PosBody...),
		})
	}
	return out
}

// HeadShift returns the positive database obtained by moving every
// negative body literal into the head (¬c in the body of a clause with
// head H becomes an extra head atom c). The paper uses this transform
// when applying ICWA to stratified databases.
func (d *DB) HeadShift() *DB {
	out := &DB{Voc: d.Voc}
	for _, c := range d.Clauses {
		nc := Clause{
			Head:    append(append([]logic.Atom(nil), c.Head...), c.NegBody...),
			PosBody: append([]logic.Atom(nil), c.PosBody...),
		}
		out.Clauses = append(out.Clauses, nc.Normalize())
	}
	return out
}

// WithoutIntegrity returns a copy of the database without its
// integrity clauses (the DDR semantics ignores them; cf. Example 3.1).
func (d *DB) WithoutIntegrity() *DB {
	out := &DB{Voc: d.Voc}
	for _, c := range d.Clauses {
		if !c.IsIntegrity() {
			out.Clauses = append(out.Clauses, c)
		}
	}
	return out
}

// String renders the database in the parser's concrete syntax.
func (d *DB) String() string {
	var b strings.Builder
	for _, c := range d.Clauses {
		b.WriteString(d.ClauseString(c))
		b.WriteByte('\n')
	}
	return b.String()
}

// ClauseString renders one clause, e.g. "a | b :- c, not d."
func (d *DB) ClauseString(c Clause) string {
	var b strings.Builder
	for i, h := range c.Head {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(d.Voc.Name(h))
	}
	if len(c.PosBody)+len(c.NegBody) > 0 {
		if len(c.Head) > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(":- ")
		first := true
		for _, p := range c.PosBody {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(d.Voc.Name(p))
		}
		for _, n := range c.NegBody {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString("not ")
			b.WriteString(d.Voc.Name(n))
		}
	}
	b.WriteByte('.')
	return b.String()
}

// Stats summarises a database's shape.
type Stats struct {
	Atoms            int
	Clauses          int
	IntegrityClauses int
	NegativeLiterals int
	MaxHead          int
	Facts            int
}

// Stats computes summary statistics.
func (d *DB) Stats() Stats {
	s := Stats{Atoms: d.N(), Clauses: len(d.Clauses)}
	for _, c := range d.Clauses {
		if c.IsIntegrity() {
			s.IntegrityClauses++
		}
		if c.IsFact() {
			s.Facts++
		}
		s.NegativeLiterals += len(c.NegBody)
		if len(c.Head) > s.MaxHead {
			s.MaxHead = len(c.Head)
		}
	}
	return s
}

// Validate checks internal consistency (all atoms within vocabulary).
func (d *DB) Validate() error {
	n := logic.Atom(d.N())
	for i, c := range d.Clauses {
		for _, part := range [][]logic.Atom{c.Head, c.PosBody, c.NegBody} {
			for _, a := range part {
				if a < 0 || a >= n {
					return fmt.Errorf("db: clause %d references atom %d outside vocabulary of size %d", i, a, n)
				}
			}
		}
	}
	return nil
}
