package db

import (
	"math/rand"
	"testing"
	"testing/quick"

	"disjunct/internal/logic"
)

// Property: the parser never panics on arbitrary byte soup — it either
// parses or returns an error.
func TestParserNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: rendering a random database and re-parsing it yields a
// semantically identical database (same models).
func TestRenderParseSemanticRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	for iter := 0; iter < 300; iter++ {
		d := randomDB(rng)
		d2, err := Parse(d.String())
		if err != nil {
			t.Fatalf("iter %d: rendered DB does not parse: %v\n%s", iter, err, d.String())
		}
		if d2.N() > d.N() {
			t.Fatalf("iter %d: round trip grew the vocabulary", iter)
		}
		n := d.N()
		for bits := 0; bits < 1<<uint(n); bits++ {
			m := logic.NewInterp(n)
			m2 := logic.NewInterp(d2.N())
			for v := 0; v < n; v++ {
				if bits&(1<<uint(v)) == 0 {
					continue
				}
				m.True.Set(v)
				// Map by name: the re-parse may order atoms differently.
				if a2, ok := d2.Voc.Lookup(d.Voc.Name(logic.Atom(v))); ok {
					m2.True.Set(int(a2))
				}
			}
			if d.Sat(m) != d2.Sat(m2) {
				t.Fatalf("iter %d: round trip changed semantics\n%s\nvs\n%s", iter, d.String(), d2.String())
			}
		}
	}
}

// Property: whitespace and comments are irrelevant. (Periods inside
// identifiers are legal, so a space must follow each clause
// terminator — "b.c" is one atom.)
func TestParserWhitespaceInsensitive(t *testing.T) {
	compact := "a|b. c:-a,not d. :-c,b."
	spaced := `
		a | b .   % heads
		c :- a , not d .
		:- c , b .
	`
	d1 := MustParse(compact)
	d2 := MustParse(spaced)
	if d1.String() != d2.String() {
		t.Fatalf("whitespace changed parse:\n%s\nvs\n%s", d1.String(), d2.String())
	}
}

// Property: Normalize is idempotent.
func TestNormalizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(242))
	for iter := 0; iter < 500; iter++ {
		d := randomDB(rng)
		for _, c := range d.Clauses {
			again := c.Clone().Normalize()
			if len(again.Head) != len(c.Head) || len(again.PosBody) != len(c.PosBody) {
				t.Fatalf("Normalize not idempotent: %+v vs %+v", c, again)
			}
		}
	}
}
