package db

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"disjunct/internal/logic"
)

func TestParseBasics(t *testing.T) {
	d := MustParse(`
		% a comment
		a | b.            % disjunctive fact
		c :- a, b.        % definite rule
		d ; e :- c, not f. % semicolon heads, negation
		:- d, e.          % integrity clause
	`)
	if len(d.Clauses) != 4 {
		t.Fatalf("parsed %d clauses, want 4", len(d.Clauses))
	}
	if d.N() != 6 {
		t.Fatalf("vocabulary size %d, want 6", d.N())
	}
	if !d.HasNegation() || !d.HasIntegrityClauses() {
		t.Fatalf("classification flags wrong")
	}
	c := d.Clauses[2]
	if len(c.Head) != 2 || len(c.PosBody) != 1 || len(c.NegBody) != 1 {
		t.Fatalf("third clause parsed wrong: %+v", c)
	}
	ic := d.Clauses[3]
	if !ic.IsIntegrity() || len(ic.PosBody) != 2 {
		t.Fatalf("integrity clause parsed wrong: %+v", ic)
	}
}

func TestParseNegationSyntaxes(t *testing.T) {
	for _, src := range []string{"a :- not b.", "a :- ~b.", "a :- -b."} {
		d := MustParse(src)
		if len(d.Clauses[0].NegBody) != 1 {
			t.Fatalf("%q: negation not recognised", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"a",         // missing period
		"a | .",     // dangling bar
		":- .",      // empty clause
		"a :- , b.", // dangling comma
		"| a.",      // leading bar
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := "a | b. c :- a, not d. :- c, b."
	d := MustParse(src)
	d2 := MustParse(d.String())
	if len(d2.Clauses) != len(d.Clauses) {
		t.Fatalf("round trip lost clauses")
	}
	if d.String() != d2.String() {
		t.Fatalf("round trip not stable:\n%s\nvs\n%s", d.String(), d2.String())
	}
}

func TestClausePredicates(t *testing.T) {
	d := MustParse("a | b. c :- a. :- a, b. d :- not a.")
	cs := d.Clauses
	if !cs[0].IsFact() || cs[0].IsIntegrity() || !cs[0].IsPositive() {
		t.Fatalf("fact flags wrong")
	}
	if !cs[1].IsDefinite() {
		t.Fatalf("definite flag wrong")
	}
	if !cs[2].IsIntegrity() {
		t.Fatalf("integrity flag wrong")
	}
	if cs[3].IsPositive() || cs[3].IsDefinite() {
		t.Fatalf("negative clause flags wrong")
	}
}

func TestNormalizeDedups(t *testing.T) {
	d := New()
	a := d.Voc.Intern("a")
	b := d.Voc.Intern("b")
	d.AddRule([]logic.Atom{b, a, b}, []logic.Atom{a, a}, nil)
	c := d.Clauses[0]
	if len(c.Head) != 2 || len(c.PosBody) != 1 {
		t.Fatalf("normalize failed: %+v", c)
	}
	if c.Head[0] != a || c.Head[1] != b {
		t.Fatalf("normalize must sort: %+v", c.Head)
	}
}

func TestSat(t *testing.T) {
	d := MustParse("a | b. c :- a. :- b, c. e :- not a.")
	cases := []struct {
		atoms string
		want  bool
	}{
		{"a c", true}, // a∨b ✓, c←a ✓, ¬(b∧c) ✓, e←¬a vacuous
		{"a", false},  // c ← a violated
		{"b e", true},
		{"b", false},     // e ← ¬a needs e
		{"", false},      // a∨b violated
		{"a b c", false}, // IC violated
	}
	for _, tc := range cases {
		m := logic.NewInterp(d.N())
		for _, name := range strings.Fields(tc.atoms) {
			at, ok := d.Voc.Lookup(name)
			if !ok {
				t.Fatalf("unknown atom %q", name)
			}
			m.True.Set(int(at))
		}
		if got := d.Sat(m); got != tc.want {
			t.Fatalf("Sat({%s}) = %v, want %v", tc.atoms, got, tc.want)
		}
	}
}

func TestToCNFAgreesWithSat(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for iter := 0; iter < 300; iter++ {
		d := randomDB(rng)
		cnf := d.ToCNF()
		n := d.N()
		for bits := 0; bits < 1<<uint(n); bits++ {
			m := logic.NewInterp(n)
			for v := 0; v < n; v++ {
				m.True.SetTo(v, bits&(1<<uint(v)) != 0)
			}
			if d.Sat(m) != logic.EvalCNF(cnf, m) {
				t.Fatalf("iter %d: CNF disagrees with Sat\nDB:\n%s", iter, d.String())
			}
		}
	}
}

func randomDB(rng *rand.Rand) *DB {
	d := New()
	n := 2 + rng.Intn(4)
	atoms := make([]logic.Atom, n)
	for i := range atoms {
		atoms[i] = d.Voc.Intern(string(rune('a' + i)))
	}
	for i := 0; i < 1+rng.Intn(6); i++ {
		var c Clause
		for j := 0; j < rng.Intn(3); j++ {
			c.Head = append(c.Head, atoms[rng.Intn(n)])
		}
		for j := 0; j < rng.Intn(3); j++ {
			c.PosBody = append(c.PosBody, atoms[rng.Intn(n)])
		}
		for j := 0; j < rng.Intn(2); j++ {
			c.NegBody = append(c.NegBody, atoms[rng.Intn(n)])
		}
		if len(c.Head)+len(c.PosBody)+len(c.NegBody) == 0 {
			continue
		}
		d.Add(c)
	}
	return d
}

func TestReduct(t *testing.T) {
	d := MustParse("a :- not b. c :- not a. e | f :- a, not g.")
	a, _ := d.Voc.Lookup("a")
	m := logic.InterpOf(d.N(), a)
	red := d.Reduct(m)
	// c ← ¬a is blocked (a ∈ M); others survive without negation.
	if len(red.Clauses) != 2 {
		t.Fatalf("reduct has %d clauses, want 2\n%s", len(red.Clauses), red.String())
	}
	if red.HasNegation() {
		t.Fatalf("reduct must be positive")
	}
}

func TestHeadShift(t *testing.T) {
	d := MustParse("a :- b, not c, not e.")
	hs := d.HeadShift()
	c := hs.Clauses[0]
	if len(c.Head) != 3 || len(c.NegBody) != 0 || len(c.PosBody) != 1 {
		t.Fatalf("head shift wrong: %+v", c)
	}
	if hs.HasNegation() {
		t.Fatalf("head-shifted DB must be positive")
	}
}

func TestWithoutIntegrity(t *testing.T) {
	d := MustParse("a. :- a, b. b | c.")
	w := d.WithoutIntegrity()
	if len(w.Clauses) != 2 || w.HasIntegrityClauses() {
		t.Fatalf("WithoutIntegrity wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := MustParse("a | b.")
	c := d.Clone()
	c.Voc.Intern("zzz")
	c.Clauses[0].Head[0] = logic.Atom(1)
	if d.Voc.Size() != 2 || d.Clauses[0].Head[0] != 0 {
		t.Fatalf("Clone aliases state")
	}
}

func TestStatsAndValidate(t *testing.T) {
	d := MustParse("a | b | c. d :- a, not b. :- c.")
	s := d.Stats()
	if s.Atoms != 4 || s.Clauses != 3 || s.IntegrityClauses != 1 ||
		s.NegativeLiterals != 1 || s.MaxHead != 3 || s.Facts != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	d.Clauses[0].Head[0] = logic.Atom(99)
	if err := d.Validate(); err == nil {
		t.Fatalf("Validate must catch out-of-range atoms")
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		src  string
		negP bool
		icP  bool
	}{
		{"a | b.", false, false},
		{"a. :- a, b.", false, true},
		{"a :- not b.", true, false},
		{"a :- not b. :- a.", true, true},
	}
	for _, tc := range cases {
		d := MustParse(tc.src)
		if d.HasNegation() != tc.negP {
			t.Fatalf("%q: HasNegation = %v", tc.src, d.HasNegation())
		}
		if d.HasIntegrityClauses() != tc.icP {
			t.Fatalf("%q: HasIntegrityClauses = %v", tc.src, d.HasIntegrityClauses())
		}
		if d.IsPositive() == tc.negP {
			t.Fatalf("%q: IsPositive inconsistent", tc.src)
		}
	}
}

// Property (testing/quick): the GL reduct of a positive database is
// the database itself, and reducts are always positive and no larger.
func TestQuickReductInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDB(rng)
		m := logic.NewInterp(d.N())
		for v := 0; v < d.N(); v++ {
			m.True.SetTo(v, rng.Intn(2) == 0)
		}
		red := d.Reduct(m)
		if red.HasNegation() || len(red.Clauses) > len(d.Clauses) {
			return false
		}
		if !d.HasNegation() && len(red.Clauses) != len(d.Clauses) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: head shifting preserves the classical models of positive
// clauses, and the shifted database is always positive with the same
// or fewer body literals.
func TestQuickHeadShiftInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDB(rng)
		hs := d.HeadShift()
		if hs.HasNegation() {
			return false
		}
		// On positive databases head shift is the identity up to
		// normalisation: same model sets.
		if !d.HasNegation() {
			n := d.N()
			for bits := 0; bits < 1<<uint(n); bits++ {
				m := logic.NewInterp(n)
				for v := 0; v < n; v++ {
					m.True.SetTo(v, bits&(1<<uint(v)) != 0)
				}
				if d.Sat(m) != hs.Sat(m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every model of a database is a model of its reduct w.r.t.
// itself (half of the stable-model fixpoint condition).
func TestQuickReductSelfModels(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDB(rng)
		n := d.N()
		for bits := 0; bits < 1<<uint(n); bits++ {
			m := logic.NewInterp(n)
			for v := 0; v < n; v++ {
				m.True.SetTo(v, bits&(1<<uint(v)) != 0)
			}
			if d.Sat(m) && !d.Reduct(m).Sat(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
