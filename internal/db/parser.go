package db

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a database in the library's concrete syntax. Each clause
// ends with a period:
//
//	a | b.                  % disjunctive fact
//	c :- a, b.              % definite rule
//	a | b :- c, not d.      % disjunctive rule with negation
//	:- a, b.                % integrity clause (denial)
//
// '%' starts a comment running to end of line. The "←" of the paper is
// written ":-"; "∨" is "|" (";" is also accepted); "∧" is "," (or "&");
// "¬" is "not", "-" or "~". Atom names follow the identifier syntax of
// package logic's formula parser.
func Parse(input string) (*DB, error) {
	d := New()
	if err := ParseInto(input, d); err != nil {
		return nil, err
	}
	return d, nil
}

// ParseInto parses input and appends the clauses to d, interning atoms
// into d's vocabulary.
func ParseInto(input string, d *DB) error {
	p := &dbParser{src: input, db: d}
	return p.run()
}

type dbParser struct {
	src  string
	pos  int
	line int
	db   *DB
}

func (p *dbParser) errorf(format string, args ...any) error {
	return fmt.Errorf("db: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *dbParser) skip() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case unicode.IsSpace(rune(c)):
			p.pos++
		case c == '%':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *dbParser) eat(tok string) bool {
	p.skip()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *dbParser) eatWord(w string) bool {
	p.skip()
	if !strings.HasPrefix(p.src[p.pos:], w) {
		return false
	}
	end := p.pos + len(w)
	if end < len(p.src) && isIdentChar(rune(p.src[end])) {
		return false
	}
	p.pos = end
	return true
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentChar(r rune) bool {
	return r == '_' || r == '\'' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *dbParser) ident() (string, error) {
	p.skip()
	start := p.pos
	if p.pos >= len(p.src) || !isIdentStart(rune(p.src[p.pos])) {
		return "", p.errorf("expected atom name")
	}
	for p.pos < len(p.src) && isIdentChar(rune(p.src[p.pos])) {
		p.pos++
	}
	name := p.src[start:p.pos]
	// Identifiers may contain '.', but a trailing '.' is the clause
	// terminator, not part of the name.
	for strings.HasSuffix(name, ".") {
		name = name[:len(name)-1]
		p.pos--
	}
	if name == "" {
		return "", p.errorf("expected atom name")
	}
	return name, nil
}

func (p *dbParser) run() error {
	for {
		p.skip()
		if p.pos >= len(p.src) {
			return nil
		}
		if err := p.clause(); err != nil {
			return err
		}
	}
}

func (p *dbParser) clause() error {
	var c Clause
	// Head: possibly empty when the clause starts with ":-".
	p.skip()
	if !strings.HasPrefix(p.src[p.pos:], ":-") {
		for {
			name, err := p.ident()
			if err != nil {
				return err
			}
			c.Head = append(c.Head, p.db.Voc.Intern(name))
			if p.eat("|") || p.eat(";") {
				continue
			}
			break
		}
	}
	if p.eat(":-") {
		// Body may be empty (":- ." is not allowed; a headless clause
		// must have at least one body literal).
		for {
			neg := p.eatWord("not") || p.eat("~")
			if !neg {
				// A '-' prefix also negates, but must not swallow
				// the '-' of an identifier... identifiers can't start
				// with '-', so this is unambiguous.
				neg = p.eat("-")
			}
			name, err := p.ident()
			if err != nil {
				return err
			}
			a := p.db.Voc.Intern(name)
			if neg {
				c.NegBody = append(c.NegBody, a)
			} else {
				c.PosBody = append(c.PosBody, a)
			}
			if p.eat(",") || p.eat("&") {
				continue
			}
			break
		}
	}
	if !p.eat(".") {
		return p.errorf("expected '.' at end of clause")
	}
	if len(c.Head) == 0 && len(c.PosBody) == 0 && len(c.NegBody) == 0 {
		return p.errorf("empty clause")
	}
	p.db.Add(c)
	return nil
}
