package core

import (
	"disjunct/internal/db"
	"disjunct/internal/logic"
)

// The paper's tables concern CAUTIOUS inference — truth in every model
// of the semantics. The companion notion, CREDULOUS (brave) inference
// — truth in at least one model — is what Schaerf's PODS'93 paper
// (cited as [26]) analyses for weakly-stable/-supported models; these
// helpers provide it generically for any registered semantics.
//
// Complexity note: for the Π₂ᵖ-complete cautious cells the credulous
// counterpart is Σ₂ᵖ-complete (the co-search flips into a search); the
// implementation below realises exactly that shape, enumerating the
// semantics' models with early exit.

// CredulousFormula reports whether some model in SEM(DB) satisfies f.
// An inconsistent semantics (empty model set) credulously entails
// nothing.
func CredulousFormula(s Semantics, d *db.DB, f *logic.Formula) (bool, error) {
	found := false
	_, err := s.Models(d, 0, func(m logic.Interp) bool {
		if f.Eval(m) {
			found = true
			return false
		}
		return true
	})
	return found, err
}

// CredulousLiteral reports whether some model in SEM(DB) satisfies l.
func CredulousLiteral(s Semantics, d *db.DB, l logic.Lit) (bool, error) {
	return CredulousFormula(s, d, logic.LitF(l))
}

// CautiousViaCredulous cross-checks: SEM(DB) ⊨ f iff SEM(DB) has no
// model of ¬f. Used by the test suite as an internal consistency
// check between the two inference modes.
func CautiousViaCredulous(s Semantics, d *db.DB, f *logic.Formula) (bool, error) {
	counter, err := CredulousFormula(s, d, logic.Not(f))
	if err != nil {
		return false, err
	}
	return !counter, nil
}
