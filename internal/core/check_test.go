package core_test

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"

	_ "disjunct/internal/semantics/ccwa"
	_ "disjunct/internal/semantics/cwa"
	_ "disjunct/internal/semantics/ddr"
	_ "disjunct/internal/semantics/ecwa"
	_ "disjunct/internal/semantics/icwa"
	_ "disjunct/internal/semantics/pdsm"
	_ "disjunct/internal/semantics/perf"
	_ "disjunct/internal/semantics/pws"
)

// refModelSet computes SEM(DB) with the brute-force reference for the
// given semantics name.
func refModelSet(name string, d *db.DB) ([]logic.Interp, bool) {
	switch name {
	case "GCWA":
		return refsem.GCWA(d), true
	case "EGCWA":
		return refsem.EGCWA(d), true
	case "DDR":
		if d.HasNegation() {
			return nil, false
		}
		return refsem.DDR(d), true
	case "PWS":
		if d.HasNegation() {
			return nil, false
		}
		return refsem.PWS(d), true
	case "DSM":
		return refsem.DSM(d), true
	case "PERF":
		if d.HasIntegrityClauses() {
			return nil, false
		}
		return refsem.PERF(d), true
	case "ICWA":
		if d.HasIntegrityClauses() {
			return nil, false
		}
		set, ok := refsem.ICWA(d)
		return set, ok
	case "PDSM":
		// Total partial stable models only (what CheckModel covers).
		var out []logic.Interp
		for _, p := range refsem.PDSM(d) {
			if p.IsTotal() {
				out = append(out, p.Total())
			}
		}
		return out, true
	}
	return nil, false
}

// TestCheckModelMatchesMembership cross-validates CheckModel against
// explicit membership in the reference model set, for EVERY
// interpretation of small random databases.
func TestCheckModelMatchesMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(251))
	semantics := []string{"GCWA", "EGCWA", "DDR", "PWS", "DSM", "PERF", "ICWA", "PDSM"}
	for iter := 0; iter < 120; iter++ {
		n := 2 + rng.Intn(3)
		var d *db.DB
		switch iter % 3 {
		case 0:
			d = gen.Random(rng, gen.Positive(n, 1+rng.Intn(5)))
		case 1:
			d = gen.Random(rng, gen.WithIntegrity(n, 1+rng.Intn(5)))
		default:
			d = gen.Random(rng, gen.NormalNoIC(n, 1+rng.Intn(5)))
		}
		for _, name := range semantics {
			want, ok := refModelSet(name, d)
			if !ok {
				continue
			}
			keys := map[string]bool{}
			for _, m := range want {
				keys[m.Key()] = true
			}
			s, _ := core.New(name, core.Options{})
			all, err := refsem.AllInterps(d.N())
			if err != nil {
				t.Fatalf("AllInterps: %v", err)
			}
			for _, m := range all {
				got, err := core.CheckModel(s, d, m)
				if err != nil {
					t.Fatalf("%s iter %d: %v", name, iter, err)
				}
				if got != keys[m.Key()] {
					t.Fatalf("%s iter %d: CheckModel(%s)=%v, membership=%v\nDB:\n%s",
						name, iter, m.String(d.Voc), got, keys[m.Key()], d.String())
				}
			}
		}
	}
}

// TestCheckModelFastPathsUsed verifies the ModelChecker interface is
// actually implemented (not falling back to enumeration) for all the
// bundled semantics.
func TestCheckModelFastPathsUsed(t *testing.T) {
	for _, name := range []string{"GCWA", "CCWA", "EGCWA", "ECWA", "DDR", "PWS", "ICWA", "PERF", "DSM", "PDSM", "CWA"} {
		s, ok := core.New(name, core.Options{})
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if _, isChecker := s.(core.ModelChecker); !isChecker {
			t.Errorf("%s does not implement ModelChecker", name)
		}
	}
}
