package core

import "sort"

// Worst-case complexity classes an Info.Cells field may carry — the
// machine-readable closed set behind the Complexity prose. The query
// planner (internal/plan) maps them onto its three cost tiers:
// CellP → polynomial, CellNP/CellCoNP → one NP-oracle level,
// CellSigma2/CellPi2 → second level of the polynomial hierarchy.
const (
	CellP      = "P"
	CellNP     = "NP"
	CellCoNP   = "coNP"
	CellSigma2 = "Sigma2p"
	CellPi2    = "Pi2p"
)

// KnownCells is the closed set of values Cells fields may carry; the
// registry coverage test rejects anything else.
var KnownCells = map[string]bool{
	CellP: true, CellNP: true, CellCoNP: true, CellSigma2: true, CellPi2: true,
}

// Cells are the worst-case classes of the three decision problems on
// the general fragment (the paper's table row for the semantics).
// Fragment restrictions that collapse a cell to P (definite, Horn,
// stratified-normal, positive-existence) are the planner's and the
// session fast path's job, not encoded here.
type Cells struct {
	Literal   string `json:"literal"`
	Formula   string `json:"formula"`
	Existence string `json:"existence"`
}

// Complete reports whether every cell is populated with a known class.
func (c Cells) Complete() bool {
	return KnownCells[c.Literal] && KnownCells[c.Formula] && KnownCells[c.Existence]
}

// Info describes a registered semantics for dispatchers: the serving
// layer's /v1/semantics endpoint surfaces it to clients, and workload
// generators (the loadgen, the soak tester's HTTP cross-check) consult
// the applicability flags to build databases a semantics is actually
// defined for instead of provoking ErrUnsupported.
type Info struct {
	// Name is the registry key ("GCWA", "DDR", …).
	Name string `json:"name"`
	// Complexity summarises the paper's table cells for the three
	// decision problems (literal inference / formula inference / model
	// existence) — documentation for clients picking budgets, not a
	// machine-checked contract (the bench harness audits the cells).
	Complexity string `json:"complexity"`
	// Cells is the machine-readable form of Complexity: one closed-set
	// class per decision problem, consumed by the cost-based planner. A
	// semantics that omits a cell degrades to worst-case (Πᵖ₂) in the
	// planner; the registry coverage test fails on missing cells so the
	// degradation can't happen silently.
	Cells Cells `json:"cells"`
	// NoNegation marks semantics defined only for positive databases
	// (DDR/WGCWA, PWS/PMS): negation in a body yields ErrUnsupported.
	NoNegation bool `json:"no_negation,omitempty"`
	// NoIC marks semantics defined only without integrity clauses
	// (PERF, ICWA): a headless clause yields ErrUnsupported.
	NoIC bool `json:"no_ic,omitempty"`
	// Stratified marks semantics that additionally require a
	// stratifiable database (ICWA): non-stratifiable input yields
	// ErrNotStratifiable. The property is dynamic — callers can only
	// discover it by asking — so dispatchers treat such errors as
	// semantic outcomes, never as service failures.
	Stratified bool `json:"stratified,omitempty"`
}

// Cell returns the class of one decision problem by its serve-layer
// kind name ("literal" | "formula" | "model"), defaulting to Πᵖ₂ when
// the cell is unpopulated — missing metadata must degrade to
// worst-case, never to optimistic.
func (i Info) Cell(kind string) string {
	var c string
	switch kind {
	case "literal":
		c = i.Cells.Literal
	case "formula":
		c = i.Cells.Formula
	case "model":
		c = i.Cells.Existence
	}
	if !KnownCells[c] {
		return CellPi2
	}
	return c
}

// Applicable reports whether the info's static applicability flags
// admit a database with the given syntactic features. (Stratified is
// dynamic and not decided here.)
func (i Info) Applicable(hasNegation, hasIC bool) bool {
	if i.NoNegation && hasNegation {
		return false
	}
	if i.NoIC && hasIC {
		return false
	}
	return true
}

var infos = map[string]Info{}

// Describe records dispatch metadata for a registered semantics. Like
// Register it is called from init functions; describing an
// unregistered name or re-describing a name panics.
func Describe(info Info) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[info.Name]; !ok {
		panic("core: Describe before Register: " + info.Name)
	}
	if _, dup := infos[info.Name]; dup {
		panic("core: duplicate Describe: " + info.Name)
	}
	infos[info.Name] = info
}

// InfoFor returns the dispatch metadata for a semantics name. The
// boolean reports whether the name has been described.
func InfoFor(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	i, ok := infos[name]
	return i, ok
}

// Infos returns the metadata of every described semantics, sorted by
// name.
func Infos() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(infos))
	for _, i := range infos {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
