package core

import "sort"

// Info describes a registered semantics for dispatchers: the serving
// layer's /v1/semantics endpoint surfaces it to clients, and workload
// generators (the loadgen, the soak tester's HTTP cross-check) consult
// the applicability flags to build databases a semantics is actually
// defined for instead of provoking ErrUnsupported.
type Info struct {
	// Name is the registry key ("GCWA", "DDR", …).
	Name string `json:"name"`
	// Complexity summarises the paper's table cells for the three
	// decision problems (literal inference / formula inference / model
	// existence) — documentation for clients picking budgets, not a
	// machine-checked contract (the bench harness audits the cells).
	Complexity string `json:"complexity"`
	// NoNegation marks semantics defined only for positive databases
	// (DDR/WGCWA, PWS/PMS): negation in a body yields ErrUnsupported.
	NoNegation bool `json:"no_negation,omitempty"`
	// NoIC marks semantics defined only without integrity clauses
	// (PERF, ICWA): a headless clause yields ErrUnsupported.
	NoIC bool `json:"no_ic,omitempty"`
	// Stratified marks semantics that additionally require a
	// stratifiable database (ICWA): non-stratifiable input yields
	// ErrNotStratifiable. The property is dynamic — callers can only
	// discover it by asking — so dispatchers treat such errors as
	// semantic outcomes, never as service failures.
	Stratified bool `json:"stratified,omitempty"`
}

// Applicable reports whether the info's static applicability flags
// admit a database with the given syntactic features. (Stratified is
// dynamic and not decided here.)
func (i Info) Applicable(hasNegation, hasIC bool) bool {
	if i.NoNegation && hasNegation {
		return false
	}
	if i.NoIC && hasIC {
		return false
	}
	return true
}

var infos = map[string]Info{}

// Describe records dispatch metadata for a registered semantics. Like
// Register it is called from init functions; describing an
// unregistered name or re-describing a name panics.
func Describe(info Info) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[info.Name]; !ok {
		panic("core: Describe before Register: " + info.Name)
	}
	if _, dup := infos[info.Name]; dup {
		panic("core: duplicate Describe: " + info.Name)
	}
	infos[info.Name] = info
}

// InfoFor returns the dispatch metadata for a semantics name. The
// boolean reports whether the name has been described.
func InfoFor(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	i, ok := infos[name]
	return i, ok
}

// Infos returns the metadata of every described semantics, sorted by
// name.
func Infos() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(infos))
	for _, i := range infos {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
