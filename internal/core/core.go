// Package core defines the common frame of the paper's reproduction:
// the Semantics interface (the three decision problems of Tables 1
// and 2 — literal inference, formula inference, model existence — plus
// model enumeration for inspection), the option set shared by the
// partition-based semantics, and a registry the ten semantics packages
// plug into.
//
// Each implementation reports its oracle usage through the
// oracle.NP it is constructed with; the benchmark harness reads the
// counters to exhibit each cell's complexity shape (cf. DESIGN.md §1).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
)

// Errors shared by the semantics implementations.
var (
	// ErrUnsupported marks a database outside the class a semantics is
	// defined for (e.g. PERF with integrity clauses, DDR with negation).
	ErrUnsupported = errors.New("semantics: database outside the class this semantics is defined for")
	// ErrNotStratifiable marks a non-stratifiable database given to a
	// stratification-based semantics (ICWA).
	ErrNotStratifiable = errors.New("semantics: database is not stratifiable")
	// ErrInconsistent marks inference from an inconsistent database
	// where the semantics leaves inference undefined rather than
	// trivially true. The implementations here follow the convention
	// that an empty model set entails everything, so this error is
	// reserved for callers who ask for a model explicitly.
	ErrInconsistent = errors.New("semantics: database has no model under this semantics")
)

// Options configures a semantics instance.
type Options struct {
	// Partition is the ⟨P;Q;Z⟩ partition for CCWA/ECWA/ICWA. When nil,
	// those semantics default to minimising every atom (P = V), which
	// makes CCWA coincide with GCWA and ECWA with EGCWA — exactly the
	// degenerate case the paper notes ("GCWA coincides with CCWA for
	// Q = Z = ∅").
	Partition *models.Partition
	// Oracle is the instrumented NP oracle; a fresh one is created when
	// nil.
	Oracle *oracle.NP
}

// Oracle returns the configured oracle, creating one if needed.
func (o *Options) oracle() *oracle.NP {
	if o.Oracle == nil {
		o.Oracle = oracle.NewNP()
	}
	return o.Oracle
}

// PartitionFor resolves the configured partition against a database
// (defaulting to P = V).
func (o *Options) PartitionFor(d *db.DB) models.Partition {
	if o.Partition != nil {
		return *o.Partition
	}
	return models.FullMin(d.N())
}

// OracleFor returns the oracle to use (never nil).
func (o *Options) OracleFor() *oracle.NP { return o.oracle() }

// Semantics is one of the paper's disjunctive database semantics.
// Implementations are stateless with respect to databases: the same
// instance may be used for many databases; oracle counters accumulate.
type Semantics interface {
	// Name is the paper's abbreviation: "GCWA", "DDR", …
	Name() string
	// InferLiteral decides whether every model in SEM(DB) satisfies
	// the literal (the "Inference of literal" column).
	InferLiteral(d *db.DB, l logic.Lit) (bool, error)
	// InferFormula decides whether every model in SEM(DB) satisfies
	// the formula (the "Inference of formula" column). The formula
	// must be over d's vocabulary.
	InferFormula(d *db.DB, f *logic.Formula) (bool, error)
	// HasModel decides SEM(DB) ≠ ∅ (the "∃ model" column).
	HasModel(d *db.DB) (bool, error)
	// Models enumerates SEM(DB) (total models; PDSM additionally
	// exposes partial models through its concrete type). limit ≤ 0
	// means unlimited. Intended for small databases — model sets are
	// exponential in general.
	Models(d *db.DB, limit int, yield func(logic.Interp) bool) (int, error)
}

// Factory builds a semantics instance from options.
type Factory func(opts Options) Semantics

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds a factory under the given name (the paper's
// abbreviation, upper-case). It panics on duplicates — registration
// happens from init functions, where a duplicate is a programming
// error.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: duplicate semantics %q", name))
	}
	registry[name] = f
}

// New instantiates the named semantics. The boolean reports whether
// the name is registered.
func New(name string, opts Options) (Semantics, bool) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, false
	}
	return f(opts), true
}

// Names returns the registered semantics names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
