package core_test

import (
	"math/rand"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/dbtest"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"

	_ "disjunct/internal/semantics/dsm"
	_ "disjunct/internal/semantics/egcwa"
	_ "disjunct/internal/semantics/gcwa"
)

func TestRegistryBasics(t *testing.T) {
	names := core.Names()
	if len(names) == 0 {
		t.Fatalf("no semantics registered")
	}
	for _, n := range names {
		s, ok := core.New(n, core.Options{})
		if !ok || s == nil {
			t.Fatalf("cannot instantiate %s", n)
		}
	}
	if _, ok := core.New("NOPE", core.Options{}); ok {
		t.Fatalf("unknown semantics resolved")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration must panic")
		}
	}()
	core.Register("GCWA", func(core.Options) core.Semantics { return nil })
}

func TestOptionsDefaults(t *testing.T) {
	var opts core.Options
	o := opts.OracleFor()
	if o == nil {
		t.Fatalf("OracleFor must allocate")
	}
	if opts.OracleFor() != o {
		t.Fatalf("OracleFor must be stable")
	}
	d := dbtest.MustParse("a | b.")
	part := opts.PartitionFor(d)
	if part.P.Count() != d.N() {
		t.Fatalf("default partition must minimise everything")
	}
	custom := models.NewPartition(2, []logic.Atom{0}, nil)
	opts.Partition = &custom
	if got := opts.PartitionFor(d); got.P.Count() != 1 {
		t.Fatalf("explicit partition ignored")
	}
}

func TestCredulousVsCautious(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for _, name := range []string{"GCWA", "EGCWA", "DSM"} {
		s, _ := core.New(name, core.Options{})
		for iter := 0; iter < 80; iter++ {
			n := 2 + rng.Intn(3)
			d := gen.Random(rng, gen.Normal(n, 1+rng.Intn(5)))
			if name != "DSM" && d.HasNegation() {
				continue
			}
			f := logic.AtomF(logic.Atom(rng.Intn(n)))
			cautious, err := s.InferFormula(d, f)
			if err != nil {
				continue
			}
			viaCred, err := core.CautiousViaCredulous(s, d, f)
			if err != nil {
				t.Fatal(err)
			}
			if cautious != viaCred {
				t.Fatalf("%s iter %d: cautious=%v via-credulous=%v\nDB:\n%s",
					name, iter, cautious, viaCred, d.String())
			}
			// Cautious implies credulous whenever a model exists.
			if cautious {
				cred, _ := core.CredulousFormula(s, d, f)
				hasModel, _ := s.HasModel(d)
				if hasModel && !cred {
					t.Fatalf("%s iter %d: cautious but not credulous on consistent DB", name, iter)
				}
			}
		}
	}
}

func TestCredulousLiteral(t *testing.T) {
	d := dbtest.MustParse("a | b.")
	s, _ := core.New("EGCWA", core.Options{})
	a, _ := d.Voc.Lookup("a")
	cred, err := core.CredulousLiteral(s, d, logic.PosLit(a))
	if err != nil || !cred {
		t.Fatalf("a must be credulously inferred from a|b: %v %v", cred, err)
	}
	caut, _ := s.InferLiteral(d, logic.PosLit(a))
	if caut {
		t.Fatalf("a must not be cautiously inferred from a|b")
	}
}
