package core

import "disjunct/internal/budget"

// Verdict is the three-valued outcome of a budgeted inference query:
// True, False, or Incomplete (unknown-out-of-budget). The budget layer
// never degrades silently — a Verdict is Incomplete exactly when the
// query was interrupted by a typed budget cause, and then Cause
// records which one. A complete Verdict is byte-identical to what the
// unbudgeted query would have returned (the budget machinery never
// changes search order; the chaos soak asserts this).
type Verdict struct {
	// Holds is the answer; meaningful only when Incomplete is false.
	Holds bool
	// Incomplete marks an interrupted query: the answer is unknown
	// within the granted budget.
	Incomplete bool
	// Cause is the typed interruption error (budget.ErrCanceled,
	// ErrDeadline, ErrConflictBudget, ErrPropagationBudget,
	// ErrNPCallBudget, or a fault-injection error wrapping one); nil
	// when the query completed.
	Cause error
}

// VerdictOf folds a (bool, error) inference result into a Verdict.
// Interruption errors become Incomplete verdicts; any other error is
// returned as-is for the caller to handle (ErrUnsupported etc. are
// semantic outcomes, not budget exhaustion).
func VerdictOf(holds bool, err error) (Verdict, error) {
	if err == nil {
		return Verdict{Holds: holds}, nil
	}
	if budget.Interrupted(err) {
		return Verdict{Incomplete: true, Cause: err}, nil
	}
	return Verdict{}, err
}

// String renders "true", "false", or "incomplete(<cause>)".
func (v Verdict) String() string {
	switch {
	case v.Incomplete && v.Cause != nil:
		return "incomplete(" + v.Cause.Error() + ")"
	case v.Incomplete:
		return "incomplete"
	case v.Holds:
		return "true"
	default:
		return "false"
	}
}
