package core

import (
	"disjunct/internal/db"
	"disjunct/internal/logic"
)

// ModelChecker is the optional interface for the model-checking
// problem "given M, is M ∈ SEM(DB)?" — the natural companion of the
// paper's three decision problems (the paper's Π₂ᵖ membership proofs
// all hinge on this check being cheap: one NP-oracle call for the
// minimality/stability/perfection-based semantics, polynomial for the
// fixpoint-based ones).
type ModelChecker interface {
	// CheckModel reports whether m ∈ SEM(DB).
	CheckModel(d *db.DB, m logic.Interp) (bool, error)
}

// CheckModel decides m ∈ SEM(DB) for any semantics: via the
// ModelChecker fast path when implemented, falling back to model
// enumeration otherwise.
func CheckModel(s Semantics, d *db.DB, m logic.Interp) (bool, error) {
	if mc, ok := s.(ModelChecker); ok {
		return mc.CheckModel(d, m)
	}
	found := false
	_, err := s.Models(d, 0, func(o logic.Interp) bool {
		if o.Equal(m) {
			found = true
			return false
		}
		return true
	})
	return found, err
}
