package ground

import (
	"fmt"
	"strings"
	"testing"

	"disjunct/internal/core"
	"disjunct/internal/logic"
	"disjunct/internal/refsem"

	_ "disjunct/internal/semantics/dsm"
	_ "disjunct/internal/semantics/gcwa"
)

func TestParseProgram(t *testing.T) {
	prog := MustParseProgram(`
		edge(a, b).   % a fact
		edge(b, c).
		path(X,Y) | blocked(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), path(Y,Z).
		ok :- not blocked(a, b).
	`)
	if len(prog.Rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(prog.Rules))
	}
	r := prog.Rules[2]
	if len(r.Head) != 2 || r.Head[0].Pred != "path" || len(r.Head[0].Args) != 2 {
		t.Fatalf("disjunctive rule parsed wrong: %+v", r)
	}
	if !Term("X").IsVar() || Term("a").IsVar() || Term("x").IsVar() {
		t.Fatalf("variable convention broken")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"p(X).",             // unsafe: X not in a positive body
		"p(X) :- not q(X).", // unsafe through negation
		"p(a",               // unclosed
		"p(a) :- q(a)",      // missing period
		"p(a). p(a,b).",     // arity clash
	} {
		if _, err := ParseProgram(bad); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

func TestGroundTransitiveClosure(t *testing.T) {
	prog := MustParseProgram(`
		edge(a, b).
		edge(b, c).
		path(X,Y) :- edge(X,Y).
		path(X,Z) :- path(X,Y), edge(Y,Z).
	`)
	d, err := prog.Ground()
	if err != nil {
		t.Fatal(err)
	}
	// Definite program: its least model is the transitive closure.
	sem, _ := core.New("GCWA", core.Options{})
	for _, q := range []struct {
		atom string
		want bool
	}{
		{"path(a,b)", true},
		{"path(b,c)", true},
		{"path(a,c)", true},
	} {
		at, ok := d.Voc.Lookup(q.atom)
		if !ok {
			t.Fatalf("atom %s missing from grounding", q.atom)
		}
		got, err := sem.InferLiteral(d, logic.PosLit(at))
		if err != nil {
			t.Fatal(err)
		}
		if got != q.want {
			t.Fatalf("GCWA ⊨ %s = %v, want %v", q.atom, got, q.want)
		}
	}
	// Irrelevant instantiations are absent: path(c,a) is not derivable
	// and should not even be in the vocabulary.
	if _, ok := d.Voc.Lookup("path(c,a)"); ok {
		t.Fatalf("irrelevant atom instantiated")
	}
}

func TestGroundDisjunctive(t *testing.T) {
	prog := MustParseProgram(`
		node(a). node(b).
		red(X) | green(X) :- node(X).
	`)
	d, err := prog.Ground()
	if err != nil {
		t.Fatal(err)
	}
	// Minimal models: one colour choice per node → 4 minimal models.
	mm := refsem.MinimalModels(d)
	if len(mm) != 4 {
		t.Fatalf("minimal models = %d, want 4", len(mm))
	}
}

func TestGroundNegationStable(t *testing.T) {
	prog := MustParseProgram(`
		node(a).
		in(X) :- node(X), not out(X).
		out(X) :- node(X), not in(X).
	`)
	d, err := prog.Ground()
	if err != nil {
		t.Fatal(err)
	}
	sem, _ := core.New("DSM", core.Options{})
	count, err := sem.Models(d, 0, func(logic.Interp) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("stable models = %d, want 2 (in/out choice)", count)
	}
}

func TestGroundAgainstGroundFull(t *testing.T) {
	// The relevance-optimised grounding and the full grounding must
	// agree on every GCWA verdict over the optimised vocabulary.
	programs := []string{
		`edge(a,b). edge(b,c). path(X,Y) :- edge(X,Y). path(X,Z) :- path(X,Y), edge(Y,Z).`,
		`node(a). node(b). red(X) | green(X) :- node(X). clash :- red(a), red(b).`,
		`p(a). q(X) | r(X) :- p(X). s(X) :- q(X), r(X).`,
	}
	for pi, src := range programs {
		prog := MustParseProgram(src)
		opt, err := prog.Ground()
		if err != nil {
			t.Fatal(err)
		}
		full, err := prog.GroundFull()
		if err != nil {
			t.Fatal(err)
		}
		semOpt, _ := core.New("GCWA", core.Options{})
		semFull, _ := core.New("GCWA", core.Options{})
		for v := 0; v < opt.N(); v++ {
			name := opt.Voc.Name(logic.Atom(v))
			if strings.HasPrefix(name, "_") {
				continue
			}
			fa, ok := full.Voc.Lookup(name)
			if !ok {
				t.Fatalf("program %d: atom %s missing from full grounding", pi, name)
			}
			for _, mkLit := range []func() (logic.Lit, logic.Lit){
				func() (logic.Lit, logic.Lit) { return logic.PosLit(logic.Atom(v)), logic.PosLit(fa) },
				func() (logic.Lit, logic.Lit) { return logic.NegLit(logic.Atom(v)), logic.NegLit(fa) },
			} {
				lo, lf := mkLit()
				got, err := semOpt.InferLiteral(opt, lo)
				if err != nil {
					t.Fatal(err)
				}
				want, err := semFull.InferLiteral(full, lf)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("program %d: verdict differs on %s: opt=%v full=%v", pi, name, got, want)
				}
			}
		}
	}
}

func TestGroundFullDomainSize(t *testing.T) {
	prog := MustParseProgram(`p(a). q(X) :- p(X).`)
	full, err := prog.GroundFull()
	if err != nil {
		t.Fatal(err)
	}
	// One constant: one instance of the rule plus the fact.
	if len(full.Clauses) != 2 {
		t.Fatalf("full grounding has %d clauses, want 2", len(full.Clauses))
	}
}

func TestAtomString(t *testing.T) {
	a := Atom{Pred: "edge", Args: []Term{"a", "X"}}
	if a.String() != "edge(a,X)" {
		t.Fatalf("String = %q", a.String())
	}
	if (Atom{Pred: "ok"}).String() != "ok" {
		t.Fatalf("0-ary atom broken")
	}
	if a.ground() {
		t.Fatalf("edge(a,X) is not ground")
	}
}

func BenchmarkGrounding(b *testing.B) {
	// Grounding scale: transitive closure over growing chains.
	for _, n := range []int{10, 20, 40} {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "edge(c%d, c%d).\n", i, i+1)
		}
		sb.WriteString("path(X,Y) :- edge(X,Y).\npath(X,Z) :- path(X,Y), edge(Y,Z).\n")
		prog := MustParseProgram(sb.String())
		b.Run(fmt.Sprintf("chain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prog.Ground(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
