package ground

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseProgram reads a non-ground disjunctive program. Syntax mirrors
// the propositional parser with predicate arguments added:
//
//	edge(a, b).                         % ground fact
//	path(X,Y) | blocked(X,Y) :- edge(X,Y).
//	path(X,Z) :- path(X,Y), path(Y,Z).
//	ok :- not blocked(a, b).            % default negation
//	:- blocked(X,Y), blocked(Y,X).      % integrity rule
//
// Identifiers starting with an upper-case letter are variables;
// everything else is a constant or predicate symbol. '%' comments run
// to end of line.
func ParseProgram(input string) (*Program, error) {
	p := &programParser{src: input}
	prog := &Program{}
	for {
		p.skip()
		if p.pos >= len(p.src) {
			break
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

type programParser struct {
	src  string
	pos  int
	line int
}

func (p *programParser) errorf(format string, args ...any) error {
	return fmt.Errorf("ground: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *programParser) skip() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case unicode.IsSpace(rune(c)):
			p.pos++
		case c == '%':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *programParser) eat(tok string) bool {
	p.skip()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *programParser) eatWord(w string) bool {
	p.skip()
	if !strings.HasPrefix(p.src[p.pos:], w) {
		return false
	}
	end := p.pos + len(w)
	if end < len(p.src) && isIdentChar(rune(p.src[end])) {
		return false
	}
	p.pos = end
	return true
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentChar(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *programParser) ident() (string, error) {
	p.skip()
	start := p.pos
	if p.pos >= len(p.src) || !isIdentStart(rune(p.src[p.pos])) {
		return "", p.errorf("expected identifier")
	}
	for p.pos < len(p.src) && isIdentChar(rune(p.src[p.pos])) {
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *programParser) atom() (Atom, error) {
	name, err := p.ident()
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name}
	if !p.eat("(") {
		return a, nil
	}
	for {
		t, err := p.ident()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, Term(t))
		if p.eat(",") {
			continue
		}
		break
	}
	if !p.eat(")") {
		return Atom{}, p.errorf("missing ')' in atom %s", a.Pred)
	}
	return a, nil
}

func (p *programParser) rule() (Rule, error) {
	var r Rule
	p.skip()
	if !strings.HasPrefix(p.src[p.pos:], ":-") {
		for {
			a, err := p.atom()
			if err != nil {
				return r, err
			}
			r.Head = append(r.Head, a)
			if p.eat("|") || p.eat(";") {
				continue
			}
			break
		}
	}
	if p.eat(":-") {
		for {
			neg := p.eatWord("not") || p.eat("~") || p.eat("-")
			a, err := p.atom()
			if err != nil {
				return r, err
			}
			if neg {
				r.NegBody = append(r.NegBody, a)
			} else {
				r.PosBody = append(r.PosBody, a)
			}
			if p.eat(",") || p.eat("&") {
				continue
			}
			break
		}
	}
	if !p.eat(".") {
		return r, p.errorf("expected '.' at end of rule")
	}
	if len(r.Head)+len(r.PosBody)+len(r.NegBody) == 0 {
		return r, p.errorf("empty rule")
	}
	return r, nil
}
