package ground

// MustParseProgram is a test-only wrapper over ParseProgram; the
// production API returns errors (no panics on malformed input).
func MustParseProgram(input string) *Program {
	p, err := ParseProgram(input)
	if err != nil {
		panic(err)
	}
	return p
}
