// Package ground provides a first-order (datalog-with-disjunction)
// front end for the propositional engine: non-ground disjunctive rules
// over a finite constant universe are grounded into a propositional
// db.DB, to which every semantics of the library applies.
//
// The paper restricts its analysis to "propositional (i.e. grounded)
// databases"; this package is the grounder that justifies the phrase —
// a disjunctive deductive database in practice is a set of non-ground
// rules
//
//	path(X,Y) | blocked(X,Y) :- edge(X,Y).
//	path(X,Z) :- path(X,Y), path(Y,Z).
//
// whose semantics is that of its (finite, function-free) grounding.
//
// The language is function-free (datalog): terms are constants or
// variables; safety requires every variable of a rule to occur in a
// positive body atom (head-only or negation-only variables would make
// the grounding ill-defined). Grounding instantiates each rule with
// all substitutions over the active domain, with a relevance
// optimisation: only atoms derivable from the program's facts and rule
// heads are instantiated (a standard semi-naive restriction that keeps
// groundings small without changing any semantics' models over the
// relevant vocabulary).
package ground

import (
	"fmt"
	"sort"
	"strings"

	"disjunct/internal/db"
	"disjunct/internal/logic"
)

// Term is a constant or variable. Variables start with an upper-case
// letter (prolog convention); everything else is a constant.
type Term string

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool {
	return len(t) > 0 && t[0] >= 'A' && t[0] <= 'Z'
}

// Atom is a predicate applied to terms, e.g. edge(a, X).
type Atom struct {
	Pred string
	Args []Term
}

func (a Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = string(t)
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// ground reports whether the atom contains no variables.
func (a Atom) ground() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Rule is a non-ground disjunctive rule.
type Rule struct {
	Head    []Atom
	PosBody []Atom
	NegBody []Atom
}

// Program is a set of non-ground rules.
type Program struct {
	Rules []Rule
}

// Substitution maps variables to constants.
type Substitution map[Term]Term

// apply instantiates the atom under the substitution.
func (a Atom) apply(s Substitution) Atom {
	out := Atom{Pred: a.Pred, Args: make([]Term, len(a.Args))}
	for i, t := range a.Args {
		if t.IsVar() {
			if c, ok := s[t]; ok {
				out.Args[i] = c
				continue
			}
		}
		out.Args[i] = t
	}
	return out
}

// Validate checks arity consistency and safety.
func (p *Program) Validate() error {
	arity := map[string]int{}
	checkArity := func(a Atom) error {
		if n, seen := arity[a.Pred]; seen && n != len(a.Args) {
			return fmt.Errorf("ground: predicate %s used with arities %d and %d", a.Pred, n, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		return nil
	}
	for ri, r := range p.Rules {
		safe := map[Term]bool{}
		for _, a := range r.PosBody {
			if err := checkArity(a); err != nil {
				return err
			}
			for _, t := range a.Args {
				if t.IsVar() {
					safe[t] = true
				}
			}
		}
		for _, part := range [][]Atom{r.Head, r.NegBody} {
			for _, a := range part {
				if err := checkArity(a); err != nil {
					return err
				}
				for _, t := range a.Args {
					if t.IsVar() && !safe[t] {
						return fmt.Errorf("ground: rule %d: unsafe variable %s (must occur in a positive body atom)", ri, t)
					}
				}
			}
		}
	}
	return nil
}

// Ground instantiates the program over its active domain and returns
// the propositional database plus the mapping from ground atoms to
// propositional atoms (via the vocabulary's names, e.g. "edge(a,b)").
//
// Relevance: the instantiation is computed by a fixpoint over
// "possibly derivable" ground atoms — starting from the ground facts,
// a rule instance is emitted as soon as all its positive body atoms
// are possibly derivable; its head atoms (and, conservatively, its
// negative body atoms) then become possibly derivable too. Rule
// instances whose positive body can never be derived are irrelevant
// under every semantics in the library (their bodies are false in
// every model that matters) — except that their heads would never even
// enter the vocabulary, which is the desired behaviour.
func (p *Program) Ground() (*db.DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := db.New()

	// Possibly-derivable ground atoms, keyed by string form.
	derivable := map[string]Atom{}
	intern := func(a Atom) logic.Atom {
		return d.Voc.Intern(a.String())
	}

	// Constants of the program (active domain).
	constSet := map[Term]bool{}
	for _, r := range p.Rules {
		for _, part := range [][]Atom{r.Head, r.PosBody, r.NegBody} {
			for _, a := range part {
				for _, t := range a.Args {
					if !t.IsVar() {
						constSet[t] = true
					}
				}
			}
		}
	}
	var consts []Term
	for c := range constSet {
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i] < consts[j] })

	// Index possibly-derivable atoms by predicate for join-style
	// matching, with a per-round delta for semi-naive evaluation.
	byPred := map[string][]Atom{}
	deltaByPred := map[string][]Atom{}
	addDerivable := func(a Atom) bool {
		k := a.String()
		if _, ok := derivable[k]; ok {
			return false
		}
		derivable[k] = a
		byPred[a.Pred] = append(byPred[a.Pred], a)
		deltaByPred[a.Pred] = append(deltaByPred[a.Pred], a)
		return true
	}

	seenInstance := map[string]bool{}

	// matchBody enumerates substitutions grounding the positive body
	// against the derivable set. deltaAt ≥ 0 restricts that body
	// position to the LAST round's new atoms (semi-naive evaluation:
	// an instance is new only if some body atom is new; enumerating
	// one forced-delta position per rule per round covers all new
	// instances, with the instance-level dedup absorbing overlaps).
	deltaSnapshot := map[string][]Atom{}
	var matchBody func(body []Atom, idx, deltaAt int, s Substitution, yield func(Substitution))
	matchBody = func(body []Atom, idx, deltaAt int, s Substitution, yield func(Substitution)) {
		if len(body) == 0 {
			yield(s)
			return
		}
		a := body[0].apply(s)
		pool := byPred[a.Pred]
		if idx == deltaAt {
			pool = deltaSnapshot[a.Pred]
		}
		if a.ground() {
			if idx == deltaAt {
				// The forced-delta position must match a NEW atom.
				found := false
				for _, cand := range pool {
					if cand.String() == a.String() {
						found = true
						break
					}
				}
				if !found {
					return
				}
			} else if _, ok := derivable[a.String()]; !ok {
				return
			}
			matchBody(body[1:], idx+1, deltaAt, s, yield)
			return
		}
		for _, cand := range pool {
			if len(cand.Args) != len(a.Args) {
				continue
			}
			ext := Substitution{}
			for k, v := range s {
				ext[k] = v
			}
			ok := true
			for i, t := range a.Args {
				switch {
				case !t.IsVar():
					if cand.Args[i] != t {
						ok = false
					}
				default:
					if bound, seen := ext[t]; seen {
						if bound != cand.Args[i] {
							ok = false
						}
					} else {
						ext[t] = cand.Args[i]
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				matchBody(body[1:], idx+1, deltaAt, ext, yield)
			}
		}
	}

	emit := func(r Rule, s Substitution) bool {
		var c db.Clause
		var key strings.Builder
		for _, a := range r.Head {
			g := a.apply(s)
			key.WriteString(g.String())
			key.WriteByte('|')
		}
		key.WriteByte(':')
		for _, a := range r.PosBody {
			g := a.apply(s)
			key.WriteString(g.String())
			key.WriteByte(',')
		}
		key.WriteByte('~')
		for _, a := range r.NegBody {
			g := a.apply(s)
			key.WriteString(g.String())
			key.WriteByte(',')
		}
		if seenInstance[key.String()] {
			return false
		}
		seenInstance[key.String()] = true

		changed := false
		for _, a := range r.Head {
			g := a.apply(s)
			c.Head = append(c.Head, intern(g))
			if addDerivable(g) {
				changed = true
			}
		}
		for _, a := range r.PosBody {
			c.PosBody = append(c.PosBody, intern(a.apply(s)))
		}
		for _, a := range r.NegBody {
			g := a.apply(s)
			c.NegBody = append(c.NegBody, intern(g))
			// Negated atoms join the vocabulary (they are part of the
			// propositional DB) but not the derivable set: a purely
			// negative occurrence cannot support further derivations.
		}
		d.Add(c)
		return changed
	}

	// Round 0: body-less rules (ground by safety) seed the derivable
	// set; subsequent semi-naive rounds join each rule's body with one
	// position forced through the previous round's delta.
	for _, r := range p.Rules {
		if len(r.PosBody) != 0 {
			continue
		}
		// Safety guarantees body-less rules are variable-free.
		emit(r, Substitution{})
	}
	firstRound := true
	for {
		// Snapshot and reset the delta for this round.
		deltaSnapshot = deltaByPred
		deltaByPred = map[string][]Atom{}
		changed := false
		for _, r := range p.Rules {
			if len(r.PosBody) == 0 {
				continue
			}
			if firstRound {
				// All body atoms draw from the full (seed) set once.
				matchBody(r.PosBody, 0, -1, Substitution{}, func(s Substitution) {
					if emit(r, s) {
						changed = true
					}
				})
				continue
			}
			for deltaAt := range r.PosBody {
				matchBody(r.PosBody, 0, deltaAt, Substitution{}, func(s Substitution) {
					if emit(r, s) {
						changed = true
					}
				})
			}
		}
		firstRound = false
		if !changed {
			return d, nil
		}
	}
}

// LookupAtom resolves a ground atom (written as in the vocabulary,
// e.g. "edge(a,b)") in the grounded database.
func LookupAtom(d *db.DB, a Atom) (logic.Atom, bool) {
	return d.Voc.Lookup(a.String())
}

// GroundFull instantiates every rule with every substitution over the
// active domain, with no relevance filtering: the textbook grounding.
// Exponential in the maximum number of variables per rule; used by the
// tests as the reference against which the relevance-optimised Ground
// is validated (the two groundings must agree on every semantics'
// verdicts for queries over Ground's vocabulary).
func (p *Program) GroundFull() (*db.DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := db.New()
	constSet := map[Term]bool{}
	for _, r := range p.Rules {
		for _, part := range [][]Atom{r.Head, r.PosBody, r.NegBody} {
			for _, a := range part {
				for _, t := range a.Args {
					if !t.IsVar() {
						constSet[t] = true
					}
				}
			}
		}
	}
	var consts []Term
	for c := range constSet {
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i] < consts[j] })
	if len(consts) == 0 {
		consts = []Term{"u"} // degenerate domain for variable-free use
	}

	for _, r := range p.Rules {
		varSet := map[Term]bool{}
		for _, part := range [][]Atom{r.Head, r.PosBody, r.NegBody} {
			for _, a := range part {
				for _, t := range a.Args {
					if t.IsVar() {
						varSet[t] = true
					}
				}
			}
		}
		var vars []Term
		for v := range varSet {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })

		s := Substitution{}
		var rec func(i int)
		rec = func(i int) {
			if i == len(vars) {
				var c db.Clause
				for _, a := range r.Head {
					c.Head = append(c.Head, d.Voc.Intern(a.apply(s).String()))
				}
				for _, a := range r.PosBody {
					c.PosBody = append(c.PosBody, d.Voc.Intern(a.apply(s).String()))
				}
				for _, a := range r.NegBody {
					c.NegBody = append(c.NegBody, d.Voc.Intern(a.apply(s).String()))
				}
				d.Add(c)
				return
			}
			for _, con := range consts {
				s[vars[i]] = con
				rec(i + 1)
			}
			delete(s, vars[i])
		}
		rec(0)
	}
	return d, nil
}
