package gen

import (
	"math/rand"
	"testing"

	"disjunct/internal/strat"
)

func TestPositiveConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	for i := 0; i < 100; i++ {
		d := Random(rng, Positive(5+rng.Intn(10), 10+rng.Intn(20)))
		if d.HasNegation() || d.HasIntegrityClauses() {
			t.Fatalf("Positive config produced negation or ICs:\n%s", d.String())
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWithIntegrityProducesICs(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	sawIC := false
	for i := 0; i < 50; i++ {
		d := Random(rng, WithIntegrity(8, 20))
		if d.HasNegation() {
			t.Fatalf("WithIntegrity must stay positive")
		}
		if d.HasIntegrityClauses() {
			sawIC = true
		}
	}
	if !sawIC {
		t.Fatalf("WithIntegrity never produced an integrity clause")
	}
}

func TestNormalProducesNegation(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	sawNeg := false
	for i := 0; i < 50; i++ {
		if Random(rng, Normal(8, 20)).HasNegation() {
			sawNeg = true
			break
		}
	}
	if !sawNeg {
		t.Fatalf("Normal config never produced negation")
	}
}

func TestNormalNoIC(t *testing.T) {
	rng := rand.New(rand.NewSource(224))
	for i := 0; i < 50; i++ {
		if Random(rng, NormalNoIC(8, 20)).HasIntegrityClauses() {
			t.Fatalf("NormalNoIC produced an integrity clause")
		}
	}
}

func TestRandomStratifiedIsStratifiable(t *testing.T) {
	rng := rand.New(rand.NewSource(225))
	for i := 0; i < 200; i++ {
		d := RandomStratified(rng, 3+rng.Intn(8), 5+rng.Intn(15), 1+rng.Intn(4))
		if _, ok := strat.Compute(d); !ok {
			t.Fatalf("RandomStratified output not stratifiable:\n%s", d.String())
		}
		if d.HasIntegrityClauses() {
			t.Fatalf("stratified generator must not emit integrity clauses")
		}
	}
}

func TestGraphGenerators(t *testing.T) {
	c := Cycle(5)
	if c.N != 5 || len(c.Edges) != 5 {
		t.Fatalf("cycle shape wrong: %+v", c)
	}
	rng := rand.New(rand.NewSource(226))
	g := RandomGraph(rng, 10, 1.0)
	if len(g.Edges) != 45 {
		t.Fatalf("complete graph edges = %d, want 45", len(g.Edges))
	}
	g0 := RandomGraph(rng, 10, 0.0)
	if len(g0.Edges) != 0 {
		t.Fatalf("empty graph has edges")
	}
}

func TestColoringDBShape(t *testing.T) {
	d := ColoringDB(Cycle(3), 3)
	st := d.Stats()
	// 3 vertices × (1 fact + 3 at-most-one ICs) + 3 edges × 3 colours ICs.
	if st.Facts != 3 || st.IntegrityClauses != 3*3+3*3 {
		t.Fatalf("coloring shape wrong: %+v", st)
	}
	if st.Atoms != 9 {
		t.Fatalf("coloring atoms = %d", st.Atoms)
	}
}

func TestPigeonholeDBShape(t *testing.T) {
	d := PigeonholeDB(3, 2)
	st := d.Stats()
	if st.Facts != 3 || st.Atoms != 6 {
		t.Fatalf("pigeonhole shape wrong: %+v", st)
	}
	// Unsatisfiable when pigeons > holes: 2 holes × C(3,2) pairs.
	if st.IntegrityClauses != 2*3 {
		t.Fatalf("pigeonhole ICs = %d", st.IntegrityClauses)
	}
}
