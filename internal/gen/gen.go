// Package gen generates the synthetic workloads of the benchmark
// harness and the randomised test suites: random disjunctive databases
// of each syntactic class (positive / with integrity clauses /
// stratified / normal), plus structured families (graph colouring,
// pigeonhole) used by the examples and the hardness scaling benches.
package gen

import (
	"fmt"
	"math/rand"

	"disjunct/internal/db"
	"disjunct/internal/logic"
)

// Config shapes a random database.
type Config struct {
	Atoms       int
	Clauses     int
	MaxHead     int     // maximum disjuncts per head (≥ 1)
	MaxBody     int     // maximum positive body atoms
	NegProb     float64 // probability that a body atom is negated
	FactProb    float64 // probability that a clause is a (disjunctive) fact
	IntegrityPr float64 // probability that a clause is an integrity clause
}

// Positive returns a config for positive DDBs without integrity
// clauses — the Table 1 regime.
func Positive(atoms, clauses int) Config {
	return Config{Atoms: atoms, Clauses: clauses, MaxHead: 3, MaxBody: 2, FactProb: 0.4}
}

// WithIntegrity returns a config for DDDBs with integrity clauses —
// the Table 2 regime without negation.
func WithIntegrity(atoms, clauses int) Config {
	c := Positive(atoms, clauses)
	c.IntegrityPr = 0.2
	return c
}

// Normal returns a config for DNDBs (negation and integrity clauses).
func Normal(atoms, clauses int) Config {
	c := WithIntegrity(atoms, clauses)
	c.NegProb = 0.3
	return c
}

// NormalNoIC returns a config for DNDBs with negation but no
// integrity clauses (the PERF/Table 2 regime for DSM/PDSM hardness
// without denials).
func NormalNoIC(atoms, clauses int) Config {
	c := Positive(atoms, clauses)
	c.NegProb = 0.3
	return c
}

// Random generates a database according to cfg.
func Random(rng *rand.Rand, cfg Config) *db.DB {
	d := db.New()
	atoms := make([]logic.Atom, cfg.Atoms)
	for i := range atoms {
		atoms[i] = d.Voc.Intern(fmt.Sprintf("p%d", i))
	}
	pick := func() logic.Atom { return atoms[rng.Intn(len(atoms))] }
	for i := 0; i < cfg.Clauses; i++ {
		var c db.Clause
		integrity := rng.Float64() < cfg.IntegrityPr
		if !integrity {
			nh := 1 + rng.Intn(maxInt(cfg.MaxHead, 1))
			for j := 0; j < nh; j++ {
				c.Head = append(c.Head, pick())
			}
		}
		if integrity || rng.Float64() >= cfg.FactProb {
			nb := 1 + rng.Intn(maxInt(cfg.MaxBody, 1))
			for j := 0; j < nb; j++ {
				a := pick()
				if rng.Float64() < cfg.NegProb {
					c.NegBody = append(c.NegBody, a)
				} else {
					c.PosBody = append(c.PosBody, a)
				}
			}
		}
		if len(c.Head) == 0 && len(c.PosBody) == 0 && len(c.NegBody) == 0 {
			continue
		}
		d.Add(c)
	}
	return d
}

// RandomStratified generates a stratified database (DSDB): atoms are
// assigned to layers and negation only reaches strictly lower layers,
// heads stay within one layer, positive bodies do not look up.
func RandomStratified(rng *rand.Rand, atoms, clauses, layers int) *db.DB {
	if layers < 1 {
		layers = 1
	}
	d := db.New()
	names := make([]logic.Atom, atoms)
	layer := make([]int, atoms)
	for i := range names {
		names[i] = d.Voc.Intern(fmt.Sprintf("p%d", i))
		layer[i] = rng.Intn(layers)
	}
	pickAt := func(l int) (logic.Atom, bool) {
		var cand []logic.Atom
		for i, a := range names {
			if layer[i] == l {
				cand = append(cand, a)
			}
		}
		if len(cand) == 0 {
			return 0, false
		}
		return cand[rng.Intn(len(cand))], true
	}
	pickBelow := func(l int) (logic.Atom, bool) {
		var cand []logic.Atom
		for i, a := range names {
			if layer[i] < l {
				cand = append(cand, a)
			}
		}
		if len(cand) == 0 {
			return 0, false
		}
		return cand[rng.Intn(len(cand))], true
	}
	pickAtMost := func(l int) (logic.Atom, bool) {
		var cand []logic.Atom
		for i, a := range names {
			if layer[i] <= l {
				cand = append(cand, a)
			}
		}
		if len(cand) == 0 {
			return 0, false
		}
		return cand[rng.Intn(len(cand))], true
	}
	for i := 0; i < clauses; i++ {
		l := rng.Intn(layers)
		var c db.Clause
		nh := 1 + rng.Intn(2)
		for j := 0; j < nh; j++ {
			if a, ok := pickAt(l); ok {
				c.Head = append(c.Head, a)
			}
		}
		if len(c.Head) == 0 {
			continue
		}
		if rng.Float64() >= 0.4 { // not a fact
			nb := 1 + rng.Intn(2)
			for j := 0; j < nb; j++ {
				if rng.Float64() < 0.4 {
					if a, ok := pickBelow(l); ok {
						c.NegBody = append(c.NegBody, a)
						continue
					}
				}
				if a, ok := pickAtMost(l); ok {
					c.PosBody = append(c.PosBody, a)
				}
			}
		}
		d.Add(c)
	}
	return d
}

// Graph is a simple undirected graph for the colouring workloads.
type Graph struct {
	N     int
	Edges [][2]int
}

// RandomGraph generates a G(n, p) graph.
func RandomGraph(rng *rand.Rand, n int, p float64) Graph {
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	return g
}

// Cycle returns the n-cycle.
func Cycle(n int) Graph {
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		g.Edges = append(g.Edges, [2]int{i, (i + 1) % n})
	}
	return g
}

// ColoringDB encodes k-colourability of g as a disjunctive database:
// per vertex a disjunctive fact over its k colour atoms, integrity
// clauses forbidding two colours on one vertex and equal colours on an
// edge. The database has a model under EGCWA (equivalently, is
// k-colourable) iff the classical clause set is satisfiable — the
// NP-complete ∃MODEL regime of Table 2; under DSM the stable models
// are exactly the proper colourings.
func ColoringDB(g Graph, k int) *db.DB {
	d := db.New()
	color := make([][]logic.Atom, g.N)
	for v := 0; v < g.N; v++ {
		color[v] = make([]logic.Atom, k)
		for c := 0; c < k; c++ {
			color[v][c] = d.Voc.Intern(fmt.Sprintf("col_%d_%d", v, c))
		}
		d.AddFact(color[v]...)
		for c1 := 0; c1 < k; c1++ {
			for c2 := c1 + 1; c2 < k; c2++ {
				d.AddRule(nil, []logic.Atom{color[v][c1], color[v][c2]}, nil)
			}
		}
	}
	for _, e := range g.Edges {
		for c := 0; c < k; c++ {
			d.AddRule(nil, []logic.Atom{color[e[0]][c], color[e[1]][c]}, nil)
		}
	}
	return d
}

// PigeonholeDB encodes the (unsatisfiable for pigeons > holes)
// pigeonhole principle as a DDDB with integrity clauses.
func PigeonholeDB(pigeons, holes int) *db.DB {
	d := db.New()
	at := make([][]logic.Atom, pigeons)
	for p := 0; p < pigeons; p++ {
		at[p] = make([]logic.Atom, holes)
		for h := 0; h < holes; h++ {
			at[p][h] = d.Voc.Intern(fmt.Sprintf("in_%d_%d", p, h))
		}
		d.AddFact(at[p]...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				d.AddRule(nil, []logic.Atom{at[p1][h], at[p2][h]}, nil)
			}
		}
	}
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
