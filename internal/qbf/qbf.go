// Package qbf implements 2-QBF — quantified Boolean formulas with one
// quantifier alternation — and two solvers for them:
//
//   - CEGAR: the counterexample-guided abstraction refinement algorithm
//     (two cooperating SAT solvers), the practical Σ₂ᵖ oracle used by
//     the Δ-log membership algorithms;
//   - Expand: naive universal expansion into one SAT call of
//     exponential size (ablation baseline, DESIGN.md §8).
//
// The canonical form is ∃X ∀Y φ(X,Y) ("ExistsForall"); the dual
// ∀X ∃Y φ is decided by negation. 2-QBF validity of ∃∀ is
// Σ₂ᵖ-complete, which is exactly the hardness currency of the paper's
// Π₂ᵖ/Σ₂ᵖ cells: the hardness reductions in package reduction
// translate these instances into inference problems.
package qbf

import (
	"errors"
	"fmt"
	"math/rand"

	"disjunct/internal/budget"
	"disjunct/internal/logic"
	"disjunct/internal/sat"
)

// ErrTooLarge is returned by SolveBrute when the instance exceeds its
// exhaustive-enumeration cap.
var ErrTooLarge = errors.New("qbf: instance too large for brute force")

// Instance is a 2-QBF instance ∃X ∀Y. Matrix, with X = atoms 0..NX-1
// and Y = atoms NX..NX+NY-1 of Voc. The matrix is an arbitrary
// propositional formula over those atoms (the reductions need DNF
// matrices; the CEGAR solver Tseitin-encodes whatever shape it gets).
type Instance struct {
	NX, NY int
	Matrix *logic.Formula
	Voc    *logic.Vocabulary
}

// Validate checks that the matrix only mentions declared variables.
func (q *Instance) Validate() error {
	atoms := q.Matrix.Atoms(nil)
	for a := range atoms {
		if int(a) >= q.NX+q.NY {
			return fmt.Errorf("qbf: matrix mentions atom %d outside X∪Y (nx=%d ny=%d)", a, q.NX, q.NY)
		}
	}
	return nil
}

// XAtom returns the i-th existential atom.
func (q *Instance) XAtom(i int) logic.Atom { return logic.Atom(i) }

// YAtom returns the j-th universal atom.
func (q *Instance) YAtom(j int) logic.Atom { return logic.Atom(q.NX + j) }

// Stats reports CEGAR effort.
type Stats struct {
	Iterations int // refinement rounds
	SATCalls   int
}

// SolveCEGAR decides ∃X ∀Y. Matrix by counterexample-guided
// abstraction refinement:
//
//	abstraction: SAT over X (plus copies of Y per counterexample)
//	proposes a candidate x*;
//	verification: SAT on ¬Matrix[X:=x*] over Y searches for a
//	countermodel y*; if none, x* is a witness — true.
//	Otherwise Matrix[Y:=y*] is added to the abstraction as a
//	refinement and the loop repeats; an unsatisfiable abstraction
//	means false.
//
// If witness is non-nil and the result is true, *witness receives the
// winning X assignment.
func SolveCEGAR(q *Instance, witness *[]bool) (bool, Stats) {
	ok, st, _ := SolveCEGARBudget(q, witness, nil)
	return ok, st
}

// SolveCEGARBudget is SolveCEGAR under a shared query budget: both
// cooperating SAT solvers poll b at their conflict/restart boundaries
// and the refinement loop polls it once per iteration. On
// interruption it returns a non-nil typed cause (budget.ErrCanceled,
// ErrDeadline, ErrConflictBudget, ErrPropagationBudget) and the
// boolean result is meaningless. A nil budget never interrupts.
func SolveCEGARBudget(q *Instance, witness *[]bool, b *budget.B) (bool, Stats, error) {
	var st Stats
	// Abstraction solver: variables are allocated on demand. The first
	// NX solver vars mirror X.
	abs := sat.New(q.NX)
	abs.SetBudget(b)
	absVoc := logic.NewVocabulary()
	for i := 0; i < q.NX; i++ {
		absVoc.Intern(fmt.Sprintf("x%d", i))
	}

	for {
		if err := b.Err(); err != nil {
			return false, st, err
		}
		st.Iterations++
		st.SATCalls++
		switch abs.Solve() {
		case sat.Unsat:
			return false, st, nil
		case sat.Unknown:
			return false, st, stopCause(abs)
		}
		xs := make([]bool, q.NX)
		for i := range xs {
			xs[i] = abs.Model(i)
		}
		// Verification: ¬Matrix with X fixed to xs, over Y.
		verVoc := q.Voc.Clone()
		cnf := logic.TseitinNeg(q.Matrix, verVoc)
		ver := sat.New(verVoc.Size())
		ver.SetBudget(b)
		okAdd := true
		for _, cl := range cnf {
			lits := make([]sat.Lit, len(cl))
			for k, l := range cl {
				lits[k] = sat.MkLit(int(l.Atom()), l.IsPos())
			}
			if !ver.AddClause(lits...) {
				okAdd = false
				break
			}
		}
		for i := 0; i < q.NX; i++ {
			if !okAdd {
				break
			}
			okAdd = ver.AddClause(sat.MkLit(i, xs[i]))
		}
		st.SATCalls++
		verSt := sat.Unsat
		if okAdd {
			verSt = ver.Solve()
			if verSt == sat.Unknown {
				return false, st, stopCause(ver)
			}
		}
		if verSt != sat.Sat {
			// No countermodel: xs is a winning move.
			if witness != nil {
				*witness = xs
			}
			return true, st, nil
		}
		ys := make([]bool, q.NY)
		for j := 0; j < q.NY; j++ {
			ys[j] = ver.Model(int(q.YAtom(j)))
		}
		// Refinement: add Matrix[Y:=ys] over fresh Tseitin atoms to the
		// abstraction.
		ref := substituteY(q, ys)
		refCNF := logic.Tseitin(ref, absVoc)
		okRef := true
		for _, cl := range refCNF {
			lits := make([]sat.Lit, len(cl))
			for k, l := range cl {
				lits[k] = sat.MkLit(int(l.Atom()), l.IsPos())
			}
			if !abs.AddClause(lits...) {
				okRef = false
				break
			}
		}
		if !okRef {
			return false, st, nil
		}
	}
}

// stopCause extracts the typed interruption cause from a solver that
// returned Unknown, defaulting to ErrCanceled if none was recorded.
func stopCause(s *sat.Solver) error {
	if err := s.StopCause(); err != nil {
		return err
	}
	return budget.ErrCanceled
}

// substituteY fixes the universal variables of the matrix to ys,
// leaving a formula over X only.
func substituteY(q *Instance, ys []bool) *logic.Formula {
	var sub func(f *logic.Formula) *logic.Formula
	sub = func(f *logic.Formula) *logic.Formula {
		switch f.Op {
		case logic.OpAtom:
			if int(f.A) >= q.NX {
				if ys[int(f.A)-q.NX] {
					return logic.TrueF()
				}
				return logic.FalseF()
			}
			return f
		case logic.OpTrue, logic.OpFalse:
			return f
		case logic.OpNot:
			return logic.Not(sub(f.Args[0]))
		case logic.OpAnd:
			args := make([]*logic.Formula, len(f.Args))
			for i, g := range f.Args {
				args[i] = sub(g)
			}
			return logic.And(args...)
		case logic.OpOr:
			args := make([]*logic.Formula, len(f.Args))
			for i, g := range f.Args {
				args[i] = sub(g)
			}
			return logic.Or(args...)
		case logic.OpImpl:
			return logic.Implies(sub(f.Args[0]), sub(f.Args[1]))
		case logic.OpEquiv:
			return logic.Equiv(sub(f.Args[0]), sub(f.Args[1]))
		}
		panic("qbf: unknown op")
	}
	return sub(q.Matrix)
}

// SolveExpand decides ∃X ∀Y. Matrix by full universal expansion:
// one SAT query on ⋀_{y ∈ 2^Y} Matrix[Y:=y]. Exponential in NY; the
// ablation baseline for CEGAR.
func SolveExpand(q *Instance) bool {
	voc := logic.NewVocabulary()
	for i := 0; i < q.NX; i++ {
		voc.Intern(fmt.Sprintf("x%d", i))
	}
	var all logic.CNF
	ys := make([]bool, q.NY)
	var rec func(j int) bool
	rec = func(j int) bool {
		if j == q.NY {
			f := substituteY(q, ys)
			if f.Op == logic.OpFalse {
				return false
			}
			all = append(all, logic.Tseitin(f, voc)...)
			return true
		}
		for _, v := range []bool{false, true} {
			ys[j] = v
			if !rec(j + 1) {
				return false
			}
		}
		return true
	}
	if !rec(0) {
		return false
	}
	s := sat.New(voc.Size())
	for _, cl := range all {
		lits := make([]sat.Lit, len(cl))
		for k, l := range cl {
			lits[k] = sat.MkLit(int(l.Atom()), l.IsPos())
		}
		if !s.AddClause(lits...) {
			return false
		}
	}
	return s.Solve() == sat.Sat
}

// SolveBrute decides the instance by double enumeration (ground truth
// for tests; NX+NY ≤ ~20). Above 24 variables it returns ErrTooLarge.
func SolveBrute(q *Instance) (bool, error) {
	n := q.NX + q.NY
	if n > 24 {
		return false, fmt.Errorf("%w: SolveBrute limited to 24 variables, got %d", ErrTooLarge, n)
	}
	m := logic.NewInterp(q.Voc.Size())
	for xb := 0; xb < 1<<uint(q.NX); xb++ {
		for i := 0; i < q.NX; i++ {
			m.True.SetTo(i, xb&(1<<uint(i)) != 0)
		}
		holds := true
		for yb := 0; yb < 1<<uint(q.NY); yb++ {
			for j := 0; j < q.NY; j++ {
				m.True.SetTo(q.NX+j, yb&(1<<uint(j)) != 0)
			}
			if !q.Matrix.Eval(m) {
				holds = false
				break
			}
		}
		if holds {
			return true, nil
		}
	}
	return false, nil
}

// ForallExists decides ∀X ∃Y. Matrix (a Π₂ᵖ question) via the dual:
// it is false iff ∃X ∀Y. ¬Matrix is true.
func ForallExists(q *Instance) (bool, Stats) {
	t, st, _ := ForallExistsBudget(q, nil)
	return t, st
}

// ForallExistsBudget is ForallExists under a shared query budget; see
// SolveCEGARBudget for the interruption contract.
func ForallExistsBudget(q *Instance, b *budget.B) (bool, Stats, error) {
	dual := &Instance{NX: q.NX, NY: q.NY, Matrix: logic.Not(q.Matrix), Voc: q.Voc}
	t, st, err := SolveCEGARBudget(dual, nil, b)
	return !t, st, err
}

// Random3DNF generates a random ∃X∀Y instance whose matrix is a
// k-term DNF over X∪Y — the natural hard family for ∃∀ (validity of a
// DNF under all Y is coNP-ish per candidate; the alternation makes it
// Σ₂ᵖ). Terms have exactly 3 literals.
func Random3DNF(rng *rand.Rand, nx, ny, terms int) *Instance {
	voc := logic.NewVocabulary()
	for i := 0; i < nx; i++ {
		voc.Intern(fmt.Sprintf("x%d", i))
	}
	for j := 0; j < ny; j++ {
		voc.Intern(fmt.Sprintf("y%d", j))
	}
	n := nx + ny
	dis := make([]*logic.Formula, terms)
	for t := 0; t < terms; t++ {
		con := make([]*logic.Formula, 3)
		for k := 0; k < 3; k++ {
			a := logic.Atom(rng.Intn(n))
			if rng.Intn(2) == 0 {
				con[k] = logic.AtomF(a)
			} else {
				con[k] = logic.Not(logic.AtomF(a))
			}
		}
		dis[t] = logic.And(con...)
	}
	return &Instance{NX: nx, NY: ny, Matrix: logic.Or(dis...), Voc: voc}
}

// RandomCNFMatrix generates an ∃X∀Y instance with a random 3-CNF
// matrix (mostly false instances; complements Random3DNF).
func RandomCNFMatrix(rng *rand.Rand, nx, ny, clauses int) *Instance {
	voc := logic.NewVocabulary()
	for i := 0; i < nx; i++ {
		voc.Intern(fmt.Sprintf("x%d", i))
	}
	for j := 0; j < ny; j++ {
		voc.Intern(fmt.Sprintf("y%d", j))
	}
	n := nx + ny
	cls := make([]*logic.Formula, clauses)
	for t := 0; t < clauses; t++ {
		lits := make([]*logic.Formula, 3)
		for k := 0; k < 3; k++ {
			a := logic.Atom(rng.Intn(n))
			if rng.Intn(2) == 0 {
				lits[k] = logic.AtomF(a)
			} else {
				lits[k] = logic.Not(logic.AtomF(a))
			}
		}
		cls[t] = logic.Or(lits...)
	}
	return &Instance{NX: nx, NY: ny, Matrix: logic.And(cls...), Voc: voc}
}
