package qbf

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"disjunct/internal/budget"
)

func TestSolveBruteTooLarge(t *testing.T) {
	q := &Instance{NX: 20, NY: 20}
	_, err := SolveBrute(q)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("SolveBrute oversized: %v, want ErrTooLarge", err)
	}
}

func TestCEGARBudgetTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tripped := false
	for iter := 0; iter < 50 && !tripped; iter++ {
		q := Random3DNF(rng, 4, 4, 8)
		b := budget.New(context.Background(), budget.Limits{Conflicts: 1})
		_, _, err := SolveCEGARBudget(q, nil, b)
		if err != nil {
			if !budget.Interrupted(err) {
				t.Fatalf("non-typed interruption: %v", err)
			}
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("conflict budget of 1 never tripped across 50 random instances")
	}
}

func TestCEGARBudgetCanceledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := Random3DNF(rng, 3, 3, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := budget.New(ctx, budget.Limits{})
	_, _, err := SolveCEGARBudget(q, nil, b)
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

// TestCEGARBudgetedCompleteMatchesBrute: with a generous budget the
// budgeted path completes and must agree with the brute-force
// reference (and with the unbudgeted CEGAR path).
func TestCEGARBudgetedCompleteMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		q := Random3DNF(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(6))
		want, err := SolveBrute(q)
		if err != nil {
			t.Fatalf("brute: %v", err)
		}
		b := budget.New(context.Background(), budget.Limits{Conflicts: 1 << 30})
		got, _, err := SolveCEGARBudget(q, nil, b)
		if err != nil {
			t.Fatalf("iter %d: generous budget tripped: %v", iter, err)
		}
		if got != want {
			t.Fatalf("iter %d: budgeted CEGAR %v, brute %v", iter, got, want)
		}
		plain, _ := SolveCEGAR(q, nil)
		if got != plain {
			t.Fatalf("iter %d: budgeted %v, unbudgeted %v", iter, got, plain)
		}
	}
}

func TestForallExistsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 50; iter++ {
		q := Random3DNF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(5))
		want, _ := ForallExists(q)
		got, _, err := ForallExistsBudget(q, budget.New(context.Background(), budget.Limits{Conflicts: 1 << 30}))
		if err != nil {
			t.Fatalf("iter %d: generous budget tripped: %v", iter, err)
		}
		if got != want {
			t.Fatalf("iter %d: budgeted %v, unbudgeted %v", iter, got, want)
		}
	}
}
