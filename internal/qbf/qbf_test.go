package qbf

import (
	"math/rand"
	"testing"

	"disjunct/internal/logic"
)

func TestCEGARAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	trues, falses := 0, 0
	for iter := 0; iter < 400; iter++ {
		var q *Instance
		if iter%2 == 0 {
			q = Random3DNF(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(6))
		} else {
			q = RandomCNFMatrix(rng, 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(6))
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
		want, _ := SolveBrute(q)
		got, st := SolveCEGAR(q, nil)
		if got != want {
			t.Fatalf("iter %d: CEGAR=%v brute=%v (iters=%d)", iter, got, want, st.Iterations)
		}
		if want {
			trues++
		} else {
			falses++
		}
	}
	if trues == 0 || falses == 0 {
		t.Fatalf("degenerate corpus: true=%d false=%d", trues, falses)
	}
}

func TestCEGARWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for iter := 0; iter < 200; iter++ {
		q := Random3DNF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(5))
		var witness []bool
		ok, _ := SolveCEGAR(q, &witness)
		if !ok {
			continue
		}
		// Verify the witness: for all Y the matrix must hold.
		m := logic.NewInterp(q.Voc.Size())
		for i, v := range witness {
			m.True.SetTo(i, v)
		}
		for yb := 0; yb < 1<<uint(q.NY); yb++ {
			for j := 0; j < q.NY; j++ {
				m.True.SetTo(q.NX+j, yb&(1<<uint(j)) != 0)
			}
			if !q.Matrix.Eval(m) {
				t.Fatalf("iter %d: witness fails at Y=%b", iter, yb)
			}
		}
	}
}

func TestExpandAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for iter := 0; iter < 200; iter++ {
		q := Random3DNF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(5))
		want, _ := SolveBrute(q)
		if got := SolveExpand(q); got != want {
			t.Fatalf("iter %d: Expand=%v brute=%v", iter, got, want)
		}
	}
}

func TestForallExists(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	for iter := 0; iter < 200; iter++ {
		q := Random3DNF(rng, 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(5))
		// Brute-force ∀X ∃Y.
		want := true
		m := logic.NewInterp(q.Voc.Size())
		for xb := 0; xb < 1<<uint(q.NX) && want; xb++ {
			for i := 0; i < q.NX; i++ {
				m.True.SetTo(i, xb&(1<<uint(i)) != 0)
			}
			holds := false
			for yb := 0; yb < 1<<uint(q.NY); yb++ {
				for j := 0; j < q.NY; j++ {
					m.True.SetTo(q.NX+j, yb&(1<<uint(j)) != 0)
				}
				if q.Matrix.Eval(m) {
					holds = true
					break
				}
			}
			if !holds {
				want = false
			}
		}
		got, _ := ForallExists(q)
		if got != want {
			t.Fatalf("iter %d: ForallExists=%v want %v", iter, got, want)
		}
	}
}

func TestValidateRejectsStrayAtoms(t *testing.T) {
	voc := logic.NewVocabulary()
	voc.Intern("x0")
	voc.Intern("y0")
	stray := voc.Intern("z")
	q := &Instance{NX: 1, NY: 1, Matrix: logic.AtomF(stray), Voc: voc}
	if err := q.Validate(); err == nil {
		t.Fatalf("stray atom must be rejected")
	}
}

func TestTrivialInstances(t *testing.T) {
	voc := logic.NewVocabulary()
	x := voc.Intern("x0")
	voc.Intern("y0")
	// ∃x ∀y. x — true (pick x).
	q := &Instance{NX: 1, NY: 1, Matrix: logic.AtomF(x), Voc: voc}
	if got, _ := SolveCEGAR(q, nil); !got {
		t.Fatalf("∃x∀y.x should be true")
	}
	// ∃x ∀y. y — false.
	y := logic.Atom(1)
	q2 := &Instance{NX: 1, NY: 1, Matrix: logic.AtomF(y), Voc: voc}
	if got, _ := SolveCEGAR(q2, nil); got {
		t.Fatalf("∃x∀y.y should be false")
	}
	// ∃x ∀y. (x ∨ ¬x) — true.
	q3 := &Instance{NX: 1, NY: 1, Matrix: logic.Or(logic.AtomF(x), logic.Not(logic.AtomF(x))), Voc: voc}
	if got, _ := SolveCEGAR(q3, nil); !got {
		t.Fatalf("tautology should be true")
	}
}
