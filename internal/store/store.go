// Package store is the crash-safe, disk-backed tier beneath the
// in-memory caches: it persists compiled-database artifacts (the
// session layer's parse/ground/canonical-key work), the CNF interner's
// canonical verdict entries, and completed warm-session verdict memos,
// so a restarted process pre-warms from disk instead of recompiling
// and re-solving — every deploy becomes an artifact load rather than a
// cold-start stampede.
//
// # Format and atomicity
//
// The store is one append-only log file (store.log) of length-prefixed,
// CRC-checksummed records behind a fixed magic header:
//
//	header:  "DDBSTOR1\n"
//	record:  [type byte][uvarint payload length][crc32(payload) LE][payload]
//
// Appends are write-behind: Put* enqueues, a single flusher goroutine
// batches queued records into one write+fsync. A crash can therefore
// lose recently queued records (they are re-derived on demand — the
// caches the store backs are pure memoisation) but can never corrupt
// the readable prefix: Open scans the log record by record and
// truncates at the first invalid one (short length, bad CRC, malformed
// payload), so a torn tail from a mid-write crash is dropped, never
// served. Within one record, the CRC binds the payload; a record that
// round-trips the checksum but fails structural decoding is treated as
// the torn tail too.
//
// When the log exceeds its byte budget the flusher compacts: the live
// in-memory index is rewritten to a temp file in the same directory and
// atomically renamed over the log (temp-file + rename, fsynced), so a
// crash mid-compaction leaves either the old log or the new one,
// never a blend.
//
// # Keys
//
// Artifacts are keyed by exact database text; the payload carries the
// canonical isomorphism-class key (the renaming-invariant fingerprint
// of PR 2/5) so a reload can skip the expensive canonical labeling.
// Verdict memos are keyed by the session key (the exact CNF
// fingerprint Raw, the semantics name, and the memo key): equal Raw
// means the indexed CNF is byte-identical, so verdicts transfer
// between processes verbatim. Interner entries are keyed by the
// canonical class key, exactly as in the in-memory LRU.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

const (
	logName  = "store.log"
	tmpName  = "store.log.tmp"
	magic    = "DDBSTOR1\n"
	maxValue = 1 << 26 // sanity bound on one record's payload (64 MiB)
)

// Record type tags. New types append; unknown tags invalidate the
// record (they are indistinguishable from corruption to an old reader,
// and dropping the tail re-derives at worst).
const (
	recArtifact byte = 1
	recVerdict  byte = 2
	recIntern   byte = 3
	recEstimate byte = 4
)

// Artifact is one persisted compiled-database artifact: the exact
// database text plus the canonical isomorphism-class key, which is the
// expensive part of compilation (the nauty-style labeling). Everything
// else in a session.Compiled (grounding, fragment classification,
// fixpoint models) is re-derived polynomially from Text on load.
type Artifact struct {
	Text string // exact database text (the compile-cache key)
	Key  string // canonical class key (skips re-canonicalization)
	Frag uint8  // fragment classification recorded for cross-checking
}

// Verdict is one persisted completed warm-session verdict.
type Verdict struct {
	Raw     string // exact CNF fingerprint of the database (session key)
	Sem     string // semantics name
	MemoKey string // kind-qualified query text (the memo map key)
	Holds   bool
}

// Intern is one persisted CNF-interner entry: the canonical class key,
// the SAT verdict, the exact fingerprint of the producing query, and
// the witness model (nil for UNSAT) encoded as the universe size
// followed by delta-encoded set-bit indices.
type Intern struct {
	Key   string
	Sat   bool
	Raw   string
	Model []byte // nil when no witness; opaque to the store
}

// Estimate is one persisted cost-model entry of the query planner: the
// commutative observation sums for a (database fingerprint, semantics)
// pair. Sums — not averages — are stored so merges from cluster
// handoff slices are order-independent; the planner derives the
// moving-average estimate as sum/count.
type Estimate struct {
	Raw       string // exact CNF fingerprint (the session/routing key)
	Sem       string // semantics name
	Count     int64  // completed observations folded in
	SumNP     int64  // total NP-oracle calls observed
	SumConfl  int64  // total SAT conflicts observed
	SumMicros int64  // total solve wall-clock, microseconds
}

// Config tunes Open.
type Config struct {
	// Dir is the store directory (created if absent). Required.
	Dir string
	// MaxBytes is the log-size budget; when an append pushes the log
	// past it, the flusher compacts to the live set. 0 = 256 MiB.
	MaxBytes int64
}

// Recovery describes what Open found on disk.
type Recovery struct {
	Artifacts int   // artifact records loaded
	Verdicts  int   // verdict records loaded
	Interns   int   // interner records loaded
	Estimates int   // planner cost-estimate records loaded
	TornTail  bool  // the log ended in an invalid record
	Dropped   int64 // bytes truncated from the torn tail
}

// Stats is a point-in-time snapshot of the store.
type Stats struct {
	Artifacts      int64 // live artifact entries
	Verdicts       int64 // live verdict entries
	Interns        int64 // live interner entries
	Estimates      int64 // live planner cost-estimate entries
	QueuedWrites   int64 // records enqueued since open
	FlushedWrites  int64 // records written+synced
	Flushes        int64 // flush batches
	Compactions    int64
	WriteErrors    int64
	SizeBytes      int64 // current log size
	TornTail       bool  // recovery found (and dropped) a torn tail
	DroppedBytes   int64 // bytes dropped by recovery
	FlusherRunning bool  // background flusher goroutine alive
}

// Store is the persistent tier. All methods are goroutine-safe; Put*
// never blocks on disk (write-behind). Close flushes and stops the
// flusher; a closed store drops further Puts silently (the drain
// contract: late write-behinds from in-flight requests are lossy by
// design, exactly like a crash immediately after them).
type Store struct {
	cfg Config

	mu        sync.Mutex
	f         *os.File
	size      int64
	artifacts map[string]Artifact
	verdicts  map[string]map[string]bool // raw\x00sem → memoKey → holds
	interns   map[string]Intern
	estimates map[string]Estimate // raw\x00sem → latest sums
	pending   []pendingRec
	closed    bool

	wake    chan struct{}
	done    chan struct{}
	flushMu sync.Mutex // serializes explicit Flush against the flusher

	recovery Recovery

	queued      int64
	flushed     int64
	flushes     int64
	compactions int64
	writeErrs   int64
	running     bool
}

type pendingRec struct {
	typ     byte
	payload []byte
}

// Open creates or recovers the store in cfg.Dir, loading every valid
// record into memory and truncating any torn tail, then starts the
// write-behind flusher. The returned Recovery reports what was loaded
// and dropped.
func Open(cfg Config) (*Store, Recovery, error) {
	if cfg.Dir == "" {
		return nil, Recovery{}, errors.New("store: Config.Dir required")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("store: mkdir: %w", err)
	}
	s := &Store{
		cfg:       cfg,
		artifacts: map[string]Artifact{},
		verdicts:  map[string]map[string]bool{},
		interns:   map[string]Intern{},
		estimates: map[string]Estimate{},
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	// A temp file left by a crash mid-compaction is garbage: the rename
	// never happened, so the old log is authoritative.
	os.Remove(filepath.Join(cfg.Dir, tmpName))
	if err := s.recover(); err != nil {
		return nil, s.recovery, err
	}
	s.running = true
	go s.flusher()
	return s, s.recovery, nil
}

// Path returns the log file path (diagnostics, tests).
func (s *Store) Path() string { return filepath.Join(s.cfg.Dir, logName) }

// recover loads the log, truncating at the first invalid record.
func (s *Store) recover() error {
	path := s.Path()
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: read log: %w", err)
	}
	valid := int64(0)
	if len(data) >= len(magic) && string(data[:len(magic)]) == magic {
		valid = int64(len(magic))
		off := len(magic)
		for off < len(data) {
			n, typ, payload := parseRecord(data[off:])
			if n <= 0 {
				break
			}
			if !s.apply(typ, payload) {
				break
			}
			off += n
			valid = int64(off)
		}
		if int64(len(data)) > valid {
			s.recovery.TornTail = true
			s.recovery.Dropped = int64(len(data)) - valid
		}
	} else if len(data) > 0 {
		// Header itself is damaged (or a foreign file): the whole
		// content is the torn tail. Start fresh rather than guessing.
		s.recovery.TornTail = true
		s.recovery.Dropped = int64(len(data))
		valid = 0
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: open log: %w", err)
	}
	if valid == 0 {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate: %w", err)
		}
		if _, err := f.WriteAt([]byte(magic), 0); err != nil {
			f.Close()
			return fmt.Errorf("store: write header: %w", err)
		}
		valid = int64(len(magic))
	} else if err := f.Truncate(valid); err != nil {
		f.Close()
		return fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: seek: %w", err)
	}
	if s.recovery.TornTail {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: sync after truncate: %w", err)
		}
	}
	s.f, s.size = f, valid
	s.recovery.Artifacts = len(s.artifacts)
	s.recovery.Interns = len(s.interns)
	s.recovery.Estimates = len(s.estimates)
	for _, m := range s.verdicts {
		s.recovery.Verdicts += len(m)
	}
	return nil
}

// parseRecord decodes one record from b. It returns the record's total
// byte length (≤ 0 when b does not start with a fully valid record),
// its type, and its checksum-verified payload.
func parseRecord(b []byte) (int, byte, []byte) {
	if len(b) < 1 {
		return 0, 0, nil
	}
	typ := b[0]
	if typ != recArtifact && typ != recVerdict && typ != recIntern && typ != recEstimate {
		return 0, 0, nil
	}
	plen, n := binary.Uvarint(b[1:])
	if n <= 0 || plen > maxValue {
		return 0, 0, nil
	}
	off := 1 + n
	if len(b) < off+4+int(plen) {
		return 0, 0, nil
	}
	want := binary.LittleEndian.Uint32(b[off:])
	payload := b[off+4 : off+4+int(plen)]
	if crc32.ChecksumIEEE(payload) != want {
		return 0, 0, nil
	}
	return off + 4 + int(plen), typ, payload
}

// apply decodes a checksum-valid payload into the in-memory index; a
// structurally malformed payload returns false and ends recovery at
// the previous record.
func (s *Store) apply(typ byte, payload []byte) bool {
	d := decoder{b: payload}
	switch typ {
	case recArtifact:
		text, key := d.str(), d.str()
		frag := d.byte()
		if d.bad || !d.done() {
			return false
		}
		s.artifacts[text] = Artifact{Text: text, Key: key, Frag: frag}
	case recVerdict:
		raw, sem, memoKey := d.str(), d.str(), d.str()
		holds := d.byte()
		if d.bad || !d.done() || holds > 1 {
			return false
		}
		vk := raw + "\x00" + sem
		m := s.verdicts[vk]
		if m == nil {
			m = map[string]bool{}
			s.verdicts[vk] = m
		}
		m[memoKey] = holds == 1
	case recIntern:
		key := d.str()
		sat := d.byte()
		raw := d.str()
		model := d.bytes()
		if d.bad || !d.done() || sat > 1 {
			return false
		}
		s.interns[key] = Intern{Key: key, Sat: sat == 1, Raw: raw, Model: model}
	case recEstimate:
		raw, sem := d.str(), d.str()
		count, np, confl, micros := d.u64(), d.u64(), d.u64(), d.u64()
		if d.bad || !d.done() {
			return false
		}
		s.estimates[raw+"\x00"+sem] = Estimate{
			Raw: raw, Sem: sem,
			Count: int64(count), SumNP: int64(np), SumConfl: int64(confl), SumMicros: int64(micros),
		}
	default:
		return false
	}
	return true
}

// ---- reads (served from the in-memory index) ----

// Artifact returns the persisted artifact for a database text.
func (s *Store) Artifact(text string) (Artifact, bool) {
	s.mu.Lock()
	a, ok := s.artifacts[text]
	s.mu.Unlock()
	return a, ok
}

// Artifacts snapshots every live artifact (prewarm iteration order is
// unspecified).
func (s *Store) Artifacts() []Artifact {
	s.mu.Lock()
	out := make([]Artifact, 0, len(s.artifacts))
	for _, a := range s.artifacts {
		out = append(out, a)
	}
	s.mu.Unlock()
	return out
}

// Verdicts returns a copy of the persisted memo for one (database
// fingerprint, semantics) session key; nil when none.
func (s *Store) Verdicts(raw, sem string) map[string]bool {
	s.mu.Lock()
	m := s.verdicts[raw+"\x00"+sem]
	if m == nil {
		s.mu.Unlock()
		return nil
	}
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	s.mu.Unlock()
	return out
}

// AllVerdicts snapshots every persisted verdict across all session
// keys — the export surface for cluster drain handoff, where a
// departing worker ships its whole verdict corpus to ring successors.
func (s *Store) AllVerdicts() []Verdict {
	s.mu.Lock()
	n := 0
	for _, m := range s.verdicts {
		n += len(m)
	}
	out := make([]Verdict, 0, n)
	for vk, m := range s.verdicts {
		raw, sem := splitKey(vk)
		for memoKey, holds := range m {
			out = append(out, Verdict{Raw: raw, Sem: sem, MemoKey: memoKey, Holds: holds})
		}
	}
	s.mu.Unlock()
	return out
}

// EstimateFor returns the persisted cost-model sums for one
// (fingerprint, semantics) pair.
func (s *Store) EstimateFor(raw, sem string) (Estimate, bool) {
	s.mu.Lock()
	e, ok := s.estimates[raw+"\x00"+sem]
	s.mu.Unlock()
	return e, ok
}

// Estimates snapshots every live cost-model entry — the planner's
// startup seed and the cluster handoff export surface.
func (s *Store) Estimates() []Estimate {
	s.mu.Lock()
	out := make([]Estimate, 0, len(s.estimates))
	for _, e := range s.estimates {
		out = append(out, e)
	}
	s.mu.Unlock()
	return out
}

// Interns snapshots every live interner entry.
func (s *Store) Interns() []Intern {
	s.mu.Lock()
	out := make([]Intern, 0, len(s.interns))
	for _, e := range s.interns {
		out = append(out, e)
	}
	s.mu.Unlock()
	return out
}

// ---- writes (write-behind) ----

// PutArtifact enqueues an artifact; an identical live entry is skipped
// so hot-path repeats don't grow the log.
func (s *Store) PutArtifact(a Artifact) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if cur, ok := s.artifacts[a.Text]; ok && cur == a {
		s.mu.Unlock()
		return
	}
	s.artifacts[a.Text] = a
	var e encoder
	e.str(a.Text)
	e.str(a.Key)
	e.byte(a.Frag)
	s.enqueue(recArtifact, e.b)
	s.mu.Unlock()
}

// PutVerdict enqueues a completed verdict memo entry.
func (s *Store) PutVerdict(v Verdict) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	vk := v.Raw + "\x00" + v.Sem
	m := s.verdicts[vk]
	if got, ok := m[v.MemoKey]; ok && got == v.Holds {
		s.mu.Unlock()
		return
	}
	if m == nil {
		m = map[string]bool{}
		s.verdicts[vk] = m
	}
	m[v.MemoKey] = v.Holds
	var e encoder
	e.str(v.Raw)
	e.str(v.Sem)
	e.str(v.MemoKey)
	e.bool(v.Holds)
	s.enqueue(recVerdict, e.b)
	s.mu.Unlock()
}

// PutIntern enqueues an interner entry.
func (s *Store) PutIntern(in Intern) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if cur, ok := s.interns[in.Key]; ok && cur.Sat == in.Sat && cur.Raw == in.Raw {
		s.mu.Unlock()
		return
	}
	s.interns[in.Key] = in
	var e encoder
	e.str(in.Key)
	e.bool(in.Sat)
	e.str(in.Raw)
	e.bytes(in.Model)
	s.enqueue(recIntern, e.b)
	s.mu.Unlock()
}

// PutEstimate enqueues (replacing) a planner cost-model entry. The
// latest sums win — the estimator folds observations in memory and
// periodically snapshots, so the log carries monotone progress, not an
// append per query.
func (s *Store) PutEstimate(e Estimate) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if e.Count <= 0 {
		s.mu.Unlock()
		return
	}
	k := e.Raw + "\x00" + e.Sem
	if cur, ok := s.estimates[k]; ok && cur == e {
		s.mu.Unlock()
		return
	}
	s.estimates[k] = e
	var enc encoder
	enc.str(e.Raw)
	enc.str(e.Sem)
	enc.u64(uint64(e.Count))
	enc.u64(uint64(e.SumNP))
	enc.u64(uint64(e.SumConfl))
	enc.u64(uint64(e.SumMicros))
	s.enqueue(recEstimate, enc.b)
	s.mu.Unlock()
}

// enqueue (mu held) queues one record and wakes the flusher.
func (s *Store) enqueue(typ byte, payload []byte) {
	s.pending = append(s.pending, pendingRec{typ: typ, payload: payload})
	s.queued++
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// ---- flusher ----

func (s *Store) flusher() {
	defer close(s.done)
	for range s.wake {
		if s.flushOnce() {
			return // closed: Close performs the final flush itself
		}
	}
}

// flushOnce drains the pending queue to disk; reports whether the
// store was closed (ending the flusher).
func (s *Store) flushOnce() bool {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return true
	}
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()
	if len(batch) > 0 {
		s.writeBatch(batch)
	}
	s.maybeCompact()
	return false
}

// writeBatch appends and fsyncs one batch.
func (s *Store) writeBatch(batch []pendingRec) {
	var buf []byte
	for _, r := range batch {
		buf = append(buf, r.typ)
		buf = binary.AppendUvarint(buf, uint64(len(r.payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(r.payload))
		buf = append(buf, r.payload...)
	}
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	if _, err := f.Write(buf); err != nil {
		s.mu.Lock()
		s.writeErrs++
		s.mu.Unlock()
		return
	}
	if err := f.Sync(); err != nil {
		s.mu.Lock()
		s.writeErrs++
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.size += int64(len(buf))
	s.flushed += int64(len(batch))
	s.flushes++
	s.mu.Unlock()
}

// maybeCompact rewrites the log to the live set when over budget,
// using temp-file + fsync + atomic rename.
func (s *Store) maybeCompact() {
	s.mu.Lock()
	if s.size <= s.cfg.MaxBytes {
		s.mu.Unlock()
		return
	}
	// Snapshot the live set under the lock; encode and write it out
	// without blocking writers (their appends land after the rename and
	// are re-applied by the post-compaction append path — but since the
	// log is append-only and the file handle swaps atomically below, we
	// simply hold the lock; compaction is rare and the set is bounded
	// by MaxBytes).
	buf := []byte(magic)
	appendRec := func(typ byte, payload []byte) {
		buf = append(buf, typ)
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
		buf = append(buf, payload...)
	}
	for _, a := range s.artifacts {
		var e encoder
		e.str(a.Text)
		e.str(a.Key)
		e.byte(a.Frag)
		appendRec(recArtifact, e.b)
	}
	for vk, m := range s.verdicts {
		raw, sem := splitKey(vk)
		for memoKey, holds := range m {
			var e encoder
			e.str(raw)
			e.str(sem)
			e.str(memoKey)
			e.bool(holds)
			appendRec(recVerdict, e.b)
		}
	}
	for _, in := range s.interns {
		var e encoder
		e.str(in.Key)
		e.bool(in.Sat)
		e.str(in.Raw)
		e.bytes(in.Model)
		appendRec(recIntern, e.b)
	}
	for _, est := range s.estimates {
		var e encoder
		e.str(est.Raw)
		e.str(est.Sem)
		e.u64(uint64(est.Count))
		e.u64(uint64(est.SumNP))
		e.u64(uint64(est.SumConfl))
		e.u64(uint64(est.SumMicros))
		appendRec(recEstimate, e.b)
	}

	tmp := filepath.Join(s.cfg.Dir, tmpName)
	fail := func() {
		s.writeErrs++
		os.Remove(tmp)
		s.mu.Unlock()
	}
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		fail()
		return
	}
	if _, err := tf.Write(buf); err != nil {
		tf.Close()
		fail()
		return
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		fail()
		return
	}
	if err := tf.Close(); err != nil {
		fail()
		return
	}
	if err := os.Rename(tmp, s.Path()); err != nil {
		fail()
		return
	}
	nf, err := os.OpenFile(s.Path(), os.O_RDWR, 0o644)
	if err != nil {
		s.writeErrs++
		s.mu.Unlock()
		return
	}
	if _, err := nf.Seek(int64(len(buf)), 0); err != nil {
		nf.Close()
		s.writeErrs++
		s.mu.Unlock()
		return
	}
	s.f.Close()
	s.f, s.size = nf, int64(len(buf))
	s.compactions++
	s.mu.Unlock()
}

// Flush synchronously drains every queued record to disk.
func (s *Store) Flush() {
	s.flushOnce()
}

// Close flushes pending records, stops the flusher goroutine (waiting
// for it to exit), and closes the log. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	batch := s.pending
	s.pending = nil
	s.closed = true
	s.mu.Unlock()

	// Wake the flusher so it observes closed and exits, then wait.
	select {
	case s.wake <- struct{}{}:
	default:
	}
	<-s.done

	s.flushMu.Lock()
	if len(batch) > 0 {
		s.writeBatch(batch)
	}
	s.flushMu.Unlock()

	s.mu.Lock()
	s.running = false
	err := s.f.Close()
	s.mu.Unlock()
	return err
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	verdicts := int64(0)
	for _, m := range s.verdicts {
		verdicts += int64(len(m))
	}
	st := Stats{
		Artifacts:      int64(len(s.artifacts)),
		Verdicts:       verdicts,
		Interns:        int64(len(s.interns)),
		Estimates:      int64(len(s.estimates)),
		QueuedWrites:   s.queued,
		FlushedWrites:  s.flushed,
		Flushes:        s.flushes,
		Compactions:    s.compactions,
		WriteErrors:    s.writeErrs,
		SizeBytes:      s.size,
		TornTail:       s.recovery.TornTail,
		DroppedBytes:   s.recovery.Dropped,
		FlusherRunning: s.running,
	}
	s.mu.Unlock()
	return st
}

func splitKey(vk string) (raw, sem string) {
	for i := 0; i < len(vk); i++ {
		if vk[i] == 0 {
			return vk[:i], vk[i+1:]
		}
	}
	return vk, ""
}

// ---- payload encoding ----

type encoder struct{ b []byte }

func (e *encoder) str(s string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *encoder) bytes(b []byte) {
	if b == nil {
		e.b = append(e.b, 0)
		return
	}
	e.b = append(e.b, 1)
	e.b = binary.AppendUvarint(e.b, uint64(len(b)))
	e.b = append(e.b, b...)
}

func (e *encoder) byte(v uint8) { e.b = append(e.b, v) }

func (e *encoder) u64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

type decoder struct {
	b   []byte
	bad bool
}

func (d *decoder) str() string {
	n, w := binary.Uvarint(d.b)
	if w <= 0 || n > maxValue || uint64(len(d.b)-w) < n {
		d.bad = true
		return ""
	}
	s := string(d.b[w : w+int(n)])
	d.b = d.b[w+int(n):]
	return s
}

func (d *decoder) bytes() []byte {
	if len(d.b) < 1 {
		d.bad = true
		return nil
	}
	flag := d.b[0]
	d.b = d.b[1:]
	if flag == 0 {
		return nil
	}
	if flag != 1 {
		d.bad = true
		return nil
	}
	n, w := binary.Uvarint(d.b)
	if w <= 0 || n > maxValue || uint64(len(d.b)-w) < n {
		d.bad = true
		return nil
	}
	out := make([]byte, n)
	copy(out, d.b[w:w+int(n)])
	d.b = d.b[w+int(n):]
	return out
}

func (d *decoder) u64() uint64 {
	v, w := binary.Uvarint(d.b)
	if w <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[w:]
	return v
}

func (d *decoder) byte() uint8 {
	if len(d.b) < 1 {
		d.bad = true
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *decoder) done() bool { return len(d.b) == 0 }
