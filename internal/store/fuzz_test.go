package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreRecover feeds arbitrary bytes to the log loader and asserts
// the recovery invariants: Open never errors on content damage, never
// serves an entry that differs from the seeded originals (CRC-bound
// prefix property), and always leaves a log that reopens cleanly —
// i.e. recovery output is a fixed point of recovery.
func FuzzStoreRecover(f *testing.F) {
	// Seed with a healthy log, its prefixes, and single-byte flips so
	// the corpus starts in the interesting region of the format.
	seedDir := f.TempDir()
	{
		s, _, err := Open(Config{Dir: seedDir})
		if err != nil {
			f.Fatal(err)
		}
		s.PutArtifact(Artifact{Text: "a | b.\n", Key: "K1", Frag: 2})
		s.PutVerdict(Verdict{Raw: "R1", Sem: "GCWA", MemoKey: "literal|a", Holds: true})
		s.PutIntern(Intern{Key: "CK1", Sat: true, Raw: "RAW1", Model: []byte{1, 2, 3}})
		if err := s.Close(); err != nil {
			f.Fatal(err)
		}
	}
	healthy, err := os.ReadFile(filepath.Join(seedDir, logName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)/2])
	f.Add([]byte{})
	f.Add([]byte(magic))
	for _, off := range []int{0, len(magic), len(magic) + 1, len(healthy) - 1} {
		if off >= 0 && off < len(healthy) {
			mut := append([]byte(nil), healthy...)
			mut[off] ^= 0x01
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Skip()
		}
		s, rec, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("Open failed on damaged log: %v", err)
		}
		// Entries the loader accepted must match the only records ever
		// written with valid checksums (assuming no CRC collision in
		// the mutated corpus, which the fuzzer would surface as a
		// mismatch here).
		for _, a := range s.Artifacts() {
			if a != (Artifact{Text: "a | b.\n", Key: "K1", Frag: 2}) {
				t.Fatalf("corrupt artifact served: %+v", a)
			}
		}
		for k, v := range s.Verdicts("R1", "GCWA") {
			if k != "literal|a" || v != true {
				t.Fatalf("corrupt verdict served: %q=%v", k, v)
			}
		}
		for _, in := range s.Interns() {
			if in.Key != "CK1" || !in.Sat || in.Raw != "RAW1" || !bytes.Equal(in.Model, []byte{1, 2, 3}) {
				t.Fatalf("corrupt intern served: %+v", in)
			}
		}
		total := rec.Artifacts + rec.Verdicts + rec.Interns
		// Store stays writable after recovery.
		s.PutArtifact(Artifact{Text: "fresh.", Key: "KF"})
		s.Flush()
		if err := s.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}
		// Recovery must be a fixed point: the repaired log reopens with
		// zero further damage and everything it loaded the first time.
		s2, rec2, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("reopen of repaired log: %v", err)
		}
		defer s2.Close()
		if rec2.TornTail {
			t.Fatalf("repaired log still torn on reopen: %+v", rec2)
		}
		if got := rec2.Artifacts + rec2.Verdicts + rec2.Interns; got != total+1 {
			t.Fatalf("repaired log lost entries: first load %d+fresh, reopen %d", total, got)
		}
		if _, ok := s2.Artifact("fresh."); !ok {
			t.Fatal("post-recovery write lost on reopen")
		}
	})
}
