package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string) (*Store, Recovery) {
	t.Helper()
	s, rec, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, rec
}

func seedStore(t *testing.T, dir string) {
	t.Helper()
	s, rec := openT(t, dir)
	if rec.TornTail || rec.Artifacts != 0 || rec.Verdicts != 0 || rec.Interns != 0 {
		t.Fatalf("fresh store reported recovery %+v", rec)
	}
	s.PutArtifact(Artifact{Text: "a | b.\n", Key: "K1", Frag: 2})
	s.PutArtifact(Artifact{Text: "p. q :- p.\n", Key: "K2", Frag: 1})
	s.PutVerdict(Verdict{Raw: "R1", Sem: "GCWA", MemoKey: "literal|a", Holds: true})
	s.PutVerdict(Verdict{Raw: "R1", Sem: "GCWA", MemoKey: "literal|b", Holds: false})
	s.PutVerdict(Verdict{Raw: "R2", Sem: "CIRC", MemoKey: "formula|a & b", Holds: true})
	s.PutIntern(Intern{Key: "CK1", Sat: true, Raw: "RAW1", Model: []byte{3, 1, 0, 2}})
	s.PutIntern(Intern{Key: "CK2", Sat: false, Raw: "RAW2"})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func checkSeeded(t *testing.T, s *Store) {
	t.Helper()
	a, ok := s.Artifact("a | b.\n")
	if !ok || a.Key != "K1" || a.Frag != 2 {
		t.Fatalf("artifact 1 = %+v ok=%v", a, ok)
	}
	if a, ok := s.Artifact("p. q :- p.\n"); !ok || a.Key != "K2" {
		t.Fatalf("artifact 2 = %+v ok=%v", a, ok)
	}
	m := s.Verdicts("R1", "GCWA")
	if len(m) != 2 || m["literal|a"] != true || m["literal|b"] != false {
		t.Fatalf("verdicts R1/GCWA = %v", m)
	}
	if m := s.Verdicts("R2", "CIRC"); len(m) != 1 || !m["formula|a & b"] {
		t.Fatalf("verdicts R2/CIRC = %v", m)
	}
	if m := s.Verdicts("R1", "CCWA"); m != nil {
		t.Fatalf("unexpected verdicts for unknown sem: %v", m)
	}
	ins := s.Interns()
	if len(ins) != 2 {
		t.Fatalf("interns = %v", ins)
	}
	byKey := map[string]Intern{}
	for _, in := range ins {
		byKey[in.Key] = in
	}
	if in := byKey["CK1"]; !in.Sat || in.Raw != "RAW1" || !bytes.Equal(in.Model, []byte{3, 1, 0, 2}) {
		t.Fatalf("intern CK1 = %+v", in)
	}
	if in := byKey["CK2"]; in.Sat || in.Raw != "RAW2" || in.Model != nil {
		t.Fatalf("intern CK2 = %+v", in)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	s, rec := openT(t, dir)
	defer s.Close()
	if rec.TornTail || rec.Dropped != 0 {
		t.Fatalf("clean reopen reported torn tail: %+v", rec)
	}
	if rec.Artifacts != 2 || rec.Verdicts != 3 || rec.Interns != 2 {
		t.Fatalf("recovery counts = %+v", rec)
	}
	checkSeeded(t, s)
}

func TestLaterRecordWins(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	s.PutArtifact(Artifact{Text: "a.", Key: "OLD"})
	s.PutArtifact(Artifact{Text: "a.", Key: "NEW", Frag: 3})
	s.PutVerdict(Verdict{Raw: "R", Sem: "GCWA", MemoKey: "q", Holds: false})
	s.PutVerdict(Verdict{Raw: "R", Sem: "GCWA", MemoKey: "q", Holds: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := openT(t, dir)
	defer s2.Close()
	if a, _ := s2.Artifact("a."); a.Key != "NEW" || a.Frag != 3 {
		t.Fatalf("artifact after reload = %+v (want later record)", a)
	}
	if m := s2.Verdicts("R", "GCWA"); !m["q"] {
		t.Fatalf("verdict after reload = %v (want later record)", m)
	}
}

func TestDedupIdenticalPuts(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	defer s.Close()
	for i := 0; i < 100; i++ {
		s.PutArtifact(Artifact{Text: "a.", Key: "K"})
		s.PutVerdict(Verdict{Raw: "R", Sem: "GCWA", MemoKey: "q", Holds: true})
		s.PutIntern(Intern{Key: "CK", Sat: true, Raw: "RAW"})
	}
	st := s.Stats()
	if st.QueuedWrites != 3 {
		t.Fatalf("identical puts queued %d writes, want 3", st.QueuedWrites)
	}
}

// TestTruncateEveryOffset cuts a healthy log at every byte length and
// asserts the loader always recovers: never errors, never reports an
// entry that wasn't fully written, and keeps a valid prefix (entry
// counts monotonically non-decreasing in the cut point).
func TestTruncateEveryOffset(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	full := len(data)
	prevTotal := -1
	for cut := 0; cut <= full; cut++ {
		d2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(d2, logName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, rec, err := Open(Config{Dir: d2})
		if err != nil {
			t.Fatalf("cut=%d: Open error: %v", cut, err)
		}
		total := rec.Artifacts + rec.Verdicts + rec.Interns
		if cut < full && !rec.TornTail && total != 7 && cut > len(magic) {
			// A cut strictly inside a record must be reported torn
			// unless it landed exactly on a record boundary.
			if rec.Dropped != 0 {
				t.Fatalf("cut=%d: dropped %d but no torn flag", cut, rec.Dropped)
			}
		}
		if cut == full && (rec.TornTail || total != 7) {
			t.Fatalf("uncut log reported %+v", rec)
		}
		// Each loaded artifact must be one we actually wrote.
		for _, a := range s.Artifacts() {
			if !(a.Key == "K1" || a.Key == "K2") {
				t.Fatalf("cut=%d: corrupt artifact served: %+v", cut, a)
			}
		}
		for _, in := range s.Interns() {
			if !(in.Key == "CK1" || in.Key == "CK2") {
				t.Fatalf("cut=%d: corrupt intern served: %+v", cut, in)
			}
		}
		if total < prevTotal && cut > 0 {
			// Longer prefixes can only reveal more records.
			t.Fatalf("cut=%d: recovered %d entries, previous cut recovered %d", cut, total, prevTotal)
		}
		prevTotal = total
		// The store must be writable after recovery: dropped entries
		// are re-derived and re-persisted by the caller.
		s.PutArtifact(Artifact{Text: "re.", Key: "K1"})
		s.Flush()
		if err := s.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
		s2, _, err := Open(Config{Dir: d2})
		if err != nil {
			t.Fatalf("cut=%d: reopen after repair: %v", cut, err)
		}
		if _, ok := s2.Artifact("re."); !ok {
			t.Fatalf("cut=%d: re-derived entry lost on reopen", cut)
		}
		s2.Close()
	}
}

// TestCorruptEveryOffset flips a byte at every offset of a healthy log
// and asserts the loader never serves a record that differs from what
// was written: every surviving entry is byte-identical to an original.
func TestCorruptEveryOffset(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	data, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	wantVerdicts := map[string]map[string]bool{
		"R1\x00GCWA": {"literal|a": true, "literal|b": false},
		"R2\x00CIRC": {"formula|a & b": true},
	}
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xFF
		d2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(d2, logName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, _, err := Open(Config{Dir: d2})
		if err != nil {
			t.Fatalf("off=%d: Open error: %v", off, err)
		}
		for _, a := range s.Artifacts() {
			if !(a == Artifact{Text: "a | b.\n", Key: "K1", Frag: 2} ||
				a == Artifact{Text: "p. q :- p.\n", Key: "K2", Frag: 1}) {
				t.Fatalf("off=%d: corrupt artifact served: %+v", off, a)
			}
		}
		for raw, sem := range map[string]string{"R1": "GCWA", "R2": "CIRC"} {
			for k, v := range s.Verdicts(raw, sem) {
				if want, ok := wantVerdicts[raw+"\x00"+sem][k]; !ok || want != v {
					t.Fatalf("off=%d: corrupt verdict served: %s/%s %q=%v", off, raw, sem, k, v)
				}
			}
		}
		for _, in := range s.Interns() {
			okCK1 := in.Key == "CK1" && in.Sat && in.Raw == "RAW1" && bytes.Equal(in.Model, []byte{3, 1, 0, 2})
			okCK2 := in.Key == "CK2" && !in.Sat && in.Raw == "RAW2" && in.Model == nil
			if !okCK1 && !okCK2 {
				t.Fatalf("off=%d: corrupt intern served: %+v", off, in)
			}
		}
		s.Close()
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(Config{Dir: dir, MaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the same keys with alternating values: the live set stays
	// tiny while the log grows past budget, forcing compaction.
	for i := 0; i < 2000; i++ {
		s.PutVerdict(Verdict{Raw: "R", Sem: "GCWA", MemoKey: "q", Holds: i%2 == 0})
		s.PutArtifact(Artifact{Text: "a.", Key: "K", Frag: uint8(i % 2)})
	}
	s.Flush()
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d bytes of churn (size=%d)", 4000*20, st.SizeBytes)
	}
	if st.SizeBytes > 2048 {
		t.Fatalf("post-compaction size %d over budget", st.SizeBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir)
	defer s2.Close()
	if rec.TornTail {
		t.Fatalf("compacted log reported torn tail: %+v", rec)
	}
	if a, ok := s2.Artifact("a."); !ok || a.Frag != 1 {
		t.Fatalf("artifact after compaction = %+v ok=%v (want last write)", a, ok)
	}
	if m := s2.Verdicts("R", "GCWA"); len(m) != 1 || m["q"] != false {
		t.Fatalf("verdicts after compaction = %v (want last write)", m)
	}
}

func TestCompactionTmpLeftoverIgnored(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	// A crash mid-compaction leaves a temp file; the old log wins.
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, rec := openT(t, dir)
	defer s.Close()
	if rec.TornTail {
		t.Fatalf("leftover tmp corrupted recovery: %+v", rec)
	}
	checkSeeded(t, s)
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Fatalf("leftover tmp not removed: %v", err)
	}
}

func TestCloseStopsFlusherAndDropsLatePuts(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	if st := s.Stats(); !st.FlusherRunning {
		t.Fatal("flusher not running after Open")
	}
	s.PutArtifact(Artifact{Text: "a.", Key: "K"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.FlusherRunning {
		t.Fatal("flusher still reported running after Close")
	}
	// Late write-behind from an in-flight request: dropped silently.
	s.PutVerdict(Verdict{Raw: "R", Sem: "GCWA", MemoKey: "late", Holds: true})
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	s2, rec := openT(t, dir)
	defer s2.Close()
	if rec.Artifacts != 1 || rec.Verdicts != 0 {
		t.Fatalf("recovery after close = %+v (pre-close put must persist, late put must not)", rec)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, _, err := Open(Config{}); err == nil {
		t.Fatal("Open with empty Dir succeeded")
	}
}

func TestForeignFileStartsFresh(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("not a store log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, rec, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open over foreign file: %v", err)
	}
	defer s.Close()
	if !rec.TornTail || rec.Dropped == 0 {
		t.Fatalf("foreign file not reported as dropped: %+v", rec)
	}
	if rec.Artifacts+rec.Verdicts+rec.Interns != 0 {
		t.Fatalf("foreign file yielded entries: %+v", rec)
	}
	s.PutArtifact(Artifact{Text: "a.", Key: "K"})
	s.Flush()
}

func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s.PutVerdict(Verdict{Raw: "R", Sem: "GCWA", MemoKey: string(rune('a'+g)) + "x", Holds: i%2 == 0})
				s.PutArtifact(Artifact{Text: "t" + string(rune('a'+g)), Key: "K"})
				s.Verdicts("R", "GCWA")
				s.Stats()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir)
	defer s2.Close()
	if rec.Artifacts != 8 {
		t.Fatalf("concurrent artifacts persisted = %d, want 8", rec.Artifacts)
	}
}
