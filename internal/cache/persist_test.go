package cache

import (
	"testing"

	"disjunct/internal/bitset"
	"disjunct/internal/store"
)

func TestMarshalModelRoundTrip(t *testing.T) {
	cases := []*bitset.Set{
		nil,
		bitset.New(0),
		bitset.New(7),
		bitset.FromElements(7, 0),
		bitset.FromElements(7, 6),
		bitset.FromElements(7, 0, 1, 2, 3, 4, 5, 6),
		bitset.FromElements(130, 0, 63, 64, 65, 128, 129),
	}
	for i, m := range cases {
		b := MarshalModel(m)
		got, ok := UnmarshalModel(b)
		if !ok {
			t.Fatalf("case %d: unmarshal failed", i)
		}
		if m == nil {
			if got != nil {
				t.Fatalf("case %d: nil round-tripped to %v", i, got)
			}
			continue
		}
		if got == nil || !got.Equal(m) {
			t.Fatalf("case %d: %v round-tripped to %v", i, m, got)
		}
	}
}

func TestUnmarshalModelRejectsDamage(t *testing.T) {
	good := MarshalModel(bitset.FromElements(10, 1, 4, 9))
	for cut := 1; cut < len(good); cut++ {
		if _, ok := UnmarshalModel(good[:cut]); ok {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, ok := UnmarshalModel(append(append([]byte{}, good...), 0)); ok {
		t.Fatal("trailing byte accepted")
	}
	// Element index at/after the universe size.
	bad := MarshalModel(bitset.FromElements(10, 9))
	bad[0] = 5 // shrink the declared universe below the element
	if _, ok := UnmarshalModel(bad); ok {
		t.Fatal("out-of-range element accepted")
	}
}

// TestPersistHookFiresOnInsertOnly: new keys fire, refreshes and Seed
// do not.
func TestPersistHookFiresOnInsertOnly(t *testing.T) {
	c := New(64)
	var fired []Key
	c.SetPersist(func(k Key, e Entry) { fired = append(fired, k) })
	c.Put("k1", Entry{Sat: true, Raw: "r1"})
	c.Put("k1", Entry{Sat: true, Raw: "r1b"}) // refresh: no fire
	c.Seed("k2", Entry{Sat: false, Raw: "r2"})
	if len(fired) != 1 || fired[0] != "k1" {
		t.Fatalf("hook fired for %v, want [k1]", fired)
	}
	c.SetPersist(nil)
	c.Put("k3", Entry{})
	if len(fired) != 1 {
		t.Fatal("detached hook still fired")
	}
}

// TestAttachStoreRoundTrip: insertions (including a model-bearing one)
// written behind, reloaded into a fresh cache on reopen.
func TestAttachStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1 := New(64)
	if n := AttachStore(c1, st); n != 0 {
		t.Fatalf("fresh store seeded %d entries", n)
	}
	model := bitset.FromElements(9, 0, 4, 8)
	c1.Put("sat", Entry{Sat: true, Raw: "rawSat", Model: model.Clone()})
	c1.Put("unsat", Entry{Sat: false, Raw: "rawUnsat"})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.Interns != 2 {
		t.Fatalf("recovered %d interner entries, want 2", rec.Interns)
	}
	c2 := New(64)
	if n := AttachStore(c2, st2); n != 2 {
		t.Fatalf("seeded %d entries, want 2", n)
	}
	e, ok := c2.Get("sat")
	if !ok || !e.Sat || e.Raw != "rawSat" || e.Model == nil || !e.Model.Equal(model) {
		t.Fatalf("sat entry after reload = %+v ok=%v", e, ok)
	}
	if e, ok := c2.Get("unsat"); !ok || e.Sat || e.Raw != "rawUnsat" || e.Model != nil {
		t.Fatalf("unsat entry after reload = %+v ok=%v", e, ok)
	}
	// Seeded entries must not have been re-persisted (log churn).
	st2.Flush()
	if got := st2.Stats().QueuedWrites; got != 0 {
		t.Fatalf("reload re-persisted %d entries", got)
	}
}

// TestAttachStoreCapturesPromotions: a lazy side-table record promoted
// into the canonical LRU lands in the store (promotion goes through
// Put, which fires the hook).
func TestAttachStoreCapturesPromotions(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := New(64)
	AttachStore(c, st)

	// A tiny CNF parked lazily, then promoted on second sighting.
	lcnf := mkCNF([][]int{{1, 2}, {-1, 2}})
	fp, lits := Fingerprint(2, lcnf)
	raw := RawKey(2, lcnf)
	c.PutLazy(fp, raw, 2, lcnf, lits, Entry{Sat: true, Raw: raw})
	c.Promote(fp)
	st.Flush()
	if got := st.Stats().Interns; got != 1 {
		t.Fatalf("promotion persisted %d interner entries, want 1", got)
	}
}
