package cache

import (
	"sync"
	"sync/atomic"

	"disjunct/internal/bitset"
)

// Entry is one memoised oracle verdict.
type Entry struct {
	// Sat is the verdict for every CNF in the key's isomorphism class.
	Sat bool
	// Raw is the exact fingerprint (Canon.Raw) of the query that
	// produced the entry; witness-model replay requires Raw equality.
	Raw string
	// Model is the witness for Sat entries, over the producing query's
	// variable count, nil for UNSAT entries. It is shared between the
	// cache and all readers and must be treated as immutable — clone
	// before handing it to code that may mutate it.
	Model *bitset.Set
}

// shardCount is the number of independently locked LRU shards. A
// small power of two keeps the modulo cheap while making contention
// between the worker-pool enumerators unlikely.
const shardCount = 16

// DefaultCapacity is the entry budget used when New is given a
// non-positive capacity.
const DefaultCapacity = 8192

// Cache is a sharded, goroutine-safe LRU from canonical CNF keys to
// verdicts. One Cache may be shared by any number of oracles (and by
// the worker pools behind one oracle); hit/miss accounting lives in
// the oracle's counters, the cache itself only tracks structural
// stats.
type Cache struct {
	shards     [shardCount]shard
	insertions atomic.Int64
	evictions  atomic.Int64
	fast       fastTable
	persist    atomic.Pointer[persistFn]
}

// persistFn is the write-behind hook type (see SetPersist).
type persistFn = func(Key, Entry)

type shard struct {
	mu   sync.Mutex
	m    map[Key]*node
	cap  int
	head *node // most recently used
	tail *node // least recently used
}

type node struct {
	key        Key
	e          Entry
	prev, next *node
}

// Stats is a snapshot of the cache's structural counters.
type Stats struct {
	Entries    int
	Insertions int64
	Evictions  int64
}

// New returns a cache holding at most capacity entries (≤ 0 selects
// DefaultCapacity) across its shards.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	perShard := (capacity + shardCount - 1) / shardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*node)
		c.shards[i].cap = perShard
	}
	c.fast.init()
	return c
}

// shardFor hashes the key bytes (FNV-1a) to a shard.
func (c *Cache) shardFor(k Key) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= prime64
	}
	return &c.shards[h%shardCount]
}

// Get returns the entry for k, promoting it to most-recently-used.
func (c *Cache) Get(k Key) (Entry, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	n, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		return Entry{}, false
	}
	s.moveToFront(n)
	e := n.e
	s.mu.Unlock()
	return e, true
}

// Put inserts or refreshes the entry for k as most-recently-used,
// evicting the least-recently-used entry of the shard when full. The
// entry's Model (if any) is stored as-is; the caller must hand over a
// private copy. New insertions fire the registered persist hook (see
// SetPersist) outside the shard lock.
func (c *Cache) Put(k Key, e Entry) {
	c.put(k, e, true)
}

func (c *Cache) put(k Key, e Entry, hook bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	if n, ok := s.m[k]; ok {
		n.e = e
		s.moveToFront(n)
		s.mu.Unlock()
		return
	}
	n := &node{key: k, e: e}
	s.m[k] = n
	s.pushFront(n)
	c.insertions.Add(1)
	if len(s.m) > s.cap {
		victim := s.tail
		s.unlink(victim)
		delete(s.m, victim.key)
		c.evictions.Add(1)
	}
	s.mu.Unlock()
	if hook {
		if fn := c.persist.Load(); fn != nil && *fn != nil {
			(*fn)(k, e)
		}
	}
}

// Len returns the current number of entries across all shards.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// Stats returns a snapshot of the structural counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Entries:    c.Len(),
		Insertions: c.insertions.Load(),
		Evictions:  c.evictions.Load(),
	}
}

// list plumbing (shard mutex held)

func (s *shard) pushFront(n *node) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *shard) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *shard) moveToFront(n *node) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}
