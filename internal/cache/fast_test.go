package cache

import (
	"testing"

	"disjunct/internal/logic"
)

func mkCNF(clauses [][]int) logic.CNF {
	cnf := make(logic.CNF, 0, len(clauses))
	for _, cl := range clauses {
		c := make([]logic.Lit, 0, len(cl))
		for _, l := range cl {
			if l >= 0 {
				c = append(c, logic.PosLit(logic.Atom(l)))
			} else {
				c = append(c, logic.NegLit(logic.Atom(-l-1)))
			}
		}
		cnf = append(cnf, c)
	}
	return cnf
}

// Renamings and reorderings must fingerprint equally (class-invariance),
// and the literal count must match across the class.
func TestFingerprintInvariantUnderRenaming(t *testing.T) {
	// a = {x0∨x1}, {¬x0∨x2}, {¬x2}  (negative l encodes ¬x(-l-1))
	a := mkCNF([][]int{{0, 1}, {-1, 2}, {-3}})
	// b = a under the renaming x0→x2, x1→x0, x2→x1, with clauses and
	// literals permuted.
	b := mkCNF([][]int{{-3, 1}, {-2}, {2, 0}})
	fa, la := Fingerprint(3, a)
	fb, lb := Fingerprint(5, b) // extra unused vars must not matter
	if fa != fb || la != lb {
		t.Fatalf("isomorphic CNFs fingerprint differently: (%x,%d) vs (%x,%d)", fa, la, fb, lb)
	}
	ca := Canonicalize(3, a)
	cb := Canonicalize(5, b)
	if ca.Key != cb.Key {
		t.Fatalf("test premise broken: CNFs are not canonical-equal")
	}
	// Different class, very likely different fingerprint.
	c := mkCNF([][]int{{0, 1, 2}, {-1}})
	fc, _ := Fingerprint(3, c)
	if fc == fa {
		t.Fatalf("distinct classes collided (possible but ~2^-64; investigate)")
	}
}

// Parked verdicts replay byte-identically and are promoted exactly once
// when the class repeats.
func TestLazyParkAndPromote(t *testing.T) {
	c := New(64)
	a := mkCNF([][]int{{0, 1}, {-1}})
	rawA := RawKey(2, a)
	fp, lits := Fingerprint(2, a)
	if seen := c.SeenClass(fp); seen {
		t.Fatalf("fresh class reported seen")
	}
	c.PutLazy(fp, rawA, 2, a, lits, Entry{Sat: false, Raw: rawA})
	if e, ok := c.FastGet(rawA); !ok || e.Sat {
		t.Fatalf("FastGet after PutLazy: ok=%v e=%+v", ok, e)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("lazy record leaked into canonical LRU: Len=%d", got)
	}
	if seen := c.SeenClass(fp); !seen {
		t.Fatalf("class not marked seen")
	}
	c.Promote(fp)
	if _, ok := c.FastGet(rawA); ok {
		t.Fatalf("record still parked after promotion")
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("promotion did not land in canonical LRU: Len=%d", got)
	}
	cn := Canonicalize(2, a)
	if e, ok := c.Get(cn.Key); !ok || e.Sat || e.Raw != rawA {
		t.Fatalf("promoted entry wrong: ok=%v e=%+v", ok, e)
	}
	c.Promote(fp) // idempotent on empty class
	if st := c.FastStatsSnapshot(); st.LazyEntries != 0 || st.LazyLits != 0 {
		t.Fatalf("side table not empty after promotion: %+v", st)
	}
}

// randBenchCNF builds a deterministic pseudo-random 3-CNF of the given
// size — the shape of a typical minimality query.
func randBenchCNF(nVars, nClauses int) logic.CNF {
	state := uint64(0x9e3779b97f4a7c15)
	next := func(bound int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(bound))
	}
	cnf := make(logic.CNF, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		cl := make(logic.Clause, 0, 3)
		for j := 0; j < 3; j++ {
			a := logic.Atom(next(nVars))
			if next(2) == 0 {
				cl = append(cl, logic.PosLit(a))
			} else {
				cl = append(cl, logic.NegLit(a))
			}
		}
		cnf = append(cnf, cl)
	}
	return cnf
}

// The pair below measures what the lazy first-sighting path skips: a
// parked query pays Fingerprint where the old always-canonical path
// paid Canonicalize (iterated refinement + sorting). The ratio is the
// per-query saving for classes that never repeat.
func BenchmarkFingerprint(b *testing.B) {
	cnf := randBenchCNF(40, 120)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Fingerprint(40, cnf)
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	cnf := randBenchCNF(40, 120)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Canonicalize(40, cnf)
	}
}
