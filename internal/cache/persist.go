package cache

import (
	"encoding/binary"

	"disjunct/internal/bitset"
	"disjunct/internal/store"
)

// Persistence: the interner's canonical entries survive restarts. The
// cache itself stays storage-agnostic — Put fires a registered hook on
// every insertion (covering both direct canonical-path inserts and the
// side table's lazy promotions, which land through Put), and Seed is
// the hook-free reload path. AttachStore is the concrete adapter onto
// internal/store.

// SetPersist registers fn to be called after every new insertion into
// the canonical LRU (refreshes of an existing key do not fire; reloads
// via Seed do not fire). The hook runs outside the shard lock and must
// be goroutine-safe. A nil fn detaches.
func (c *Cache) SetPersist(fn func(Key, Entry)) {
	if fn == nil {
		c.persist.Store((*persistFn)(nil))
		return
	}
	c.persist.Store(&fn)
}

// Seed inserts an entry without firing the persist hook — the reload
// path: persisting what was just read back would only churn the log.
func (c *Cache) Seed(k Key, e Entry) {
	c.put(k, e, false)
}

// AttachStore seeds the cache from every interner entry persisted in
// st and registers a write-behind hook persisting future insertions.
// It returns the number of entries seeded. Entries whose witness model
// fails to decode are skipped (they re-derive on demand; the store's
// CRC layer makes this unreachable short of a collision).
func AttachStore(c *Cache, st *store.Store) int {
	seeded := 0
	for _, in := range st.Interns() {
		e := Entry{Sat: in.Sat, Raw: in.Raw}
		if in.Sat {
			m, ok := UnmarshalModel(in.Model)
			if !ok {
				continue
			}
			e.Model = m
		}
		c.Seed(Key(in.Key), e)
		seeded++
	}
	c.SetPersist(func(k Key, e Entry) {
		st.PutIntern(store.Intern{
			Key:   string(k),
			Sat:   e.Sat,
			Raw:   e.Raw,
			Model: MarshalModel(e.Model),
		})
	})
	return seeded
}

// MarshalModel encodes a witness model as (universe size, element
// count, delta-encoded elements), all uvarints; nil in, nil out.
func MarshalModel(m *bitset.Set) []byte {
	if m == nil {
		return nil
	}
	buf := binary.AppendUvarint(nil, uint64(m.Len()))
	buf = binary.AppendUvarint(buf, uint64(m.Count()))
	prev := 0
	m.ForEach(func(i int) {
		buf = binary.AppendUvarint(buf, uint64(i-prev))
		prev = i
	})
	return buf
}

// UnmarshalModel is the inverse of MarshalModel. The boolean reports
// whether the encoding was well-formed (trailing bytes, out-of-range
// elements, and truncation all fail).
func UnmarshalModel(b []byte) (*bitset.Set, bool) {
	if b == nil {
		return nil, true
	}
	n, w := binary.Uvarint(b)
	if w <= 0 || n > 1<<24 {
		return nil, false
	}
	b = b[w:]
	count, w := binary.Uvarint(b)
	if w <= 0 || count > n {
		return nil, false
	}
	b = b[w:]
	m := bitset.New(int(n))
	at := 0
	for i := uint64(0); i < count; i++ {
		d, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, false
		}
		b = b[w:]
		at += int(d)
		if at >= int(n) || (i > 0 && d == 0) {
			return nil, false
		}
		m.Set(at)
	}
	if len(b) != 0 {
		return nil, false
	}
	return m, true
}
