package cache

import (
	"sync"

	"disjunct/internal/logic"
)

// The fast path defers the expensive canonical labeling for CNFs that
// may never repeat. The first time a structural class (identified by
// the cheap Fingerprint hash) is sighted, its verdict is parked in a
// lazy side table keyed by the exact Raw fingerprint, together with a
// private copy of the query. Only when the class is sighted again is
// every parked record of the class canonicalized and promoted into the
// main LRU — from then on the class behaves exactly as it did before
// the fast path existed. Hit/miss classification is preserved by
// construction: a byte-identical repeat of a parked query is a hit
// (witness replay, as the canonical store would have given), the first
// sighting is a miss, and any structurally-repeating query reaches the
// canonical path with all earlier class members already promoted.
//
// The side table is bounded: fingerprint hash collisions or table
// saturation only force queries through the canonical path early, and
// lazy-record eviction under pressure loses potential future hits —
// neither ever affects verdicts.

const (
	// LazyRetainLimit is the largest normalized literal count a query
	// may have for its first sighting to take the lazy path. The bound
	// is class-invariant (normalization is), so every member of a class
	// takes the same route. Large queries go straight to the canonical
	// path: for them the labeling cost is amortized by solver savings,
	// and retaining big CNF copies in the side table is not.
	LazyRetainLimit = 1 << 12

	// fpSeenMax bounds the seen-class set. At saturation every new
	// class is conservatively treated as already seen (canonical path).
	fpSeenMax = 1 << 20

	// lazyMaxRecs / lazyMaxLits bound the parked records (count and
	// total retained literals). Oldest-first eviction under pressure.
	lazyMaxRecs = 8192
	lazyMaxLits = 1 << 22
)

// lazyRec is one parked first-sighting verdict.
type lazyRec struct {
	fp    uint64
	raw   string
	nVars int
	cnf   logic.CNF
	lits  int
	e     Entry
}

type fastTable struct {
	mu     sync.Mutex
	fpSeen map[uint64]struct{}
	byRaw  map[string]*lazyRec
	byFp   map[uint64][]*lazyRec
	fifo   []string // raw keys in park order; tombstoned by byRaw lookup
	lits   int      // total retained literals across parked records
}

func (t *fastTable) init() {
	t.fpSeen = make(map[uint64]struct{})
	t.byRaw = make(map[string]*lazyRec)
	t.byFp = make(map[uint64][]*lazyRec)
}

// FastGet returns the parked verdict for a byte-identical query, if
// any, without touching the canonical store. The returned entry's
// Model is shared and must be treated as immutable by the caller.
func (c *Cache) FastGet(raw string) (Entry, bool) {
	t := &c.fast
	t.mu.Lock()
	rec, ok := t.byRaw[raw]
	if !ok {
		t.mu.Unlock()
		return Entry{}, false
	}
	e := rec.e
	t.mu.Unlock()
	return e, true
}

// SeenClass marks the structural class as sighted and reports whether
// it had already been sighted (true also when the seen-set is
// saturated — the conservative answer routes the query through the
// canonical path, which is always correct).
func (c *Cache) SeenClass(fp uint64) bool {
	t := &c.fast
	t.mu.Lock()
	_, seen := t.fpSeen[fp]
	if !seen {
		if len(t.fpSeen) >= fpSeenMax {
			t.mu.Unlock()
			return true
		}
		t.fpSeen[fp] = struct{}{}
	}
	t.mu.Unlock()
	return seen
}

// PutLazy parks a first-sighting verdict under its exact fingerprint,
// retaining a private copy of the query for later promotion. The
// entry's Model (if any) must already be a private copy. Oldest parked
// records are evicted to stay within the table bounds.
func (c *Cache) PutLazy(fp uint64, raw string, nVars int, cnf logic.CNF, lits int, e Entry) {
	rec := &lazyRec{fp: fp, raw: raw, nVars: nVars, cnf: logic.CloneCNF(cnf), lits: lits, e: e}
	t := &c.fast
	t.mu.Lock()
	if old, ok := t.byRaw[raw]; ok {
		// Concurrent first sightings of the same exact query: keep the
		// winner, drop the duplicate (verdicts are identical).
		t.lits -= old.lits
		t.removeFromFp(old)
	}
	t.byRaw[raw] = rec
	t.byFp[fp] = append(t.byFp[fp], rec)
	t.fifo = append(t.fifo, raw)
	t.lits += rec.lits
	for (len(t.byRaw) > lazyMaxRecs || t.lits > lazyMaxLits) && len(t.fifo) > 0 {
		victim := t.fifo[0]
		t.fifo = t.fifo[1:]
		v, ok := t.byRaw[victim]
		if !ok || v == rec {
			continue // tombstone, or would evict the record just parked
		}
		delete(t.byRaw, victim)
		t.lits -= v.lits
		t.removeFromFp(v)
	}
	t.mu.Unlock()
}

// Promote canonicalizes every parked record of the class and moves it
// into the main LRU, leaving the side table without members of the
// class. Safe to call for classes with no parked records.
func (c *Cache) Promote(fp uint64) {
	t := &c.fast
	t.mu.Lock()
	recs := t.byFp[fp]
	if len(recs) == 0 {
		t.mu.Unlock()
		return
	}
	delete(t.byFp, fp)
	for _, r := range recs {
		if cur, ok := t.byRaw[r.raw]; ok && cur == r {
			delete(t.byRaw, r.raw)
			t.lits -= r.lits
		}
	}
	t.mu.Unlock()
	// Canonicalization happens outside the table lock — it is the
	// expensive step the fast path exists to avoid on the hot path.
	for _, r := range recs {
		cn := Canonicalize(r.nVars, r.cnf)
		c.Put(cn.Key, r.e)
	}
}

// removeFromFp unlinks rec from its class bucket (table lock held).
func (t *fastTable) removeFromFp(rec *lazyRec) {
	bucket := t.byFp[rec.fp]
	for i, r := range bucket {
		if r == rec {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(t.byFp, rec.fp)
	} else {
		t.byFp[rec.fp] = bucket
	}
}

// FastStats is a snapshot of the side table.
type FastStats struct {
	SeenClasses int
	LazyEntries int
	LazyLits    int
}

// FastStatsSnapshot returns the side table's current occupancy.
func (c *Cache) FastStatsSnapshot() FastStats {
	t := &c.fast
	t.mu.Lock()
	s := FastStats{SeenClasses: len(t.fpSeen), LazyEntries: len(t.byRaw), LazyLits: t.lits}
	t.mu.Unlock()
	return s
}
