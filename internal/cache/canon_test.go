package cache

import (
	"math/rand"
	"testing"

	"disjunct/internal/logic"
)

// cl builds a clause from ±(atom+1) integers: 1 is atom 0 positive,
// -3 is atom 2 negated.
func cl(lits ...int) logic.Clause {
	out := make(logic.Clause, len(lits))
	for i, l := range lits {
		if l > 0 {
			out[i] = logic.PosLit(logic.Atom(l - 1))
		} else {
			out[i] = logic.NegLit(logic.Atom(-l - 1))
		}
	}
	return out
}

func cnf(cls ...logic.Clause) logic.CNF { return logic.CNF(cls) }

// rename applies the variable permutation perm (old atom → new atom)
// to every literal.
func rename(c logic.CNF, perm map[int]int) logic.CNF {
	out := make(logic.CNF, len(c))
	for i, clause := range c {
		nc := make(logic.Clause, len(clause))
		for j, l := range clause {
			nc[j] = logic.MkLit(logic.Atom(perm[int(l.Atom())]), l.IsPos())
		}
		out[i] = nc
	}
	return out
}

func TestCanonicalKeyInvariance(t *testing.T) {
	base := cnf(cl(1, 2), cl(-1, 3), cl(-2, -3), cl(1, 2, 3))
	baseKey := Canonicalize(4, base).Key

	cases := []struct {
		name string
		cnf  logic.CNF
	}{
		{"clause permutation", cnf(cl(-2, -3), cl(1, 2, 3), cl(1, 2), cl(-1, 3))},
		{"literal permutation inside clauses", cnf(cl(2, 1), cl(3, -1), cl(-3, -2), cl(3, 1, 2))},
		{"duplicate literals", cnf(cl(1, 2, 2, 1), cl(-1, 3, -1), cl(-2, -3), cl(1, 2, 3, 2))},
		{"duplicate clauses", cnf(cl(1, 2), cl(1, 2), cl(-1, 3), cl(-2, -3), cl(1, 2, 3), cl(-1, 3))},
		{"variable renaming", rename(base, map[int]int{0: 2, 1: 0, 2: 1})},
		{"renaming+permutation+dups", rename(
			cnf(cl(1, 2, 3), cl(-2, -3, -3), cl(-1, 3), cl(2, 1)),
			map[int]int{0: 1, 1: 2, 2: 0})},
		{"tautologies dropped", cnf(cl(1, 2), cl(-1, 3), cl(-2, -3), cl(1, 2, 3), cl(1, -1, 2), cl(3, -3))},
		{"renaming into spare vocabulary", rename(base, map[int]int{0: 7, 1: 4, 2: 9})},
	}
	for _, tc := range cases {
		got := Canonicalize(12, tc.cnf)
		if got.Key != baseKey {
			t.Errorf("%s: key diverges from base", tc.name)
		}
	}
	// The exact fingerprint must distinguish reorderings even though
	// the key does not.
	if Canonicalize(4, base).Raw == Canonicalize(4, cases[0].cnf).Raw {
		t.Error("raw fingerprint ignores clause order")
	}
	if Canonicalize(4, base).Raw != Canonicalize(4, base).Raw {
		t.Error("raw fingerprint not deterministic")
	}
	if Canonicalize(4, base).Raw == Canonicalize(5, base).Raw {
		t.Error("raw fingerprint ignores variable count")
	}
}

func TestCanonicalKeyDistinctness(t *testing.T) {
	// Pairwise non-isomorphic CNFs must get pairwise distinct keys.
	// (The converse of the invariance test: sorting/renaming must not
	// conflate genuinely different structures — note polarity profiles
	// are preserved by renaming, so {{a,¬b}} ≠ {{a,b}}.)
	corpus := []struct {
		name string
		cnf  logic.CNF
	}{
		{"empty", cnf()},
		{"empty clause", cnf(cl())},
		{"unit", cnf(cl(1))},
		{"negated unit", cnf(cl(-1))},
		{"two units", cnf(cl(1), cl(2))},
		{"binary", cnf(cl(1, 2))},
		{"binary mixed", cnf(cl(1, -2))},
		{"binary both neg", cnf(cl(-1, -2))},
		{"unit+binary", cnf(cl(1), cl(1, 2))},
		{"unit+binary mixed", cnf(cl(1), cl(1, -2))},
		{"chain", cnf(cl(-1, 2), cl(-2, 3))},
		{"triangle", cnf(cl(1, 2), cl(2, 3), cl(1, 3))},
		{"ternary", cnf(cl(1, 2, 3))},
		{"contradiction", cnf(cl(1), cl(-1))},
		{"3col-ish", cnf(cl(1, 2, 3), cl(-1, -2), cl(-2, -3), cl(-1, -3))},
	}
	keys := map[Key]string{}
	for _, tc := range corpus {
		k := Canonicalize(6, tc.cnf).Key
		if prev, dup := keys[k]; dup {
			t.Errorf("key collision between %q and %q", prev, tc.name)
		}
		keys[k] = tc.name
	}
}

// TestCanonicalRandomRenamings canonicalizes random CNFs under many
// random variable permutations and clause shuffles: every variant of
// one instance must map to the instance's key, and variants of
// different instances must not collide.
func TestCanonicalRandomRenamings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for inst := 0; inst < 50; inst++ {
		n := 3 + rng.Intn(6)
		m := 2 + rng.Intn(10)
		base := make(logic.CNF, m)
		for i := range base {
			k := 1 + rng.Intn(3)
			c := make(logic.Clause, k)
			for j := range c {
				c[j] = logic.MkLit(logic.Atom(rng.Intn(n)), rng.Intn(2) == 0)
			}
			base[i] = c
		}
		want := Canonicalize(n, base).Key
		for trial := 0; trial < 8; trial++ {
			perm := rng.Perm(n)
			pm := map[int]int{}
			for i, p := range perm {
				pm[i] = p
			}
			variant := rename(base, pm)
			rng.Shuffle(len(variant), func(i, j int) { variant[i], variant[j] = variant[j], variant[i] })
			if got := Canonicalize(n, variant).Key; got != want {
				t.Fatalf("instance %d trial %d: renamed/shuffled variant got a different key", inst, trial)
			}
		}
	}
}
