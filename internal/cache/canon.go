// Package cache memoises NP-oracle verdicts across structurally
// equivalent CNF queries.
//
// The enumeration procedures behind the paper's Π₂ᵖ verifiers (the
// GCWA/ECWA minimal-model co-searches, the signature-blocking
// enumerators) re-ask the SAT oracle near-identical questions that
// differ only by clause order, duplicated literals, or a consistent
// renaming of the variables. This package provides the two pieces a
// sound memoisation layer needs:
//
//   - a canonicalising interner (Canonicalize) that maps a CNF to a
//     structural key — literals and clauses sorted and deduplicated,
//     tautologies dropped, variables renamed canonically — such that
//     EQUAL KEYS GUARANTEE ISOMORPHIC CNFs (the canonical form is the
//     renamed clause set itself, so two inputs with the same key are
//     both variable renamings of one clause set, hence
//     equisatisfiable); and
//
//   - a sharded, goroutine-safe LRU (Cache) mapping keys to verdicts
//     and witness models.
//
// The renaming is computed nauty-style in miniature: iterated
// signature refinement to a fixpoint, then branching individualization
// over the first ambiguous signature class, keeping the
// lexicographically smallest serialized form. Soundness is
// one-directional by construction: a key collision between
// non-isomorphic CNFs is impossible (the key IS the canonical clause
// set, compared byte-for-byte by the shard maps), while two isomorphic
// CNFs may in rare cases receive different keys when the
// individualization budget runs out on a highly symmetric instance —
// that costs a cache hit, never correctness.
//
// Witness-model reuse is stricter than verdict reuse: a SAT witness is
// replayed only when the querying CNF is byte-identical (same variable
// count, same clause sequence, Canon.Raw) to the one that produced it.
// The CDCL solver is deterministic, so an exact-repeat replay returns
// precisely the model a fresh solve would — which keeps cached runs
// control-flow-identical to uncached ones, the invariant the bench
// audit checks (hits + misses == uncached NP calls). UNSAT verdicts
// carry no model and are reused across the whole isomorphism class.
package cache

import (
	"bytes"
	"encoding/binary"
	"slices"

	"disjunct/internal/logic"
)

// Key is the canonical structural key of a CNF: the serialized
// canonical clause set. Keys compare byte-for-byte (shard maps are
// keyed on them directly), so equal keys always denote isomorphic
// CNFs.
type Key string

// Canon is the canonicalization result for one oracle query.
type Canon struct {
	// Key is the structural key: equal Keys ⇒ isomorphic CNFs.
	Key Key
	// Raw is the exact query fingerprint — variable count and clause
	// sequence verbatim (order, duplicates and all). Witness models are
	// reused only between queries with equal Raw.
	Raw string
	// Vars is the number of distinct variables occurring in the CNF.
	Vars int
}

// branchBudget bounds the number of complete candidate labelings the
// individualization search will serialize for one query. Most queries
// refine to discrete signatures immediately (budget untouched); the
// bound only kicks in on highly symmetric instances, where exhausting
// it degrades hit rate, not correctness.
const branchBudget = 48

// Canonicalize computes the structural key and exact fingerprint of a
// CNF query over nVars variables. It never mutates cnf.
func Canonicalize(nVars int, cnf logic.CNF) Canon {
	raw := rawFingerprint(nVars, cnf)
	nm := normalize(cnf)
	st := &canonState{clauses: nm.clauses, n: nm.n, budget: branchBudget}
	sig := st.initialSigs()
	st.refine(sig)
	st.search(sig, 0)
	return Canon{Key: Key(st.best), Raw: raw, Vars: nm.n}
}

// normalized is the renaming-ready normal form shared by the full
// canonical labeling (Canonicalize) and the cheap structural
// fingerprint (Fingerprint): literals sorted and deduplicated per
// clause, tautological clauses dropped, variables mapped onto dense
// ids in order of first occurrence, clauses sorted and deduplicated.
// Two isomorphic inputs normalize to clause sets that are variable
// renamings of each other.
type normalized struct {
	clauses [][]int // dense literals 2v / 2v+1, lit-sorted, clause-deduped
	n       int     // dense variable count
	lits    int     // total literal count of the normalized clause set
}

// normalize computes the shared normal form. It never mutates cnf.
func normalize(cnf logic.CNF) normalized {
	denseOf := map[logic.Atom]int{}
	nDense := 0
	lits := 0
	clauses := make([][]int, 0, len(cnf))
	for _, cl := range cnf {
		c := append([]logic.Lit(nil), cl...)
		slices.Sort(c)
		c = slices.Compact(c)
		taut := false
		for i := 0; i+1 < len(c); i++ {
			if c[i].Atom() == c[i+1].Atom() {
				taut = true
				break
			}
		}
		if taut {
			continue
		}
		dc := make([]int, len(c))
		for i, l := range c {
			d, ok := denseOf[l.Atom()]
			if !ok {
				d = nDense
				denseOf[l.Atom()] = d
				nDense++
			}
			dl := 2 * d
			if !l.IsPos() {
				dl++
			}
			dc[i] = dl
		}
		slices.Sort(dc) // dense relabeling may reorder within the clause
		clauses = append(clauses, dc)
	}
	slices.SortFunc(clauses, slices.Compare)
	clauses = slices.CompactFunc(clauses, slices.Equal[[]int])
	for _, c := range clauses {
		lits += len(c)
	}
	return normalized{clauses: clauses, n: nDense, lits: lits}
}

// Fingerprint computes a cheap isomorphism-invariant structural hash of
// a query: the hash of the normalized clause-size multiset combined
// with the sorted multiset of per-variable occurrence profiles (the
// degree/polarity signature each variable would seed the full
// refinement with). Isomorphic CNFs always fingerprint equally —
// queries with equal canonical Keys have equal fingerprints — while
// unequal classes may rarely collide, which costs only a detour
// through full canonicalization, never correctness. It also returns
// the normalized literal count (the retention-bound measure, itself
// class-invariant). Fingerprint does no refinement or branching: one
// pass plus small sorts.
func Fingerprint(nVars int, cnf logic.CNF) (fp uint64, lits int) {
	_ = nVars // unused variables never influence the structural class
	nm := normalize(cnf)
	occ := make([][]uint64, nm.n)
	for _, c := range nm.clauses {
		for _, dl := range c {
			occ[dl>>1] = append(occ[dl>>1], mix(uint64(len(c)), uint64(dl&1)))
		}
	}
	vsig := make([]uint64, nm.n)
	for v := range vsig {
		slices.Sort(occ[v])
		vsig[v] = hashSeq(0x9e3779b97f4a7c15, occ[v])
	}
	slices.Sort(vsig) // multiset: renaming-invariant
	return hashSeq(mix(uint64(nm.n), uint64(len(nm.clauses))), vsig), nm.lits
}

// RawKey is the exact query fingerprint (Canon.Raw) computed without
// the canonical labeling: variable count and clause sequence verbatim.
func RawKey(nVars int, cnf logic.CNF) string {
	return rawFingerprint(nVars, cnf)
}

// canonState is the working state of the canonical-labeling search
// over one normalized clause set.
type canonState struct {
	clauses [][]int // dense literals 2v / 2v+1, lit-sorted, clause-deduped
	n       int     // dense variable count
	budget  int     // remaining complete labelings to try
	best    []byte  // lexicographically smallest serialization so far
}

// initialSigs seeds every variable's signature with its occurrence
// profile: the sorted multiset of (clause length, polarity) pairs.
func (st *canonState) initialSigs() []uint64 {
	occ := make([][]uint64, st.n)
	for _, c := range st.clauses {
		for _, dl := range c {
			occ[dl>>1] = append(occ[dl>>1], mix(uint64(len(c)), uint64(dl&1)))
		}
	}
	sig := make([]uint64, st.n)
	for v := range sig {
		slices.Sort(occ[v])
		sig[v] = hashSeq(0x9e3779b97f4a7c15, occ[v])
	}
	return sig
}

// refine iterates signature refinement in place until the number of
// distinct signatures stops growing (an equitable-partition fixpoint
// up to hashing).
func (st *canonState) refine(sig []uint64) {
	if st.n == 0 {
		return
	}
	distinct := countDistinct(sig)
	clauseSig := make([]uint64, len(st.clauses))
	occ := make([][]uint64, st.n)
	for round := 0; round < st.n; round++ {
		if distinct == st.n {
			return
		}
		for ci, c := range st.clauses {
			lits := make([]uint64, len(c))
			for i, dl := range c {
				lits[i] = mix(sig[dl>>1], uint64(dl&1))
			}
			slices.Sort(lits)
			clauseSig[ci] = hashSeq(uint64(len(c)), lits)
		}
		for v := range occ {
			occ[v] = occ[v][:0]
		}
		for ci, c := range st.clauses {
			for _, dl := range c {
				occ[dl>>1] = append(occ[dl>>1], mix(clauseSig[ci], uint64(dl&1)))
			}
		}
		for v := 0; v < st.n; v++ {
			slices.Sort(occ[v])
			sig[v] = hashSeq(sig[v], occ[v])
		}
		next := countDistinct(sig)
		if next == distinct {
			return
		}
		distinct = next
	}
}

// search branches over the members of the first ambiguous signature
// class (individualization–refinement), keeping the lexicographically
// smallest serialized labeling in st.best. depth tags the
// individualization marker so nested branches stay distinguishable.
func (st *canonState) search(sig []uint64, depth int) {
	class := st.firstAmbiguousClass(sig)
	if class == nil {
		st.budget--
		st.offer(st.serializeWith(sig))
		return
	}
	for _, v := range class {
		if st.budget <= 0 {
			return
		}
		child := slices.Clone(sig)
		child[v] = mix(child[v], 0xd1342543de82ef95+uint64(depth))
		st.refine(child)
		st.search(child, depth+1)
	}
}

// firstAmbiguousClass returns the dense ids sharing the smallest
// non-unique signature value, or nil when all signatures are distinct.
// The choice is renaming-invariant (it depends only on signature
// values).
func (st *canonState) firstAmbiguousClass(sig []uint64) []int {
	counts := make(map[uint64]int, len(sig))
	for _, s := range sig {
		counts[s]++
	}
	bestSig, found := uint64(0), false
	for s, c := range counts {
		if c > 1 && (!found || s < bestSig) {
			bestSig, found = s, true
		}
	}
	if !found {
		return nil
	}
	var class []int
	for v, s := range sig {
		if s == bestSig {
			class = append(class, v)
		}
	}
	return class
}

// offer keeps cand if it beats the current best serialization.
func (st *canonState) offer(cand []byte) {
	if st.best == nil || bytes.Compare(cand, st.best) < 0 {
		st.best = cand
	}
}

// serializeWith ranks variables by (signature, dense id), rewrites the
// clause set under that renaming, sorts and deduplicates it, and
// serializes the result. When all signatures are distinct the dense-id
// tiebreak is never consulted and the output is renaming-invariant.
func (st *canonState) serializeWith(sig []uint64) []byte {
	order := make([]int, st.n)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(i, j int) int {
		if sig[i] != sig[j] {
			if sig[i] < sig[j] {
				return -1
			}
			return 1
		}
		return i - j
	})
	rank := make([]int, st.n)
	for r, v := range order {
		rank[v] = r
	}
	canon := make([][]int, len(st.clauses))
	for ci, c := range st.clauses {
		nc := make([]int, len(c))
		for i, dl := range c {
			nc[i] = 2*rank[dl>>1] + dl&1
		}
		slices.Sort(nc)
		canon[ci] = nc
	}
	slices.SortFunc(canon, slices.Compare)
	canon = slices.CompactFunc(canon, slices.Equal[[]int])

	buf := make([]byte, 0, 16+4*len(canon))
	buf = binary.AppendUvarint(buf, uint64(len(canon)))
	for _, c := range canon {
		buf = binary.AppendUvarint(buf, uint64(len(c)))
		for _, l := range c {
			buf = binary.AppendUvarint(buf, uint64(l))
		}
	}
	return buf
}

// rawFingerprint serializes the query exactly as posed: variable count
// and clause sequence verbatim.
func rawFingerprint(nVars int, cnf logic.CNF) string {
	buf := make([]byte, 0, 16+4*len(cnf))
	buf = binary.AppendUvarint(buf, uint64(nVars))
	buf = binary.AppendUvarint(buf, uint64(len(cnf)))
	for _, c := range cnf {
		buf = binary.AppendUvarint(buf, uint64(len(c)))
		for _, l := range c {
			buf = binary.AppendUvarint(buf, uint64(l))
		}
	}
	return string(buf)
}

func countDistinct(sig []uint64) int {
	seen := make(map[uint64]struct{}, len(sig))
	for _, s := range sig {
		seen[s] = struct{}{}
	}
	return len(seen)
}

// mix combines two words (splitmix64-style finalizer over their sum).
func mix(a, b uint64) uint64 {
	z := a + 0x9e3779b97f4a7c15 + b
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashSeq folds a seed and a word sequence into one word.
func hashSeq(seed uint64, words []uint64) uint64 {
	h := mix(seed, uint64(len(words)))
	for _, w := range words {
		h = mix(h, w)
	}
	return h
}
