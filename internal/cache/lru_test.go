package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestLRUCapacityAndEviction(t *testing.T) {
	c := New(shardCount) // one entry per shard
	var keys []Key
	for i := 0; i < 10*shardCount; i++ {
		k := Key(fmt.Sprintf("key-%d", i))
		keys = append(keys, k)
		c.Put(k, Entry{Sat: i%2 == 0, Raw: string(k)})
	}
	if got := c.Len(); got > shardCount {
		t.Fatalf("cache over capacity: %d entries, cap %d", got, shardCount)
	}
	st := c.Stats()
	if st.Insertions != int64(len(keys)) {
		t.Errorf("insertions = %d, want %d", st.Insertions, len(keys))
	}
	if st.Evictions != st.Insertions-int64(st.Entries) {
		t.Errorf("evictions %d inconsistent with insertions %d and entries %d",
			st.Evictions, st.Insertions, st.Entries)
	}
	// Whatever survived must round-trip unchanged.
	found := 0
	for i, k := range keys {
		if e, ok := c.Get(k); ok {
			found++
			if e.Raw != string(k) || e.Sat != (i%2 == 0) {
				t.Fatalf("entry for %q corrupted", k)
			}
		}
	}
	if found != c.Len() {
		t.Errorf("found %d entries by Get, Len reports %d", found, c.Len())
	}
}

func TestLRUPromotionOnGet(t *testing.T) {
	c := New(shardCount) // one entry per shard ⇒ per-shard LRU order is total
	// Two keys landing in the same shard: insert a, insert b evicts a
	// unless a was promoted... with cap 1 per shard any second key in
	// the shard evicts the first, so exercise promotion with cap 2.
	c = New(2 * shardCount)
	// Find three keys in one shard.
	target := c.shardFor(Key("probe"))
	var same []Key
	for i := 0; len(same) < 3; i++ {
		k := Key(fmt.Sprintf("p-%d", i))
		if c.shardFor(k) == target {
			same = append(same, k)
		}
	}
	a, b, d := same[0], same[1], same[2]
	c.Put(a, Entry{Raw: "a"})
	c.Put(b, Entry{Raw: "b"})
	if _, ok := c.Get(a); !ok { // promote a over b
		t.Fatal("a missing before promotion")
	}
	c.Put(d, Entry{Raw: "d"}) // must evict b, the LRU
	if _, ok := c.Get(b); ok {
		t.Error("b survived although it was least recently used")
	}
	if _, ok := c.Get(a); !ok {
		t.Error("a evicted although it was promoted by Get")
	}
	if _, ok := c.Get(d); !ok {
		t.Error("d missing right after insertion")
	}
}

// TestLRUConcurrentHammer drives the sharded LRU from many goroutines
// with overlapping key sets. Run under -race (the CI race job does) it
// is the data-race probe for the shard locking; in any mode it checks
// that entries never cross keys: the entry stored under k always
// carries k's own fingerprint.
func TestLRUConcurrentHammer(t *testing.T) {
	c := New(256)
	const (
		goroutines = 8
		ops        = 4000
		keySpace   = 512
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < ops; i++ {
				id := rng.Intn(keySpace)
				k := Key(fmt.Sprintf("key-%d", id))
				if rng.Intn(2) == 0 {
					c.Put(k, Entry{Sat: id%2 == 0, Raw: string(k)})
				} else if e, ok := c.Get(k); ok {
					if e.Raw != string(k) || e.Sat != (id%2 == 0) {
						t.Errorf("entry under %q carries foreign payload %q", k, e.Raw)
						return
					}
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	if c.Len() > 256 {
		t.Errorf("cache over capacity after hammer: %d", c.Len())
	}
}
