package serve

import (
	"encoding/json"
	"net/http"

	"disjunct/internal/keyspace"
	"disjunct/internal/session"
	"disjunct/internal/store"
)

// Cluster handoff endpoints. A draining worker's warm state — compiled
// artifacts and completed verdict memos — is exported by the router
// and imported into the ring successors before the ring flips, so a
// graceful departure costs the cluster no recomputation. Both
// endpoints are cluster-internal: they exist on every worker but are
// only called by the router's drain orchestration.
//
// Export keeps working while the worker is draining (that is exactly
// when the router calls it): it flushes the store first so the
// snapshot includes every write-behind, then dumps the session layer.
// Import is refused during drain — a departing worker must not accept
// state it is about to discard.

// HandoffImportResponse reports what an import accepted.
type HandoffImportResponse struct {
	Artifacts int `json:"artifacts"`
	Verdicts  int `json:"verdicts"`
	Estimates int `json:"estimates,omitempty"`
}

func (s *Server) handleHandoffExport(w http.ResponseWriter, r *http.Request) {
	if s.sessions == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: ReasonBadRequest, Detail: "session layer disabled; nothing to hand off",
		})
		return
	}
	// ?ranges=lo-hi,lo-hi (hex) restricts the export to a keyspace
	// slice — the warm-join path, where a donor ships only the arcs the
	// joining node will own. The slice membership test hashes the same
	// raw fingerprint the router routes on, so donor and router agree
	// exactly on which keys move. A malformed slice is a typed 400,
	// never a guess: exporting the wrong slice would silently violate
	// the join's zero-cold-compile contract.
	var ranges keyspace.Ranges
	if raw := r.URL.Query().Get("ranges"); raw != "" {
		var err error
		ranges, err = keyspace.ParseRanges(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: ReasonBadRequest, Detail: err.Error(),
			})
			return
		}
	}
	if s.store != nil {
		s.store.Flush()
	}
	h := s.sessions.Export()
	if s.planner != nil {
		// The planner's calibrated cost model rides the same handoff:
		// estimates keyed by the fingerprint the ring routes on, so the
		// successor starts with the departing worker's cost knowledge
		// instead of re-learning every hot key cold.
		for _, e := range s.planner.Export() {
			h.Estimates = append(h.Estimates, session.HandoffEstimate{
				Raw: e.Raw, Sem: e.Sem,
				Count: e.Count, SumNP: e.SumNP,
				SumConfl: e.SumConfl, SumMicros: e.SumMicros,
			})
		}
	}
	if ranges != nil {
		filtered := session.Handoff{}
		for _, a := range h.Artifacts {
			if ranges.ContainsKey(a.Raw) {
				filtered.Artifacts = append(filtered.Artifacts, a)
			}
		}
		for _, v := range h.Verdicts {
			if ranges.ContainsKey(v.Raw) {
				filtered.Verdicts = append(filtered.Verdicts, v)
			}
		}
		for _, e := range h.Estimates {
			if ranges.ContainsKey(e.Raw) {
				filtered.Estimates = append(filtered.Estimates, e)
			}
		}
		h = filtered
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleHandoffImport(w http.ResponseWriter, r *http.Request) {
	if s.sessions == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: ReasonBadRequest, Detail: "session layer disabled; cannot import",
		})
		return
	}
	if s.draining.Load() {
		s.stats.shedDraining.Add(1)
		writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
		return
	}
	var h session.Handoff
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	if err := dec.Decode(&h); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ReasonBadRequest, Detail: "body: " + err.Error()})
		return
	}
	arts, verds := s.sessions.Import(h)
	ests := 0
	if s.planner != nil && len(h.Estimates) > 0 {
		list := make([]store.Estimate, 0, len(h.Estimates))
		for _, e := range h.Estimates {
			list = append(list, store.Estimate{
				Raw: e.Raw, Sem: e.Sem,
				Count: e.Count, SumNP: e.SumNP,
				SumConfl: e.SumConfl, SumMicros: e.SumMicros,
			})
		}
		ests = s.planner.Import(list)
	}
	writeJSON(w, http.StatusOK, HandoffImportResponse{Artifacts: arts, Verdicts: verds, Estimates: ests})
}
