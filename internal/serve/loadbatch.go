package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"time"

	"disjunct/internal/db"
	"disjunct/internal/gen"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
)

// Batch replay and stream verification: the client-side halves of the
// /v1/batch and /v1/models/stream contracts. RunBatchReplay regroups a
// seeded hot-DB workload into batches and requires every per-query
// outcome to be typed and (under Verify) verdict-identical to a direct
// library call; RunStreamCheck consumes whole NDJSON streams and
// requires the streamed model sets to be set-identical to buffered
// library enumeration with a typed terminal record. Both feed the
// smoke harness, which hard-fails on a single untyped or divergent
// outcome.

// BatchReport is the outcome breakdown of one batch replay.
type BatchReport struct {
	Batches    int            `json:"batches"`
	Queries    int            `json:"queries"`
	Completed  int            `json:"completed"`
	Incomplete int            `json:"incomplete"`
	Errored    int            `json:"errored"` // typed per-query error entries
	Untyped    int            `json:"untyped"`
	Divergent  int            `json:"divergent"`
	CompileMS  float64        `json:"compile_ms_total"`
	ByCause    map[string]int `json:"by_cause"`
	Notes      []string       `json:"notes,omitempty"`
}

// Clean reports whether the replay satisfied the batch contract.
func (r BatchReport) Clean() bool { return r.Untyped == 0 && r.Divergent == 0 }

func (r BatchReport) String() string {
	return fmt.Sprintf("batches=%d queries=%d completed=%d incomplete=%d errored=%d untyped=%d divergent=%d",
		r.Batches, r.Queries, r.Completed, r.Incomplete, r.Errored, r.Untyped, r.Divergent)
}

// knownBatchErrorReasons is the closed set a BatchItem.Error may carry.
var knownBatchErrorReasons = map[string]bool{
	ReasonBadRequest:       true,
	ReasonUnknownSemantics: true,
	ReasonUnsupported:      true,
	ReasonNotStratifiable:  true,
	ShedBreakerOpen:        true,
}

// RunBatchReplay generates the same seeded workload RunLoad would,
// groups it by database text, and replays each group through /v1/batch
// in chunks of batchSize. Requires HotDBs-style repetition to be
// meaningful — a zero cfg.HotDBs is bumped to 4.
func RunBatchReplay(cfg LoadConfig, batchSize int) BatchReport {
	if cfg.MaxAtoms < 2 {
		cfg.MaxAtoms = 5
	}
	if cfg.HotDBs <= 0 {
		cfg.HotDBs = 4
	}
	if batchSize <= 0 {
		batchSize = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	jobs := genJobs(cfg)
	client := &http.Client{Timeout: cfg.Timeout}
	rep := BatchReport{ByCause: map[string]int{}}
	note := func(format string, args ...any) {
		if len(rep.Notes) < 5 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(format, args...))
		}
	}

	// Group by database text in first-appearance order, then chunk.
	order := []string{}
	groups := map[string][]loadJob{}
	for _, j := range jobs {
		if _, seen := groups[j.dbText]; !seen {
			order = append(order, j.dbText)
		}
		groups[j.dbText] = append(groups[j.dbText], j)
	}
	for _, dbText := range order {
		g := groups[dbText]
		for lo := 0; lo < len(g); lo += batchSize {
			hi := lo + batchSize
			if hi > len(g) {
				hi = len(g)
			}
			chunk := g[lo:hi]
			breq := BatchRequest{DB: dbText, Limits: cfg.Limits}
			for _, j := range chunk {
				breq.Queries = append(breq.Queries, BatchQuery{
					Kind: j.kind, Semantics: j.sem, Literal: j.literal, Formula: j.formula,
				})
			}
			rep.Batches++
			rep.Queries += len(chunk)
			body, _ := json.Marshal(breq)
			resp, err := client.Post(cfg.BaseURL+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				rep.Untyped += len(chunk)
				note("batch transport error: %v", err)
				continue
			}
			var br BatchResponse
			decodeErr := json.NewDecoder(resp.Body).Decode(&br)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || decodeErr != nil {
				rep.Untyped += len(chunk)
				note("batch status %d decode err %v", resp.StatusCode, decodeErr)
				continue
			}
			rep.CompileMS += br.CompileMS
			if len(br.Results) != len(chunk) {
				rep.Untyped += len(chunk)
				note("batch returned %d results for %d queries", len(br.Results), len(chunk))
				continue
			}
			for i, item := range br.Results {
				job := chunk[i]
				switch {
				case item.Error != nil:
					if !knownBatchErrorReasons[item.Error.Error] {
						rep.Untyped++
						note("untyped batch error %q for %s %s", item.Error.Error, job.sem, job.kind)
						continue
					}
					rep.Errored++
				case item.Response == nil:
					rep.Untyped++
					note("batch item %d has neither response nor error", i)
				case item.Response.Incomplete:
					if !KnownCauseCodes[item.Response.CauseCode] {
						rep.Untyped++
						note("untyped batch cause %q", item.Response.CauseCode)
						continue
					}
					rep.Incomplete++
					rep.ByCause[item.Response.CauseCode]++
				default:
					rep.Completed++
					if cfg.Verify {
						want, refErr := referenceVerdict(job)
						if refErr != nil {
							rep.Untyped++
							note("reference error for %s %s: %v", job.sem, job.kind, refErr)
						} else if want != item.Response.Holds {
							rep.Divergent++
							note("batch %s %s on %q: served=%v direct=%v",
								job.sem, job.kind, job.literal+job.formula, item.Response.Holds, want)
						}
					}
				}
			}
		}
	}
	return rep
}

// StreamReport is the outcome breakdown of one stream verification run.
type StreamReport struct {
	Streams   int            `json:"streams"`
	Models    int            `json:"models"`
	ByCause   map[string]int `json:"by_cause"`
	Untyped   int            `json:"untyped"`
	Divergent int            `json:"divergent"`
	Notes     []string       `json:"notes,omitempty"`
}

// Clean reports whether every stream terminated typed with the right
// model set.
func (r StreamReport) Clean() bool { return r.Untyped == 0 && r.Divergent == 0 }

func (r StreamReport) String() string {
	return fmt.Sprintf("streams=%d models=%d untyped=%d divergent=%d causes=%v",
		r.Streams, r.Models, r.Untyped, r.Divergent, r.ByCause)
}

// RunStreamCheck opens n streams over seeded random databases —
// alternating all-models/minimal and serial/parallel enumerators — and
// verifies each streamed model set against a direct buffered library
// enumeration of the same database. Budget-interrupted streams count
// as typed outcomes but skip the set comparison (a prefix proves
// nothing); complete streams must match exactly.
func RunStreamCheck(cfg LoadConfig, n int) StreamReport {
	if cfg.MaxAtoms < 2 {
		cfg.MaxAtoms = 5
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	client := &http.Client{Timeout: cfg.Timeout}
	rep := StreamReport{ByCause: map[string]int{}}
	note := func(format string, args ...any) {
		if len(rep.Notes) < 5 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(format, args...))
		}
	}

	for i := 0; i < n; i++ {
		atoms := 2 + rng.Intn(cfg.MaxAtoms-1)
		var d *db.DB
		for {
			g := gen.Random(rng, gen.Positive(atoms, 1+rng.Intn(2*atoms)))
			if rt, err := db.Parse(g.String()); err == nil && rt.N() > 0 {
				d = rt
				break
			}
		}
		kind := "models"
		if i%2 == 1 {
			kind = "minimal"
		}
		parallel := i%4 >= 2
		rep.Streams++

		body, _ := json.Marshal(StreamRequest{DB: d.String(), Kind: kind, Parallel: parallel, Limits: cfg.Limits})
		resp, err := client.Post(cfg.BaseURL+"/v1/models/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			rep.Untyped++
			note("stream transport error: %v", err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			rep.Untyped++
			note("stream status %d", resp.StatusCode)
			resp.Body.Close()
			continue
		}
		var rows []string
		var done StreamDoneRow
		sawDone, lineErr := false, false
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			var line StreamLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				lineErr = true
				note("stream line does not parse: %v", err)
				break
			}
			if line.Done {
				sawDone = true
				_ = json.Unmarshal(sc.Bytes(), &done)
				continue
			}
			sorted := append([]string(nil), line.Model...)
			sort.Strings(sorted)
			rows = append(rows, strings.Join(sorted, ","))
		}
		resp.Body.Close()
		if lineErr || !sawDone || !KnownStreamCauses[done.Cause] {
			rep.Untyped++
			if !lineErr {
				note("stream ended sawDone=%v cause=%q", sawDone, done.Cause)
			}
			continue
		}
		rep.Models += done.Count
		rep.ByCause[done.Cause]++
		if done.Count != len(rows) {
			rep.Divergent++
			note("stream counted %d but emitted %d rows", done.Count, len(rows))
			continue
		}
		if done.Cause != StreamCauseComplete {
			continue // typed interruption: a prefix can't be set-compared
		}
		want := bufferedModelKeys(d, kind)
		sort.Strings(rows)
		sort.Strings(want)
		if strings.Join(rows, ";") != strings.Join(want, ";") {
			rep.Divergent++
			note("stream %s parallel=%v: %d streamed models != %d library models", kind, parallel, len(rows), len(want))
		}
	}
	return rep
}

// bufferedModelKeys enumerates d's (minimal) models with a direct
// library call and returns sorted-atom keys.
func bufferedModelKeys(d *db.DB, kind string) []string {
	eng := models.NewEngine(d, oracle.NewNP())
	var keys []string
	collect := func(m logic.Interp) bool {
		var atoms []string
		for v := 0; v < d.N(); v++ {
			if m.Holds(logic.Atom(v)) {
				atoms = append(atoms, d.Voc.Name(logic.Atom(v)))
			}
		}
		sort.Strings(atoms)
		keys = append(keys, strings.Join(atoms, ","))
		return true
	}
	if kind == "minimal" {
		eng.MinimalModels(0, collect)
	} else {
		eng.EnumerateModels(0, collect)
	}
	return keys
}
