package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/faults"
	"disjunct/internal/oracle"

	_ "disjunct/internal/semantics/all"
)

// post sends one query and returns the status and raw body.
func post(t *testing.T, ts *httptest.Server, path string, req QueryRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

func decodeQueryResponse(t *testing.T, data []byte) QueryResponse {
	t.Helper()
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatalf("200 body does not parse as QueryResponse (partial body?): %v\n%s", err, data)
	}
	return qr
}

func decodeErrorResponse(t *testing.T, data []byte) ErrorResponse {
	t.Helper()
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatalf("error body does not parse as ErrorResponse (partial body?): %v\n%s", err, data)
	}
	return er
}

// directVerdict answers the same query with a plain library call.
func directVerdict(t *testing.T, semName, dbText, literal string) bool {
	t.Helper()
	d, err := db.Parse(dbText)
	if err != nil {
		t.Fatal(err)
	}
	sem, ok := core.New(semName, core.Options{Oracle: oracle.NewNP()})
	if !ok {
		t.Fatalf("semantics %q not registered", semName)
	}
	lit, err := parseLiteral(literal, d.Voc)
	if err != nil {
		t.Fatal(err)
	}
	holds, err := sem.InferLiteral(d, lit)
	if err != nil {
		t.Fatalf("direct %s call: %v", semName, err)
	}
	return holds
}

func TestServeBasicVerdictsMatchLibrary(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		sem, db, lit string
		wantOracle   bool // semantics known to consult the NP oracle here
	}{
		{"GCWA", "a | b.", "-a", true},
		{"GCWA", "a.", "a", true},
		{"CWA", "a. b :- a.", "b", true},
		{"EGCWA", "a | b. a | c.", "-b", true},
		{"DDR", "a | b.", "-a", false}, // DDR answers syntactically
		{"PWS", "a | b. c.", "c", false},
		{"DSM", "a :- not b.", "a", false},
		{"PERF", "a | b.", "-a", false},
	}
	for _, tc := range cases {
		status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: tc.sem, DB: tc.db, Literal: tc.lit})
		if status != http.StatusOK {
			t.Fatalf("%s %q ⊢ %q: status %d body %s", tc.sem, tc.db, tc.lit, status, body)
		}
		qr := decodeQueryResponse(t, body)
		if qr.Incomplete {
			t.Fatalf("%s %q ⊢ %q: unexpectedly incomplete (%s)", tc.sem, tc.db, tc.lit, qr.CauseCode)
		}
		want := directVerdict(t, tc.sem, tc.db, tc.lit)
		if qr.Holds != want {
			t.Fatalf("%s %q ⊢ %q: served %v, direct library call %v", tc.sem, tc.db, tc.lit, qr.Holds, want)
		}
		if tc.wantOracle && qr.Counters.NPCalls == 0 && qr.Counters.Sigma2Calls == 0 {
			t.Fatalf("%s: response carries no oracle counters", tc.sem)
		}
	}
}

func TestServeTypedRejections(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Unknown semantics → typed 404.
	status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "NOPE", DB: "a.", Literal: "a"})
	if er := decodeErrorResponse(t, body); status != http.StatusNotFound || er.Error != ReasonUnknownSemantics {
		t.Fatalf("unknown semantics: status=%d error=%q", status, er.Error)
	}
	// Malformed db → typed 400.
	status, body = post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a |", Literal: "a"})
	if er := decodeErrorResponse(t, body); status != http.StatusBadRequest || er.Error != ReasonBadRequest {
		t.Fatalf("bad db: status=%d error=%q", status, er.Error)
	}
	// Unknown atom in the literal → typed 400.
	status, body = post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a.", Literal: "z"})
	if er := decodeErrorResponse(t, body); status != http.StatusBadRequest || er.Error != ReasonBadRequest {
		t.Fatalf("unknown atom: status=%d error=%q", status, er.Error)
	}
	// Non-stratifiable db under ICWA → typed 422.
	status, body = post(t, ts, "/v1/model", QueryRequest{Semantics: "ICWA", DB: "a :- not b. b :- not a."})
	if er := decodeErrorResponse(t, body); status != http.StatusUnprocessableEntity || er.Error != ReasonNotStratifiable {
		t.Fatalf("non-stratifiable: status=%d error=%q", status, er.Error)
	}
	// Negation under DDR → typed 422 unsupported.
	status, body = post(t, ts, "/v1/model", QueryRequest{Semantics: "DDR", DB: "a :- not b."})
	if er := decodeErrorResponse(t, body); status != http.StatusUnprocessableEntity || er.Error != ReasonUnsupported {
		t.Fatalf("DDR with negation: status=%d error=%q", status, er.Error)
	}
}

func TestServeBudgetClampAndTypedInterruption(t *testing.T) {
	// Server ceiling of 1 NP call: any real query trips the budget and
	// must come back as a typed incomplete, with the clamped limits
	// echoed in the response.
	srv := New(Config{Ceilings: budget.Limits{NPCalls: 1}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := post(t, ts, "/v1/infer/literal", QueryRequest{
		Semantics: "GCWA", DB: "a | b. b | c. c | a.", Literal: "-a",
		Limits: LimitsJSON{NPCalls: 1 << 40}, // huge ask, must be clamped
	})
	if status != http.StatusOK {
		t.Fatalf("status %d body %s", status, body)
	}
	qr := decodeQueryResponse(t, body)
	if !qr.Incomplete {
		t.Fatalf("verdict complete under a 1-NP-call ceiling: %s", body)
	}
	if qr.Verdict != "incomplete" || qr.CauseCode != CauseNPCallBudget {
		t.Fatalf("verdict=%q cause=%q, want incomplete/np_call_budget", qr.Verdict, qr.CauseCode)
	}
	if qr.Limits.NPCalls != 1 {
		t.Fatalf("response limits.np_calls = %d, want clamped 1", qr.Limits.NPCalls)
	}
	if !KnownCauseCodes[qr.CauseCode] {
		t.Fatalf("cause code %q not in the closed taxonomy", qr.CauseCode)
	}
}

func TestClampPerDimension(t *testing.T) {
	ceiling := budget.Limits{Conflicts: 100, NPCalls: 10, Deadline: time.Second}
	cases := []struct {
		ask  budget.Limits
		want budget.Limits
	}{
		// No ask: ceilings apply wholesale.
		{budget.Limits{}, budget.Limits{Conflicts: 100, NPCalls: 10, Deadline: time.Second}},
		// Ask below ceilings: honored.
		{budget.Limits{Conflicts: 7, NPCalls: 3, Deadline: time.Millisecond, Propagations: 5},
			budget.Limits{Conflicts: 7, NPCalls: 3, Deadline: time.Millisecond, Propagations: 5}},
		// Ask above ceilings: clamped.
		{budget.Limits{Conflicts: 1e6, NPCalls: 1e6, Deadline: time.Hour},
			budget.Limits{Conflicts: 100, NPCalls: 10, Deadline: time.Second}},
	}
	for i, tc := range cases {
		if got := clamp(tc.ask, ceiling); got != tc.want {
			t.Fatalf("case %d: clamp = %+v, want %+v", i, got, tc.want)
		}
	}
	// No ceilings at all: asks pass through.
	ask := budget.Limits{Conflicts: 42}
	if got := clamp(ask, budget.Limits{}); got != ask {
		t.Fatalf("clamp with no ceilings = %+v, want %+v", got, ask)
	}
}

func TestParseLiteralForms(t *testing.T) {
	d, err := db.Parse("a. foo.")
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []string{"a", "-a", "~a", "not a", " -a ", "foo", "-foo"} {
		if _, err := parseLiteral(in, d.Voc); err != nil {
			t.Fatalf("parseLiteral(%q): %v", in, err)
		}
	}
	for _, in := range []string{"", "-", "z", "not  "} {
		if _, err := parseLiteral(in, d.Voc); err == nil {
			t.Fatalf("parseLiteral(%q) unexpectedly succeeded", in)
		}
	}
	lit, _ := parseLiteral("-a", d.Voc)
	if lit.IsPos() {
		t.Fatal("-a parsed as positive")
	}
}

func TestCauseCodeTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{budget.ErrCanceled, CauseCanceled},
		{budget.ErrDeadline, CauseDeadline},
		{budget.ErrConflictBudget, CauseConflictBudget},
		{budget.ErrPropagationBudget, CausePropagationBudget},
		{budget.ErrNPCallBudget, CauseNPCallBudget},
		// ErrExhausted wraps both ErrTransient and ErrCanceled; the
		// transient code must win.
		{faults.ErrExhausted, CauseTransientExhausted},
		{faults.ErrInjectedCancel, CauseCanceled},
		{errors.New("mystery"), ""},
	}
	for _, tc := range cases {
		if got := CauseCode(tc.err); got != tc.want {
			t.Fatalf("CauseCode(%v) = %q, want %q", tc.err, got, tc.want)
		}
		if tc.want != "" && !KnownCauseCodes[tc.want] {
			t.Fatalf("%q missing from KnownCauseCodes", tc.want)
		}
	}
}

// TestServeShedsTypedUnderOverload is acceptance criterion (a): with
// capacity 1+1 and both slots held, every further request sheds with a
// typed 429 + Retry-After and a fully-formed JSON body.
func TestServeShedsTypedUnderOverload(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	hold := make(chan struct{})
	srv.testHook = func() { <-hold }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"}
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, body := post(t, ts, "/v1/infer/literal", req)
			results <- result{status, body}
		}()
	}
	// One executing (parked in the hook), one queued.
	waitFor(t, func() bool { q, _, _ := srv.adm.depth(); return q == 2 })

	for i := 0; i < 5; i++ {
		body, _ := json.Marshal(req)
		resp, err := ts.Client().Post(ts.URL+"/v1/infer/literal", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("shed request %d: transport error %v", i, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("shed request %d: status %d body %s, want 429", i, resp.StatusCode, data)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("shed request %d: missing Retry-After header", i)
		}
		if er := decodeErrorResponse(t, data); er.Error != ShedQueueFull {
			t.Fatalf("shed request %d: error=%q, want %q", i, er.Error, ShedQueueFull)
		}
	}

	// Release the held slots: both parked requests must complete with
	// correct verdicts — shedding never corrupts admitted work.
	close(hold)
	want := directVerdict(t, "GCWA", "a | b.", "-a")
	for i := 0; i < 2; i++ {
		select {
		case res := <-results:
			if res.status != http.StatusOK {
				t.Fatalf("parked request: status %d body %s", res.status, res.body)
			}
			if qr := decodeQueryResponse(t, res.body); qr.Incomplete || qr.Holds != want {
				t.Fatalf("parked request verdict %s/%v, want complete %v", qr.Verdict, qr.Holds, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("parked request never completed")
		}
	}
	if got := srv.stats.shedQueueFull.Load(); got != 5 {
		t.Fatalf("shed_queue_full stat = %d, want 5", got)
	}
}

// TestServeDrainCompletesInFlight is acceptance criterion (b): work
// in flight when drain begins finishes with verdicts identical to
// direct library calls, while new arrivals shed with a typed 503 and
// /readyz goes unready.
func TestServeDrainCompletesInFlight(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2, QueueDepth: 2, DrainTimeout: 10 * time.Second})
	hold := make(chan struct{})
	srv.testHook = func() { <-hold }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := []QueryRequest{
		{Semantics: "GCWA", DB: "a | b.", Literal: "-a"},
		{Semantics: "EGCWA", DB: "a | b. a | c.", Literal: "-b"},
	}
	type result struct {
		status int
		body   []byte
		req    QueryRequest
	}
	results := make(chan result, len(queries))
	for _, q := range queries {
		q := q
		go func() {
			status, body := post(t, ts, "/v1/infer/literal", q)
			results <- result{status, body, q}
		}()
	}
	waitFor(t, func() bool { return srv.InFlight() == 2 })

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()
	waitFor(t, func() bool { return srv.Draining() })

	// New arrivals during the drain shed with the typed 503.
	status, body := post(t, ts, "/v1/infer/literal", queries[0])
	if er := decodeErrorResponse(t, body); status != http.StatusServiceUnavailable || er.Error != ShedDraining {
		t.Fatalf("request during drain: status=%d error=%q, want 503/%q", status, er.Error, ShedDraining)
	}
	// /readyz reports unready, /healthz stays serving.
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}

	// Let the in-flight work run: it must complete inside the drain
	// deadline with verdicts identical to direct library calls.
	close(hold)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v, want clean", err)
	}
	for range queries {
		res := <-results
		if res.status != http.StatusOK {
			t.Fatalf("in-flight request during drain: status %d body %s", res.status, res.body)
		}
		qr := decodeQueryResponse(t, res.body)
		if qr.Incomplete {
			t.Fatalf("in-flight request interrupted by clean drain: %s", res.body)
		}
		if want := directVerdict(t, res.req.Semantics, res.req.DB, res.req.Literal); qr.Holds != want {
			t.Fatalf("%s drained verdict %v, direct library call %v", res.req.Semantics, qr.Holds, want)
		}
	}
}

// TestServeForcedDrainInterruptsTyped: when in-flight work outlives
// the drain deadline, it is cancelled through the budget layer and
// still completes its HTTP exchange with a typed incomplete verdict.
func TestServeForcedDrainInterruptsTyped(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 1, DrainTimeout: 100 * time.Millisecond})
	// Park the request until the drain deadline forces base-context
	// cancellation — simulating a query too slow for the grace period.
	srv.testHook = func() { <-srv.baseCtx.Done() }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan QueryResponse, 1)
	go func() {
		status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"})
		if status != http.StatusOK {
			t.Errorf("forced-drain straggler: status %d body %s", status, body)
		}
		done <- decodeQueryResponse(t, body)
	}()
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	err := srv.Drain(context.Background())
	if !errors.Is(err, ErrDrainForced) {
		t.Fatalf("drain = %v, want ErrDrainForced", err)
	}
	select {
	case qr := <-done:
		if !qr.Incomplete {
			t.Fatalf("straggler completed?! %+v", qr)
		}
		if qr.CauseCode != CauseCanceled {
			t.Fatalf("straggler cause %q, want %q (typed budget cancel)", qr.CauseCode, CauseCanceled)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("straggler never finished its HTTP exchange")
	}
}

// TestServeGoroutinesSettleAfterDrain is acceptance criterion (c):
// after a burst with shedding and a drain, the goroutine count returns
// to its pre-burst baseline.
func TestServeGoroutinesSettleAfterDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srv := New(Config{MaxConcurrent: 2, QueueDepth: 2})
	ts := httptest.NewServer(srv.Handler())

	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a | b. b | c.", Literal: "-a"})
			switch status {
			case http.StatusOK:
				decodeQueryResponse(t, body)
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				decodeErrorResponse(t, body)
			default:
				t.Errorf("untyped status %d: %s", status, body)
			}
		}()
	}
	wg.Wait()
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain after burst: %v", err)
	}
	ts.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC() // nudge idle HTTP keep-alive and timer goroutines
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: baseline=%d now=%d", baseline, runtime.NumGoroutine())
}

// TestServeBreakerTripsAndRecovers drives the breaker through the
// HTTP layer: failures recorded for a semantics open its breaker
// (typed 503 breaker_open with Retry-After), the cooldown admits a
// probe, and a healthy probe closes the circuit again.
func TestServeBreakerTripsAndRecovers(t *testing.T) {
	srv := New(Config{Breaker: BreakerConfig{Threshold: 3, Cooldown: time.Minute}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	clk := &fakeClock{t: time.Unix(2000, 0)}
	br := srv.breakerFor("GCWA")
	br.now = clk.now

	// Infrastructure failures (as queryHandler would record them after
	// transient-exhausted responses) open the breaker.
	for i := 0; i < 3; i++ {
		br.record(true)
	}
	req := QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"}
	status, body := post(t, ts, "/v1/infer/literal", req)
	er := decodeErrorResponse(t, body)
	if status != http.StatusServiceUnavailable || er.Error != ShedBreakerOpen {
		t.Fatalf("open breaker: status=%d error=%q, want 503/%q", status, er.Error, ShedBreakerOpen)
	}
	if er.RetryAfterMS <= 0 {
		t.Fatalf("open breaker: retry_after_ms = %d, want > 0", er.RetryAfterMS)
	}
	// Other semantics are unaffected — the breaker is per-semantics.
	if status, _ := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "EGCWA", DB: "a | b.", Literal: "-a"}); status != http.StatusOK {
		t.Fatalf("EGCWA sheared by GCWA's breaker: status %d", status)
	}
	if got := srv.stats.shedBreaker.Load(); got != 1 {
		t.Fatalf("shed_breaker stat = %d, want 1", got)
	}

	// After the cooldown the next request is the half-open probe; it
	// succeeds (no fault injection) and closes the breaker.
	clk.advance(2 * time.Minute)
	status, body = post(t, ts, "/v1/infer/literal", req)
	if status != http.StatusOK {
		t.Fatalf("probe: status %d body %s", status, body)
	}
	if qr := decodeQueryResponse(t, body); qr.Incomplete {
		t.Fatalf("probe incomplete: %s", body)
	}
	if state, _ := br.snapshot(); state != "closed" {
		t.Fatalf("breaker after healthy probe: %s, want closed", state)
	}
	// And the circuit keeps serving.
	if status, _ = post(t, ts, "/v1/infer/literal", req); status != http.StatusOK {
		t.Fatalf("closed breaker: status %d", status)
	}
}

// TestServeHealthzShape checks the health document carries the queue,
// breaker, and counter fields the smoke harness relies on.
func TestServeHealthzShape(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if status, _ := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"}); status != http.StatusOK {
		t.Fatalf("warmup query: %d", status)
	}
	h, err := FetchHealth(ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("status %q", h.Status)
	}
	if h.Goroutines <= 0 {
		t.Fatal("healthz goroutines missing")
	}
	if h.Stats["completed"] != 1 {
		t.Fatalf("stats.completed = %d, want 1", h.Stats["completed"])
	}
	if _, ok := h.Breakers["GCWA"]; !ok {
		t.Fatal("healthz missing GCWA breaker state")
	}
}

// TestServeChaosTaxonomy runs the load generator against an in-process
// fault-injecting server: under seeded chaos every outcome must stay
// inside the typed taxonomy and every completed verdict must match the
// direct library call.
func TestServeChaosTaxonomy(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos load run")
	}
	srv := New(Config{MaxConcurrent: 2, QueueDepth: 2, FaultRate: 0.05, FaultSeed: 42, RetryMax: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep := RunLoad(LoadConfig{
		BaseURL:  ts.URL,
		Rate:     400,
		Requests: 120,
		Workers:  8,
		Seed:     9,
		MaxAtoms: 5,
		Verify:   true,
		Limits:   LimitsJSON{DeadlineMS: 10000},
	})
	if rep.Untyped > 0 {
		t.Fatalf("untyped outcomes under chaos: %d\n%v", rep.Untyped, rep.UntypedNotes)
	}
	if rep.Divergent > 0 {
		t.Fatalf("served verdicts diverged from library: %d\n%v", rep.Divergent, rep.DivergeNotes)
	}
	if rep.Completed == 0 {
		t.Fatal("no requests completed")
	}
	total := rep.Completed + rep.Incomplete + rep.Shed429 + rep.Shed503 + rep.Rejected
	if total != rep.Offered {
		t.Fatalf("outcome classes sum to %d, offered %d", total, rep.Offered)
	}
	for code := range rep.ByCause {
		if !KnownCauseCodes[code] {
			t.Fatalf("cause code %q outside the closed taxonomy", code)
		}
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
}

// TestServeAdmissionShedReturnsProbe is the regression test for the
// half-open probe leak: a request that claims a breaker's probe slot
// but is then shed by a full admission queue must return the slot, or
// the breaker stays wedged half-open and 503s that semantics forever.
func TestServeAdmissionShedReturnsProbe(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 1, Breaker: BreakerConfig{Threshold: 1, Cooldown: time.Second}})
	hold := make(chan struct{})
	srv.testHook = func() { <-hold }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Open GCWA's breaker directly and move past the cooldown with the
	// injectable clock, so the next GCWA request is the half-open probe.
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := srv.breakerFor("GCWA")
	b.now = clk.now
	b.record(true) // threshold 1: opens
	clk.advance(1100 * time.Millisecond)

	// Fill the exec slot and the single queue slot with requests for a
	// different semantics (its own breaker, unaffected).
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, _ := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "EGCWA", DB: "a | b. a | c.", Literal: "-b"})
			results <- status
		}()
	}
	waitFor(t, func() bool { q, _, _ := srv.adm.depth(); return q == 2 })

	// The probe-carrying GCWA request sheds on the full queue...
	status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"})
	if er := decodeErrorResponse(t, body); status != http.StatusTooManyRequests || er.Error != ShedQueueFull {
		t.Fatalf("probe request: status=%d error=%q, want 429/%q", status, er.Error, ShedQueueFull)
	}

	close(hold)
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Fatalf("holder request status %d", status)
		}
	}

	// ...and the probe slot must be free again: the next GCWA request
	// is admitted as the new probe and its success closes the breaker.
	status, body = post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"})
	if status != http.StatusOK {
		t.Fatalf("post-shed probe: status %d body %s (breaker wedged half-open?)", status, body)
	}
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatalf("breaker state = %q, want closed after successful probe", state)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServeClientGoneWhileQueued: a client that disconnects while its
// request is still queued is shed with the typed 499 client_gone —
// not miscounted as a queue-wait deadline shed.
func TestServeClientGoneWhileQueued(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 4})
	hold := make(chan struct{})
	srv.testHook = func() { <-hold }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	holder := make(chan int, 1)
	go func() {
		status, _ := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"})
		holder <- status
	}()
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	reqBody, err := json.Marshal(QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/infer/literal", bytes.NewReader(reqBody)).WithContext(ctx)
	rec := httptest.NewRecorder()
	served := make(chan struct{})
	go func() { defer close(served); srv.Handler().ServeHTTP(rec, req) }()
	waitFor(t, func() bool { _, w, _ := srv.adm.depth(); return w == 1 })
	cancel()
	<-served

	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if er := decodeErrorResponse(t, rec.Body.Bytes()); er.Error != ShedClientGone {
		t.Fatalf("error = %q, want %q", er.Error, ShedClientGone)
	}
	if got := srv.stats.shedClientGone.Load(); got != 1 {
		t.Fatalf("shed_client_gone = %d, want 1", got)
	}
	if got := srv.stats.shedQueueWait.Load(); got != 0 {
		t.Fatalf("shed_queue_wait = %d, want 0 (disconnect miscounted as deadline shed)", got)
	}
	close(hold)
	if status := <-holder; status != http.StatusOK {
		t.Fatalf("holder request status %d", status)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServeDrainIdempotent: Drain runs exactly once — concurrent and
// later calls wait for that same drain and return its stored result
// (a repeat call must not restart the grace period and report nil
// after the first drain was forced).
func TestServeDrainIdempotent(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 1, DrainTimeout: 100 * time.Millisecond})
	srv.testHook = func() { <-srv.baseCtx.Done() }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		status, body := post(t, ts, "/v1/infer/literal", QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"})
		if status != http.StatusOK {
			t.Errorf("straggler status %d body %s", status, body)
		}
	}()
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { errs <- srv.Drain(context.Background()) }()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrDrainForced) {
			t.Fatalf("concurrent drain %d = %v, want ErrDrainForced", i, err)
		}
	}
	// A later call returns the stored forced result; rerunning the body
	// on the now-idle server would wrongly report a clean nil drain.
	if err := srv.Drain(context.Background()); !errors.Is(err, ErrDrainForced) {
		t.Fatalf("repeat drain = %v, want stored ErrDrainForced", err)
	}
	<-finished
}

// TestConfigDefaults pins the derived defaults.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxConcurrent <= 0 || c.QueueDepth != 8*c.MaxConcurrent {
		t.Fatalf("defaults: %+v", c)
	}
	if c.DrainTimeout != 5*time.Second || c.Breaker.Threshold != 5 || c.Breaker.Cooldown != time.Second {
		t.Fatalf("defaults: %+v", c)
	}
	// Explicitly disabled breaker survives withDefaults.
	c2 := Config{Breaker: BreakerConfig{Threshold: -1}}.withDefaults()
	if c2.Breaker.Threshold != -1 {
		t.Fatalf("disabled breaker overridden: %+v", c2.Breaker)
	}
}

var _ = fmt.Sprintf // keep fmt imported if assertions change
