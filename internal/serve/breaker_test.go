package serve

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown})
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if ok, _, _ := b.allow(); !ok {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.record(true)
	}
	// A success resets the consecutive count.
	b.record(false)
	for i := 0; i < 2; i++ {
		b.record(true)
	}
	if ok, _, _ := b.allow(); !ok {
		t.Fatalf("breaker opened below threshold (2 consecutive after reset)")
	}
	b.record(true) // third consecutive failure
	ok, _, retryAfter := b.allow()
	if ok {
		t.Fatalf("breaker did not open at threshold")
	}
	if retryAfter <= 0 || retryAfter > time.Second {
		t.Fatalf("open breaker retryAfter = %v, want in (0, 1s]", retryAfter)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("closed breaker denied")
	}
	b.record(true)
	if ok, _, _ := b.allow(); ok {
		t.Fatal("breaker should be open")
	}
	clk.advance(1100 * time.Millisecond)
	// Cooldown over: exactly one probe is admitted.
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("half-open breaker denied the probe")
	}
	if ok, _, _ := b.allow(); ok {
		t.Fatal("second request admitted while probe in flight")
	}
	b.record(false) // probe succeeds
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("breaker did not close after successful probe")
	}
	if state, failures := b.snapshot(); state != "closed" || failures != 0 {
		t.Fatalf("snapshot = (%s, %d), want (closed, 0)", state, failures)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.record(true)
	clk.advance(1100 * time.Millisecond)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("probe denied")
	}
	b.record(true) // probe fails
	if state, _ := b.snapshot(); state != "open" {
		t.Fatalf("state after failed probe = %s, want open", state)
	}
	if ok, _, _ := b.allow(); ok {
		t.Fatal("reopened breaker admitted a request before cooldown")
	}
	// And it recovers again after another full cooldown.
	clk.advance(1100 * time.Millisecond)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("second probe denied")
	}
	b.record(false)
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state after second probe success = %s, want closed", state)
	}
}

// TestBreakerCancelProbeReleasesSlot is the regression test for the
// half-open probe leak: a request that claims the probe slot but is
// then shed at admission must return it via cancelProbe, or every
// later request sheds forever.
func TestBreakerCancelProbeReleasesSlot(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.record(true) // opens
	clk.advance(1100 * time.Millisecond)
	ok, probe, _ := b.allow()
	if !ok || !probe {
		t.Fatalf("allow after cooldown = (ok=%v, probe=%v), want probe admitted", ok, probe)
	}
	// Probe holder gets shed at admission (queue full / drain) and
	// reports back neither success nor failure.
	b.cancelProbe()
	// The slot must be claimable again — without cancelProbe this
	// sheds forever.
	ok, probe, _ = b.allow()
	if !ok || !probe {
		t.Fatalf("allow after cancelProbe = (ok=%v, probe=%v), want probe admitted", ok, probe)
	}
	b.record(false)
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state after re-probed success = %s, want closed", state)
	}
}

// TestBreakerCancelProbeOutsideHalfOpenHarmless: cancelProbe from a
// non-probe request (closed or open state) must not disturb the state
// machine.
func TestBreakerCancelProbeOutsideHalfOpenHarmless(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second)
	b.cancelProbe() // closed: no-op
	if state, _ := b.snapshot(); state != "closed" {
		t.Fatalf("state = %s, want closed", state)
	}
	b.record(true)
	b.record(true)  // opens
	b.cancelProbe() // open: no-op
	if state, _ := b.snapshot(); state != "open" {
		t.Fatalf("state = %s, want open", state)
	}
	var nilB *breaker
	nilB.cancelProbe() // must not panic
}

func TestBreakerStaleResultWhileOpenIgnored(t *testing.T) {
	b, _ := newTestBreaker(1, time.Minute)
	if ok, _, _ := b.allow(); !ok {
		t.Fatal("denied")
	}
	b.record(true) // opens
	// A request admitted before the breaker opened reports success late:
	// that must not silently close the breaker.
	b.record(false)
	if state, _ := b.snapshot(); state != "open" {
		t.Fatalf("stale success closed the breaker (state=%s)", state)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: 0})
	for i := 0; i < 100; i++ {
		b.record(true)
		if ok, _, _ := b.allow(); !ok {
			t.Fatal("disabled breaker shed a request")
		}
	}
	var nilB *breaker
	if ok, _, _ := nilB.allow(); !ok {
		t.Fatal("nil breaker shed")
	}
	nilB.record(true) // must not panic
}
