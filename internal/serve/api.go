package serve

import (
	"errors"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/faults"
	"disjunct/internal/oracle"
)

// Wire types of the HTTP/JSON API. Every terminal outcome a client can
// observe is typed: a 200 carries a three-valued verdict (true / false
// / incomplete-with-cause), a shed carries an ErrorResponse whose
// Error field is one of the Shed* / error reason constants below.
// There is no untyped path — the race suite and the load generator
// hard-fail on any body that doesn't parse into one of these shapes.

// LimitsJSON is the budget a client asks for (request) or the
// effective clamped budget the server granted (response). Zero means
// "no preference" in requests; in responses zero means unlimited.
type LimitsJSON struct {
	DeadlineMS   int64 `json:"deadline_ms,omitempty"`
	Conflicts    int64 `json:"conflicts,omitempty"`
	Propagations int64 `json:"propagations,omitempty"`
	NPCalls      int64 `json:"np_calls,omitempty"`
}

// ToLimits converts the wire form into budget.Limits.
func (l LimitsJSON) ToLimits() budget.Limits {
	return budget.Limits{
		Conflicts:    l.Conflicts,
		Propagations: l.Propagations,
		NPCalls:      l.NPCalls,
		Deadline:     time.Duration(l.DeadlineMS) * time.Millisecond,
	}
}

// LimitsFrom converts budget.Limits into the wire form.
func LimitsFrom(lim budget.Limits) LimitsJSON {
	return LimitsJSON{
		DeadlineMS:   int64(lim.Deadline / time.Millisecond),
		Conflicts:    lim.Conflicts,
		Propagations: lim.Propagations,
		NPCalls:      lim.NPCalls,
	}
}

// QueryRequest is the body of the three query endpoints. DB is the
// database in the repo's surface syntax; Literal ("x" / "-x" / "~x")
// and Formula are parsed against the database's vocabulary.
type QueryRequest struct {
	Semantics string     `json:"semantics"`
	DB        string     `json:"db"`
	Literal   string     `json:"literal,omitempty"`
	Formula   string     `json:"formula,omitempty"`
	Limits    LimitsJSON `json:"limits"`
}

// CountersJSON mirrors oracle.Counters on the wire.
type CountersJSON struct {
	NPCalls     int64 `json:"np_calls"`
	Sigma2Calls int64 `json:"sigma2_calls"`
	SATConfl    int64 `json:"sat_confl"`
}

// CountersFrom converts oracle counters into the wire form.
func CountersFrom(c oracle.Counters) CountersJSON {
	return CountersJSON{NPCalls: c.NPCalls, Sigma2Calls: c.Sigma2Calls, SATConfl: c.SATConfl}
}

// QueryResponse is a 200 answer: the three-valued verdict, the typed
// interruption cause when incomplete, the exact oracle counters of the
// attempt that produced the verdict, and the effective (clamped)
// budget it ran under.
type QueryResponse struct {
	Semantics  string       `json:"semantics"`
	Kind       string       `json:"kind"` // "literal" | "formula" | "model"
	Verdict    string       `json:"verdict"`
	Holds      bool         `json:"holds"`
	Incomplete bool         `json:"incomplete"`
	CauseCode  string       `json:"cause_code,omitempty"`
	Cause      string       `json:"cause,omitempty"`
	Counters   CountersJSON `json:"counters"`
	Limits     LimitsJSON   `json:"limits"`
	// Path reports how the answer was produced when the warm session
	// layer is on: "fast" (fragment fast path, zero NP calls),
	// "session" (warm incremental engine), or "coalesced" (shared from
	// a concurrent identical request — counters and timings are the
	// leader's). Empty for the fresh path.
	Path    string  `json:"path,omitempty"`
	Retries int     `json:"retries"`
	QueueMS float64 `json:"queue_ms"`
	SolveMS float64 `json:"solve_ms"`
}

// Shed / error reasons carried in ErrorResponse.Error.
const (
	// ShedQueueFull: the admission queue is full (HTTP 429 + Retry-After).
	ShedQueueFull = "queue_full"
	// ShedQueueWait: the request's deadline expired while it was still
	// queued — no solve work was started (HTTP 429 + Retry-After).
	ShedQueueWait = "queue_wait_timeout"
	// ShedClientGone: the client disconnected (or otherwise canceled
	// the request) while it was still queued — no solve work was
	// started (HTTP 499, nginx-style "client closed request"; the
	// response body usually goes unread and exists for logs/stats).
	ShedClientGone = "client_gone"
	// ShedDraining: the server is draining and admits nothing new
	// (HTTP 503).
	ShedDraining = "draining"
	// ShedBreakerOpen: the per-semantics circuit breaker is open
	// (HTTP 503 + Retry-After).
	ShedBreakerOpen = "breaker_open"
	// ReasonBadRequest: malformed body, database, literal, or formula
	// (HTTP 400).
	ReasonBadRequest = "bad_request"
	// ReasonUnknownSemantics: the name is not in the registry (HTTP 404).
	ReasonUnknownSemantics = "unknown_semantics"
	// ReasonUnsupported: the database is outside the class the
	// semantics is defined for (HTTP 422).
	ReasonUnsupported = "unsupported"
	// ReasonNotStratifiable: a stratification-based semantics was given
	// a non-stratifiable database (HTTP 422).
	ReasonNotStratifiable = "not_stratifiable"
	// ReasonBatchTooLarge: the batch exceeds the server's per-request
	// query cap (HTTP 400).
	ReasonBatchTooLarge = "batch_too_large"
	// ShedNodeUnavailable: the cluster router exhausted its failover
	// sequence for the request's keyspace slice — every candidate worker
	// was dead, draining, or breaker-open (HTTP 503 + Retry-After tied
	// to the router's health-probe interval).
	ShedNodeUnavailable = "node_unavailable"
	// ShedCost: cost-aware admission shed the query because the queue
	// is past its occupancy threshold and the planner classified it
	// expensive — Σ₂ᵖ-class and either cold (no calibrated estimate for
	// its fingerprint×semantics yet) or with a high NP-call estimate
	// (HTTP 429 + Retry-After). Cheap queries keep completing; under
	// FIFO they would starve behind the expensive ones.
	ShedCost = "shed_cost"
)

// BatchQuery is one query of a batch request. Kind is "literal",
// "formula", or "model"; empty infers it from which field is set
// (Literal → literal, Formula → formula, neither → model). Semantics
// overrides the batch default for this query only.
type BatchQuery struct {
	Kind      string `json:"kind,omitempty"`
	Semantics string `json:"semantics,omitempty"`
	Literal   string `json:"literal,omitempty"`
	Formula   string `json:"formula,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: many queries against one
// database. The database is parsed/compiled once; Limits is the
// per-query budget ask (clamped by the server ceilings, applied to
// each query independently); Semantics is the default for queries that
// don't name their own.
type BatchRequest struct {
	Semantics string       `json:"semantics,omitempty"`
	DB        string       `json:"db"`
	Queries   []BatchQuery `json:"queries"`
	Limits    LimitsJSON   `json:"limits"`
}

// BatchItem is one query's outcome inside a BatchResponse: exactly one
// of Response (a 200-shaped verdict) or Error (the same typed taxonomy
// a standalone request would have received) is set.
type BatchItem struct {
	Index    int            `json:"index"`
	Response *QueryResponse `json:"response,omitempty"`
	Error    *ErrorResponse `json:"error,omitempty"`
}

// BatchResponse is the 200 body of /v1/batch. CompileMS is the shared
// database parse/compile cost, paid once for the whole batch; QueueMS
// is the single admission wait (a batch occupies one execution slot).
// Paths counts per-query routes ("fast"/"session"/"fresh").
type BatchResponse struct {
	Queries    int            `json:"queries"`
	Completed  int            `json:"completed"`
	Incomplete int            `json:"incomplete"`
	Errored    int            `json:"errored"`
	CompileMS  float64        `json:"compile_ms"`
	QueueMS    float64        `json:"queue_ms"`
	Paths      map[string]int `json:"paths,omitempty"`
	Results    []BatchItem    `json:"results"`
}

// StreamRequest is the body of POST /v1/models/stream: an NDJSON model
// enumeration. Kind is "models" (default, all models) or "minimal"
// (MM(DB)); Parallel selects the worker-pool enumerator (same set,
// nondeterministic order); Limit ≤ 0 means unlimited (subject to the
// server's StreamMaxModels cap); Limits is the stream's budget ask.
type StreamRequest struct {
	DB       string     `json:"db"`
	Kind     string     `json:"kind,omitempty"`
	Limit    int        `json:"limit,omitempty"`
	Parallel bool       `json:"parallel,omitempty"`
	Limits   LimitsJSON `json:"limits"`
}

// StreamModelRow is one NDJSON model line: the true atoms, in
// vocabulary order (empty slice = the empty model).
type StreamModelRow struct {
	Model []string `json:"model"`
}

// StreamDoneRow is the terminal NDJSON record every stream ends with —
// even interrupted ones. Cause is "complete", "limit", a budget cause
// code, "canceled" (drain or explicit cancel), or "client_gone".
type StreamDoneRow struct {
	Done         bool         `json:"done"`
	Cause        string       `json:"cause"`
	Count        int          `json:"count"`
	Counters     CountersJSON `json:"counters"`
	Limits       LimitsJSON   `json:"limits"`
	FirstModelMS float64      `json:"first_model_ms"`
	TotalMS      float64      `json:"total_ms"`
}

// StreamLine is the union shape NDJSON consumers decode each line
// into: a model row has Model != nil and Done false; the terminal
// record has Done true.
type StreamLine struct {
	Model    []string     `json:"model"`
	Done     bool         `json:"done"`
	Cause    string       `json:"cause"`
	Count    int          `json:"count"`
	Counters CountersJSON `json:"counters"`
}

// Terminal causes specific to streams (budget causes and "canceled"
// reuse the Cause* codes; "client_gone" reuses ShedClientGone).
const (
	StreamCauseComplete = "complete"
	StreamCauseLimit    = "limit"
	// StreamCauseNodeLost is appended by the cluster router when the
	// worker carrying a stream died mid-enumeration: the models emitted
	// so far are valid, the enumeration is incomplete, and the client
	// sees a typed terminal record instead of a torn body.
	StreamCauseNodeLost = "node_lost"
)

// ErrorResponse is the body of every non-200 answer.
type ErrorResponse struct {
	Error        string `json:"error"`
	Detail       string `json:"detail,omitempty"`
	Semantics    string `json:"semantics,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Cause codes for incomplete verdicts (QueryResponse.CauseCode).
const (
	CauseCanceled          = "canceled"
	CauseDeadline          = "deadline"
	CauseConflictBudget    = "conflict_budget"
	CausePropagationBudget = "propagation_budget"
	CauseNPCallBudget      = "np_call_budget"
	// CauseTransientExhausted marks an oracle whose injected transient
	// failures outlived both the solver-level retry budget and the
	// serving layer's query-level retries. It wraps budget.ErrCanceled,
	// so it still counts as a typed budget interruption.
	CauseTransientExhausted = "transient_exhausted"
)

// CauseCode maps a typed interruption error to its wire code, or ""
// for nil/unknown errors. The transient class is checked first —
// faults.ErrExhausted wraps budget.ErrCanceled, and the more specific
// code is the useful one for operators and breakers.
func CauseCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, faults.ErrTransient):
		return CauseTransientExhausted
	case errors.Is(err, budget.ErrConflictBudget):
		return CauseConflictBudget
	case errors.Is(err, budget.ErrPropagationBudget):
		return CausePropagationBudget
	case errors.Is(err, budget.ErrNPCallBudget):
		return CauseNPCallBudget
	case errors.Is(err, budget.ErrDeadline):
		return CauseDeadline
	case errors.Is(err, budget.ErrCanceled):
		return CauseCanceled
	default:
		return ""
	}
}

// KnownCauseCodes is the closed set of cause codes a 200/incomplete
// response may carry; consumers (load generator, soak cross-check)
// treat anything else as an untyped error.
var KnownCauseCodes = map[string]bool{
	CauseCanceled:           true,
	CauseDeadline:           true,
	CauseConflictBudget:     true,
	CausePropagationBudget:  true,
	CauseNPCallBudget:       true,
	CauseTransientExhausted: true,
}

// KnownStreamCauses is the closed set a StreamDoneRow.Cause may carry.
var KnownStreamCauses = map[string]bool{
	StreamCauseComplete:     true,
	StreamCauseLimit:        true,
	StreamCauseNodeLost:     true,
	ShedClientGone:          true,
	CauseCanceled:           true,
	CauseDeadline:           true,
	CauseConflictBudget:     true,
	CausePropagationBudget:  true,
	CauseNPCallBudget:       true,
	CauseTransientExhausted: true,
}

// VerdictString renders a core.Verdict for the wire ("true", "false",
// "incomplete").
func VerdictString(v core.Verdict) string {
	switch {
	case v.Incomplete:
		return "incomplete"
	case v.Holds:
		return "true"
	default:
		return "false"
	}
}
