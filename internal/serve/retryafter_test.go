package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestBreakerOpenRetryAfterHeader pins the contract the cluster router
// keys its backoff on: every 503 breaker_open response carries both
// the retry_after_ms JSON field and the Retry-After header, tied to
// the breaker's half-open interval — even when the remaining cooldown
// is sub-millisecond, which used to truncate to 0 and suppress both.
func TestBreakerOpenRetryAfterHeader(t *testing.T) {
	srv := New(Config{Breaker: BreakerConfig{Threshold: 1, Cooldown: 500 * time.Microsecond}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A frozen clock keeps the sub-millisecond cooldown remainder from
	// elapsing before the request arrives.
	clk := &fakeClock{t: time.Unix(3000, 0)}
	br := srv.breakerFor("GCWA")
	br.now = clk.now
	br.record(true) // threshold 1: opens immediately

	body, _ := json.Marshal(QueryRequest{Semantics: "GCWA", DB: "a | b.", Literal: "-a"})
	resp, err := http.Post(ts.URL+"/v1/infer/literal", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if er.Error != ShedBreakerOpen {
		t.Fatalf("error = %q, want %q", er.Error, ShedBreakerOpen)
	}
	if er.RetryAfterMS < 1 {
		t.Fatalf("retry_after_ms = %d, want >= 1 (sub-millisecond cooldown must clamp, not truncate)", er.RetryAfterMS)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("Retry-After header missing on breaker_open shed")
	}
}

// TestBatchBreakerOpenRetryAfter pins the same clamp on the batch
// path: per-query breaker sheds inside a batch carry retry_after_ms
// >= 1 for the open semantics.
func TestBatchBreakerOpenRetryAfter(t *testing.T) {
	srv := New(Config{Breaker: BreakerConfig{Threshold: 1, Cooldown: 500 * time.Microsecond}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	clk := &fakeClock{t: time.Unix(3000, 0)}
	br := srv.breakerFor("GCWA")
	br.now = clk.now
	br.record(true)

	body, _ := json.Marshal(BatchRequest{
		Semantics: "GCWA",
		DB:        "a | b.",
		Queries:   []BatchQuery{{Literal: "-a"}},
	})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bresp BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&bresp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(bresp.Results) != 1 || bresp.Results[0].Error == nil {
		t.Fatalf("expected one errored result, got %+v", bresp.Results)
	}
	e := bresp.Results[0].Error
	if e.Error != ShedBreakerOpen {
		t.Fatalf("error = %q, want %q", e.Error, ShedBreakerOpen)
	}
	if e.RetryAfterMS < 1 {
		t.Fatalf("batch retry_after_ms = %d, want >= 1", e.RetryAfterMS)
	}
}
