package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"
)

// TestTransportFailureClassification pins which exchange outcomes may
// fail over to a fallback router: only response-less transport deaths
// that are not client timeouts. A timeout means the router may be
// solving right now — duplicating the request onto a replica is how
// overload spreads — and any real HTTP status means the router is fine.
func TestTransportFailureClassification(t *testing.T) {
	refused := &url.Error{Op: "Post", URL: "http://x", Err: errors.New("connection refused")}
	timeout := &url.Error{Op: "Post", URL: "http://x", Err: context.DeadlineExceeded}
	cases := []struct {
		status int
		err    error
		want   bool
	}{
		{0, refused, true},
		{0, timeout, false},
		{0, nil, false},
		{503, nil, false},
		{503, refused, false}, // a response arrived; the error is downstream
		{200, nil, false},
	}
	for _, c := range cases {
		if got := transportFailure(c.status, c.err); got != c.want {
			t.Fatalf("transportFailure(%d, %v) = %v, want %v", c.status, c.err, got, c.want)
		}
	}
}

// TestRouterSetStickyDemote checks the failover bookkeeping: demote
// advances the sticky pick once per failed router even under
// concurrent demotions, and wraps around the list.
func TestRouterSetStickyDemote(t *testing.T) {
	rs := newRouterSet("http://r0", []string{"http://r1", "http://r2"})
	if rs.cur.Load() != 0 {
		t.Fatalf("initial pick = %d, want 0", rs.cur.Load())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs.demote(0) // everyone blames router 0; only one advance may land
		}()
	}
	wg.Wait()
	if got := rs.cur.Load(); got != 1 {
		t.Fatalf("pick after concurrent demotions of 0 = %d, want 1", got)
	}
	if got := rs.failovers.Load(); got != 1 {
		t.Fatalf("failovers after concurrent demotions = %d, want 1", got)
	}
	rs.demote(2) // stale index: the current pick is 1, so nothing moves
	if got := rs.cur.Load(); got != 1 {
		t.Fatalf("stale demote moved the pick to %d", got)
	}
	rs.demote(1)
	rs.demote(2) // wraps back to the primary
	if got := rs.cur.Load(); got != 0 {
		t.Fatalf("pick after wrap = %d, want 0", got)
	}
}

// TestLoadClientRouterFailover kills the primary target mid-load with
// a fallback configured: the run must stay verdict-clean, complete at
// least 95% of offered requests, and record the client-side failover —
// the replicated-router availability gate seen from the client.
func TestLoadClientRouterFailover(t *testing.T) {
	primary := New(Config{Sessions: true})
	ps := httptest.NewServer(primary.Handler())
	fallback := New(Config{Sessions: true})
	fs := httptest.NewServer(fallback.Handler())
	defer fs.Close()
	defer fallback.Drain(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(150 * time.Millisecond)
		ps.CloseClientConnections()
		ps.Close()
		go primary.Drain(context.Background())
	}()

	rep := RunLoad(LoadConfig{
		BaseURL:      ps.URL,
		FallbackURLs: []string{fs.URL},
		Rate:         200,
		Requests:     80,
		Workers:      8,
		Seed:         41,
		MaxAtoms:     4,
		Verify:       true,
		HotDBs:       4,
	})
	wg.Wait()
	if !rep.Clean() {
		t.Fatalf("failover load not clean: %s\nuntyped: %v\ndivergent: %v",
			rep.String(), rep.UntypedNotes, rep.DivergeNotes)
	}
	if rep.RouterFailovers == 0 {
		t.Fatal("primary died mid-load but no client failover was recorded")
	}
	if float64(rep.Completed) < 0.95*float64(rep.Offered) {
		t.Fatalf("completion %d/%d below the 95%% replication floor", rep.Completed, rep.Offered)
	}
}
