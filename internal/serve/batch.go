package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/core"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/session"
)

// handleBatch serves POST /v1/batch: many queries against one
// database, amortizing everything per-request traffic pays per query —
// the database is parsed/compiled/interned ONCE, the batch occupies
// ONE admission slot, and (with the session layer on) each
// (database, semantics) group of warm-eligible queries runs on ONE
// session checkout. The batch planner partitions by fragment class:
// fixpoint fast-path queries are answered immediately with zero NP
// calls, warm-family queries pipeline through the session engine, and
// the rest run the fresh per-attempt path. Per-query outcomes carry
// the same typed taxonomy a standalone request would have received —
// an invalid or breaker-shed query becomes an error entry, never a
// wholesale batch failure. Verdicts are identical to sequential
// requests by construction (benchgate gates NP-total equality).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.stats.shedDraining.Add(1)
		writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 4<<20))
	if err := dec.Decode(&req); err != nil {
		s.stats.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ReasonBadRequest, Detail: "body: " + err.Error()})
		return
	}
	if len(req.Queries) == 0 {
		s.stats.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ReasonBadRequest, Detail: "queries: empty"})
		return
	}
	if len(req.Queries) > s.cfg.BatchMaxQueries {
		s.stats.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error:  ReasonBatchTooLarge,
			Detail: "batch carries " + strconv.Itoa(len(req.Queries)) + " queries, cap " + strconv.Itoa(s.cfg.BatchMaxQueries),
		})
		return
	}

	// Shared compile: one parse + artifact per batch, whatever the
	// query count. With sessions on the artifact comes from (or enters)
	// the compiled-DB cache; without, it is built batch-locally so the
	// fragment partitioning still works.
	compileStart := time.Now()
	var comp *session.Compiled
	if s.sessions != nil {
		if c, ok := s.sessions.Lookup(req.DB); ok {
			comp = c
		}
	}
	if comp == nil {
		parsed, err := db.Parse(req.DB)
		if err != nil {
			s.stats.badRequest.Add(1)
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ReasonBadRequest, Detail: "db: " + err.Error()})
			return
		}
		if s.sessions != nil {
			comp = s.sessions.Intern(req.DB, parsed)
		} else {
			comp = session.Compile(req.DB, parsed)
		}
	}
	d := comp.D
	if d.N() == 0 {
		s.stats.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ReasonBadRequest, Detail: "db: empty vocabulary"})
		return
	}
	compileMS := float64(time.Since(compileStart)) / float64(time.Millisecond)
	eff := clamp(req.Limits.ToLimits(), s.cfg.Ceilings)

	// Per-query validation: malformed entries become error items; the
	// valid remainder proceeds.
	results := make([]BatchItem, len(req.Queries))
	type job struct {
		idx  int
		kind string
		pq   parsedQuery
	}
	var jobs []job
	for i, q := range req.Queries {
		results[i].Index = i
		semName := q.Semantics
		if semName == "" {
			semName = req.Semantics
		}
		if _, ok := core.InfoFor(semName); !ok {
			results[i].Error = &ErrorResponse{Error: ReasonUnknownSemantics, Semantics: semName}
			continue
		}
		kind := q.Kind
		if kind == "" {
			switch {
			case q.Literal != "":
				kind = "literal"
			case q.Formula != "":
				kind = "formula"
			default:
				kind = "model"
			}
		}
		pq := parsedQuery{semName: semName, d: d, eff: eff, comp: comp, dbText: req.DB}
		switch kind {
		case "literal":
			lit, err := parseLiteral(q.Literal, d.Voc)
			if err != nil {
				results[i].Error = &ErrorResponse{Error: ReasonBadRequest, Detail: "literal: " + err.Error()}
				continue
			}
			pq.lit, pq.qtext = lit, d.Voc.LitString(lit)
		case "formula":
			f, err := logic.ParseFormula(q.Formula, d.Voc)
			if err != nil {
				results[i].Error = &ErrorResponse{Error: ReasonBadRequest, Detail: "formula: " + err.Error()}
				continue
			}
			pq.formula, pq.qtext = f, f.String(d.Voc)
		case "model":
		default:
			results[i].Error = &ErrorResponse{Error: ReasonBadRequest, Detail: "kind: " + q.Kind}
			continue
		}
		jobs = append(jobs, job{idx: i, kind: kind, pq: pq})
	}

	if !s.register() {
		s.stats.shedDraining.Add(1)
		writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
		return
	}
	defer s.wg.Done()

	// One admission slot for the whole batch: the queue sees a batch as
	// a single unit of work (multi-query accounting happens in the
	// batch_queries counter, not the queue).
	admCtx := r.Context()
	if eff.Deadline > 0 {
		var cancel context.CancelFunc
		admCtx, cancel = context.WithTimeout(admCtx, eff.Deadline)
		defer cancel()
	}
	res := s.adm.admit(s.drainCtx, admCtx)
	if res.shed != "" {
		switch res.shed {
		case ShedQueueFull:
			s.stats.shedQueueFull.Add(1)
			writeShed(w, http.StatusTooManyRequests, ErrorResponse{Error: ShedQueueFull, RetryAfterMS: 50})
		case ShedQueueWait:
			s.stats.shedQueueWait.Add(1)
			writeShed(w, http.StatusTooManyRequests, ErrorResponse{Error: ShedQueueWait, RetryAfterMS: 50})
		case ShedClientGone:
			s.stats.shedClientGone.Add(1)
			writeShed(w, statusClientClosedRequest, ErrorResponse{Error: ShedClientGone})
		default:
			s.stats.shedDraining.Add(1)
			writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
		}
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	defer res.release()
	if s.testHook != nil {
		s.testHook()
	}
	s.stats.batchRequests.Add(1)
	s.stats.batchQueries.Add(int64(len(req.Queries)))

	// Breaker gate, once per distinct semantics. A batch never acts as
	// a half-open probe (a claimed probe slot is returned immediately):
	// probing stays the job of single requests, so one slow batch can't
	// wedge a breaker half-open.
	breakers := map[string]*breaker{}
	shedSems := map[string]int64{}
	for _, j := range jobs {
		if _, seen := breakers[j.pq.semName]; seen {
			continue
		}
		br := s.breakerFor(j.pq.semName)
		breakers[j.pq.semName] = br
		ok, probe, retryAfter := br.allow()
		if probe {
			br.cancelProbe()
		}
		if !ok {
			shedSems[j.pq.semName] = retryAfterMS(retryAfter)
		}
	}
	var runnable []job
	for _, j := range jobs {
		if retryMS, shed := shedSems[j.pq.semName]; shed {
			s.stats.shedBreaker.Add(1)
			results[j.idx].Error = &ErrorResponse{
				Error: ShedBreakerOpen, Semantics: j.pq.semName, RetryAfterMS: retryMS,
			}
			continue
		}
		runnable = append(runnable, j)
	}

	// The per-query budgets observe both the client connection and the
	// server's drain deadline, exactly as standalone requests do.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stop := context.AfterFunc(s.baseCtx, func() { cancel(context.Cause(s.baseCtx)) })
	defer stop()
	if s.baseCtx.Err() != nil {
		cancel(context.Cause(s.baseCtx))
	}

	// Session pass: fast-path queries answer inline; warm-eligible
	// groups run back-to-back on one checkout per semantics. Leftovers
	// (and everything, with sessions off beyond the fast path) take the
	// fresh per-attempt path.
	pending := runnable
	if s.sessions != nil {
		reqs := make([]session.Request, len(runnable))
		starts := make([]time.Time, len(runnable))
		for i, j := range runnable {
			starts[i] = time.Now()
			reqs[i] = session.Request{
				Sem:       j.pq.semName,
				Kind:      sessionKind(j.kind),
				Lit:       j.pq.lit,
				F:         j.pq.formula,
				QueryText: j.pq.qtext,
				Budget:    budget.New(ctx, eff),
			}
		}
		outcomes := s.sessions.Batch(ctx, comp, reqs)
		pending = pending[:0]
		for i, out := range outcomes {
			j := runnable[i]
			if !out.Handled {
				pending = append(pending, j)
				continue
			}
			resp := sessionResponse(j.kind, j.pq, out.Res, starts[i])
			results[j.idx].Response = &resp
		}
	} else {
		pending = pending[:0]
		for _, j := range runnable {
			holds, ok := session.FastVerdict(comp, j.pq.semName, sessionKind(j.kind), j.pq.lit, j.pq.formula)
			if !ok {
				pending = append(pending, j)
				continue
			}
			resp := sessionResponse(j.kind, j.pq, session.Result{Holds: holds, Path: "fast"}, time.Now())
			results[j.idx].Response = &resp
		}
	}

	// Fresh pass. comp is nil-ed so execute doesn't re-offer the query
	// to the session layer (it was already declined or the layer is
	// off); behavior is then identical to a standalone fresh request.
	for _, j := range pending {
		j.pq.comp = nil
		resp, semErr := s.execute(r.Context(), j.kind, j.pq)
		if semErr != nil {
			reason := ReasonUnsupported
			if errors.Is(semErr, core.ErrNotStratifiable) {
				reason = ReasonNotStratifiable
			}
			results[j.idx].Error = &ErrorResponse{
				Error: reason, Semantics: j.pq.semName, Detail: semErr.Error(),
			}
			continue
		}
		results[j.idx].Response = &resp
	}

	// Outcome accounting: per-query stats and breaker records, shared
	// queue wait reported once.
	out := BatchResponse{
		Queries:   len(req.Queries),
		CompileMS: compileMS,
		QueueMS:   float64(res.waited) / float64(time.Millisecond),
		Paths:     map[string]int{},
		Results:   results,
	}
	for i := range results {
		switch {
		case results[i].Response != nil:
			resp := results[i].Response
			if resp.Incomplete {
				out.Incomplete++
				s.stats.incomplete.Add(1)
			} else {
				out.Completed++
				s.stats.completed.Add(1)
			}
			path := resp.Path
			if path == "" {
				path = "fresh"
			}
			out.Paths[path]++
			if br := breakers[resp.Semantics]; br != nil {
				br.record(resp.Incomplete && infrastructureFailure(resp.CauseCode))
			}
		case results[i].Error != nil:
			out.Errored++
			if results[i].Error.Error != ShedBreakerOpen {
				s.stats.badRequest.Add(1)
			}
			if results[i].Error.Error == ReasonUnsupported || results[i].Error.Error == ReasonNotStratifiable {
				if br := breakers[results[i].Error.Semantics]; br != nil {
					br.record(false)
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// sessionKind maps the wire kind onto the session layer's enum.
func sessionKind(kind string) session.Kind {
	switch kind {
	case "literal":
		return session.KindLiteral
	case "formula":
		return session.KindFormula
	default:
		return session.KindModel
	}
}
