package serve

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := newAdmission(1, 1) // 1 executing + 1 queued
	drainCtx := context.Background()

	first := a.admit(drainCtx, context.Background())
	if first.shed != "" {
		t.Fatalf("first admit shed: %s", first.shed)
	}

	// Second request occupies the single queue slot, blocked on the exec
	// slot the first one holds.
	var wg sync.WaitGroup
	wg.Add(1)
	var second admitResult
	go func() {
		defer wg.Done()
		second = a.admit(drainCtx, context.Background())
		if second.release != nil {
			second.release()
		}
	}()
	waitFor(t, func() bool { q, _, _ := a.depth(); return q == 2 })

	// Queue is now full: further admits shed instantly with the typed
	// queue_full reason.
	for i := 0; i < 3; i++ {
		if res := a.admit(drainCtx, context.Background()); res.shed != ShedQueueFull {
			t.Fatalf("overflow admit %d: shed=%q, want %q", i, res.shed, ShedQueueFull)
		}
	}

	first.release()
	wg.Wait()
	if second.shed != "" {
		t.Fatalf("queued request shed after slot freed: %s", second.shed)
	}
	if q, w, e := a.depth(); q != 0 || w != 0 || e != 0 {
		t.Fatalf("depth after release = (%d,%d,%d), want zeros", q, w, e)
	}
}

func TestAdmissionShedsWhileDraining(t *testing.T) {
	a := newAdmission(1, 4)
	drainCtx, cancel := context.WithCancel(context.Background())
	cancel()
	if res := a.admit(drainCtx, context.Background()); res.shed != ShedDraining {
		t.Fatalf("shed=%q, want %q", res.shed, ShedDraining)
	}
}

func TestAdmissionDrainReleasesWaiters(t *testing.T) {
	a := newAdmission(1, 4)
	drainCtx, cancel := context.WithCancel(context.Background())
	first := a.admit(drainCtx, context.Background())
	if first.shed != "" {
		t.Fatalf("first admit shed: %s", first.shed)
	}
	done := make(chan admitResult, 1)
	go func() { done <- a.admit(drainCtx, context.Background()) }()
	waitFor(t, func() bool { _, w, _ := a.depth(); return w == 1 })
	cancel()
	select {
	case res := <-done:
		if res.shed != ShedDraining {
			t.Fatalf("waiter shed=%q, want %q", res.shed, ShedDraining)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released by drain")
	}
	first.release()
}

func TestAdmissionQueueWaitDeadline(t *testing.T) {
	a := newAdmission(1, 4)
	first := a.admit(context.Background(), context.Background())
	if first.shed != "" {
		t.Fatalf("first admit shed: %s", first.shed)
	}
	reqCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res := a.admit(context.Background(), reqCtx)
	if res.shed != ShedQueueWait {
		t.Fatalf("shed=%q, want %q", res.shed, ShedQueueWait)
	}
	first.release()
	if q, _, _ := a.depth(); q != 0 {
		t.Fatalf("queued=%d after timeout + release, want 0", q)
	}
}

// TestAdmissionClientGone: a plain cancellation of the request context
// (client disconnect) while queued is classified ShedClientGone, not
// ShedQueueWait — disconnects must not be counted as deadline sheds.
func TestAdmissionClientGone(t *testing.T) {
	a := newAdmission(1, 4)
	first := a.admit(context.Background(), context.Background())
	if first.shed != "" {
		t.Fatalf("first admit shed: %s", first.shed)
	}
	reqCtx, cancel := context.WithCancel(context.Background())
	done := make(chan admitResult, 1)
	go func() { done <- a.admit(context.Background(), reqCtx) }()
	waitFor(t, func() bool { _, w, _ := a.depth(); return w == 1 })
	cancel()
	select {
	case res := <-done:
		if res.shed != ShedClientGone {
			t.Fatalf("shed=%q, want %q", res.shed, ShedClientGone)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released by client cancel")
	}
	first.release()
	if q, _, _ := a.depth(); q != 0 {
		t.Fatalf("queued=%d after cancel + release, want 0", q)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
