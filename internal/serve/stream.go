package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"disjunct/internal/budget"
	"disjunct/internal/db"
	"disjunct/internal/logic"
	"disjunct/internal/models"
	"disjunct/internal/oracle"
	"disjunct/internal/session"
)

// handleStream serves POST /v1/models/stream: NDJSON enumeration of a
// database's models (or minimal models) through the pull-based model
// iterators. Rows flush as they are produced, so time-to-first-model
// is one SAT solve, not a full enumeration. Every stream — including
// interrupted ones — ends with a terminal StreamDoneRow whose Cause is
// typed: "complete", "limit", a budget cause code, "canceled" (drain),
// or "client_gone" (the client hung up mid-stream). Client
// disconnects are the client's doing, not the server's: they bump
// stream_client_gone and never touch the per-semantics breakers
// (streams carry no semantics and never record breaker outcomes at
// all). Streams observe drainCtx rather than the drain-deadline
// baseCtx: an unbounded enumeration must stop when drain BEGINS, or
// Drain would block on it for the full timeout.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.stats.shedDraining.Add(1)
		writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
		return
	}
	var req StreamRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.stats.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ReasonBadRequest, Detail: "body: " + err.Error()})
		return
	}
	kind := req.Kind
	if kind == "" {
		kind = "models"
	}
	if kind != "models" && kind != "minimal" {
		s.stats.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ReasonBadRequest, Detail: "kind: " + req.Kind})
		return
	}
	var comp *session.Compiled
	var d *db.DB
	if s.sessions != nil {
		if c, ok := s.sessions.Lookup(req.DB); ok {
			comp, d = c, c.D
		}
	}
	if d == nil {
		parsed, err := db.Parse(req.DB)
		if err != nil {
			s.stats.badRequest.Add(1)
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ReasonBadRequest, Detail: "db: " + err.Error()})
			return
		}
		d = parsed
		if s.sessions != nil {
			comp = s.sessions.Intern(req.DB, d)
			d = comp.D
		}
	}
	if d.N() == 0 {
		s.stats.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: ReasonBadRequest, Detail: "db: empty vocabulary"})
		return
	}
	eff := clamp(req.Limits.ToLimits(), s.cfg.Ceilings)
	limit := req.Limit
	if s.cfg.StreamMaxModels > 0 && (limit <= 0 || limit > s.cfg.StreamMaxModels) {
		limit = s.cfg.StreamMaxModels
	}

	if !s.register() {
		s.stats.shedDraining.Add(1)
		writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
		return
	}
	defer s.wg.Done()
	admCtx := r.Context()
	if eff.Deadline > 0 {
		var cancel context.CancelFunc
		admCtx, cancel = context.WithTimeout(admCtx, eff.Deadline)
		defer cancel()
	}
	res := s.adm.admit(s.drainCtx, admCtx)
	if res.shed != "" {
		switch res.shed {
		case ShedQueueFull:
			s.stats.shedQueueFull.Add(1)
			writeShed(w, http.StatusTooManyRequests, ErrorResponse{Error: ShedQueueFull, RetryAfterMS: 50})
		case ShedQueueWait:
			s.stats.shedQueueWait.Add(1)
			writeShed(w, http.StatusTooManyRequests, ErrorResponse{Error: ShedQueueWait, RetryAfterMS: 50})
		case ShedClientGone:
			s.stats.shedClientGone.Add(1)
			writeShed(w, statusClientClosedRequest, ErrorResponse{Error: ShedClientGone})
		default:
			s.stats.shedDraining.Add(1)
			writeShed(w, http.StatusServiceUnavailable, ErrorResponse{Error: ShedDraining})
		}
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	defer res.release()
	if s.testHook != nil {
		s.testHook()
	}
	s.stats.streams.Add(1)

	// The stream context: client connection + drain-begin (NOT the
	// drain deadline — see the handler comment).
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stop := context.AfterFunc(s.drainCtx, func() { cancel(context.Cause(s.drainCtx)) })
	defer stop()
	if s.drainCtx.Err() != nil {
		cancel(context.Cause(s.drainCtx))
	}

	b := budget.New(ctx, eff)
	o := oracle.NewNP().WithBudget(b)
	// No fault injection on streams: an injected mid-stream failure
	// would be indistinguishable from a genuine interruption to the
	// consumer, and streams don't participate in retry/breaker logic.
	var eng *models.Engine
	if comp != nil {
		eng = models.NewEngineCNF(comp.D, o, comp.CNF)
	} else {
		eng = models.NewEngine(d, o)
	}
	var it models.ModelIterator
	switch {
	case kind == "models" && req.Parallel:
		it = eng.IterateModelsPar(limit, models.ParOptions{})
	case kind == "models":
		it = eng.IterateModels(limit)
	case req.Parallel:
		it = eng.IterateMinimalModelsPar(limit, models.ParOptions{})
	default:
		it = eng.IterateMinimalModels(limit)
	}
	defer it.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // proxies: do not buffer
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	start := time.Now()
	var count int
	var firstMS float64
	cause := ""
	for {
		m, err := it.Next(ctx)
		if err != nil {
			cause = s.streamCause(err, r)
			break
		}
		if writeErr := enc.Encode(StreamModelRow{Model: modelAtoms(m, d.Voc)}); writeErr != nil {
			// The pipe broke mid-row: the consumer is gone. Keep the
			// taxonomy honest even though the terminal record below will
			// likely go unread.
			cause = ShedClientGone
			s.stats.streamClientGone.Add(1)
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
		if count == 0 {
			firstMS = float64(time.Since(start)) / float64(time.Millisecond)
		}
		count++
	}
	s.stats.streamModels.Add(int64(count))

	done := StreamDoneRow{
		Done:         true,
		Cause:        cause,
		Count:        count,
		Counters:     CountersFrom(o.Counters()),
		Limits:       LimitsFrom(eff),
		FirstModelMS: firstMS,
		TotalMS:      float64(time.Since(start)) / float64(time.Millisecond),
	}
	if enc.Encode(done) == nil && flusher != nil {
		flusher.Flush()
	}
}

// streamCause maps an iterator terminal error onto the stream cause
// taxonomy. A cancellation whose root is the client's own connection
// (and not a server drain) is classified client_gone.
func (s *Server) streamCause(err error, r *http.Request) string {
	switch {
	case errors.Is(err, io.EOF):
		return StreamCauseComplete
	case errors.Is(err, models.ErrLimit):
		return StreamCauseLimit
	}
	if errors.Is(err, budget.ErrCanceled) && r.Context().Err() != nil && !s.draining.Load() {
		s.stats.streamClientGone.Add(1)
		return ShedClientGone
	}
	if code := CauseCode(err); code != "" {
		return code
	}
	return CauseCanceled
}

// modelAtoms renders an interpretation as its true atoms in vocabulary
// order. The empty model is an empty (non-nil) slice, so the NDJSON
// row always carries a JSON array.
func modelAtoms(m logic.Interp, voc *logic.Vocabulary) []string {
	atoms := []string{}
	for v := 0; v < voc.Size(); v++ {
		if m.Holds(logic.Atom(v)) {
			atoms = append(atoms, voc.Name(logic.Atom(v)))
		}
	}
	return atoms
}
